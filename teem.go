package teem

import (
	"io"

	"teem/internal/baseline"
	"teem/internal/buildinfo"
	"teem/internal/core"
	"teem/internal/experiments"
	"teem/internal/governor"
	"teem/internal/mapping"
	"teem/internal/platform"
	"teem/internal/profile"
	"teem/internal/regress"
	"teem/internal/scenario"
	"teem/internal/service"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

// --- platform description (internal/soc) -------------------------------------

// Platform describes an MPSoC: clusters, OPP tables, thermal trip points.
type Platform = soc.Platform

// Cluster is one voltage/frequency island.
type Cluster = soc.Cluster

// OPP is an operating performance point (frequency + voltage).
type OPP = soc.OPP

// ClusterKind tags clusters as big CPU, LITTLE CPU or GPU.
type ClusterKind = soc.ClusterKind

// Cluster kinds.
const (
	BigCPU    = soc.BigCPU
	LittleCPU = soc.LittleCPU
	GPUKind   = soc.GPU
)

// Exynos5422 returns the Samsung Exynos 5422 (Odroid-XU4) platform model.
func Exynos5422() *Platform { return soc.Exynos5422() }

// Exynos5410 returns the Samsung Exynos 5410 (Odroid-XU) platform model —
// a second preset demonstrating platform independence.
func Exynos5410() *Platform { return soc.Exynos5410() }

// LoadPlatform reads a platform description from JSON (write one with
// Platform.Save).
func LoadPlatform(r io.Reader) (*Platform, error) { return soc.LoadPlatform(r) }

// --- thermal model (internal/thermal) ----------------------------------------

// ThermalNetwork is a lumped RC thermal topology.
type ThermalNetwork = thermal.Network

// ThermalNode is one thermal mass.
type ThermalNode = thermal.Node

// ThermalLink is a thermal resistance between nodes (or to Ambient).
type ThermalLink = thermal.Link

// Ambient is the boundary pseudo-node index for ThermalLink.B.
const Ambient = thermal.Ambient

// Exynos5422Thermal returns the calibrated RC network of the Exynos 5422
// as mounted on the Odroid-XU4.
func Exynos5422Thermal() *ThermalNetwork { return thermal.Exynos5422Network() }

// Exynos5410Thermal returns the calibrated RC network of the Exynos 5410
// as mounted on the original Odroid-XU.
func Exynos5410Thermal() *ThermalNetwork { return thermal.Exynos5410Network() }

// LoadThermalNetwork reads an RC topology from JSON (write one with
// ThermalNetwork.Save).
func LoadThermalNetwork(r io.Reader) (*ThermalNetwork, error) { return thermal.LoadNetwork(r) }

// --- platform catalog (internal/platform) --------------------------------------

// PlatformBundle is one hardware-catalog entry: a SoC description, the
// thermal network it is calibrated against, and catalog metadata
// (deployment class, accelerator slots), validated as a unit.
type PlatformBundle = platform.Bundle

// PlatformClass buckets platforms by deployment segment (edge, mobile,
// server).
type PlatformClass = platform.Class

// AcceleratorSlot is a fixed-function accelerator attached to a
// platform (NPU, DSP, ISP, ...).
type AcceleratorSlot = platform.AcceleratorSlot

// Deployment classes.
const (
	PlatformEdge   = platform.Edge
	PlatformMobile = platform.Mobile
	PlatformServer = platform.Server
)

// DefaultPlatformName is the catalog name of the default platform — the
// paper's Exynos 5422 evaluation board.
const DefaultPlatformName = platform.DefaultName

// PlatformNames lists the builtin platform catalog in sorted order.
func PlatformNames() []string { return platform.Names() }

// GetPlatform resolves a builtin platform by catalog name, returning a
// fresh copy.
func GetPlatform(name string) (*PlatformBundle, error) { return platform.Get(name) }

// DefaultPlatform returns the default catalog platform (exynos5422).
func DefaultPlatform() *PlatformBundle { return platform.Default() }

// ResolvePlatform interprets ref as a builtin catalog name first and a
// bundle JSON file path second.
func ResolvePlatform(ref string) (*PlatformBundle, error) { return platform.Resolve(ref) }

// LoadPlatformBundle reads and validates a platform bundle from JSON
// (write one with PlatformBundle.Save).
func LoadPlatformBundle(r io.Reader) (*PlatformBundle, error) { return platform.Load(r) }

// VerifyPlatform runs the catalog-wide validation suite over a bundle —
// OPP monotonicity, sensor-node resolution, network connectivity and
// stability, power-model sanity, trip-release viability — returning its
// findings (empty = known-good).
func VerifyPlatform(b *PlatformBundle) []string { return platform.Verify(b) }

// ThermalModel integrates node temperatures over time (substepped
// explicit Euler reference integrator plus a direct steady-state solver).
type ThermalModel = thermal.Model

// ThermalStepper advances a ThermalModel with the precomputed exact
// discrete-time propagator — the zero-allocation fixed-step integrator
// behind every simulation tick. Build one with ThermalModel.NewStepper.
type ThermalStepper = thermal.Stepper

// NewThermalModel builds an RC thermal model with every node starting at
// the ambient temperature.
func NewThermalModel(net *ThermalNetwork, ambientC float64) (*ThermalModel, error) {
	return thermal.NewModel(net, ambientC)
}

// --- workloads (internal/workload) -------------------------------------------

// App models one OpenCL application's execution characteristics.
type App = workload.App

// Kernel is a runnable, row-partitionable Polybench kernel port.
type Kernel = workload.Kernel

// Apps returns the paper's eight Polybench applications.
func Apps() []*App { return workload.Apps() }

// AppByShort resolves a paper code (2D, CV, GM/GE, 2M, MV, S2, SR, CR).
func AppByShort(code string) (*App, error) { return workload.ByShort(code) }

// AppByName resolves a Polybench name (e.g. "COVARIANCE").
func AppByName(name string) (*App, error) { return workload.ByName(name) }

// Covariance returns the Fig. 1 motivation application.
func Covariance() *App { return workload.Covariance() }

// NewKernel builds the real kernel for an app name with problem size n.
func NewKernel(appName string, n int) (Kernel, error) { return workload.NewKernel(appName, n) }

// RunPartitioned executes a kernel with cpuFrac of each phase on nCPU
// concurrent workers and the rest on a throughput worker, mimicking
// OpenCL work-item partitioning.
func RunPartitioned(k Kernel, cpuFrac float64, nCPU int) error {
	return workload.RunPartitioned(k, cpuFrac, nCPU)
}

// --- design points (internal/mapping) ----------------------------------------

// Mapping selects CPU cores (and GPU use) for an application.
type Mapping = mapping.Mapping

// Partition splits work-items between CPU and GPU.
type Partition = mapping.Partition

// FreqSetting is a cluster-wise DVFS choice.
type FreqSetting = mapping.FreqSetting

// DesignPoint is a mapping × frequency × partition triple.
type DesignPoint = mapping.DesignPoint

// Space enumerates a platform's design space (Eqs. 1–2).
type Space = mapping.Space

// NewSpace builds the design space of a platform.
func NewSpace(p *Platform) (*Space, error) { return mapping.NewSpace(p) }

// Partitions returns the paper's nine work-item partition grains.
func Partitions() []Partition { return mapping.Partitions() }

// NearestPartition snaps a CPU fraction to the closest grain.
func NearestPartition(cpuFrac float64) Partition { return mapping.NearestPartition(cpuFrac) }

// --- simulation (internal/sim) ------------------------------------------------

// SimConfig assembles a co-simulation run.
type SimConfig = sim.Config

// Integrator selects the thermal stepping scheme of a run (SimConfig
// field): the exact precomputed propagator (default) or the substepped
// explicit-Euler reference.
type Integrator = sim.Integrator

// Integrator choices for SimConfig.Integrator.
const (
	IntegratorExact = sim.IntegratorExact
	IntegratorEuler = sim.IntegratorEuler
)

// SimResult summarises a run (execution time, energy, temperatures,
// effective frequency, trace).
type SimResult = sim.Result

// Machine is the restricted hardware view governors drive.
type Machine = sim.Machine

// Governor is a DVFS policy plugged into the engine.
type Governor = sim.Governor

// Engine executes one configured run.
type Engine = sim.Engine

// Trace is a recorded simulation time series.
type Trace = trace.Trace

// NewEngine validates a configuration and builds an engine.
func NewEngine(cfg SimConfig) (*Engine, error) { return sim.New(cfg) }

// RunWarm executes a run with the paper's steady-regime measurement
// protocol (discarded warm-up, then the measured run).
func RunWarm(cfg SimConfig) (*SimResult, error) { return sim.RunWarm(cfg) }

// WarmStartTemps returns the pre-heated thermal state of back-to-back
// benchmarking (steady state of a mid-frequency run of the same job).
func WarmStartTemps(cfg SimConfig) ([]float64, error) { return sim.WarmStartTemps(cfg) }

// Job is one entry of a back-to-back campaign.
type Job = sim.Job

// CampaignConfig paces a campaign; CampaignResult aggregates it.
type (
	CampaignConfig = sim.CampaignConfig
	CampaignResult = sim.CampaignResult
)

// RunCampaign executes jobs sequentially with thermal state carried
// across job boundaries (and optional idle gaps) — the thermal situation
// a real device lives in. Setting CampaignConfig.Independent instead
// schedules the jobs as thermally non-carrying experiments across a
// bounded worker pool (CampaignConfig.Workers); results keep job order,
// so parallel output is identical to serial output.
func RunCampaign(cc CampaignConfig, jobs []Job) (*CampaignResult, error) {
	return sim.RunCampaign(cc, jobs)
}

// --- scenarios (internal/scenario) --------------------------------------------

// Scenario is a declarative dynamic-workload description: application
// arrivals with priorities and deadlines (a higher-priority arrival
// preempts the live job, which resumes with its remaining work intact),
// departures that cancel a queued or live job, ambient steps and ramps,
// mid-run governor / partition / mapping switches, and assertions — the
// online situations an adaptive manager must survive.
type Scenario = scenario.Scenario

// ScenarioEvent is one timeline entry of a Scenario.
type ScenarioEvent = scenario.Event

// ScenarioBuilder assembles a Scenario fluently (NewScenario).
type ScenarioBuilder = scenario.Builder

// ScenarioConfig parameterises scenario execution (platform, integrator,
// governor override, custom governor registry).
type ScenarioConfig = scenario.Config

// ScenarioResult is one executed scenario × governor cell; GridResult a
// whole matrix.
type (
	ScenarioResult             = scenario.Result
	ScenarioGridResult         = scenario.GridResult
	ScenarioPlatformGridResult = scenario.PlatformGridResult
)

// GovernorFactory builds a fresh governor per scenario run.
type GovernorFactory = scenario.GovernorFactory

// JobFinish records one application completion inside a run; JobCancel
// one job dropped mid-run by a departure (CancelJob), charged only the
// work it had done.
type (
	JobFinish = sim.JobFinish
	JobCancel = sim.JobCancel
)

// ArrivalTrace is a recorded arrival log (who arrived when, at what
// priority, with what deadline, how long the tenant stayed); TraceRecord
// is one of its entries. CompileArrivalTrace turns one into a Scenario —
// trace-driven replay.
type (
	ArrivalTrace = scenario.ArrivalTrace
	TraceRecord  = scenario.TraceRecord
)

// NewScenario starts a scenario builder with the default 2L+4B+GPU
// mapping.
func NewScenario(name string) *ScenarioBuilder { return scenario.New(name) }

// LoadScenario reads a scenario from JSON (write one with Scenario.Save).
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// RunScenario executes one scenario deterministically.
func RunScenario(sc *Scenario, rc ScenarioConfig) (*ScenarioResult, error) {
	return scenario.Run(sc, rc)
}

// RunScenarioGrid fans a scenario × governor matrix out across a bounded
// worker pool (workers: 0 = one per CPU, 1 = serial); output is
// byte-identical either way.
func RunScenarioGrid(scs []*Scenario, governors []string, rc ScenarioConfig, workers int) (*ScenarioGridResult, error) {
	return scenario.RunGrid(scs, governors, rc, workers)
}

// RunScenarioPlatformGrid fans a scenario × governor matrix out across
// every named catalog platform — the hardware axis of the grid. Output
// is byte-identical serial vs parallel, like RunScenarioGrid.
func RunScenarioPlatformGrid(platforms []string, scs []*Scenario, governors []string, rc ScenarioConfig, workers int) (*ScenarioPlatformGridResult, error) {
	return scenario.RunPlatformGrid(platforms, scs, governors, rc, workers)
}

// LoadArrivalTrace reads a recorded arrival log from JSON.
func LoadArrivalTrace(r io.Reader) (*ArrivalTrace, error) { return scenario.LoadTrace(r) }

// CompileArrivalTrace compiles a recorded arrival log into a
// deterministic replay Scenario (arrivals with priorities and deadlines;
// holds become departures).
func CompileArrivalTrace(tr *ArrivalTrace) (*Scenario, error) { return scenario.FromTrace(tr) }

// ScenarioPresets returns the built-in scenario corpus (sunlight,
// rush-hour, core-loss, preempt-storm, tenant-churn, replay-sample).
func ScenarioPresets() []*Scenario { return scenario.Presets() }

// ScenarioGovernors lists the stock governor registry names.
func ScenarioGovernors() []string { return scenario.GovernorNames() }

// --- governors (internal/governor) ---------------------------------------------

// NewOndemand returns the Linux ondemand governor with kernel defaults —
// the paper's Fig. 1(a) baseline when combined with the TMU.
func NewOndemand() Governor { return governor.NewOndemand() }

// NewPerformance returns the performance governor (max frequency).
func NewPerformance() Governor { return governor.Performance{} }

// NewPowersave returns the powersave governor (min frequency).
func NewPowersave() Governor { return governor.Powersave{} }

// NewConservative returns the conservative governor.
func NewConservative() Governor { return governor.NewConservative() }

// NewUserspace returns a governor pinning the given frequencies (zero
// fields mean cluster maximum).
func NewUserspace(bigMHz, littleMHz, gpuMHz int) Governor {
	return &governor.Userspace{BigMHz: bigMHz, LittleMHz: littleMHz, GPUMHz: gpuMHz}
}

// --- TEEM (internal/core) -------------------------------------------------------

// Params are the TEEM controller knobs (threshold, δ, floor, period).
type Params = core.Params

// Manager owns offline profiles and makes online decisions.
type Manager = core.Manager

// AppModel is a fitted per-application model (Eq. 6 + stored ETGPU).
type AppModel = core.AppModel

// Decision is an online design-point selection.
type Decision = core.Decision

// Controller is the online thermal regulator (a Governor).
type Controller = core.Controller

// DefaultParams returns the paper's configuration: 85 °C threshold,
// 200 MHz steps, 1400 MHz floor.
func DefaultParams() Params { return core.DefaultParams() }

// NewManager builds a TEEM manager for a platform and thermal network.
func NewManager(p *Platform, n *ThermalNetwork, params Params) (*Manager, error) {
	return core.NewManager(p, n, params)
}

// NewController returns a standalone TEEM controller for use as a
// Governor.
func NewController(params Params) *Controller { return core.NewController(params) }

// Store is the persistent runtime-model set (see paper section V.D:
// coefficients + ETGPU per app); StoredModel one entry.
type (
	Store       = core.Store
	StoredModel = core.StoredModel
)

// LoadStore reads a runtime-model store from JSON (write one with
// Manager.Export + Store.Save, or teemprofile -save).
func LoadStore(r io.Reader) (*Store, error) { return core.LoadStore(r) }

// --- baselines (internal/baseline) ----------------------------------------------

// EEMP is the energy-efficient mapping/partitioning baseline [15].
type EEMP = baseline.EEMP

// RMP is the reliable (temperature-aware) mapping baseline [9].
type RMP = baseline.RMP

// NewEEMP builds the EEMP baseline for a CPU mapping.
func NewEEMP(p *Platform, n *ThermalNetwork, m Mapping) (*EEMP, error) {
	return baseline.NewEEMP(p, n, m)
}

// NewRMP builds the RMP baseline for a CPU mapping.
func NewRMP(p *Platform, n *ThermalNetwork, m Mapping) (*RMP, error) {
	return baseline.NewRMP(p, n, m)
}

// --- profiling and regression ----------------------------------------------------

// Evaluator predicts design-point behaviour (analytic or simulated).
type Evaluator = profile.Evaluator

// PointEval is one design-point evaluation.
type PointEval = profile.PointEval

// NewEvaluator builds a design-point evaluator.
func NewEvaluator(p *Platform, n *ThermalNetwork) (*Evaluator, error) {
	return profile.NewEvaluator(p, n)
}

// Dataset is a named regression dataset.
type Dataset = regress.Dataset

// RegressionModel is a fitted OLS model with the full R-style summary.
type RegressionModel = regress.Model

// FitRegression performs OLS with an intercept.
func FitRegression(d *Dataset) (*RegressionModel, error) { return regress.Fit(d) }

// --- experiments -------------------------------------------------------------------

// Experiments regenerates the paper's tables and figures. It is a
// parallel experiment engine: Fig. 5 rows, sweep points and design-space
// enumeration fan out across a bounded worker pool, with caches that are
// single-flight (concurrent callers of the same experiment share one
// computation) and output byte-identical to a serial run.
type Experiments = experiments.Env

// ExperimentOptions configure the engine (worker-pool bound).
type ExperimentOptions = experiments.Options

// Fig1Result, Fig5Result and ModelResult carry experiment outputs.
type (
	Fig1Result  = experiments.Fig1Result
	Fig5Result  = experiments.Fig5Result
	ModelResult = experiments.ModelResult
)

// NewExperiments builds the default experiment environment (Exynos 5422,
// paper parameters, one worker per CPU).
func NewExperiments() (*Experiments, error) { return experiments.NewEnv() }

// NewExperimentsWith builds the experiment environment with explicit
// options (e.g. Workers: 1 for the serial path).
func NewExperimentsWith(o ExperimentOptions) (*Experiments, error) {
	return experiments.NewEnvWith(o)
}

// --- service (internal/service) ------------------------------------------------

// Service hosts simulations as managed jobs behind an HTTP/JSON API —
// the teemd daemon's engine. Jobs (single scenarios, scenario × governor
// grids, Fig. 5 experiments) run on a bounded worker pool, are
// cancellable within one simulation tick, stream live NDJSON telemetry
// through the sim trace-subscriber hook, and collapse identical requests
// onto one execution through a request-hash single-flight cache.
type Service = service.Service

// ServiceOptions configure a Service: worker-pool size, queued-job
// admission bound, the shared experiment environment, how many finished
// jobs stay queryable, the write-ahead journal path, per-tenant quotas,
// the transient-failure retry policy, and fault injection.
type ServiceOptions = service.Options

// TenantQuota bounds one tenant's admission: sustained submissions per
// second (token bucket), burst, and a cap on queued+running jobs.
type TenantQuota = service.TenantQuota

// QuotaConfig is a Service's per-tenant admission policy: a default
// quota plus per-tenant overrides.
type QuotaConfig = service.QuotaConfig

// RetryPolicy governs how transient job failures (recovered worker
// panics) are re-executed: attempt budget, backoff base and cap.
type RetryPolicy = service.RetryPolicy

// FaultConfig injects deterministic failures into a Service for soak
// and chaos testing: forced worker panics, dropped journal appends and
// slowed grid cells.
type FaultConfig = service.FaultConfig

// RetryError is an admission rejection carrying a backoff hint; the
// HTTP layer renders it as 429 with a Retry-After header.
type RetryError = service.RetryError

// ServiceJob is one managed simulation inside a Service: poll it with
// Snapshot, read a finished run with Result, follow live telemetry with
// Stream, and abort it with RequestCancel.
type ServiceJob = service.Job

// JobRequest describes one unit of simulation work submitted to a
// Service: an inline scenario, a recorded arrival trace, a preset name,
// a preset grid, or a Fig. 5 mapping, plus governors and integrator.
type JobRequest = service.JobRequest

// JobStatus is the wire snapshot of a managed job: id, kind, lifecycle
// state, timestamps, latency, error and result summary.
type JobStatus = service.JobStatus

// JobState is a managed job's lifecycle state (queued, running, done,
// failed, cancelled).
type JobState = service.Status

// Managed-job lifecycle states.
const (
	JobQueued    = service.StatusQueued
	JobRunning   = service.StatusRunning
	JobDone      = service.StatusDone
	JobFailed    = service.StatusFailed
	JobCancelled = service.StatusCancelled
)

// Managed-job kinds for JobRequest.Kind.
const (
	JobKindScenario = service.KindScenario
	JobKindGrid     = service.KindGrid
	JobKindFig5     = service.KindFig5
)

// JobResultSummary is the machine-readable half of a finished job
// (cells, Fig. 5 rows, assertion violations).
type JobResultSummary = service.ResultSummary

// ServiceMetrics is the read-only view of a Service's operational
// counters: jobs queued/running/done/failed/cancelled, request-cache
// hits, and job-latency p50/p99.
type ServiceMetrics = service.Metrics

// NewService builds a simulation service and starts its worker pool.
// Serve its HTTP API with Service.Handler; shut it down with
// Service.Drain (graceful) or Service.Close (immediate).
func NewService(o ServiceOptions) (*Service, error) { return service.New(o) }

// VersionString renders the build-identity banner (version, commit,
// date, Go toolchain) every cmd/* binary prints for -version.
func VersionString(binary string) string { return buildinfo.String(binary) }
