module teem

go 1.24
