module teem

go 1.24

tool teem/cmd/teemvet
