package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Guards enforces the lock discipline declared on struct fields: a field
// annotated //teem:guards <mutex> may only be touched inside functions
// that lock that mutex. The check is deliberately flow-insensitive — the
// function must *contain* a <mutex>.Lock/RLock call somewhere, it is not
// proved to dominate the access — which keeps it cheap and predictable;
// the race detector stays the ground truth and this analyzer catches the
// common regression of a new accessor forgetting the lock entirely.
//
// Helpers that are documented to run with the lock already held are named
// with a Locked suffix (the repo's existing convention, e.g.
// journal.rewriteLocked) and are exempt.
var Guards = &Analyzer{
	Name: "guards",
	Doc: "require //teem:guards-annotated struct fields to be accessed under their mutex\n\n" +
		"A struct field carrying //teem:guards mu may only be selected inside\n" +
		"functions that also call mu.Lock/RLock (flow-insensitive), or inside\n" +
		"helpers named *Locked, which are called with the lock held by contract.\n" +
		"Covers the job/journal state in internal/service, the par.Pool queue and\n" +
		"the core.Manager model store.",
	Run: runGuards,
}

// lockMethods are the acquisition entry points of sync.Mutex/RWMutex.
// (Try variants count: the guarded branch follows a successful acquire.)
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func runGuards(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // called with the lock held, by naming contract
			}
			held := lockedMutexes(fn.Body)
			reported := make(map[*types.Var]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
				if !ok || reported[v] {
					return true
				}
				mu, ok := guarded[v]
				if !ok || held[mu] {
					return true
				}
				reported[v] = true
				pass.Reportf(sel.Sel.Pos(),
					"field %s is guarded by %s (//teem:guards) but %s does not lock it; acquire %s.Lock/RLock or name the helper *Locked",
					v.Name(), mu, fn.Name.Name, mu)
				return true
			})
		}
	}
	return nil
}

// collectGuardedFields maps each annotated struct field object to the
// name of the mutex field guarding it, validating the annotation against
// the struct's own fields.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu, ok := directiveValue(fld.Doc, "guards")
				if !ok {
					mu, ok = directiveValue(fld.Comment, "guards")
				}
				if !ok {
					continue
				}
				if mu == "" {
					pass.Reportf(fld.Pos(), "//teem:guards needs the guarding mutex field name")
					continue
				}
				// The mutex name is the first token; anything after it is
				// free-form prose ("//teem:guards mu — why").
				mu = strings.Fields(mu)[0]
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(), "//teem:guards names %q, which is not a field of this struct", mu)
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// lockedMutexes returns the set of mutex field names the function body
// acquires somewhere (x.mu.Lock(), x.mu.RLock(), ...).
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	held := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockMethods[sel.Sel.Name] {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			held[x.Sel.Name] = true // p.mu.Lock()
		case *ast.Ident:
			held[x.Name] = true // mu.Lock() on a package-level or local mutex
		}
		return true
	})
	return held
}
