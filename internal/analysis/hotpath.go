package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath gates functions annotated //teem:hotpath against allocating
// constructs. These are the steady-state loops whose zero-allocation
// behaviour the AllocsPerRun tests sample dynamically; the analyzer makes
// the property syntactic so a regression is a lint failure, not a flaky
// benchmark delta.
//
// Two escape hatches keep the check honest on real code:
//
//   - cold exits: a construct inside a conditional block that terminates
//     in return (or panic) is not flagged — validation and error paths
//     allocate their fmt.Errorf exactly when the steady state is already
//     over;
//   - //teem:alloc-ok waives a deliberate allocation on that line, e.g.
//     an amortized arena-growth branch or a lazy one-time buffer, with
//     the reason in the comment.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid allocating constructs in //teem:hotpath functions\n\n" +
		"Functions annotated //teem:hotpath (the per-tick co-simulation loop, the\n" +
		"thermal integrators, power evaluation, trace append, superstep jumps) must\n" +
		"not touch the heap in steady state. Flags fmt calls, make/new/append,\n" +
		"slice/map/escaping literals, closures, goroutine starts, string\n" +
		"concatenation and interface boxing, except on cold exit paths (blocks\n" +
		"ending in return/panic) or lines waived with //teem:alloc-ok <reason>.",
	Run: runHotpath,
}

func runHotpath(pass *Pass) error {
	waivers := waiverLines(pass.Fset, pass.Files, "alloc-ok")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			h := &hotChecker{
				pass:    pass,
				waivers: waivers,
				fname:   fn.Name.Name,
				cold:    coldRanges(fn.Body),
			}
			ast.Inspect(fn.Body, h.check)
		}
	}
	return nil
}

type hotChecker struct {
	pass    *Pass
	waivers map[string]map[int]bool
	fname   string
	cold    []posRange
}

type posRange struct{ lo, hi token.Pos }

// coldRanges collects the spans of conditional blocks that terminate in
// return or panic: code in them runs at most once per call and never in
// the steady-state loop the annotation protects. The function's own body
// is excluded — every function ends by returning.
func coldRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n == body {
				return true
			}
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		if terminatesFlow(list) {
			out = append(out, posRange{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

// terminatesFlow reports whether a statement list ends by leaving the
// function (return, panic, or an os.Exit-like bare call is not modeled —
// return and panic cover the tree).
func terminatesFlow(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func (h *hotChecker) exempt(pos token.Pos) bool {
	for _, r := range h.cold {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return waived(h.pass.Fset, h.waivers, pos)
}

func (h *hotChecker) reportf(pos token.Pos, format string, args ...any) {
	if h.exempt(pos) {
		return
	}
	args = append(args, h.fname)
	h.pass.Reportf(pos, format+" in hot path %s (move off the steady path or waive with //teem:alloc-ok <reason>)", args...)
}

func (h *hotChecker) check(n ast.Node) bool {
	info := h.pass.TypesInfo
	switch n := n.(type) {
	case *ast.CallExpr:
		// Builtins.
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					h.reportf(n.Pos(), "make allocates")
				case "new":
					h.reportf(n.Pos(), "new allocates")
				case "append":
					h.reportf(n.Pos(), "append may grow its backing array")
				}
				return true
			}
		}
		// fmt.* always allocates (boxing its variadic operands at least).
		if fn := funcObj(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			h.reportf(n.Pos(), "fmt.%s allocates", fn.Name())
			return true
		}
		// Conversions: to interface (boxing) and string<->[]byte/[]rune.
		if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
			dst := tv.Type
			src := info.Types[n.Args[0]].Type
			if src == nil {
				return true
			}
			if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
				h.reportf(n.Pos(), "conversion to %s boxes its operand", dst)
			}
			if isStringBytesConv(dst, src) {
				h.reportf(n.Pos(), "conversion between string and byte/rune slice copies")
			}
		}
	case *ast.CompositeLit:
		t := info.Types[n].Type
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			h.reportf(n.Pos(), "slice literal allocates")
		case *types.Map:
			h.reportf(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				h.reportf(n.Pos(), "address of composite literal heap-allocates")
			}
		}
	case *ast.FuncLit:
		h.reportf(n.Pos(), "closure allocates")
		return false
	case *ast.GoStmt:
		h.reportf(n.Pos(), "go statement allocates a goroutine")
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := info.Types[n].Type; t != nil && isString(t) {
				h.reportf(n.Pos(), "string concatenation allocates")
			}
		}
	}
	return true
}

func isStringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isString(src) && isByteOrRuneSlice(dst))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
