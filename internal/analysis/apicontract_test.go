package analysis_test

import (
	"testing"

	"teem/internal/analysis"
	"teem/internal/analysis/analysistest"
)

func TestAPIContract(t *testing.T) {
	analysistest.Run(t, analysis.APIContract, "teem/internal/fixture", "testdata/src/apicontract")
}
