package analysis_test

import (
	"testing"

	"teem/internal/analysis"
	"teem/internal/analysis/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysis.Hotpath, "teem/internal/fixture", "testdata/src/hotpath")
}
