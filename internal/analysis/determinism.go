package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// coreSuffixes names the deterministic core: the packages whose outputs
// the equality gates (serial-vs-parallel grids, journal replay, superstep
// agreement) require to be byte-identical run over run. Matching is by
// import-path suffix so fixtures and forks of the module are checked the
// same way.
var coreSuffixes = []string{
	"internal/sim",
	"internal/thermal",
	"internal/scenario",
	"internal/platform",
	"internal/experiments",
	"internal/governor",
	"internal/power",
	"internal/mapping",
	"internal/profile",
}

func inDeterministicCore(path string) bool {
	for _, s := range coreSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Determinism forbids nondeterminism sources in the deterministic core:
// wall-clock reads (time.Now and friends), the process-seeded math/rand
// package-level generator, and iteration over maps (whose order Go
// randomizes on purpose). A map range that provably cannot influence
// ordered output carries a //teem:order-insensitive waiver with a reason.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, unseeded math/rand and map iteration in the deterministic core\n\n" +
		"The simulation core is gated on bit-exact reproducibility (serial vs parallel,\n" +
		"journal replay, superstep agreement). This analyzer makes the three classic\n" +
		"nondeterminism sources unrepresentable in those packages: time.Now-style clock\n" +
		"reads, the package-level math/rand generator (seeded per process), and ranging\n" +
		"over maps. Confirmed-safe map ranges carry //teem:order-insensitive waivers.",
	Run: runDeterminism,
}

// wallClockFuncs are the time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// seededRandCtors are the math/rand functions that construct explicitly
// seeded generators — the sanctioned way to use randomness in the core.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	if !inDeterministicCore(pass.Pkg.Path()) {
		return nil
	}
	waivers := waiverLines(pass.Fset, pass.Files, "order-insensitive")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. on *rand.Rand) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] && !waived(pass.Fset, waivers, n.Pos()) {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock in the deterministic core; thread simulated time instead", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !seededRandCtors[fn.Name()] && !waived(pass.Fset, waivers, n.Pos()) {
						pass.Reportf(n.Pos(), "%s.%s uses the process-seeded global generator; use rand.New(rand.NewSource(seed)) threaded from the config", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if waived(pass.Fset, waivers, n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(), "range over map iterates in randomized order in the deterministic core; iterate sorted keys, or waive with //teem:order-insensitive and a reason")
			}
			return true
		})
	}
	return nil
}
