// Package fixture holds the same nondeterminism sources as the
// determinism fixture, but the test loads it under a non-core import
// path — nothing may be reported.
package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func mapRange(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
