// Package fixture exercises the apicontract analyzer: Err* sentinels are
// matched with errors.Is (never == / != / switch), and context.Context
// parameters come first.
package fixture

import (
	"context"
	"errors"
)

// ErrNotFound is a sentinel in the repo's style.
var ErrNotFound = errors.New("not found")

// errInternal is unexported and not part of any API contract.
var errInternal = errors.New("internal")

// ErrCount is Err-prefixed but not an error; identity comparison is fine.
var ErrCount = 3

func eq(err error) bool {
	return err == ErrNotFound // want `ErrNotFound compared with ==`
}

func neq(err error) bool {
	return ErrNotFound != err // want `ErrNotFound compared with !=`
}

func isOK(err error) bool {
	return errors.Is(err, ErrNotFound)
}

func lowercaseOK(err error) bool {
	return err == errInternal
}

func nonErrorOK(x int) bool {
	return x == ErrCount
}

func nilCompareOK(err error) bool {
	return err == nil
}

func switchErr(err error) string {
	switch err {
	case ErrNotFound: // want `switch case matches ErrNotFound by identity`
		return "nf"
	case nil:
		return ""
	}
	return "other"
}

func typeSwitchOK(v any) string {
	switch v.(type) {
	case error:
		return "err"
	}
	return ""
}

func ctxFirstOK(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

func ctxSecond(name string, ctx context.Context) error { // want `context.Context should be the first parameter of ctxSecond`
	_ = name
	return ctx.Err()
}

func noCtxOK(a, b int) int { return a + b }

type handler struct{}

// Do's receiver does not count as a parameter.
func (h handler) Do(ctx context.Context, q string) error {
	_ = q
	return ctx.Err()
}

func callbackOK(fn func(name string, ctx context.Context)) {
	// Only declarations are checked; function-typed parameters are the
	// callee's business.
	fn("x", context.Background())
}
