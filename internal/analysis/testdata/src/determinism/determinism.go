// Package fixture exercises the determinism analyzer. The test loads it
// under a deterministic-core import path (teem/internal/sim), arming the
// checks.
package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func durationOK() time.Duration {
	// Pure duration arithmetic never touches the clock.
	return 3 * time.Second
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the process-seeded global generator`
}

func globalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand.Shuffle uses the process-seeded global generator`
}

func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // methods on an explicitly seeded generator are fine
}

func mapRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over map iterates in randomized order`
		sum += v
	}
	return sum
}

func mapRangeWaived(m map[string]int) int {
	sum := 0
	//teem:order-insensitive summation is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapRangeWaivedTrailing(m map[string]int) int {
	n := 0
	for range m { //teem:order-insensitive counting is order-free
		n++
	}
	return n
}

func sliceRangeOK(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}
