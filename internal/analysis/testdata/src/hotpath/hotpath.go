// Package fixture exercises the hotpath analyzer: annotated functions
// are gated, cold exit paths and //teem:alloc-ok waivers are exempt, and
// unannotated functions are ignored.
package fixture

import "fmt"

type point struct{ x, y int }

//teem:hotpath
func hotMake(n int) []int {
	s := make([]int, n) // want `make allocates`
	return s
}

//teem:hotpath
func hotNew() *point {
	return new(point) // want `new allocates`
}

//teem:hotpath
func hotFmt(x int) {
	fmt.Println(x) // want `fmt.Println allocates`
}

//teem:hotpath
func hotColdExit(b []byte, n int) ([]byte, error) {
	if n < 0 {
		// Error paths end the steady state; their allocations are free.
		return nil, fmt.Errorf("bad n %d", n)
	}
	return b[:n], nil
}

//teem:hotpath
func hotPanicExit(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // cold exit via panic
	}
	return n
}

//teem:hotpath
func hotAppend(s []int, v int) []int {
	return append(s, v) // want `append may grow its backing array`
}

//teem:hotpath
func hotWaived(s []int, v int) []int {
	//teem:alloc-ok amortized growth, presized by the caller
	return append(s, v)
}

//teem:hotpath
func hotLits() int {
	s := []int{1, 2}       // want `slice literal allocates`
	m := map[string]int{}  // want `map literal allocates`
	p := &point{x: 1}      // want `address of composite literal heap-allocates`
	v := point{x: 1, y: 2} // a value struct literal stays on the stack
	return len(s) + len(m) + p.x + v.y
}

//teem:hotpath
func hotClosure() func() int {
	n := 0
	return func() int { n++; return n } // want `closure allocates`
}

//teem:hotpath
func hotBox(v int) any {
	return any(v) // want `boxes its operand`
}

//teem:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `conversion between string and byte/rune slice copies`
}

//teem:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//teem:hotpath
func hotGo(f func()) {
	go f() // want `go statement allocates a goroutine`
}

//teem:hotpath
func hotIndexOK(s []float64, i int) float64 {
	// Slicing, indexing and arithmetic are free.
	return s[i : i+1][0] * 2
}

func coldUnannotated(n int) []int {
	return make([]int, n) // unannotated functions are not checked
}
