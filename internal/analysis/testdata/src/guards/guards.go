// Package fixture exercises the guards analyzer: //teem:guards fields
// must be touched only by functions that lock the named mutex, helpers
// named *Locked are exempt by convention, and composite-literal
// construction is not an access.
package fixture

import "sync"

type store struct {
	mu sync.Mutex

	items map[string]int //teem:guards mu
	hits  int            //teem:guards mu
	name  string         // unguarded
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

func (s *store) unsafeGet(k string) int {
	return s.items[k] // want `field items is guarded by mu`
}

func (s *store) rawBump() {
	s.hits++ // want `field hits is guarded by mu`
}

func (s *store) bumpLocked() {
	s.hits++ // *Locked helpers run with the lock held by contract
}

func (s *store) Name() string {
	return s.name // unguarded fields are free
}

func newStore() *store {
	return &store{items: map[string]int{}} // keyed construction is not an access
}

func (s *store) doubleTouch() (int, int) {
	a := s.hits // want `field hits is guarded by mu`
	b := s.hits // reported once per function and field
	return a, b
}

func useAll() {
	s := newStore()
	s.get("a")
	s.unsafeGet("a")
	s.rawBump()
	s.bumpLocked()
	s.Name()
	s.doubleTouch()
}

type badAnnot struct {
	mu sync.Mutex
	x  int //teem:guards lock // want `names "lock", which is not a field of this struct`
	y  int //teem:guards // want `needs the guarding mutex field name`
}

func (b *badAnnot) touch() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.x + b.y
}
