package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"unicode"
	"unicode/utf8"
)

// APIContract enforces two conventions the serving and pool layers'
// error contracts depend on:
//
//   - sentinel errors (package-level Err* variables such as par.ErrPoolFull
//     or sim.ErrAborted) must be matched with errors.Is, never ==/!= or a
//     switch case — the service layer wraps sentinels with %w (e.g.
//     "aborted at t=3s: ..."), so identity comparison silently stops
//     matching the moment anyone adds context to an error;
//   - context.Context parameters come first, matching the stdlib and
//     every RunCtx/ForEachCtx-style API already in the tree.
var APIContract = &Analyzer{
	Name: "apicontract",
	Doc: "require errors.Is for Err* sentinels and context.Context-first signatures\n\n" +
		"Flags ==/!= (and switch cases) against package-level Err* sentinel variables,\n" +
		"which break under %w wrapping, and function declarations that accept a\n" +
		"context.Context anywhere but as the first parameter.",
	Run: runAPIContract,
}

func runAPIContract(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if v := sentinelVar(pass.TypesInfo, op); v != nil {
						pass.Reportf(n.Pos(), "%s compared with %s; sentinels may be wrapped — use errors.Is(err, %s)", v.Name(), n.Op, v.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinelVar(pass.TypesInfo, e); v != nil {
							pass.Reportf(e.Pos(), "switch case matches %s by identity; sentinels may be wrapped — use errors.Is(err, %s)", v.Name(), v.Name())
						}
					}
				}
			case *ast.FuncDecl:
				checkCtxFirst(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelVar returns the package-level Err* error variable an expression
// refers to, or nil.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if len(name) <= 3 || name[:3] != "Err" {
		return nil
	}
	if r, _ := utf8.DecodeRuneInString(name[3:]); !unicode.IsUpper(r) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !types.Implements(v.Type(), errType) {
		return nil
	}
	return v
}

// checkCtxFirst reports context.Context parameters that are not the
// function's first parameter.
func checkCtxFirst(pass *Pass, fn *ast.FuncDecl) {
	if fn.Type.Params == nil {
		return
	}
	idx := 0
	for _, fld := range fn.Type.Params.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.Types[fld.Type].Type) && idx > 0 {
			pass.Reportf(fld.Pos(), "context.Context should be the first parameter of %s", fn.Name.Name)
		}
		idx += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
