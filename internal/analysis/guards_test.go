package analysis_test

import (
	"testing"

	"teem/internal/analysis"
	"teem/internal/analysis/analysistest"
)

func TestGuards(t *testing.T) {
	analysistest.Run(t, analysis.Guards, "teem/internal/fixture", "testdata/src/guards")
}
