package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked unit of the tree under analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load builds and type-checks the packages matching patterns, rooted at
// dir. It shells out to `go list -export -deps` so dependencies are
// imported from compiler export data — the same pipeline the toolchain
// itself uses — and parses only the matched packages from source, with
// comments (annotations live there). Test files are not loaded: teemvet
// gates production sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which teemvet does not analyze", p.ImportPath)
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, g := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		pkg, info, err := Check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files with everything the
// analyzers need resolved. Shared by the loader and the fixture harness.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// StdImporter returns an importer for fixture type-checking: it resolves
// the standard-library packages pkgs (plus transitive dependencies) from
// the local build cache via `go list -export`.
func StdImporter(fset *token.FileSet, pkgs ...string) (types.Importer, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", pkgs, err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}
