package analysis_test

import (
	"testing"

	"teem/internal/analysis"
)

// TestTreeIsClean is the audit half of the lint gate in test form: the
// full production tree must hold every invariant the four analyzers
// enforce. A failure here names the exact file:line that regressed —
// either fix it or, for a provably safe site, add the documented waiver
// annotation (docs/static-analysis.md).
func TestTreeIsClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module has many more", len(pkgs))
	}
	diags, err := analysis.Run(analysis.All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
