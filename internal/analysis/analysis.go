// Package analysis is teemvet's static-analysis engine: a small,
// dependency-free counterpart of golang.org/x/tools/go/analysis that
// statically enforces the repo's determinism, hot-path allocation,
// lock-discipline and API-contract invariants (docs/static-analysis.md).
//
// The framework mirrors the upstream shape — an Analyzer holds a Run
// function over a Pass of type-checked files — but loads packages itself
// via `go list -export` and the standard library importer, because the
// module deliberately has no external dependencies. Analyzers are
// flow-insensitive and syntax-driven: they trade precision for being
// cheap, deterministic and reviewable, and every deliberate exception in
// checked code is an explicit //teem: annotation rather than analyzer
// magic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("determinism", ...).
	Name string
	// Doc is the one-paragraph description printed by teemvet -help.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full teemvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, Guards, APIContract}
}

// Run applies every analyzer to every package and returns the findings
// sorted by position (deterministic output for gating and tests).
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---- //teem: annotation plumbing ----
//
// Annotations are directive comments (no space after //, like //go:).
// Three placements matter:
//
//   - function directives (//teem:hotpath) live in the doc comment group
//     of a FuncDecl;
//   - field directives (//teem:guards mu) live in a struct field's doc or
//     trailing comment;
//   - statement waivers (//teem:order-insensitive, //teem:alloc-ok) are
//     honored on the flagged statement's own line or the line directly
//     above it.

const directivePrefix = "//teem:"

// directiveValue returns the argument of the named //teem: directive in a
// comment group, and whether the directive is present at all
// ("//teem:guards mu" → "mu", true).
func directiveValue(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if !ok {
			continue
		}
		// A piggy-backed comment ("//teem:guards mu // why") is not part
		// of the directive's argument.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// hasDirective reports whether a comment group carries //teem:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := directiveValue(doc, name)
	return ok
}

// waiverLines collects, per file, the set of lines carrying the named
// waiver directive anywhere in a comment. A finding at line L is waived
// when the directive sits on L (trailing comment) or L-1 (its own line).
func waiverLines(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix+name) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// waived reports whether the position is covered by a waiver set from
// waiverLines.
func waived(fset *token.FileSet, lines map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	m := lines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// funcObj resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions and dynamic calls through function
// values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
