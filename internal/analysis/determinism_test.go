package analysis_test

import (
	"testing"

	"teem/internal/analysis"
	"teem/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	// Loaded under a deterministic-core import path: the checks are armed.
	analysistest.Run(t, analysis.Determinism, "teem/internal/sim", "testdata/src/determinism")
}

func TestDeterminismNonCore(t *testing.T) {
	// The same nondeterminism sources outside the core must be silent.
	analysistest.Run(t, analysis.Determinism, "teem/internal/service", "testdata/src/determinism_noncore")
}
