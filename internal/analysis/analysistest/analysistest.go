// Package analysistest runs teemvet analyzers over fixture packages under
// testdata, checking reported diagnostics against // want comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt
// on the repo's dependency-free analysis engine.
//
// A fixture is one package per directory. Every line that should trigger
// a finding carries a trailing comment of quoted regular expressions:
//
//	for k := range m { // want `range over map`
//
// Each regexp must match exactly one diagnostic on that line and every
// diagnostic must be claimed by a want — surplus findings and unmatched
// wants both fail the test.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"teem/internal/analysis"
)

// Run applies one analyzer to the fixture package in dir, type-checked
// under the import path pkgPath (determinism keys off the path — use a
// deterministic-core path like "teem/internal/sim" to arm it).
func Run(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) {
	t.Helper()
	pkg, wants := load(t, pkgPath, dir)
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, dir, err)
	}
	check(t, diags, wants)
}

// want is one expected-diagnostic pattern, positioned and consumable.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	used bool
}

func load(t *testing.T, pkgPath, dir string) (*analysis.Package, []*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	var imp []string
	for p := range imports {
		imp = append(imp, p)
	}
	sort.Strings(imp)
	importer, err := analysis.StdImporter(fset, imp...)
	if err != nil {
		t.Fatal(err)
	}
	types, info, err := analysis.Check(pkgPath, fset, files, importer)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Types: types, Info: info},
		collectWants(t, fset, files)
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail a //teem:
				// directive that is itself under test.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the sequence of Go-quoted strings after "want"
// (double quotes or backquotes, as in upstream analysistest).
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		p, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: unquoting %q: %v", pos, q, err)
		}
		out = append(out, p)
		s = s[len(q):]
	}
}

func check(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		if w := claim(wants, d); w == nil {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func claim(wants []*want, d analysis.Diagnostic) *want {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if !w.used && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return w
		}
	}
	return nil
}
