package trace

import (
	"math"
	"testing"
)

// sawtooth builds a trace oscillating between lo and hi with the given
// number of full cycles.
func sawtooth(t *testing.T, lo, hi float64, cycles int) *Trace {
	t.Helper()
	tr := New([]string{"big", "gpu"}, []string{"c"})
	tm := 0.0
	add := func(v float64) {
		if err := tr.Append(Sample{TimeS: tm, TempsC: []float64{v, v - 10}, FreqsMHz: []int{1}}); err != nil {
			t.Fatal(err)
		}
		tm += 1
	}
	add(lo)
	for c := 0; c < cycles; c++ {
		add((lo + hi) / 2)
		add(hi)
		add((lo + hi) / 2)
		add(lo)
	}
	return tr
}

func TestThermalCyclesSawtooth(t *testing.T) {
	tr := sawtooth(t, 90, 95, 4)
	// Four up-down cycles → 8 half-cycle excursions of 5 °C.
	cs := tr.ThermalCycles(0, 2)
	if len(cs) != 8 {
		t.Fatalf("detected %d excursions, want 8", len(cs))
	}
	for _, c := range cs {
		if math.Abs(c.AmplitudeC-5) > 1e-9 {
			t.Errorf("amplitude %g, want 5", c.AmplitudeC)
		}
		if c.EndS <= c.StartS {
			t.Error("cycle times inverted")
		}
	}
	if got := tr.CycleCount(0, 2); got != 8 {
		t.Errorf("CycleCount = %d", got)
	}
	if got := tr.MeanCycleAmplitude(0, 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("MeanCycleAmplitude = %g", got)
	}
}

func TestThermalCyclesHysteresis(t *testing.T) {
	tr := sawtooth(t, 90, 95, 4)
	// A 6 °C hysteresis filters the 5 °C swings entirely.
	if got := tr.CycleCount(0, 6); got != 0 {
		t.Errorf("CycleCount with large hysteresis = %d, want 0", got)
	}
}

func TestThermalCyclesFlat(t *testing.T) {
	tr := New([]string{"n"}, []string{"c"})
	for i := 0; i < 10; i++ {
		if err := tr.Append(Sample{TimeS: float64(i), TempsC: []float64{85}, FreqsMHz: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.CycleCount(0, 1); got != 0 {
		t.Errorf("flat trace cycles = %d", got)
	}
	if got := tr.MeanCycleAmplitude(0, 1); got != 0 {
		t.Errorf("flat trace amplitude = %g", got)
	}
}

func TestThermalCyclesEdgeCases(t *testing.T) {
	tr := New([]string{"n"}, []string{"c"})
	if cs := tr.ThermalCycles(0, 1); cs != nil {
		t.Error("empty trace should have no cycles")
	}
	tr = sawtooth(t, 90, 95, 1)
	if cs := tr.ThermalCycles(0, 0); cs != nil {
		t.Error("non-positive hysteresis should return nil")
	}
}

func TestSpatialGradient(t *testing.T) {
	tr := sawtooth(t, 90, 95, 2)
	// Node 1 tracks node 0 minus 10 by construction.
	if got := tr.SpatialGradient(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("SpatialGradient = %g, want 10", got)
	}
	if got := tr.MaxSpatialGradient(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("MaxSpatialGradient = %g, want 10", got)
	}
	empty := New([]string{"a", "b"}, nil)
	if empty.SpatialGradient(0, 1) != 0 || empty.MaxSpatialGradient(0, 1) != 0 {
		t.Error("empty trace gradients should be 0")
	}
}

// The sim-level consequence: TEEM produces far fewer deep thermal cycles
// than the ondemand sawtooth; verified at the trace level with synthetic
// shapes here (the experiments package covers the real runs).
func TestCycleComparisonShape(t *testing.T) {
	ondemand := sawtooth(t, 88, 95, 6)
	teem := sawtooth(t, 84.5, 86, 6)
	// With a 3 °C reliability hysteresis TEEM's wiggle doesn't count.
	if oc, tc := ondemand.CycleCount(0, 3), teem.CycleCount(0, 3); tc >= oc {
		t.Errorf("TEEM cycles %d should be below ondemand %d", tc, oc)
	}
}
