package trace

import (
	"math"
	"testing"
)

// sawtooth builds a trace oscillating between lo and hi with the given
// number of full cycles.
func sawtooth(t *testing.T, lo, hi float64, cycles int) *Trace {
	t.Helper()
	tr := New([]string{"big", "gpu"}, []string{"c"})
	tm := 0.0
	add := func(v float64) {
		if err := tr.Append(Sample{TimeS: tm, TempsC: []float64{v, v - 10}, FreqsMHz: []int{1}}); err != nil {
			t.Fatal(err)
		}
		tm += 1
	}
	add(lo)
	for c := 0; c < cycles; c++ {
		add((lo + hi) / 2)
		add(hi)
		add((lo + hi) / 2)
		add(lo)
	}
	return tr
}

func TestThermalCyclesSawtooth(t *testing.T) {
	tr := sawtooth(t, 90, 95, 4)
	// Four up-down cycles → 8 half-cycle excursions of 5 °C.
	cs := tr.ThermalCycles(0, 2)
	if len(cs) != 8 {
		t.Fatalf("detected %d excursions, want 8", len(cs))
	}
	for _, c := range cs {
		if math.Abs(c.AmplitudeC-5) > 1e-9 {
			t.Errorf("amplitude %g, want 5", c.AmplitudeC)
		}
		if c.EndS <= c.StartS {
			t.Error("cycle times inverted")
		}
	}
	if got := tr.CycleCount(0, 2); got != 8 {
		t.Errorf("CycleCount = %d", got)
	}
	if got := tr.MeanCycleAmplitude(0, 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("MeanCycleAmplitude = %g", got)
	}
}

func TestThermalCyclesHysteresis(t *testing.T) {
	tr := sawtooth(t, 90, 95, 4)
	// A 6 °C hysteresis filters the 5 °C swings entirely.
	if got := tr.CycleCount(0, 6); got != 0 {
		t.Errorf("CycleCount with large hysteresis = %d, want 0", got)
	}
}

func TestThermalCyclesFlat(t *testing.T) {
	tr := New([]string{"n"}, []string{"c"})
	for i := 0; i < 10; i++ {
		if err := tr.Append(Sample{TimeS: float64(i), TempsC: []float64{85}, FreqsMHz: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.CycleCount(0, 1); got != 0 {
		t.Errorf("flat trace cycles = %d", got)
	}
	if got := tr.MeanCycleAmplitude(0, 1); got != 0 {
		t.Errorf("flat trace amplitude = %g", got)
	}
}

func TestThermalCyclesEdgeCases(t *testing.T) {
	tr := New([]string{"n"}, []string{"c"})
	if cs := tr.ThermalCycles(0, 1); cs != nil {
		t.Error("empty trace should have no cycles")
	}
	tr = sawtooth(t, 90, 95, 1)
	if cs := tr.ThermalCycles(0, 0); cs != nil {
		t.Error("non-positive hysteresis should return nil")
	}
}

func TestSpatialGradient(t *testing.T) {
	tr := sawtooth(t, 90, 95, 2)
	// Node 1 tracks node 0 minus 10 by construction.
	if got := tr.SpatialGradient(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("SpatialGradient = %g, want 10", got)
	}
	if got := tr.MaxSpatialGradient(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("MaxSpatialGradient = %g, want 10", got)
	}
	empty := New([]string{"a", "b"}, nil)
	if empty.SpatialGradient(0, 1) != 0 || empty.MaxSpatialGradient(0, 1) != 0 {
		t.Error("empty trace gradients should be 0")
	}
}

// Regression: every metric taking a node or cluster index must tolerate
// the -1 that NodeIndex/ClusterIndex return for an unknown name — and any
// other out-of-range index — returning zero values instead of panicking
// with index-out-of-range on the first sample.
func TestMetricsUnknownNodeIndex(t *testing.T) {
	tr := sawtooth(t, 90, 95, 2)
	bad := tr.NodeIndex("no-such-node")
	if bad != -1 {
		t.Fatalf("NodeIndex on an unknown node = %d, want -1", bad)
	}
	for _, idx := range []int{bad, len(tr.NodeNames)} {
		if got := tr.SpatialGradient(idx, 0); got != 0 {
			t.Errorf("SpatialGradient(%d, 0) = %g, want 0", idx, got)
		}
		if got := tr.SpatialGradient(0, idx); got != 0 {
			t.Errorf("SpatialGradient(0, %d) = %g, want 0", idx, got)
		}
		if got := tr.MaxSpatialGradient(idx, 0); got != 0 {
			t.Errorf("MaxSpatialGradient(%d, 0) = %g, want 0", idx, got)
		}
		if got := tr.ThermalCycles(idx, 2); got != nil {
			t.Errorf("ThermalCycles(%d) = %v, want nil", idx, got)
		}
		if got := tr.CycleCount(idx, 2); got != 0 {
			t.Errorf("CycleCount(%d) = %d, want 0", idx, got)
		}
		if got := tr.Temps(idx); got != nil {
			t.Errorf("Temps(%d) = %v, want nil", idx, got)
		}
		if got := tr.PeakTemp(idx); got != 0 {
			t.Errorf("PeakTemp(%d) = %g, want 0", idx, got)
		}
		if got := tr.AvgTemp(idx); got != 0 {
			t.Errorf("AvgTemp(%d) = %g, want 0", idx, got)
		}
		if got := tr.TempVariance(idx); got != 0 {
			t.Errorf("TempVariance(%d) = %g, want 0", idx, got)
		}
		if got := tr.TempGradient(idx); got != 0 {
			t.Errorf("TempGradient(%d) = %g, want 0", idx, got)
		}
	}
	if badC := tr.ClusterIndex("no-such-cluster"); badC != -1 {
		t.Fatalf("ClusterIndex on an unknown cluster = %d, want -1", badC)
	} else {
		if got := tr.Freqs(badC); got != nil {
			t.Errorf("Freqs(-1) = %v, want nil", got)
		}
		if got := tr.AvgFreqMHz(badC); got != 0 {
			t.Errorf("AvgFreqMHz(-1) = %g, want 0", got)
		}
	}
}

// The sim-level consequence: TEEM produces far fewer deep thermal cycles
// than the ondemand sawtooth; verified at the trace level with synthetic
// shapes here (the experiments package covers the real runs).
func TestCycleComparisonShape(t *testing.T) {
	ondemand := sawtooth(t, 88, 95, 6)
	teem := sawtooth(t, 84.5, 86, 6)
	// With a 3 °C reliability hysteresis TEEM's wiggle doesn't count.
	if oc, tc := ondemand.CycleCount(0, 3), teem.CycleCount(0, 3); tc >= oc {
		t.Errorf("TEEM cycles %d should be below ondemand %d", tc, oc)
	}
}
