// Package trace records simulation time series (temperatures, frequencies,
// power, utilisation) and derives the evaluation metrics of the TEEM
// paper: energy, average/peak temperature, temporal thermal variance and
// gradient, and average effective frequency. It can render series as ASCII
// charts (for the Fig. 1 style temperature/frequency plots) and export
// CSV.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"teem/internal/stats"
)

// Sample is one record of platform state at a point in simulated time.
type Sample struct {
	// TimeS is the simulation time in seconds.
	TimeS float64
	// TempsC holds one temperature per recorded thermal node.
	TempsC []float64
	// FreqsMHz holds one frequency per recorded cluster.
	FreqsMHz []int
	// PowerW is the instantaneous board power.
	PowerW float64
	// Utils holds per-cluster utilisation in [0,1].
	Utils []float64
}

// Trace is a recorded run.
type Trace struct {
	// NodeNames labels TempsC entries; ClusterNames labels FreqsMHz and
	// Utils entries.
	NodeNames    []string
	ClusterNames []string
	Samples      []Sample

	// Sample slices are carved out of block arenas so the steady-state
	// record path stays allocation-free. A full block is replaced, never
	// grown in place, keeping previously handed-out sub-slices valid.
	block  int
	fArena []float64
	iArena []int
}

// Arena block bounds, in samples. The block size follows the expected
// sample count of NewWithCap within these limits, so short runs stay
// compact and long runs amortise allocation to one block per
// maxBlockSamples records.
const (
	minBlockSamples = 16
	maxBlockSamples = 1024
)

// New creates an empty trace with the given series labels.
func New(nodeNames, clusterNames []string) *Trace {
	return NewWithCap(nodeNames, clusterNames, 0)
}

// NewWithCap creates an empty trace sized for an expected number of
// samples (e.g. MaxTimeS/RecordPeriodS for a simulation run). The hint is
// a capacity optimisation only: it sizes the arena blocks (bounded by
// maxBlockSamples, so a huge hint cannot balloon one engine) and the
// sample index, making appends allocation-free up to the first block and
// allocation-amortised past it. The trace grows past the hint just fine;
// zero means "unknown".
func NewWithCap(nodeNames, clusterNames []string, expectedSamples int) *Trace {
	block := expectedSamples
	if block < minBlockSamples {
		block = minBlockSamples
	}
	if block > maxBlockSamples {
		block = maxBlockSamples
	}
	t := &Trace{
		NodeNames:    append([]string(nil), nodeNames...),
		ClusterNames: append([]string(nil), clusterNames...),
		block:        block,
	}
	if expectedSamples > 0 {
		t.Samples = make([]Sample, 0, block)
	}
	return t
}

// Append adds a sample; series lengths must match the labels. The sample's
// slices are copied, so callers may reuse their buffers across calls.
//
//teem:hotpath
func (t *Trace) Append(s Sample) error {
	if len(s.TempsC) != len(t.NodeNames) {
		return fmt.Errorf("trace: sample has %d temps, want %d", len(s.TempsC), len(t.NodeNames))
	}
	if len(s.FreqsMHz) != len(t.ClusterNames) {
		return fmt.Errorf("trace: sample has %d freqs, want %d", len(s.FreqsMHz), len(t.ClusterNames))
	}
	if len(t.Samples) > 0 && s.TimeS < t.Samples[len(t.Samples)-1].TimeS {
		return errors.New("trace: samples must be appended in time order")
	}
	s.TempsC = t.copyFloats(s.TempsC)
	s.Utils = t.copyFloats(s.Utils)
	s.FreqsMHz = t.copyInts(s.FreqsMHz)
	//teem:alloc-ok amortized sample-slice growth; NewWithCap presizes it away on the hot path
	t.Samples = append(t.Samples, s)
	return nil
}

// copyFloats copies src into arena-backed storage (nil stays nil, matching
// a plain copying append).
//
//teem:hotpath
func (t *Trace) copyFloats(src []float64) []float64 {
	if len(src) == 0 {
		return nil
	}
	if t.block == 0 {
		t.block = minBlockSamples
	}
	need := len(src)
	if len(t.fArena)+need > cap(t.fArena) {
		sz := t.block * (len(t.NodeNames) + len(t.ClusterNames))
		if sz < need {
			sz = need
		}
		//teem:alloc-ok amortized arena-block growth, one make per block of samples
		t.fArena = make([]float64, 0, sz)
	}
	base := len(t.fArena)
	t.fArena = t.fArena[:base+need]
	dst := t.fArena[base : base+need : base+need]
	copy(dst, src)
	return dst
}

// copyInts is copyFloats for the frequency series.
//
//teem:hotpath
func (t *Trace) copyInts(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	if t.block == 0 {
		t.block = minBlockSamples
	}
	need := len(src)
	if len(t.iArena)+need > cap(t.iArena) {
		sz := t.block * len(t.ClusterNames)
		if sz < need {
			sz = need
		}
		//teem:alloc-ok amortized arena-block growth, one make per block of samples
		t.iArena = make([]int, 0, sz)
	}
	base := len(t.iArena)
	t.iArena = t.iArena[:base+need]
	dst := t.iArena[base : base+need : base+need]
	copy(dst, src)
	return dst
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Duration returns the covered time span in seconds.
func (t *Trace) Duration() float64 {
	if len(t.Samples) < 2 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].TimeS - t.Samples[0].TimeS
}

// NodeIndex returns the index of a thermal node series, or -1.
func (t *Trace) NodeIndex(name string) int {
	for i, n := range t.NodeNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ClusterIndex returns the index of a cluster series, or -1.
func (t *Trace) ClusterIndex(name string) int {
	for i, n := range t.ClusterNames {
		if n == name {
			return i
		}
	}
	return -1
}

// validNode reports whether i addresses a recorded node series. Metrics
// guard with it so the -1 of NodeIndex on an unknown name yields zero
// values instead of an index-out-of-range panic.
func (t *Trace) validNode(i int) bool { return i >= 0 && i < len(t.NodeNames) }

// validCluster is validNode for the frequency/utilisation series.
func (t *Trace) validCluster(i int) bool { return i >= 0 && i < len(t.ClusterNames) }

// Temps returns the temperature series of node index i (nil for an
// out-of-range index, e.g. the -1 of an unknown NodeIndex lookup).
func (t *Trace) Temps(i int) []float64 {
	if !t.validNode(i) {
		return nil
	}
	out := make([]float64, len(t.Samples))
	for k, s := range t.Samples {
		out[k] = s.TempsC[i]
	}
	return out
}

// Freqs returns the frequency series of cluster index i (nil for an
// out-of-range index).
func (t *Trace) Freqs(i int) []float64 {
	if !t.validCluster(i) {
		return nil
	}
	out := make([]float64, len(t.Samples))
	for k, s := range t.Samples {
		out[k] = float64(s.FreqsMHz[i])
	}
	return out
}

// Powers returns the board power series.
func (t *Trace) Powers() []float64 {
	out := make([]float64, len(t.Samples))
	for k, s := range t.Samples {
		out[k] = s.PowerW
	}
	return out
}

// EnergyJ integrates board power over time with the trapezoid rule.
func (t *Trace) EnergyJ() float64 {
	e := 0.0
	for i := 1; i < len(t.Samples); i++ {
		dt := t.Samples[i].TimeS - t.Samples[i-1].TimeS
		e += 0.5 * (t.Samples[i].PowerW + t.Samples[i-1].PowerW) * dt
	}
	return e
}

// AvgTemp returns the time-weighted mean temperature of node i (0 for an
// out-of-range index).
func (t *Trace) AvgTemp(i int) float64 {
	if !t.validNode(i) || len(t.Samples) == 0 {
		return 0
	}
	if len(t.Samples) == 1 {
		return t.Samples[0].TempsC[i]
	}
	area := 0.0
	for k := 1; k < len(t.Samples); k++ {
		dt := t.Samples[k].TimeS - t.Samples[k-1].TimeS
		area += 0.5 * (t.Samples[k].TempsC[i] + t.Samples[k-1].TempsC[i]) * dt
	}
	d := t.Duration()
	if d == 0 {
		return t.Samples[0].TempsC[i]
	}
	return area / d
}

// PeakTemp returns the maximum temperature of node i (0 for an
// out-of-range index or an empty trace).
func (t *Trace) PeakTemp(i int) float64 {
	if !t.validNode(i) {
		return 0
	}
	peak := math.Inf(-1)
	for _, s := range t.Samples {
		if s.TempsC[i] > peak {
			peak = s.TempsC[i]
		}
	}
	if math.IsInf(peak, -1) {
		return 0
	}
	return peak
}

// TempVariance returns the sample variance of node i's temperature — the
// paper's "thermal variance / temporal thermal gradient" headline metric.
func (t *Trace) TempVariance(i int) float64 {
	return stats.Variance(t.Temps(i))
}

// TempGradient returns the mean absolute temperature slope |dT/dt| of node
// i in °C/s — an alternative thermal-cycling metric (0 for an
// out-of-range index).
func (t *Trace) TempGradient(i int) float64 {
	if !t.validNode(i) || len(t.Samples) < 2 {
		return 0
	}
	sum, n := 0.0, 0
	for k := 1; k < len(t.Samples); k++ {
		dt := t.Samples[k].TimeS - t.Samples[k-1].TimeS
		if dt <= 0 {
			continue
		}
		sum += math.Abs(t.Samples[k].TempsC[i]-t.Samples[k-1].TempsC[i]) / dt
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgFreqMHz returns the time-weighted mean frequency of cluster i (0 for
// an out-of-range index).
func (t *Trace) AvgFreqMHz(i int) float64 {
	if !t.validCluster(i) || len(t.Samples) == 0 {
		return 0
	}
	if len(t.Samples) == 1 {
		return float64(t.Samples[0].FreqsMHz[i])
	}
	area := 0.0
	for k := 1; k < len(t.Samples); k++ {
		dt := t.Samples[k].TimeS - t.Samples[k-1].TimeS
		// Frequency holds between samples (zero-order hold).
		area += float64(t.Samples[k-1].FreqsMHz[i]) * dt
	}
	d := t.Duration()
	if d == 0 {
		return float64(t.Samples[0].FreqsMHz[i])
	}
	return area / d
}

// WriteCSV emits the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("time_s")
	for _, n := range t.NodeNames {
		fmt.Fprintf(&b, ",temp_%s_C", n)
	}
	for _, n := range t.ClusterNames {
		fmt.Fprintf(&b, ",freq_%s_MHz", n)
	}
	for _, n := range t.ClusterNames {
		fmt.Fprintf(&b, ",util_%s", n)
	}
	b.WriteString(",power_W\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, s := range t.Samples {
		var row strings.Builder
		fmt.Fprintf(&row, "%.3f", s.TimeS)
		for _, v := range s.TempsC {
			fmt.Fprintf(&row, ",%.3f", v)
		}
		for _, v := range s.FreqsMHz {
			fmt.Fprintf(&row, ",%d", v)
		}
		for i := range t.ClusterNames {
			u := 0.0
			if i < len(s.Utils) {
				u = s.Utils[i]
			}
			fmt.Fprintf(&row, ",%.3f", u)
		}
		fmt.Fprintf(&row, ",%.3f\n", s.PowerW)
		if _, err := io.WriteString(w, row.String()); err != nil {
			return err
		}
	}
	return nil
}
