package trace

import "math"

// Reliability-oriented thermal metrics. The paper argues thermal cycling
// and gradients "impair the reliability of the device" ([1], [6]–[8]);
// these metrics quantify that: thermal cycle counting (peak/valley
// excursions beyond a hysteresis, the input to Coffin-Manson style
// lifetime models), cycle amplitude, and the spatial gradient between die
// locations that drives thermo-mechanical stress.

// ThermalCycle is one detected temperature excursion.
type ThermalCycle struct {
	// StartS and EndS bound the cycle in time.
	StartS, EndS float64
	// AmplitudeC is the peak-to-valley swing.
	AmplitudeC float64
}

// ThermalCycles detects temperature cycles on node i using three-point
// peak/valley extraction with the given hysteresis: only swings of at
// least minAmplitudeC count (smaller wiggle is sensor noise, not stress).
func (t *Trace) ThermalCycles(i int, minAmplitudeC float64) []ThermalCycle {
	if !t.validNode(i) || t.Len() < 3 || minAmplitudeC <= 0 {
		return nil
	}
	temps := t.Temps(i)
	times := make([]float64, t.Len())
	for k, s := range t.Samples {
		times[k] = s.TimeS
	}

	// Extract alternating extrema with hysteresis.
	type extremum struct {
		t, v  float64
		isMax bool
	}
	// The first sample seeds the extrema list: if the trace starts at a
	// valley or peak the first excursion is counted from there (a
	// rainflow-style half cycle).
	ext := []extremum{{t: times[0], v: temps[0]}}
	cur := extremum{t: times[0], v: temps[0]}
	dir := 0 // unknown
	for k := 1; k < len(temps); k++ {
		switch {
		case dir >= 0 && temps[k] > cur.v:
			cur = extremum{t: times[k], v: temps[k], isMax: true}
			dir = 1
		case dir <= 0 && temps[k] < cur.v:
			cur = extremum{t: times[k], v: temps[k], isMax: false}
			dir = -1
		case dir == 1 && cur.v-temps[k] >= minAmplitudeC:
			ext = append(ext, cur)
			cur = extremum{t: times[k], v: temps[k], isMax: false}
			dir = -1
		case dir == -1 && temps[k]-cur.v >= minAmplitudeC:
			ext = append(ext, cur)
			cur = extremum{t: times[k], v: temps[k], isMax: true}
			dir = 1
		}
	}
	ext = append(ext, cur)

	// Pair adjacent extrema into cycles.
	var cycles []ThermalCycle
	for k := 1; k < len(ext); k++ {
		amp := math.Abs(ext[k].v - ext[k-1].v)
		if amp >= minAmplitudeC {
			cycles = append(cycles, ThermalCycle{
				StartS:     ext[k-1].t,
				EndS:       ext[k].t,
				AmplitudeC: amp,
			})
		}
	}
	return cycles
}

// CycleCount returns the number of thermal cycles beyond the hysteresis —
// fewer and shallower cycles mean a longer-lived chip.
func (t *Trace) CycleCount(i int, minAmplitudeC float64) int {
	return len(t.ThermalCycles(i, minAmplitudeC))
}

// MeanCycleAmplitude returns the average swing of detected cycles (0 when
// none).
func (t *Trace) MeanCycleAmplitude(i int, minAmplitudeC float64) float64 {
	cs := t.ThermalCycles(i, minAmplitudeC)
	if len(cs) == 0 {
		return 0
	}
	s := 0.0
	for _, c := range cs {
		s += c.AmplitudeC
	}
	return s / float64(len(cs))
}

// SpatialGradient returns the time-averaged absolute temperature
// difference between two nodes — the on-die gradient that drives
// thermo-mechanical stress (0 when either index is out of range).
func (t *Trace) SpatialGradient(i, j int) float64 {
	if !t.validNode(i) || !t.validNode(j) || t.Len() == 0 {
		return 0
	}
	s := 0.0
	for _, smp := range t.Samples {
		s += math.Abs(smp.TempsC[i] - smp.TempsC[j])
	}
	return s / float64(t.Len())
}

// MaxSpatialGradient returns the largest instantaneous gradient between
// two nodes (0 when either index is out of range).
func (t *Trace) MaxSpatialGradient(i, j int) float64 {
	if !t.validNode(i) || !t.validNode(j) {
		return 0
	}
	m := 0.0
	for _, smp := range t.Samples {
		if d := math.Abs(smp.TempsC[i] - smp.TempsC[j]); d > m {
			m = d
		}
	}
	return m
}
