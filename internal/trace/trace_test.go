package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New([]string{"A15", "MaliT628"}, []string{"A15", "A7"})
	for i := 0; i < 5; i++ {
		err := tr.Append(Sample{
			TimeS:    float64(i),
			TempsC:   []float64{80 + float64(i), 70},
			FreqsMHz: []int{2000 - i*100, 1400},
			PowerW:   10,
			Utils:    []float64{1, 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendValidation(t *testing.T) {
	tr := New([]string{"a"}, []string{"c"})
	if err := tr.Append(Sample{TimeS: 0, TempsC: []float64{1, 2}, FreqsMHz: []int{1}}); err == nil {
		t.Error("Append should reject wrong temp count")
	}
	if err := tr.Append(Sample{TimeS: 0, TempsC: []float64{1}, FreqsMHz: []int{1, 2}}); err == nil {
		t.Error("Append should reject wrong freq count")
	}
	if err := tr.Append(Sample{TimeS: 5, TempsC: []float64{1}, FreqsMHz: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Sample{TimeS: 4, TempsC: []float64{1}, FreqsMHz: []int{1}}); err == nil {
		t.Error("Append should reject time going backwards")
	}
}

func TestAppendCopiesSlices(t *testing.T) {
	tr := New([]string{"a"}, []string{"c"})
	temps := []float64{50}
	freqs := []int{1000}
	if err := tr.Append(Sample{TimeS: 0, TempsC: temps, FreqsMHz: freqs}); err != nil {
		t.Fatal(err)
	}
	temps[0] = 99
	freqs[0] = 1
	if tr.Samples[0].TempsC[0] != 50 || tr.Samples[0].FreqsMHz[0] != 1000 {
		t.Error("Append should deep-copy sample slices")
	}
}

func TestIndices(t *testing.T) {
	tr := mkTrace(t)
	if tr.NodeIndex("MaliT628") != 1 || tr.NodeIndex("zz") != -1 {
		t.Error("NodeIndex wrong")
	}
	if tr.ClusterIndex("A7") != 1 || tr.ClusterIndex("zz") != -1 {
		t.Error("ClusterIndex wrong")
	}
}

func TestDurationAndLen(t *testing.T) {
	tr := mkTrace(t)
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Duration() != 4 {
		t.Errorf("Duration = %g, want 4", tr.Duration())
	}
	empty := New(nil, nil)
	if empty.Duration() != 0 {
		t.Error("empty trace Duration should be 0")
	}
}

func TestEnergyConstantPower(t *testing.T) {
	tr := mkTrace(t)
	// 10 W over 4 s = 40 J.
	if got := tr.EnergyJ(); math.Abs(got-40) > 1e-12 {
		t.Errorf("EnergyJ = %g, want 40", got)
	}
}

func TestAvgAndPeakTemp(t *testing.T) {
	tr := mkTrace(t)
	// Linear ramp 80→84: time-weighted mean is 82.
	if got := tr.AvgTemp(0); math.Abs(got-82) > 1e-12 {
		t.Errorf("AvgTemp = %g, want 82", got)
	}
	if got := tr.PeakTemp(0); got != 84 {
		t.Errorf("PeakTemp = %g, want 84", got)
	}
	if got := tr.AvgTemp(1); got != 70 {
		t.Errorf("AvgTemp const = %g, want 70", got)
	}
}

func TestTempVarianceAndGradient(t *testing.T) {
	tr := mkTrace(t)
	// Constant series has zero variance and gradient.
	if got := tr.TempVariance(1); got != 0 {
		t.Errorf("constant TempVariance = %g", got)
	}
	if got := tr.TempGradient(1); got != 0 {
		t.Errorf("constant TempGradient = %g", got)
	}
	// The ramp changes 1°C/s.
	if got := tr.TempGradient(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("ramp TempGradient = %g, want 1", got)
	}
	if got := tr.TempVariance(0); got <= 0 {
		t.Errorf("ramp TempVariance = %g, want > 0", got)
	}
}

func TestAvgFreq(t *testing.T) {
	tr := mkTrace(t)
	// Zero-order hold: 2000,1900,1800,1700 each held 1s.
	want := (2000.0 + 1900 + 1800 + 1700) / 4
	if got := tr.AvgFreqMHz(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgFreqMHz = %g, want %g", got, want)
	}
	if got := tr.AvgFreqMHz(1); got != 1400 {
		t.Errorf("AvgFreqMHz const = %g, want 1400", got)
	}
}

func TestEmptyTraceMetrics(t *testing.T) {
	tr := New([]string{"a"}, []string{"c"})
	if tr.EnergyJ() != 0 || tr.PeakTemp(0) != 0 || tr.AvgTemp(0) != 0 ||
		tr.TempGradient(0) != 0 || tr.AvgFreqMHz(0) != 0 {
		t.Error("empty trace metrics should all be zero")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := mkTrace(t)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6 (header + 5 samples)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,temp_A15_C,temp_MaliT628_C,freq_A15_MHz") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2000") {
		t.Errorf("CSV first row = %q", lines[1])
	}
}

func TestRenderSeries(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	out := RenderSeries(xs, ys, ChartOptions{Width: 20, Height: 5, Title: "ramp", YLabel: "°C"})
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "*") || !strings.Contains(out, "°C") {
		t.Errorf("chart output missing elements:\n%s", out)
	}
	if out := RenderSeries(nil, nil, ChartOptions{}); !strings.Contains(out, "empty") {
		t.Error("empty series should render placeholder")
	}
}

func TestRenderTempAndFreq(t *testing.T) {
	tr := mkTrace(t)
	out := tr.RenderTempAndFreq("A15", "A15", 40, 8)
	if !strings.Contains(out, "Temperature A15") || !strings.Contains(out, "Frequency A15") {
		t.Errorf("combined chart missing sections:\n%s", out)
	}
	if out := tr.RenderTempAndFreq("zz", "A15", 40, 8); !strings.Contains(out, "no data") {
		t.Error("unknown node should render placeholder")
	}
}

// Property: energy of a constant-power trace equals P×duration for any
// sampling pattern.
func TestEnergyConstantPowerProperty(t *testing.T) {
	f := func(steps []uint8, praw uint8) bool {
		if len(steps) == 0 {
			return true
		}
		p := 1 + float64(praw%20)
		tr := New([]string{"n"}, []string{"c"})
		tm := 0.0
		for _, s := range steps {
			tm += 0.1 + float64(s%50)/100
			if err := tr.Append(Sample{TimeS: tm, TempsC: []float64{50}, FreqsMHz: []int{1}, PowerW: p}); err != nil {
				return false
			}
		}
		want := p * tr.Duration()
		return math.Abs(tr.EnergyJ()-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AvgTemp lies within [min, max] of the series.
func TestAvgTempBoundedProperty(t *testing.T) {
	f := func(temps []uint8) bool {
		if len(temps) < 2 {
			return true
		}
		tr := New([]string{"n"}, []string{"c"})
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, raw := range temps {
			v := 20 + float64(raw%80)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			if err := tr.Append(Sample{TimeS: float64(i), TempsC: []float64{v}, FreqsMHz: []int{1}}); err != nil {
				return false
			}
		}
		avg := tr.AvgTemp(0)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Appends must copy their input: mutating the caller's buffers afterwards
// cannot change recorded samples, and samples must not alias each other.
func TestAppendCopiesAndIsolates(t *testing.T) {
	tr := NewWithCap([]string{"a", "b"}, []string{"c"}, 4)
	temps := []float64{1, 2}
	freqs := []int{100}
	utils := []float64{0.5}
	if err := tr.Append(Sample{TimeS: 0, TempsC: temps, FreqsMHz: freqs, Utils: utils}); err != nil {
		t.Fatal(err)
	}
	temps[0], freqs[0], utils[0] = 99, 999, 0.99
	if err := tr.Append(Sample{TimeS: 1, TempsC: temps, FreqsMHz: freqs, Utils: utils}); err != nil {
		t.Fatal(err)
	}
	s0, s1 := tr.Samples[0], tr.Samples[1]
	if s0.TempsC[0] != 1 || s0.FreqsMHz[0] != 100 || s0.Utils[0] != 0.5 {
		t.Errorf("sample 0 mutated by caller buffer reuse: %+v", s0)
	}
	if s1.TempsC[0] != 99 || s1.FreqsMHz[0] != 999 || s1.Utils[0] != 0.99 {
		t.Errorf("sample 1 did not record updated values: %+v", s1)
	}
}

// Samples recorded before an arena block rollover must stay intact after
// many more appends.
func TestArenaBlockRollover(t *testing.T) {
	tr := NewWithCap([]string{"n"}, []string{"c"}, 2)
	const total = 5000 // far beyond any single block
	for i := 0; i < total; i++ {
		err := tr.Append(Sample{
			TimeS:    float64(i),
			TempsC:   []float64{float64(i)},
			FreqsMHz: []int{i},
			Utils:    []float64{float64(i) / total},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	for i := 0; i < total; i += 777 {
		s := tr.Samples[i]
		if s.TempsC[0] != float64(i) || s.FreqsMHz[0] != i {
			t.Errorf("sample %d corrupted after rollover: %+v", i, s)
		}
	}
}

// With a capacity hint covering the run, steady-state appends allocate
// nothing (amortised block allocation aside, which the hint covers here).
func TestAppendZeroAllocsWithinCap(t *testing.T) {
	tr := NewWithCap([]string{"a", "b", "c", "d"}, []string{"x", "y", "z"}, 2000)
	temps := []float64{1, 2, 3, 4}
	freqs := []int{1, 2, 3}
	utils := []float64{0.1, 0.2, 0.3}
	i := 0
	// Warm up one append so the lazily allocated first blocks exist.
	if err := tr.Append(Sample{TimeS: -1, TempsC: temps, FreqsMHz: freqs, Utils: utils}); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		i++
		if err := tr.Append(Sample{TimeS: float64(i), TempsC: temps, FreqsMHz: freqs, Utils: utils}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Append allocates %.3f objects/op inside capacity, want 0", avg)
	}
}

// Nil series stay nil (e.g. Utils on legacy traces), matching the
// pre-arena copying behaviour.
func TestAppendPreservesNilUtils(t *testing.T) {
	tr := New([]string{"n"}, []string{"c"})
	if err := tr.Append(Sample{TimeS: 0, TempsC: []float64{1}, FreqsMHz: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if tr.Samples[0].Utils != nil {
		t.Errorf("nil Utils became %v", tr.Samples[0].Utils)
	}
}
