package trace

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders time series as ASCII line charts, reproducing the visual
// shape of the paper's Fig. 1 (temperature and frequency against time) in
// terminal output.

// ChartOptions controls rendering.
type ChartOptions struct {
	// Width and Height are the plot area size in characters; defaults
	// are 72×16.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// YLabel annotates the vertical axis.
	YLabel string
	// YMin/YMax fix the vertical range; when both zero the range is
	// fitted to the data with 5% headroom.
	YMin, YMax float64
}

// RenderSeries draws one series (y against x) as an ASCII chart.
func RenderSeries(xs, ys []float64, opt ChartOptions) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return "(empty series)\n"
	}
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 16
	}
	yMin, yMax := opt.YMin, opt.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, y := range ys {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
		pad := 0.05 * (yMax - yMin)
		if pad == 0 {
			pad = 1
		}
		yMin -= pad
		yMax += pad
	}
	xMin, xMax := xs[0], xs[len(xs)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i := range xs {
		c := int(float64(w-1) * (xs[i] - xMin) / (xMax - xMin))
		rf := (ys[i] - yMin) / (yMax - yMin)
		r := h - 1 - int(rf*float64(h-1)+0.5)
		if c < 0 || c >= w || r < 0 || r >= h {
			continue
		}
		grid[r][c] = '*'
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r, row := range grid {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-12.1f%*s%12.1f (s)\n", "", xMin, w-24, "", xMax)
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "y: %s\n", opt.YLabel)
	}
	return b.String()
}

// RenderTempAndFreq renders the Fig. 1 style combined view for one thermal
// node and one cluster of a trace.
func (t *Trace) RenderTempAndFreq(nodeName, clusterName string, width, height int) string {
	ni := t.NodeIndex(nodeName)
	ci := t.ClusterIndex(clusterName)
	if ni < 0 || ci < 0 || t.Len() == 0 {
		return "(no data)\n"
	}
	xs := make([]float64, t.Len())
	for i, s := range t.Samples {
		xs[i] = s.TimeS
	}
	var b strings.Builder
	b.WriteString(RenderSeries(xs, t.Temps(ni), ChartOptions{
		Width: width, Height: height,
		Title:  fmt.Sprintf("Temperature %s (°C)", nodeName),
		YLabel: "°C",
	}))
	b.WriteString(RenderSeries(xs, t.Freqs(ci), ChartOptions{
		Width: width, Height: height,
		Title:  fmt.Sprintf("Frequency %s (MHz)", clusterName),
		YLabel: "MHz",
	}))
	return b.String()
}
