package soc

// Exynos5410 returns a description of the Samsung Exynos 5410 (the
// Odroid-XU predecessor of the paper's 5422): a quad Cortex-A15 big
// cluster up to 1600 MHz, a quad Cortex-A7 LITTLE cluster up to 1200 MHz
// and a PowerVR SGX544MP3 GPU with 3 cores up to 533 MHz. It demonstrates
// that nothing in the library is hard-wired to the 5422 — design-space
// enumeration, governors and TEEM run on any described platform.
//
// The 5410's firmware trips at 90 °C (it ran notoriously hot with
// cluster-migration big.LITTLE) and caps the big cluster at 800 MHz.
func Exynos5410() *Platform {
	return &Platform{
		Name: "Exynos5410",
		Clusters: []Cluster{
			{
				Name:     "A15",
				Kind:     BigCPU,
				NumCores: 4,
				OPPs: rampOPPs(600, 1600, 100, []voltPoint{
					{600, 0.9500}, {1000, 1.0375}, {1400, 1.1750},
					{1600, 1.3000},
				}),
				CdynCoreNF:    0.38,
				LeakCoeff:     0.11,
				LeakTempCoeff: 0.013,
			},
			{
				Name:     "A7",
				Kind:     LittleCPU,
				NumCores: 4,
				OPPs: rampOPPs(200, 1200, 100, []voltPoint{
					{200, 0.9000}, {600, 0.9625}, {1200, 1.1875},
				}),
				CdynCoreNF:    0.09,
				LeakCoeff:     0.02,
				LeakTempCoeff: 0.010,
			},
			{
				Name:     "SGX544",
				Kind:     GPU,
				NumCores: 3,
				OPPs: []OPP{
					{FreqMHz: 177, VoltV: 0.9250},
					{FreqMHz: 266, VoltV: 0.9625},
					{FreqMHz: 350, VoltV: 1.0000},
					{FreqMHz: 480, VoltV: 1.0750},
					{FreqMHz: 533, VoltV: 1.1250},
				},
				CdynCoreNF:    0.60,
				LeakCoeff:     0.07,
				LeakTempCoeff: 0.010,
			},
		},
		BoardBaselineW:  2.50,
		DRAMPowerPerGBs: 0.25,
		AmbientC:        28.0,
		TripC:           90.0,
		TripReleaseC:    83.0,
		TripCapMHz:      800,
	}
}
