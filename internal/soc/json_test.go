package soc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestPlatformJSONRoundTrip(t *testing.T) {
	for _, orig := range []*Platform{Exynos5422(), Exynos5410()} {
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		loaded, err := LoadPlatform(&buf)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if !reflect.DeepEqual(orig, loaded) {
			t.Errorf("%s: round trip not identical", orig.Name)
		}
	}
}

func TestLoadPlatformRejectsBadInput(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"name":"x","clusters":[{"name":"c","kind":"weird","num_cores":1,"opps":[{"freq_mhz":100,"volt_v":1}],"cdyn_core_nf":1}],"trip_c":90,"trip_release_c":85}`,
		`{"name":"","clusters":[]}`, // fails Validate
	}
	for i, c := range cases {
		if _, err := LoadPlatform(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted invalid platform", i)
		}
	}
}

func TestSaveRejectsInvalidPlatform(t *testing.T) {
	p := Exynos5422()
	p.Name = ""
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Error("Save should validate first")
	}
}
