package soc

import (
	"testing"
	"testing/quick"
)

func TestExynos5422Valid(t *testing.T) {
	p := Exynos5422()
	if err := p.Validate(); err != nil {
		t.Fatalf("Exynos5422 preset invalid: %v", err)
	}
}

func TestExynos5422OPPCounts(t *testing.T) {
	p := Exynos5422()
	// The paper: 19 big OPPs, 13 LITTLE OPPs, 7 GPU OPPs.
	cases := []struct {
		name string
		want int
	}{
		{"A15", 19},
		{"A7", 13},
		{"MaliT628", 7},
	}
	for _, c := range cases {
		cl := p.FindCluster(c.name)
		if cl == nil {
			t.Fatalf("cluster %s missing", c.name)
		}
		if got := cl.NumOPPs(); got != c.want {
			t.Errorf("%s: got %d OPPs, want %d", c.name, got, c.want)
		}
	}
}

func TestExynos5422FrequencyRanges(t *testing.T) {
	p := Exynos5422()
	big, little, gpu := p.Big(), p.Little(), p.GPU()
	if big == nil || little == nil || gpu == nil {
		t.Fatal("missing cluster kinds")
	}
	if big.MinFreqMHz() != 200 || big.MaxFreqMHz() != 2000 {
		t.Errorf("big range %d-%d, want 200-2000", big.MinFreqMHz(), big.MaxFreqMHz())
	}
	if little.MinFreqMHz() != 200 || little.MaxFreqMHz() != 1400 {
		t.Errorf("LITTLE range %d-%d, want 200-1400", little.MinFreqMHz(), little.MaxFreqMHz())
	}
	if gpu.MaxFreqMHz() != 600 {
		t.Errorf("GPU max %d, want 600", gpu.MaxFreqMHz())
	}
	if big.NumCores != 4 || little.NumCores != 4 || gpu.NumCores != 6 {
		t.Errorf("core counts big=%d LITTLE=%d GPU=%d, want 4/4/6",
			big.NumCores, little.NumCores, gpu.NumCores)
	}
}

func TestClusterKindString(t *testing.T) {
	cases := []struct {
		k    ClusterKind
		want string
	}{
		{BigCPU, "big"}, {LittleCPU, "LITTLE"}, {GPU, "GPU"}, {ClusterKind(9), "ClusterKind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestOPPLookups(t *testing.T) {
	big := Exynos5422().Big()
	if i := big.OPPIndex(1400); i != 12 {
		t.Errorf("OPPIndex(1400) = %d, want 12", i)
	}
	if i := big.OPPIndex(1450); i != -1 {
		t.Errorf("OPPIndex(1450) = %d, want -1", i)
	}
	if f := big.NearestOPP(1449).FreqMHz; f != 1400 {
		t.Errorf("NearestOPP(1449) = %d, want 1400", f)
	}
	if f := big.NearestOPP(1451).FreqMHz; f != 1500 {
		t.Errorf("NearestOPP(1451) = %d, want 1500", f)
	}
	// Tie prefers the lower frequency.
	if f := big.NearestOPP(1450).FreqMHz; f != 1400 {
		t.Errorf("NearestOPP(1450) = %d, want 1400 (tie → lower)", f)
	}
	if f := big.FloorOPP(1999).FreqMHz; f != 1900 {
		t.Errorf("FloorOPP(1999) = %d, want 1900", f)
	}
	if f := big.FloorOPP(100).FreqMHz; f != 200 {
		t.Errorf("FloorOPP(100) = %d, want 200 (clamp)", f)
	}
	if f := big.CeilOPP(1999).FreqMHz; f != 2000 {
		t.Errorf("CeilOPP(1999) = %d, want 2000", f)
	}
	if f := big.CeilOPP(5000).FreqMHz; f != 2000 {
		t.Errorf("CeilOPP(5000) = %d, want 2000 (clamp)", f)
	}
}

func TestStepDown(t *testing.T) {
	big := Exynos5422().Big()
	// The paper's online loop: step the A15 down by delta=200 MHz.
	cases := []struct {
		from, delta, want int
	}{
		{2000, 200, 1800},
		{1800, 200, 1600},
		{1500, 200, 1300},
		{300, 200, 200},
		{200, 200, 200}, // cannot go below the minimum OPP
	}
	for _, c := range cases {
		if got := big.StepDown(c.from, c.delta).FreqMHz; got != c.want {
			t.Errorf("StepDown(%d, %d) = %d, want %d", c.from, c.delta, got, c.want)
		}
	}
}

func TestVoltageMonotonic(t *testing.T) {
	p := Exynos5422()
	for _, cl := range p.Clusters {
		prev := 0.0
		for _, opp := range cl.OPPs {
			if opp.VoltV < prev {
				t.Errorf("%s: voltage decreases at %d MHz", cl.Name, opp.FreqMHz)
			}
			prev = opp.VoltV
		}
	}
}

func TestVoltageAt(t *testing.T) {
	big := Exynos5422().Big()
	if v := big.VoltageAt(2000); v != 1.4250 {
		t.Errorf("VoltageAt(2000) = %g, want 1.4250", v)
	}
	// Snaps up: voltage for 1450 must cover 1500 MHz operation.
	if v1450, v1500 := big.VoltageAt(1450), big.VoltageAt(1500); v1450 != v1500 {
		t.Errorf("VoltageAt(1450)=%g should snap up to VoltageAt(1500)=%g", v1450, v1500)
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := Exynos5422()
	if p.FindCluster("nope") != nil {
		t.Error("FindCluster should return nil for unknown name")
	}
	if p.ClusterIndex("A7") != 1 {
		t.Errorf("ClusterIndex(A7) = %d, want 1", p.ClusterIndex("A7"))
	}
	if p.ClusterIndex("nope") != -1 {
		t.Error("ClusterIndex should return -1 for unknown name")
	}
	if p.TotalCPUCores() != 8 {
		t.Errorf("TotalCPUCores = %d, want 8", p.TotalCPUCores())
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	mk := func(mut func(*Cluster)) *Cluster {
		c := Exynos5422().Big()
		cp := *c
		cp.OPPs = append([]OPP(nil), c.OPPs...)
		mut(&cp)
		return &cp
	}
	cases := []struct {
		name string
		c    *Cluster
	}{
		{"empty name", mk(func(c *Cluster) { c.Name = "" })},
		{"zero cores", mk(func(c *Cluster) { c.NumCores = 0 })},
		{"no OPPs", mk(func(c *Cluster) { c.OPPs = nil })},
		{"unsorted", mk(func(c *Cluster) { c.OPPs[0], c.OPPs[1] = c.OPPs[1], c.OPPs[0] })},
		{"dup freq", mk(func(c *Cluster) { c.OPPs[1].FreqMHz = c.OPPs[0].FreqMHz })},
		{"neg volt", mk(func(c *Cluster) { c.OPPs[0].VoltV = -1 })},
		{"zero freq", mk(func(c *Cluster) { c.OPPs[0].FreqMHz = 0 })},
		{"volt decreasing", mk(func(c *Cluster) { c.OPPs[1].VoltV = c.OPPs[0].VoltV - 0.1 })},
		{"zero cdyn", mk(func(c *Cluster) { c.CdynCoreNF = 0 })},
		{"neg leak", mk(func(c *Cluster) { c.LeakCoeff = -1 })},
	}
	for _, c := range cases {
		if err := c.c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid cluster", c.name)
		}
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	mk := func(mut func(*Platform)) *Platform {
		p := Exynos5422()
		mut(p)
		return p
	}
	cases := []struct {
		name string
		p    *Platform
	}{
		{"empty name", mk(func(p *Platform) { p.Name = "" })},
		{"no clusters", mk(func(p *Platform) { p.Clusters = nil })},
		{"dup cluster", mk(func(p *Platform) { p.Clusters[1].Name = p.Clusters[0].Name })},
		{"trip below release", mk(func(p *Platform) { p.TripC = p.TripReleaseC - 1 })},
		{"neg baseline", mk(func(p *Platform) { p.BoardBaselineW = -1 })},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid platform", c.name)
		}
	}
}

// Property: FloorOPP(f) ≤ f for any f at or above the minimum, and the
// result is always a supported OPP.
func TestFloorOPPProperty(t *testing.T) {
	big := Exynos5422().Big()
	f := func(raw int16) bool {
		req := int(raw)
		got := big.FloorOPP(req)
		if big.OPPIndex(got.FreqMHz) < 0 {
			return false
		}
		if req >= big.MinFreqMHz() && got.FreqMHz > req {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CeilOPP(f) ≥ f for any f at or below the maximum.
func TestCeilOPPProperty(t *testing.T) {
	big := Exynos5422().Big()
	f := func(raw int16) bool {
		req := int(raw)
		got := big.CeilOPP(req)
		if big.OPPIndex(got.FreqMHz) < 0 {
			return false
		}
		if req <= big.MaxFreqMHz() && got.FreqMHz < req {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StepDown never increases frequency and never leaves the OPP
// table.
func TestStepDownProperty(t *testing.T) {
	big := Exynos5422().Big()
	f := func(fromIdx uint8, delta uint16) bool {
		from := big.OPPs[int(fromIdx)%len(big.OPPs)].FreqMHz
		got := big.StepDown(from, int(delta))
		return got.FreqMHz <= from && big.OPPIndex(got.FreqMHz) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExynos5410Valid(t *testing.T) {
	p := Exynos5410()
	if err := p.Validate(); err != nil {
		t.Fatalf("Exynos5410 preset invalid: %v", err)
	}
	if p.Big().MaxFreqMHz() != 1600 || p.Little().MaxFreqMHz() != 1200 {
		t.Errorf("5410 CPU ranges wrong: big %d, LITTLE %d",
			p.Big().MaxFreqMHz(), p.Little().MaxFreqMHz())
	}
	if p.GPU().NumCores != 3 || p.GPU().MaxFreqMHz() != 533 {
		t.Errorf("5410 GPU wrong: %d cores @ %d", p.GPU().NumCores, p.GPU().MaxFreqMHz())
	}
	if p.TripC != 90 || p.TripCapMHz != 800 {
		t.Errorf("5410 trip config wrong: %g °C cap %d", p.TripC, p.TripCapMHz)
	}
}

func TestExynos5410DesignSpaceDiffers(t *testing.T) {
	// The design-space formulas must follow the platform: the 5410 has
	// 11 big OPPs, 11 LITTLE OPPs and 5 GPU OPPs.
	p := Exynos5410()
	fb := p.Big().NumOPPs()
	fl := p.Little().NumOPPs()
	fg := p.GPU().NumOPPs()
	if fb != 11 || fl != 11 || fg != 5 {
		t.Fatalf("OPP counts %d/%d/%d, want 11/11/5", fb, fl, fg)
	}
}
