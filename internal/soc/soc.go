// Package soc describes heterogeneous multiprocessor system-on-chip (MPSoC)
// platforms: clusters of cores, their operating performance points (OPPs),
// cluster-wise DVFS constraints and sensor placement.
//
// The package is a pure description layer: it owns no simulation state.
// The canonical platform is the Samsung Exynos 5422 used by the Odroid-XU4
// board (see Exynos5422), the evaluation target of the TEEM paper, but any
// CPU-GPU MPSoC can be described.
package soc

import (
	"fmt"
	"sort"
)

// ClusterKind distinguishes the micro-architectural role of a cluster.
type ClusterKind int

const (
	// BigCPU marks a high-performance out-of-order CPU cluster
	// (e.g. ARM Cortex-A15).
	BigCPU ClusterKind = iota
	// LittleCPU marks an energy-efficient in-order CPU cluster
	// (e.g. ARM Cortex-A7).
	LittleCPU
	// GPU marks a programmable graphics/compute cluster
	// (e.g. ARM Mali-T628).
	GPU
)

// String returns the conventional short name of the cluster kind.
func (k ClusterKind) String() string {
	switch k {
	case BigCPU:
		return "big"
	case LittleCPU:
		return "LITTLE"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("ClusterKind(%d)", int(k))
	}
}

// OPP is a single operating performance point: a frequency and the supply
// voltage required to sustain it.
type OPP struct {
	// FreqMHz is the clock frequency in MHz.
	FreqMHz int
	// VoltV is the supply voltage in volts.
	VoltV float64
}

// Cluster describes one voltage/frequency island of the SoC. All cores of a
// cluster share a clock and a voltage rail (cluster-wise DVFS), as on the
// Exynos 5422.
type Cluster struct {
	// Name is a short identifier, e.g. "A15", "A7", "MaliT628".
	Name string
	// Kind is the micro-architectural role.
	Kind ClusterKind
	// NumCores is the number of cores (CPU) or shader cores (GPU).
	NumCores int
	// OPPs is the table of supported operating points, sorted by
	// ascending frequency.
	OPPs []OPP

	// CdynCoreNF is the effective switched capacitance of one fully
	// active core in nanofarads; dynamic power of a core is
	// Cdyn·V²·f·activity.
	CdynCoreNF float64
	// LeakCoeff scales the static leakage power of one powered core
	// (watts at nominal voltage and 25 °C junction temperature).
	LeakCoeff float64
	// LeakTempCoeff is the fractional leakage increase per °C above
	// 25 °C (super-linear leakage-temperature feedback linearised).
	LeakTempCoeff float64
}

// Validate reports an error if the cluster description is internally
// inconsistent.
func (c *Cluster) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("soc: cluster has empty name")
	}
	if c.NumCores <= 0 {
		return fmt.Errorf("soc: cluster %s: NumCores must be positive, got %d", c.Name, c.NumCores)
	}
	if len(c.OPPs) == 0 {
		return fmt.Errorf("soc: cluster %s: no OPPs", c.Name)
	}
	if !sort.SliceIsSorted(c.OPPs, func(i, j int) bool { return c.OPPs[i].FreqMHz < c.OPPs[j].FreqMHz }) {
		return fmt.Errorf("soc: cluster %s: OPPs not sorted by frequency", c.Name)
	}
	for i, p := range c.OPPs {
		if p.FreqMHz <= 0 {
			return fmt.Errorf("soc: cluster %s: OPP %d has non-positive frequency %d", c.Name, i, p.FreqMHz)
		}
		if p.VoltV <= 0 {
			return fmt.Errorf("soc: cluster %s: OPP %d has non-positive voltage %g", c.Name, i, p.VoltV)
		}
		if i > 0 && c.OPPs[i-1].FreqMHz == p.FreqMHz {
			return fmt.Errorf("soc: cluster %s: duplicate OPP frequency %d MHz", c.Name, p.FreqMHz)
		}
		if i > 0 && c.OPPs[i-1].VoltV > p.VoltV {
			return fmt.Errorf("soc: cluster %s: voltage must be non-decreasing with frequency (OPP %d)", c.Name, i)
		}
	}
	if c.CdynCoreNF <= 0 {
		return fmt.Errorf("soc: cluster %s: CdynCoreNF must be positive", c.Name)
	}
	if c.LeakCoeff < 0 || c.LeakTempCoeff < 0 {
		return fmt.Errorf("soc: cluster %s: leakage coefficients must be non-negative", c.Name)
	}
	return nil
}

// MinFreqMHz returns the lowest supported frequency.
func (c *Cluster) MinFreqMHz() int { return c.OPPs[0].FreqMHz }

// MaxFreqMHz returns the highest supported frequency.
func (c *Cluster) MaxFreqMHz() int { return c.OPPs[len(c.OPPs)-1].FreqMHz }

// NumOPPs returns the number of operating points.
func (c *Cluster) NumOPPs() int { return len(c.OPPs) }

// OPPIndex returns the index of the OPP with exactly the given frequency,
// or -1 if the frequency is not a supported operating point.
func (c *Cluster) OPPIndex(freqMHz int) int {
	for i, p := range c.OPPs {
		if p.FreqMHz == freqMHz {
			return i
		}
	}
	return -1
}

// NearestOPP returns the supported OPP closest to the requested frequency,
// preferring the lower one on ties (conservative for thermal headroom).
func (c *Cluster) NearestOPP(freqMHz int) OPP {
	best := c.OPPs[0]
	bestD := abs(best.FreqMHz - freqMHz)
	for _, p := range c.OPPs[1:] {
		if d := abs(p.FreqMHz - freqMHz); d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// FloorOPP returns the highest OPP whose frequency does not exceed freqMHz.
// If freqMHz is below the minimum OPP, the minimum OPP is returned.
func (c *Cluster) FloorOPP(freqMHz int) OPP {
	best := c.OPPs[0]
	for _, p := range c.OPPs {
		if p.FreqMHz <= freqMHz {
			best = p
		}
	}
	return best
}

// CeilOPP returns the lowest OPP whose frequency is at least freqMHz.
// If freqMHz is above the maximum OPP, the maximum OPP is returned.
func (c *Cluster) CeilOPP(freqMHz int) OPP {
	for _, p := range c.OPPs {
		if p.FreqMHz >= freqMHz {
			return p
		}
	}
	return c.OPPs[len(c.OPPs)-1]
}

// StepDown returns the OPP delta MHz below the given frequency, clamped to
// the cluster minimum and snapped to a supported point. This implements the
// paper's "reduce the frequency level of the A15 core by a delta value".
func (c *Cluster) StepDown(freqMHz, deltaMHz int) OPP {
	return c.FloorOPP(freqMHz - deltaMHz)
}

// VoltageAt returns the rail voltage required for the given frequency,
// snapping up to the next supported OPP.
func (c *Cluster) VoltageAt(freqMHz int) float64 {
	return c.CeilOPP(freqMHz).VoltV
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Platform is a complete MPSoC description.
type Platform struct {
	// Name identifies the SoC, e.g. "Exynos5422".
	Name string
	// Clusters lists the voltage/frequency islands. By convention CPU
	// clusters come first; use FindCluster or the Kind helpers for
	// order-independent access.
	Clusters []Cluster
	// BoardBaselineW is the constant power draw of the rest of the
	// board (regulators, memory at idle, peripherals) in watts, as seen
	// by a board-level power meter such as the Odroid Smart Power 2.
	BoardBaselineW float64
	// DRAMPowerPerGBs is the additional power in watts per GB/s of
	// memory traffic generated by the workload.
	DRAMPowerPerGBs float64
	// AmbientC is the ambient temperature in °C used by thermal models.
	AmbientC float64
	// TripC is the hardware thermal protection trip point in °C: when a
	// sensor reaches it the affected cluster is throttled by the
	// hardware regardless of software policy.
	TripC float64
	// TripReleaseC is the temperature below which hardware throttling is
	// released (hysteresis).
	TripReleaseC float64
	// TripCapMHz is the frequency cap applied by hardware protection to
	// the big CPU cluster (900 MHz on the stock Exynos 5422 firmware).
	TripCapMHz int
}

// Validate reports an error if the platform description is inconsistent.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("soc: platform has empty name")
	}
	if len(p.Clusters) == 0 {
		return fmt.Errorf("soc: platform %s: no clusters", p.Name)
	}
	seen := make(map[string]bool, len(p.Clusters))
	for i := range p.Clusters {
		c := &p.Clusters[i]
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("soc: platform %s: duplicate cluster name %q", p.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if p.TripC <= p.TripReleaseC {
		return fmt.Errorf("soc: platform %s: TripC (%g) must exceed TripReleaseC (%g)", p.Name, p.TripC, p.TripReleaseC)
	}
	if p.BoardBaselineW < 0 || p.DRAMPowerPerGBs < 0 {
		return fmt.Errorf("soc: platform %s: negative board power coefficients", p.Name)
	}
	return nil
}

// FindCluster returns the cluster with the given name, or nil.
func (p *Platform) FindCluster(name string) *Cluster {
	for i := range p.Clusters {
		if p.Clusters[i].Name == name {
			return &p.Clusters[i]
		}
	}
	return nil
}

// ClusterIndex returns the index of the named cluster, or -1.
func (p *Platform) ClusterIndex(name string) int {
	for i := range p.Clusters {
		if p.Clusters[i].Name == name {
			return i
		}
	}
	return -1
}

// FirstOfKind returns the first cluster of the given kind, or nil.
func (p *Platform) FirstOfKind(k ClusterKind) *Cluster {
	for i := range p.Clusters {
		if p.Clusters[i].Kind == k {
			return &p.Clusters[i]
		}
	}
	return nil
}

// Big returns the big CPU cluster (nil if the platform has none).
func (p *Platform) Big() *Cluster { return p.FirstOfKind(BigCPU) }

// Little returns the LITTLE CPU cluster (nil if the platform has none).
func (p *Platform) Little() *Cluster { return p.FirstOfKind(LittleCPU) }

// GPU returns the GPU cluster (nil if the platform has none).
func (p *Platform) GPU() *Cluster { return p.FirstOfKind(GPU) }

// TotalCPUCores returns the number of CPU cores across big and LITTLE
// clusters.
func (p *Platform) TotalCPUCores() int {
	n := 0
	for i := range p.Clusters {
		if p.Clusters[i].Kind == BigCPU || p.Clusters[i].Kind == LittleCPU {
			n += p.Clusters[i].NumCores
		}
	}
	return n
}
