package soc

// Exynos5422 returns a description of the Samsung Exynos 5422 MPSoC as
// integrated on the Odroid-XU4 board: a quad-core Cortex-A15 big cluster
// (200–2000 MHz in 100 MHz steps, 19 OPPs), a quad-core Cortex-A7 LITTLE
// cluster (200–1400 MHz, 13 OPPs) and a Mali-T628 MP6 GPU with 6 shader
// cores (7 OPPs up to 600 MHz). Voltages follow the published DVFS tables
// closely enough for power-model purposes.
//
// The stock firmware trips hardware thermal protection at 95 °C and caps
// the big cluster at 900 MHz until the sensor falls below ~90 °C; that
// reactive behaviour is the paper's Fig. 1(a) baseline.
func Exynos5422() *Platform {
	return &Platform{
		Name: "Exynos5422",
		Clusters: []Cluster{
			{
				Name:     "A15",
				Kind:     BigCPU,
				NumCores: 4,
				OPPs: rampOPPs(200, 2000, 100, []voltPoint{
					{200, 0.9125}, {600, 0.9625}, {1000, 1.0250},
					{1400, 1.1125}, {1600, 1.1250}, {1800, 1.1900}, {2000, 1.4250},
				}),
				CdynCoreNF:    0.35,
				LeakCoeff:     0.10,
				LeakTempCoeff: 0.012,
			},
			{
				Name:     "A7",
				Kind:     LittleCPU,
				NumCores: 4,
				OPPs: rampOPPs(200, 1400, 100, []voltPoint{
					{200, 0.9125}, {600, 0.9625}, {1000, 1.0375},
					{1400, 1.2500},
				}),
				CdynCoreNF:    0.08,
				LeakCoeff:     0.02,
				LeakTempCoeff: 0.010,
			},
			{
				Name:     "MaliT628",
				Kind:     GPU,
				NumCores: 6,
				OPPs: []OPP{
					{FreqMHz: 177, VoltV: 0.9125},
					{FreqMHz: 266, VoltV: 0.9375},
					{FreqMHz: 350, VoltV: 0.9625},
					{FreqMHz: 420, VoltV: 1.0000},
					{FreqMHz: 480, VoltV: 1.0375},
					{FreqMHz: 543, VoltV: 1.0875},
					{FreqMHz: 600, VoltV: 1.1500},
				},
				CdynCoreNF:    0.45,
				LeakCoeff:     0.06,
				LeakTempCoeff: 0.010,
			},
		},
		BoardBaselineW:  2.80,
		DRAMPowerPerGBs: 0.22,
		AmbientC:        28.0,
		TripC:           95.0,
		TripReleaseC:    87.0,
		TripCapMHz:      900,
	}
}

// voltPoint is an anchor on the voltage-frequency curve used when building
// dense OPP ramps.
type voltPoint struct {
	freqMHz int
	voltV   float64
}

// rampOPPs builds an OPP table from loMHz to hiMHz (inclusive) in stepMHz
// increments, interpolating voltages piecewise-linearly between anchors.
func rampOPPs(loMHz, hiMHz, stepMHz int, anchors []voltPoint) []OPP {
	var opps []OPP
	for f := loMHz; f <= hiMHz; f += stepMHz {
		opps = append(opps, OPP{FreqMHz: f, VoltV: interpVolt(anchors, f)})
	}
	return opps
}

func interpVolt(anchors []voltPoint, freqMHz int) float64 {
	if len(anchors) == 0 {
		return 1.0
	}
	if freqMHz <= anchors[0].freqMHz {
		return anchors[0].voltV
	}
	last := anchors[len(anchors)-1]
	if freqMHz >= last.freqMHz {
		return last.voltV
	}
	for i := 1; i < len(anchors); i++ {
		a, b := anchors[i-1], anchors[i]
		if freqMHz <= b.freqMHz {
			t := float64(freqMHz-a.freqMHz) / float64(b.freqMHz-a.freqMHz)
			return a.voltV + t*(b.voltV-a.voltV)
		}
	}
	return last.voltV
}
