package soc

import (
	"encoding/json"
	"fmt"
	"io"
)

// Platform descriptions are plain data, so they serialise directly: a
// downstream user can define custom hardware in a JSON file and load it at
// runtime (teemsim -platform custom.json) instead of recompiling.

// jsonCluster mirrors Cluster with explicit JSON tags and a string kind.
type jsonCluster struct {
	Name          string    `json:"name"`
	Kind          string    `json:"kind"` // "big", "LITTLE", "GPU"
	NumCores      int       `json:"num_cores"`
	OPPs          []jsonOPP `json:"opps"`
	CdynCoreNF    float64   `json:"cdyn_core_nf"`
	LeakCoeff     float64   `json:"leak_coeff"`
	LeakTempCoeff float64   `json:"leak_temp_coeff"`
}

type jsonOPP struct {
	FreqMHz int     `json:"freq_mhz"`
	VoltV   float64 `json:"volt_v"`
}

type jsonPlatform struct {
	Name            string        `json:"name"`
	Clusters        []jsonCluster `json:"clusters"`
	BoardBaselineW  float64       `json:"board_baseline_w"`
	DRAMPowerPerGBs float64       `json:"dram_power_per_gbs"`
	AmbientC        float64       `json:"ambient_c"`
	TripC           float64       `json:"trip_c"`
	TripReleaseC    float64       `json:"trip_release_c"`
	TripCapMHz      int           `json:"trip_cap_mhz"`
}

func kindToString(k ClusterKind) string { return k.String() }

func kindFromString(s string) (ClusterKind, error) {
	switch s {
	case "big":
		return BigCPU, nil
	case "LITTLE":
		return LittleCPU, nil
	case "GPU":
		return GPU, nil
	default:
		return 0, fmt.Errorf("soc: unknown cluster kind %q (want big, LITTLE or GPU)", s)
	}
}

// toJSON converts the platform to its wire mirror.
func (p *Platform) toJSON() jsonPlatform {
	jp := jsonPlatform{
		Name:            p.Name,
		BoardBaselineW:  p.BoardBaselineW,
		DRAMPowerPerGBs: p.DRAMPowerPerGBs,
		AmbientC:        p.AmbientC,
		TripC:           p.TripC,
		TripReleaseC:    p.TripReleaseC,
		TripCapMHz:      p.TripCapMHz,
	}
	for i := range p.Clusters {
		c := &p.Clusters[i]
		jc := jsonCluster{
			Name:          c.Name,
			Kind:          kindToString(c.Kind),
			NumCores:      c.NumCores,
			CdynCoreNF:    c.CdynCoreNF,
			LeakCoeff:     c.LeakCoeff,
			LeakTempCoeff: c.LeakTempCoeff,
		}
		for _, o := range c.OPPs {
			jc.OPPs = append(jc.OPPs, jsonOPP{FreqMHz: o.FreqMHz, VoltV: o.VoltV})
		}
		jp.Clusters = append(jp.Clusters, jc)
	}
	return jp
}

// platformFromJSON converts the wire mirror back into a Platform. The
// result is structurally decoded but not yet validated — callers decide
// when Validate runs (LoadPlatform validates immediately; a bundle
// validates the pair as a whole).
func platformFromJSON(jp jsonPlatform) (*Platform, error) {
	p := &Platform{
		Name:            jp.Name,
		BoardBaselineW:  jp.BoardBaselineW,
		DRAMPowerPerGBs: jp.DRAMPowerPerGBs,
		AmbientC:        jp.AmbientC,
		TripC:           jp.TripC,
		TripReleaseC:    jp.TripReleaseC,
		TripCapMHz:      jp.TripCapMHz,
	}
	for _, jc := range jp.Clusters {
		kind, err := kindFromString(jc.Kind)
		if err != nil {
			return nil, err
		}
		c := Cluster{
			Name:          jc.Name,
			Kind:          kind,
			NumCores:      jc.NumCores,
			CdynCoreNF:    jc.CdynCoreNF,
			LeakCoeff:     jc.LeakCoeff,
			LeakTempCoeff: jc.LeakTempCoeff,
		}
		for _, o := range jc.OPPs {
			c.OPPs = append(c.OPPs, OPP{FreqMHz: o.FreqMHz, VoltV: o.VoltV})
		}
		p.Clusters = append(p.Clusters, c)
	}
	return p, nil
}

// MarshalJSON encodes the platform through the same schema Save writes,
// so a platform nests inside larger JSON documents (notably the platform
// catalog's bundle files). It performs no validation — Save does.
func (p *Platform) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.toJSON())
}

// UnmarshalJSON decodes the Save/LoadPlatform schema. Like MarshalJSON it
// is a pure codec: run Validate (or LoadPlatform) on untrusted input.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var jp jsonPlatform
	if err := json.Unmarshal(data, &jp); err != nil {
		return fmt.Errorf("soc: decoding platform: %w", err)
	}
	np, err := platformFromJSON(jp)
	if err != nil {
		return err
	}
	*p = *np
	return nil
}

// Save writes the platform as indented JSON.
func (p *Platform) Save(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.toJSON())
}

// LoadPlatform reads and validates a platform from JSON.
func LoadPlatform(r io.Reader) (*Platform, error) {
	var jp jsonPlatform
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("soc: decoding platform: %w", err)
	}
	p, err := platformFromJSON(jp)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
