package soc

import (
	"encoding/json"
	"fmt"
	"io"
)

// Platform descriptions are plain data, so they serialise directly: a
// downstream user can define custom hardware in a JSON file and load it at
// runtime (teemsim -platform custom.json) instead of recompiling.

// jsonCluster mirrors Cluster with explicit JSON tags and a string kind.
type jsonCluster struct {
	Name          string    `json:"name"`
	Kind          string    `json:"kind"` // "big", "LITTLE", "GPU"
	NumCores      int       `json:"num_cores"`
	OPPs          []jsonOPP `json:"opps"`
	CdynCoreNF    float64   `json:"cdyn_core_nf"`
	LeakCoeff     float64   `json:"leak_coeff"`
	LeakTempCoeff float64   `json:"leak_temp_coeff"`
}

type jsonOPP struct {
	FreqMHz int     `json:"freq_mhz"`
	VoltV   float64 `json:"volt_v"`
}

type jsonPlatform struct {
	Name            string        `json:"name"`
	Clusters        []jsonCluster `json:"clusters"`
	BoardBaselineW  float64       `json:"board_baseline_w"`
	DRAMPowerPerGBs float64       `json:"dram_power_per_gbs"`
	AmbientC        float64       `json:"ambient_c"`
	TripC           float64       `json:"trip_c"`
	TripReleaseC    float64       `json:"trip_release_c"`
	TripCapMHz      int           `json:"trip_cap_mhz"`
}

func kindToString(k ClusterKind) string { return k.String() }

func kindFromString(s string) (ClusterKind, error) {
	switch s {
	case "big":
		return BigCPU, nil
	case "LITTLE":
		return LittleCPU, nil
	case "GPU":
		return GPU, nil
	default:
		return 0, fmt.Errorf("soc: unknown cluster kind %q (want big, LITTLE or GPU)", s)
	}
}

// Save writes the platform as indented JSON.
func (p *Platform) Save(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	jp := jsonPlatform{
		Name:            p.Name,
		BoardBaselineW:  p.BoardBaselineW,
		DRAMPowerPerGBs: p.DRAMPowerPerGBs,
		AmbientC:        p.AmbientC,
		TripC:           p.TripC,
		TripReleaseC:    p.TripReleaseC,
		TripCapMHz:      p.TripCapMHz,
	}
	for i := range p.Clusters {
		c := &p.Clusters[i]
		jc := jsonCluster{
			Name:          c.Name,
			Kind:          kindToString(c.Kind),
			NumCores:      c.NumCores,
			CdynCoreNF:    c.CdynCoreNF,
			LeakCoeff:     c.LeakCoeff,
			LeakTempCoeff: c.LeakTempCoeff,
		}
		for _, o := range c.OPPs {
			jc.OPPs = append(jc.OPPs, jsonOPP{FreqMHz: o.FreqMHz, VoltV: o.VoltV})
		}
		jp.Clusters = append(jp.Clusters, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// LoadPlatform reads and validates a platform from JSON.
func LoadPlatform(r io.Reader) (*Platform, error) {
	var jp jsonPlatform
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("soc: decoding platform: %w", err)
	}
	p := &Platform{
		Name:            jp.Name,
		BoardBaselineW:  jp.BoardBaselineW,
		DRAMPowerPerGBs: jp.DRAMPowerPerGBs,
		AmbientC:        jp.AmbientC,
		TripC:           jp.TripC,
		TripReleaseC:    jp.TripReleaseC,
		TripCapMHz:      jp.TripCapMHz,
	}
	for _, jc := range jp.Clusters {
		kind, err := kindFromString(jc.Kind)
		if err != nil {
			return nil, err
		}
		c := Cluster{
			Name:          jc.Name,
			Kind:          kind,
			NumCores:      jc.NumCores,
			CdynCoreNF:    jc.CdynCoreNF,
			LeakCoeff:     jc.LeakCoeff,
			LeakTempCoeff: jc.LeakTempCoeff,
		}
		for _, o := range jc.OPPs {
			c.OPPs = append(c.OPPs, OPP{FreqMHz: o.FreqMHz, VoltV: o.VoltV})
		}
		p.Clusters = append(p.Clusters, c)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
