package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if _, err := MeanErr(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MeanErr(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 divisor = 32/7.
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := PopVariance(xs); !almost(got, 4.0, 1e-12) {
		t.Errorf("PopVariance = %g, want 4", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Error("StdDev inconsistent with Variance")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g,%g,%v), want (-1,7,nil)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MinMax(nil) should return ErrEmpty")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R: quantile(1:4, .25) = 1.75 (type 7).
	q, err := Quantile(xs, 0.25)
	if err != nil || !almost(q, 1.75, 1e-12) {
		t.Errorf("Quantile(.25) = %g, want 1.75", q)
	}
	q, _ = Quantile(xs, 0.5)
	if !almost(q, 2.5, 1e-12) {
		t.Errorf("Quantile(.5) = %g, want 2.5", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 4 {
		t.Errorf("Quantile(1) = %g, want 4", q)
	}
	q, _ = Quantile(xs, 0)
	if q != 1 {
		t.Errorf("Quantile(0) = %g, want 1", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(nil) should return ErrEmpty")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(p>1) should error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestFiveNum(t *testing.T) {
	min, q1, med, q3, max, err := FiveNum([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if min != 1 || q1 != 2 || med != 3 || q3 != 4 || max != 5 {
		t.Errorf("FiveNum = %g %g %g %g %g", min, q1, med, q3, max)
	}
	if _, _, _, _, _, err := FiveNum(nil); !errors.Is(err, ErrEmpty) {
		t.Error("FiveNum(nil) should return ErrEmpty")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("Pearson perfect positive = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("Pearson perfect negative = %g, want -1", r)
	}
	if _, err := Pearson(xs, xs[:3]); err == nil {
		t.Error("Pearson length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("Pearson zero-variance input should error")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// I_x(2,2) = 3x² − 2x³.
	for _, x := range []float64{0.2, 0.5, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); !almost(got, want, 1e-10) {
			t.Errorf("I_%g(2,2) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(RegIncBeta(-1, 1, 0.5)) {
		t.Error("RegIncBeta with a<=0 should be NaN")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t=0 → 0.5 for any df.
	for _, df := range []float64{1, 5, 30} {
		if got := StudentTCDF(0, df); !almost(got, 0.5, 1e-12) {
			t.Errorf("T(0, df=%g) = %g, want 0.5", df, got)
		}
	}
	// df=1 is the Cauchy distribution: CDF(1) = 0.75.
	if got := StudentTCDF(1, 1); !almost(got, 0.75, 1e-10) {
		t.Errorf("T(1, df=1) = %g, want 0.75", got)
	}
	// Large df approaches the normal: CDF(1.96, 1e6) ≈ 0.975.
	if got := StudentTCDF(1.96, 1e6); !almost(got, 0.975, 1e-3) {
		t.Errorf("T(1.96, df=1e6) = %g, want ≈0.975", got)
	}
	if got := StudentTCDF(math.Inf(1), 5); got != 1 {
		t.Errorf("T(+inf) = %g, want 1", got)
	}
	if got := StudentTCDF(math.Inf(-1), 5); got != 0 {
		t.Errorf("T(-inf) = %g, want 0", got)
	}
}

// The paper's Table II reports Pr(>|t|) = 3.68e-06 for t = -7.642 on 13 df.
func TestTTestPValueMatchesPaperTableII(t *testing.T) {
	p := TTestPValue(-7.642, 13)
	if !almost(p, 3.68e-06, 5e-08) {
		t.Errorf("p-value for t=-7.642, df=13: got %g, want ≈3.68e-06", p)
	}
	// Table II AT row: t = -2.499, df = 13 → p ≈ 0.02663.
	p = TTestPValue(-2.499, 13)
	if !almost(p, 0.02663, 5e-5) {
		t.Errorf("p-value for t=-2.499, df=13: got %g, want ≈0.02663", p)
	}
	// Table I ET row: t = -2.760, df = 12 → p ≈ 0.01727.
	p = TTestPValue(-2.760, 12)
	if !almost(p, 0.01727, 5e-5) {
		t.Errorf("p-value for t=-2.760, df=12: got %g, want ≈0.01727", p)
	}
}

// The paper's Table II: F = 76.71 on (2, 13) df → p ≈ 6.348e-08.
func TestFTestPValueMatchesPaperTableII(t *testing.T) {
	p := FTestPValue(76.71, 2, 13)
	if !almost(p, 6.348e-08, 2e-09) {
		t.Errorf("F p-value: got %g, want ≈6.348e-08", p)
	}
	// Table I: F = 20.98 on (4, 12) df → p ≈ 2.396e-05.
	p = FTestPValue(20.98, 4, 12)
	if !almost(p, 2.396e-05, 5e-07) {
		t.Errorf("F p-value: got %g, want ≈2.396e-05", p)
	}
}

func TestFCDFEdgeCases(t *testing.T) {
	if got := FCDF(0, 2, 10); got != 0 {
		t.Errorf("FCDF(0) = %g, want 0", got)
	}
	if got := FCDF(-3, 2, 10); got != 0 {
		t.Errorf("FCDF(-3) = %g, want 0", got)
	}
	if !math.IsNaN(FCDF(1, 0, 10)) {
		t.Error("FCDF with df1=0 should be NaN")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0); !almost(got, 0.5, 1e-12) {
		t.Errorf("Φ(0) = %g", got)
	}
	if got := NormalCDF(1.959964); !almost(got, 0.975, 1e-6) {
		t.Errorf("Φ(1.96) = %g, want 0.975", got)
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Round-trip: CDF(Quantile(p)) == p.
	for _, p := range []float64{0.025, 0.5, 0.975} {
		q := StudentTQuantile(p, 13)
		if got := StudentTCDF(q, 13); !almost(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	// Known value: t_{0.975, 10} ≈ 2.2281.
	if q := StudentTQuantile(0.975, 10); !almost(q, 2.2281, 1e-3) {
		t.Errorf("t_{0.975,10} = %g, want ≈2.2281", q)
	}
	if !math.IsNaN(StudentTQuantile(0, 10)) || !math.IsNaN(StudentTQuantile(0.5, -1)) {
		t.Error("invalid quantile arguments should give NaN")
	}
}

func TestSignifCode(t *testing.T) {
	cases := []struct {
		p    float64
		want string
	}{
		{0.0001, "***"}, {0.001, "***"}, {0.005, "**"}, {0.03, "*"},
		{0.07, "."}, {0.5, ""},
	}
	for _, c := range cases {
		if got := SignifCode(c.p); got != c.want {
			t.Errorf("SignifCode(%g) = %q, want %q", c.p, got, c.want)
		}
	}
}

// Property: CDFs are monotone non-decreasing and bounded in [0,1].
func TestStudentTCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 10)
		b = math.Mod(math.Abs(b), 10)
		lo, hi := a-5, b-5
		if lo > hi {
			lo, hi = hi, lo
		}
		cLo, cHi := StudentTCDF(lo, 7), StudentTCDF(hi, 7)
		return cLo >= 0 && cHi <= 1 && cLo <= cHi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: symmetry of the t distribution: CDF(-t) = 1 - CDF(t).
func TestStudentTCDFSymmetryProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 8)
		return almost(StudentTCDF(-x, 9)+StudentTCDF(x, 9), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RegIncBeta satisfies the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
func TestRegIncBetaSymmetryProperty(t *testing.T) {
	f := func(ra, rb, rx float64) bool {
		a := 0.5 + math.Mod(math.Abs(ra), 10)
		b := 0.5 + math.Mod(math.Abs(rb), 10)
		x := math.Mod(math.Abs(rx), 1)
		return almost(RegIncBeta(a, b, x), 1-RegIncBeta(b, a, 1-x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
