package stats

import "testing"

// BenchmarkTTestPValue measures the two-sided t-test p-value (one
// regression coefficient row).
func BenchmarkTTestPValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TTestPValue(-2.76, 12)
	}
}

// BenchmarkFTestPValue measures the regression overall-F p-value.
func BenchmarkFTestPValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FTestPValue(20.98, 4, 12)
	}
}
