// Package stats provides the descriptive statistics and probability
// distributions required by the regression engine and the evaluation
// metrics: means, variances, R-compatible quantiles, Pearson correlation,
// and the Student-t, Fisher F and normal distributions (via the regularised
// incomplete beta and gamma functions).
//
// Everything is implemented from scratch on the standard library so the
// module stays dependency-free.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input;
// callers that must distinguish use MeanErr.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanErr is Mean with an explicit empty-input error.
func MeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Mean(xs), nil
}

// Variance returns the unbiased sample variance (divisor n-1) of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population variance (divisor n) of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using R's default
// type-7 definition (linear interpolation of the order statistics), so
// quartiles match the "Residuals" block of an R summary.
func Quantile(xs []float64, p float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile probability outside [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1], nil
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo]), nil
}

// FiveNum returns min, 1st quartile, median, 3rd quartile and max, as shown
// in R regression summaries.
func FiveNum(xs []float64) (min, q1, med, q3, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, 0, 0, 0, ErrEmpty
	}
	min, max, _ = MinMax(xs)
	q1, _ = Quantile(xs, 0.25)
	med, _ = Quantile(xs, 0.50)
	q3, _ = Quantile(xs, 0.75)
	return min, q1, med, q3, max, nil
}

// Pearson returns the Pearson product-moment correlation coefficient of
// paired samples xs, ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson inputs have different lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson input has zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
