package stats

import "math"

// This file implements the special functions and distribution CDFs needed
// to reproduce R's summary.lm p-values: the regularised incomplete beta
// function drives both the Student-t and the Fisher F distributions.

// lgamma returns log Γ(x) for x > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncBeta returns the regularised incomplete beta function I_x(a, b)
// for a, b > 0 and 0 ≤ x ≤ 1, computed with the continued-fraction
// expansion from Numerical Recipes (betacf) which converges for all valid
// arguments when combined with the symmetry transformation.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student-t variable with df degrees of
// freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestPValue returns the two-sided p-value Pr(>|t|) for a t statistic with
// df degrees of freedom, matching R's coefficient table.
func TTestPValue(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// FCDF returns P(X ≤ f) for a Fisher F variable with (df1, df2) degrees of
// freedom.
func FCDF(f, df1, df2 float64) float64 {
	if df1 <= 0 || df2 <= 0 {
		return math.NaN()
	}
	if f <= 0 {
		return 0
	}
	x := df1 * f / (df1*f + df2)
	return RegIncBeta(df1/2, df2/2, x)
}

// FTestPValue returns the upper-tail p-value for an F statistic, matching
// the "F-statistic ... p-value" line of an R summary.
func FTestPValue(f, df1, df2 float64) float64 {
	p := 1 - FCDF(f, df1, df2)
	if p < 0 {
		return 0
	}
	return p
}

// NormalCDF returns P(Z ≤ z) for a standard normal variable.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StudentTQuantile returns the t value such that P(T ≤ t) = p for df
// degrees of freedom, found by bisection on the CDF. It is used for
// confidence intervals on regression coefficients.
func StudentTQuantile(p, df float64) float64 {
	if df <= 0 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SignifCode returns R's significance stars for a p-value:
// "***" ≤0.001, "**" ≤0.01, "*" ≤0.05, "." ≤0.1, "" otherwise.
func SignifCode(p float64) string {
	switch {
	case p <= 0.001:
		return "***"
	case p <= 0.01:
		return "**"
	case p <= 0.05:
		return "*"
	case p <= 0.1:
		return "."
	default:
		return ""
	}
}
