package service

import (
	"context"
	"encoding/json"
	"sync"

	"teem/internal/obs"
)

// traceKeep bounds the service-wide span ring: the last traceKeep spans
// are replayable by /trace subscribers; older spans age out. The journal
// and per-job telemetry streams remain the durable records — the ring is
// the low-cost live view.
const traceKeep = 4096

// tracer is the service-wide flight of job lifecycle spans: every job
// emits submit/queue/run/retry/journal-commit/terminal spans here (in
// addition to stamping them on its own telemetry stream), and GET /trace
// replays the ring and optionally follows it live. Unlike a job's
// streamBuf the tracer never closes — it lives as long as the service —
// so followers stop on their own context, not on end-of-stream.
type tracer struct {
	mu   sync.Mutex
	cond *sync.Cond
	// spans is a ring of NDJSON-encoded spans; start is the absolute
	// sequence number of spans[0], so a follower survives eviction.
	spans [][]byte //teem:guards mu
	start int64    //teem:guards mu
}

func newTracer() *tracer {
	t := &tracer{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// emit appends one span to the ring, evicting the oldest past traceKeep.
// Spans that fail to marshal are dropped: tracing is observability, not
// the system of record.
func (t *tracer) emit(sp obs.Span) {
	raw, err := json.Marshal(sp)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	t.mu.Lock()
	t.spans = append(t.spans, raw)
	if len(t.spans) > traceKeep {
		n := len(t.spans) - traceKeep
		t.spans = append(t.spans[:0], t.spans[n:]...)
		t.start += int64(n)
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// wake prods blocked followers so they can notice a cancelled context.
func (t *tracer) wake() {
	t.mu.Lock()
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitFrom returns every buffered span at or after absolute sequence
// seq, blocking while nothing newer exists (unless ctx is already
// cancelled). It returns the lines and the sequence to resume from.
// A seq older than the ring start resumes at the start — the aged-out
// spans are gone.
func (t *tracer) waitFrom(ctx context.Context, seq int64, block bool) (lines [][]byte, next int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for block && seq >= t.start+int64(len(t.spans)) && ctx.Err() == nil {
		t.cond.Wait()
	}
	if seq < t.start {
		seq = t.start
	}
	if i := seq - t.start; i < int64(len(t.spans)) {
		// Copy the slice headers under the lock: emit's eviction path
		// shifts elements within the ring's backing array, so handing
		// out an aliasing sub-slice would race with writers. The []byte
		// contents themselves are write-once, so a shallow copy is safe.
		lines = append([][]byte(nil), t.spans[i:]...)
	}
	return lines, t.start + int64(len(t.spans))
}

// span emits one lifecycle span for a job to the service-wide tracer.
// The timestamp is stamped here so every emission site stays one line.
func (s *Service) span(j *Job, phase, detail string, attempt int) {
	s.tracer.emit(obs.Span{
		Trace:   j.TraceID,
		Job:     j.ID,
		Phase:   phase,
		At:      now().UTC(),
		Tenant:  j.Req.Tenant,
		Attempt: attempt,
		Detail:  detail,
	})
}

// Trace replays the service-wide span ring from the beginning, invoking
// emit for every NDJSON line. With follow it then blocks for new spans
// until ctx is cancelled or emit fails; without, it returns after the
// replay — the snapshot mode tooling uses to poll.
func (s *Service) Trace(ctx context.Context, follow bool, emit func(line []byte) error) error {
	stop := context.AfterFunc(ctx, s.tracer.wake)
	defer stop()
	var seq int64
	for {
		lines, next := s.tracer.waitFrom(ctx, seq, follow)
		for _, ln := range lines {
			if err := emit(ln); err != nil {
				return err
			}
		}
		seq = next
		if err := ctx.Err(); err != nil {
			if !follow {
				return nil
			}
			return err
		}
		if !follow && len(lines) == 0 {
			return nil
		}
	}
}
