package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The write-ahead job journal: one append-only NDJSON file recording
// every job's lifecycle (submit / start / retry / finish), so a daemon
// restart — graceful or SIGKILL — can re-run exactly the work it had
// accepted but not completed. Requests are deterministic, which keeps
// recovery simple: re-submit the uncompleted records under their
// original ids and let the single-flight request cache absorb any
// duplicates; re-running yields byte-identical results.
//
// Durability model (group commit): Append buffers a record and returns;
// a dedicated flusher goroutine writes and fsyncs everything buffered in
// one batch — records that arrive during an fsync share the next one, so
// the fsync cost amortizes across concurrent submitters instead of
// serializing them. AppendSync additionally waits until its record is on
// disk; submit records use it, so a job acknowledged to a client (HTTP
// 202) is always recovered. Lifecycle records (start/retry/finish) are
// fire-and-forget: losing one to a crash only means the job is re-run,
// which is free by determinism.
//
// The file is bounded: past compactAt bytes it is rewritten (write to a
// temp file, fsync, rename) to hold only the submit records of live
// jobs. Recovery performs the same compaction, so the journal never
// accumulates completed history across restarts.
//
// Failure tolerance: corrupt or truncated records (a torn tail from a
// crash mid-write) are skipped and counted, never fatal; duplicate
// submits or finishes for one id are idempotent; write errors — real or
// injected via FaultConfig.JournalErrEvery — are counted and logged,
// degrading durability, never availability.

// Journal record operations.
const (
	opSubmit = "submit"
	opStart  = "start"
	opRetry  = "retry"
	opCancel = "cancel"
	opFinish = "finish"
)

// journalRecord is one NDJSON line of the write-ahead job journal.
type journalRecord struct {
	// Seq orders records within one journal epoch.
	Seq int64 `json:"seq"`
	// Op is the lifecycle step: submit, start, retry, cancel, finish.
	Op string `json:"op"`
	// ID is the job id ("j42") the record describes.
	ID string `json:"id"`
	// Status is the terminal state of a finish record.
	Status Status `json:"status,omitempty"`
	// Error carries the failure/cancellation reason (finish, retry).
	Error string `json:"error,omitempty"`
	// Attempt counts completed executions (retry records).
	Attempt int `json:"attempt,omitempty"`
	// Trace is the job's lifecycle-trace id (submit records only), so a
	// recovered job keeps the trace it was submitted under and one trace
	// id spans the restart.
	Trace string `json:"trace,omitempty"`
	// Req is the normalized request (submit records only) — everything
	// recovery needs to re-run the job, tenant and priority included.
	Req *JobRequest `json:"req,omitempty"`
}

// journal is the running half: an open file, a pending buffer, and the
// flusher goroutine batching fsyncs.
type journal struct {
	path      string
	compactAt int64
	faults    *faultState
	m         *metrics
	logf      func(format string, args ...any)
	// snapshot returns the submit records of every live (non-terminal)
	// job — the compacted image of the journal.
	snapshot func() []journalRecord

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File //teem:guards mu
	// pending buffers records between group-commit fsyncs.
	pending  []byte //teem:guards mu
	appendN  int64  //teem:guards mu — seq of the newest buffered record
	flushedN int64  //teem:guards mu — seq of the newest record on disk
	size     int64  //teem:guards mu
	closed   bool   //teem:guards mu
	// lastErr is the most recent flush failure ("" = the last flush
	// landed), and compactSeq the appendN at the last compaction — the
	// health endpoint reports both.
	lastErr    string //teem:guards mu
	compactSeq int64  //teem:guards mu
	done       chan struct{}
}

// defaultCompactBytes bounds journal growth when Options leave it 0.
const defaultCompactBytes = 1 << 20

// openJournal opens (creating if needed) the journal file and starts the
// flusher. The caller performs recovery first (readJournal) and passes
// the compacted live image via rewrite before appending anything new.
func openJournal(path string, compactAt int64, faults *faultState, m *metrics,
	logf func(string, ...any), snapshot func() []journalRecord) (*journal, error) {
	if compactAt <= 0 {
		compactAt = defaultCompactBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	j := &journal{
		path:      path,
		compactAt: compactAt,
		faults:    faults,
		m:         m,
		logf:      logf,
		snapshot:  snapshot,
		f:         f,
		size:      st.Size(),
		done:      make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	go j.flusher()
	return j, nil
}

// append encodes rec, assigns its seq, and buffers it for the flusher.
// It returns the assigned seq (0 when the record was dropped by an
// injected or encoding error).
func (j *journal) append(rec journalRecord) int64 {
	if j == nil {
		return 0
	}
	if j.faults.fireJournalErr() {
		j.m.journalErrors.Add(1)
		j.logf("journal: injected write error, dropped %s record for %s", rec.Op, rec.ID)
		return 0
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0
	}
	j.appendN++
	rec.Seq = j.appendN
	raw, err := json.Marshal(rec)
	if err != nil {
		j.appendN--
		j.mu.Unlock()
		j.m.journalErrors.Add(1)
		j.logf("journal: encoding %s record for %s: %v", rec.Op, rec.ID, err)
		return 0
	}
	j.pending = append(j.pending, raw...)
	j.pending = append(j.pending, '\n')
	seq := j.appendN
	j.cond.Broadcast()
	j.mu.Unlock()
	return seq
}

// appendSync appends rec and waits until it is fsynced — the durability
// barrier for submit records: once appendSync returns, recovery will see
// the job. Group commit keeps this cheap under load: every waiter whose
// record made the batch is released by one fsync.
func (j *journal) appendSync(rec journalRecord) {
	if j == nil {
		return
	}
	seq := j.append(rec)
	if seq == 0 {
		return
	}
	j.mu.Lock()
	for j.flushedN < seq && !j.closed {
		j.cond.Wait()
	}
	j.mu.Unlock()
}

// flusher is the group-commit loop: write everything pending, fsync
// once, release waiters, compact when the file has outgrown its bound.
func (j *journal) flusher() {
	defer close(j.done)
	j.mu.Lock()
	for {
		for len(j.pending) == 0 && !j.closed {
			j.cond.Wait()
		}
		if len(j.pending) == 0 && j.closed {
			j.mu.Unlock()
			return
		}
		batch := j.pending
		j.pending = nil
		target := j.appendN
		f := j.f
		j.mu.Unlock()

		var werr error
		if _, werr = f.Write(batch); werr == nil {
			werr = f.Sync()
		}

		j.mu.Lock()
		j.flushedN = target
		if werr != nil {
			j.lastErr = werr.Error()
			j.m.journalErrors.Add(1)
			j.logf("journal: write: %v", werr)
		} else {
			j.lastErr = ""
			j.size += int64(len(batch))
			j.m.journalAppends.Add(1)
			j.m.journalBytes.Set(j.size)
		}
		j.cond.Broadcast()
		if j.size > j.compactAt && !j.closed && j.snapshot != nil {
			recs := func() []journalRecord {
				j.mu.Unlock()
				defer j.mu.Lock()
				return j.snapshot()
			}()
			if err := j.rewriteLocked(recs); err != nil {
				j.logf("journal: compaction: %v", err)
			}
		}
	}
}

// rewriteLocked replaces the journal file with exactly recs (temp file +
// fsync + rename), resetting its size. Caller holds j.mu. Pending buffered
// records are untouched — they flush to the new file, and recovery
// tolerates the duplicate submits this can produce.
func (j *journal) rewriteLocked(recs []journalRecord) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for i := range recs {
		j.appendN++
		recs[i].Seq = j.appendN
		raw, err := json.Marshal(recs[i])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		raw = append(raw, '\n')
		if _, err := f.Write(raw); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		size += int64(len(raw))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Direct durability of the rename on the containing directory.
	if dir, err := os.Open(filepath.Dir(j.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	j.f = nf
	j.size = size
	j.compactSeq = j.appendN
	j.m.journalBytes.Set(size)
	j.m.journalCompactions.Add(1)
	return nil
}

// journalHealth is the health endpoint's view of the write-ahead log.
type journalHealth struct {
	// Enabled reports whether a journal is configured at all.
	Enabled bool `json:"enabled"`
	// Degraded means the most recent flush failed: acknowledged work may
	// not survive a crash until a flush lands again. LastError carries
	// the failure.
	Degraded  bool   `json:"degraded"`
	LastError string `json:"last_error,omitempty"`
	// RecordsSinceCompaction counts appends since the file was last
	// rewritten to its live image — a growth gauge.
	RecordsSinceCompaction int64 `json:"records_since_compaction"`
}

// health snapshots the journal's durability state. A nil journal is
// healthy-but-disabled (volatile mode).
func (j *journal) health() journalHealth {
	if j == nil {
		return journalHealth{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return journalHealth{
		Enabled:                true,
		Degraded:               j.lastErr != "",
		LastError:              j.lastErr,
		RecordsSinceCompaction: j.appendN - j.compactSeq,
	}
}

// close flushes whatever is pending and closes the file.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return
	}
	// Final flush inline: the flusher may be mid-batch, so drain our own
	// copy after it exits.
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	<-j.done
	j.mu.Lock()
	batch := j.pending
	j.pending = nil
	f := j.f
	j.mu.Unlock()
	if len(batch) > 0 {
		if _, err := f.Write(batch); err == nil {
			_ = f.Sync()
		}
	}
	f.Close()
}

// recoveredJob is one uncompleted submit found in the journal.
type recoveredJob struct {
	id    string
	trace string
	req   *JobRequest
	seq   int64
}

// journalScan is the outcome of reading a journal file.
type journalScan struct {
	// pending are the uncompleted submits, in original submission order.
	pending []recoveredJob
	// maxID is the highest numeric job id seen ("j42" → 42), so a
	// recovering service never reuses an id from a previous epoch.
	maxID int
	// skipped counts corrupt or truncated records (torn tail included).
	skipped int
	// dupFinishes counts redundant terminal records — tolerated, logged.
	dupFinishes int
}

// readJournal scans an NDJSON journal, tolerating a torn final record,
// corrupt lines anywhere (skip and count), duplicate submits for one id
// (first wins — a compaction artifact) and duplicate finishes
// (idempotent). Records are order-insensitive: a finish seen before its
// submit still marks the id terminal. A missing file is an empty journal.
func readJournal(path string) (journalScan, error) {
	var scan journalScan
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return scan, nil
	}
	if err != nil {
		return scan, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()

	submits := make(map[string]recoveredJob)
	terminal := make(map[string]bool)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" || rec.ID == "" {
			scan.skipped++
			continue
		}
		if n, ok := parseJobID(rec.ID); ok && n > scan.maxID {
			scan.maxID = n
		}
		switch rec.Op {
		case opSubmit:
			if rec.Req == nil {
				scan.skipped++
				continue
			}
			if _, dup := submits[rec.ID]; dup {
				continue // compaction duplicate; first wins
			}
			submits[rec.ID] = recoveredJob{id: rec.ID, trace: rec.Trace, req: rec.Req, seq: rec.Seq}
			order = append(order, rec.ID)
		case opFinish:
			if terminal[rec.ID] {
				scan.dupFinishes++
				continue
			}
			terminal[rec.ID] = true
		case opStart, opRetry, opCancel:
			// Lifecycle breadcrumbs: informative, not state-changing
			// (a cancel *request* may never land; only finish is
			// terminal).
		default:
			// Unknown op from a newer epoch: ignore, don't fail.
		}
	}
	if err := sc.Err(); err != nil {
		// A torn tail longer than the scan buffer or a read error: what
		// parsed so far stands, the rest is skipped.
		scan.skipped++
	}
	for _, id := range order {
		if !terminal[id] {
			scan.pending = append(scan.pending, submits[id])
		}
	}
	sort.Slice(scan.pending, func(a, b int) bool { return scan.pending[a].seq < scan.pending[b].seq })
	return scan, nil
}

// parseJobID extracts the numeric part of a "j<n>" job id.
func parseJobID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
