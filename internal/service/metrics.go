package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"teem/internal/buildinfo"
)

// latencyWindow bounds the sliding window the latency percentiles are
// computed over: the last latencyWindow finished jobs.
const latencyWindow = 512

// tenantStats are one tenant's admission counters: how much work it has
// in the system right now and how admission control has treated it.
type tenantStats struct {
	// queued is the tenant's non-terminal job gauge (queued + running).
	queued expvar.Int
	// submitted counts accepted new jobs (cache hits excluded).
	submitted expvar.Int
	// done counts successful completions.
	done expvar.Int
	// shed counts queued jobs displaced by higher-priority submissions.
	shed expvar.Int
	// quotaRejected counts submissions refused by the tenant's quota.
	quotaRejected expvar.Int
}

func (t *tenantStats) vars() map[string]int64 {
	return map[string]int64{
		"queued":         t.queued.Value(),
		"submitted":      t.submitted.Value(),
		"done":           t.done.Value(),
		"shed":           t.shed.Value(),
		"quota_rejected": t.quotaRejected.Value(),
	}
}

// metrics are the service's operational counters, held as expvar types
// so the daemon can publish them into the process-wide expvar registry
// (/debug/vars) while tests run many isolated services without
// colliding on the global namespace.
type metrics struct {
	queued    expvar.Int
	running   expvar.Int
	done      expvar.Int
	failed    expvar.Int
	cancelled expvar.Int
	cacheHits expvar.Int

	// Robustness counters: load shedding, transient-failure retries,
	// quota rejections, journal health and crash recovery.
	shed               expvar.Int
	retried            expvar.Int
	quotaRejected      expvar.Int
	recoveries         expvar.Int
	recoverySkipped    expvar.Int
	journalAppends     expvar.Int
	journalErrors      expvar.Int
	journalCompactions expvar.Int
	journalBytes       expvar.Int

	tenantMu sync.Mutex
	tenants  map[string]*tenantStats //teem:guards tenantMu

	mu sync.Mutex
	// latencies is a ring of the last latencyWindow samples, in seconds.
	latencies []float64 //teem:guards mu
	latIdx    int       //teem:guards mu
}

func newMetrics() *metrics {
	return &metrics{
		latencies: make([]float64, 0, latencyWindow),
		tenants:   make(map[string]*tenantStats),
	}
}

// tenant returns (creating if needed) the named tenant's counters.
func (m *metrics) tenant(name string) *tenantStats {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantStats{}
		m.tenants[name] = t
	}
	return t
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := d.Seconds()
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, s)
		return
	}
	m.latencies[m.latIdx] = s
	m.latIdx = (m.latIdx + 1) % latencyWindow
}

// percentile computes the p-quantile (0..1) of the latency window.
func (m *metrics) percentile(p float64) float64 {
	m.mu.Lock()
	buf := append([]float64(nil), m.latencies...)
	m.mu.Unlock()
	if len(buf) == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(p * float64(len(buf)-1))
	return buf[i]
}

// Metrics is the read-only view of a service's counters.
type Metrics struct{ m *metrics }

// Queued/Running/Done/Failed/Cancelled/CacheHits read the counters.
func (v *Metrics) Queued() int64    { return v.m.queued.Value() }
func (v *Metrics) Running() int64   { return v.m.running.Value() }
func (v *Metrics) Done() int64      { return v.m.done.Value() }
func (v *Metrics) Failed() int64    { return v.m.failed.Value() }
func (v *Metrics) Cancelled() int64 { return v.m.cancelled.Value() }
func (v *Metrics) CacheHits() int64 { return v.m.cacheHits.Value() }

// Shed counts queued jobs displaced by higher-priority submissions;
// Retried counts transient-failure re-executions; QuotaRejected counts
// submissions refused by tenant quotas; Recoveries counts jobs re-run
// from the journal at startup.
func (v *Metrics) Shed() int64          { return v.m.shed.Value() }
func (v *Metrics) Retried() int64       { return v.m.retried.Value() }
func (v *Metrics) QuotaRejected() int64 { return v.m.quotaRejected.Value() }
func (v *Metrics) Recoveries() int64    { return v.m.recoveries.Value() }

// JournalAppends/JournalErrors/JournalBytes report write-ahead journal
// health: fsynced batches, dropped or failed writes, and current file
// size after compaction keeps it bounded.
func (v *Metrics) JournalAppends() int64 { return v.m.journalAppends.Value() }
func (v *Metrics) JournalErrors() int64  { return v.m.journalErrors.Value() }
func (v *Metrics) JournalBytes() int64   { return v.m.journalBytes.Value() }

// LatencyP50 and LatencyP99 are the job submit→finish latency
// percentiles over the last latencyWindow finished jobs, in seconds.
func (v *Metrics) LatencyP50() float64 { return v.m.percentile(0.50) }
func (v *Metrics) LatencyP99() float64 { return v.m.percentile(0.99) }

// Tenant returns the named tenant's counters as a map (queued,
// submitted, done, shed, quota_rejected).
func (v *Metrics) Tenant(name string) map[string]int64 {
	return v.m.tenant(name).vars()
}

// vars returns the metric set as a JSON-marshalable map — served at
// /metrics and published to expvar by PublishExpvar.
func (v *Metrics) vars() map[string]any {
	m := map[string]any{
		"version":             buildinfo.Version,
		"jobs_queued":         v.Queued(),
		"jobs_running":        v.Running(),
		"jobs_done":           v.Done(),
		"jobs_failed":         v.Failed(),
		"jobs_cancelled":      v.Cancelled(),
		"jobs_shed":           v.Shed(),
		"jobs_retried":        v.Retried(),
		"cache_hits":          v.CacheHits(),
		"quota_rejected":      v.QuotaRejected(),
		"recoveries":          v.Recoveries(),
		"recovery_skipped":    v.m.recoverySkipped.Value(),
		"journal_appends":     v.JournalAppends(),
		"journal_errors":      v.JournalErrors(),
		"journal_compactions": v.m.journalCompactions.Value(),
		"journal_bytes":       v.JournalBytes(),
		"latency_p50_s":       v.LatencyP50(),
		"latency_p99_s":       v.LatencyP99(),
	}
	tenants := map[string]map[string]int64{}
	v.m.tenantMu.Lock()
	for name, t := range v.m.tenants {
		tenants[name] = t.vars()
	}
	v.m.tenantMu.Unlock()
	if len(tenants) > 0 {
		m["tenants"] = tenants
	}
	return m
}

// ServeHTTP serves the metric set as JSON (the /metrics endpoint).
func (v *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v.vars())
}

// publishOnce guards the process-global expvar namespace: the daemon
// runs one Service, tests run many, and expvar.Publish panics on
// duplicate names.
var publishOnce sync.Once

// PublishExpvar publishes the service's counters into the process-wide
// expvar registry under "teemd.*" (visible at /debug/vars). Only the
// first service in the process binds; later calls are no-ops — the
// daemon use case, where exactly one service exists.
func (v *Metrics) PublishExpvar() {
	publishOnce.Do(func() {
		m := v.m
		for name, fn := range map[string]func() any{
			"teemd.jobs_queued":    func() any { return m.queued.Value() },
			"teemd.jobs_running":   func() any { return m.running.Value() },
			"teemd.jobs_done":      func() any { return m.done.Value() },
			"teemd.jobs_failed":    func() any { return m.failed.Value() },
			"teemd.jobs_cancelled": func() any { return m.cancelled.Value() },
			"teemd.jobs_shed":      func() any { return m.shed.Value() },
			"teemd.jobs_retried":   func() any { return m.retried.Value() },
			"teemd.cache_hits":     func() any { return m.cacheHits.Value() },
			"teemd.quota_rejected": func() any { return m.quotaRejected.Value() },
			"teemd.recoveries":     func() any { return m.recoveries.Value() },
			"teemd.journal_errors": func() any { return m.journalErrors.Value() },
			"teemd.journal_bytes":  func() any { return m.journalBytes.Value() },
			"teemd.latency_p50_s":  func() any { return m.percentile(0.50) },
			"teemd.latency_p99_s":  func() any { return m.percentile(0.99) },
			"teemd.version":        func() any { return buildinfo.Version },
		} {
			expvar.Publish(name, expvar.Func(fn))
		}
	})
}

// String renders a one-line summary for logs.
func (v *Metrics) String() string {
	return fmt.Sprintf("queued=%d running=%d done=%d failed=%d cancelled=%d shed=%d retried=%d cache_hits=%d recoveries=%d p50=%.3fs p99=%.3fs",
		v.Queued(), v.Running(), v.Done(), v.Failed(), v.Cancelled(), v.Shed(), v.Retried(),
		v.CacheHits(), v.Recoveries(), v.LatencyP50(), v.LatencyP99())
}
