package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"teem/internal/buildinfo"
	"teem/internal/obs"
)

// latencyWindow bounds the sliding window the latency percentiles are
// computed over: the last latencyWindow finished jobs.
const latencyWindow = 512

// tenantStats are one tenant's admission counters: how much work it has
// in the system right now and how admission control has treated it.
type tenantStats struct {
	// queued is the tenant's non-terminal job gauge (queued + running).
	queued expvar.Int
	// submitted counts accepted new jobs (cache hits excluded).
	submitted expvar.Int
	// done counts successful completions.
	done expvar.Int
	// shed counts queued jobs displaced by higher-priority submissions.
	shed expvar.Int
	// quotaRejected counts submissions refused by the tenant's quota.
	quotaRejected expvar.Int
}

func (t *tenantStats) vars() map[string]int64 {
	return map[string]int64{
		"queued":         t.queued.Value(),
		"submitted":      t.submitted.Value(),
		"done":           t.done.Value(),
		"shed":           t.shed.Value(),
		"quota_rejected": t.quotaRejected.Value(),
	}
}

// metrics are the service's operational counters, held as expvar types
// so the daemon can publish them into the process-wide expvar registry
// (/debug/vars) while tests run many isolated services without
// colliding on the global namespace.
type metrics struct {
	queued    expvar.Int
	running   expvar.Int
	done      expvar.Int
	failed    expvar.Int
	cancelled expvar.Int
	cacheHits expvar.Int

	// Robustness counters: load shedding, transient-failure retries,
	// quota rejections, journal health and crash recovery.
	shed               expvar.Int
	retried            expvar.Int
	quotaRejected      expvar.Int
	recoveries         expvar.Int
	recoverySkipped    expvar.Int
	journalAppends     expvar.Int
	journalErrors      expvar.Int
	journalCompactions expvar.Int
	journalBytes       expvar.Int

	tenantMu sync.Mutex
	tenants  map[string]*tenantStats //teem:guards tenantMu

	mu sync.Mutex
	// latencies is a ring of the last latencyWindow samples, in seconds.
	latencies []float64 //teem:guards mu
	latIdx    int       //teem:guards mu
	// latHist and runHist are the Prometheus-facing distributions:
	// submit→finish latency and start→finish run duration. The ring
	// keeps serving the JSON percentiles; the histograms serve /metrics
	// text exposition.
	latHist *obs.Histogram //teem:guards mu
	runHist *obs.Histogram //teem:guards mu
}

func newMetrics() *metrics {
	return &metrics{
		latencies: make([]float64, 0, latencyWindow),
		tenants:   make(map[string]*tenantStats),
		latHist:   obs.NewHistogram(obs.LatencyBuckets()...),
		runHist:   obs.NewHistogram(obs.LatencyBuckets()...),
	}
}

// tenant returns (creating if needed) the named tenant's counters.
func (m *metrics) tenant(name string) *tenantStats {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantStats{}
		m.tenants[name] = t
	}
	return t
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := d.Seconds()
	m.latHist.Observe(s)
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, s)
		return
	}
	m.latencies[m.latIdx] = s
	m.latIdx = (m.latIdx + 1) % latencyWindow
}

// observeRun records one job's start→finish run duration.
func (m *metrics) observeRun(d time.Duration) {
	m.mu.Lock()
	m.runHist.Observe(d.Seconds())
	m.mu.Unlock()
}

// percentile computes the p-quantile (0..1) of the latency window.
func (m *metrics) percentile(p float64) float64 {
	m.mu.Lock()
	buf := append([]float64(nil), m.latencies...)
	m.mu.Unlock()
	if len(buf) == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(p * float64(len(buf)-1))
	return buf[i]
}

// Metrics is the read-only view of a service's counters.
type Metrics struct{ m *metrics }

// Queued/Running/Done/Failed/Cancelled/CacheHits read the counters.
func (v *Metrics) Queued() int64    { return v.m.queued.Value() }
func (v *Metrics) Running() int64   { return v.m.running.Value() }
func (v *Metrics) Done() int64      { return v.m.done.Value() }
func (v *Metrics) Failed() int64    { return v.m.failed.Value() }
func (v *Metrics) Cancelled() int64 { return v.m.cancelled.Value() }
func (v *Metrics) CacheHits() int64 { return v.m.cacheHits.Value() }

// Shed counts queued jobs displaced by higher-priority submissions;
// Retried counts transient-failure re-executions; QuotaRejected counts
// submissions refused by tenant quotas; Recoveries counts jobs re-run
// from the journal at startup.
func (v *Metrics) Shed() int64          { return v.m.shed.Value() }
func (v *Metrics) Retried() int64       { return v.m.retried.Value() }
func (v *Metrics) QuotaRejected() int64 { return v.m.quotaRejected.Value() }
func (v *Metrics) Recoveries() int64    { return v.m.recoveries.Value() }

// JournalAppends/JournalErrors/JournalBytes report write-ahead journal
// health: fsynced batches, dropped or failed writes, and current file
// size after compaction keeps it bounded.
func (v *Metrics) JournalAppends() int64 { return v.m.journalAppends.Value() }
func (v *Metrics) JournalErrors() int64  { return v.m.journalErrors.Value() }
func (v *Metrics) JournalBytes() int64   { return v.m.journalBytes.Value() }

// LatencyP50 and LatencyP99 are the job submit→finish latency
// percentiles over the last latencyWindow finished jobs, in seconds.
func (v *Metrics) LatencyP50() float64 { return v.m.percentile(0.50) }
func (v *Metrics) LatencyP99() float64 { return v.m.percentile(0.99) }

// Tenant returns the named tenant's counters as a map (queued,
// submitted, done, shed, quota_rejected).
func (v *Metrics) Tenant(name string) map[string]int64 {
	return v.m.tenant(name).vars()
}

// vars returns the metric set as a JSON-marshalable map — served at
// /metrics and published to expvar by PublishExpvar.
func (v *Metrics) vars() map[string]any {
	m := map[string]any{
		"version":             buildinfo.Version,
		"jobs_queued":         v.Queued(),
		"jobs_running":        v.Running(),
		"jobs_done":           v.Done(),
		"jobs_failed":         v.Failed(),
		"jobs_cancelled":      v.Cancelled(),
		"jobs_shed":           v.Shed(),
		"jobs_retried":        v.Retried(),
		"cache_hits":          v.CacheHits(),
		"quota_rejected":      v.QuotaRejected(),
		"recoveries":          v.Recoveries(),
		"recovery_skipped":    v.m.recoverySkipped.Value(),
		"journal_appends":     v.JournalAppends(),
		"journal_errors":      v.JournalErrors(),
		"journal_compactions": v.m.journalCompactions.Value(),
		"journal_bytes":       v.JournalBytes(),
		"latency_p50_s":       v.LatencyP50(),
		"latency_p99_s":       v.LatencyP99(),
	}
	tenants := map[string]map[string]int64{}
	v.m.tenantMu.Lock()
	for name, t := range v.m.tenants {
		tenants[name] = t.vars()
	}
	v.m.tenantMu.Unlock()
	if len(tenants) > 0 {
		m["tenants"] = tenants
	}
	return m
}

// prom renders the metric set in Prometheus text exposition format
// 0.0.4: counters, gauges, per-tenant labelled families in sorted
// tenant order (byte-stable output for a fixed counter state), and the
// latency/run-duration histograms.
func (v *Metrics) prom() []byte {
	m := v.m
	var e obs.Exposition
	e.Metric("teemd_build_info", "gauge",
		"Build metadata; the version label carries the daemon version.").
		Sample(1, "version", buildinfo.Version)
	e.Metric("teemd_jobs_queued", "gauge", "Jobs accepted and waiting for a worker.").Sample(float64(m.queued.Value()))
	e.Metric("teemd_jobs_running", "gauge", "Jobs currently executing.").Sample(float64(m.running.Value()))
	for _, c := range []struct {
		name, help string
		v          *expvar.Int
	}{
		{"teemd_jobs_done_total", "Jobs finished successfully.", &m.done},
		{"teemd_jobs_failed_total", "Jobs finished in failure.", &m.failed},
		{"teemd_jobs_cancelled_total", "Jobs cancelled before or during execution.", &m.cancelled},
		{"teemd_jobs_shed_total", "Queued jobs displaced by higher-priority submissions.", &m.shed},
		{"teemd_jobs_retried_total", "Transient-failure re-executions.", &m.retried},
		{"teemd_cache_hits_total", "Submissions answered by the request-hash cache.", &m.cacheHits},
		{"teemd_quota_rejected_total", "Submissions refused by tenant quotas.", &m.quotaRejected},
		{"teemd_recoveries_total", "Jobs re-run from the journal at startup.", &m.recoveries},
		{"teemd_recovery_skipped_total", "Journal records skipped during recovery.", &m.recoverySkipped},
		{"teemd_journal_appends_total", "Fsynced journal batches.", &m.journalAppends},
		{"teemd_journal_errors_total", "Dropped or failed journal writes.", &m.journalErrors},
		{"teemd_journal_compactions_total", "Journal rewrites to the live image.", &m.journalCompactions},
	} {
		e.Metric(c.name, "counter", c.help).Sample(float64(c.v.Value()))
	}
	e.Metric("teemd_journal_bytes", "gauge", "Journal file size after the last flush.").
		Sample(float64(m.journalBytes.Value()))

	m.tenantMu.Lock()
	tenants := make(map[string]*tenantStats, len(m.tenants))
	for name, t := range m.tenants {
		tenants[name] = t
	}
	m.tenantMu.Unlock()
	if len(tenants) > 0 {
		names := obs.SortedKeys(tenants)
		families := []struct {
			name, mtype, help string
			v                 func(*tenantStats) int64
		}{
			{"teemd_tenant_jobs_active", "gauge", "Per-tenant non-terminal jobs (queued + running).",
				func(t *tenantStats) int64 { return t.queued.Value() }},
			{"teemd_tenant_submitted_total", "counter", "Per-tenant accepted submissions.",
				func(t *tenantStats) int64 { return t.submitted.Value() }},
			{"teemd_tenant_done_total", "counter", "Per-tenant successful completions.",
				func(t *tenantStats) int64 { return t.done.Value() }},
			{"teemd_tenant_shed_total", "counter", "Per-tenant jobs displaced from the queue.",
				func(t *tenantStats) int64 { return t.shed.Value() }},
			{"teemd_tenant_quota_rejected_total", "counter", "Per-tenant quota rejections.",
				func(t *tenantStats) int64 { return t.quotaRejected.Value() }},
		}
		for _, fam := range families {
			pm := e.Metric(fam.name, fam.mtype, fam.help)
			for _, name := range names {
				pm.Sample(float64(fam.v(tenants[name])), "tenant", name)
			}
		}
	}

	m.mu.Lock()
	lat := m.latHist.Snapshot()
	run := m.runHist.Snapshot()
	m.mu.Unlock()
	e.Histogram("teemd_job_latency_seconds", "Job submit-to-finish latency.", lat)
	e.Histogram("teemd_job_run_seconds", "Job start-to-finish run duration.", run)
	return e.Bytes()
}

// wantsProm reports whether the request negotiates the Prometheus text
// exposition: an Accept media range whose type is text/plain or an
// openmetrics dialect, with a non-zero quality (q=0 is an explicit
// refusal, RFC 9110 §12.4.2). Everything else — including no Accept at
// all — gets the original JSON document, byte-stable for existing
// scrapers and the soak tests.
func wantsProm(r *http.Request) bool {
	for _, rng := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, params, _ := strings.Cut(rng, ";")
		mt := strings.ToLower(strings.TrimSpace(mediaType))
		if mt != "text/plain" && !strings.Contains(mt, "openmetrics") {
			continue
		}
		if acceptQ(params) > 0 {
			return true
		}
	}
	return false
}

// acceptQ extracts the q weight from one media range's parameters,
// defaulting to 1 when absent or malformed.
func acceptQ(params string) float64 {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(p, "=")
		if !ok || strings.ToLower(strings.TrimSpace(k)) != "q" {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return 1
		}
		return q
	}
	return 1
}

// ServeHTTP serves the metric set (the /metrics endpoint): Prometheus
// text exposition when the client asks for it, JSON otherwise.
func (v *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r != nil && wantsProm(r) {
		w.Header().Set("Content-Type", obs.ContentType)
		_, _ = w.Write(v.prom())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v.vars())
}

// publishOnce guards the process-global expvar namespace: the daemon
// runs one Service, tests run many, and expvar.Publish panics on
// duplicate names.
var publishOnce sync.Once

// PublishExpvar publishes the service's counters into the process-wide
// expvar registry under "teemd.*" (visible at /debug/vars). Only the
// first service in the process binds; later calls are no-ops — the
// daemon use case, where exactly one service exists.
func (v *Metrics) PublishExpvar() {
	publishOnce.Do(func() {
		m := v.m
		for name, fn := range map[string]func() any{
			"teemd.jobs_queued":    func() any { return m.queued.Value() },
			"teemd.jobs_running":   func() any { return m.running.Value() },
			"teemd.jobs_done":      func() any { return m.done.Value() },
			"teemd.jobs_failed":    func() any { return m.failed.Value() },
			"teemd.jobs_cancelled": func() any { return m.cancelled.Value() },
			"teemd.jobs_shed":      func() any { return m.shed.Value() },
			"teemd.jobs_retried":   func() any { return m.retried.Value() },
			"teemd.cache_hits":     func() any { return m.cacheHits.Value() },
			"teemd.quota_rejected": func() any { return m.quotaRejected.Value() },
			"teemd.recoveries":     func() any { return m.recoveries.Value() },
			"teemd.journal_errors": func() any { return m.journalErrors.Value() },
			"teemd.journal_bytes":  func() any { return m.journalBytes.Value() },
			"teemd.latency_p50_s":  func() any { return m.percentile(0.50) },
			"teemd.latency_p99_s":  func() any { return m.percentile(0.99) },
			"teemd.version":        func() any { return buildinfo.Version },
		} {
			expvar.Publish(name, expvar.Func(fn))
		}
	})
}

// String renders a one-line summary for logs.
func (v *Metrics) String() string {
	return fmt.Sprintf("queued=%d running=%d done=%d failed=%d cancelled=%d shed=%d retried=%d cache_hits=%d recoveries=%d p50=%.3fs p99=%.3fs",
		v.Queued(), v.Running(), v.Done(), v.Failed(), v.Cancelled(), v.Shed(), v.Retried(),
		v.CacheHits(), v.Recoveries(), v.LatencyP50(), v.LatencyP99())
}
