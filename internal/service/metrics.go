package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyWindow bounds the sliding window the latency percentiles are
// computed over: the last latencyWindow finished jobs.
const latencyWindow = 512

// metrics are the service's operational counters, held as expvar types
// so the daemon can publish them into the process-wide expvar registry
// (/debug/vars) while tests run many isolated services without
// colliding on the global namespace.
type metrics struct {
	queued    expvar.Int
	running   expvar.Int
	done      expvar.Int
	failed    expvar.Int
	cancelled expvar.Int
	cacheHits expvar.Int

	mu        sync.Mutex
	latencies []float64 // seconds, ring of the last latencyWindow
	latIdx    int
}

func newMetrics() *metrics {
	return &metrics{latencies: make([]float64, 0, latencyWindow)}
}

func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := d.Seconds()
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, s)
		return
	}
	m.latencies[m.latIdx] = s
	m.latIdx = (m.latIdx + 1) % latencyWindow
}

// percentile computes the p-quantile (0..1) of the latency window.
func (m *metrics) percentile(p float64) float64 {
	m.mu.Lock()
	buf := append([]float64(nil), m.latencies...)
	m.mu.Unlock()
	if len(buf) == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(p * float64(len(buf)-1))
	return buf[i]
}

// Metrics is the read-only view of a service's counters.
type Metrics struct{ m *metrics }

// Queued/Running/Done/Failed/Cancelled/CacheHits read the counters.
func (v *Metrics) Queued() int64    { return v.m.queued.Value() }
func (v *Metrics) Running() int64   { return v.m.running.Value() }
func (v *Metrics) Done() int64      { return v.m.done.Value() }
func (v *Metrics) Failed() int64    { return v.m.failed.Value() }
func (v *Metrics) Cancelled() int64 { return v.m.cancelled.Value() }
func (v *Metrics) CacheHits() int64 { return v.m.cacheHits.Value() }

// LatencyP50 and LatencyP99 are the job submit→finish latency
// percentiles over the last latencyWindow finished jobs, in seconds.
func (v *Metrics) LatencyP50() float64 { return v.m.percentile(0.50) }
func (v *Metrics) LatencyP99() float64 { return v.m.percentile(0.99) }

// vars returns the metric set as a JSON-marshalable map — served at
// /metrics and published to expvar by PublishExpvar.
func (v *Metrics) vars() map[string]any {
	return map[string]any{
		"jobs_queued":    v.Queued(),
		"jobs_running":   v.Running(),
		"jobs_done":      v.Done(),
		"jobs_failed":    v.Failed(),
		"jobs_cancelled": v.Cancelled(),
		"cache_hits":     v.CacheHits(),
		"latency_p50_s":  v.LatencyP50(),
		"latency_p99_s":  v.LatencyP99(),
	}
}

// ServeHTTP serves the metric set as JSON (the /metrics endpoint).
func (v *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v.vars())
}

// publishOnce guards the process-global expvar namespace: the daemon
// runs one Service, tests run many, and expvar.Publish panics on
// duplicate names.
var publishOnce sync.Once

// PublishExpvar publishes the service's counters into the process-wide
// expvar registry under "teemd.*" (visible at /debug/vars). Only the
// first service in the process binds; later calls are no-ops — the
// daemon use case, where exactly one service exists.
func (v *Metrics) PublishExpvar() {
	publishOnce.Do(func() {
		m := v.m
		for name, fn := range map[string]func() any{
			"teemd.jobs_queued":    func() any { return m.queued.Value() },
			"teemd.jobs_running":   func() any { return m.running.Value() },
			"teemd.jobs_done":      func() any { return m.done.Value() },
			"teemd.jobs_failed":    func() any { return m.failed.Value() },
			"teemd.jobs_cancelled": func() any { return m.cancelled.Value() },
			"teemd.cache_hits":     func() any { return m.cacheHits.Value() },
			"teemd.latency_p50_s":  func() any { return m.percentile(0.50) },
			"teemd.latency_p99_s":  func() any { return m.percentile(0.99) },
		} {
			expvar.Publish(name, expvar.Func(fn))
		}
	})
}

// String renders a one-line summary for logs.
func (v *Metrics) String() string {
	return fmt.Sprintf("queued=%d running=%d done=%d failed=%d cancelled=%d cache_hits=%d p50=%.3fs p99=%.3fs",
		v.Queued(), v.Running(), v.Done(), v.Failed(), v.Cancelled(), v.CacheHits(),
		v.LatencyP50(), v.LatencyP99())
}
