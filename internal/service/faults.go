package service

import (
	"sync/atomic"
	"time"
)

// FaultConfig injects deterministic failures into a Service for soak and
// chaos testing — the knobs behind `make soak-gate` and the teemd
// -fault-* flags. Counters, not probabilities: "every Nth" is exactly
// reproducible, so a soak assertion never flakes on a lucky run.
//
// All injected failures are the transient kind the service is built to
// absorb: panics are recovered and retried with backoff, journal write
// errors degrade durability (counted, logged) without failing jobs, and
// slow cells stretch latency without corrupting results.
type FaultConfig struct {
	// PanicEvery forces every Nth job execution (counted across the
	// service, retries included) to panic inside the worker (0 = off).
	PanicEvery int
	// JournalErrEvery fails every Nth journal append (0 = off). The
	// record is dropped and counted in journal_errors; the job proceeds.
	JournalErrEvery int
	// SlowCell delays every completed scenario × governor cell by this
	// much before its telemetry is published (0 = off).
	SlowCell time.Duration
}

// faultState is a FaultConfig plus its runtime counters.
type faultState struct {
	cfg      FaultConfig
	execN    atomic.Int64
	journalN atomic.Int64
}

func newFaultState(cfg *FaultConfig) *faultState {
	if cfg == nil {
		return nil
	}
	return &faultState{cfg: *cfg}
}

// firePanic reports whether this job execution is the Nth and must panic.
func (f *faultState) firePanic() bool {
	if f == nil || f.cfg.PanicEvery <= 0 {
		return false
	}
	return f.execN.Add(1)%int64(f.cfg.PanicEvery) == 0
}

// fireJournalErr reports whether this journal append is the Nth and must
// be dropped.
func (f *faultState) fireJournalErr() bool {
	if f == nil || f.cfg.JournalErrEvery <= 0 {
		return false
	}
	return f.journalN.Add(1)%int64(f.cfg.JournalErrEvery) == 0
}

// slowCell returns the injected per-cell delay (0 = none).
func (f *faultState) slowCell() time.Duration {
	if f == nil {
		return 0
	}
	return f.cfg.SlowCell
}
