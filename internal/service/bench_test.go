package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"teem/internal/scenario"
)

func benchScenarioJSON(b *testing.B, name string) json.RawMessage {
	b.Helper()
	sc, err := scenario.New(name).
		ArriveDefault(0, "MVT").
		Horizon(5).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchWait(b *testing.B, j *Job) {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		js := j.Snapshot()
		if js.Terminal() {
			if js.Status != StatusDone {
				b.Fatalf("job ended %s: %s", js.Status, js.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			b.Fatal("benchmark job stuck")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkServiceSubmit measures the end-to-end submit→done latency of
// an uncached single-scenario job — the serving-path overhead on top of
// the raw simulation (each iteration uses a distinct scenario name so
// the request cache never short-circuits the work).
func BenchmarkServiceSubmit(b *testing.B) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, cached, err := s.Submit(&JobRequest{Scenario: benchScenarioJSON(b, fmt.Sprintf("bench-%d", i))})
		if err != nil {
			b.Fatal(err)
		}
		if cached {
			b.Fatal("benchmark request unexpectedly cached")
		}
		benchWait(b, j)
	}
}

// BenchmarkServiceSubmitCached measures the cache-hit path: the steady
// state of a hot request served without simulating.
func BenchmarkServiceSubmitCached(b *testing.B) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := &JobRequest{Scenario: benchScenarioJSON(b, "bench-cached")}
	j, _, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	benchWait(b, j)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cached, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if !cached {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServiceStream measures full-stream replay throughput: one
// completed job's telemetry (start + per-sample lines + done) drained by
// a fresh subscriber per iteration.
func BenchmarkServiceStream(b *testing.B) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	j, _, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		b.Fatal(err)
	}
	benchWait(b, j)
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(0)
		if err := j.Stream(context.Background(), func(line []byte) error {
			n += int64(len(line))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		total = n
	}
	b.SetBytes(total)
}

// BenchmarkServiceSubmitSparse measures end-to-end job latency on the
// sparse-replay corpus entry: a ten-minute horizon with minutes of idle
// between arrivals, which the engine's event-horizon supersteps jump in
// single propagator applications. The dominant cost is everything around
// the simulation — queueing, telemetry fan-out, snapshotting — which is
// the point: the service keeps up with sparse traces at interactive
// latency. Each iteration renames the scenario to defeat the request
// cache.
func BenchmarkServiceSubmitSparse(b *testing.B) {
	s, err := New(Options{Workers: 1, QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := scenario.SparseReplay()
		sc.Name = fmt.Sprintf("sparse-bench-%d", i)
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			b.Fatal(err)
		}
		j, cached, err := s.Submit(&JobRequest{Scenario: buf.Bytes(), Governors: []string{"ondemand"}})
		if err != nil {
			b.Fatal(err)
		}
		if cached {
			b.Fatal("benchmark request unexpectedly cached")
		}
		benchWait(b, j)
	}
}

// BenchmarkServiceSoak measures the fully-armoured serving path: every
// submission journaled with fsync group commit, every 7th execution
// panicking and retrying with backoff — the steady-state cost of
// durability plus fault tolerance on top of BenchmarkServiceSubmit.
func BenchmarkServiceSoak(b *testing.B) {
	s, err := New(Options{
		Workers:     2,
		QueueDepth:  16,
		JournalPath: filepath.Join(b.TempDir(), "journal.ndjson"),
		Faults:      &FaultConfig{PanicEvery: 7},
		Retry:       RetryPolicy{BaseDelay: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, cached, err := s.Submit(&JobRequest{Scenario: benchScenarioJSON(b, fmt.Sprintf("soak-%d", i))})
		if err != nil {
			b.Fatal(err)
		}
		if cached {
			b.Fatal("benchmark request unexpectedly cached")
		}
		benchWait(b, j)
	}
}

// BenchmarkJournalReplay measures recovery-scan throughput: how fast a
// restarting daemon reads a journal and works out its pending set
// (bytes/s over a 1000-job history, half of it uncompleted).
func BenchmarkJournalReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.ndjson")
	req := &JobRequest{Scenario: benchScenarioJSON(b, "replay"), Governors: []string{"ondemand"}}
	var buf bytes.Buffer
	seq := int64(0)
	enc := json.NewEncoder(&buf)
	for i := 1; i <= 1000; i++ {
		seq++
		if err := enc.Encode(journalRecord{Seq: seq, Op: opSubmit, ID: fmt.Sprintf("j%d", i), Req: req}); err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			seq++
			if err := enc.Encode(journalRecord{Seq: seq, Op: opFinish, ID: fmt.Sprintf("j%d", i), Status: StatusDone}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := readJournal(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(scan.pending) != 500 {
			b.Fatalf("pending = %d, want 500", len(scan.pending))
		}
	}
}
