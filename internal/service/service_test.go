package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"teem/internal/scenario"
)

// tinyScenarioJSON builds a short inline scenario document with the
// given name — distinct names defeat the request cache when a test needs
// real concurrent work.
func tinyScenarioJSON(t *testing.T, name string) json.RawMessage {
	t.Helper()
	sc, err := scenario.New(name).
		ArriveDefault(0, "MVT").
		Horizon(5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sc.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// longScenarioJSON is a scenario whose idle horizon keeps the engine
// ticking long enough for a test to cancel it mid-run.
func longScenarioJSON(t *testing.T) json.RawMessage {
	t.Helper()
	sc, err := scenario.New("long-haul").
		ArriveDefault(0, "COVARIANCE").
		Horizon(100000).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sc.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func newTestService(t *testing.T, o Options) *Service {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		js := j.Snapshot()
		if js.Terminal() {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", j.ID, js.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A preset scenario job must produce exactly the bytes the teemscenario
// code path renders for the same work.
func TestSubmitPresetMatchesCLIRender(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, cached, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first submission reported cached")
	}
	js := waitTerminal(t, j, 30*time.Second)
	if js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}
	text, sum, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scenario.RunGrid([]*scenario.Scenario{scenario.Sunlight()}, []string{"ondemand"}, scenario.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if text != grid.Render() {
		t.Errorf("service result differs from the CLI render:\nservice:\n%s\ncli:\n%s", text, grid.Render())
	}
	if sum.Cells != 1 {
		t.Errorf("summary cells = %d, want 1", sum.Cells)
	}
}

// A repeated identical request must be served from the single-flight
// cache: same job, no second simulation, cache-hit counter incremented.
func TestRepeatedRequestServedFromCache(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	req := &JobRequest{Preset: "sunlight", Governors: []string{"powersave"}}
	j1, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1, 30*time.Second)
	j2, cached, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"powersave"}})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("identical repeat not reported cached")
	}
	if j1.ID != j2.ID {
		t.Errorf("repeat created a new job: %s vs %s", j1.ID, j2.ID)
	}
	if got := s.Metrics().CacheHits(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	// Workers only changes scheduling, never bytes — it must not split
	// the cache.
	_, cached, err = s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"powersave"}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("worker-count variation split the request cache")
	}
}

// A failed or cancelled job must be forgotten so a retry re-executes.
func TestCancelledJobForgotten(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j1, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j1)
	if err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j1, 10*time.Second)
	if js.Status != StatusCancelled {
		t.Fatalf("job ended %s, want cancelled", js.Status)
	}
	j2, cached, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	if cached || j2.ID == j1.ID {
		t.Error("cancelled job still answered from the cache")
	}
	_ = s.Cancel(j2.ID)
}

func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		js := j.Snapshot()
		if js.Status == StatusRunning {
			return
		}
		if js.Terminal() {
			t.Fatalf("job %s ended %s before running", j.ID, js.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", j.ID)
		}
		time.Sleep(time.Millisecond)
	}
}

// Cancelling a running simulation must come back promptly — the abort
// is observed within one sim tick, so end-to-end cancellation latency is
// bounded by scheduling, not by the remaining simulated horizon.
func TestCancelRunningJobReturnsPromptly(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	start := time.Now()
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j, 5*time.Second)
	if js.Status != StatusCancelled {
		t.Fatalf("job ended %s, want cancelled", js.Status)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	if _, _, err := j.Result(); err == nil {
		t.Error("cancelled job served a result")
	}
}

// A queued job cancelled before a worker picks it up must never start.
func TestCancelQueuedJobNeverStarts(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueDepth: 8})
	// Occupy the only worker.
	blocker, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	queued, _, err := s.Submit(&JobRequest{Preset: "sunlight"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// The cancellation is visible immediately — not only once a worker
	// would have dequeued the job — and the doomed job no longer
	// answers identical submissions from the cache.
	js := queued.Snapshot()
	if js.Status != StatusCancelled {
		t.Fatalf("queued job reports %s right after cancel, want cancelled", js.Status)
	}
	if js.StartedAt != nil {
		t.Error("cancelled queued job reports a start time")
	}
	fresh, cached, err := s.Submit(&JobRequest{Preset: "sunlight"})
	if err != nil {
		t.Fatal(err)
	}
	if cached || fresh.ID == queued.ID {
		t.Error("identical submission was served the cancelled queued job")
	}
	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, fresh, 30*time.Second)
}

// The acceptance hammer: ≥64 concurrent submissions (a mix of unique
// requests and duplicates) must be race-clean and every job must reach a
// terminal state with the right result.
func TestConcurrentSubmissionsHammer(t *testing.T) {
	s := newTestService(t, Options{Workers: 4, QueueDepth: 256})
	const clients = 64
	var wg sync.WaitGroup
	jobs := make([]*Job, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var req *JobRequest
			if c%4 == 0 {
				// Every fourth client repeats one shared request —
				// the duplicates must collapse onto one job.
				req = &JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}}
			} else {
				req = &JobRequest{Scenario: tinyScenarioJSON(t, fmt.Sprintf("hammer-%d", c))}
			}
			j, _, err := s.Submit(req)
			if err != nil {
				errs[c] = err
				return
			}
			jobs[c] = j
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	shared := map[string]bool{}
	for c, j := range jobs {
		js := waitTerminal(t, j, 120*time.Second)
		if js.Status != StatusDone {
			t.Fatalf("client %d job %s ended %s: %s", c, j.ID, js.Status, js.Error)
		}
		if c%4 == 0 {
			shared[j.ID] = true
		}
	}
	if len(shared) != 1 {
		t.Errorf("duplicate requests landed on %d jobs, want 1", len(shared))
	}
	m := s.Metrics()
	if m.Done() == 0 || m.Queued() != 0 || m.Running() != 0 {
		t.Errorf("metrics after drain: %s", m.String())
	}
	if m.CacheHits() < 15 {
		t.Errorf("cache hits = %d, want ≥15 (16 duplicate clients share one execution)", m.CacheHits())
	}
	if m.LatencyP50() <= 0 || m.LatencyP99() < m.LatencyP50() {
		t.Errorf("latency percentiles inconsistent: p50=%g p99=%g", m.LatencyP50(), m.LatencyP99())
	}
}

// The stream must replay history for late subscribers, byte-identically
// to what a live subscriber saw, and its sample lines must match the
// result's recorded trace.
func TestStreamLiveAndReplayAgree(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, _, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		t.Fatal(err)
	}
	var live bytes.Buffer
	if err := j.Stream(context.Background(), func(line []byte) error {
		live.Write(line)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	js := j.Snapshot()
	if js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}
	var replay bytes.Buffer
	if err := j.Stream(context.Background(), func(line []byte) error {
		replay.Write(line)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), replay.Bytes()) {
		t.Error("late replay differs from the live stream")
	}
	// Count events.
	var samples, cells, starts, dones int
	for _, line := range strings.Split(strings.TrimSpace(live.String()), "\n") {
		var ev streamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch ev.Type {
		case "sample":
			samples++
		case "cell":
			cells++
		case "start":
			starts++
		case "done":
			dones++
		}
	}
	if starts != 1 || dones != 1 || cells != 1 {
		t.Errorf("stream had %d start, %d cell, %d done events", starts, cells, dones)
	}
	// The single-cell job streams every recorded trace sample.
	grid, err := scenario.RunGrid([]*scenario.Scenario{scenario.Sunlight()}, []string{"ondemand"}, scenario.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(grid.Cells[0][0].Sim.Trace.Samples)
	if samples != want {
		t.Errorf("streamed %d samples, trace has %d", samples, want)
	}
}

// The wire format must carry legitimately zero values: the first sample
// of every run is at t=0 and its t_s field must be on the line.
func TestStreamSampleZeroFieldsOnWire(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, _, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		t.Fatal(err)
	}
	var firstSample string
	if err := j.Stream(context.Background(), func(line []byte) error {
		if firstSample == "" && strings.Contains(string(line), `"type":"sample"`) {
			firstSample = string(line)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if firstSample == "" {
		t.Fatal("no sample lines streamed")
	}
	for _, field := range []string{`"t_s":0`, `"power_w":`, `"temps_c":`, `"freqs_mhz":`, `"utils":`} {
		if !strings.Contains(firstSample, field) {
			t.Errorf("first sample line lacks %s: %s", field, firstSample)
		}
	}
}

// A cancelled stream subscriber must not wedge: a blocked waitFrom wakes
// on context cancellation.
func TestStreamSubscriberCancel(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- j.Stream(ctx, func([]byte) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled stream returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not unblock on subscriber cancellation")
	}
	_ = s.Cancel(j.ID)
}

// Admission control: a full queue sheds load with ErrBusy instead of
// queueing without bound.
func TestQueueFullShedsLoad(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueDepth: 1})
	blocker, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	if _, _, err := s.Submit(&JobRequest{Preset: "sunlight"}); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Submit(&JobRequest{Preset: "rush-hour"})
	if err == nil {
		t.Fatal("third submission accepted with a full queue")
	}
	if !strings.Contains(err.Error(), "full") {
		t.Errorf("got %v, want ErrBusy", err)
	}
	_ = s.Cancel(blocker.ID)
}

// Drain rejects new work and cancels what outlives the deadline.
func TestDrainCancelsStragglers(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("drain of a long job inside 50ms reported success")
	}
	js := j.Snapshot()
	if js.Status != StatusCancelled {
		t.Errorf("straggler ended %s, want cancelled", js.Status)
	}
	if _, _, err := s.Submit(&JobRequest{Preset: "sunlight"}); err == nil {
		t.Error("draining service accepted new work")
	}
}

// Malformed requests fail at submission, not execution.
func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	cases := []*JobRequest{
		nil,
		{Kind: "nope", Preset: "sunlight"},
		{},                         // no source
		{Preset: "no-such-preset"}, // unknown preset
		{Preset: "sunlight", Governors: []string{"no-such-gov"}},
		{Preset: "sunlight", Integrator: "rk4"},
		{Kind: KindGrid, Preset: "sunlight"},                     // wrong source field
		{Kind: KindFig5, Preset: "sunlight"},                     // fig5 takes no source
		{Scenario: json.RawMessage(`{"bad json`)},                // malformed inline
		{Preset: "sunlight", Scenario: tinyScenarioJSON(t, "x")}, // two sources
	}
	for i, req := range cases {
		if _, _, err := s.Submit(req); err == nil {
			t.Errorf("case %d accepted invalid request %+v", i, req)
		}
	}
	if q := s.Metrics().Queued(); q != 0 {
		t.Errorf("invalid submissions left %d queued", q)
	}
}

// The grid job streams one cell event per cell and summarizes
// violations like the CLI exit-code gate.
func TestGridJobStreamsCells(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, _, err := s.Submit(&JobRequest{
		Kind:      KindGrid,
		Presets:   []string{"sunlight", "core-loss"},
		Governors: []string{"ondemand", "powersave"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var cells int
	if err := j.Stream(context.Background(), func(line []byte) error {
		var ev streamEvent
		if err := json.Unmarshal(bytes.TrimSpace(line), &ev); err != nil {
			return err
		}
		if ev.Type == "cell" {
			cells++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cells != 4 {
		t.Errorf("streamed %d cell events, want 4", cells)
	}
	js := j.Snapshot()
	if js.Status != StatusDone {
		t.Fatalf("grid job ended %s: %s", js.Status, js.Error)
	}
	if js.Summary == nil || js.Summary.Cells != 4 {
		t.Errorf("summary = %+v, want 4 cells", js.Summary)
	}
}
