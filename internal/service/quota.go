package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrQuotaExceeded reports a submission rejected by per-tenant admission
// control: the tenant's token bucket is empty or its active-job cap is
// reached. Transports surface it as 429 with a Retry-After hint (the
// rejection is always wrapped in a *RetryError).
var ErrQuotaExceeded = errors.New("service: tenant quota exceeded")

// RetryError wraps an admission rejection with a backoff hint: how long
// the client should wait before retrying. The HTTP layer turns it into
// 429 Too Many Requests with a Retry-After header — per-tenant pressure
// answers "come back later", not a blanket 503.
type RetryError struct {
	// After is the suggested backoff before retrying.
	After time.Duration
	// Err is the underlying rejection (ErrQuotaExceeded or ErrBusy).
	Err error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After.Round(time.Millisecond))
}

func (e *RetryError) Unwrap() error { return e.Err }

// TenantQuota bounds one tenant's admission.
type TenantQuota struct {
	// RatePerSec refills the tenant's submission token bucket: sustained
	// new-job submissions per second (0 = unlimited rate). Cache hits
	// cost nothing — the bucket guards simulation work, not lookups.
	RatePerSec float64
	// Burst is the bucket capacity (0 with RatePerSec > 0 = ceil(rate),
	// at least 1).
	Burst int
	// MaxActive caps the tenant's queued + running jobs (0 = unlimited),
	// so one tenant cannot occupy the whole pool queue.
	MaxActive int
}

// QuotaConfig is the per-tenant admission policy of a Service.
type QuotaConfig struct {
	// Default applies to every tenant without an explicit entry.
	Default TenantQuota
	// Tenants overrides the default per tenant name.
	Tenants map[string]TenantQuota
}

// quotaFor resolves the quota for a tenant.
func (q *QuotaConfig) quotaFor(tenant string) TenantQuota {
	if q == nil {
		return TenantQuota{}
	}
	if t, ok := q.Tenants[tenant]; ok {
		return t
	}
	return q.Default
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotas is the runtime admission state: lazily created buckets per
// tenant.
type quotas struct {
	cfg *QuotaConfig
	mu  sync.Mutex
	b   map[string]*bucket //teem:guards mu
}

func newQuotas(cfg *QuotaConfig) *quotas {
	if cfg == nil {
		return nil
	}
	return &quotas{cfg: cfg, b: make(map[string]*bucket)}
}

// take consumes one token from the tenant's bucket. A dry bucket returns
// ErrQuotaExceeded wrapped with the refill time of the next token.
func (q *quotas) take(tenant string) error {
	if q == nil {
		return nil
	}
	tq := q.cfg.quotaFor(tenant)
	if tq.RatePerSec <= 0 {
		return nil
	}
	burst := float64(tq.Burst)
	if burst <= 0 {
		burst = math.Ceil(tq.RatePerSec)
		if burst < 1 {
			burst = 1
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := now()
	b, ok := q.b[tenant]
	if !ok {
		b = &bucket{tokens: burst, last: t}
		q.b[tenant] = b
	}
	b.tokens = math.Min(burst, b.tokens+tq.RatePerSec*t.Sub(b.last).Seconds())
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / tq.RatePerSec * float64(time.Second))
	return &RetryError{
		After: wait,
		Err:   fmt.Errorf("%w: tenant %q over %g submissions/s", ErrQuotaExceeded, tenant, tq.RatePerSec),
	}
}

// maxActive returns the tenant's active-job cap (0 = unlimited).
func (q *quotas) maxActive(tenant string) int {
	if q == nil {
		return 0
	}
	return q.cfg.quotaFor(tenant).MaxActive
}
