package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"teem/internal/mapping"
	"teem/internal/platform"
	"teem/internal/scenario"
	"teem/internal/sim"
)

// Job kinds.
const (
	// KindScenario runs one scenario — inline JSON, preset name, or
	// arrival-trace replay — under one or more governors. With exactly
	// one scenario × governor cell the job streams per-sample telemetry.
	KindScenario = "scenario"
	// KindGrid runs a scenario × governor matrix over named presets
	// (all of them when none are named), streaming per-cell progress.
	KindGrid = "grid"
	// KindFig5 runs the paper's three-approach comparison at a CPU
	// mapping.
	KindFig5 = "fig5"
)

// JobRequest describes one unit of simulation work. Exactly one scenario
// source — Scenario, Trace, or Preset — selects the work of a
// KindScenario job; KindGrid uses Presets; KindFig5 uses Map.
type JobRequest struct {
	// Kind selects the job type: "scenario" (default), "grid", "fig5".
	Kind string `json:"kind,omitempty"`

	// Scenario is an inline scenario document (the teemscenario JSON
	// schema).
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Trace is an inline recorded arrival log, compiled to a replay
	// scenario exactly like `teemscenario -replay`.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Preset names one built-in scenario (`teemscenario -preset`).
	Preset string `json:"preset,omitempty"`
	// Presets names the grid's scenarios (KindGrid; empty = the whole
	// preset corpus).
	Presets []string `json:"presets,omitempty"`

	// Governors are the grid columns (default: the union of the
	// selected scenarios' initial policies — the teemscenario default).
	Governors []string `json:"governors,omitempty"`
	// Integrator selects the thermal stepping scheme: "exact" (default)
	// or "euler".
	Integrator string `json:"integrator,omitempty"`
	// Platform names the builtin catalog platform to simulate on
	// (default "exynos5422", the paper's board). The service boundary
	// accepts catalog names only — never file paths — and validates them
	// at submission. The platform is part of the request hash: the same
	// scenario on different hardware is different work.
	Platform string `json:"platform,omitempty"`
	// Workers bounds the job's own grid fan-out (0 = one per CPU,
	// 1 = serial). Output is byte-identical either way, so Workers does
	// not participate in the request hash.
	Workers int `json:"workers,omitempty"`

	// Map is the Fig. 5 CPU mapping (KindFig5; zero value = the
	// paper's 2L+4B headline mapping).
	Map *mapping.Mapping `json:"map,omitempty"`

	// Tenant names the submitting client for quota accounting and
	// admission control ("" = "default"). Tenants do not share cache
	// entries: the same scenario submitted by two tenants runs twice, so
	// cancellation and accounting stay per-tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the job queue (higher first; 0 default). A full
	// queue admits a submission only by shedding a strictly
	// lower-priority queued job — cross-tenant, lowest first. Like
	// Workers, Priority only changes scheduling and does not participate
	// in the request hash.
	Priority int `json:"priority,omitempty"`
}

// validTenant bounds tenant names to a metrics- and log-safe charset.
func validTenant(t string) bool {
	if len(t) > 64 {
		return false
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// jobPlan is a request's resolved work — scenarios and governor columns
// parsed once at submission, so execution never re-decodes inline JSON
// and the two code paths cannot drift.
type jobPlan struct {
	scs  []*scenario.Scenario
	govs []string
}

// normalize validates a request, fills defaults, resolves its work plan
// and derives the request-hash cache key: two requests that would
// produce byte-identical results hash alike (Workers is excluded — it
// only changes scheduling).
func (s *Service) normalize(req *JobRequest) (*JobRequest, string, *jobPlan, error) {
	if req == nil {
		return nil, "", nil, fmt.Errorf("service: nil request")
	}
	n := *req // shallow copy; slices are treated as read-only
	if n.Kind == "" {
		n.Kind = KindScenario
	}
	switch n.Kind {
	case KindScenario, KindGrid, KindFig5:
	default:
		return nil, "", nil, fmt.Errorf("service: unknown job kind %q", n.Kind)
	}
	switch n.Integrator {
	case "":
		n.Integrator = "exact"
	case "exact", "euler":
	default:
		return nil, "", nil, fmt.Errorf("service: unknown integrator %q (want exact or euler)", n.Integrator)
	}
	if n.Tenant == "" {
		n.Tenant = "default"
	}
	if !validTenant(n.Tenant) {
		return nil, "", nil, fmt.Errorf("service: invalid tenant %q (want ≤64 chars of [A-Za-z0-9._-])", req.Tenant)
	}
	if n.Platform == "" {
		n.Platform = platform.DefaultName
	}
	if !platform.Has(n.Platform) {
		return nil, "", nil, fmt.Errorf("service: unknown platform %q (builtin: %s)",
			n.Platform, strings.Join(platform.Names(), ", "))
	}

	// Validate the scenario source now so submission — not execution —
	// reports malformed requests, and so the cache key covers the
	// resolved work.
	switch n.Kind {
	case KindScenario:
		sources := 0
		if len(n.Scenario) > 0 {
			sources++
		}
		if len(n.Trace) > 0 {
			sources++
		}
		if n.Preset != "" {
			sources++
		}
		if sources != 1 {
			return nil, "", nil, fmt.Errorf("service: a scenario job needs exactly one of scenario, trace or preset")
		}
		if len(n.Presets) > 0 {
			return nil, "", nil, fmt.Errorf("service: presets is a grid-job field; use preset")
		}
	case KindGrid:
		if len(n.Scenario) > 0 || len(n.Trace) > 0 || n.Preset != "" {
			return nil, "", nil, fmt.Errorf("service: a grid job selects work with presets only")
		}
		for _, p := range n.Presets {
			if scenario.PresetByName(p) == nil {
				return nil, "", nil, fmt.Errorf("service: unknown preset %q", p)
			}
		}
	case KindFig5:
		if len(n.Scenario) > 0 || len(n.Trace) > 0 || n.Preset != "" || len(n.Presets) > 0 {
			return nil, "", nil, fmt.Errorf("service: a fig5 job takes only map, not scenario sources")
		}
		if req.Integrator == "euler" {
			// The Fig. 5 evaluation runs the paper's protocol on the
			// exact integrator; accepting (and hashing) a no-op
			// integrator choice would return mislabelled results.
			return nil, "", nil, fmt.Errorf("service: fig5 jobs run the exact integrator only")
		}
		if n.Platform != platform.DefaultName {
			// Fig. 5 reproduces the paper's measurements, which exist on
			// the Exynos 5422 only — other hardware would be mislabelled.
			return nil, "", nil, fmt.Errorf("service: fig5 jobs run on %s only", platform.DefaultName)
		}
		if n.Map == nil {
			n.Map = &mapping.Mapping{Big: 4, Little: 2, UseGPU: true}
		}
	}
	scs, govs, err := s.planFor(&n)
	if err != nil {
		return nil, "", nil, err
	}
	n.Governors = govs

	// The cache key hashes the resolved plan: tenant, kind, integrator,
	// platform, the scenarios' canonical JSON, the governor list, and the
	// mapping. Workers and Priority are excluded — they only change
	// scheduling, never bytes.
	h := sha256.New()
	fmt.Fprintf(h, "tenant=%s\nkind=%s\nintegrator=%s\nplatform=%s\n", n.Tenant, n.Kind, n.Integrator, n.Platform)
	for _, sc := range scs {
		var b bytes.Buffer
		if err := sc.Save(&b); err != nil {
			return nil, "", nil, err
		}
		h.Write(b.Bytes())
	}
	fmt.Fprintf(h, "governors=%s\n", strings.Join(govs, ","))
	if n.Map != nil {
		fmt.Fprintf(h, "map=%s\n", n.Map.String())
	}
	return &n, hex.EncodeToString(h.Sum(nil)), &jobPlan{scs: scs, govs: govs}, nil
}

// planFor resolves the request's scenarios and governor columns — the
// same defaulting teemscenario applies, so the service's rendered output
// is byte-identical to the CLI's.
func (s *Service) planFor(req *JobRequest) ([]*scenario.Scenario, []string, error) {
	var scs []*scenario.Scenario
	switch req.Kind {
	case KindFig5:
		return nil, nil, nil
	case KindScenario:
		switch {
		case len(req.Scenario) > 0:
			sc, err := scenario.Load(bytes.NewReader(req.Scenario))
			if err != nil {
				return nil, nil, err
			}
			scs = append(scs, sc)
		case len(req.Trace) > 0:
			tr, err := scenario.LoadTrace(bytes.NewReader(req.Trace))
			if err != nil {
				return nil, nil, err
			}
			sc, err := scenario.FromTrace(tr)
			if err != nil {
				return nil, nil, err
			}
			scs = append(scs, sc)
		default:
			sc := scenario.PresetByName(req.Preset)
			if sc == nil {
				return nil, nil, fmt.Errorf("service: unknown preset %q", req.Preset)
			}
			scs = append(scs, sc)
		}
	case KindGrid:
		if len(req.Presets) == 0 {
			scs = scenario.Presets()
		} else {
			for _, p := range req.Presets {
				sc := scenario.PresetByName(p)
				if sc == nil {
					return nil, nil, fmt.Errorf("service: unknown preset %q", p)
				}
				scs = append(scs, sc)
			}
		}
	}
	govs := req.Governors
	if len(govs) == 0 {
		// The teemscenario default: the union of the scenarios'
		// initial policies, in first-seen order.
		seen := map[string]bool{}
		for _, sc := range scs {
			name := sc.Governor
			if name == "" {
				name = "ondemand"
			}
			if !seen[name] {
				seen[name] = true
				govs = append(govs, name)
			}
		}
	} else {
		govs = append([]string(nil), govs...)
	}
	known := map[string]bool{}
	for _, g := range scenario.GovernorNames() {
		known[g] = true
	}
	for _, g := range govs {
		if !known[g] {
			names := scenario.GovernorNames()
			sort.Strings(names)
			return nil, nil, fmt.Errorf("service: unknown governor %q (have %s)", g, strings.Join(names, ", "))
		}
	}
	return scs, govs, nil
}

// execute runs the job's work under ctx, returning the rendered result
// text (byte-identical to the equivalent CLI invocation) and a summary.
func (s *Service) execute(ctx context.Context, j *Job) (string, *ResultSummary, error) {
	req := j.Req
	integ := sim.IntegratorExact
	if req.Integrator == "euler" {
		integ = sim.IntegratorEuler
	}
	switch req.Kind {
	case KindFig5:
		res, err := s.env.Fig5Ctx(ctx, *req.Map)
		if err != nil {
			return "", nil, err
		}
		text := res.RenderEnergy() + res.RenderTemperature() + res.RenderPerformance()
		return text, &ResultSummary{Rows: len(res.Rows)}, nil
	default:
		// The plan was resolved and validated at submission; execution
		// never re-decodes the request.
		scs, govs := j.plan.scs, j.plan.govs
		onCell := j.publishCell
		if d := s.faults.slowCell(); d > 0 {
			onCell = func(r *scenario.Result) {
				time.Sleep(d)
				j.publishCell(r)
			}
		}
		rc := scenario.Config{
			PlatformName: req.Platform,
			Integrator:   integ,
			OnCell:       onCell,
		}
		if len(scs)*len(govs) == 1 {
			// A single cell has an unambiguous telemetry stream:
			// publish every trace sample live. Multi-cell jobs stream
			// per-cell progress instead — interleaved samples from
			// concurrent cells would be unattributable.
			rc.OnSample = j.publishSample
		}
		grid, err := scenario.RunGridCtx(ctx, scs, govs, rc, req.Workers)
		if err != nil {
			return "", nil, err
		}
		return grid.Render(), summarizeGrid(grid), nil
	}
}

// ResultSummary is the machine-readable half of a finished job.
type ResultSummary struct {
	// Cells counts completed scenario × governor cells (grid and
	// scenario jobs); Rows counts Fig. 5 application rows.
	Cells int `json:"cells,omitempty"`
	Rows  int `json:"rows,omitempty"`
	// Violations counts failed assertions across the grid — the number
	// the teemscenario exit code is built on.
	Violations int `json:"violations,omitempty"`
}

func summarizeGrid(g *scenario.GridResult) *ResultSummary {
	sum := &ResultSummary{Violations: g.Violations()}
	for si := range g.Cells {
		for gi := range g.Cells[si] {
			if g.Cells[si][gi] != nil {
				sum.Cells++
			}
		}
	}
	return sum
}
