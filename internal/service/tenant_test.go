package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"teem/internal/mapping"
	"teem/internal/scenario"
)

// longNamedScenarioJSON is longScenarioJSON with a caller-chosen name,
// so tests can hold several distinct long-running jobs at once.
func longNamedScenarioJSON(t *testing.T, name string) json.RawMessage {
	t.Helper()
	sc, err := scenario.New(name).
		ArriveDefault(0, "COVARIANCE").
		Horizon(100000).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sc.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// A dry token bucket rejects with ErrQuotaExceeded wrapped in a
// RetryError carrying a positive backoff — and only for that tenant.
func TestQuotaRateLimitPerTenant(t *testing.T) {
	s := newTestService(t, Options{
		Workers: 2,
		Quotas:  &QuotaConfig{Default: TenantQuota{RatePerSec: 0.0001, Burst: 1}},
	})
	if _, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "q1"), Tenant: "alpha"}); err != nil {
		t.Fatalf("first submission (burst token): %v", err)
	}
	_, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "q2"), Tenant: "alpha"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second submission: got %v, want ErrQuotaExceeded", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.After <= 0 {
		t.Fatalf("quota rejection %v carries no positive Retry-After", err)
	}
	// An unrelated tenant is unaffected.
	if _, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "q3"), Tenant: "beta"}); err != nil {
		t.Fatalf("other tenant's submission: %v", err)
	}
	if got := s.Metrics().QuotaRejected(); got != 1 {
		t.Errorf("quota_rejected = %d, want 1", got)
	}
	if got := s.Metrics().Tenant("alpha")["quota_rejected"]; got != 1 {
		t.Errorf("tenant alpha quota_rejected = %d, want 1", got)
	}
	// A cache hit costs no token: repeating q1 succeeds from the cache
	// even though the bucket is dry.
	j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "q1"), Tenant: "alpha"})
	if err != nil {
		t.Fatalf("cached resubmission consumed a token: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
}

// MaxActive caps one tenant's standing work without touching others.
func TestQuotaMaxActivePerTenant(t *testing.T) {
	s := newTestService(t, Options{
		Workers: 1,
		Quotas: &QuotaConfig{Tenants: map[string]TenantQuota{
			"noisy": {MaxActive: 1},
		}},
	})
	blocker, _, err := s.Submit(&JobRequest{Scenario: longNamedScenarioJSON(t, "hog"), Tenant: "noisy"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	_, _, err = s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "over-cap"), Tenant: "noisy"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-cap submission: got %v, want ErrQuotaExceeded", err)
	}
	if _, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "bystander"), Tenant: "calm"}); err != nil {
		t.Fatalf("uncapped tenant's submission: %v", err)
	}
	_ = s.Cancel(blocker.ID)
}

// The starvation guarantee: a tenant flooding the queue with
// low-priority work cannot block another tenant's higher-priority job —
// the full queue sheds the flooder's newest low-priority entry instead,
// while an equal-priority submission still gets the 429-style backoff.
func TestFloodingTenantCannotStarveHigherPriority(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueDepth: 2})

	blocker, _, err := s.Submit(&JobRequest{Scenario: longNamedScenarioJSON(t, "flood-0"), Tenant: "noisy"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	flood := make([]*Job, 0, 2)
	for i := 1; i <= 2; i++ {
		j, _, err := s.Submit(&JobRequest{Scenario: longNamedScenarioJSON(t, fmt.Sprintf("flood-%d", i)), Tenant: "noisy"})
		if err != nil {
			t.Fatalf("filling the queue: %v", err)
		}
		flood = append(flood, j)
	}

	// Equal priority + full queue: back off, don't shed.
	_, _, err = s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "equal-pri"), Tenant: "victim"})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("equal-priority submission at a full queue: got %v, want ErrBusy", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.After <= 0 {
		t.Fatalf("busy rejection %v carries no positive Retry-After", err)
	}

	// Higher priority: admitted by shedding the flooder's newest entry.
	vip, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "vip"), Tenant: "victim", Priority: 5})
	if err != nil {
		t.Fatalf("high-priority submission was starved: %v", err)
	}

	shedJS := waitTerminal(t, flood[1], 5*time.Second)
	if shedJS.Status != StatusFailed || !strings.HasPrefix(shedJS.Error, "shed:") {
		t.Fatalf("victim of shedding ended %s (%q), want failed with a shed: cause", shedJS.Status, shedJS.Error)
	}
	if got := s.Metrics().Shed(); got != 1 {
		t.Errorf("jobs_shed = %d, want 1", got)
	}
	if got := s.Metrics().Tenant("noisy")["shed"]; got != 1 {
		t.Errorf("tenant noisy shed = %d, want 1", got)
	}

	// Free the worker: the vip job must run before the remaining queued
	// flood job (priority order) and complete.
	_ = s.Cancel(blocker.ID)
	if js := waitTerminal(t, vip, 30*time.Second); js.Status != StatusDone {
		t.Fatalf("vip job ended %s: %s", js.Status, js.Error)
	}
	if fs := flood[0].Snapshot(); fs.Terminal() && fs.Status == StatusDone {
		t.Error("flood job finished before the higher-priority vip job")
	}
	_ = s.Cancel(flood[0].ID)
}

// An injected worker panic is transient: the job retries with backoff
// and completes, the retry is counted and visible in the status and the
// telemetry stream.
func TestTransientPanicRetriesToSuccess(t *testing.T) {
	s := newTestService(t, Options{
		Workers: 1,
		Faults:  &FaultConfig{PanicEvery: 2},
		Retry:   RetryPolicy{BaseDelay: 5 * time.Millisecond},
	})
	// Execution #1: clean. Execution #2 (this job's first attempt):
	// panics, retries as execution #3, which is clean again.
	first, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "warmup")})
	if err != nil {
		t.Fatal(err)
	}
	if js := waitTerminal(t, first, 30*time.Second); js.Status != StatusDone {
		t.Fatalf("warmup ended %s: %s", js.Status, js.Error)
	}
	victim, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "panics-once")})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, victim, 30*time.Second)
	if js.Status != StatusDone {
		t.Fatalf("panicking job ended %s: %s — transient failures must retry", js.Status, js.Error)
	}
	if js.Retries != 1 {
		t.Errorf("retries = %d, want 1", js.Retries)
	}
	if got := s.Metrics().Retried(); got != 1 {
		t.Errorf("jobs_retried = %d, want 1", got)
	}

	// The stream replay names the retry.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sawRetry := false
	_ = victim.Stream(ctx, func(line []byte) error {
		var ev streamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("unparseable stream line %q: %v", line, err)
		}
		if ev.Type == "retry" {
			sawRetry = true
			if ev.Attempt != 1 || ev.DelayS <= 0 || !strings.Contains(ev.Error, "worker panic") {
				t.Errorf("retry event = %+v, want attempt 1, positive delay, panic cause", ev)
			}
		}
		return nil
	})
	if !sawRetry {
		t.Error("stream replay has no retry event")
	}
}

// A job that panics on every attempt exhausts its budget and fails with
// the panic cause — it does not retry forever.
func TestTransientRetryBudgetExhausted(t *testing.T) {
	s := newTestService(t, Options{
		Workers: 1,
		Faults:  &FaultConfig{PanicEvery: 1},
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	})
	j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "always-panics")})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j, 30*time.Second)
	if js.Status != StatusFailed {
		t.Fatalf("job ended %s, want failed after the retry budget", js.Status)
	}
	if !strings.Contains(js.Error, "worker panic") {
		t.Errorf("error %q does not name the panic", js.Error)
	}
	if js.Retries != 1 {
		t.Errorf("retries = %d, want 1 (MaxAttempts 2)", js.Retries)
	}
}

// A deterministic failure never retries: re-running it would only
// reproduce the same error.
func TestDeterministicFailureDoesNotRetry(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, Retry: RetryPolicy{BaseDelay: time.Millisecond}})
	// A fig5 job with an impossible mapping fails inside execution —
	// deterministically, every attempt — so it must fail once, without
	// burning the retry budget.
	j, _, err := s.Submit(&JobRequest{Kind: KindFig5, Map: &mapping.Mapping{Big: 400, Little: 0, UseGPU: true}})
	if err != nil {
		t.Fatalf("submission rejected, want a run-time failure: %v", err)
	}
	js := waitTerminal(t, j, 30*time.Second)
	if js.Status != StatusFailed {
		t.Fatalf("job ended %s, want failed (impossible mapping)", js.Status)
	}
	if js.Retries != 0 {
		t.Errorf("deterministic failure retried %d times", js.Retries)
	}
	if got := s.Metrics().Retried(); got != 0 {
		t.Errorf("jobs_retried = %d, want 0", got)
	}
}

// Cancel is idempotent: repeating it on a cancelled job is a no-op;
// cancelling a completed job reports ErrAlreadyDone consistently.
func TestCancelIdempotent(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	blocker, _, err := s.Submit(&JobRequest{Scenario: longNamedScenarioJSON(t, "cancel-blocker")})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	queued, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "cancel-queued")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Cancel(queued.ID); err != nil {
			t.Fatalf("cancel #%d of a queued job: %v", i+1, err)
		}
	}
	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancelling the running job: %v", err)
	}
	waitTerminal(t, blocker, 30*time.Second)
	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("re-cancelling the cancelled job: %v", err)
	}

	done, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "cancel-done")})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, done, 30*time.Second)
	if err := s.Cancel(done.ID); !errors.Is(err, ErrAlreadyDone) {
		t.Fatalf("cancelling a done job: got %v, want ErrAlreadyDone", err)
	}
	if err := s.Cancel(done.ID); !errors.Is(err, ErrAlreadyDone) {
		t.Fatalf("second cancel of a done job: got %v, want ErrAlreadyDone again", err)
	}
}

// The HTTP view of the same contracts: 429 + Retry-After on quota
// pressure with healthz staying ok, and consistent 200/404/409 for
// idempotent cancels over both POST and DELETE.
func TestHTTPQuotaAndCancelContracts(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers: 1,
		Quotas:  &QuotaConfig{Default: TenantQuota{RatePerSec: 0.0001, Burst: 1}},
	})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Scenario: tinyScenarioJSON(t, "http-q1"), Tenant: "alpha"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var first JobStatus
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Scenario: tinyScenarioJSON(t, "http-q2"), Tenant: "alpha"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response has no Retry-After header")
	}
	if !strings.Contains(string(body), "quota") {
		t.Errorf("429 body %q does not name the quota", body)
	}

	// Per-tenant pressure is not daemon ill-health.
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during quota pressure: HTTP %d: %s", resp.StatusCode, body)
	}
	var hz struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Errorf("healthz status %q during quota pressure, want ok", hz.Status)
	}
	if hz.Version == "" {
		t.Error("healthz reports no version")
	}

	j, err := s.Job(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j, 30*time.Second)

	// Cancel of a done job: 409, on POST and DELETE alike, repeatably.
	for _, do := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) { return postJSON(t, ts.URL+"/v1/jobs/"+first.ID+"/cancel", nil) },
		func() (*http.Response, []byte) { return httpDelete(t, ts.URL+"/v1/jobs/"+first.ID) },
		func() (*http.Response, []byte) { return postJSON(t, ts.URL+"/v1/jobs/"+first.ID+"/cancel", nil) },
	} {
		resp, body = do()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("cancel of a done job: HTTP %d, want 409: %s", resp.StatusCode, body)
		}
	}
	// Unknown job: 404 either way.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs/j999/cancel", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	resp, _ = httpDelete(t, ts.URL+"/v1/jobs/j999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE of unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// Repeated cancels of a cancelled job answer 200 with the snapshot on
// POST and DELETE alike — the regression test for the idempotency
// satellite.
func TestHTTPCancelIdempotent(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	blocker, _, err := s.Submit(&JobRequest{Scenario: longNamedScenarioJSON(t, "http-cancel-blocker")})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Scenario: tinyScenarioJSON(t, "http-cancel-queued")})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	for i, do := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) { return postJSON(t, ts.URL+"/v1/jobs/"+js.ID+"/cancel", nil) },
		func() (*http.Response, []byte) { return httpDelete(t, ts.URL+"/v1/jobs/"+js.ID) },
		func() (*http.Response, []byte) { return postJSON(t, ts.URL+"/v1/jobs/"+js.ID+"/cancel", nil) },
	} {
		resp, body = do()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel #%d: HTTP %d, want 200: %s", i+1, resp.StatusCode, body)
		}
		var got JobStatus
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Status != StatusCancelled {
			t.Fatalf("cancel #%d snapshot status %s, want cancelled", i+1, got.Status)
		}
	}
	_ = s.Cancel(blocker.ID)
}

func httpDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}
