package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"teem/internal/buildinfo"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (JobRequest JSON) → JobStatus
//	GET    /v1/jobs             list retained jobs → []JobStatus
//	GET    /v1/jobs/{id}        poll one job → JobStatus
//	GET    /v1/jobs/{id}/result rendered result text (byte-identical to the CLI)
//	GET    /v1/jobs/{id}/stream live NDJSON telemetry (replays history, then follows)
//	POST   /v1/jobs/{id}/cancel cancel (DELETE /v1/jobs/{id} is an alias)
//	GET    /healthz             liveness + queue counts + journal health
//	GET    /metrics             service counters: JSON by default, Prometheus
//	                            text exposition under `Accept: text/plain`
//	GET    /trace               job lifecycle spans as NDJSON (?follow=1 streams)
//	GET    /debug/vars          process-wide expvar (includes teemd.* when published)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.Handle("GET /metrics", s.Metrics())
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	// Admission rejections — quota or queue pressure — are 429 with a
	// Retry-After hint: the condition is per-tenant and transient, not a
	// daemon-wide 503.
	var re *RetryError
	if errors.As(err, &re) {
		secs := int(math.Ceil(re.After.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQuotaExceeded), errors.Is(err, ErrBusy):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDone), errors.Is(err, ErrAlreadyDone):
		code = http.StatusConflict
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	j, cached, err := s.Submit(&req)
	if err != nil {
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) || errors.Is(err, ErrQuotaExceeded) {
			writeError(w, err)
		} else {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}
	js := j.Snapshot()
	js.Cached = cached
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, js)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	text, _, err := j.Result()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_ = j.Stream(r.Context(), func(line []byte) error {
		if _, werr := w.Write(line); werr != nil {
			return werr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		if errors.Is(err, ErrNotFound) {
			writeError(w, err)
		} else {
			writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		}
		return
	}
	j, err := s.Job(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleTrace serves the service-wide lifecycle-span ring as NDJSON:
// the buffered spans, then — with ?follow=1 — everything new until the
// client disconnects.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_ = s.Trace(r.Context(), follow, func(line []byte) error {
		if _, werr := w.Write(line); werr != nil {
			return werr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	queued, running := s.Counts()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	jh := s.journal.health()
	status := "ok"
	code := http.StatusOK
	if jh.Degraded {
		// The daemon serves, but the last journal flush failed:
		// acknowledged work may not survive a crash until one lands.
		status = "degraded"
	}
	if closed {
		// A draining daemon fails its health check so load balancers
		// stop routing to it while in-flight jobs finish.
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":       status,
		"version":      buildinfo.Version,
		"jobs_queued":  queued,
		"jobs_running": running,
		"recoveries":   s.metrics.recoveries.Value(),
		"journal":      jh,
	})
}
