package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"teem/internal/obs"
)

// scrapeMetrics performs one GET /metrics against the service handler
// with the given Accept header and returns the recorded response.
func scrapeMetrics(t *testing.T, s *Service, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// /metrics must speak both dialects: the default JSON document stays
// exactly as it always was, and `Accept: text/plain` negotiates a valid
// Prometheus text exposition carrying the same counters.
func TestMetricsPromExposition(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, _, err := s.Submit(&JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		t.Fatal(err)
	}
	if js := waitTerminal(t, j, 30*time.Second); js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}

	// Default: the JSON document, unchanged shape.
	w := scrapeMetrics(t, s, "")
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default /metrics Content-Type = %q, want application/json", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if doc["jobs_done"].(float64) < 1 {
		t.Errorf("JSON jobs_done = %v, want >= 1", doc["jobs_done"])
	}
	jsonBefore := w.Body.String()

	// Negotiated: the Prometheus text exposition, format-valid.
	pw := scrapeMetrics(t, s, obs.ContentType)
	if ct := pw.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("prom /metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body := pw.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"teemd_build_info",
		"teemd_jobs_done_total 1",
		"teemd_jobs_queued ",
		"teemd_job_latency_seconds_bucket",
		"teemd_job_run_seconds_count",
		`teemd_tenant_submitted_total{tenant="default"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	// An openmetrics-flavoured Accept negotiates text too.
	ow := scrapeMetrics(t, s, "application/openmetrics-text; version=1.0.0")
	if !bytes.HasPrefix(ow.Body.Bytes(), []byte("# HELP")) {
		t.Error("openmetrics Accept did not negotiate the text exposition")
	}

	// Scraping prom must not perturb the JSON document.
	if after := scrapeMetrics(t, s, "application/json").Body.String(); after != jsonBefore {
		t.Errorf("JSON /metrics changed after a prom scrape:\nbefore:\n%s\nafter:\n%s", jsonBefore, after)
	}
}

// Content negotiation must honour media-range qualities: q=0 is an
// explicit refusal of a dialect, and unrelated ranges merely mentioning
// the magic strings must not flip the format.
func TestWantsPromQualityNegotiation(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"text/plain", true},
		{"text/plain; version=0.0.4", true},
		{obs.ContentType, true},
		{"application/openmetrics-text; version=1.0.0", true},
		{"text/plain;q=0", false},
		{"text/plain; q=0.0", false},
		{"text/plain;q=0, application/json", false},
		{"text/plain;q=0.5, application/json", true},
		{"application/json, text/plain; version=0.0.4; q=1", true},
		{"text/html", false},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/metrics", nil)
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		if got := wantsProm(req); got != c.want {
			t.Errorf("wantsProm(Accept: %q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// The ring's eviction path shifts elements within its backing array, so
// readers must get a copy, never an aliasing sub-slice. This hammers
// concurrent emits past traceKeep against snapshot reads — the -race
// guard for that invariant.
func TestTracerEvictionRace(t *testing.T) {
	const total = 3 * traceKeep
	tr := newTracer()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			tr.emit(obs.Span{Trace: "deadbeefdeadbeef", Phase: "run", Attempt: i})
		}
	}()
	read := func(seq int64) int64 {
		lines, next := tr.waitFrom(context.Background(), seq, false)
		for _, ln := range lines {
			var sp obs.Span
			if err := json.Unmarshal(ln, &sp); err != nil {
				t.Errorf("torn span line %q: %v", ln, err)
			}
		}
		return next
	}
	var seq int64
	for seq < total {
		seq = read(seq)
	}
	wg.Wait()
	if got := read(0); got != total {
		t.Fatalf("final ring sequence = %d, want %d", got, total)
	}
}

// The exposition and JSON snapshots must be safe to take while the
// service is churning — this is the -race hammer for the metrics layer.
func TestMetricsSnapshotUnderLoad(t *testing.T) {
	s := newTestService(t, Options{Workers: 4})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				req := &JobRequest{
					Scenario: tinyScenarioJSON(t, fmt.Sprintf("obs-race-%d-%d", g, i)),
					Tenant:   fmt.Sprintf("tenant-%d", g),
				}
				j, _, err := s.Submit(req)
				if err != nil {
					continue
				}
				waitTerminal(t, j, 30*time.Second)
			}
		}(g)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, accept := range []string{"", obs.ContentType} {
			w := scrapeMetrics(t, s, accept)
			if w.Code != 200 {
				t.Fatalf("scrape with Accept %q: HTTP %d", accept, w.Code)
			}
		}
		if err := obs.ValidateExposition(bytes.NewReader(s.Metrics().prom())); err != nil {
			t.Fatalf("mid-churn exposition invalid: %v", err)
		}
		_ = s.Metrics().String()
	}
	close(done)
	wg.Wait()
}

// Every job must leave a coherent trace: one id minted at submission,
// stamped on the status, and a span per lifecycle phase on /trace.
func TestTraceSpansLifecycle(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "traced"), Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j, 30*time.Second)
	if js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(js.TraceID) {
		t.Fatalf("trace id %q is not 16 hex chars", js.TraceID)
	}

	var spans []obs.Span
	if err := s.Trace(context.Background(), false, func(line []byte) error {
		var sp obs.Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return fmt.Errorf("bad span line %q: %v", line, err)
		}
		spans = append(spans, sp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, sp := range spans {
		if sp.Trace != js.TraceID {
			continue
		}
		if sp.Job != j.ID {
			t.Errorf("span %s carries job %q, want %q", sp.Phase, sp.Job, j.ID)
		}
		if sp.Tenant != "acme" {
			t.Errorf("span %s carries tenant %q, want acme", sp.Phase, sp.Tenant)
		}
		if _, seen := phases[sp.Phase]; !seen {
			phases[sp.Phase] = len(phases)
		}
	}
	for _, want := range []string{"submit", "queue", "run", "done"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("no %q span for trace %s (got %v)", want, js.TraceID, phases)
		}
	}
	// submit and queue are emitted before the pool handoff, so they must
	// precede run in stream order (journal-commit is concurrent and
	// exempt — see obs.Span).
	if phases["submit"] > phases["run"] || phases["queue"] > phases["run"] {
		t.Errorf("lifecycle spans out of order: %v", phases)
	}
}

// A follow=true Trace must deliver spans emitted after the subscription
// and stop when its context is cancelled.
func TestTraceFollowDeliversLive(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan obs.Span, 64)
	errc := make(chan error, 1)
	go func() {
		errc <- s.Trace(ctx, true, func(line []byte) error {
			var sp obs.Span
			if err := json.Unmarshal(line, &sp); err != nil {
				return err
			}
			got <- sp
			return nil
		})
	}()

	j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "follow-me")})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j, 30*time.Second)
	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(seen["submit"] && seen["done"]) {
		select {
		case sp := <-got:
			if sp.Trace == js.TraceID {
				seen[sp.Phase] = true
			}
		case <-deadline:
			t.Fatalf("follow stream never delivered submit+done; saw %v", seen)
		}
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Errorf("follow returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow Trace did not return after cancel")
	}
}

// The trace id written to the journal at submission is the one a
// restarted daemon re-runs under: one trace spans both process epochs.
func TestTraceIDSurvivesRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	writeJournalFile(t, path, []journalRecord{
		{Op: opSubmit, ID: "j1", Trace: "00aa11bb22cc33dd",
			Req: &JobRequest{Scenario: tinyScenarioJSON(t, "trace-recover"), Governors: []string{"ondemand"}}},
	})
	s := newTestService(t, Options{Workers: 1, JournalPath: path})
	j, err := s.Job("j1")
	if err != nil {
		t.Fatal(err)
	}
	if js := waitTerminal(t, j, 30*time.Second); js.TraceID != "00aa11bb22cc33dd" {
		t.Errorf("recovered trace id = %q, want the journalled 00aa11bb22cc33dd", js.TraceID)
	}
	var phases []string
	_ = s.Trace(context.Background(), false, func(line []byte) error {
		var sp obs.Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return err
		}
		if sp.Trace == "00aa11bb22cc33dd" {
			phases = append(phases, sp.Phase)
		}
		return nil
	})
	if len(phases) == 0 || phases[0] != "recover" {
		t.Errorf("recovered job's first span = %v, want it to open with recover", phases)
	}
}

// journal.health is the /healthz ingredient: nil-safe, degraded exactly
// while the last flush failed, and counting records since compaction.
func TestJournalHealth(t *testing.T) {
	var nilJ *journal
	if h := nilJ.health(); h.Enabled || h.Degraded {
		t.Errorf("nil journal health = %+v, want disabled and healthy", h)
	}

	j := &journal{appendN: 7, compactSeq: 3}
	h := j.health()
	if !h.Enabled || h.Degraded || h.RecordsSinceCompaction != 4 {
		t.Errorf("health = %+v, want enabled, healthy, 4 records since compaction", h)
	}

	j.mu.Lock()
	j.lastErr = "disk on fire"
	j.mu.Unlock()
	h = j.health()
	if !h.Degraded || h.LastError != "disk on fire" {
		t.Errorf("health after flush error = %+v, want degraded with the error", h)
	}
	j.mu.Lock()
	j.lastErr = ""
	j.mu.Unlock()
	if h = j.health(); h.Degraded {
		t.Error("health stayed degraded after a clean flush")
	}
}

// /healthz surfaces the journal block and keeps status "ok" for a
// healthy journalled daemon.
func TestHealthzReportsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	s := newTestService(t, Options{Workers: 1, JournalPath: path})
	j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "healthz")})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j, 30*time.Second)

	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("healthz: HTTP %d", w.Code)
	}
	var h struct {
		Status  string        `json:"status"`
		Journal journalHealth `json:"journal"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if !h.Journal.Enabled || h.Journal.Degraded {
		t.Errorf("journal health = %+v, want enabled and healthy", h.Journal)
	}
	if h.Journal.RecordsSinceCompaction == 0 {
		t.Error("records_since_compaction = 0 after journalled work")
	}
}

// BenchmarkPromExposition prices one /metrics text render with live
// tenant stats and populated histograms.
func BenchmarkPromExposition(b *testing.B) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		s.metrics.tenant(fmt.Sprintf("tenant-%d", i)).submitted.Add(int64(i))
		s.metrics.observeLatency(time.Duration(i+1) * time.Millisecond)
		s.metrics.observeRun(time.Duration(i+1) * 10 * time.Millisecond)
	}
	v := s.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(v.prom()) == 0 {
			b.Fatal("empty exposition")
		}
	}
}
