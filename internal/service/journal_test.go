package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teem/internal/scenario"
)

// writeJournalFile hand-writes a journal of records, sequencing them in
// order — the fixture for recovery tests.
func writeJournalFile(t *testing.T, path string, recs []journalRecord) {
	t.Helper()
	var b bytes.Buffer
	for i, r := range recs {
		r.Seq = int64(i + 1)
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// countFinishes re-reads a journal file and tallies finish records per id.
func countFinishes(t *testing.T, path string) map[string]int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	finishes := map[string]int{}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("corrupt journal line %q: %v", line, err)
		}
		if rec.Op == opFinish {
			finishes[rec.ID]++
		}
	}
	return finishes
}

// Recovery re-runs exactly the journal's uncompleted submissions, under
// their original ids, with byte-identical results, and never reuses an
// id from the previous epoch.
func TestJournalRecoveryRunsUncompleted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	writeJournalFile(t, path, []journalRecord{
		{Op: opSubmit, ID: "j1", Req: &JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}}},
		{Op: opStart, ID: "j1"},
		{Op: opSubmit, ID: "j2", Req: &JobRequest{Scenario: tinyScenarioJSON(t, "recovered"), Governors: []string{"ondemand"}}},
		{Op: opSubmit, ID: "j3", Req: &JobRequest{Preset: "sunlight", Governors: []string{"powersave"}}},
		{Op: opFinish, ID: "j3", Status: StatusDone},
	})

	s := newTestService(t, Options{Workers: 2, JournalPath: path})
	if got := s.Metrics().Recoveries(); got != 2 {
		t.Fatalf("recoveries = %d, want 2", got)
	}
	if _, err := s.Job("j3"); err == nil {
		t.Error("completed j3 was recovered; finished history must be dropped")
	}

	j1, err := s.Job("j1")
	if err != nil {
		t.Fatalf("j1 not recovered: %v", err)
	}
	j2, err := s.Job("j2")
	if err != nil {
		t.Fatalf("j2 not recovered: %v", err)
	}
	for _, j := range []*Job{j1, j2} {
		if js := waitTerminal(t, j, 30*time.Second); js.Status != StatusDone {
			t.Fatalf("recovered %s ended %s: %s", j.ID, js.Status, js.Error)
		}
	}

	// Byte-identical to the CLI path, exactly like a fresh submission.
	text, _, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scenario.RunGrid([]*scenario.Scenario{scenario.Sunlight()}, []string{"ondemand"}, scenario.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if text != grid.Render() {
		t.Error("recovered j1 result differs from the CLI render")
	}

	// New ids resume past the recovered epoch's maximum.
	nj, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "post-recovery")})
	if err != nil {
		t.Fatal(err)
	}
	if nj.ID != "j4" {
		t.Errorf("post-recovery id = %s, want j4 (max recovered id was j3)", nj.ID)
	}
	waitTerminal(t, nj, 30*time.Second)

	// The journal holds at most one finish per id — recovery compacted
	// the old epoch away, and each re-run finished exactly once.
	s.Close()
	for id, n := range countFinishes(t, path) {
		if n > 1 {
			t.Errorf("journal holds %d finish records for %s, want at most 1", n, id)
		}
	}
}

// A missing or empty journal is a clean start, not an error.
func TestJournalMissingOrEmpty(t *testing.T) {
	dir := t.TempDir()
	for name, path := range map[string]string{
		"missing": filepath.Join(dir, "nonexistent.ndjson"),
		"empty":   filepath.Join(dir, "empty.ndjson"),
	} {
		if name == "empty" {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s := newTestService(t, Options{Workers: 1, JournalPath: path})
		if got := s.Metrics().Recoveries(); got != 0 {
			t.Errorf("%s journal: recoveries = %d, want 0", name, got)
		}
		j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "fresh-"+name)})
		if err != nil {
			t.Fatalf("%s journal: submit: %v", name, err)
		}
		if js := waitTerminal(t, j, 30*time.Second); js.Status != StatusDone {
			t.Fatalf("%s journal: job ended %s: %s", name, js.Status, js.Error)
		}
	}
}

// A crash mid-write leaves a torn final record: it is skipped and
// counted, and every intact record before it recovers normally.
func TestJournalTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	writeJournalFile(t, path, []journalRecord{
		{Op: opSubmit, ID: "j1", Req: &JobRequest{Scenario: tinyScenarioJSON(t, "survivor"), Governors: []string{"ondemand"}}},
	})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"op":"submit","id":"j2","req":{"pre`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	scan, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the torn tail)", scan.skipped)
	}
	if len(scan.pending) != 1 || scan.pending[0].id != "j1" {
		t.Fatalf("pending = %+v, want exactly j1", scan.pending)
	}

	s := newTestService(t, Options{Workers: 1, JournalPath: path})
	j, err := s.Job("j1")
	if err != nil {
		t.Fatal(err)
	}
	if js := waitTerminal(t, j, 30*time.Second); js.Status != StatusDone {
		t.Fatalf("survivor ended %s: %s", js.Status, js.Error)
	}
}

// Duplicate submits (a compaction artifact) and duplicate finishes are
// idempotent; an unparseable line in the middle is skipped.
func TestJournalDuplicateAndCorruptRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	req := &JobRequest{Preset: "sunlight"}
	writeJournalFile(t, path, []journalRecord{
		{Op: opSubmit, ID: "j1", Req: req},
		{Op: opSubmit, ID: "j1", Req: &JobRequest{Preset: "rush-hour"}}, // dup: first wins
		{Op: opSubmit, ID: "j2", Req: req},
		{Op: opFinish, ID: "j2", Status: StatusDone},
		{Op: opFinish, ID: "j2", Status: StatusDone}, // dup finish
		{Op: opFinish, ID: "j9", Status: StatusDone}, // finish before (without) submit
	})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	scan, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.pending) != 1 || scan.pending[0].id != "j1" {
		t.Fatalf("pending = %+v, want exactly j1", scan.pending)
	}
	if scan.pending[0].req.Preset != "sunlight" {
		t.Errorf("duplicate submit overrode the first record: %q", scan.pending[0].req.Preset)
	}
	if scan.dupFinishes != 1 {
		t.Errorf("dupFinishes = %d, want 1", scan.dupFinishes)
	}
	if scan.skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the non-JSON line)", scan.skipped)
	}
	if scan.maxID != 9 {
		t.Errorf("maxID = %d, want 9", scan.maxID)
	}
}

// Compaction keeps the journal bounded: a long submission history
// rewrites down to the live set instead of growing without limit.
func TestJournalCompactionBoundsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	s := newTestService(t, Options{Workers: 2, JournalPath: path, JournalCompactBytes: 4096})
	for i := 0; i < 40; i++ {
		j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "compact-"+string(rune('a'+i%26))+"-"+string(rune('a'+i/26)))})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j, 30*time.Second)
	}
	s.Close()
	if got := s.Metrics().m.journalCompactions.Value(); got < 1 {
		t.Errorf("journalCompactions = %d, want at least 1", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 16*4096 {
		t.Errorf("journal grew to %d bytes despite a 4096-byte compaction bound", st.Size())
	}
}

// Injected journal write errors degrade durability (counted, logged)
// but never job availability.
func TestJournalWriteErrorsDegradeNotFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	s := newTestService(t, Options{
		Workers:     2,
		JournalPath: path,
		Faults:      &FaultConfig{JournalErrEvery: 2},
	})
	for i := 0; i < 4; i++ {
		j, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "flaky-journal-"+string(rune('a'+i)))})
		if err != nil {
			t.Fatal(err)
		}
		if js := waitTerminal(t, j, 30*time.Second); js.Status != StatusDone {
			t.Fatalf("job ended %s with journal faults: %s", js.Status, js.Error)
		}
	}
	if got := s.Metrics().JournalErrors(); got == 0 {
		t.Error("journal error faults fired but journal_errors stayed 0")
	}
}

// Recovery of a journal whose every record is garbage is an empty clean
// start, and the skip counter reports the loss.
func TestJournalAllCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	if err := os.WriteFile(path, []byte("garbage\n{\"op\":\"\"}\n\x00\x01\x02\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Options{Workers: 1, JournalPath: path})
	if got := s.Metrics().Recoveries(); got != 0 {
		t.Errorf("recoveries = %d, want 0", got)
	}
	if got := s.Metrics().m.recoverySkipped.Value(); got == 0 {
		t.Error("recovery_skipped = 0, want > 0 for an all-corrupt journal")
	}
}

func TestParseJobID(t *testing.T) {
	for _, tc := range []struct {
		id string
		n  int
		ok bool
	}{
		{"j1", 1, true}, {"j42", 42, true}, {"j0", 0, true},
		{"x1", 0, false}, {"j", 0, false}, {"j-3", 0, false}, {"", 0, false},
	} {
		n, ok := parseJobID(tc.id)
		if n != tc.n || ok != tc.ok {
			t.Errorf("parseJobID(%q) = (%d, %v), want (%d, %v)", tc.id, n, ok, tc.n, tc.ok)
		}
	}
}

// The journal records a cancelled queued job as finished-cancelled, so
// recovery does not resurrect it.
func TestJournalCancelledJobNotRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	s := newTestService(t, Options{Workers: 1, JournalPath: path})
	blocker, _, err := s.Submit(&JobRequest{Scenario: longScenarioJSON(t)})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := s.Submit(&JobRequest{Scenario: tinyScenarioJSON(t, "doomed")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	_ = s.Cancel(blocker.ID)
	waitTerminal(t, blocker, 30*time.Second)
	s.Close()

	scan, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.pending) != 0 {
		ids := make([]string, len(scan.pending))
		for i, p := range scan.pending {
			ids[i] = p.id
		}
		t.Errorf("journal still holds pending jobs %s after every job went terminal", strings.Join(ids, ", "))
	}
}
