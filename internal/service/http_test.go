package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, o Options) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// The full HTTP round trip: healthz, submit, poll, result, metrics.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.Cached {
		t.Fatalf("submit snapshot: %+v", js)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !js.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", js.Status)
		}
		time.Sleep(5 * time.Millisecond)
		resp, body = getBody(t, ts.URL+"/v1/jobs/"+js.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
	}
	if js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}

	resp, body = getBody(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "scenario × governor grid") {
		t.Errorf("result text lacks the grid table:\n%s", body)
	}

	// A repeat submission answers 200 + cached from the request cache.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit = %d: %s", resp.StatusCode, body)
	}
	var js2 JobStatus
	if err := json.Unmarshal(body, &js2); err != nil {
		t.Fatal(err)
	}
	if !js2.Cached || js2.ID != js.ID {
		t.Errorf("repeat submit = %+v, want cached id %s", js2, js.ID)
	}

	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"jobs_done", "cache_hits", "latency_p50_s", "latency_p99_s"} {
		if _, ok := vars[k]; !ok {
			t.Errorf("metrics lack %q: %s", k, body)
		}
	}
}

// Streaming over HTTP: NDJSON lines arrive, end with a done event, and
// unknown ids 404.
func TestHTTPStreamAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Preset: "sunlight"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var last streamEvent
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 3 {
		t.Errorf("stream had %d lines, want start+samples+done", lines)
	}
	if last.Type != "done" || last.Status != StatusDone {
		t.Errorf("last event = %+v, want done/done", last)
	}

	if resp, _ := getBody(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/nope/stream"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id stream = %d, want 404", resp.StatusCode)
	}
	// A result query on the (already done) job works; cancelling it 409s.
	creq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/"+js.ID+"/cancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of done job = %d, want 409", cresp.StatusCode)
	}
	// Malformed submissions 400.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus kind = %d, want 400", resp.StatusCode)
	}
}

// Cancel over HTTP: DELETE aborts a running job.
func TestHTTPCancelRunning(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Scenario: longScenarioJSON(t)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	// Wait for it to run.
	deadline := time.Now().Add(10 * time.Second)
	for js.Status == StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
		_, body = getBody(t, ts.URL+"/v1/jobs/"+js.ID)
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
	}
	dreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+js.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", dresp.StatusCode)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !js.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("cancellation did not land")
		}
		time.Sleep(2 * time.Millisecond)
		_, body = getBody(t, ts.URL+"/v1/jobs/"+js.ID)
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
	}
	if js.Status != StatusCancelled {
		t.Errorf("job ended %s, want cancelled", js.Status)
	}
}

// The jobs listing reflects submission order.
func TestHTTPListJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Scenario: tinyScenarioJSON(t, fmt.Sprintf("list-%d", i))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := getBody(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var list []JobStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Errorf("listing out of submission order: %s then %s", list[i-1].ID, list[i].ID)
		}
	}
}
