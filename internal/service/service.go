// Package service hosts simulations as managed jobs behind an HTTP/JSON
// API — the serving layer (teemd) over the batch engines below it.
//
// A job is one unit of simulation work: a single scenario (inline JSON,
// preset name, or arrival-trace replay), a scenario × governor grid, or
// a Fig. 5-style experiment. Jobs are submitted to a bounded worker pool
// (internal/par.Pool — a full queue sheds load instead of building an
// unbounded backlog), identified by sequential ids, cancellable at any
// point (a running simulation aborts within one engine tick via the
// context threaded down to sim.Config.Done), and observable three ways:
// status polls, a rendered result that is byte-identical to the
// equivalent teemscenario CLI run, and live NDJSON telemetry streamed
// from the sim trace-subscriber hook as the engine ticks.
//
// Identical requests are collapsed by a request-hash single-flight cache
// (par.Flight): concurrent duplicates share the one running job, and
// repeats of a completed request are answered from the cache without
// re-simulating. Failed or cancelled jobs are forgotten so a retry
// re-executes.
//
// The service is durable and multi-tenant. With Options.JournalPath set,
// every accepted job is recorded in a write-ahead NDJSON journal
// (fsync-batched group commit) before the client is acknowledged, and a
// restarted service re-submits the journal's uncompleted entries under
// their original ids — requests are deterministic, so recovery yields
// byte-identical results, and the single-flight cache absorbs any
// duplicates. Tenants are admission-controlled by token-bucket quotas
// and active-job caps; a full queue admits a higher-priority submission
// by shedding the lowest-priority queued job (cross-tenant) rather than
// rejecting everything. Transient failures — recovered worker panics —
// are retried with exponential backoff and jitter, classified apart
// from deterministic request errors, which fail immediately.
//
// The service exports operational metrics (jobs queued/running/done/
// failed/cancelled/shed/retried, per-tenant counters, journal health,
// job-latency p50/p99) as expvar variables and drains gracefully on
// shutdown: new submissions are rejected, pending retries fire at once,
// running jobs either finish or — past the drain deadline — are
// cancelled.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"teem/internal/experiments"
	"teem/internal/obs"
	"teem/internal/par"
)

// Options configure a Service.
type Options struct {
	// Workers bounds the number of concurrently executing jobs
	// (0 = one per CPU). Each job may fan its own grid out further via
	// JobRequest.Workers.
	Workers int
	// QueueDepth bounds the submitted-but-not-started backlog; a full
	// queue sheds the lowest-priority queued job to admit a strictly
	// higher-priority submission, and otherwise rejects with ErrBusy
	// (0 = 64).
	QueueDepth int
	// Env is the shared experiment environment for fig5 jobs (nil
	// builds a default Exynos 5422 environment).
	Env *experiments.Env
	// KeepJobs bounds how many finished jobs are retained for status
	// and result queries before the oldest are evicted (0 = 1024).
	// Each retained job keeps its full telemetry history so late
	// stream subscribers can replay it — size this bound to the
	// telemetry volume you are willing to pin in memory.
	KeepJobs int

	// JournalPath enables the write-ahead job journal at this file
	// ("" = volatile: accepted jobs do not survive a restart). Every
	// submission is durable before it is acknowledged; on startup the
	// journal's uncompleted entries are re-run under their original ids.
	JournalPath string
	// JournalCompactBytes bounds journal growth: past this size the
	// file is rewritten to only the records of live jobs (0 = 1 MiB).
	JournalCompactBytes int64
	// Quotas is the per-tenant admission policy (nil = no quotas).
	Quotas *QuotaConfig
	// Retry governs transient-failure retry; zero fields take defaults
	// (3 attempts, 50 ms base, 2 s cap). MaxAttempts 1 disables retry.
	Retry RetryPolicy
	// Faults injects deterministic failures for soak/chaos testing
	// (nil = none).
	Faults *FaultConfig
	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...any)
}

// RetryPolicy governs how transient job failures (recovered worker
// panics, injected faults) are re-executed. Deterministic failures —
// invalid requests, scenario errors — never retry: re-running them
// reproduces the same error.
type RetryPolicy struct {
	// MaxAttempts caps total executions of a transiently failing job
	// (0 = 3; 1 = no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = 50 ms); it
	// doubles per retry up to MaxDelay (0 = 2 s), with ±50% jitter so
	// synchronized failures do not retry in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 50 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	return r
}

// Service errors surfaced to transports.
var (
	// ErrBusy reports a submission rejected by admission control: the
	// job queue is at capacity and the submission's priority displaces
	// nothing. It is always wrapped in a *RetryError with a backoff
	// hint.
	ErrBusy = errors.New("service: job queue is full")
	// ErrClosed reports a submission after shutdown began.
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("service: no such job")
	// ErrNotDone reports a result query on a job that has not finished.
	ErrNotDone = errors.New("service: job has not finished")
	// ErrAlreadyDone reports a cancellation of a job that already
	// finished (done or failed) — there is nothing left to cancel.
	// Cancelling an already-cancelled job is an idempotent no-op.
	ErrAlreadyDone = errors.New("service: job already finished")
	// ErrTransient classifies a failure as safe to retry: the next
	// execution may succeed (recovered worker panics, injected faults).
	ErrTransient = errors.New("service: transient failure")
)

// Service hosts simulation jobs. Build one with New; it is safe for
// concurrent use by any number of transport goroutines.
type Service struct {
	env     *experiments.Env
	pool    *par.Pool
	metrics *metrics
	journal *journal
	quotas  *quotas
	retry   RetryPolicy
	faults  *faultState
	tracer  *tracer
	logf    func(format string, args ...any)

	mu     sync.Mutex
	closed bool            //teem:guards mu
	nextID int             //teem:guards mu
	jobs   map[string]*Job //teem:guards mu
	// order is the submission order, for listing and eviction.
	order []string //teem:guards mu
	// byKey names the job currently holding each request-cache key, so
	// eviction never forgets a key a newer retained job owns.
	byKey map[string]string //teem:guards mu
	keep  int

	flight par.Flight[string, *Job]
}

// New builds a Service and starts its worker pool. With
// Options.JournalPath set it first recovers the journal: uncompleted
// submissions from the previous epoch are re-registered under their
// original ids and re-run (the journal is compacted to exactly that live
// set), corrupt or torn records are skipped and counted, and completed
// history is dropped — finished results are recomputable on demand and
// do not survive a restart.
func New(o Options) (*Service, error) {
	env := o.Env
	if env == nil {
		var err error
		env, err = experiments.NewEnv()
		if err != nil {
			return nil, err
		}
	}
	queue := o.QueueDepth
	if queue <= 0 {
		queue = 64
	}
	keep := o.KeepJobs
	if keep <= 0 {
		keep = 1024
	}
	logf := o.Logf
	if logf == nil {
		logf = log.Printf
	}
	s := &Service{
		env:     env,
		metrics: newMetrics(),
		quotas:  newQuotas(o.Quotas),
		retry:   o.Retry.withDefaults(),
		faults:  newFaultState(o.Faults),
		tracer:  newTracer(),
		logf:    logf,
		jobs:    make(map[string]*Job),
		byKey:   make(map[string]string),
		keep:    keep,
	}

	var scan journalScan
	if o.JournalPath != "" {
		var err error
		scan, err = readJournal(o.JournalPath)
		if err != nil {
			return nil, err
		}
		j, err := openJournal(o.JournalPath, o.JournalCompactBytes, s.faults,
			s.metrics, logf, s.liveRecords)
		if err != nil {
			return nil, err
		}
		// Compact to exactly the uncompleted set: completed history from
		// the previous epoch is dropped, so the journal stays bounded
		// across restarts and can never hold two finishes for one id.
		recs := make([]journalRecord, len(scan.pending))
		for i, r := range scan.pending {
			recs[i] = journalRecord{Op: opSubmit, ID: r.id, Trace: r.trace, Req: r.req}
		}
		j.mu.Lock()
		err = j.rewriteLocked(recs)
		j.mu.Unlock()
		if err != nil {
			j.close()
			return nil, fmt.Errorf("service: compacting journal on recovery: %w", err)
		}
		s.journal = j
		s.nextID = scan.maxID
		s.metrics.recoverySkipped.Add(int64(scan.skipped))
	}

	s.pool = par.NewPool(o.Workers, queue)
	if n := len(scan.pending); n > 0 || scan.skipped > 0 || scan.dupFinishes > 0 {
		logf("journal recovery: %d uncompleted job(s) to re-run, %d corrupt record(s) skipped, %d duplicate finish(es) ignored",
			len(scan.pending), scan.skipped, scan.dupFinishes)
	}
	s.recoverPending(scan.pending)
	return s, nil
}

// recoverPending re-registers the journal's uncompleted submissions
// under their original ids and re-runs them. Quotas are bypassed — this
// work was admitted in the previous epoch — and duplicate request keys
// are absorbed by the single-flight cache exactly like concurrent
// duplicate submissions.
func (s *Service) recoverPending(pending []recoveredJob) {
	for _, r := range pending {
		norm, key, plan, err := s.normalize(r.req)
		if err != nil {
			s.metrics.recoverySkipped.Add(1)
			s.logf("journal recovery: skipping %s: %v", r.id, err)
			continue
		}
		id := r.id
		created := false
		_, err = s.flight.Do(key, func() (*Job, error) {
			nj := s.register(id, r.trace, norm, key, plan)
			s.span(nj, "recover", "re-run from journal after restart", 0)
			if perr := s.submitToPool(nj); perr != nil {
				if errors.Is(perr, par.ErrPoolFull) {
					// A recovery flood deeper than the queue: keep the
					// job queued and feed it in as slots free up.
					s.scheduleResubmit(nj)
				} else {
					s.evict(nj)
					return nil, perr
				}
			}
			created = true
			return nj, nil
		})
		switch {
		case err != nil:
			s.metrics.recoverySkipped.Add(1)
			s.logf("journal recovery: re-submitting %s: %v", id, err)
		case !created:
			s.logf("journal recovery: %s absorbed by an identical in-flight request", id)
		default:
			s.metrics.recoveries.Add(1)
		}
	}
}

// liveRecords snapshots the submit records of every non-terminal job —
// the compacted image the journal rewrites itself to when it outgrows
// its bound.
func (s *Service) liveRecords() []journalRecord {
	var recs []journalRecord
	for _, j := range s.Jobs() {
		if !j.Snapshot().Terminal() {
			recs = append(recs, journalRecord{Op: opSubmit, ID: j.ID, Trace: j.TraceID, Req: j.Req})
		}
	}
	return recs
}

// Submit validates and enqueues a job. Identical requests (same
// normalized request hash, same tenant) are collapsed: a concurrent or
// completed duplicate returns the existing job with cached=true, no new
// simulation work, and no quota cost. New work passes tenant admission
// (token bucket + active-job cap; rejections are 429-style RetryErrors)
// and then the pool queue, which sheds a strictly lower-priority queued
// job to make room before rejecting with ErrBusy. A draining service
// returns ErrClosed.
func (s *Service) Submit(req *JobRequest) (j *Job, cached bool, err error) {
	norm, key, plan, err := s.normalize(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	s.mu.Unlock()
	created := false
	j, err = s.flight.Do(key, func() (*Job, error) {
		if aerr := s.admit(norm); aerr != nil {
			return nil, aerr
		}
		nj := s.register("", "", norm, key, plan)
		s.span(nj, "submit", "", 0)
		// The "queue" span precedes the pool handoff: once SubmitTask
		// returns, a worker may already be running the job, so emitting
		// afterwards could place "queue" after "run" in the trace. A
		// pool rejection below leaves a submit+queue pair with no
		// terminal span — the trace of a request that never became a
		// job.
		s.span(nj, "queue", "", 0)
		if perr := s.submitToPool(nj); perr != nil {
			s.evict(nj)
			if errors.Is(perr, par.ErrPoolFull) {
				return nil, &RetryError{After: s.busyRetryAfter(), Err: ErrBusy}
			}
			if errors.Is(perr, par.ErrPoolClosed) {
				return nil, ErrClosed
			}
			return nil, perr
		}
		created = true
		// The durability barrier: the job is on disk before the client
		// hears 202, so an acknowledged job is always recovered. The
		// commit genuinely happens concurrently with the worker, so its
		// span may interleave with (or follow) "run" — see obs.Span.
		if s.journal != nil {
			s.journal.appendSync(journalRecord{Op: opSubmit, ID: nj.ID, Trace: nj.TraceID, Req: nj.Req})
			s.span(nj, "journal-commit", "", 0)
		}
		return nj, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !created {
		s.metrics.cacheHits.Add(1)
	}
	return j, !created, nil
}

// admit applies the tenant's quota to one new-work submission.
func (s *Service) admit(req *JobRequest) error {
	if s.quotas == nil {
		return nil
	}
	ts := s.metrics.tenant(req.Tenant)
	if max := s.quotas.maxActive(req.Tenant); max > 0 && ts.queued.Value() >= int64(max) {
		ts.quotaRejected.Add(1)
		s.metrics.quotaRejected.Add(1)
		return &RetryError{
			After: s.busyRetryAfter(),
			Err:   fmt.Errorf("%w: tenant %q at its cap of %d active jobs", ErrQuotaExceeded, req.Tenant, max),
		}
	}
	if err := s.quotas.take(req.Tenant); err != nil {
		ts.quotaRejected.Add(1)
		s.metrics.quotaRejected.Add(1)
		return err
	}
	return nil
}

// busyRetryAfter suggests a backoff for queue-pressure rejections: a
// typical job latency, clamped to [1s, 30s].
func (s *Service) busyRetryAfter() time.Duration {
	d := time.Duration(s.metrics.percentile(0.50) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// submitToPool enqueues the job at its request priority, wiring the
// shed hook so a displaced job is finalized and observable immediately.
func (s *Service) submitToPool(j *Job) error {
	return s.pool.SubmitTask(par.Task{Run: j.run, Priority: j.Req.Priority, Shed: j.shed})
}

// retryDelay is the exponential-backoff-with-jitter schedule: attempt 1
// waits ~BaseDelay, doubling up to MaxDelay, each draw jittered to
// 50–150% so synchronized failures spread out.
func (s *Service) retryDelay(attempt int) time.Duration {
	d := s.retry.BaseDelay
	for i := 1; i < attempt && d < s.retry.MaxDelay; i++ {
		d *= 2
	}
	if d > s.retry.MaxDelay {
		d = s.retry.MaxDelay
	}
	jittered := time.Duration((0.5 + rand.Float64()) * float64(d))
	if jittered < time.Millisecond {
		jittered = time.Millisecond
	}
	return jittered
}

// register indexes a job — under the given id when recovering from the
// journal, or the next sequential id — counts it queued, and evicts old
// finished jobs beyond the retention bound. An evicted job's cache key
// is forgotten only while that job still owns it — a newer retained job
// under the same key keeps its cache entry. A fresh submission mints a
// trace id here; recovery passes the previous epoch's id through, so
// one trace spans the journal gap.
func (s *Service) register(id, traceID string, req *JobRequest, key string, plan *jobPlan) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("j%d", s.nextID)
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	j := newJob(id, traceID, req, key, s)
	j.plan = plan
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.byKey[key] = j.ID
	// The queued gauge rises before the pool can possibly start the
	// job, so the worker's decrement never observes a stale zero.
	s.metrics.queued.Add(1)
	ts := s.metrics.tenant(req.Tenant)
	ts.queued.Add(1)
	ts.submitted.Add(1)
	for len(s.order) > s.keep {
		oldest := s.jobs[s.order[0]]
		if oldest != nil && !oldest.Snapshot().Terminal() {
			break // never evict live work
		}
		if oldest != nil {
			delete(s.jobs, oldest.ID)
			if s.byKey[oldest.key] == oldest.ID {
				s.flight.Forget(oldest.key)
				delete(s.byKey, oldest.key)
			}
		}
		s.order = s.order[1:]
	}
	return j
}

// evict removes a job that never made it into the pool.
func (s *Service) evict(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.ID)
	if s.byKey[j.key] == j.ID {
		delete(s.byKey, j.key)
	}
	if n := len(s.order); n > 0 && s.order[n-1] == j.ID {
		s.order = s.order[:n-1]
	}
	s.metrics.queued.Add(-1)
	s.metrics.tenant(j.Req.Tenant).queued.Add(-1)
}

// Job returns a job by id.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Jobs lists every retained job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a job: a queued job never starts, a
// running one aborts within one simulation tick. Cancel is idempotent —
// repeating it on an already-cancelled job is a nil-error no-op — while
// cancelling a job that ran to completion (done or failed) reports
// ErrAlreadyDone: there is no work left to stop.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	return j.RequestCancel()
}

// Counts reports the queued/running totals the health endpoint and the
// drain loop read.
func (s *Service) Counts() (queued, running int64) {
	return s.metrics.queued.Value(), s.metrics.running.Value()
}

// Metrics exposes the service's operational counters.
func (s *Service) Metrics() *Metrics { return &Metrics{m: s.metrics} }

// Drain shuts the service down gracefully: new submissions are rejected
// immediately, jobs waiting out a retry backoff are resubmitted at once,
// queued and running jobs are given until ctx expires to finish, then
// everything still in flight is cancelled. The journal is flushed and
// closed either way. It returns nil when the pool drained in time and
// ctx.Err() otherwise.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Retries scheduled before the flag flipped fire now, while the pool
	// still accepts work; scheduleRetry refuses new backoffs once closed.
	for _, j := range s.Jobs() {
		j.fireRetryNow()
	}
	done := make(chan struct{})
	go func() {
		s.pool.Drain()
		close(done)
	}()
	defer s.journal.close()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		// Also cancel the pool context: a job that registered
		// concurrently with the shutdown and slipped past the
		// cancelAll snapshot still sees a dead context the moment it
		// starts, instead of simulating to completion.
		s.pool.Close()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: submissions rejected, in-flight jobs
// cancelled (both individually and through the pool context, so even a
// submission racing the shutdown cannot run to completion), workers
// joined, journal flushed and closed.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.pool.Close()
	s.journal.close()
}

func (s *Service) cancelAll() {
	for _, j := range s.Jobs() {
		_ = j.RequestCancel() // completed jobs report an error; ignore
	}
}

// now is stubbed in tests that pin latencies.
var now = time.Now
