// Package service hosts simulations as managed jobs behind an HTTP/JSON
// API — the serving layer (teemd) over the batch engines below it.
//
// A job is one unit of simulation work: a single scenario (inline JSON,
// preset name, or arrival-trace replay), a scenario × governor grid, or
// a Fig. 5-style experiment. Jobs are submitted to a bounded worker pool
// (internal/par.Pool — a full queue sheds load instead of building an
// unbounded backlog), identified by sequential ids, cancellable at any
// point (a running simulation aborts within one engine tick via the
// context threaded down to sim.Config.Done), and observable three ways:
// status polls, a rendered result that is byte-identical to the
// equivalent teemscenario CLI run, and live NDJSON telemetry streamed
// from the sim trace-subscriber hook as the engine ticks.
//
// Identical requests are collapsed by a request-hash single-flight cache
// (par.Flight): concurrent duplicates share the one running job, and
// repeats of a completed request are answered from the cache without
// re-simulating. Failed or cancelled jobs are forgotten so a retry
// re-executes.
//
// The service exports operational metrics (jobs queued/running/done/
// failed/cancelled, cache hits, job-latency p50/p99) as expvar variables
// and drains gracefully on shutdown: new submissions are rejected,
// running jobs either finish or — past the drain deadline — are
// cancelled.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"teem/internal/experiments"
	"teem/internal/par"
)

// Options configure a Service.
type Options struct {
	// Workers bounds the number of concurrently executing jobs
	// (0 = one per CPU). Each job may fan its own grid out further via
	// JobRequest.Workers.
	Workers int
	// QueueDepth bounds the submitted-but-not-started backlog; a full
	// queue rejects new jobs with ErrBusy (0 = 64).
	QueueDepth int
	// Env is the shared experiment environment for fig5 jobs (nil
	// builds a default Exynos 5422 environment).
	Env *experiments.Env
	// KeepJobs bounds how many finished jobs are retained for status
	// and result queries before the oldest are evicted (0 = 1024).
	// Each retained job keeps its full telemetry history so late
	// stream subscribers can replay it — size this bound to the
	// telemetry volume you are willing to pin in memory.
	KeepJobs int
}

// Service errors surfaced to transports.
var (
	// ErrBusy reports a submission rejected by admission control: the
	// job queue is at capacity.
	ErrBusy = errors.New("service: job queue is full")
	// ErrClosed reports a submission after shutdown began.
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("service: no such job")
	// ErrNotDone reports a result query on a job that has not finished.
	ErrNotDone = errors.New("service: job has not finished")
)

// Service hosts simulation jobs. Build one with New; it is safe for
// concurrent use by any number of transport goroutines.
type Service struct {
	env     *experiments.Env
	pool    *par.Pool
	metrics *metrics

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	order  []string // submission order, for listing and eviction
	// byKey names the job currently holding each request-cache key, so
	// eviction never forgets a key a newer retained job owns.
	byKey map[string]string
	keep  int

	flight par.Flight[string, *Job]
}

// New builds a Service and starts its worker pool.
func New(o Options) (*Service, error) {
	env := o.Env
	if env == nil {
		var err error
		env, err = experiments.NewEnv()
		if err != nil {
			return nil, err
		}
	}
	queue := o.QueueDepth
	if queue <= 0 {
		queue = 64
	}
	keep := o.KeepJobs
	if keep <= 0 {
		keep = 1024
	}
	return &Service{
		env:     env,
		pool:    par.NewPool(o.Workers, queue),
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
		byKey:   make(map[string]string),
		keep:    keep,
	}, nil
}

// Submit validates and enqueues a job. Identical requests (same
// normalized request hash) are collapsed: a concurrent or completed
// duplicate returns the existing job with cached=true and no new
// simulation work. A full queue returns ErrBusy; a draining service
// ErrClosed.
func (s *Service) Submit(req *JobRequest) (j *Job, cached bool, err error) {
	norm, key, plan, err := s.normalize(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	s.mu.Unlock()
	created := false
	j, err = s.flight.Do(key, func() (*Job, error) {
		nj := s.register(norm, key, plan)
		if perr := s.pool.Submit(nj.run); perr != nil {
			s.evict(nj)
			if errors.Is(perr, par.ErrPoolFull) {
				return nil, ErrBusy
			}
			if errors.Is(perr, par.ErrPoolClosed) {
				return nil, ErrClosed
			}
			return nil, perr
		}
		created = true
		return nj, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !created {
		s.metrics.cacheHits.Add(1)
	}
	return j, !created, nil
}

// register allocates the next job id, counts it queued, and indexes the
// job; old finished jobs beyond the retention bound are evicted. An
// evicted job's cache key is forgotten only while that job still owns it
// — a newer retained job under the same key keeps its cache entry.
func (s *Service) register(req *JobRequest, key string, plan *jobPlan) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := newJob(fmt.Sprintf("j%d", s.nextID), req, key, s)
	j.plan = plan
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.byKey[key] = j.ID
	// The queued gauge rises before the pool can possibly start the
	// job, so the worker's decrement never observes a stale zero.
	s.metrics.queued.Add(1)
	for len(s.order) > s.keep {
		oldest := s.jobs[s.order[0]]
		if oldest != nil && !oldest.Snapshot().Terminal() {
			break // never evict live work
		}
		if oldest != nil {
			delete(s.jobs, oldest.ID)
			if s.byKey[oldest.key] == oldest.ID {
				s.flight.Forget(oldest.key)
				delete(s.byKey, oldest.key)
			}
		}
		s.order = s.order[1:]
	}
	return j
}

// evict removes a job that never made it into the pool.
func (s *Service) evict(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.ID)
	if s.byKey[j.key] == j.ID {
		delete(s.byKey, j.key)
	}
	if n := len(s.order); n > 0 && s.order[n-1] == j.ID {
		s.order = s.order[:n-1]
	}
	s.metrics.queued.Add(-1)
}

// Job returns a job by id.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Jobs lists every retained job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a job: a queued job never starts, a
// running one aborts within one simulation tick. Cancelling a job that
// already finished returns ErrNotDone's converse — a nil error and no
// effect is wrong feedback, so it reports the terminal state instead.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	return j.RequestCancel()
}

// Counts reports the queued/running totals the health endpoint and the
// drain loop read.
func (s *Service) Counts() (queued, running int64) {
	return s.metrics.queued.Value(), s.metrics.running.Value()
}

// Metrics exposes the service's operational counters.
func (s *Service) Metrics() *Metrics { return &Metrics{m: s.metrics} }

// Drain shuts the service down gracefully: new submissions are rejected
// immediately, queued and running jobs are given until ctx expires to
// finish, then everything still in flight is cancelled. It returns nil
// when the pool drained in time and ctx.Err() otherwise.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.pool.Drain()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		// Also cancel the pool context: a job that registered
		// concurrently with the shutdown and slipped past the
		// cancelAll snapshot still sees a dead context the moment it
		// starts, instead of simulating to completion.
		s.pool.Close()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: submissions rejected, in-flight jobs
// cancelled (both individually and through the pool context, so even a
// submission racing the shutdown cannot run to completion), workers
// joined.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.pool.Close()
}

func (s *Service) cancelAll() {
	for _, j := range s.Jobs() {
		_ = j.RequestCancel() // terminal jobs report an error; ignore
	}
}

// now is stubbed in tests that pin latencies.
var now = time.Now
