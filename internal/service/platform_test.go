package service

import (
	"testing"
	"time"

	"teem/internal/scenario"
)

// A job submitted against a non-default catalog platform must run there
// and render the same bytes the CLI path produces for that platform.
func TestSubmitPlatformMatchesCLIRender(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, _, err := s.Submit(&JobRequest{
		Preset:    "core-loss",
		Governors: []string{"teem"},
		Platform:  "kestrel-e2",
	})
	if err != nil {
		t.Fatal(err)
	}
	js := waitTerminal(t, j, 30*time.Second)
	if js.Status != StatusDone {
		t.Fatalf("job ended %s: %s", js.Status, js.Error)
	}
	text, _, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scenario.RunGrid([]*scenario.Scenario{scenario.CoreLoss()},
		[]string{"teem"}, scenario.Config{PlatformName: "kestrel-e2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if text != grid.Render() {
		t.Errorf("service result differs from the CLI render:\nservice:\n%s\ncli:\n%s", text, grid.Render())
	}
}

// The platform is part of the request hash: the same scenario on
// different hardware is different work and must not share cache entries,
// while the default platform and its explicit name must.
func TestPlatformInRequestHash(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	base := &JobRequest{Preset: "core-loss", Governors: []string{"ondemand"}}
	j1, cached, err := s.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first submission reported cached")
	}
	waitTerminal(t, j1, 30*time.Second)

	// Explicitly naming the default platform is the same work.
	onDefault := *base
	onDefault.Platform = "exynos5422"
	j2, cached, err := s.Submit(&onDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || j2.ID != j1.ID {
		t.Errorf("explicit default platform missed the cache (cached=%v)", cached)
	}

	// Different hardware is different work.
	onSparrow := *base
	onSparrow.Platform = "sparrow-e1"
	j3, cached, err := s.Submit(&onSparrow)
	if err != nil {
		t.Fatal(err)
	}
	if cached || j3.ID == j1.ID {
		t.Error("a different platform hit the default platform's cache entry")
	}
	waitTerminal(t, j3, 30*time.Second)
}

// Platform validation happens at submission, and fig5 jobs only run on
// the paper's board.
func TestSubmitPlatformValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	if _, _, err := s.Submit(&JobRequest{Preset: "sunlight", Platform: "no-such-board"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, _, err := s.Submit(&JobRequest{Kind: KindFig5, Platform: "merlin-m3"}); err == nil {
		t.Error("fig5 on a non-default platform accepted")
	}
	if q := s.Metrics().Queued(); q != 0 {
		t.Errorf("invalid submissions left %d queued", q)
	}
}
