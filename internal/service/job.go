package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"teem/internal/scenario"
	"teem/internal/sim"
	"teem/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	// StatusQueued: accepted, waiting for a pool worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is simulating.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; the result is available.
	StatusDone Status = "done"
	// StatusFailed: the run errored; Error carries the cause.
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled before or during execution.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job is one managed simulation. All exported state is read through
// Snapshot / Result; mutation happens on the owning service's pool
// worker and through RequestCancel.
type Job struct {
	// ID is the service-assigned handle ("j1", "j2", ...).
	ID string
	// Req is the normalized request the job runs.
	Req *JobRequest

	key    string
	svc    *Service
	stream *streamBuf
	// plan is the resolved work (scenarios × governors), parsed once at
	// submission.
	plan *jobPlan

	mu              sync.Mutex
	status          Status
	err             string
	text            string
	summary         *ResultSummary
	cancel          context.CancelFunc
	cancelRequested bool
	submittedAt     time.Time
	startedAt       time.Time
	finishedAt      time.Time
}

func newJob(id string, req *JobRequest, key string, svc *Service) *Job {
	return &Job{
		ID:          id,
		Req:         req,
		key:         key,
		svc:         svc,
		stream:      newStreamBuf(),
		status:      StatusQueued,
		submittedAt: now(),
	}
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status Status `json:"status"`
	// Cached marks a submission answered by the request-hash cache
	// (set by the transport on duplicate submissions, not stored).
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Summary is present once the job is done.
	Summary     *ResultSummary `json:"summary,omitempty"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	// LatencyS is submit→finish for terminal jobs.
	LatencyS float64 `json:"latency_s,omitempty"`
}

// Terminal reports whether the snapshot is final.
func (js JobStatus) Terminal() bool { return js.Status.Terminal() }

// Snapshot returns the job's current wire state.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	js := JobStatus{
		ID:          j.ID,
		Kind:        j.Req.Kind,
		Status:      j.status,
		Error:       j.err,
		Summary:     j.summary,
		SubmittedAt: j.submittedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		js.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		js.FinishedAt = &t
		js.LatencyS = j.finishedAt.Sub(j.submittedAt).Seconds()
	}
	return js
}

// Result returns the rendered result text of a done job (byte-identical
// to the equivalent CLI run) and its summary; ErrNotDone until then.
func (j *Job) Result() (string, *ResultSummary, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.text, j.summary, nil
	case StatusFailed:
		return "", nil, fmt.Errorf("service: job %s failed: %s", j.ID, j.err)
	case StatusCancelled:
		return "", nil, fmt.Errorf("service: job %s was cancelled", j.ID)
	default:
		return "", nil, fmt.Errorf("%w (job %s is %s)", ErrNotDone, j.ID, j.status)
	}
}

// RequestCancel cancels the job: a queued job turns cancelled on the
// spot (it never starts, and the status is observable immediately — not
// only once a worker would have picked it up), a running job aborts
// within one simulation tick. A job already in a terminal state reports
// an error naming that state.
func (j *Job) RequestCancel() error {
	j.mu.Lock()
	if j.status.Terminal() {
		st := j.status
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already %s", j.ID, st)
	}
	j.cancelRequested = true
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.err = "cancelled while queued"
		j.finishedAt = now()
		j.mu.Unlock()
		s := j.svc
		s.metrics.queued.Add(-1)
		s.metrics.cancelled.Add(1)
		s.flight.Forget(j.key)
		j.publishDone(StatusCancelled)
		j.stream.close()
		return nil
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// run executes the job on a pool worker. poolCtx is the pool's lifetime
// context (cancelled by Service.Close); the job's own cancellation is
// layered on top.
func (j *Job) run(poolCtx context.Context) {
	s := j.svc
	ctx, cancel := context.WithCancel(poolCtx)
	defer cancel()

	j.mu.Lock()
	if j.status.Terminal() {
		// Cancelled while queued: RequestCancel already finalized the
		// job and its metrics; the dequeued task is a no-op.
		j.mu.Unlock()
		return
	}
	if poolCtx.Err() != nil {
		// The pool is shutting down before this job ever started.
		j.status = StatusCancelled
		j.err = "cancelled before start"
		j.finishedAt = now()
		j.mu.Unlock()
		s.metrics.queued.Add(-1)
		s.metrics.cancelled.Add(1)
		s.flight.Forget(j.key)
		j.publishDone(StatusCancelled)
		j.stream.close()
		return
	}
	j.status = StatusRunning
	j.cancel = cancel
	j.startedAt = now()
	j.mu.Unlock()
	s.metrics.queued.Add(-1)
	s.metrics.running.Add(1)

	j.publishStart()
	text, summary, err := s.execute(ctx, j)

	j.mu.Lock()
	switch {
	case err == nil:
		j.status = StatusDone
		j.text = text
		j.summary = summary
	case ctx.Err() != nil || errors.Is(err, sim.ErrAborted):
		j.status = StatusCancelled
		j.err = err.Error()
	default:
		j.status = StatusFailed
		j.err = err.Error()
	}
	j.finishedAt = now()
	status := j.status
	latency := j.finishedAt.Sub(j.submittedAt)
	j.mu.Unlock()

	s.metrics.running.Add(-1)
	s.metrics.observeLatency(latency)
	switch status {
	case StatusDone:
		s.metrics.done.Add(1)
	case StatusCancelled:
		s.metrics.cancelled.Add(1)
		s.flight.Forget(j.key)
	default:
		s.metrics.failed.Add(1)
		s.flight.Forget(j.key)
	}
	j.publishDone(status)
	j.stream.close()
}

// --- telemetry stream ---------------------------------------------------------

// The stream's wire format is one typed NDJSON object per line. Each
// event type has its own encode struct so legitimately zero values
// (t=0, 0 W, a 0 s execution time) are never dropped from the wire;
// streamEvent below is the decode-side union.

// lifecycleEvent announces "start" and "done".
type lifecycleEvent struct {
	Type   string `json:"type"`
	Job    string `json:"job"`
	Kind   string `json:"kind,omitempty"`
	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// sampleEvent is one recorded trace sample (single-cell scenario jobs).
type sampleEvent struct {
	Type     string    `json:"type"`
	TimeS    float64   `json:"t_s"`
	TempsC   []float64 `json:"temps_c"`
	FreqsMHz []int     `json:"freqs_mhz"`
	Utils    []float64 `json:"utils"`
	PowerW   float64   `json:"power_w"`
}

// cellEvent is one completed grid cell (grid progress).
type cellEvent struct {
	Type       string   `json:"type"`
	Scenario   string   `json:"scenario"`
	Governor   string   `json:"governor"`
	Passed     bool     `json:"passed"`
	Violations []string `json:"violations,omitempty"`
	ExecTimeS  float64  `json:"exec_time_s"`
	EnergyJ    float64  `json:"energy_j"`
	PeakTempC  float64  `json:"peak_temp_c"`
}

// streamEvent is the decode-side union of every stream line — what
// clients (and the tests) unmarshal into.
type streamEvent struct {
	// Type is "start", "sample", "cell" or "done".
	Type string `json:"type"`
	Job  string `json:"job,omitempty"`
	Kind string `json:"kind,omitempty"`

	TimeS    float64   `json:"t_s,omitempty"`
	TempsC   []float64 `json:"temps_c,omitempty"`
	FreqsMHz []int     `json:"freqs_mhz,omitempty"`
	Utils    []float64 `json:"utils,omitempty"`
	PowerW   float64   `json:"power_w,omitempty"`

	Scenario   string   `json:"scenario,omitempty"`
	Governor   string   `json:"governor,omitempty"`
	Passed     *bool    `json:"passed,omitempty"`
	Violations []string `json:"violations,omitempty"`
	ExecTimeS  float64  `json:"exec_time_s,omitempty"`
	EnergyJ    float64  `json:"energy_j,omitempty"`
	PeakTempC  float64  `json:"peak_temp_c,omitempty"`

	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (j *Job) publishStart() {
	j.stream.publish(lifecycleEvent{Type: "start", Job: j.ID, Kind: j.Req.Kind})
}

// publishSample is the sim trace-subscriber hook: it serializes one
// recorded sample as it is produced — no whole-run copy, the engine's
// arena-backed slices are marshalled directly.
func (j *Job) publishSample(s trace.Sample) {
	j.stream.publish(sampleEvent{
		Type:     "sample",
		TimeS:    s.TimeS,
		TempsC:   s.TempsC,
		FreqsMHz: s.FreqsMHz,
		Utils:    s.Utils,
		PowerW:   s.PowerW,
	})
}

// publishCell reports one completed grid cell (called from grid worker
// goroutines; streamBuf serializes).
func (j *Job) publishCell(r *scenario.Result) {
	ev := cellEvent{
		Type:       "cell",
		Scenario:   r.Scenario,
		Governor:   r.Governor,
		Passed:     r.Passed(),
		Violations: r.Violations,
	}
	if r.Sim != nil {
		ev.ExecTimeS = r.Sim.ExecTimeS
		ev.EnergyJ = r.Sim.EnergyJ
		ev.PeakTempC = r.Sim.PeakTempC
	}
	j.stream.publish(ev)
}

func (j *Job) publishDone(st Status) {
	j.mu.Lock()
	errMsg := j.err
	j.mu.Unlock()
	j.stream.publish(lifecycleEvent{Type: "done", Job: j.ID, Status: st, Error: errMsg})
}

// Stream replays the job's telemetry from the beginning and follows it
// live, invoking emit for every NDJSON-encoded line (newline included)
// until the stream closes, emit fails, or ctx is cancelled. Multiple
// concurrent streamers are independent; late subscribers see the full
// history.
func (j *Job) Stream(ctx context.Context, emit func(line []byte) error) error {
	stop := context.AfterFunc(ctx, j.stream.wake)
	defer stop()
	i := 0
	for {
		lines, closed := j.stream.waitFrom(ctx, i)
		for _, ln := range lines {
			if err := emit(ln); err != nil {
				return err
			}
		}
		i += len(lines)
		if err := ctx.Err(); err != nil {
			return err
		}
		if closed && len(lines) == 0 {
			return nil
		}
	}
}
