package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"teem/internal/par"
	"teem/internal/scenario"
	"teem/internal/sim"
	"teem/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	// StatusQueued: accepted, waiting for a pool worker (also the state
	// of a job waiting out a transient-failure retry backoff).
	StatusQueued Status = "queued"
	// StatusRunning: a worker is simulating.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; the result is available.
	StatusDone Status = "done"
	// StatusFailed: the run errored; Error carries the cause.
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled before or during execution.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Job is one managed simulation. All exported state is read through
// Snapshot / Result; mutation happens on the owning service's pool
// worker and through RequestCancel.
type Job struct {
	// ID is the service-assigned handle ("j1", "j2", ...).
	ID string
	// TraceID correlates the job's lifecycle spans across the submit
	// response, telemetry stream, journal and /trace — stable across a
	// daemon restart (recovery re-registers under the journalled id).
	TraceID string
	// Req is the normalized request the job runs.
	Req *JobRequest

	key    string
	svc    *Service
	stream *streamBuf
	// plan is the resolved work (scenarios × governors), parsed once at
	// submission.
	plan *jobPlan

	mu              sync.Mutex
	status          Status             //teem:guards mu
	err             string             //teem:guards mu
	text            string             //teem:guards mu
	summary         *ResultSummary     //teem:guards mu
	cancel          context.CancelFunc //teem:guards mu
	cancelRequested bool               //teem:guards mu
	// retries counts transient-failure re-executions so far; retryTimer
	// is armed while the job waits out a backoff.
	retries    int         //teem:guards mu
	retryTimer *time.Timer //teem:guards mu
	// submittedAt is written once in newJob, before the job is shared.
	submittedAt time.Time
	startedAt   time.Time //teem:guards mu
	finishedAt  time.Time //teem:guards mu
}

func newJob(id, traceID string, req *JobRequest, key string, svc *Service) *Job {
	return &Job{
		ID:          id,
		TraceID:     traceID,
		Req:         req,
		key:         key,
		svc:         svc,
		stream:      newStreamBuf(),
		status:      StatusQueued,
		submittedAt: now(),
	}
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID string `json:"id"`
	// TraceID is the job's lifecycle-trace correlation id (see /trace).
	TraceID string `json:"trace_id,omitempty"`
	Kind    string `json:"kind"`
	Status  Status `json:"status"`
	// Tenant and Priority echo the admission parameters the job was
	// accepted under.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Cached marks a submission answered by the request-hash cache
	// (set by the transport on duplicate submissions, not stored).
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Retries counts transient-failure re-executions so far.
	Retries int `json:"retries,omitempty"`
	// Summary is present once the job is done.
	Summary     *ResultSummary `json:"summary,omitempty"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	// LatencyS is submit→finish for terminal jobs.
	LatencyS float64 `json:"latency_s,omitempty"`
}

// Terminal reports whether the snapshot is final.
func (js JobStatus) Terminal() bool { return js.Status.Terminal() }

// Snapshot returns the job's current wire state.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	js := JobStatus{
		ID:          j.ID,
		TraceID:     j.TraceID,
		Kind:        j.Req.Kind,
		Status:      j.status,
		Tenant:      j.Req.Tenant,
		Priority:    j.Req.Priority,
		Error:       j.err,
		Retries:     j.retries,
		Summary:     j.summary,
		SubmittedAt: j.submittedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		js.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		js.FinishedAt = &t
		js.LatencyS = j.finishedAt.Sub(j.submittedAt).Seconds()
	}
	return js
}

// Result returns the rendered result text of a done job (byte-identical
// to the equivalent CLI run) and its summary; ErrNotDone until then.
func (j *Job) Result() (string, *ResultSummary, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.text, j.summary, nil
	case StatusFailed:
		return "", nil, fmt.Errorf("service: job %s failed: %s", j.ID, j.err)
	case StatusCancelled:
		return "", nil, fmt.Errorf("service: job %s was cancelled", j.ID)
	default:
		return "", nil, fmt.Errorf("%w (job %s is %s)", ErrNotDone, j.ID, j.status)
	}
}

// RequestCancel cancels the job: a queued job turns cancelled on the
// spot (it never starts, and the status is observable immediately — not
// only once a worker would have picked it up; a pending retry backoff is
// disarmed), a running job aborts within one simulation tick. Cancel is
// idempotent: repeating it on an already-cancelled job is a nil no-op.
// A job that ran to completion (done or failed) reports ErrAlreadyDone.
func (j *Job) RequestCancel() error {
	j.mu.Lock()
	if j.status == StatusCancelled {
		j.mu.Unlock()
		return nil
	}
	if j.status.Terminal() {
		st := j.status
		j.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", ErrAlreadyDone, j.ID, st)
	}
	j.cancelRequested = true
	j.mu.Unlock()
	if j.finishQueued(StatusCancelled, "cancelled while queued",
		func(m *metrics, _ *tenantStats) { m.cancelled.Add(1) }) {
		return nil
	}
	// The job is (or just became) running: kill its context. run() sets
	// status and cancel in one critical section, so seeing it past
	// queued means cancel is populated.
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// finishQueued finalizes a job that is not on a worker — waiting in the
// pool queue or waiting out a retry backoff — and settles its
// accounting: gauges, the caller's terminal counter, the request cache,
// the journal's finish record, and the telemetry stream. It reports
// false (and does nothing) once the job has left the queued state, so a
// concurrent start, cancel and shed race resolves to exactly one
// outcome.
func (j *Job) finishQueued(st Status, msg string, count func(*metrics, *tenantStats)) bool {
	s := j.svc
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return false
	}
	if t := j.retryTimer; t != nil {
		t.Stop()
		j.retryTimer = nil
	}
	j.status = st
	j.err = msg
	j.finishedAt = now()
	j.mu.Unlock()
	s.metrics.queued.Add(-1)
	ts := s.metrics.tenant(j.Req.Tenant)
	ts.queued.Add(-1)
	count(s.metrics, ts)
	s.flight.Forget(j.key)
	s.journal.append(journalRecord{Op: opFinish, ID: j.ID, Status: st, Error: msg})
	s.span(j, string(st), msg, 0)
	j.publishDone(st)
	j.stream.close()
	return true
}

// shed is the pool's displacement hook: a strictly higher-priority
// submission arrived at a full queue and this job was the lowest-
// priority queued work. It fails immediately and observably — clients
// see a terminal status with a "shed:" cause and may resubmit — and is
// counted apart from execution failures.
func (j *Job) shed() {
	s := j.svc
	if j.finishQueued(StatusFailed, "shed: displaced from a full queue by a higher-priority submission",
		func(m *metrics, t *tenantStats) { m.shed.Add(1); t.shed.Add(1) }) {
		s.logf("job %s (tenant %s, priority %d): shed by a higher-priority submission",
			j.ID, j.Req.Tenant, j.Req.Priority)
	}
}

// run executes the job on a pool worker. poolCtx is the pool's lifetime
// context (cancelled by Service.Close); the job's own cancellation is
// layered on top. A transient failure re-queues the job with backoff
// instead of finishing it.
func (j *Job) run(poolCtx context.Context) {
	s := j.svc

	j.mu.Lock()
	if j.status.Terminal() {
		// Cancelled or shed while queued: already finalized; the
		// dequeued task is a no-op.
		j.mu.Unlock()
		return
	}
	requested := j.cancelRequested
	j.mu.Unlock()
	if requested || poolCtx.Err() != nil {
		// The pool is shutting down, or a cancel landed in the instant
		// between request and finalization: never start.
		j.finishQueued(StatusCancelled, "cancelled before start",
			func(m *metrics, _ *tenantStats) { m.cancelled.Add(1) })
		return
	}

	ctx, cancel := context.WithCancel(poolCtx)
	defer cancel()
	j.mu.Lock()
	if j.status != StatusQueued { // finalized in the window above
		j.mu.Unlock()
		return
	}
	first := j.retries == 0
	attempt := j.retries
	j.status = StatusRunning
	j.cancel = cancel
	if first {
		j.startedAt = now()
	}
	j.mu.Unlock()
	s.metrics.queued.Add(-1)
	s.metrics.running.Add(1)
	s.span(j, "run", "", attempt)
	if first {
		s.journal.append(journalRecord{Op: opStart, ID: j.ID})
		j.publishStart()
	}

	text, summary, err := s.executeGuarded(ctx, j)

	// Transient failures retry with backoff — unless the job was
	// cancelled (the context died) or the failure is deterministic, in
	// which case re-running would only reproduce it.
	if err != nil && ctx.Err() == nil && errors.Is(err, ErrTransient) && s.scheduleRetry(j, err) {
		return
	}

	j.mu.Lock()
	switch {
	case err == nil:
		j.status = StatusDone
		j.text = text
		j.summary = summary
	case ctx.Err() != nil || errors.Is(err, sim.ErrAborted):
		j.status = StatusCancelled
		j.err = err.Error()
	default:
		j.status = StatusFailed
		j.err = err.Error()
	}
	j.finishedAt = now()
	status := j.status
	errMsg := j.err
	latency := j.finishedAt.Sub(j.submittedAt)
	runtime := j.finishedAt.Sub(j.startedAt)
	j.mu.Unlock()

	s.metrics.running.Add(-1)
	s.metrics.observeLatency(latency)
	s.metrics.observeRun(runtime)
	ts := s.metrics.tenant(j.Req.Tenant)
	ts.queued.Add(-1)
	switch status {
	case StatusDone:
		s.metrics.done.Add(1)
		ts.done.Add(1)
	case StatusCancelled:
		s.metrics.cancelled.Add(1)
		s.flight.Forget(j.key)
	default:
		s.metrics.failed.Add(1)
		s.flight.Forget(j.key)
	}
	s.journal.append(journalRecord{Op: opFinish, ID: j.ID, Status: status, Error: errMsg})
	s.span(j, string(status), errMsg, 0)
	j.publishDone(status)
	j.stream.close()
}

// executeGuarded runs execute with the worker panic guard: a panicking
// job (a simulation bug, or an injected fault) fails transiently instead
// of killing the pool worker and the daemon with it. The stack goes to
// the log; the job error stays one line.
func (s *Service) executeGuarded(ctx context.Context, j *Job) (text string, summary *ResultSummary, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("job %s: recovered worker panic: %v\n%s", j.ID, r, debug.Stack())
			text, summary = "", nil
			err = fmt.Errorf("%w: worker panic: %v", ErrTransient, r)
		}
	}()
	if s.faults.firePanic() {
		panic("injected worker panic (FaultConfig.PanicEvery)")
	}
	return s.execute(ctx, j)
}

// scheduleRetry re-queues a transiently failed job with exponential
// backoff and jitter. It refuses — returning false, leaving the job for
// normal finalization — when the service is draining, the job was
// cancelled, or the attempt budget is spent.
func (s *Service) scheduleRetry(j *Job, cause error) bool {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false
	}
	j.mu.Lock()
	if j.cancelRequested || j.status.Terminal() || j.retries+1 >= s.retry.MaxAttempts {
		j.mu.Unlock()
		return false
	}
	j.retries++
	attempt := j.retries
	j.status = StatusQueued
	j.cancel = nil
	// Gauges flip inside the critical section so a concurrent cancel of
	// the now-queued job settles against consistent counts.
	s.metrics.running.Add(-1)
	s.metrics.queued.Add(1)
	delay := s.retryDelay(attempt)
	j.retryTimer = time.AfterFunc(delay, func() { s.resubmit(j) })
	j.mu.Unlock()

	s.metrics.retried.Add(1)
	s.journal.append(journalRecord{Op: opRetry, ID: j.ID, Attempt: attempt, Error: cause.Error()})
	s.span(j, "retry", cause.Error(), attempt)
	j.stream.publish(retryEvent{Type: "retry", Job: j.ID, Trace: j.TraceID, Attempt: attempt, DelayS: delay.Seconds(), Error: cause.Error()})
	s.logf("job %s: transient failure (attempt %d/%d), retrying in %s: %v",
		j.ID, attempt, s.retry.MaxAttempts, delay.Round(time.Millisecond), cause)
	return true
}

// scheduleResubmit arms a short backoff before feeding a queued job back
// into the pool — used when the pool queue is momentarily full (a
// recovery flood deeper than the queue).
func (s *Service) scheduleResubmit(j *Job) {
	j.mu.Lock()
	if j.status == StatusQueued && !j.cancelRequested {
		j.retryTimer = time.AfterFunc(s.retryDelay(1), func() { s.resubmit(j) })
	}
	j.mu.Unlock()
}

// resubmit puts a backoff-expired job back on the pool. A still-full
// queue backs off again; a closed pool fails the job — the drain
// deadline passed while it waited.
func (s *Service) resubmit(j *Job) {
	j.mu.Lock()
	j.retryTimer = nil
	if j.status != StatusQueued {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	err := s.submitToPool(j)
	switch {
	case err == nil:
	case errors.Is(err, par.ErrPoolFull):
		s.scheduleResubmit(j)
	default:
		j.finishQueued(StatusFailed, "service shut down before the retry could run: "+err.Error(),
			func(m *metrics, _ *tenantStats) { m.failed.Add(1) })
	}
}

// fireRetryNow collapses a pending retry backoff to zero — the draining
// service wants every queued job in the pool before it waits.
func (j *Job) fireRetryNow() {
	j.mu.Lock()
	t := j.retryTimer
	if t == nil || !t.Stop() {
		// No backoff pending, or the timer already fired and resubmit
		// owns the job now.
		j.mu.Unlock()
		return
	}
	j.retryTimer = nil
	j.mu.Unlock()
	j.svc.resubmit(j)
}

// --- telemetry stream ---------------------------------------------------------

// The stream's wire format is one typed NDJSON object per line. Each
// event type has its own encode struct so legitimately zero values
// (t=0, 0 W, a 0 s execution time) are never dropped from the wire;
// streamEvent below is the decode-side union.

// lifecycleEvent announces "start" and "done". Trace carries the job's
// lifecycle-trace id so stream consumers can join telemetry against the
// /trace spans and the journal.
type lifecycleEvent struct {
	Type   string `json:"type"`
	Job    string `json:"job"`
	Trace  string `json:"trace,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// retryEvent announces a transient failure and the backoff before the
// next attempt.
type retryEvent struct {
	Type    string  `json:"type"`
	Job     string  `json:"job"`
	Trace   string  `json:"trace,omitempty"`
	Attempt int     `json:"attempt"`
	DelayS  float64 `json:"delay_s"`
	Error   string  `json:"error,omitempty"`
}

// sampleEvent is one recorded trace sample (single-cell scenario jobs).
type sampleEvent struct {
	Type     string    `json:"type"`
	TimeS    float64   `json:"t_s"`
	TempsC   []float64 `json:"temps_c"`
	FreqsMHz []int     `json:"freqs_mhz"`
	Utils    []float64 `json:"utils"`
	PowerW   float64   `json:"power_w"`
}

// cellEvent is one completed grid cell (grid progress).
type cellEvent struct {
	Type       string   `json:"type"`
	Scenario   string   `json:"scenario"`
	Governor   string   `json:"governor"`
	Passed     bool     `json:"passed"`
	Violations []string `json:"violations,omitempty"`
	ExecTimeS  float64  `json:"exec_time_s"`
	EnergyJ    float64  `json:"energy_j"`
	PeakTempC  float64  `json:"peak_temp_c"`
}

// streamEvent is the decode-side union of every stream line — what
// clients (and the tests) unmarshal into.
type streamEvent struct {
	// Type is "start", "sample", "cell", "retry" or "done".
	Type  string `json:"type"`
	Job   string `json:"job,omitempty"`
	Trace string `json:"trace,omitempty"`
	Kind  string `json:"kind,omitempty"`

	TimeS    float64   `json:"t_s,omitempty"`
	TempsC   []float64 `json:"temps_c,omitempty"`
	FreqsMHz []int     `json:"freqs_mhz,omitempty"`
	Utils    []float64 `json:"utils,omitempty"`
	PowerW   float64   `json:"power_w,omitempty"`

	Scenario   string   `json:"scenario,omitempty"`
	Governor   string   `json:"governor,omitempty"`
	Passed     *bool    `json:"passed,omitempty"`
	Violations []string `json:"violations,omitempty"`
	ExecTimeS  float64  `json:"exec_time_s,omitempty"`
	EnergyJ    float64  `json:"energy_j,omitempty"`
	PeakTempC  float64  `json:"peak_temp_c,omitempty"`

	Attempt int     `json:"attempt,omitempty"`
	DelayS  float64 `json:"delay_s,omitempty"`

	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (j *Job) publishStart() {
	j.stream.publish(lifecycleEvent{Type: "start", Job: j.ID, Trace: j.TraceID, Kind: j.Req.Kind})
}

// publishSample is the sim trace-subscriber hook: it serializes one
// recorded sample as it is produced — no whole-run copy, the engine's
// arena-backed slices are marshalled directly.
func (j *Job) publishSample(s trace.Sample) {
	j.stream.publish(sampleEvent{
		Type:     "sample",
		TimeS:    s.TimeS,
		TempsC:   s.TempsC,
		FreqsMHz: s.FreqsMHz,
		Utils:    s.Utils,
		PowerW:   s.PowerW,
	})
}

// publishCell reports one completed grid cell (called from grid worker
// goroutines; streamBuf serializes).
func (j *Job) publishCell(r *scenario.Result) {
	ev := cellEvent{
		Type:       "cell",
		Scenario:   r.Scenario,
		Governor:   r.Governor,
		Passed:     r.Passed(),
		Violations: r.Violations,
	}
	if r.Sim != nil {
		ev.ExecTimeS = r.Sim.ExecTimeS
		ev.EnergyJ = r.Sim.EnergyJ
		ev.PeakTempC = r.Sim.PeakTempC
	}
	j.stream.publish(ev)
}

func (j *Job) publishDone(st Status) {
	j.mu.Lock()
	errMsg := j.err
	j.mu.Unlock()
	j.stream.publish(lifecycleEvent{Type: "done", Job: j.ID, Trace: j.TraceID, Status: st, Error: errMsg})
}

// Stream replays the job's telemetry from the beginning and follows it
// live, invoking emit for every NDJSON-encoded line (newline included)
// until the stream closes, emit fails, or ctx is cancelled. Multiple
// concurrent streamers are independent; late subscribers see the full
// history.
func (j *Job) Stream(ctx context.Context, emit func(line []byte) error) error {
	stop := context.AfterFunc(ctx, j.stream.wake)
	defer stop()
	i := 0
	for {
		lines, closed := j.stream.waitFrom(ctx, i)
		for _, ln := range lines {
			if err := emit(ln); err != nil {
				return err
			}
		}
		i += len(lines)
		if err := ctx.Err(); err != nil {
			return err
		}
		if closed && len(lines) == 0 {
			return nil
		}
	}
}
