package service

import (
	"context"
	"encoding/json"
	"sync"
)

// streamBuf is a job's telemetry log: an append-only sequence of
// NDJSON-encoded lines. Publishers (the sim trace-subscriber hook, grid
// cell hooks) append; any number of subscribers replay from an offset
// and block for more — late subscribers get the full history, so a
// stream opened after the job finished still serves every sample.
type streamBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  [][]byte //teem:guards mu
	closed bool     //teem:guards mu
}

func newStreamBuf() *streamBuf {
	b := &streamBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// publish marshals one event and appends it as an NDJSON line. Events
// that fail to marshal are dropped — the stream is telemetry, not the
// system of record (the trace inside the job result is).
func (b *streamBuf) publish(ev any) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	b.mu.Lock()
	if !b.closed {
		b.lines = append(b.lines, raw)
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// close marks the end of the stream and wakes every subscriber.
func (b *streamBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// wake prods blocked subscribers so they can notice a cancelled context.
func (b *streamBuf) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// waitFrom returns the lines at and after offset i, blocking while the
// stream is open and has nothing new. It returns immediately when ctx is
// already cancelled (subscribers arrange a wake on cancellation). closed
// reports whether no further lines will ever arrive; a (empty, closed)
// return is the end-of-stream signal.
func (b *streamBuf) waitFrom(ctx context.Context, i int) (lines [][]byte, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.lines) <= i && !b.closed && ctx.Err() == nil {
		b.cond.Wait()
	}
	if len(b.lines) > i {
		lines = b.lines[i:]
	}
	return lines, b.closed
}
