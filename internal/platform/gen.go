//go:build ignore

// Generator for the builtin platform catalog.
//
//	go run gen.go
//
// writes catalog/<name>.json for every builtin bundle. The two Exynos
// entries are produced from the soc/thermal Go constructors so the
// catalog stays deep-equal to them (pinned by TestCatalogMatchesConstructors);
// the remaining platforms are authored here. Each bundle must pass the
// full Verify suite before it is written — a miscalibrated entry fails
// the generation run, not a later test.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"teem/internal/platform"
	"teem/internal/soc"
	"teem/internal/thermal"
)

func main() {
	bundles := []*platform.Bundle{
		exynos5422(),
		exynos5410(),
		kestrelE2(),
		sparrowE1(),
		merlinM3(),
		harrierS16(),
	}
	if err := os.MkdirAll("catalog", 0o755); err != nil {
		fatal(err)
	}
	for _, b := range bundles {
		if findings := platform.Verify(b); len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "gen: %s fails verification:\n", b.Name)
			for _, f := range findings {
				fmt.Fprintf(os.Stderr, "  - %s\n", f)
			}
			os.Exit(1)
		}
		path := filepath.Join("catalog", b.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := b.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}

func exynos5422() *platform.Bundle {
	return &platform.Bundle{
		Name:        "exynos5422",
		Class:       platform.Mobile,
		Description: "Samsung Exynos 5422 on the Odroid-XU4 — the paper's evaluation board (4×A15 + 4×A7 + Mali-T628)",
		SoC:         soc.Exynos5422(),
		Net:         thermal.Exynos5422Network(),
	}
}

func exynos5410() *platform.Bundle {
	return &platform.Bundle{
		Name:        "exynos5410",
		Class:       platform.Mobile,
		Description: "Samsung Exynos 5410 on the Odroid-XU — the 5422's hotter cluster-migration predecessor (4×A15 + 4×A7 + SGX544MP3)",
		SoC:         soc.Exynos5410(),
		Net:         thermal.Exynos5410Network(),
	}
}

// voltPoint / rampOPPs mirror the unexported helpers in internal/soc:
// an OPP ramp in fixed MHz steps with piecewise-linear voltage anchors.
type voltPoint struct {
	freqMHz int
	voltV   float64
}

func rampOPPs(loMHz, hiMHz, stepMHz int, anchors []voltPoint) []soc.OPP {
	var opps []soc.OPP
	for f := loMHz; f <= hiMHz; f += stepMHz {
		opps = append(opps, soc.OPP{FreqMHz: f, VoltV: interpVolt(anchors, f)})
	}
	return opps
}

func interpVolt(anchors []voltPoint, freqMHz int) float64 {
	if freqMHz <= anchors[0].freqMHz {
		return anchors[0].voltV
	}
	last := anchors[len(anchors)-1]
	if freqMHz >= last.freqMHz {
		return last.voltV
	}
	for i := 1; i < len(anchors); i++ {
		a, b := anchors[i-1], anchors[i]
		if freqMHz <= b.freqMHz {
			t := float64(freqMHz-a.freqMHz) / float64(b.freqMHz-a.freqMHz)
			return a.voltV + t*(b.voltV-a.voltV)
		}
	}
	return last.voltV
}

// kestrelE2 is a fanless edge-gateway part: quad A76-class big cluster,
// quad A55-class LITTLE, small 4-shader G52-class GPU. Passive cooling
// gives it a large package-to-ambient resistance, so it trips under
// sustained full load in hot enclosures but holds its cap comfortably.
func kestrelE2() *platform.Bundle {
	return &platform.Bundle{
		Name:        "kestrel-e2",
		Class:       platform.Edge,
		Description: "fanless quad-A76/quad-A55 edge gateway with a 4-shader G52-class GPU, passively cooled",
		SoC: &soc.Platform{
			Name: "KestrelE2",
			Clusters: []soc.Cluster{
				{
					Name:     "A76",
					Kind:     soc.BigCPU,
					NumCores: 4,
					OPPs: rampOPPs(500, 2200, 100, []voltPoint{
						{500, 0.8000}, {1000, 0.8750}, {1600, 0.9750},
						{2000, 1.0750}, {2200, 1.1500},
					}),
					CdynCoreNF:    0.30,
					LeakCoeff:     0.08,
					LeakTempCoeff: 0.012,
				},
				{
					Name:     "A55",
					Kind:     soc.LittleCPU,
					NumCores: 4,
					OPPs: rampOPPs(200, 1800, 100, []voltPoint{
						{200, 0.7500}, {800, 0.8250}, {1400, 0.9250},
						{1800, 1.0250},
					}),
					CdynCoreNF:    0.07,
					LeakCoeff:     0.015,
					LeakTempCoeff: 0.010,
				},
				{
					Name:     "G52",
					Kind:     soc.GPU,
					NumCores: 4,
					OPPs: []soc.OPP{
						{FreqMHz: 200, VoltV: 0.8000},
						{FreqMHz: 300, VoltV: 0.8250},
						{FreqMHz: 400, VoltV: 0.8500},
						{FreqMHz: 500, VoltV: 0.9000},
						{FreqMHz: 600, VoltV: 0.9500},
						{FreqMHz: 700, VoltV: 1.0000},
						{FreqMHz: 800, VoltV: 1.0500},
					},
					CdynCoreNF:    0.38,
					LeakCoeff:     0.05,
					LeakTempCoeff: 0.010,
				},
			},
			BoardBaselineW:  1.90,
			DRAMPowerPerGBs: 0.18,
			AmbientC:        28.0,
			TripC:           92.0,
			TripReleaseC:    84.0,
			TripCapMHz:      1000,
		},
		Net: &thermal.Network{
			Nodes: []thermal.Node{
				{Name: "A76", HeatCapJ: 1.0},
				{Name: "A55", HeatCapJ: 0.5},
				{Name: "G52", HeatCapJ: 0.9},
				{Name: "pkg", HeatCapJ: 2.0},
			},
			Links: []thermal.Link{
				{A: 0, B: 3, ResCW: 4.2},
				{A: 1, B: 3, ResCW: 5.5},
				{A: 2, B: 3, ResCW: 3.8},
				{A: 3, B: thermal.Ambient, ResCW: 7.2},
				{A: 0, B: thermal.Ambient, ResCW: 70.0},
				{A: 2, B: thermal.Ambient, ResCW: 90.0},
				{A: 0, B: 2, ResCW: 16.0},
			},
		},
		Accelerators: []platform.AcceleratorSlot{
			{Name: "isp0", Kind: "ISP", TOPS: 1.0},
		},
	}
}

// sparrowE1 is a battery-class edge sensor node: modest A73-class big
// cluster, A53-class LITTLE, a 2-shader G31-class GPU and a tiny thermal
// envelope. Everything about it is small — including the trip points.
func sparrowE1() *platform.Bundle {
	return &platform.Bundle{
		Name:        "sparrow-e1",
		Class:       platform.Edge,
		Description: "low-power quad-A73/quad-A53 edge sensor node with a 2-shader G31-class GPU, sub-4 W envelope",
		SoC: &soc.Platform{
			Name: "SparrowE1",
			Clusters: []soc.Cluster{
				{
					Name:     "A73",
					Kind:     soc.BigCPU,
					NumCores: 4,
					OPPs: rampOPPs(400, 1600, 100, []voltPoint{
						{400, 0.7750}, {800, 0.8500}, {1200, 0.9500},
						{1600, 1.0750},
					}),
					CdynCoreNF:    0.24,
					LeakCoeff:     0.06,
					LeakTempCoeff: 0.011,
				},
				{
					Name:     "A53",
					Kind:     soc.LittleCPU,
					NumCores: 4,
					OPPs: rampOPPs(200, 1100, 100, []voltPoint{
						{200, 0.7500}, {600, 0.8125}, {1100, 0.9000},
					}),
					CdynCoreNF:    0.06,
					LeakCoeff:     0.012,
					LeakTempCoeff: 0.010,
				},
				{
					Name:     "G31",
					Kind:     soc.GPU,
					NumCores: 2,
					OPPs: []soc.OPP{
						{FreqMHz: 150, VoltV: 0.7750},
						{FreqMHz: 250, VoltV: 0.8000},
						{FreqMHz: 350, VoltV: 0.8500},
						{FreqMHz: 450, VoltV: 0.9000},
						{FreqMHz: 550, VoltV: 0.9500},
						{FreqMHz: 650, VoltV: 1.0000},
					},
					CdynCoreNF:    0.35,
					LeakCoeff:     0.04,
					LeakTempCoeff: 0.010,
				},
			},
			BoardBaselineW:  1.10,
			DRAMPowerPerGBs: 0.15,
			AmbientC:        28.0,
			TripC:           85.0,
			TripReleaseC:    76.0,
			TripCapMHz:      600,
		},
		Net: &thermal.Network{
			Nodes: []thermal.Node{
				{Name: "A73", HeatCapJ: 0.7},
				{Name: "A53", HeatCapJ: 0.4},
				{Name: "G31", HeatCapJ: 0.5},
				{Name: "pkg", HeatCapJ: 1.2},
			},
			Links: []thermal.Link{
				{A: 0, B: 3, ResCW: 5.5},
				{A: 1, B: 3, ResCW: 6.5},
				{A: 2, B: 3, ResCW: 5.0},
				{A: 3, B: thermal.Ambient, ResCW: 11.0},
				{A: 0, B: thermal.Ambient, ResCW: 90.0},
				{A: 0, B: 2, ResCW: 20.0},
			},
		},
	}
}

// merlinM3 is a flagship-phone part: prime X4-class big cluster pushed to
// 2.8 GHz, A520-class LITTLE, an 8-shader G720-class GPU and an NPU block
// with its own thermal node. The classic mobile profile — burst far above
// what the chassis can sustain, then live on the trip hysteresis.
func merlinM3() *platform.Bundle {
	return &platform.Bundle{
		Name:        "merlin-m3",
		Class:       platform.Mobile,
		Description: "flagship-phone SoC: quad X4-class prime cluster to 2.8 GHz, quad A520-class LITTLE, 8-shader G720-class GPU, 34-TOPS NPU",
		SoC: &soc.Platform{
			Name: "MerlinM3",
			Clusters: []soc.Cluster{
				{
					Name:     "X4",
					Kind:     soc.BigCPU,
					NumCores: 4,
					OPPs: rampOPPs(300, 2800, 100, []voltPoint{
						{300, 0.6500}, {1000, 0.7500}, {1800, 0.9000},
						{2400, 1.0500}, {2800, 1.2000},
					}),
					CdynCoreNF:    0.42,
					LeakCoeff:     0.10,
					LeakTempCoeff: 0.012,
				},
				{
					Name:     "A520",
					Kind:     soc.LittleCPU,
					NumCores: 4,
					OPPs: rampOPPs(300, 2000, 100, []voltPoint{
						{300, 0.6500}, {1000, 0.7750}, {1600, 0.9000},
						{2000, 1.0000},
					}),
					CdynCoreNF:    0.10,
					LeakCoeff:     0.02,
					LeakTempCoeff: 0.010,
				},
				{
					Name:     "G720",
					Kind:     soc.GPU,
					NumCores: 8,
					OPPs: []soc.OPP{
						{FreqMHz: 300, VoltV: 0.7000},
						{FreqMHz: 400, VoltV: 0.7500},
						{FreqMHz: 500, VoltV: 0.8000},
						{FreqMHz: 600, VoltV: 0.8500},
						{FreqMHz: 700, VoltV: 0.9250},
						{FreqMHz: 800, VoltV: 1.0000},
						{FreqMHz: 900, VoltV: 1.0750},
					},
					CdynCoreNF:    0.30,
					LeakCoeff:     0.05,
					LeakTempCoeff: 0.010,
				},
			},
			BoardBaselineW:  2.40,
			DRAMPowerPerGBs: 0.28,
			AmbientC:        28.0,
			TripC:           94.0,
			TripReleaseC:    86.0,
			TripCapMHz:      1100,
		},
		Net: &thermal.Network{
			Nodes: []thermal.Node{
				{Name: "X4", HeatCapJ: 1.0},
				{Name: "A520", HeatCapJ: 0.6},
				{Name: "G720", HeatCapJ: 1.6},
				{Name: "npu0", HeatCapJ: 0.8},
				{Name: "pkg", HeatCapJ: 1.8},
			},
			Links: []thermal.Link{
				{A: 0, B: 4, ResCW: 4.3},
				{A: 1, B: 4, ResCW: 5.2},
				{A: 2, B: 4, ResCW: 3.0},
				{A: 3, B: 4, ResCW: 4.0},
				{A: 4, B: thermal.Ambient, ResCW: 7.6},
				{A: 0, B: thermal.Ambient, ResCW: 65.0},
				{A: 2, B: thermal.Ambient, ResCW: 85.0},
				{A: 0, B: 2, ResCW: 14.0},
			},
		},
		Accelerators: []platform.AcceleratorSlot{
			{Name: "npu0", Kind: "NPU", TOPS: 34, PeakW: 4.5},
		},
	}
}

// harrierS16 is an actively-cooled many-core server part: eight
// N3-class performance cores, eight E3-class efficiency cores and a wide
// 32-shader compute GPU behind a real heatsink. The dense thermal
// network carries heatsink, VRM, DIMM and I/O nodes — the
// server-catalog shape the verification suite exists to keep honest.
func harrierS16() *platform.Bundle {
	return &platform.Bundle{
		Name:        "harrier-s16",
		Class:       platform.Server,
		Description: "actively-cooled 16-core server SoC: 8×N3-class big, 8×E3-class efficiency, 32-shader compute GPU, heatsink/VRM/DIMM thermal nodes",
		SoC: &soc.Platform{
			Name: "HarrierS16",
			Clusters: []soc.Cluster{
				{
					Name:     "N3",
					Kind:     soc.BigCPU,
					NumCores: 8,
					OPPs: rampOPPs(1000, 3400, 200, []voltPoint{
						{1000, 0.7500}, {1800, 0.8250}, {2600, 0.9250},
						{3000, 0.9750}, {3400, 1.0500},
					}),
					CdynCoreNF:    0.50,
					LeakCoeff:     0.12,
					LeakTempCoeff: 0.013,
				},
				{
					Name:     "E3",
					Kind:     soc.LittleCPU,
					NumCores: 8,
					OPPs: rampOPPs(800, 2200, 200, []voltPoint{
						{800, 0.7250}, {1400, 0.7750}, {2200, 0.9000},
					}),
					CdynCoreNF:    0.15,
					LeakCoeff:     0.03,
					LeakTempCoeff: 0.011,
				},
				{
					Name:     "CG2",
					Kind:     soc.GPU,
					NumCores: 32,
					OPPs: []soc.OPP{
						{FreqMHz: 400, VoltV: 0.7500},
						{FreqMHz: 600, VoltV: 0.8000},
						{FreqMHz: 800, VoltV: 0.8500},
						{FreqMHz: 1000, VoltV: 0.9250},
						{FreqMHz: 1200, VoltV: 1.0000},
					},
					CdynCoreNF:    0.22,
					LeakCoeff:     0.03,
					LeakTempCoeff: 0.010,
				},
			},
			BoardBaselineW:  7.50,
			DRAMPowerPerGBs: 0.35,
			AmbientC:        25.0,
			TripC:           95.0,
			TripReleaseC:    85.0,
			TripCapMHz:      1800,
		},
		Net: &thermal.Network{
			Nodes: []thermal.Node{
				{Name: "N3", HeatCapJ: 3.0},
				{Name: "E3", HeatCapJ: 2.0},
				{Name: "CG2", HeatCapJ: 4.5},
				{Name: "pkg", HeatCapJ: 10.0},
				{Name: "hs", HeatCapJ: 180.0},
				{Name: "vrm", HeatCapJ: 4.0},
				{Name: "dimm", HeatCapJ: 6.0},
				{Name: "io", HeatCapJ: 3.0},
			},
			Links: []thermal.Link{
				{A: 0, B: 3, ResCW: 0.9},
				{A: 1, B: 3, ResCW: 1.3},
				{A: 2, B: 3, ResCW: 0.8},
				{A: 0, B: 2, ResCW: 6.0},
				{A: 3, B: 4, ResCW: 0.35},
				{A: 4, B: thermal.Ambient, ResCW: 0.55},
				{A: 3, B: thermal.Ambient, ResCW: 28.0},
				{A: 5, B: 3, ResCW: 5.0},
				{A: 5, B: thermal.Ambient, ResCW: 14.0},
				{A: 6, B: 3, ResCW: 7.0},
				{A: 6, B: thermal.Ambient, ResCW: 11.0},
				{A: 7, B: 3, ResCW: 6.5},
			},
		},
		Accelerators: []platform.AcceleratorSlot{
			{Name: "bmc0", Kind: "BMC", TOPS: 0},
		},
	}
}
