// Package platform is the hardware catalog: it makes the simulated
// machine a first-class, JSON-defined axis instead of a pair of
// implicitly-coupled presets. A Bundle packages everything one board
// needs to simulate — the SoC description (clusters, OPP tables, trip
// points), the lumped RC thermal network it is calibrated against, and
// catalog metadata (deployment class, accelerator slots) — under one
// name.
//
// Bundles are plain data: define one in JSON (Load/Save — the soc and
// thermal schemas nest unchanged), or resolve a builtin by name through
// the embedded catalog (Get, Names, Resolve). Every layer above consumes
// the axis by name: scenario grids fan out scenario × governor ×
// platform, teemscenario takes -platform/-platforms, and teemd validates
// a JobRequest's platform field at submission.
//
// Verify runs the catalog-wide validation suite over a bundle — OPP
// monotonicity, cluster-to-node sensor resolution, network connectivity
// and stability, power-model sanity at the OPP extremes, and
// trip-release viability — so every registered platform is known-good
// before a simulation ever boots on it. See docs/platforms.md.
package platform

import (
	"fmt"

	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
)

// Class buckets platforms by deployment segment. The class is catalog
// metadata — cross-platform sweeps select and report by it.
type Class string

// Deployment classes.
const (
	// Edge marks passively-cooled embedded parts (gateways, cameras).
	Edge Class = "edge"
	// Mobile marks phone/tablet-class SoCs (tight thermal budgets,
	// aggressive DVFS ranges, accelerator blocks).
	Mobile Class = "mobile"
	// Server marks actively-cooled many-core parts with dense thermal
	// networks (heatsink, regulator and DIMM nodes).
	Server Class = "server"
)

// Valid reports whether c is a known deployment class.
func (c Class) Valid() bool {
	switch c {
	case Edge, Mobile, Server:
		return true
	}
	return false
}

// Classes lists the deployment classes in stable order.
func Classes() []Class { return []Class{Edge, Mobile, Server} }

// AcceleratorSlot records a fixed-function accelerator attached to the
// SoC — an NPU, DSP or FPGA block. Slots are catalog metadata in the
// lumos MPSoC composition style: the co-simulation models the CPU and
// GPU clusters, and slots describe what else the part carries so
// mappers and future backends can reason about offload capacity. A slot
// may own a thermal node of the same name in the bundled network.
type AcceleratorSlot struct {
	// Name identifies the slot, e.g. "npu0".
	Name string `json:"name"`
	// Kind is the block type, e.g. "NPU", "DSP", "ISP", "FPGA".
	Kind string `json:"kind"`
	// TOPS is the nominal int8 throughput in tera-operations/s.
	TOPS float64 `json:"tops,omitempty"`
	// PeakW is the block's peak power draw in watts.
	PeakW float64 `json:"peak_w,omitempty"`
}

// Bundle is one catalog entry: a SoC and the thermal network it is
// calibrated against, plus metadata. The pair is validated together —
// every cluster resolves to a sensor node, the "pkg" node exists — so a
// resolved bundle can never reproduce the historical silent-mismatch
// failure mode (sim.ErrPlatformNetMismatch).
type Bundle struct {
	// Name is the catalog key, e.g. "exynos5422". Builtin bundles are
	// stored as catalog/<name>.json.
	Name string
	// Class is the deployment segment.
	Class Class
	// Description is a one-line human summary for listings.
	Description string
	// SoC is the platform description (clusters, OPPs, trip points).
	SoC *soc.Platform
	// Net is the lumped RC thermal network calibrated for the SoC as
	// mounted on its reference board.
	Net *thermal.Network
	// Accelerators lists fixed-function accelerator slots (metadata).
	Accelerators []AcceleratorSlot
}

// Validate reports an error if the bundle is structurally inconsistent:
// missing pieces, an invalid SoC or network, a platform/network pair
// that cannot carry each other, duplicate-kind clusters, or malformed
// accelerator slots.
func (b *Bundle) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("platform: bundle has empty name")
	}
	if !b.Class.Valid() {
		return fmt.Errorf("platform %s: unknown class %q (want edge, mobile or server)", b.Name, b.Class)
	}
	if b.SoC == nil {
		return fmt.Errorf("platform %s: missing soc description", b.Name)
	}
	if b.Net == nil {
		return fmt.Errorf("platform %s: missing thermal network", b.Name)
	}
	if err := b.SoC.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", b.Name, err)
	}
	if err := b.Net.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", b.Name, err)
	}
	if err := sim.CheckPlatformNet(b.SoC, b.Net); err != nil {
		return fmt.Errorf("platform %s: %w", b.Name, err)
	}
	// The engine indexes exactly one cluster per kind (and the node
	// aliases @big/@little/@gpu resolve to one cluster), so a catalog
	// bundle must carry exactly one of each.
	var nBig, nLit, nGPU int
	for i := range b.SoC.Clusters {
		switch b.SoC.Clusters[i].Kind {
		case soc.BigCPU:
			nBig++
		case soc.LittleCPU:
			nLit++
		case soc.GPU:
			nGPU++
		}
	}
	if nBig != 1 || nLit != 1 || nGPU != 1 {
		return fmt.Errorf("platform %s: want exactly one big, LITTLE and GPU cluster, got %d/%d/%d",
			b.Name, nBig, nLit, nGPU)
	}
	seen := make(map[string]bool, len(b.Accelerators))
	for i := range b.Accelerators {
		a := &b.Accelerators[i]
		if a.Name == "" {
			return fmt.Errorf("platform %s: accelerator slot %d has empty name", b.Name, i)
		}
		if a.Kind == "" {
			return fmt.Errorf("platform %s: accelerator %s has empty kind", b.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("platform %s: duplicate accelerator slot %q", b.Name, a.Name)
		}
		seen[a.Name] = true
		if a.TOPS < 0 || a.PeakW < 0 {
			return fmt.Errorf("platform %s: accelerator %s has negative capacity", b.Name, a.Name)
		}
	}
	return nil
}
