package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"teem/internal/soc"
	"teem/internal/thermal"
)

// jsonBundle mirrors Bundle with explicit JSON tags. The soc and thermal
// descriptions nest through their own MarshalJSON/UnmarshalJSON codecs,
// so a bundle file embeds the exact schemas `teemsim -platform` and
// `-thermal` already accept — one document instead of two coupled ones.
type jsonBundle struct {
	Name         string            `json:"name"`
	Class        Class             `json:"class"`
	Description  string            `json:"description,omitempty"`
	SoC          *soc.Platform     `json:"soc"`
	Net          *thermal.Network  `json:"thermal"`
	Accelerators []AcceleratorSlot `json:"accelerators,omitempty"`
}

// Save writes the bundle as indented JSON after validating it.
func (b *Bundle) Save(w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonBundle{
		Name:         b.Name,
		Class:        b.Class,
		Description:  b.Description,
		SoC:          b.SoC,
		Net:          b.Net,
		Accelerators: b.Accelerators,
	})
}

// Load reads and validates a platform bundle from JSON.
func Load(r io.Reader) (*Bundle, error) {
	var jb jsonBundle
	if err := json.NewDecoder(r).Decode(&jb); err != nil {
		return nil, fmt.Errorf("platform: decoding bundle: %w", err)
	}
	b := &Bundle{
		Name:         jb.Name,
		Class:        jb.Class,
		Description:  jb.Description,
		SoC:          jb.SoC,
		Net:          jb.Net,
		Accelerators: jb.Accelerators,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadFile reads and validates a platform bundle from a JSON file.
func LoadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
