package platform

import (
	"fmt"
	"math"

	"teem/internal/power"
	"teem/internal/thermal"
)

// Verification thresholds. They are deliberately loose — the suite
// catches entries that are physically broken or would wedge the
// simulator, not entries that are merely unusual.
const (
	// maxFreqSaneMHz bounds cluster clocks (no 2026 part clocks past 6 GHz).
	maxFreqSaneMHz = 6000
	// maxVoltSaneV bounds rail voltages.
	maxVoltSaneV = 1.6
	// maxClusterSaneW bounds a single cluster's full-load power.
	maxClusterSaneW = 120
	// maxBoardSaneW bounds the whole-board full-load envelope.
	maxBoardSaneW = 400
	// steadyTolC is the tolerance for the zero-power equilibrium check.
	steadyTolC = 1e-6
)

// Verify runs the catalog-wide validation suite over one bundle and
// returns its findings (empty = the platform is known-good). The suite
// layers semantic physics checks on top of Bundle.Validate:
//
//   - OPP tables: at least two points per cluster, strictly increasing
//     frequency with non-decreasing voltage, sane clock/voltage ranges.
//   - Trip points: the hardware cap is a reachable big-cluster
//     frequency, and release sits above ambient (hysteresis can close).
//   - Sensor resolution: every cluster and accelerator-slot node name
//     resolves in the bundled network (clusters via Validate; slots here).
//   - Network: every node is connected to ambient (an isolated island
//     would integrate heat without bound), and the zero-power steady
//     state relaxes to ambient exactly — the stability certificate for
//     the RC system.
//   - Power model: cluster power is positive at the minimum OPP, grows
//     to the maximum OPP, and the min/max full-load board envelope is
//     physically plausible.
//   - Trip viability: the self-consistent steady state under the
//     hardware-throttled load sits below TripReleaseC, so a tripped
//     part always cools enough to release (no permanent-throttle wedge),
//     and the full-load steady state is finite.
func Verify(b *Bundle) []string {
	if err := b.Validate(); err != nil {
		return []string{err.Error()}
	}
	var findings []string
	addf := func(format string, args ...any) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}

	// --- OPP tables ---------------------------------------------------
	for i := range b.SoC.Clusters {
		c := &b.SoC.Clusters[i]
		if c.NumOPPs() < 2 {
			addf("cluster %s: only %d OPP; governors need at least two points to actuate", c.Name, c.NumOPPs())
		}
		for j := 1; j < c.NumOPPs(); j++ {
			if c.OPPs[j].FreqMHz <= c.OPPs[j-1].FreqMHz {
				addf("cluster %s: OPP %d frequency not strictly increasing", c.Name, j)
			}
			if c.OPPs[j].VoltV < c.OPPs[j-1].VoltV {
				addf("cluster %s: OPP %d voltage decreases with frequency", c.Name, j)
			}
		}
		if c.MaxFreqMHz() > maxFreqSaneMHz {
			addf("cluster %s: max frequency %d MHz exceeds the %d MHz sanity bound", c.Name, c.MaxFreqMHz(), maxFreqSaneMHz)
		}
		if v := c.OPPs[c.NumOPPs()-1].VoltV; v > maxVoltSaneV {
			addf("cluster %s: max voltage %.3f V exceeds the %.1f V sanity bound", c.Name, v, maxVoltSaneV)
		}
	}

	// --- trip points --------------------------------------------------
	big := b.SoC.Big()
	if b.SoC.TripCapMHz < big.MinFreqMHz() || b.SoC.TripCapMHz > big.MaxFreqMHz() {
		addf("trip cap %d MHz is outside the big cluster's %d–%d MHz range",
			b.SoC.TripCapMHz, big.MinFreqMHz(), big.MaxFreqMHz())
	}
	if b.SoC.TripReleaseC <= b.SoC.AmbientC {
		addf("trip release %.1f °C at or below ambient %.1f °C — hardware protection could never engage meaningfully",
			b.SoC.TripReleaseC, b.SoC.AmbientC)
	}
	if b.SoC.AmbientC < 0 || b.SoC.AmbientC > 60 {
		addf("ambient %.1f °C outside the plausible 0–60 °C range", b.SoC.AmbientC)
	}

	// --- accelerator-slot sensor resolution ---------------------------
	// A slot that owns a thermal node must own exactly the same name;
	// slots without a node are pure metadata and fine.
	for i := range b.Accelerators {
		a := &b.Accelerators[i]
		if a.PeakW > 0 && b.Net.NodeIndex(a.Name) < 0 {
			addf("accelerator %s draws %.1f W but has no thermal node to heat", a.Name, a.PeakW)
		}
	}

	// --- network connectivity -----------------------------------------
	n := len(b.Net.Nodes)
	reach := make([]bool, n)
	var frontier []int
	for _, l := range b.Net.Links {
		if l.B == thermal.Ambient && !reach[l.A] {
			reach[l.A] = true
			frontier = append(frontier, l.A)
		}
	}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, l := range b.Net.Links {
			if l.B == thermal.Ambient {
				continue
			}
			next := -1
			if l.A == cur && !reach[l.B] {
				next = l.B
			} else if l.B == cur && !reach[l.A] {
				next = l.A
			}
			if next >= 0 {
				reach[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	for i := range reach {
		if !reach[i] {
			addf("node %s has no conductive path to ambient — its temperature would grow without bound",
				b.Net.Nodes[i].Name)
		}
	}
	if len(findings) > 0 {
		// The physics checks below assume a well-formed system.
		return findings
	}

	// --- stability: zero power relaxes to ambient ---------------------
	tm, err := thermal.NewModel(b.Net, b.SoC.AmbientC)
	if err != nil {
		addf("thermal model: %v", err)
		return findings
	}
	zero := make([]float64, n)
	st, err := tm.SteadyState(zero)
	if err != nil {
		addf("zero-power steady state: %v", err)
		return findings
	}
	for i, t := range st {
		if math.Abs(t-b.SoC.AmbientC) > steadyTolC {
			addf("node %s: zero-power steady state %.4f °C drifts from ambient %.1f °C",
				b.Net.Nodes[i].Name, t, b.SoC.AmbientC)
		}
	}

	// --- power-model sanity at the OPP extremes -----------------------
	pm, err := power.NewModel(b.SoC)
	if err != nil {
		addf("power model: %v", err)
		return findings
	}
	var peakW float64
	for i := range b.SoC.Clusters {
		c := &b.SoC.Clusters[i]
		pmin, err := clusterFullLoadW(pm, i, c.MinFreqMHz(), b.SoC.AmbientC)
		if err != nil {
			addf("cluster %s: %v", c.Name, err)
			continue
		}
		pmax, err := clusterFullLoadW(pm, i, c.MaxFreqMHz(), b.SoC.AmbientC)
		if err != nil {
			addf("cluster %s: %v", c.Name, err)
			continue
		}
		if pmin <= 0 {
			addf("cluster %s: non-positive power %.3f W at the minimum OPP", c.Name, pmin)
		}
		if pmax <= pmin {
			addf("cluster %s: full-load power does not grow from min OPP (%.3f W) to max OPP (%.3f W)",
				c.Name, pmin, pmax)
		}
		if pmax > maxClusterSaneW {
			addf("cluster %s: full-load power %.1f W exceeds the %d W sanity bound", c.Name, pmax, maxClusterSaneW)
		}
		peakW += pmax
	}
	peakW += b.SoC.BoardBaselineW
	if peakW > maxBoardSaneW {
		addf("board full-load envelope %.1f W exceeds the %d W sanity bound", peakW, maxBoardSaneW)
	}

	// --- trip viability ------------------------------------------------
	// Throttled regime: the hardware cap on the big cluster, everything
	// else at full tilt. The self-consistent steady state must fall
	// below the release point, otherwise a tripped part never cools
	// enough to release and wedges at the cap forever.
	capMHz := big.FloorOPP(b.SoC.TripCapMHz).FreqMHz
	thr, err := steadyFullLoad(b, tm, pm, map[string]int{big.Name: capMHz})
	if err != nil {
		addf("throttled steady state: %v", err)
		return findings
	}
	bigNode := b.Net.NodeIndex(big.Name)
	if t := thr[bigNode]; t >= b.SoC.TripReleaseC {
		addf("throttled steady state %.1f °C on %s does not fall below the %.1f °C release point — a tripped part would never recover",
			t, big.Name, b.SoC.TripReleaseC)
	}
	// Full-tilt regime only needs to be finite (trip protection exists
	// precisely because it may exceed TripC).
	full, err := steadyFullLoad(b, tm, pm, nil)
	if err != nil {
		addf("full-load steady state: %v", err)
		return findings
	}
	for i, t := range full {
		if math.IsNaN(t) || math.IsInf(t, 0) || t > 1000 {
			addf("node %s: full-load steady state %.1f °C is not physical", b.Net.Nodes[i].Name, t)
		}
	}
	return findings
}

// clusterFullLoadW evaluates cluster i fully loaded (all cores active,
// utilization 1) at the given frequency and temperature.
func clusterFullLoadW(pm *power.Model, i, freqMHz int, tempC float64) (float64, error) {
	c := &pm.Platform().Clusters[i]
	dyn, leak, err := pm.ClusterPower(i, power.ClusterLoad{
		FreqMHz:     freqMHz,
		ActiveCores: c.NumCores,
		OnCores:     c.NumCores,
		Utilization: 1,
		Activity:    1,
		TempC:       tempC,
	})
	if err != nil {
		return 0, err
	}
	return dyn + leak, nil
}

// steadyFullLoad computes the self-consistent steady state of the bundle
// under full load, with optional per-cluster frequency overrides (MHz;
// missing clusters run at their maximum OPP). Leakage depends on
// temperature and temperature on power, so the fixed point is found by
// iterating power evaluation at the current node temperatures against
// the linear steady-state solve — a handful of rounds converge to well
// under the check tolerances. Half the board baseline heats the package
// node, matching the simulator's default PkgBaselineFrac.
func steadyFullLoad(b *Bundle, tm *thermal.Model, pm *power.Model, freqMHz map[string]int) ([]float64, error) {
	n := len(b.Net.Nodes)
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = b.SoC.AmbientC
	}
	inj := make([]float64, n)
	pkg := b.Net.NodeIndex("pkg")
	var st []float64
	for round := 0; round < 8; round++ {
		for i := range inj {
			inj[i] = 0
		}
		inj[pkg] += 0.5 * b.SoC.BoardBaselineW
		for i := range b.SoC.Clusters {
			c := &b.SoC.Clusters[i]
			f := c.MaxFreqMHz()
			if over, ok := freqMHz[c.Name]; ok {
				f = over
			}
			node := b.Net.NodeIndex(c.Name)
			dyn, leak, err := pm.ClusterPower(i, power.ClusterLoad{
				FreqMHz:     f,
				ActiveCores: c.NumCores,
				OnCores:     c.NumCores,
				Utilization: 1,
				Activity:    1,
				TempC:       temps[node],
			})
			if err != nil {
				return nil, err
			}
			inj[node] += dyn + leak
		}
		var err error
		st, err = tm.SteadyState(inj)
		if err != nil {
			return nil, err
		}
		copy(temps, st)
	}
	return st, nil
}
