package platform

import (
	"bytes"
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The builtin catalog ships inside the binary: one JSON bundle per
// platform, validated by the catalog test suite (and `make
// platform-gate`) against the full verification rules. The two Exynos
// entries are generated from the Go constructors (see gen.go) and pinned
// deep-equal to them by golden tests, so resolving "exynos5422" through
// the catalog is byte-identical to the historical hard-coded default.
//
//go:generate go run gen.go
//go:embed catalog/*.json
var catalogFS embed.FS

// DefaultName is the catalog name of the default platform — the paper's
// evaluation board. Layers that historically hard-coded the Exynos 5422
// presets now resolve this name.
const DefaultName = "exynos5422"

// Names lists the builtin catalog in sorted order.
func Names() []string {
	entries, err := catalogFS.ReadDir("catalog")
	if err != nil {
		// The directory is embedded at compile time; an unreadable
		// catalog is a build defect, not a runtime condition.
		panic(fmt.Sprintf("platform: embedded catalog unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Has reports whether name is a builtin catalog platform.
func Has(name string) bool {
	_, err := catalogFS.ReadFile("catalog/" + name + ".json")
	return err == nil
}

// Get resolves a builtin platform by catalog name, returning a freshly
// decoded copy — callers own the result and may mutate it freely without
// aliasing other resolutions.
func Get(name string) (*Bundle, error) {
	data, err := catalogFS.ReadFile("catalog/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("platform: unknown platform %q (builtin: %s)",
			name, strings.Join(Names(), ", "))
	}
	b, err := Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("platform: builtin %q: %w", name, err)
	}
	if b.Name != name {
		return nil, fmt.Errorf("platform: builtin %q declares mismatched name %q", name, b.Name)
	}
	return b, nil
}

// Default returns the default platform (the paper's Exynos 5422 board).
func Default() *Bundle {
	b, err := Get(DefaultName)
	if err != nil {
		panic(fmt.Sprintf("platform: default catalog entry broken: %v", err))
	}
	return b
}

// Resolve interprets ref as a builtin catalog name first and a bundle
// JSON file path second — the lookup order every CLI -platform flag
// uses. A ref that is neither reports both failures.
func Resolve(ref string) (*Bundle, error) {
	if Has(ref) {
		return Get(ref)
	}
	if _, err := os.Stat(ref); err != nil {
		return nil, fmt.Errorf("platform: %q is neither a builtin platform (have %s) nor a readable file",
			ref, strings.Join(Names(), ", "))
	}
	return LoadFile(ref)
}
