package platform

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
)

// TestCatalogVerifies runs the full validation suite over every builtin
// platform — the catalog-wide gate the registry's guarantee rests on.
func TestCatalogVerifies(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("catalog has %d platforms, want at least 6: %v", len(names), names)
	}
	for _, name := range names {
		b, err := Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
			continue
		}
		for _, f := range Verify(b) {
			t.Errorf("%s: %s", name, f)
		}
	}
}

// TestCatalogSpansClasses pins the catalog's breadth: at least one
// platform per deployment class.
func TestCatalogSpansClasses(t *testing.T) {
	have := make(map[Class]int)
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		have[b.Class]++
	}
	for _, c := range Classes() {
		if have[c] == 0 {
			t.Errorf("no %s-class platform in the catalog", c)
		}
	}
}

// TestCatalogMatchesConstructors pins the Exynos catalog entries
// deep-equal to the Go constructors they are generated from. This is
// the bridge that makes resolving "exynos5422" by name byte-identical
// to the historical hard-coded default: Go's encoding/json round-trips
// float64 exactly, so the decoded bundle is the same platform.
func TestCatalogMatchesConstructors(t *testing.T) {
	cases := []struct {
		name string
		soc  *soc.Platform
		net  *thermal.Network
	}{
		{"exynos5422", soc.Exynos5422(), thermal.Exynos5422Network()},
		{"exynos5410", soc.Exynos5410(), thermal.Exynos5410Network()},
	}
	for _, tc := range cases {
		b, err := Get(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b.SoC, tc.soc) {
			t.Errorf("%s: catalog SoC differs from constructor — regenerate with go generate ./internal/platform", tc.name)
		}
		if !reflect.DeepEqual(b.Net, tc.net) {
			t.Errorf("%s: catalog network differs from constructor — regenerate with go generate ./internal/platform", tc.name)
		}
	}
}

// TestCatalogRoundTrip is the golden test for every builtin platform:
// Save → Load must reproduce the bundle deep-equal, and re-saving the
// loaded bundle must reproduce the embedded golden file byte-for-byte
// (so the on-disk catalog is the canonical serialization, not merely an
// acceptable one).
func TestCatalogRoundTrip(t *testing.T) {
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := b.Save(&buf); err != nil {
			t.Fatalf("%s: Save: %v", name, err)
		}
		rb, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Load(Save): %v", name, err)
		}
		if !reflect.DeepEqual(rb, b) {
			t.Errorf("%s: Save→Load round trip is not deep-equal", name)
		}
		golden, err := catalogFS.ReadFile("catalog/" + name + ".json")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("%s: Save output differs from the golden catalog file — regenerate with go generate ./internal/platform", name)
		}
	}
}

func TestGetReturnsFreshCopies(t *testing.T) {
	a, err := Get(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	a.SoC.TripC = 1.0
	a.Net.Nodes[0].Name = "mutated"
	b, err := Get(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if b.SoC.TripC == 1.0 || b.Net.Nodes[0].Name == "mutated" {
		t.Fatal("Get returned an aliased bundle — mutation leaked between resolutions")
	}
}

func TestGetUnknownName(t *testing.T) {
	_, err := Get("no-such-board")
	if err == nil {
		t.Fatal("Get of unknown platform succeeded")
	}
	if !strings.Contains(err.Error(), DefaultName) {
		t.Errorf("error %q does not list the builtin catalog", err)
	}
}

func TestResolve(t *testing.T) {
	// Builtin name.
	b, err := Resolve(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != DefaultName {
		t.Fatalf("Resolve(%q) returned %q", DefaultName, b.Name)
	}
	// File path.
	path := filepath.Join(t.TempDir(), "custom.json")
	custom := Default()
	custom.Name = "custom-board"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := custom.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fb, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Name != "custom-board" {
		t.Fatalf("Resolve(file) returned %q", fb.Name)
	}
	// Neither.
	if _, err := Resolve("nope-nowhere"); err == nil {
		t.Fatal("Resolve of nonexistent ref succeeded")
	}
}

func TestDefaultIsExynos5422(t *testing.T) {
	if Default().Name != "exynos5422" {
		t.Fatalf("default platform is %q", Default().Name)
	}
}

// TestValidateRejectsMismatchedPair pins the bundle-level guarantee:
// a platform whose cluster names do not resolve in the paired network
// is rejected with the simulator's sentinel, not accepted silently.
func TestValidateRejectsMismatchedPair(t *testing.T) {
	b := Default()
	b.Net = thermal.Exynos5410Network() // lacks a MaliT628 node
	err := b.Validate()
	if !errors.Is(err, sim.ErrPlatformNetMismatch) {
		t.Fatalf("Validate = %v, want ErrPlatformNetMismatch", err)
	}
}

func TestValidateRejectsDuplicateKinds(t *testing.T) {
	b := Default()
	b.SoC.Clusters = append(b.SoC.Clusters, b.SoC.Clusters[0])
	b.SoC.Clusters[len(b.SoC.Clusters)-1].Name = "A15b"
	b.Net.Nodes = append(b.Net.Nodes, thermal.Node{Name: "A15b", HeatCapJ: 1})
	b.Net.Links = append(b.Net.Links, thermal.Link{A: len(b.Net.Nodes) - 1, B: b.Net.NodeIndex("pkg"), ResCW: 5})
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "exactly one big") {
		t.Fatalf("Validate = %v, want duplicate-kind rejection", err)
	}
}

func TestVerifyFlagsBrokenPhysics(t *testing.T) {
	// Voltage inversion in an OPP table.
	b := Default()
	big := b.SoC.Big()
	big.OPPs[len(big.OPPs)-1].VoltV = big.OPPs[0].VoltV / 2
	if fs := Verify(b); len(fs) == 0 {
		t.Error("Verify accepted a voltage-inverted OPP table")
	}

	// A node island with no path to ambient.
	b = Default()
	b.Net.Nodes = append(b.Net.Nodes, thermal.Node{Name: "island", HeatCapJ: 1})
	if fs := Verify(b); len(fs) == 0 {
		t.Error("Verify accepted a node with no path to ambient")
	} else if !strings.Contains(strings.Join(fs, "\n"), "island") {
		t.Errorf("findings do not name the island node: %v", fs)
	}

	// A trip release that full-cap steady state can never reach.
	b = Default()
	b.SoC.TripReleaseC = b.SoC.AmbientC + 0.5
	if fs := Verify(b); len(fs) == 0 {
		t.Error("Verify accepted an unreachable trip release point")
	}

	// An accelerator that draws power without a thermal node.
	b = Default()
	b.Accelerators = []AcceleratorSlot{{Name: "ghost", Kind: "NPU", PeakW: 3}}
	if fs := Verify(b); len(fs) == 0 {
		t.Error("Verify accepted a powered accelerator with no thermal node")
	}
}

func TestLoadFileErrorsCarryPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("LoadFile error %v does not carry the path", err)
	}
}
