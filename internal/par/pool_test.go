package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxCancelStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed int32
		const n = 1000
		err := ForEachCtx(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&executed, 1) == 1 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if got := atomic.LoadInt32(&executed); got >= n {
			t.Errorf("workers=%d: all %d indices ran despite cancellation at the first", workers, got)
		}
	}
}

// A fn failure must still win over the cancellation it may have provoked,
// keeping the lowest-failing-index determinism of ForEach.
func TestForEachCtxFnErrorWinsOverCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 4, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestForEachCtxCompletedWorkSurvives(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 64
	out := make([]int, n)
	_ = ForEachCtx(ctx, 4, n, func(i int) error {
		out[i] = i + 1
		if i == 10 {
			cancel()
		}
		return nil
	})
	// Every index that ran wrote its slot; index 10 certainly ran.
	if out[10] != 11 {
		t.Error("completed slot lost after cancellation")
	}
}

// A cancellation that lands after the last index completed must not turn
// complete work into a partial result — serial and parallel agree.
func TestForEachCtxCompleteWorkBeatsLateCancel(t *testing.T) {
	for _, workers := range []int{2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 32
		var ran int32
		err := ForEachCtx(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&ran, 1) == n {
				cancel() // the final index cancels on its way out
			}
			return nil
		})
		cancel()
		if err != nil {
			t.Errorf("workers=%d: fully-completed fan-out returned %v, want nil", workers, err)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed int32
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		atomic.AddInt32(&executed, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if executed != 0 {
		t.Errorf("%d indices ran under a pre-cancelled context", executed)
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4, 64)
	var ran int32
	const n = 64
	for i := 0; i < n; i++ {
		if err := p.Submit(func(context.Context) { atomic.AddInt32(&ran, 1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Drain()
	if ran != n {
		t.Errorf("ran %d tasks, want %d", ran, n)
	}
}

func TestPoolRejectsWhenFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the first task; the queue is empty again
	if err := p.Submit(func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}
	// Queue depth 1 is now occupied: the next submit must shed.
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolFull) {
		t.Errorf("got %v, want ErrPoolFull", err)
	}
	close(block)
}

func TestPoolSubmitAfterCloseRejected(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("got %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseCancelsRunningTasks(t *testing.T) {
	p := NewPool(1, 1)
	entered := make(chan struct{})
	var sawCancel atomic.Bool
	if err := p.Submit(func(ctx context.Context) {
		close(entered)
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(5 * time.Second):
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-entered
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return: running task never saw the cancellation")
	}
	if !sawCancel.Load() {
		t.Error("running task did not observe the pool context cancellation")
	}
}

func TestPoolConcurrentSubmitRaceClean(t *testing.T) {
	p := NewPool(4, 256)
	var ran int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				for {
					err := p.Submit(func(context.Context) { atomic.AddInt32(&ran, 1) })
					if err == nil {
						break
					}
					if !errors.Is(err, ErrPoolFull) {
						t.Errorf("submit: %v", err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	p.Drain()
	if ran != 16*16 {
		t.Errorf("ran %d tasks, want %d", ran, 16*16)
	}
}

// Workers dequeue highest priority first, FIFO within a priority.
func TestPoolPriorityOrdering(t *testing.T) {
	p := NewPool(1, 16)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	var mu sync.Mutex
	var order []int
	add := func(tag int) func(context.Context) {
		return func(context.Context) { mu.Lock(); order = append(order, tag); mu.Unlock() }
	}
	// Queue low, high, two mediums (FIFO between them), low.
	for _, c := range []struct{ tag, pri int }{
		{1, 0}, {2, 10}, {3, 5}, {4, 5}, {5, 0},
	} {
		if err := p.SubmitTask(Task{Run: add(c.tag), Priority: c.pri}); err != nil {
			t.Fatalf("submit %d: %v", c.tag, err)
		}
	}
	close(block)
	p.Drain()
	want := []int{2, 3, 4, 1, 5}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// A full queue sheds its lowest-priority (newest-first) entry to admit a
// strictly higher-priority submission: the victim's Shed hook fires and
// its Run never does. An equal-priority submission is rejected instead.
func TestPoolShedsLowestPriority(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	var lowRan, lowShed, low2Shed atomic.Bool
	if err := p.SubmitTask(Task{
		Run:      func(context.Context) { lowRan.Store(true) },
		Priority: 1,
		Shed:     func() { lowShed.Store(true) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitTask(Task{
		Run:      func(context.Context) {},
		Priority: 1,
		Shed:     func() { low2Shed.Store(true) },
	}); err != nil {
		t.Fatal(err)
	}
	// Equal priority cannot displace anything.
	if err := p.SubmitTask(Task{Run: func(context.Context) {}, Priority: 1}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("equal-priority submit on full queue: got %v, want ErrPoolFull", err)
	}
	// Higher priority displaces the newest of the lowest-priority pair.
	if err := p.SubmitTask(Task{Run: func(context.Context) {}, Priority: 5}); err != nil {
		t.Fatalf("higher-priority submit on full queue: %v", err)
	}
	if !low2Shed.Load() {
		t.Error("newest low-priority task was not shed")
	}
	if lowShed.Load() {
		t.Error("oldest low-priority task was shed before the newer one")
	}
	close(block)
	p.Drain()
	if !lowRan.Load() {
		t.Error("surviving low-priority task never ran")
	}
}

// The shutdown-ordering regression: submissions racing Close/Drain must
// get the ErrPoolClosed sentinel (or land and run), never panic on a
// closed queue, and every accepted task must execute exactly once.
func TestPoolSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(2, 64)
		var accepted, ran int32
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := p.Submit(func(context.Context) { atomic.AddInt32(&ran, 1) })
					switch {
					case err == nil:
						atomic.AddInt32(&accepted, 1)
					case errors.Is(err, ErrPoolClosed):
						return
					case errors.Is(err, ErrPoolFull):
					default:
						t.Errorf("unexpected submit error: %v", err)
						return
					}
				}
			}()
		}
		time.Sleep(time.Millisecond)
		p.Drain() // must not race the submitters into a panic
		close(stop)
		wg.Wait()
		if a, r := atomic.LoadInt32(&accepted), atomic.LoadInt32(&ran); a != r {
			t.Fatalf("round %d: accepted %d tasks but ran %d", round, a, r)
		}
	}
}

func TestFlightForget(t *testing.T) {
	var f Flight[string, int]
	var runs int32
	mk := func() (int, error) { return int(atomic.AddInt32(&runs, 1)), nil }
	if v, _ := f.Do("k", mk); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	if v, _ := f.Do("k", mk); v != 1 {
		t.Fatalf("cached Do = %d, want 1", v)
	}
	f.Forget("k")
	if f.Cached("k") {
		t.Error("key still cached after Forget")
	}
	if v, _ := f.Do("k", mk); v != 2 {
		t.Fatalf("post-Forget Do = %d, want 2 (recomputed)", v)
	}
}
