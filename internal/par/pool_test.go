package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxCancelStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed int32
		const n = 1000
		err := ForEachCtx(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&executed, 1) == 1 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if got := atomic.LoadInt32(&executed); got >= n {
			t.Errorf("workers=%d: all %d indices ran despite cancellation at the first", workers, got)
		}
	}
}

// A fn failure must still win over the cancellation it may have provoked,
// keeping the lowest-failing-index determinism of ForEach.
func TestForEachCtxFnErrorWinsOverCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 4, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestForEachCtxCompletedWorkSurvives(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 64
	out := make([]int, n)
	_ = ForEachCtx(ctx, 4, n, func(i int) error {
		out[i] = i + 1
		if i == 10 {
			cancel()
		}
		return nil
	})
	// Every index that ran wrote its slot; index 10 certainly ran.
	if out[10] != 11 {
		t.Error("completed slot lost after cancellation")
	}
}

// A cancellation that lands after the last index completed must not turn
// complete work into a partial result — serial and parallel agree.
func TestForEachCtxCompleteWorkBeatsLateCancel(t *testing.T) {
	for _, workers := range []int{2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 32
		var ran int32
		err := ForEachCtx(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&ran, 1) == n {
				cancel() // the final index cancels on its way out
			}
			return nil
		})
		cancel()
		if err != nil {
			t.Errorf("workers=%d: fully-completed fan-out returned %v, want nil", workers, err)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed int32
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		atomic.AddInt32(&executed, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if executed != 0 {
		t.Errorf("%d indices ran under a pre-cancelled context", executed)
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4, 64)
	var ran int32
	const n = 64
	for i := 0; i < n; i++ {
		if err := p.Submit(func(context.Context) { atomic.AddInt32(&ran, 1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Drain()
	if ran != n {
		t.Errorf("ran %d tasks, want %d", ran, n)
	}
}

func TestPoolRejectsWhenFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the first task; the queue is empty again
	if err := p.Submit(func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}
	// Queue depth 1 is now occupied: the next submit must shed.
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolFull) {
		t.Errorf("got %v, want ErrPoolFull", err)
	}
	close(block)
}

func TestPoolSubmitAfterCloseRejected(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("got %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseCancelsRunningTasks(t *testing.T) {
	p := NewPool(1, 1)
	entered := make(chan struct{})
	var sawCancel atomic.Bool
	if err := p.Submit(func(ctx context.Context) {
		close(entered)
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(5 * time.Second):
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-entered
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return: running task never saw the cancellation")
	}
	if !sawCancel.Load() {
		t.Error("running task did not observe the pool context cancellation")
	}
}

func TestPoolConcurrentSubmitRaceClean(t *testing.T) {
	p := NewPool(4, 256)
	var ran int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				for {
					err := p.Submit(func(context.Context) { atomic.AddInt32(&ran, 1) })
					if err == nil {
						break
					}
					if !errors.Is(err, ErrPoolFull) {
						t.Errorf("submit: %v", err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	p.Drain()
	if ran != 16*16 {
		t.Errorf("ran %d tasks, want %d", ran, 16*16)
	}
}

func TestFlightForget(t *testing.T) {
	var f Flight[string, int]
	var runs int32
	mk := func() (int, error) { return int(atomic.AddInt32(&runs, 1)), nil }
	if v, _ := f.Do("k", mk); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	if v, _ := f.Do("k", mk); v != 1 {
		t.Fatalf("cached Do = %d, want 1", v)
	}
	f.Forget("k")
	if f.Cached("k") {
		t.Error("key still cached after Forget")
	}
	if v, _ := f.Do("k", mk); v != 2 {
		t.Fatalf("post-Forget Do = %d, want 2 (recomputed)", v)
	}
}
