package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0, 100); got != DefaultWorkers() {
		t.Errorf("Normalize(0, 100) = %d, want %d", got, DefaultWorkers())
	}
	if got := Normalize(-3, 100); got != DefaultWorkers() {
		t.Errorf("Normalize(-3, 100) = %d, want %d", got, DefaultWorkers())
	}
	if got := Normalize(16, 4); got != 4 {
		t.Errorf("Normalize(16, 4) = %d, want 4", got)
	}
	if got := Normalize(3, 100); got != 3 {
		t.Errorf("Normalize(3, 100) = %d, want 3", got)
	}
	if got := Normalize(5, 0); got != 1 {
		t.Errorf("Normalize(5, 0) = %d, want 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		const n = 100
		counts := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

// The reported error must be the lowest failing index regardless of
// scheduling, so parallel and serial runs fail identically.
func TestForEachLowestIndexErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

// A failure must stop the scheduling of new indices: a doomed fan-out
// should not grind through every remaining expensive job.
func TestForEachFailFast(t *testing.T) {
	const n = 1000
	var executed int32
	boom := errors.New("boom")
	err := ForEach(4, n, func(i int) error {
		atomic.AddInt32(&executed, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := atomic.LoadInt32(&executed); got >= n {
		t.Errorf("all %d jobs executed despite an immediate failure at index 0", got)
	}
}

func TestForEachResultsAreIndexOrdered(t *testing.T) {
	const n = 64
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestFlightSingleExecution(t *testing.T) {
	var f Flight[string, int]
	var runs int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	const callers = 16
	vals := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			vals[i], errs[i] = f.Do("k", func() (int, error) {
				atomic.AddInt32(&runs, 1)
				return 42, nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if runs != 1 {
		t.Errorf("fn ran %d times, want 1", runs)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Errorf("caller %d: (%d, %v)", i, vals[i], errs[i])
		}
	}
	if !f.Cached("k") {
		t.Error("successful result not cached")
	}
	// Later calls hit the cache without re-running fn.
	v, err := f.Do("k", func() (int, error) { atomic.AddInt32(&runs, 1); return 0, nil })
	if err != nil || v != 42 || runs != 1 {
		t.Errorf("cached Do = (%d, %v), runs %d", v, err, runs)
	}
}

func TestFlightErrorForgotten(t *testing.T) {
	var f Flight[int, string]
	boom := errors.New("boom")
	if _, err := f.Do(1, func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if f.Cached(1) {
		t.Error("failed result must not be cached")
	}
	v, err := f.Do(1, func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Errorf("retry = (%q, %v)", v, err)
	}
}

func TestFlightDistinctKeys(t *testing.T) {
	var f Flight[int, int]
	var runs int32
	if err := ForEach(8, 10, func(i int) error {
		v, err := f.Do(i, func() (int, error) {
			atomic.AddInt32(&runs, 1)
			return i * 2, nil
		})
		if err != nil {
			return err
		}
		if v != i*2 {
			t.Errorf("key %d: got %d", i, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 10 {
		t.Errorf("fn ran %d times, want 10", runs)
	}
}
