// Package par is the concurrency substrate of the parallel experiment
// engine and the service layer: bounded one-shot fan-outs with
// deterministic result assembly (ForEach/ForEachCtx), a long-lived
// bounded worker pool for managed jobs (Pool), and a generic
// single-flight cache (Flight).
//
// The fan-outs run index-addressed work so callers write results into
// pre-sized slices — output order is decided by index, not by completion
// order, which keeps parallel results byte-identical to a serial loop;
// the context variant stops scheduling new indices on cancellation so
// callers get partial results promptly. The single-flight cache collapses
// concurrent computations of the same key into one execution whose result
// every caller shares; failed computations are forgotten so a later call
// retries, and Forget invalidates stale entries.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when a caller asks for 0 workers:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize resolves a requested worker count against n jobs: zero or
// negative selects DefaultWorkers, and the pool never exceeds the job
// count.
func Normalize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(0), …, fn(n-1) across a bounded pool of workers and
// waits for completion. With one worker it degenerates to the plain
// serial loop, stopping at the first error. With more, a failure stops
// the scheduling of new indices (in-flight calls finish) and the error
// of the lowest failing index is returned: indices are claimed in
// increasing order, so every index below a failure has already been
// scheduled by the time the failure is observed — the reported error
// does not depend on goroutine scheduling. fn must write its result into
// an index-addressed slot owned by the caller; distinct indices never
// run fn concurrently on the same slot.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach under a context: a cancellation stops the
// scheduling of new indices (in-flight calls finish) and ctx.Err() is
// returned — unless some fn failed first, in which case that error wins,
// with the same lowest-failing-index determinism ForEach guarantees.
// Work already written into caller-owned slots before the cancellation is
// preserved, so callers can report partial results. A fan-out whose every
// index completed returns nil even when ctx was cancelled in the final
// moments — complete work is complete, serial and parallel alike.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, completed int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					atomic.AddInt64(&completed, 1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if atomic.LoadInt64(&completed) == int64(n) {
		// Every index ran to success: a cancellation that landed after
		// the last fn returned must not turn complete work into a
		// partial result (the serial path behaves the same way).
		return nil
	}
	return ctx.Err()
}

// Flight is a single-flight cache: concurrent Do calls with the same key
// share one execution of fn, and successful results stay cached for every
// later call. The zero value is ready to use. A Flight must not be
// copied after first use.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the cached value for key, or runs fn once — no matter how
// many goroutines ask concurrently — and caches its result. When fn
// fails, every in-flight caller receives the error and the key is
// forgotten so a subsequent Do retries.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*call[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	f.mu.Lock()
	if c.err != nil {
		delete(f.calls, key)
	}
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// Forget drops key from the cache so the next Do recomputes it. An
// in-flight computation is not interrupted: its callers still receive the
// result, but the key is re-executed by whoever asks after the Forget —
// the invalidation hook for caches whose values can go stale (e.g. a
// cached job that was later cancelled).
func (f *Flight[K, V]) Forget(key K) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
}

// Cached reports whether key currently holds a completed, successful
// result (an in-flight computation does not count).
func (f *Flight[K, V]) Cached(key K) bool {
	f.mu.Lock()
	c, ok := f.calls[key]
	f.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-c.done:
		return c.err == nil
	default:
		return false
	}
}
