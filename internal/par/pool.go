package par

import (
	"context"
	"errors"
	"sync"
)

// Pool errors.
var (
	// ErrPoolClosed reports a Submit after Close or Drain.
	ErrPoolClosed = errors.New("par: pool is closed")
	// ErrPoolFull reports a Submit that found the queue at capacity.
	ErrPoolFull = errors.New("par: pool queue is full")
)

// Pool is a long-lived bounded worker pool — the job-manager substrate of
// the service layer, as opposed to ForEach's one-shot fan-outs. Tasks are
// queued by Submit up to a fixed queue depth (admission control: a full
// queue rejects instead of blocking) and executed by a fixed set of
// workers in submission order. Every task receives the pool's context,
// which Close cancels, so in-flight work shuts down promptly on teardown;
// Drain instead lets queued and running tasks finish.
type Pool struct {
	tasks  chan func(context.Context)
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	queued  int
	running int
}

// NewPool starts workers goroutines servicing a queue of depth queue.
// workers <= 0 selects DefaultWorkers; queue <= 0 selects a queue as deep
// as the worker count.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if queue <= 0 {
		queue = workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		tasks:  make(chan func(context.Context), queue),
		ctx:    ctx,
		cancel: cancel,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.tasks {
		p.mu.Lock()
		p.queued--
		p.running++
		p.mu.Unlock()
		fn(p.ctx)
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// Submit enqueues fn without blocking. It returns ErrPoolFull when the
// queue is at capacity (the caller sheds load) and ErrPoolClosed after
// Close or Drain. fn must honour the context it receives: Close cancels
// it, and a task that ignores the cancellation stalls the teardown.
func (p *Pool) Submit(fn func(ctx context.Context)) error {
	if fn == nil {
		return errors.New("par: Submit needs a task")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		p.queued++
		return nil
	default:
		return ErrPoolFull
	}
}

// Queued returns the number of submitted-but-not-started tasks; Running
// the number currently executing.
func (p *Pool) Queued() int { p.mu.Lock(); defer p.mu.Unlock(); return p.queued }

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int { p.mu.Lock(); defer p.mu.Unlock(); return p.running }

// Drain stops accepting tasks, lets every queued and running task finish,
// and waits for the workers to exit. Safe to call more than once and
// concurrently with Close.
func (p *Pool) Drain() {
	p.shutdown(false)
}

// Close stops accepting tasks, cancels the pool context so running tasks
// abort promptly, and waits for the workers to exit. Queued tasks still
// execute, but with an already-cancelled context — a task that checks its
// context first thing turns into a cheap no-op.
func (p *Pool) Close() {
	p.shutdown(true)
}

func (p *Pool) shutdown(cancel bool) {
	p.mu.Lock()
	wasClosed := p.closed
	p.closed = true
	p.mu.Unlock()
	if cancel {
		p.cancel()
	}
	if !wasClosed {
		close(p.tasks)
	}
	p.wg.Wait()
}
