package par

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// Pool errors.
var (
	// ErrPoolClosed reports a Submit after Close or Drain. The error is a
	// sentinel, never a panic: submissions may race the shutdown freely
	// and the loser is told so instead of hitting a closed queue.
	ErrPoolClosed = errors.New("par: pool is closed")
	// ErrPoolFull reports a Submit that found the queue at capacity and
	// no queued task of strictly lower priority to displace.
	ErrPoolFull = errors.New("par: pool queue is full")
)

// Task is one unit of pool work plus its admission metadata.
type Task struct {
	// Run executes the task. It receives the pool's context, which Close
	// cancels; a task that ignores the cancellation stalls the teardown.
	Run func(ctx context.Context)
	// Priority orders dequeue: higher priorities run first, equal
	// priorities in submission order. It also orders shedding — a full
	// queue displaces its lowest-priority entry to admit a strictly
	// higher-priority submission.
	Priority int
	// Shed, if set, is invoked (on the displacing submitter's goroutine,
	// after the task has been removed from the queue) when the task is
	// evicted by a higher-priority submission. Run is never called for a
	// shed task.
	Shed func()
}

// queuedTask is a Task in the pool's priority queue.
type queuedTask struct {
	Task
	seq   int64 // submission order, FIFO within a priority
	index int   // heap index, for O(log n) removal on shed
}

// taskQueue is a max-heap on (priority, -seq): highest priority first,
// FIFO within equal priorities.
type taskQueue []*queuedTask

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q taskQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *taskQueue) Push(x any) {
	t := x.(*queuedTask)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *taskQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// Pool is a long-lived bounded worker pool — the job-manager substrate of
// the service layer, as opposed to ForEach's one-shot fan-outs. Tasks are
// queued by Submit/SubmitTask up to a fixed queue depth (admission
// control: a full queue rejects — or, for a higher-priority submission,
// sheds its lowest-priority queued task) and executed by a fixed set of
// workers, highest priority first and FIFO within a priority. Every task
// receives the pool's context, which Close cancels, so in-flight work
// shuts down promptly on teardown; Drain instead lets queued and running
// tasks finish.
type Pool struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond
	// depth is immutable after NewPool; everything below the mutex is
	// the admission state the workers and submitters race on.
	depth   int
	queue   taskQueue //teem:guards mu
	seq     int64     //teem:guards mu
	closed  bool      //teem:guards mu
	running int       //teem:guards mu
}

// NewPool starts workers goroutines servicing a queue of depth queue.
// workers <= 0 selects DefaultWorkers; queue <= 0 selects a queue as deep
// as the worker count.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if queue <= 0 {
		queue = workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		ctx:    ctx,
		cancel: cancel,
		depth:  queue,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			// Closed and drained: queued tasks always execute (Close
			// hands them a cancelled context), so an empty queue here
			// means there is nothing left to run.
			p.mu.Unlock()
			return
		}
		t := heap.Pop(&p.queue).(*queuedTask)
		p.running++
		p.mu.Unlock()
		t.Run(p.ctx)
		p.mu.Lock()
		p.running--
	}
}

// Submit enqueues fn at priority 0 without blocking. It returns
// ErrPoolFull when the queue is at capacity (the caller sheds load) and
// ErrPoolClosed after Close or Drain.
func (p *Pool) Submit(fn func(ctx context.Context)) error {
	return p.SubmitTask(Task{Run: fn})
}

// SubmitTask enqueues t without blocking. A full queue admits t only by
// displacing a queued task of strictly lower priority (the lowest, newest
// first; its Shed hook is invoked and its Run never happens) — otherwise
// ErrPoolFull. After Close or Drain every submission returns
// ErrPoolClosed; the closed state is checked under the same lock as the
// queue, so a submission racing the shutdown gets the sentinel, never a
// panic.
func (p *Pool) SubmitTask(t Task) error {
	if t.Run == nil {
		return errors.New("par: Submit needs a task")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	var victim *queuedTask
	if len(p.queue) >= p.depth {
		vi := -1
		for i, c := range p.queue {
			if c.Priority >= t.Priority {
				continue
			}
			// Shed the lowest priority; within it, the newest entry, so
			// the oldest admitted work keeps its place.
			if vi < 0 || c.Priority < p.queue[vi].Priority ||
				(c.Priority == p.queue[vi].Priority && c.seq > p.queue[vi].seq) {
				vi = i
			}
		}
		if vi < 0 {
			p.mu.Unlock()
			return ErrPoolFull
		}
		victim = p.queue[vi]
		heap.Remove(&p.queue, vi)
	}
	p.seq++
	heap.Push(&p.queue, &queuedTask{Task: t, seq: p.seq})
	p.cond.Signal()
	p.mu.Unlock()
	if victim != nil && victim.Shed != nil {
		victim.Shed()
	}
	return nil
}

// Queued returns the number of submitted-but-not-started tasks.
func (p *Pool) Queued() int { p.mu.Lock(); defer p.mu.Unlock(); return len(p.queue) }

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int { p.mu.Lock(); defer p.mu.Unlock(); return p.running }

// Drain stops accepting tasks, lets every queued and running task finish,
// and waits for the workers to exit. Safe to call more than once and
// concurrently with Close.
func (p *Pool) Drain() {
	p.shutdown(false)
}

// Close stops accepting tasks, cancels the pool context so running tasks
// abort promptly, and waits for the workers to exit. Queued tasks still
// execute, but with an already-cancelled context — a task that checks its
// context first thing turns into a cheap no-op.
func (p *Pool) Close() {
	p.shutdown(true)
}

func (p *Pool) shutdown(cancel bool) {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	if cancel {
		p.cancel()
	}
	p.wg.Wait()
}
