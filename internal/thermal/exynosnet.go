package thermal

// Exynos5422Network returns the lumped RC topology calibrated for the
// Exynos 5422 die as mounted on the Odroid-XU4 (PoP DRAM stacked on the
// SoC, small heatsink with fan).
//
// Node 0: A15 big cluster, node 1: A7 LITTLE cluster, node 2: Mali-T628
// GPU, node 3: package/substrate (also receives DRAM and regulator heat).
//
// Calibration targets (with the power model of internal/power, COVARIANCE
// -class load: 3 big cores + GPU + 2 LITTLE cores, ambient 28 °C):
//
//   - big at 2000 MHz: steady state well above the 95 °C trip (~105 °C),
//     so sustained max frequency is impossible — the paper's Fig. 1(a);
//   - big at 1400 MHz: steady ≈ 85 °C — why 1400 MHz is TEEM's floor;
//   - big at 900 MHz (throttled): steady ≈ 75–80 °C, so a throttled chip
//     cools below the 90 °C release point and the ondemand sawtooth forms;
//   - GPU at 600 MHz: ≈ 75–85 °C, never tripping on its own.
func Exynos5422Network() *Network {
	return &Network{
		Nodes: []Node{
			{Name: "A15", HeatCapJ: 1.2},
			{Name: "A7", HeatCapJ: 0.6},
			{Name: "MaliT628", HeatCapJ: 1.5},
			{Name: "pkg", HeatCapJ: 1.5},
		},
		Links: []Link{
			{A: 0, B: 3, ResCW: 4.5}, // A15 → pkg
			{A: 1, B: 3, ResCW: 5.0}, // A7 → pkg
			{A: 2, B: 3, ResCW: 3.0}, // Mali → pkg
			{A: 3, B: Ambient, ResCW: 8.2},
			{A: 0, B: Ambient, ResCW: 60.0}, // local spreading above big
			{A: 2, B: Ambient, ResCW: 80.0}, // local spreading above GPU
			{A: 0, B: 2, ResCW: 15.0},       // big–GPU die adjacency
		},
	}
}

// Exynos5410Network returns the lumped RC topology for the Exynos 5410
// as mounted on the original Odroid-XU (smaller die, PowerVR SGX544
// GPU, fan-cooled like its successor but with a slightly better
// package-to-ambient path from the taller sink).
//
// Node names match the soc.Exynos5410 cluster names (A15, A7, SGX544)
// plus the required "pkg" node. Calibration intent, with the power model
// of internal/power at ambient 28 °C:
//
//   - big at 1600 MHz sustained: steady well above the 90 °C trip, so
//     the 5410's notoriously hot firmware behaviour reproduces;
//   - throttled at 800 MHz: steady ≈ 72–76 °C, safely below the 83 °C
//     release point, so hardware protection always recovers.
func Exynos5410Network() *Network {
	return &Network{
		Nodes: []Node{
			{Name: "A15", HeatCapJ: 1.1},
			{Name: "A7", HeatCapJ: 0.55},
			{Name: "SGX544", HeatCapJ: 1.0},
			{Name: "pkg", HeatCapJ: 1.4},
		},
		Links: []Link{
			{A: 0, B: 3, ResCW: 4.8}, // A15 → pkg
			{A: 1, B: 3, ResCW: 5.2}, // A7 → pkg
			{A: 2, B: 3, ResCW: 3.4}, // SGX544 → pkg
			{A: 3, B: Ambient, ResCW: 7.5},
			{A: 0, B: Ambient, ResCW: 65.0}, // local spreading above big
			{A: 2, B: Ambient, ResCW: 85.0}, // local spreading above GPU
			{A: 0, B: 2, ResCW: 16.0},       // big–GPU die adjacency
		},
	}
}
