package thermal

import (
	"encoding/json"
	"fmt"
	"io"
)

// Thermal topologies serialise like platforms: custom RC networks can be
// defined in JSON files and loaded at runtime instead of recompiled.

type jsonNode struct {
	Name     string  `json:"name"`
	HeatCapJ float64 `json:"heat_cap_j"`
}

type jsonLink struct {
	// A and B name nodes; B == "ambient" couples A to the boundary.
	A     string  `json:"a"`
	B     string  `json:"b"`
	ResCW float64 `json:"res_cw"`
}

type jsonNetwork struct {
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

// Save writes the network as indented JSON with name-based link endpoints.
func (n *Network) Save(w io.Writer) error {
	if err := n.Validate(); err != nil {
		return err
	}
	jn := jsonNetwork{}
	for _, nd := range n.Nodes {
		jn.Nodes = append(jn.Nodes, jsonNode{Name: nd.Name, HeatCapJ: nd.HeatCapJ})
	}
	for _, l := range n.Links {
		b := "ambient"
		if l.B != Ambient {
			b = n.Nodes[l.B].Name
		}
		jn.Links = append(jn.Links, jsonLink{A: n.Nodes[l.A].Name, B: b, ResCW: l.ResCW})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jn)
}

// LoadNetwork reads and validates an RC network from JSON.
func LoadNetwork(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("thermal: decoding network: %w", err)
	}
	n := &Network{}
	index := map[string]int{}
	for i, nd := range jn.Nodes {
		n.Nodes = append(n.Nodes, Node{Name: nd.Name, HeatCapJ: nd.HeatCapJ})
		index[nd.Name] = i
	}
	for _, l := range jn.Links {
		a, ok := index[l.A]
		if !ok {
			return nil, fmt.Errorf("thermal: link endpoint %q is not a node", l.A)
		}
		b := Ambient
		if l.B != "ambient" {
			bi, ok := index[l.B]
			if !ok {
				return nil, fmt.Errorf("thermal: link endpoint %q is not a node", l.B)
			}
			b = bi
		}
		n.Links = append(n.Links, Link{A: a, B: b, ResCW: l.ResCW})
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
