package thermal

import (
	"encoding/json"
	"fmt"
	"io"
)

// Thermal topologies serialise like platforms: custom RC networks can be
// defined in JSON files and loaded at runtime instead of recompiled.

type jsonNode struct {
	Name     string  `json:"name"`
	HeatCapJ float64 `json:"heat_cap_j"`
}

type jsonLink struct {
	// A and B name nodes; B == "ambient" couples A to the boundary.
	A     string  `json:"a"`
	B     string  `json:"b"`
	ResCW float64 `json:"res_cw"`
}

type jsonNetwork struct {
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

// toJSON converts the network to its wire mirror. Link endpoints are
// emitted by node name so the format is robust to reordering.
func (n *Network) toJSON() jsonNetwork {
	jn := jsonNetwork{}
	for _, nd := range n.Nodes {
		jn.Nodes = append(jn.Nodes, jsonNode{Name: nd.Name, HeatCapJ: nd.HeatCapJ})
	}
	for _, l := range n.Links {
		b := "ambient"
		if l.B != Ambient {
			b = n.Nodes[l.B].Name
		}
		jn.Links = append(jn.Links, jsonLink{A: n.Nodes[l.A].Name, B: b, ResCW: l.ResCW})
	}
	return jn
}

// networkFromJSON converts the wire mirror back into a Network without
// validating it — LoadNetwork validates immediately, a platform bundle
// validates the assembled pair.
func networkFromJSON(jn jsonNetwork) (*Network, error) {
	n := &Network{}
	index := map[string]int{}
	for i, nd := range jn.Nodes {
		n.Nodes = append(n.Nodes, Node{Name: nd.Name, HeatCapJ: nd.HeatCapJ})
		index[nd.Name] = i
	}
	for _, l := range jn.Links {
		a, ok := index[l.A]
		if !ok {
			return nil, fmt.Errorf("thermal: link endpoint %q is not a node", l.A)
		}
		b := Ambient
		if l.B != "ambient" {
			bi, ok := index[l.B]
			if !ok {
				return nil, fmt.Errorf("thermal: link endpoint %q is not a node", l.B)
			}
			b = bi
		}
		n.Links = append(n.Links, Link{A: a, B: b, ResCW: l.ResCW})
	}
	return n, nil
}

// MarshalJSON encodes the network through the same schema Save writes, so
// a network nests inside larger JSON documents (the platform catalog's
// bundle files). It performs no validation — Save does.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.toJSON())
}

// UnmarshalJSON decodes the Save/LoadNetwork schema. Like MarshalJSON it
// is a pure codec: run Validate (or LoadNetwork) on untrusted input.
func (n *Network) UnmarshalJSON(data []byte) error {
	var jn jsonNetwork
	if err := json.Unmarshal(data, &jn); err != nil {
		return fmt.Errorf("thermal: decoding network: %w", err)
	}
	nn, err := networkFromJSON(jn)
	if err != nil {
		return err
	}
	*n = *nn
	return nil
}

// Save writes the network as indented JSON with name-based link endpoints.
func (n *Network) Save(w io.Writer) error {
	if err := n.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n.toJSON())
}

// LoadNetwork reads and validates an RC network from JSON.
func LoadNetwork(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("thermal: decoding network: %w", err)
	}
	n, err := networkFromJSON(jn)
	if err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
