package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// randomNetwork builds a random valid RC topology: n nodes in [1,8], a
// random spanning set of node-node links plus at least one ambient link,
// with heat capacities and resistances spanning two orders of magnitude.
func randomNetwork(rng *rand.Rand) *Network {
	n := 1 + rng.Intn(8)
	net := &Network{Nodes: make([]Node, n)}
	for i := range net.Nodes {
		net.Nodes[i] = Node{
			Name:     string(rune('a' + i)),
			HeatCapJ: 0.1 + 5*rng.Float64(),
		}
	}
	// Chain the nodes so the network is connected, then sprinkle extra
	// links and ambient couplings.
	for i := 1; i < n; i++ {
		net.Links = append(net.Links, Link{A: i - 1, B: i, ResCW: 0.5 + 20*rng.Float64()})
	}
	for i := 0; i < n; i++ {
		if i == 0 || rng.Float64() < 0.4 {
			net.Links = append(net.Links, Link{A: i, B: Ambient, ResCW: 1 + 50*rng.Float64()})
		}
	}
	extra := rng.Intn(n + 1)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			net.Links = append(net.Links, Link{A: i, B: j, ResCW: 0.5 + 30*rng.Float64()})
		}
	}
	return net
}

func randomPowers(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 8 * rng.Float64()
	}
	return p
}

// Property: the exact stepper agrees with a finely substepped Euler
// reference within 0.01 °C across randomized networks, topologies and
// piecewise-constant power steps.
func TestStepperMatchesEulerReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		dt    = 0.01
		ticks = 200
		// Euler reference substep divisor: each stepper tick is
		// matched by refDiv explicit-Euler micro-steps.
		refDiv = 400
	)
	for trial := 0; trial < 60; trial++ {
		net := randomNetwork(rng)
		amb := 20 + 20*rng.Float64()
		exact, err := NewModel(net, amb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := NewModel(net, amb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		st, err := exact.NewStepper(dt)
		if err != nil {
			t.Fatalf("trial %d: NewStepper: %v", trial, err)
		}
		p := randomPowers(rng, len(net.Nodes))
		for k := 0; k < ticks; k++ {
			// Re-randomise the power a few times so the property
			// covers power steps, not just one transient.
			if k%50 == 49 {
				p = randomPowers(rng, len(net.Nodes))
			}
			if err := st.Step(p); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for s := 0; s < refDiv; s++ {
				if err := ref.Step(p, dt/refDiv); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		}
		for i := range net.Nodes {
			if d := math.Abs(exact.Temp(i) - ref.Temp(i)); d > 0.01 {
				t.Errorf("trial %d (%d nodes): node %d exact %.4f vs Euler %.4f (Δ=%.4f °C)",
					trial, len(net.Nodes), i, exact.Temp(i), ref.Temp(i), d)
			}
		}
	}
}

// Property: under constant power the stepper converges to the direct
// steady-state solution.
func TestStepperConvergesToSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		net := randomNetwork(rng)
		m, err := NewModel(net, 25)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The propagator is exact for any fixed step, so a coarse
		// 5 s step covers the slowest random topologies (chains with
		// a single ambient link have time constants of ~1000 s).
		st, err := m.NewStepper(5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p := randomPowers(rng, len(net.Nodes))
		want, err := m.SteadyState(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prev := m.Temps()
		for k := 0; k < 40000; k++ {
			if err := st.Step(p); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if k%200 == 199 {
				settled := true
				for i, v := range m.Temps() {
					if math.Abs(v-prev[i]) > 1e-9 {
						settled = false
					}
					prev[i] = v
				}
				if settled {
					break
				}
			}
		}
		for i := range want {
			if d := math.Abs(m.Temp(i) - want[i]); d > 0.01 {
				t.Errorf("trial %d: node %d settled at %.4f, steady state %.4f (Δ=%.4f)",
					trial, i, m.Temp(i), want[i], d)
			}
		}
	}
}

// The stepper must honour mid-run ambient changes exactly like the
// reference integrator (the adaptation scenario of the facade).
func TestStepperTracksAmbientChange(t *testing.T) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	m.SetAmbientC(45)
	p := []float64{0, 0, 0, 0}
	for k := 0; k < 200000; k++ {
		if err := st.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if d := math.Abs(m.Temp(i) - 45); d > 0.01 {
			t.Errorf("node %d settled at %.3f after ambient change, want 45", i, m.Temp(i))
		}
	}
}

func TestStepperValidation(t *testing.T) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewStepper(0); err == nil {
		t.Error("NewStepper should reject a zero step")
	}
	if _, err := m.NewStepper(-1); err == nil {
		t.Error("NewStepper should reject a negative step")
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Step([]float64{1, 2}); err == nil {
		t.Error("Step should reject a wrong-length power vector")
	}
	if st.Dt() != 0.01 {
		t.Errorf("Dt() = %g, want 0.01", st.Dt())
	}
}

// Allocation-regression guards: the hot-path integrators must not touch
// the heap.
func TestStepperStepZeroAllocs(t *testing.T) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	if avg := testing.AllocsPerRun(1000, func() {
		if err := st.Step(p); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Stepper.Step allocates %.2f objects/op, want 0", avg)
	}
}

func TestModelStepZeroAllocs(t *testing.T) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	if avg := testing.AllocsPerRun(1000, func() {
		if err := m.Step(p, 0.01); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Model.Step allocates %.2f objects/op, want 0", avg)
	}
}

// solveLinear's singularity test must be scale-relative: uniformly scaling
// a well-conditioned system must not flip it between singular and
// non-singular, and the solution must scale correctly.
func TestSolveLinearScaleInvariance(t *testing.T) {
	base := Exynos5422Network()
	for _, scale := range []float64{1e-9, 1e-6, 1, 1e6, 1e9} {
		net := &Network{Nodes: append([]Node(nil), base.Nodes...)}
		for _, l := range base.Links {
			// Scaling all resistances by 1/scale scales the
			// conductance matrix by scale.
			net.Links = append(net.Links, Link{A: l.A, B: l.B, ResCW: l.ResCW / scale})
		}
		m, err := NewModel(net, 28)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		// Scale the injected power too, so temperatures match the
		// unscaled reference exactly.
		p := []float64{4.5 * scale, 0.4 * scale, 2.6 * scale, 1.85 * scale}
		got, err := m.SteadyState(p)
		if err != nil {
			t.Fatalf("scale %g: SteadyState: %v", scale, err)
		}
		ref, _ := NewModel(base, 28)
		want, err := ref.SteadyState([]float64{4.5, 0.4, 2.6, 1.85})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Errorf("scale %g: node %d = %.6f, want %.6f", scale, i, got[i], want[i])
			}
		}
	}
}

// A genuinely singular system (no ambient path reachable in the matrix
// sense) must still be rejected regardless of magnitude. Two disconnected
// nodes where only one is grounded make the Laplacian singular in exact
// arithmetic only if the ungrounded one has no links at all — build that.
func TestSolveLinearRejectsSingular(t *testing.T) {
	a := []float64{
		1, 2,
		2, 4, // rank 1
	}
	b := []float64{1, 2}
	if err := solveLinear(a, b, 2); err == nil {
		t.Error("solveLinear accepted a rank-deficient matrix")
	}
	a2 := []float64{
		1e-30, 2e-30,
		2e-30, 4e-30,
	}
	if err := solveLinear(a2, []float64{1, 2}, 2); err == nil {
		t.Error("solveLinear accepted a tiny rank-deficient matrix")
	}
}
