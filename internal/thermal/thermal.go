// Package thermal models on-die temperature with a lumped RC network: one
// node per heat source (CPU clusters, GPU, SoC package) connected by
// thermal resistances, with the ambient as a fixed-temperature boundary.
//
// The integrator is explicit Euler with automatic substepping (stable for
// any step because substeps are chosen well below the smallest node time
// constant); a direct linear steady-state solver cross-checks it and powers
// calibration tests. Sensors mimic the Exynos TMU: per-node readings with
// optional 1 °C quantisation.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Node is one lumped thermal mass.
type Node struct {
	// Name identifies the node, e.g. "A15", "MaliT628", "pkg".
	Name string
	// HeatCapJ is the heat capacity in joules per °C.
	HeatCapJ float64
}

// Link is a thermal resistance between two nodes, or between a node and the
// ambient boundary when B < 0.
type Link struct {
	// A and B index Network.Nodes; B == Ambient (-1) couples A to the
	// fixed ambient temperature.
	A, B int
	// ResCW is the thermal resistance in °C per watt.
	ResCW float64
}

// Ambient is the pseudo-index of the fixed-temperature ambient boundary.
const Ambient = -1

// Network describes the RC topology.
type Network struct {
	Nodes []Node
	Links []Link
}

// Validate reports an error on malformed topologies.
func (n *Network) Validate() error {
	if len(n.Nodes) == 0 {
		return errors.New("thermal: network has no nodes")
	}
	seen := make(map[string]bool, len(n.Nodes))
	for i, nd := range n.Nodes {
		if nd.Name == "" {
			return fmt.Errorf("thermal: node %d has empty name", i)
		}
		if seen[nd.Name] {
			return fmt.Errorf("thermal: duplicate node name %q", nd.Name)
		}
		seen[nd.Name] = true
		if nd.HeatCapJ <= 0 {
			return fmt.Errorf("thermal: node %q has non-positive heat capacity", nd.Name)
		}
	}
	grounded := false
	for i, l := range n.Links {
		if l.A < 0 || l.A >= len(n.Nodes) {
			return fmt.Errorf("thermal: link %d endpoint A out of range", i)
		}
		if l.B != Ambient && (l.B < 0 || l.B >= len(n.Nodes)) {
			return fmt.Errorf("thermal: link %d endpoint B out of range", i)
		}
		if l.A == l.B {
			return fmt.Errorf("thermal: link %d is a self loop", i)
		}
		if l.ResCW <= 0 {
			return fmt.Errorf("thermal: link %d has non-positive resistance", i)
		}
		if l.B == Ambient {
			grounded = true
		}
	}
	if !grounded {
		return errors.New("thermal: no link to ambient; temperatures would diverge")
	}
	return nil
}

// NodeIndex returns the index of the named node, or -1.
func (n *Network) NodeIndex(name string) int {
	for i := range n.Nodes {
		if n.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Model integrates node temperatures over time.
type Model struct {
	net      *Network
	ambientC float64
	temps    []float64
	// conductance matrix: g[i][j] = 1/R between i and j; gAmb[i] to
	// ambient. Precomputed from links.
	g    [][]float64
	gAmb []float64
	// maxSubstep is the largest stable Euler step (s).
	maxSubstep float64
}

// NewModel builds a model with every node starting at ambient temperature.
func NewModel(net *Network, ambientC float64) (*Model, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	n := len(net.Nodes)
	m := &Model{
		net:      net,
		ambientC: ambientC,
		temps:    make([]float64, n),
		g:        make([][]float64, n),
		gAmb:     make([]float64, n),
	}
	for i := range m.g {
		m.g[i] = make([]float64, n)
	}
	for _, l := range net.Links {
		c := 1 / l.ResCW
		if l.B == Ambient {
			m.gAmb[l.A] += c
		} else {
			m.g[l.A][l.B] += c
			m.g[l.B][l.A] += c
		}
	}
	// Stability: explicit Euler needs dt < C_i / Σg_i for every node;
	// use a 5x margin.
	minTau := math.Inf(1)
	for i := range net.Nodes {
		sum := m.gAmb[i]
		for j := range net.Nodes {
			sum += m.g[i][j]
		}
		if sum > 0 {
			if tau := net.Nodes[i].HeatCapJ / sum; tau < minTau {
				minTau = tau
			}
		}
	}
	m.maxSubstep = minTau / 5
	for i := range m.temps {
		m.temps[i] = ambientC
	}
	return m, nil
}

// Network returns the model topology.
func (m *Model) Network() *Network { return m.net }

// AmbientC returns the boundary temperature.
func (m *Model) AmbientC() float64 { return m.ambientC }

// SetAmbientC changes the boundary temperature (e.g. to model the device
// moving into sunlight); node temperatures are unaffected until stepped.
func (m *Model) SetAmbientC(t float64) { m.ambientC = t }

// Temps returns a copy of the current node temperatures in °C.
func (m *Model) Temps() []float64 { return append([]float64(nil), m.temps...) }

// Temp returns the temperature of node i.
func (m *Model) Temp(i int) float64 { return m.temps[i] }

// SetTemps overwrites the state (e.g. to start a scenario pre-heated).
func (m *Model) SetTemps(t []float64) error {
	if len(t) != len(m.temps) {
		return fmt.Errorf("thermal: SetTemps got %d values, want %d", len(t), len(m.temps))
	}
	copy(m.temps, t)
	return nil
}

// Reset returns all nodes to ambient.
func (m *Model) Reset() {
	for i := range m.temps {
		m.temps[i] = m.ambientC
	}
}

// Step advances the model by dt seconds with the given per-node power
// injection in watts.
func (m *Model) Step(powerW []float64, dt float64) error {
	if len(powerW) != len(m.temps) {
		return fmt.Errorf("thermal: Step got %d powers, want %d", len(powerW), len(m.temps))
	}
	if dt < 0 {
		return errors.New("thermal: negative time step")
	}
	remaining := dt
	for remaining > 1e-12 {
		h := m.maxSubstep
		if h > remaining {
			h = remaining
		}
		m.eulerStep(powerW, h)
		remaining -= h
	}
	return nil
}

func (m *Model) eulerStep(powerW []float64, h float64) {
	n := len(m.temps)
	next := make([]float64, n)
	for i := 0; i < n; i++ {
		q := powerW[i]
		q += m.gAmb[i] * (m.ambientC - m.temps[i])
		for j := 0; j < n; j++ {
			if g := m.g[i][j]; g != 0 {
				q += g * (m.temps[j] - m.temps[i])
			}
		}
		next[i] = m.temps[i] + h*q/m.net.Nodes[i].HeatCapJ
	}
	copy(m.temps, next)
}

// SteadyState solves the equilibrium temperatures for constant power
// injection without touching the model state.
func (m *Model) SteadyState(powerW []float64) ([]float64, error) {
	n := len(m.temps)
	if len(powerW) != n {
		return nil, fmt.Errorf("thermal: SteadyState got %d powers, want %d", len(powerW), n)
	}
	// G · T = P + gAmb·Tamb, where G is the conductance Laplacian plus
	// ambient conductances on the diagonal.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		diag := m.gAmb[i]
		for j := 0; j < n; j++ {
			if i != j {
				a[i][j] = -m.g[i][j]
				diag += m.g[i][j]
			}
		}
		a[i][i] = diag
		b[i] = powerW[i] + m.gAmb[i]*m.ambientC
	}
	t, err := solveLinear(a, b)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// The inputs are mutated.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-15 {
			return nil, errors.New("thermal: singular conductance matrix")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// Sensor reads one node's temperature the way firmware sees it.
type Sensor struct {
	// Node indexes the network node the sensor is attached to.
	Node int
	// QuantizeC rounds readings down to multiples of this many °C;
	// 0 disables quantisation. The Exynos TMU reports whole degrees.
	QuantizeC float64
	// OffsetC is a calibration offset added to readings.
	OffsetC float64
}

// Read returns the sensor value for the given model.
func (s Sensor) Read(m *Model) float64 {
	t := m.Temp(s.Node) + s.OffsetC
	if s.QuantizeC > 0 {
		t = math.Floor(t/s.QuantizeC) * s.QuantizeC
	}
	return t
}
