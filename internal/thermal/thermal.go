// Package thermal models on-die temperature with a lumped RC network: one
// node per heat source (CPU clusters, GPU, SoC package) connected by
// thermal resistances, with the ambient as a fixed-temperature boundary.
//
// Two integrators are available. Model.Step is explicit Euler with
// automatic substepping (stable for any step because substeps are chosen
// well below the smallest node time constant) and serves as the reference
// integrator and the path for non-uniform steps. Stepper precomputes the
// exact discrete-time propagator for a fixed step — the lumped system is
// linear time-invariant within a control interval, so one matrix-vector
// product per tick replaces the substep loop with zero error and zero heap
// allocations. A direct linear steady-state solver cross-checks both and
// powers calibration tests. Sensors mimic the Exynos TMU: per-node
// readings with optional 1 °C quantisation.
//
// Superstep extends the exact propagator to whole intervals: when the
// injected power is affine in temperature (a constant operating point
// with its leakage slope folded into the map), n ticks collapse to one
// affine application T[k+n] = Ãⁿ·T[k] + Sₙ·b̃ with power-of-two jump
// blocks cached per (system, dt, slope). Because Ã is entrywise
// non-negative, the trajectory direction of the first tick holds for
// the whole jump, which lets callers check interior constraints from
// the endpoints alone. See docs/integrators.md for the contract.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Node is one lumped thermal mass.
type Node struct {
	// Name identifies the node, e.g. "A15", "MaliT628", "pkg".
	Name string
	// HeatCapJ is the heat capacity in joules per °C.
	HeatCapJ float64
}

// Link is a thermal resistance between two nodes, or between a node and the
// ambient boundary when B < 0.
type Link struct {
	// A and B index Network.Nodes; B == Ambient (-1) couples A to the
	// fixed ambient temperature.
	A, B int
	// ResCW is the thermal resistance in °C per watt.
	ResCW float64
}

// Ambient is the pseudo-index of the fixed-temperature ambient boundary.
const Ambient = -1

// Network describes the RC topology.
type Network struct {
	Nodes []Node
	Links []Link
}

// Validate reports an error on malformed topologies.
func (n *Network) Validate() error {
	if len(n.Nodes) == 0 {
		return errors.New("thermal: network has no nodes")
	}
	seen := make(map[string]bool, len(n.Nodes))
	for i, nd := range n.Nodes {
		if nd.Name == "" {
			return fmt.Errorf("thermal: node %d has empty name", i)
		}
		if seen[nd.Name] {
			return fmt.Errorf("thermal: duplicate node name %q", nd.Name)
		}
		seen[nd.Name] = true
		if nd.HeatCapJ <= 0 {
			return fmt.Errorf("thermal: node %q has non-positive heat capacity", nd.Name)
		}
	}
	grounded := false
	for i, l := range n.Links {
		if l.A < 0 || l.A >= len(n.Nodes) {
			return fmt.Errorf("thermal: link %d endpoint A out of range", i)
		}
		if l.B != Ambient && (l.B < 0 || l.B >= len(n.Nodes)) {
			return fmt.Errorf("thermal: link %d endpoint B out of range", i)
		}
		if l.A == l.B {
			return fmt.Errorf("thermal: link %d is a self loop", i)
		}
		if l.ResCW <= 0 {
			return fmt.Errorf("thermal: link %d has non-positive resistance", i)
		}
		if l.B == Ambient {
			grounded = true
		}
	}
	if !grounded {
		return errors.New("thermal: no link to ambient; temperatures would diverge")
	}
	return nil
}

// NodeIndex returns the index of the named node, or -1.
func (n *Network) NodeIndex(name string) int {
	for i := range n.Nodes {
		if n.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Model integrates node temperatures over time.
type Model struct {
	net      *Network
	ambientC float64
	temps    []float64
	n        int
	// Conductance matrix, flat row-major: g[i*n+j] = 1/R between i and
	// j; gAmb[i] to ambient. Precomputed from links.
	g    []float64
	gAmb []float64
	// invC[i] = 1 / Nodes[i].HeatCapJ.
	invC []float64
	// CSR-style neighbour list over the non-zero off-diagonal
	// conductances, for the sparse Euler inner loop.
	nbrStart []int32
	nbrIdx   []int32
	nbrG     []float64
	// maxSubstep is the largest stable Euler step (s).
	maxSubstep float64
	// scratch holds the next-state vector during a substep.
	scratch []float64
}

// NewModel builds a model with every node starting at ambient temperature.
func NewModel(net *Network, ambientC float64) (*Model, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	n := len(net.Nodes)
	m := &Model{
		net:      net,
		ambientC: ambientC,
		temps:    make([]float64, n),
		n:        n,
		g:        make([]float64, n*n),
		gAmb:     make([]float64, n),
		invC:     make([]float64, n),
		scratch:  make([]float64, n),
	}
	for _, l := range net.Links {
		c := 1 / l.ResCW
		if l.B == Ambient {
			m.gAmb[l.A] += c
		} else {
			m.g[l.A*n+l.B] += c
			m.g[l.B*n+l.A] += c
		}
	}
	m.nbrStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		m.nbrStart[i] = int32(len(m.nbrIdx))
		for j := 0; j < n; j++ {
			if g := m.g[i*n+j]; g != 0 {
				m.nbrIdx = append(m.nbrIdx, int32(j))
				m.nbrG = append(m.nbrG, g)
			}
		}
	}
	m.nbrStart[n] = int32(len(m.nbrIdx))
	// Stability: explicit Euler needs dt < C_i / Σg_i for every node;
	// use a 5x margin.
	minTau := math.Inf(1)
	for i := range net.Nodes {
		sum := m.gAmb[i]
		for j := 0; j < n; j++ {
			sum += m.g[i*n+j]
		}
		if sum > 0 {
			if tau := net.Nodes[i].HeatCapJ / sum; tau < minTau {
				minTau = tau
			}
		}
		m.invC[i] = 1 / net.Nodes[i].HeatCapJ
	}
	m.maxSubstep = minTau / 5
	for i := range m.temps {
		m.temps[i] = ambientC
	}
	return m, nil
}

// Network returns the model topology.
func (m *Model) Network() *Network { return m.net }

// AmbientC returns the boundary temperature.
func (m *Model) AmbientC() float64 { return m.ambientC }

// SetAmbientC changes the boundary temperature (e.g. to model the device
// moving into sunlight); node temperatures are unaffected until stepped.
func (m *Model) SetAmbientC(t float64) { m.ambientC = t }

// Temps returns a copy of the current node temperatures in °C.
func (m *Model) Temps() []float64 { return append([]float64(nil), m.temps...) }

// CopyTemps copies the current node temperatures into dst without
// allocating and returns the number of values copied.
func (m *Model) CopyTemps(dst []float64) int { return copy(dst, m.temps) }

// Temp returns the temperature of node i.
func (m *Model) Temp(i int) float64 { return m.temps[i] }

// SetTemps overwrites the state (e.g. to start a scenario pre-heated).
func (m *Model) SetTemps(t []float64) error {
	if len(t) != len(m.temps) {
		return fmt.Errorf("thermal: SetTemps got %d values, want %d", len(t), len(m.temps))
	}
	copy(m.temps, t)
	return nil
}

// Reset returns all nodes to ambient.
func (m *Model) Reset() {
	for i := range m.temps {
		m.temps[i] = m.ambientC
	}
}

// Step advances the model by dt seconds with the given per-node power
// injection in watts, using substepped explicit Euler. It performs no heap
// allocations. For a fixed dt the exact Stepper is both faster and more
// accurate; Step remains the reference integrator and handles non-uniform
// steps.
//
//teem:hotpath
func (m *Model) Step(powerW []float64, dt float64) error {
	if len(powerW) != len(m.temps) {
		return fmt.Errorf("thermal: Step got %d powers, want %d", len(powerW), len(m.temps))
	}
	if dt < 0 {
		return errors.New("thermal: negative time step")
	}
	remaining := dt
	for remaining > 1e-12 {
		h := m.maxSubstep
		if h > remaining {
			h = remaining
		}
		m.eulerStep(powerW, h)
		remaining -= h
	}
	return nil
}

//teem:hotpath
func (m *Model) eulerStep(powerW []float64, h float64) {
	for i := 0; i < m.n; i++ {
		ti := m.temps[i]
		q := powerW[i] + m.gAmb[i]*(m.ambientC-ti)
		for k := m.nbrStart[i]; k < m.nbrStart[i+1]; k++ {
			q += m.nbrG[k] * (m.temps[m.nbrIdx[k]] - ti)
		}
		m.scratch[i] = ti + h*q*m.invC[i]
	}
	copy(m.temps, m.scratch)
}

// laplacian writes the conductance Laplacian (off-diagonal −g[i][j],
// diagonal gAmb[i]+Σ_j g[i][j]) into dst, a flat row-major n×n slice.
func (m *Model) laplacian(dst []float64) {
	n := m.n
	for i := 0; i < n; i++ {
		diag := m.gAmb[i]
		for j := 0; j < n; j++ {
			if i != j {
				dst[i*n+j] = -m.g[i*n+j]
				diag += m.g[i*n+j]
			}
		}
		dst[i*n+i] = diag
	}
}

// SteadyState solves the equilibrium temperatures for constant power
// injection without touching the model state.
func (m *Model) SteadyState(powerW []float64) ([]float64, error) {
	n := m.n
	if len(powerW) != n {
		return nil, fmt.Errorf("thermal: SteadyState got %d powers, want %d", len(powerW), n)
	}
	// G · T = P + gAmb·Tamb, where G is the conductance Laplacian plus
	// ambient conductances on the diagonal.
	a := make([]float64, n*n)
	b := make([]float64, n)
	m.laplacian(a)
	for i := 0; i < n; i++ {
		b[i] = powerW[i] + m.gAmb[i]*m.ambientC
	}
	if err := solveLinear(a, b, n); err != nil {
		return nil, err
	}
	return b, nil
}

// solveLinear solves a·x = b in place by Gaussian elimination with partial
// pivoting; a is flat row-major n×n and b receives the solution. The
// singularity test is relative to the matrix magnitude (a pivot below
// 1e-12 × ‖A‖∞ counts as zero), so uniformly large conductance matrices
// don't false-pass and uniformly tiny ones don't false-fail.
func solveLinear(a, b []float64, n int) error {
	anorm := 0.0
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			row += math.Abs(a[i*n+j])
		}
		if row > anorm {
			anorm = row
		}
	}
	if anorm == 0 {
		return errors.New("thermal: singular conductance matrix")
	}
	tol := 1e-12 * anorm
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[piv*n+col]) {
				piv = r
			}
		}
		if math.Abs(a[piv*n+col]) < tol {
			return errors.New("thermal: singular conductance matrix")
		}
		if piv != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[piv*n+c] = a[piv*n+c], a[col*n+c]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] / a[col*n+col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}

// Sensor reads one node's temperature the way firmware sees it.
type Sensor struct {
	// Node indexes the network node the sensor is attached to.
	Node int
	// QuantizeC rounds readings down to multiples of this many °C;
	// 0 disables quantisation. The Exynos TMU reports whole degrees.
	QuantizeC float64
	// OffsetC is a calibration offset added to readings.
	OffsetC float64
}

// Read returns the sensor value for the given model.
func (s Sensor) Read(m *Model) float64 {
	t := m.Temp(s.Node) + s.OffsetC
	if s.QuantizeC > 0 {
		t = math.Floor(t/s.QuantizeC) * s.QuantizeC
	}
	return t
}
