package thermal

import "testing"

// BenchmarkStep measures one 10 ms simulation step of the Exynos network
// (the inner loop of every co-simulation tick).
func BenchmarkStep(b *testing.B) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		b.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(p, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepperStep measures one 10 ms exact-propagator step — the
// integrator behind every co-simulation tick.
func BenchmarkStepperStep(b *testing.B) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		b.Fatal(err)
	}
	s, err := m.NewStepper(0.01)
	if err != nil {
		b.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyState measures the direct equilibrium solve used by the
// analytic design-point evaluator.
func BenchmarkSteadyState(b *testing.B) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		b.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(p); err != nil {
			b.Fatal(err)
		}
	}
}
