// Event-horizon superstepping. A fixed-tick run applies the per-tick
// recurrence
//
//	T[k+1] = A·T[k] + Bp·P(T[k]) + ambGain·Tamb,
//
// where the injected power P is affine in temperature whenever the
// operating point (frequencies, voltages, utilisations, mapping, ambient)
// is constant: dynamic, DRAM and baseline power are fixed, and leakage is
// base·(1 + c·(T−25)) — linear in T above 25 °C. Folding the per-node
// leakage slope s (W/°C) into the propagator gives an affine map
//
//	T[k+1] = Ã·T[k] + b̃,   Ã = A + Bp·diag(s),
//	b̃ = Bp·Pconst + ambGain·Tamb,
//
// whose n-fold application has the closed form
//
//	T[k+n] = Ãⁿ·T[k] + Sₙ·b̃,   Sₙ = Σ_{j<n} Ãʲ.
//
// A Superstep precomputes (Ãⁿ, Sₙ) pairs by binary powering and replays n
// ticks in one matrix-vector application — the same arithmetic the tick
// loop would have performed, reassociated, so the jump agrees with fixed
// stepping to floating-point rounding (~1e-13 °C), not to a model error.
//
// Because Ã is entrywise non-negative (the propagator of a Metzler RC
// system plus a non-negative leakage feedback), temperature increments
// keep their sign under the map: a trajectory that starts rising rises
// for the whole jump, one that starts falling keeps falling. Jump reports
// that direction, which lets the caller validate interior-state
// constraints (thermal trip thresholds, the T ≥ 25 °C leakage regime)
// from the two endpoints alone.

package thermal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ssPair is one precomputed power-of-two jump block: p = Ã^(2^k) and
// s = Σ_{j<2^k} Ãʲ, flat row-major n×n. Read-only after construction, so
// pairs are shared freely across Supersteps of the same (system, dt,
// slope). Jump decomposes an arbitrary horizon into these blocks and
// applies them to the temperature vector directly — matrix-vector work
// per jump, matrix-matrix work only once per block.
type ssPair struct {
	p, s []float64
}

// superCache maps (conductance system, dt, leakage slope, block
// exponent k) — see Superstep.keyPre — to its jump block, so repeated
// runs over the same platform (service jobs, benchmark campaigns) reuse
// the powered propagators the way propCache reuses the per-tick ones.
// Bounded like propCache; a warm Superstep hits its per-instance table
// first and never touches this cache.
var (
	superCache      sync.Map
	superCacheCount atomic.Int64
)

const superCacheLimit = 1024

// Superstep jumps a model across n identical ticks of its Stepper in one
// affine application. It is bound to one leakage-slope vector; build a
// new Superstep when a DVFS or mapping change alters the slopes. Not safe
// for concurrent use.
type Superstep struct {
	st    *Stepper
	slope []float64
	// at is Ã = A + Bp·diag(slope), flat row-major n×n.
	at []float64
	// blocks memoises the power-of-two jump blocks per instance (index k
	// holds the 2^k-tick block); keyPre prefixes the process-wide
	// superCache key (system + dt + slope).
	blocks []*ssPair
	keyPre string
	// scratch: b̃, the one-tick image (for the direction probe) and the
	// planned end temperatures.
	bvec, t1, tn []float64
	planned      bool
	// blockHits/blockMisses count jump-block lookups through this
	// instance (per-instance table or superCache hit vs a doubling
	// build) for the engine flight recorder. Plain increments: the
	// instance is single-goroutine by contract.
	blockHits, blockMisses int64
}

// NewSuperstep builds the affine jump map for the stepper's system and
// the given per-node leakage slope (W/°C, entries ≥ 0). The slope vector
// is copied.
func NewSuperstep(st *Stepper, slopeWPerC []float64) (*Superstep, error) {
	n := st.m.n
	if len(slopeWPerC) != n {
		return nil, fmt.Errorf("thermal: superstep got %d slopes, want %d", len(slopeWPerC), n)
	}
	at := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if slopeWPerC[j] < 0 {
				return nil, fmt.Errorf("thermal: negative leakage slope %g on node %d", slopeWPerC[j], j)
			}
			v := st.a[i*n+j] + st.bp[i*n+j]*slopeWPerC[j]
			// The monotonicity contract needs Ã ≥ 0. Entries of A and Bp
			// are non-negative for a physical RC system up to the rounding
			// dust of the matrix exponential; anything clearly negative
			// means the system is not one this optimisation understands.
			if v < -1e-12 {
				return nil, fmt.Errorf("thermal: superstep propagator not monotone (entry %d,%d = %g)", i, j, v)
			}
			at[i*n+j] = v
		}
	}
	key := make([]byte, 0, len(st.m.g)*8+64)
	key = append(key, propKey(st.m, st.dt)...)
	for _, v := range slopeWPerC {
		key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
	}
	return &Superstep{
		st:     st,
		slope:  append([]float64(nil), slopeWPerC...),
		at:     at,
		keyPre: string(key),
		bvec:   make([]float64, n),
		t1:     make([]float64, n),
		tn:     make([]float64, n),
	}, nil
}

// Slope returns the leakage-slope vector the map was built for (read-only).
func (ss *Superstep) Slope() []float64 { return ss.slope }

// BlockCacheStats reports the jump-block lookups served from a cache
// (the per-instance table or the process-wide superCache) versus built
// by doubling, for the engine flight recorder.
func (ss *Superstep) BlockCacheStats() (hits, misses int64) {
	return ss.blockHits, ss.blockMisses
}

// Jump plans an n-tick advance of the bound model under the constant
// power injection constInjW (per node, watts — the temperature-independent
// part; the leakage slopes are already folded into the map). It does not
// modify the model: endTemps is the planned state after n ticks (valid
// until the next Jump) and dir the componentwise trajectory direction —
// +1 monotonically rising, −1 falling, 0 mixed (endTemps nil; the caller
// must fall back to fixed ticks, endpoint guards would not bound the
// interior). Call Commit to apply a planned jump. Allocation-free once
// the horizon's pair is cached.
//
//teem:hotpath
func (ss *Superstep) Jump(nTicks int, constInjW []float64) (endTemps []float64, dir int, err error) {
	ss.planned = false
	n := ss.st.m.n
	if nTicks < 1 {
		return nil, 0, fmt.Errorf("thermal: superstep of %d ticks", nTicks)
	}
	if len(constInjW) != n {
		return nil, 0, fmt.Errorf("thermal: Jump got %d powers, want %d", len(constInjW), n)
	}
	m := ss.st.m
	amb := m.ambientC
	temps := m.temps[:n]
	for i := 0; i < n; i++ {
		acc := ss.st.ambGain[i] * amb
		br := ss.st.bp[i*n : i*n+n : i*n+n]
		for j := range br {
			acc += br[j] * constInjW[j]
		}
		ss.bvec[i] = acc
	}
	// One-tick probe: with Ã ≥ 0 the increment T[k+1]−T[k] keeps its
	// componentwise sign, so the first step's direction is the whole
	// jump's direction.
	rising, falling := true, true
	for i := 0; i < n; i++ {
		acc := ss.bvec[i]
		ar := ss.at[i*n : i*n+n : i*n+n]
		for j := range ar {
			acc += ar[j] * temps[j]
		}
		ss.t1[i] = acc
		if acc > temps[i] {
			falling = false
		} else if acc < temps[i] {
			rising = false
		}
	}
	switch {
	case rising:
		dir = 1
	case falling:
		dir = -1
	default:
		return nil, 0, nil
	}
	// Apply the binary decomposition of nTicks to the temperature vector,
	// smallest block first: each set bit contributes one affine
	// application T ← P·T + S·b̃ with a cached power-of-two block. The 2⁰
	// block's image is the probe already in t1.
	cur, nxt := ss.tn, ss.t1
	if nTicks&1 == 1 {
		copy(cur, ss.t1)
	} else {
		copy(cur, temps)
	}
	inTn := true
	for k, rem := 1, nTicks>>1; rem > 0; k, rem = k+1, rem>>1 {
		if rem&1 == 0 {
			continue
		}
		pr := ss.block(k)
		for i := 0; i < n; i++ {
			acc := 0.0
			prow := pr.p[i*n : i*n+n : i*n+n]
			srow := pr.s[i*n : i*n+n : i*n+n]
			for j := range prow {
				acc += prow[j]*cur[j] + srow[j]*ss.bvec[j]
			}
			nxt[i] = acc
		}
		cur, nxt = nxt, cur
		inTn = !inTn
	}
	if !inTn {
		copy(ss.tn, cur)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(ss.tn[i]) || math.IsInf(ss.tn[i], 0) {
			return nil, 0, errors.New("thermal: superstep produced a non-finite temperature")
		}
	}
	ss.planned = true
	return ss.tn, dir, nil
}

// Commit applies the temperatures of the last successful Jump to the
// model.
//
//teem:hotpath
func (ss *Superstep) Commit() error {
	if !ss.planned {
		return errors.New("thermal: Commit without a planned Jump")
	}
	copy(ss.st.m.temps[:ss.st.m.n], ss.tn)
	ss.planned = false
	return nil
}

// block returns the 2^k-tick jump block (Ã^(2^k), Σ_{j<2^k} Ãʲ),
// consulting the per-instance table, then the process-wide cache, then
// doubling the previous block:
//
//	(P,S)_{2m} = (P_m², (P_m + I)·S_m),
//
// which follows from applying m+m steps in sequence,
// (P,S)_{a+b} = (P_b·P_a, P_b·S_a + S_b). Only O(log n) blocks exist per
// (system, dt, slope), so the cache stays small no matter how many
// distinct horizons a run jumps.
func (ss *Superstep) block(k int) *ssPair {
	if k < len(ss.blocks) {
		ss.blockHits++
		return ss.blocks[k]
	}
	for len(ss.blocks) <= k {
		kk := len(ss.blocks)
		var kb [8]byte
		binary.LittleEndian.PutUint64(kb[:], uint64(kk))
		key := ss.keyPre + string(kb[:])
		if v, ok := superCache.Load(key); ok {
			ss.blockHits++
			ss.blocks = append(ss.blocks, v.(*ssPair))
			continue
		}
		ss.blockMisses++
		n := ss.st.m.n
		var p *ssPair
		if kk == 0 {
			p = &ssPair{p: append([]float64(nil), ss.at...), s: identity(n)}
		} else {
			prev := ss.blocks[kk-1]
			p = &ssPair{p: make([]float64, n*n), s: make([]float64, n*n)}
			matMul(p.p, prev.p, prev.p, n)
			matMul(p.s, prev.p, prev.s, n)
			for i := range p.s {
				p.s[i] += prev.s[i]
			}
		}
		if superCacheCount.Load() < superCacheLimit {
			if v, loaded := superCache.LoadOrStore(key, p); loaded {
				p = v.(*ssPair)
			} else {
				superCacheCount.Add(1)
			}
		}
		ss.blocks = append(ss.blocks, p)
	}
	return ss.blocks[k]
}
