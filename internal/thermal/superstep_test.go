package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// affineReference advances the model tick by tick through the stepper,
// evaluating the affine power law P(T) = pConst + slope·T before each
// step — the arithmetic a fixed-tick simulation performs.
func affineReference(t *testing.T, st *Stepper, pConst, slope []float64, ticks int) []float64 {
	t.Helper()
	m := st.Model()
	n := len(pConst)
	inj := make([]float64, n)
	for k := 0; k < ticks; k++ {
		for i := 0; i < n; i++ {
			inj[i] = pConst[i] + slope[i]*m.Temp(i)
		}
		if err := st.Step(inj); err != nil {
			t.Fatal(err)
		}
	}
	return m.Temps()
}

// Property: Jump+Commit reproduces the tick-by-tick affine trajectory to
// floating-point rounding across randomized networks, slopes, horizons
// and start states.
func TestSuperstepMatchesSequentialTicks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	horizons := []int{1, 2, 3, 5, 8, 16, 17, 63, 64, 99, 100, 513}
	for trial := 0; trial < 25; trial++ {
		net := randomNetwork(rng)
		n := len(net.Nodes)
		mRef, err := NewModel(net, 28)
		if err != nil {
			t.Fatal(err)
		}
		mJmp, err := NewModel(net, 28)
		if err != nil {
			t.Fatal(err)
		}
		stRef, err := mRef.NewStepper(0.01)
		if err != nil {
			t.Fatal(err)
		}
		stJmp, err := mJmp.NewStepper(0.01)
		if err != nil {
			t.Fatal(err)
		}
		pConst := randomPowers(rng, n)
		slope := make([]float64, n)
		for i := range slope {
			// Realistic leakage feedback: a few mW/°C.
			slope[i] = 0.01 * rng.Float64()
		}
		ss, err := NewSuperstep(stJmp, slope)
		if err != nil {
			t.Fatal(err)
		}
		// Jump's constInjW is the temperature-independent part of the
		// power law — the reference's pConst; the slope rides in the map.
		for _, h := range horizons {
			ref := affineReference(t, stRef, pConst, slope, h)
			end, dir, err := ss.Jump(h, pConst)
			if err != nil {
				t.Fatal(err)
			}
			if dir == 0 {
				// Mixed trajectory: a legal fallback outcome. Re-sync the
				// jump model tick by tick and try the next horizon.
				affineReference(t, stJmp, pConst, slope, h)
				continue
			}
			if err := ss.Commit(); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if d := math.Abs(end[i] - ref[i]); d > 1e-9 {
					t.Fatalf("trial %d horizon %d node %d: jump %.15g vs sequential %.15g (|Δ|=%.3g)",
						trial, h, i, end[i], ref[i], d)
				}
			}
		}
	}
}

// The direction probe: heating from ambient reports rising, cooling from
// a hot start with no injected power reports falling, and the committed
// endpoints respect the direction.
func TestSuperstepDirection(t *testing.T) {
	net := Exynos5422Network()
	m, err := NewModel(net, 28)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	slope := make([]float64, len(net.Nodes))
	ss, err := NewSuperstep(st, slope)
	if err != nil {
		t.Fatal(err)
	}
	hot := []float64{4, 3, 4, 3} // watts: drives every node up from ambient
	end, dir, err := ss.Jump(50, hot)
	if err != nil {
		t.Fatal(err)
	}
	if dir != 1 {
		t.Fatalf("heating from ambient: dir = %d, want 1", dir)
	}
	for i := range end {
		if end[i] <= 28 {
			t.Fatalf("node %d did not heat: %g", i, end[i])
		}
	}
	if err := ss.Commit(); err != nil {
		t.Fatal(err)
	}
	// Long soak toward the hot steady state, then cut power: cooling.
	if _, _, err := ss.Jump(100000, hot); err != nil {
		t.Fatal(err)
	}
	if err := ss.Commit(); err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, len(net.Nodes))
	end, dir, err = ss.Jump(50, zero)
	if err != nil {
		t.Fatal(err)
	}
	if dir != -1 {
		t.Fatalf("cooling after power cut: dir = %d, want -1", dir)
	}
	for i := range end {
		if end[i] < 28 {
			t.Fatalf("node %d cooled below ambient: %g", i, end[i])
		}
	}
}

// Commit without a planned Jump must fail, and a failed Jump must
// invalidate any previous plan.
func TestSuperstepCommitContract(t *testing.T) {
	net := Exynos5422Network()
	m, err := NewModel(net, 28)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSuperstep(st, make([]float64, len(net.Nodes)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Commit(); err == nil {
		t.Fatal("Commit without Jump did not fail")
	}
	p := []float64{2, 1, 2, 1}
	if _, _, err := ss.Jump(10, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.Jump(0, p); err == nil {
		t.Fatal("Jump(0) did not fail")
	}
	if err := ss.Commit(); err == nil {
		t.Fatal("Commit after failed Jump did not fail")
	}
}

// NewSuperstep validation: slope length and sign.
func TestNewSuperstepValidation(t *testing.T) {
	net := Exynos5422Network()
	m, err := NewModel(net, 28)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.NewStepper(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSuperstep(st, make([]float64, 2)); err == nil {
		t.Fatal("wrong slope length accepted")
	}
	bad := make([]float64, len(net.Nodes))
	bad[0] = -0.01
	if _, err := NewSuperstep(st, bad); err == nil {
		t.Fatal("negative slope accepted")
	}
}

// Two Supersteps over the same (system, dt, slope) share their jump
// blocks through the process-wide cache — as long as the bounded cache
// still has room (other tests in the package may have filled it).
func TestSuperstepBlockSharing(t *testing.T) {
	if superCacheCount.Load() >= superCacheLimit {
		t.Skip("process-wide superstep cache already full")
	}
	net := Exynos5422Network()
	mkSS := func() *Superstep {
		m, err := NewModel(net, 28)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.NewStepper(0.0137)
		if err != nil {
			t.Fatal(err)
		}
		slope := []float64{0.003, 0.001, 0.004, 0}
		ss, err := NewSuperstep(st, slope)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	a, b := mkSS(), mkSS()
	p := []float64{2, 1, 2, 1}
	if _, _, err := a.Jump(37, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Jump(37, p); err != nil {
		t.Fatal(err)
	}
	if len(a.blocks) == 0 || len(a.blocks) != len(b.blocks) {
		t.Fatalf("block tables differ: %d vs %d", len(a.blocks), len(b.blocks))
	}
	for k := range a.blocks {
		if a.blocks[k] != b.blocks[k] {
			t.Fatalf("block %d not shared through the cache", k)
		}
	}
}
