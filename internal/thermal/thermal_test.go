package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

// single returns a one-node network: node 0 → ambient with R, capacity C.
func single(r, c float64) *Network {
	return &Network{
		Nodes: []Node{{Name: "n", HeatCapJ: c}},
		Links: []Link{{A: 0, B: Ambient, ResCW: r}},
	}
}

func TestValidate(t *testing.T) {
	good := Exynos5422Network()
	if err := good.Validate(); err != nil {
		t.Fatalf("Exynos network invalid: %v", err)
	}
	bad := []*Network{
		{},
		{Nodes: []Node{{Name: "", HeatCapJ: 1}}, Links: []Link{{0, Ambient, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 0}}, Links: []Link{{0, Ambient, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}, {Name: "a", HeatCapJ: 1}}, Links: []Link{{0, Ambient, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}}, Links: []Link{{5, Ambient, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}}, Links: []Link{{0, 7, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}}, Links: []Link{{0, 0, 1}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}}, Links: []Link{{0, Ambient, 0}}},
		{Nodes: []Node{{Name: "a", HeatCapJ: 1}, {Name: "b", HeatCapJ: 1}}, Links: []Link{{0, 1, 1}}}, // no ambient
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad network", i)
		}
	}
}

func TestNodeIndex(t *testing.T) {
	n := Exynos5422Network()
	if i := n.NodeIndex("A15"); i != 0 {
		t.Errorf("NodeIndex(A15) = %d, want 0", i)
	}
	if i := n.NodeIndex("zz"); i != -1 {
		t.Errorf("NodeIndex(zz) = %d, want -1", i)
	}
}

// A single-node network has the closed-form solution
// T(t) = Tamb + P·R·(1 − e^{−t/RC}).
func TestStepMatchesClosedForm(t *testing.T) {
	const (
		r, c   = 5.0, 2.0
		p      = 3.0
		amb    = 25.0
		tEnd   = 7.0
		expect = amb + p*r // steady state
	)
	m, err := NewModel(single(r, c), amb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if err := m.Step([]float64{p}, tEnd/700); err != nil {
			t.Fatal(err)
		}
	}
	want := amb + p*r*(1-math.Exp(-tEnd/(r*c)))
	if got := m.Temp(0); math.Abs(got-want) > 0.05 {
		t.Errorf("T(%gs) = %.3f, want %.3f (closed form)", tEnd, got, want)
	}
	_ = expect
}

func TestStepConvergesToSteadyState(t *testing.T) {
	m, err := NewModel(Exynos5422Network(), 28)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{2.3, 0.4, 2.6, 1.85}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate for 30 minutes of simulated time.
	if err := m.Step(p, 1800); err != nil {
		t.Fatal(err)
	}
	for i, got := range m.Temps() {
		if math.Abs(got-want[i]) > 0.1 {
			t.Errorf("node %d: integrated %.2f vs steady %.2f", i, got, want[i])
		}
	}
}

func TestSteadyStateDoesNotMutate(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	before := m.Temps()
	if _, err := m.SteadyState([]float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	after := m.Temps()
	for i := range before {
		if before[i] != after[i] {
			t.Error("SteadyState mutated model state")
		}
	}
}

// Calibration: the Exynos network must reproduce the paper-critical
// operating points (see Exynos5422Network doc comment).
func TestExynosCalibration(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	cases := []struct {
		name         string
		p            []float64
		lo, hi       float64 // A15 bounds
		gpuLo, gpuHi float64
	}{
		{"big@2000", []float64{4.5, 0.4, 2.6, 1.85}, 98, 112, 88, 100},
		{"big@1400", []float64{2.3, 0.4, 2.6, 1.85}, 78, 87, 76, 86},
		{"big@900", []float64{1.5, 0.4, 2.6, 1.85}, 68, 80, 70, 82},
		{"idle", []float64{0.25, 0.05, 0.2, 1.3}, 35, 48, 35, 48},
	}
	for _, c := range cases {
		ts, err := m.SteadyState(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if ts[0] < c.lo || ts[0] > c.hi {
			t.Errorf("%s: A15 steady = %.1f, want [%g,%g]", c.name, ts[0], c.lo, c.hi)
		}
		if ts[2] < c.gpuLo || ts[2] > c.gpuHi {
			t.Errorf("%s: Mali steady = %.1f, want [%g,%g]", c.name, ts[2], c.gpuLo, c.gpuHi)
		}
	}
}

// The big cluster must heat on a seconds scale: from ambient under full
// power it should cross 85 °C within 90 s but not within 2 s, and once the
// package is warm the 90→95 °C reheat takes only a couple of seconds (the
// ondemand sawtooth period of the paper's Fig. 1a).
func TestHeatingTimeScale(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	p := []float64{4.5, 0.4, 2.6, 1.85}
	crossed := -1.0
	for tm := 0.0; tm < 120; tm += 0.1 {
		if err := m.Step(p, 0.1); err != nil {
			t.Fatal(err)
		}
		if m.Temp(0) >= 85 {
			crossed = tm
			break
		}
	}
	if crossed < 2 || crossed > 90 {
		t.Errorf("big cluster crossed 85°C at t=%.1fs, want 2–90 s", crossed)
	}
}

func TestWarmReheatIsFast(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	// Warm package, big cluster just released from throttling at 90 °C.
	if err := m.SetTemps([]float64{90, 75, 85, 85}); err != nil {
		t.Fatal(err)
	}
	p := []float64{4.5, 0.4, 2.6, 1.85}
	crossed := -1.0
	for tm := 0.0; tm < 30; tm += 0.05 {
		if err := m.Step(p, 0.05); err != nil {
			t.Fatal(err)
		}
		if m.Temp(0) >= 95 {
			crossed = tm
			break
		}
	}
	if crossed < 0.2 || crossed > 15 {
		t.Errorf("warm reheat 90→95°C took %.2fs, want 0.2–15 s", crossed)
	}
}

func TestSetAmbient(t *testing.T) {
	m, _ := NewModel(single(5, 1), 20)
	m.SetAmbientC(40)
	if m.AmbientC() != 40 {
		t.Error("SetAmbientC not applied")
	}
	// With no power the node must drift to the new ambient.
	if err := m.Step([]float64{0}, 300); err != nil {
		t.Fatal(err)
	}
	if got := m.Temp(0); math.Abs(got-40) > 0.1 {
		t.Errorf("node settled at %.2f, want 40", got)
	}
}

func TestSetTempsAndReset(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	if err := m.SetTemps([]float64{90, 60, 70, 50}); err != nil {
		t.Fatal(err)
	}
	if m.Temp(0) != 90 {
		t.Error("SetTemps not applied")
	}
	if err := m.SetTemps([]float64{1}); err == nil {
		t.Error("SetTemps should reject wrong length")
	}
	m.Reset()
	for i, v := range m.Temps() {
		if v != 28 {
			t.Errorf("Reset: node %d at %g, want 28", i, v)
		}
	}
}

func TestStepValidation(t *testing.T) {
	m, _ := NewModel(single(5, 1), 20)
	if err := m.Step([]float64{1, 2}, 1); err == nil {
		t.Error("Step should reject wrong power length")
	}
	if err := m.Step([]float64{1}, -1); err == nil {
		t.Error("Step should reject negative dt")
	}
	if _, err := m.SteadyState([]float64{1, 2}); err == nil {
		t.Error("SteadyState should reject wrong power length")
	}
}

func TestSensorQuantization(t *testing.T) {
	m, _ := NewModel(single(5, 1), 20)
	if err := m.SetTemps([]float64{87.9}); err != nil {
		t.Fatal(err)
	}
	s := Sensor{Node: 0, QuantizeC: 1}
	if got := s.Read(m); got != 87 {
		t.Errorf("quantised read = %g, want 87", got)
	}
	s = Sensor{Node: 0}
	if got := s.Read(m); got != 87.9 {
		t.Errorf("raw read = %g, want 87.9", got)
	}
	s = Sensor{Node: 0, OffsetC: 2, QuantizeC: 1}
	if got := s.Read(m); got != 89 {
		t.Errorf("offset read = %g, want 89", got)
	}
}

// Property: with zero power all temperatures decay monotonically toward
// ambient and never undershoot it.
func TestCoolingMonotoneProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m, err := NewModel(Exynos5422Network(), 28)
		if err != nil {
			return false
		}
		start := 28 + float64(seed%70)
		if err := m.SetTemps([]float64{start, start, start, start}); err != nil {
			return false
		}
		prev := m.Temps()
		zero := []float64{0, 0, 0, 0}
		for i := 0; i < 50; i++ {
			if err := m.Step(zero, 1); err != nil {
				return false
			}
			cur := m.Temps()
			for j := range cur {
				if cur[j] > prev[j]+1e-9 || cur[j] < 28-1e-9 {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: steady-state temperatures increase monotonically with injected
// power on the heated node.
func TestSteadyStateMonotoneProperty(t *testing.T) {
	m, _ := NewModel(Exynos5422Network(), 28)
	f := func(pa, pb float64) bool {
		a := math.Mod(math.Abs(pa), 8)
		b := math.Mod(math.Abs(pb), 8)
		if a > b {
			a, b = b, a
		}
		tA, err1 := m.SteadyState([]float64{a, 0.3, 1, 1})
		tB, err2 := m.SteadyState([]float64{b, 0.3, 1, 1})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range tA {
			if tA[i] > tB[i]+1e-9 {
				return false
			}
		}
		return tA[0] >= 28-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy conservation — at steady state, total heat flow to
// ambient equals injected power.
func TestEnergyBalanceProperty(t *testing.T) {
	net := Exynos5422Network()
	m, _ := NewModel(net, 28)
	f := func(p0, p2 float64) bool {
		pw := []float64{math.Mod(math.Abs(p0), 6), 0.4, math.Mod(math.Abs(p2), 4), 1.5}
		ts, err := m.SteadyState(pw)
		if err != nil {
			return false
		}
		out := 0.0
		for _, l := range net.Links {
			if l.B == Ambient {
				out += (ts[l.A] - 28) / l.ResCW
			}
		}
		in := 0.0
		for _, v := range pw {
			in += v
		}
		return math.Abs(in-out) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
