// Exact discrete-time thermal stepping. Within a control interval the
// lumped RC system is linear time-invariant,
//
//	C·dT/dt = −G·T + P + gAmb·Tamb,
//
// so for a fixed step dt the update has the closed form
//
//	T(t+dt) = A·T(t) + B·(P + gAmb·Tamb),
//	A = exp(M·dt),  B = (∫₀^dt exp(M·s) ds)·C⁻¹,  M = −C⁻¹·G,
//
// (Bhat et al., "Analysis and Control of Power-Temperature Dynamics in
// Heterogeneous Multiprocessors"). A and B are precomputed once by
// scaling-and-squaring, so a step is one dense matrix-vector product:
// unconditionally stable, exact for piecewise-constant power, and free of
// the Euler substep loop.

package thermal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Stepper advances a Model by a fixed time step using the exact
// discrete-time propagator. It is bound to the Model it was created from
// and updates that model's temperatures in place; Step performs zero heap
// allocations. A Stepper must not be shared across goroutines.
type Stepper struct {
	m  *Model
	dt float64
	// a is exp(M·dt), flat row-major n×n.
	a []float64
	// bp maps the power vector to its temperature contribution:
	// bp = (∫₀^dt exp(M·s) ds)·C⁻¹, flat row-major n×n.
	bp []float64
	// ambGain[i] = Σ_j bp[i][j]·gAmb[j]; multiplied by the ambient
	// temperature each step, so SetAmbientC keeps working mid-run.
	ambGain []float64
	scratch []float64
	// cacheHit records whether the propagator came out of propCache —
	// surfaced through CacheHit for the engine flight recorder.
	cacheHit bool
}

// propagator holds the shared, read-only precomputed matrices of one
// (conductance system, dt) pair. Campaign-style workloads construct many
// engines over the same network, so the matrix exponential is computed
// once per distinct system and reused via propCache.
type propagator struct {
	a, bp, ambGain []float64
}

// propCache maps the exact conductance-system content + dt (see propKey)
// to its propagator. Content-keyed, so mutating a Network and rebuilding a
// Model can never see a stale entry. Admission is bounded by
// propCacheLimit: a sweep over thousands of distinct candidate networks
// computes its propagators directly instead of growing the cache without
// bound (campaign workloads reuse a handful of systems, which is what the
// cache is for).
var (
	propCache      sync.Map
	propCacheCount atomic.Int64
)

const propCacheLimit = 64

// propKey serialises the full discrete-time system definition: dt, the
// conductance matrix, ambient conductances and inverse heat capacities.
func propKey(m *Model, dt float64) string {
	buf := make([]byte, 0, 8*(len(m.g)+2*len(m.gAmb)+1))
	put := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	put(dt)
	for _, v := range m.g {
		put(v)
	}
	for _, v := range m.gAmb {
		put(v)
	}
	for _, v := range m.invC {
		put(v)
	}
	return string(buf)
}

// NewStepper precomputes the exact propagator of the model's RC system for
// the given fixed step (seconds).
func (m *Model) NewStepper(dt float64) (*Stepper, error) {
	if dt <= 0 {
		return nil, errors.New("thermal: stepper needs a positive time step")
	}
	n := m.n
	key := propKey(m, dt)
	if v, ok := propCache.Load(key); ok {
		p := v.(*propagator)
		return &Stepper{
			m:        m,
			dt:       dt,
			a:        p.a,
			bp:       p.bp,
			ambGain:  p.ambGain,
			scratch:  make([]float64, n),
			cacheHit: true,
		}, nil
	}
	// H = M·dt = −C⁻¹·G·dt.
	h := make([]float64, n*n)
	m.laplacian(h)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h[i*n+j] *= -m.invC[i] * dt
		}
	}
	a, f, err := expmWithIntegral(h, n)
	if err != nil {
		return nil, err
	}
	// f is ∫₀^1 exp(H·u) du in the scaled time variable; the physical
	// integral is dt·f, and folding in C⁻¹ gives the power-to-ΔT map.
	s := &Stepper{
		m:       m,
		dt:      dt,
		a:       a,
		bp:      f,
		ambGain: make([]float64, n),
		scratch: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.bp[i*n+j] *= dt * m.invC[j]
		}
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += s.bp[i*n+j] * m.gAmb[j]
		}
		s.ambGain[i] = acc
	}
	if propCacheCount.Load() < propCacheLimit {
		if _, loaded := propCache.LoadOrStore(key, &propagator{a: s.a, bp: s.bp, ambGain: s.ambGain}); !loaded {
			propCacheCount.Add(1)
		}
	}
	return s, nil
}

// Model returns the model this stepper advances.
func (s *Stepper) Model() *Model { return s.m }

// CacheHit reports whether this stepper reused a cached propagator
// instead of computing the matrix exponential.
func (s *Stepper) CacheHit() bool { return s.cacheHit }

// Dt returns the fixed step the propagator was built for.
func (s *Stepper) Dt() float64 { return s.dt }

// Step advances the bound model by the stepper's fixed dt with the given
// per-node power injection in watts. It allocates nothing.
//
//teem:hotpath
func (s *Stepper) Step(powerW []float64) error {
	n := s.m.n
	if len(powerW) != n {
		return fmt.Errorf("thermal: Step got %d powers, want %d", len(powerW), n)
	}
	temps := s.m.temps[:n]
	powerW = powerW[:n]
	amb := s.m.ambientC
	scratch := s.scratch[:n]
	if n == 4 {
		// Unrolled fast path for the ubiquitous 4-node MPSoC network
		// (big, LITTLE, GPU, package).
		t0, t1, t2, t3 := temps[0], temps[1], temps[2], temps[3]
		p0, p1, p2, p3 := powerW[0], powerW[1], powerW[2], powerW[3]
		a, b, g := s.a, s.bp, s.ambGain
		temps[0] = g[0]*amb + a[0]*t0 + a[1]*t1 + a[2]*t2 + a[3]*t3 + b[0]*p0 + b[1]*p1 + b[2]*p2 + b[3]*p3
		temps[1] = g[1]*amb + a[4]*t0 + a[5]*t1 + a[6]*t2 + a[7]*t3 + b[4]*p0 + b[5]*p1 + b[6]*p2 + b[7]*p3
		temps[2] = g[2]*amb + a[8]*t0 + a[9]*t1 + a[10]*t2 + a[11]*t3 + b[8]*p0 + b[9]*p1 + b[10]*p2 + b[11]*p3
		temps[3] = g[3]*amb + a[12]*t0 + a[13]*t1 + a[14]*t2 + a[15]*t3 + b[12]*p0 + b[13]*p1 + b[14]*p2 + b[15]*p3
		return nil
	}
	for i := 0; i < n; i++ {
		acc := s.ambGain[i] * amb
		ar := s.a[i*n : i*n+n : i*n+n]
		br := s.bp[i*n : i*n+n : i*n+n]
		for j := range ar {
			acc += ar[j]*temps[j] + br[j]*powerW[j]
		}
		scratch[i] = acc
	}
	copy(temps, scratch)
	return nil
}

// expmWithIntegral computes E = exp(H) and F = ∫₀^1 exp(H·u) du for a flat
// row-major n×n matrix by scaling-and-squaring over a Taylor expansion.
// The doubling identities are E(2h) = E(h)² and F(2h) = ½(I + E(h))·F(h)
// (in the normalised variable, the integral over [0,2h] splits into
// [0,h] + e^{Mh}[h,2h] and is renormalised by the factor ½).
func expmWithIntegral(h []float64, n int) (e, f []float64, err error) {
	norm := 0.0
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			row += math.Abs(h[i*n+j])
		}
		if row > norm {
			norm = row
		}
	}
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		return nil, nil, errors.New("thermal: non-finite propagator matrix")
	}
	// Scale H so the Taylor series of exp converges fast: ‖H‖/2^s ≤ 0.5.
	squarings := 0
	for scaled := norm; scaled > 0.5; scaled /= 2 {
		squarings++
	}
	inv := math.Ldexp(1, -squarings) // 2^-squarings
	hs := make([]float64, n*n)
	for i := range h {
		hs[i] = h[i] * inv
	}

	// Taylor: E = Σ Hs^k/k!, F = Σ Hs^k/(k+1)! (both in the scaled
	// variable, F normalised to the unit interval).
	e = identity(n)
	f = identity(n)
	term := identity(n)
	tmp := make([]float64, n*n)
	for k := 1; k <= 40; k++ {
		matMul(tmp, term, hs, n)
		maxAbs := 0.0
		for i := range tmp {
			term[i] = tmp[i] / float64(k)
			if a := math.Abs(term[i]); a > maxAbs {
				maxAbs = a
			}
		}
		for i := range e {
			e[i] += term[i]
			f[i] += term[i] / float64(k+1)
		}
		if maxAbs < 1e-19 {
			break
		}
	}

	// Undo the scaling: square E and fold F up with it.
	for s := 0; s < squarings; s++ {
		// F ← ½(I + E)·F before E is squared.
		copy(tmp, f)
		matMul(f, e, tmp, n)
		for i := range f {
			f[i] = 0.5 * (f[i] + tmp[i])
		}
		matMul(tmp, e, e, n)
		copy(e, tmp)
	}
	for i := range e {
		if math.IsNaN(e[i]) || math.IsInf(e[i], 0) || math.IsNaN(f[i]) || math.IsInf(f[i], 0) {
			return nil, nil, errors.New("thermal: propagator did not converge")
		}
	}
	return e, f, nil
}

func identity(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
	return m
}

// matMul computes dst = a·b for flat row-major n×n matrices; dst must not
// alias a or b.
func matMul(dst, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			dst[i*n+j] = acc
		}
	}
}
