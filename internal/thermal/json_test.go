package thermal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	orig := Exynos5422Network()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ambient"`) {
		t.Error("ambient links should serialise by name")
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, loaded) {
		t.Error("round trip not identical")
	}
}

func TestLoadNetworkRejectsBadInput(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"nodes":[{"name":"a","heat_cap_j":1}],"links":[{"a":"zz","b":"ambient","res_cw":1}]}`,
		`{"nodes":[{"name":"a","heat_cap_j":1}],"links":[{"a":"a","b":"zz","res_cw":1}]}`,
		`{"nodes":[{"name":"a","heat_cap_j":1}],"links":[]}`, // no ambient path
	}
	for i, c := range cases {
		if _, err := LoadNetwork(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted invalid network", i)
		}
	}
}

func TestNetworkSaveValidates(t *testing.T) {
	n := &Network{}
	var buf bytes.Buffer
	if err := n.Save(&buf); err == nil {
		t.Error("Save should validate first")
	}
}
