package power

import (
	"math"
	"testing"
	"testing/quick"

	"teem/internal/soc"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(soc.Exynos5422())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelRejectsInvalidPlatform(t *testing.T) {
	p := soc.Exynos5422()
	p.Name = ""
	if _, err := NewModel(p); err == nil {
		t.Error("NewModel should reject invalid platform")
	}
}

func TestBigClusterFullLoadEnvelope(t *testing.T) {
	m := newModel(t)
	bigIdx := m.Platform().ClusterIndex("A15")
	dyn, leak, err := m.ClusterPower(bigIdx, ClusterLoad{
		FreqMHz: 2000, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 1, TempC: 85,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := dyn + leak
	// Calibration target: 4 A15 cores at 2 GHz full tilt ≈ 5–8.5 W.
	if total < 5.0 || total > 8.5 {
		t.Errorf("big cluster full load = %.2f W, want 5–8.5 W", total)
	}
	if dyn <= leak {
		t.Errorf("dynamic power (%.2f) should dominate leakage (%.2f) at full load", dyn, leak)
	}
}

func TestLittleClusterIsMuchMoreEfficient(t *testing.T) {
	m := newModel(t)
	p := m.Platform()
	bigDyn, _, _ := m.ClusterPower(p.ClusterIndex("A15"), ClusterLoad{
		FreqMHz: 1400, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 1, TempC: 70,
	})
	litDyn, _, _ := m.ClusterPower(p.ClusterIndex("A7"), ClusterLoad{
		FreqMHz: 1400, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 1, TempC: 70,
	})
	if litDyn >= bigDyn/2.5 {
		t.Errorf("LITTLE (%.2f W) should draw well under half of big (%.2f W) at equal f", litDyn, bigDyn)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := newModel(t)
	load := func(temp float64) ClusterLoad {
		return ClusterLoad{FreqMHz: 2000, ActiveCores: 0, OnCores: 4, Utilization: 0, TempC: temp}
	}
	_, cold, _ := m.ClusterPower(0, load(40))
	_, hot, _ := m.ClusterPower(0, load(95))
	if hot <= cold {
		t.Errorf("leakage at 95°C (%.3f) should exceed leakage at 40°C (%.3f)", hot, cold)
	}
	// Below 25 °C the temperature term clamps.
	_, sub, _ := m.ClusterPower(0, load(10))
	_, ref, _ := m.ClusterPower(0, load(25))
	if sub != ref {
		t.Errorf("leakage below 25°C should clamp: %g vs %g", sub, ref)
	}
}

func TestDynamicScalesWithVoltageSquaredAndFrequency(t *testing.T) {
	m := newModel(t)
	big := m.Platform().Big()
	mk := func(f int) ClusterLoad {
		return ClusterLoad{FreqMHz: f, ActiveCores: 1, OnCores: 1, Utilization: 1, Activity: 1, TempC: 60}
	}
	d1, _, _ := m.ClusterPower(0, mk(1000))
	d2, _, _ := m.ClusterPower(0, mk(2000))
	v1, v2 := big.VoltageAt(1000), big.VoltageAt(2000)
	wantRatio := (v2 * v2 * 2000) / (v1 * v1 * 1000)
	if got := d2 / d1; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("dynamic ratio = %g, want %g (V²f scaling)", got, wantRatio)
	}
}

func TestExplicitVoltageOverride(t *testing.T) {
	m := newModel(t)
	a, _, _ := m.ClusterPower(0, ClusterLoad{FreqMHz: 1000, VoltV: 1.2, ActiveCores: 1, OnCores: 1, Utilization: 1, TempC: 50})
	b, _, _ := m.ClusterPower(0, ClusterLoad{FreqMHz: 1000, ActiveCores: 1, OnCores: 1, Utilization: 1, TempC: 50})
	if a == b {
		t.Error("explicit voltage should override the OPP table")
	}
}

func TestClusterPowerValidation(t *testing.T) {
	m := newModel(t)
	bad := []ClusterLoad{
		{FreqMHz: 1000, ActiveCores: -1, OnCores: 4, Utilization: 0.5},
		{FreqMHz: 1000, ActiveCores: 3, OnCores: 2, Utilization: 0.5},
		{FreqMHz: 1000, ActiveCores: 2, OnCores: 9, Utilization: 0.5},
		{FreqMHz: 1000, ActiveCores: 2, OnCores: 4, Utilization: 1.5},
		{FreqMHz: 1000, ActiveCores: 2, OnCores: 4, Utilization: -0.5},
		{FreqMHz: 1000, ActiveCores: 2, OnCores: 4, Utilization: 0.5, Activity: 2},
	}
	for i, l := range bad {
		if _, _, err := m.ClusterPower(0, l); err == nil {
			t.Errorf("case %d: ClusterPower accepted invalid load %+v", i, l)
		}
	}
	if _, _, err := m.ClusterPower(99, ClusterLoad{}); err == nil {
		t.Error("ClusterPower should reject out-of-range index")
	}
}

func TestEvaluateIdleEnvelope(t *testing.T) {
	m := newModel(t)
	b, err := m.Evaluate(IdleLoads(m.Platform(), 40), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle board ≈ baseline + leakage: 2.3–3.5 W.
	if tot := b.TotalW(); tot < 2.8 || tot > 4.2 {
		t.Errorf("idle board power = %.2f W, want 2.8–4.2 W", tot)
	}
	for i, d := range b.DynamicW {
		if d != 0 {
			t.Errorf("cluster %d idle dynamic power = %g, want 0", i, d)
		}
	}
}

func TestEvaluateFullTiltEnvelope(t *testing.T) {
	m := newModel(t)
	p := m.Platform()
	loads := []ClusterLoad{
		{FreqMHz: 2000, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 90},
		{FreqMHz: 1400, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 75},
		{FreqMHz: 600, ActiveCores: 6, OnCores: 6, Utilization: 1, Activity: 0.8, TempC: 80},
	}
	b, err := m.Evaluate(loads, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's board-level envelope under COVARIANCE-like load: ~10–12 W.
	if tot := b.TotalW(); tot < 9 || tot > 14 {
		t.Errorf("full-tilt board power = %.2f W, want 9–14 W", tot)
	}
	_ = p
}

func TestEvaluateValidation(t *testing.T) {
	m := newModel(t)
	if _, err := m.Evaluate(nil, 0); err == nil {
		t.Error("Evaluate should reject wrong load count")
	}
	if _, err := m.Evaluate(IdleLoads(m.Platform(), 40), -1); err == nil {
		t.Error("Evaluate should reject negative memory traffic")
	}
}

func TestBreakdownClusterW(t *testing.T) {
	b := &Breakdown{DynamicW: []float64{1, 2}, LeakageW: []float64{0.5, 0.25}, DRAMW: 0.1, BaselineW: 2}
	if got := b.ClusterW(0); got != 1.5 {
		t.Errorf("ClusterW(0) = %g, want 1.5", got)
	}
	if got := b.TotalW(); math.Abs(got-5.85) > 1e-12 {
		t.Errorf("TotalW = %g, want 5.85", got)
	}
}

// Property: power is monotone in frequency (at fixed everything else) and
// always non-negative.
func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	m := newModel(t)
	big := m.Platform().Big()
	f := func(i, j uint8, util float64) bool {
		u := math.Mod(math.Abs(util), 1)
		fi := big.OPPs[int(i)%len(big.OPPs)].FreqMHz
		fj := big.OPPs[int(j)%len(big.OPPs)].FreqMHz
		if fi > fj {
			fi, fj = fj, fi
		}
		mk := func(f int) ClusterLoad {
			return ClusterLoad{FreqMHz: f, ActiveCores: 4, OnCores: 4, Utilization: u, Activity: 0.8, TempC: 60}
		}
		dLo, lLo, err1 := m.ClusterPower(0, mk(fi))
		dHi, lHi, err2 := m.ClusterPower(0, mk(fj))
		if err1 != nil || err2 != nil {
			return false
		}
		return dLo >= 0 && lLo >= 0 && dLo <= dHi+1e-12 && lLo <= lHi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding active cores never reduces power.
func TestPowerMonotoneInCoresProperty(t *testing.T) {
	m := newModel(t)
	f := func(a, b uint8) bool {
		na, nb := int(a)%5, int(b)%5
		if na > nb {
			na, nb = nb, na
		}
		mk := func(n int) ClusterLoad {
			return ClusterLoad{FreqMHz: 1800, ActiveCores: n, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 70}
		}
		dLo, _, err1 := m.ClusterPower(0, mk(na))
		dHi, _, err2 := m.ClusterPower(0, mk(nb))
		return err1 == nil && err2 == nil && dLo <= dHi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// EvaluateInto must produce exactly what Evaluate produces, reusing the
// caller's slices, with zero allocations once the Breakdown is sized.
func TestEvaluateIntoMatchesEvaluate(t *testing.T) {
	m := newModel(t)
	loads := []ClusterLoad{
		{FreqMHz: 1800, ActiveCores: 3, OnCores: 4, Utilization: 0.9, Activity: 0.7, TempC: 82},
		{FreqMHz: 1400, ActiveCores: 2, OnCores: 4, Utilization: 0.9, Activity: 0.7, TempC: 70},
		{FreqMHz: 600, ActiveCores: 6, OnCores: 6, Utilization: 1, Activity: 0.8, TempC: 78},
	}
	want, err := m.Evaluate(loads, 3.1)
	if err != nil {
		t.Fatal(err)
	}
	var got Breakdown
	if err := m.EvaluateInto(&got, loads, 3.1); err != nil {
		t.Fatal(err)
	}
	if got.TotalW() != want.TotalW() || got.DRAMW != want.DRAMW || got.BaselineW != want.BaselineW {
		t.Errorf("EvaluateInto = %+v, want %+v", got, *want)
	}
	for i := range want.DynamicW {
		if got.DynamicW[i] != want.DynamicW[i] || got.LeakageW[i] != want.LeakageW[i] {
			t.Errorf("cluster %d: got (%g,%g), want (%g,%g)",
				i, got.DynamicW[i], got.LeakageW[i], want.DynamicW[i], want.LeakageW[i])
		}
	}
	// Slices must be reused across calls.
	d0 := &got.DynamicW[0]
	if err := m.EvaluateInto(&got, loads, 3.1); err != nil {
		t.Fatal(err)
	}
	if d0 != &got.DynamicW[0] {
		t.Error("EvaluateInto reallocated an adequately sized slice")
	}
	if avg := testing.AllocsPerRun(500, func() {
		if err := m.EvaluateInto(&got, loads, 3.1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("EvaluateInto allocates %.2f objects/op, want 0", avg)
	}
}

// EvaluateInto must validate like Evaluate.
func TestEvaluateIntoValidation(t *testing.T) {
	m := newModel(t)
	var b Breakdown
	if err := m.EvaluateInto(&b, []ClusterLoad{{FreqMHz: 1000}}, 0); err == nil {
		t.Error("EvaluateInto accepted a wrong-length load vector")
	}
	loads := IdleLoads(m.Platform(), 40)
	if err := m.EvaluateInto(&b, loads, -1); err == nil {
		t.Error("EvaluateInto accepted negative memory traffic")
	}
}

// The memoised voltage table must agree with the OPP scan, including
// off-OPP frequencies that snap up.
func TestVoltageMemoMatchesScan(t *testing.T) {
	plat := soc.Exynos5422()
	m, err := NewModel(plat)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range plat.Clusters {
		c := &plat.Clusters[ci]
		freqs := []int{c.MinFreqMHz(), c.MaxFreqMHz(), c.OPPs[len(c.OPPs)/2].FreqMHz, c.MinFreqMHz() + 1}
		for _, f := range freqs {
			l := ClusterLoad{FreqMHz: f, ActiveCores: 1, OnCores: c.NumCores, Utilization: 1, Activity: 1, TempC: 50}
			d1, lk1, err := m.ClusterPower(ci, l)
			if err != nil {
				t.Fatal(err)
			}
			l.VoltV = c.VoltageAt(f)
			d2, lk2, err := m.ClusterPower(ci, l)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 || lk1 != lk2 {
				t.Errorf("cluster %s @ %d MHz: memo (%g,%g) vs scan (%g,%g)", c.Name, f, d1, lk1, d2, lk2)
			}
		}
	}
}

// The affine decomposition must reconstruct ClusterPower exactly for any
// junction temperature at or above the 25 °C leakage reference:
// leak(T) = leakConst + slope·T, dyn identical.
func TestClusterPowerAffineReconstructs(t *testing.T) {
	m := newModel(t)
	loads := []ClusterLoad{
		{FreqMHz: 2000, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.7},
		{FreqMHz: 1400, ActiveCores: 2, OnCores: 4, Utilization: 0.6},
		{FreqMHz: 600, ActiveCores: 0, OnCores: 4, Utilization: 0},
	}
	for i := range m.Platform().Clusters {
		for _, l := range loads {
			if l.OnCores > m.Platform().Clusters[i].NumCores {
				continue
			}
			dynA, lkc, lks, err := m.ClusterPowerAffine(i, l)
			if err != nil {
				t.Fatal(err)
			}
			if lks < 0 {
				t.Fatalf("cluster %d: negative leakage slope %g", i, lks)
			}
			for _, temp := range []float64{25, 40, 85.5, 110} {
				lt := l
				lt.TempC = temp
				dyn, leak, err := m.ClusterPower(i, lt)
				if err != nil {
					t.Fatal(err)
				}
				if dyn != dynA {
					t.Fatalf("cluster %d T=%g: dyn %g vs affine %g", i, temp, dyn, dynA)
				}
				if got := lkc + lks*temp; math.Abs(got-leak) > 1e-12*math.Max(1, leak) {
					t.Fatalf("cluster %d T=%g: leak %g vs affine %g", i, temp, leak, got)
				}
			}
		}
	}
}

// The affine form shares ClusterPower's validation.
func TestClusterPowerAffineValidation(t *testing.T) {
	m := newModel(t)
	if _, _, _, err := m.ClusterPowerAffine(99, ClusterLoad{}); err == nil {
		t.Error("out-of-range index accepted")
	}
	bad := ClusterLoad{FreqMHz: 1000, ActiveCores: 3, OnCores: 2, Utilization: 0.5}
	if _, _, _, err := m.ClusterPowerAffine(0, bad); err == nil {
		t.Error("invalid core counts accepted")
	}
}
