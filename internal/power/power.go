// Package power models the electrical power consumption of an MPSoC as a
// board-level meter would observe it: per-cluster dynamic switching power,
// temperature-dependent static leakage, DRAM traffic power, and a constant
// board baseline (regulators, peripherals).
//
// The model is the standard CMOS decomposition
//
//	P_dyn  = n_active · Cdyn · V² · f · activity
//	P_leak = n_on · LeakCoeff · V² · (1 + LeakTempCoeff · (T − 25°C))
//
// with coefficients carried by the soc.Cluster description. Calibration for
// the Exynos 5422 puts the big cluster around 5.7 W fully loaded at
// 2000 MHz, the LITTLE cluster around 0.8 W at 1400 MHz and the Mali GPU
// around 2.5 W at 600 MHz, which reproduces the board-level envelope the
// paper measures with the Odroid Smart Power 2 (≈11 W peak, ≈2.5 W idle).
package power

import (
	"fmt"
	"sync"

	"teem/internal/soc"
)

// ClusterLoad describes the instantaneous operating condition of one
// cluster for a power evaluation.
type ClusterLoad struct {
	// FreqMHz is the current cluster frequency.
	FreqMHz int
	// VoltV is the rail voltage. If zero it is derived from the
	// cluster's OPP table.
	VoltV float64
	// ActiveCores is the number of cores currently executing work.
	ActiveCores int
	// OnCores is the number of powered (not hot-plugged-off) cores;
	// they leak even when idle. Must be ≥ ActiveCores.
	OnCores int
	// Utilization in [0,1] scales dynamic power of the active cores
	// (duty cycle within the evaluation window).
	Utilization float64
	// Activity in (0,1] is the workload-dependent switching-activity
	// factor relative to a power-virus workload; ~0.7 for typical
	// compute kernels.
	Activity float64
	// TempC is the cluster junction temperature for leakage evaluation.
	TempC float64
}

// Breakdown itemises a power evaluation in watts.
type Breakdown struct {
	// DynamicW per cluster, indexed like Platform.Clusters.
	DynamicW []float64
	// LeakageW per cluster.
	LeakageW []float64
	// DRAMW is memory-traffic power.
	DRAMW float64
	// BaselineW is the constant board power.
	BaselineW float64
}

// TotalW returns the summed board power.
func (b *Breakdown) TotalW() float64 {
	t := b.DRAMW + b.BaselineW
	for i := range b.DynamicW {
		t += b.DynamicW[i] + b.LeakageW[i]
	}
	return t
}

// ClusterW returns dynamic+leakage power of cluster i.
func (b *Breakdown) ClusterW(i int) float64 { return b.DynamicW[i] + b.LeakageW[i] }

// Model evaluates platform power.
type Model struct {
	plat *soc.Platform
	// volt memoises the per-cluster OPP voltage lookup (frequency in
	// MHz → rail voltage). It is built lazily on the first derived
	// lookup (callers that always pass ClusterLoad.VoltV never pay for
	// it) and read-only after, so a Model is safe for concurrent use.
	voltOnce sync.Once
	volt     []map[int]float64
}

// NewModel returns a power model for the platform.
func NewModel(p *soc.Platform) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{plat: p}, nil
}

// voltageFor returns the rail voltage for cluster i at the given
// frequency, memoising the per-OPP table on first use.
func (m *Model) voltageFor(i, freqMHz int) float64 {
	m.voltOnce.Do(func() {
		volt := make([]map[int]float64, len(m.plat.Clusters))
		for ci := range m.plat.Clusters {
			c := &m.plat.Clusters[ci]
			volt[ci] = make(map[int]float64, c.NumOPPs())
			for _, opp := range c.OPPs {
				volt[ci][opp.FreqMHz] = opp.VoltV
			}
		}
		m.volt = volt
	})
	if v, ok := m.volt[i][freqMHz]; ok {
		return v
	}
	// Off-OPP frequency: fall back to the table scan, snapping up like
	// the regulator would.
	return m.plat.Clusters[i].VoltageAt(freqMHz)
}

// Platform returns the platform this model evaluates.
func (m *Model) Platform() *soc.Platform { return m.plat }

// ClusterPower returns (dynamic, leakage) watts of cluster i under load l.
//
//teem:hotpath
func (m *Model) ClusterPower(i int, l ClusterLoad) (dynW, leakW float64, err error) {
	if i < 0 || i >= len(m.plat.Clusters) {
		return 0, 0, fmt.Errorf("power: cluster index %d out of range", i)
	}
	c := &m.plat.Clusters[i]
	if l.ActiveCores < 0 || l.OnCores < l.ActiveCores || l.OnCores > c.NumCores {
		return 0, 0, fmt.Errorf("power: cluster %s: invalid core counts active=%d on=%d (max %d)",
			c.Name, l.ActiveCores, l.OnCores, c.NumCores)
	}
	if l.Utilization < 0 || l.Utilization > 1 {
		return 0, 0, fmt.Errorf("power: cluster %s: utilization %g outside [0,1]", c.Name, l.Utilization)
	}
	act := l.Activity
	if act == 0 {
		act = 1
	}
	if act < 0 || act > 1 {
		return 0, 0, fmt.Errorf("power: cluster %s: activity %g outside (0,1]", c.Name, act)
	}
	v := l.VoltV
	if v == 0 {
		v = m.voltageFor(i, l.FreqMHz)
	}
	fHz := float64(l.FreqMHz) * 1e6
	// CdynCoreNF is in nF = 1e-9 F.
	dynW = float64(l.ActiveCores) * c.CdynCoreNF * 1e-9 * v * v * fHz * l.Utilization * act
	dT := l.TempC - 25
	if dT < 0 {
		dT = 0
	}
	leakW = float64(l.OnCores) * c.LeakCoeff * v * v * (1 + c.LeakTempCoeff*dT)
	return dynW, leakW, nil
}

// ClusterPowerAffine decomposes cluster i's power under load l into its
// temperature-affine form: for junction temperatures at or above the
// 25 °C leakage reference,
//
//	P(T) = dynW + leakConstW + leakSlopeWPerC·T,
//
// with leakConstW = base·(1 − 25·LeakTempCoeff) and leakSlopeWPerC =
// base·LeakTempCoeff where base = OnCores·LeakCoeff·V². The decomposition
// reconstructs ClusterPower exactly for T ≥ 25 °C; below the reference
// the true leakage is the constant base (the temperature term clamps to
// zero) and the affine form overestimates, so callers — the simulator's
// superstep planner — must hold trajectories to the T ≥ 25 °C regime or
// fall back to per-tick evaluation. l.TempC is ignored.
func (m *Model) ClusterPowerAffine(i int, l ClusterLoad) (dynW, leakConstW, leakSlopeWPerC float64, err error) {
	if i < 0 || i >= len(m.plat.Clusters) {
		return 0, 0, 0, fmt.Errorf("power: cluster index %d out of range", i)
	}
	c := &m.plat.Clusters[i]
	if l.ActiveCores < 0 || l.OnCores < l.ActiveCores || l.OnCores > c.NumCores {
		return 0, 0, 0, fmt.Errorf("power: cluster %s: invalid core counts active=%d on=%d (max %d)",
			c.Name, l.ActiveCores, l.OnCores, c.NumCores)
	}
	if l.Utilization < 0 || l.Utilization > 1 {
		return 0, 0, 0, fmt.Errorf("power: cluster %s: utilization %g outside [0,1]", c.Name, l.Utilization)
	}
	act := l.Activity
	if act == 0 {
		act = 1
	}
	if act < 0 || act > 1 {
		return 0, 0, 0, fmt.Errorf("power: cluster %s: activity %g outside (0,1]", c.Name, act)
	}
	v := l.VoltV
	if v == 0 {
		v = m.voltageFor(i, l.FreqMHz)
	}
	fHz := float64(l.FreqMHz) * 1e6
	dynW = float64(l.ActiveCores) * c.CdynCoreNF * 1e-9 * v * v * fHz * l.Utilization * act
	base := float64(l.OnCores) * c.LeakCoeff * v * v
	leakSlopeWPerC = base * c.LeakTempCoeff
	leakConstW = base - 25*leakSlopeWPerC
	return dynW, leakConstW, leakSlopeWPerC, nil
}

// Evaluate computes the full board power breakdown. loads must have one
// entry per platform cluster; memGBs is the aggregate DRAM traffic in GB/s.
func (m *Model) Evaluate(loads []ClusterLoad, memGBs float64) (*Breakdown, error) {
	b := &Breakdown{}
	if err := m.EvaluateInto(b, loads, memGBs); err != nil {
		return nil, err
	}
	return b, nil
}

// EvaluateInto computes the full board power breakdown into the
// caller-owned b, reusing its slices when they have capacity — the
// zero-allocation path of the per-tick co-simulation loop. On error b is
// left unspecified.
//
//teem:hotpath
func (m *Model) EvaluateInto(b *Breakdown, loads []ClusterLoad, memGBs float64) error {
	if len(loads) != len(m.plat.Clusters) {
		return fmt.Errorf("power: got %d loads for %d clusters", len(loads), len(m.plat.Clusters))
	}
	if memGBs < 0 {
		return fmt.Errorf("power: negative memory traffic %g", memGBs)
	}
	b.DynamicW = growFloats(b.DynamicW, len(loads))
	b.LeakageW = growFloats(b.LeakageW, len(loads))
	b.DRAMW = memGBs * m.plat.DRAMPowerPerGBs
	b.BaselineW = m.plat.BoardBaselineW
	for i, l := range loads {
		d, lk, err := m.ClusterPower(i, l)
		if err != nil {
			return err
		}
		b.DynamicW[i] = d
		b.LeakageW[i] = lk
	}
	return nil
}

// growFloats returns s resized to n, reusing its backing array when large
// enough.
//
//teem:hotpath
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// IdleLoads returns a load vector describing a fully idle platform (all
// cores powered but idle at minimum frequency, at the given temperature).
func IdleLoads(p *soc.Platform, tempC float64) []ClusterLoad {
	loads := make([]ClusterLoad, len(p.Clusters))
	for i := range p.Clusters {
		c := &p.Clusters[i]
		loads[i] = ClusterLoad{
			FreqMHz:     c.MinFreqMHz(),
			ActiveCores: 0,
			OnCores:     c.NumCores,
			Utilization: 0,
			Activity:    1,
			TempC:       tempC,
		}
	}
	return loads
}
