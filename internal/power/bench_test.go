package power

import (
	"testing"

	"teem/internal/soc"
)

// BenchmarkEvaluate measures one full board power evaluation (per
// simulation tick).
func BenchmarkEvaluate(b *testing.B) {
	m, err := NewModel(soc.Exynos5422())
	if err != nil {
		b.Fatal(err)
	}
	loads := []ClusterLoad{
		{FreqMHz: 2000, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 90},
		{FreqMHz: 1400, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 75},
		{FreqMHz: 600, ActiveCores: 6, OnCores: 6, Utilization: 1, Activity: 0.8, TempC: 80},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(loads, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateInto measures the allocation-free evaluation path used
// by the simulation tick loop.
func BenchmarkEvaluateInto(b *testing.B) {
	m, err := NewModel(soc.Exynos5422())
	if err != nil {
		b.Fatal(err)
	}
	loads := []ClusterLoad{
		{FreqMHz: 2000, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 90},
		{FreqMHz: 1400, ActiveCores: 4, OnCores: 4, Utilization: 1, Activity: 0.8, TempC: 75},
		{FreqMHz: 600, ActiveCores: 6, OnCores: 6, Utilization: 1, Activity: 0.8, TempC: 80},
	}
	var bd Breakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.EvaluateInto(&bd, loads, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}
