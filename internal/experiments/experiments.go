// Package experiments regenerates every table and figure of the TEEM
// paper's evaluation on the simulated Exynos 5422:
//
//	Fig. 1   — motivation: ondemand+TMU vs TEEM on COVARIANCE (2L+3B,
//	           partition 1024/2048): traces and summary metrics
//	Fig. 3   — matrix scatterplot of the profiling dataset
//	Table I  — full regression model M ~ AT+ET+PT+EC
//	Table II — transformed model log10(M) ~ AT+ET
//	Fig. 4   — residuals-vs-fitted of the transformed model
//	Fig. 5   — energy (a), temperature (b), execution time (c) of
//	           EEMP/RMP/TEEM across the eight Polybench apps at 2L+4B
//	§V.D     — memory-footprint comparison (128 items vs 2)
//
// plus the ablations DESIGN.md calls out (threshold, δ and floor sweeps).
// Results are cached inside an Env so chained experiments don't repeat
// expensive simulation work.
//
// The Env is a parallel experiment engine: the evaluation is
// embarrassingly parallel (eight apps × three approaches, each an
// independent simulation), so Fig. 5 rows, the ablation sweep points and
// the design-space enumeration fan out across a bounded worker pool
// (Options.Workers, default one worker per CPU). Every worker simulates
// on engine state private to its job — the shared Platform and Network
// are read-only — and the caches are single-flight: concurrent callers
// asking for the same app profile or Fig. 5 mapping share one
// computation. Results are reassembled in index order, so parallel output
// is byte-identical to serial output, and an Env is safe for concurrent
// use from multiple goroutines.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"teem/internal/baseline"
	"teem/internal/core"
	"teem/internal/governor"
	"teem/internal/mapping"
	"teem/internal/par"
	"teem/internal/report"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// Options configure an experiment environment.
type Options struct {
	// Workers bounds the parallel fan-out of Fig. 5 rows, sweep points
	// and design-space enumeration: 0 selects one worker per CPU
	// (runtime.GOMAXPROCS), 1 forces the serial path. Output is
	// byte-identical either way.
	Workers int
}

// Env is a shared, lazily evaluated experiment environment. It is safe
// for concurrent use.
type Env struct {
	Plat   *soc.Platform
	Net    *thermal.Network
	Params core.Params

	workers atomic.Int64

	mgr      *core.Manager
	profiles par.Flight[string, *core.AppModel]
	fig5     par.Flight[string, *Fig5Result] // keyed by mapping string
}

// NewEnv builds the default environment (Exynos 5422, paper parameters,
// one worker per CPU).
func NewEnv() (*Env, error) { return NewEnvWith(Options{}) }

// NewEnvWith builds the default environment with explicit options.
func NewEnvWith(o Options) (*Env, error) {
	plat := soc.Exynos5422()
	net := thermal.Exynos5422Network()
	params := core.DefaultParams()
	mgr, err := core.NewManager(plat, net, params)
	if err != nil {
		return nil, err
	}
	e := &Env{
		Plat:   plat,
		Net:    net,
		Params: params,
		mgr:    mgr,
	}
	e.SetWorkers(o.Workers)
	return e, nil
}

// SetWorkers adjusts the worker-pool bound (0 = one per CPU, 1 = serial).
// It may be called at any time, including concurrently with running
// experiments; in-flight fan-outs keep their pool size.
func (e *Env) SetWorkers(n int) { e.workers.Store(int64(n)) }

// Workers returns the configured worker-pool bound (0 = one per CPU).
func (e *Env) Workers() int { return int(e.workers.Load()) }

// Manager exposes the TEEM manager (profiled apps accumulate in it).
func (e *Env) Manager() *core.Manager { return e.mgr }

// profileApp profiles an app once and caches the model; concurrent
// callers of the same app share a single profiling pass.
func (e *Env) profileApp(app *workload.App) (*core.AppModel, error) {
	return e.profiles.Do(app.Name, func() (*core.AppModel, error) {
		return e.mgr.Profile(app)
	})
}

// TreqFor is the evaluation's performance requirement policy: 15% slack
// over the ideal balanced split at maximum frequency. For COVARIANCE this
// lands on the paper's "partition 1024" even split through Eq. (9).
func TreqFor(app *workload.App, m mapping.Mapping) float64 {
	etCPU := app.ETCPUOnly(m.Big, m.Little, 2000, 1400)
	etGPU := app.ETGPUOnly(6, 600)
	if etCPU == 0 {
		return etGPU
	}
	return 1.15 * etCPU * etGPU / (etCPU + etGPU)
}

// --- Fig. 1 -----------------------------------------------------------------

// Fig1Result holds the motivation comparison.
type Fig1Result struct {
	// Ondemand is the "existing approach" run (Fig. 1a); TEEM the
	// proposed run (Fig. 1b).
	Ondemand, TEEM *sim.Result
}

// Fig1 reproduces the motivational case study: COVARIANCE on 2L+3B with
// partition 1024 of 2048, ondemand+TMU against the TEEM controller. The
// two runs are independent and execute on the worker pool.
func (e *Env) Fig1() (*Fig1Result, error) {
	return e.Fig1Ctx(context.Background())
}

// Fig1Ctx is Fig1 under a context: cancelling ctx aborts both runs
// within one engine tick.
func (e *Env) Fig1Ctx(ctx context.Context) (*Fig1Result, error) {
	m := mapping.Mapping{Big: 3, Little: 2, UseGPU: true}
	part := mapping.Partition{Num: 4, Den: 8}
	app := workload.Covariance()

	runs := []struct {
		name string
		gov  sim.Governor
		res  *sim.Result
	}{
		{name: "ondemand", gov: governor.NewOndemand()},
		{name: "teem", gov: core.NewController(e.Params)},
	}
	if err := par.ForEachCtx(ctx, e.Workers(), len(runs), func(i int) error {
		res, err := sim.RunWarm(sim.Config{
			Platform: e.Plat, Net: e.Net, App: app,
			Map: m, Part: part,
			Governor: runs[i].gov,
			Done:     ctx.Done(),
		})
		if err != nil {
			return fmt.Errorf("experiments: fig1 %s: %w", runs[i].name, err)
		}
		runs[i].res = res
		return nil
	}); err != nil {
		return nil, err
	}
	return &Fig1Result{Ondemand: runs[0].res, TEEM: runs[1].res}, nil
}

// Render returns the Fig. 1 style charts and summary.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1(a) — existing approach (ondemand + TMU)\n")
	b.WriteString(r.Ondemand.Trace.RenderTempAndFreq("A15", "A15", 72, 12))
	b.WriteString("\nFig. 1(b) — proposed TEEM\n")
	b.WriteString(r.TEEM.Trace.RenderTempAndFreq("A15", "A15", 72, 12))

	t := &report.Table{
		Title:   "Fig. 1 summary (paper: ondemand 48 s / 530 J / 93.7 °C avg / 96 °C peak; TEEM 39.6 s / 413 J / 85.8 °C avg / 90 °C peak)",
		Headers: []string{"approach", "ET (s)", "energy (J)", "avg T (°C)", "peak T (°C)", "T variance", "trips", "thermal cycles ≥3°C"},
	}
	row := func(name string, res *sim.Result) {
		big := res.Trace.NodeIndex("A15")
		t.AddRow(name,
			fmt.Sprintf("%.1f", res.ExecTimeS),
			fmt.Sprintf("%.0f", res.EnergyJ),
			fmt.Sprintf("%.1f", res.AvgTempC),
			fmt.Sprintf("%.1f", res.PeakTempC),
			fmt.Sprintf("%.2f", res.TempVarC2),
			fmt.Sprintf("%d", res.ThrottleEvents),
			fmt.Sprintf("%d", res.Trace.CycleCount(big, 3)))
	}
	row("ondemand", r.Ondemand)
	row("TEEM", r.TEEM)
	b.WriteString("\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nTEEM vs ondemand: ET %s, energy %s, avg temp %+.1f °C, peak %+.1f °C\n",
		report.Pct(-report.Improvement(r.Ondemand.ExecTimeS, r.TEEM.ExecTimeS)),
		report.Pct(-report.Improvement(r.Ondemand.EnergyJ, r.TEEM.EnergyJ)),
		r.TEEM.AvgTempC-r.Ondemand.AvgTempC,
		r.TEEM.PeakTempC-r.Ondemand.PeakTempC)
	return b.String()
}

// --- Fig. 3 / Tables I & II / Fig. 4 -----------------------------------------

// ModelResult bundles the offline-modelling artefacts for one app.
type ModelResult struct {
	App   *workload.App
	Model *core.AppModel
}

// ProfileApp runs the offline phase for the named app (default of the
// paper's modelling figures: COVARIANCE).
func (e *Env) ProfileApp(name string) (*ModelResult, error) {
	app, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	am, err := e.profileApp(app)
	if err != nil {
		return nil, err
	}
	return &ModelResult{App: app, Model: am}, nil
}

// Fig3 renders the matrix scatterplot of the profiling dataset.
func (m *ModelResult) Fig3() string {
	ds := m.Model.Dataset
	names := append([]string{ds.ResponseName}, ds.PredictorNames...)
	cols := append([][]float64{ds.Response}, ds.Predictors...)
	sm := &report.ScatterMatrix{Names: names, Cols: cols}
	return fmt.Sprintf("Fig. 3 — matrix scatterplot of response and predictor variables (%s)\n%s",
		m.App.Name, sm.Render())
}

// TableI renders the full-model R summary.
func (m *ModelResult) TableI() string {
	return fmt.Sprintf("Table I — fitting the model with all the predictor variables (%s)\n%s",
		m.App.Name, m.Model.FullModel.Summary())
}

// TableII renders the transformed-model R summary.
func (m *ModelResult) TableII() string {
	return fmt.Sprintf("Table II — the transformed model (%s, outlier row %d dropped)\n%s",
		m.App.Name, m.Model.DroppedRow, m.Model.Model.Summary())
}

// Fig4 renders the residuals-vs-fitted plot of the transformed model.
func (m *ModelResult) Fig4() string {
	return "Fig. 4 — residual plot for the transformed model\n" +
		report.ResidualPlot(m.Model.Model.Fitted, m.Model.Model.Residuals, 60, 14)
}

// --- Fig. 5 -----------------------------------------------------------------

// ApproachMetrics are the per-run evaluation metrics.
type ApproachMetrics struct {
	ETS, ECJ, AvgTC, PeakTC, VarC2, GradCps float64
	DP                                      mapping.DesignPoint
}

func metricsOf(res *sim.Result, dp mapping.DesignPoint) ApproachMetrics {
	return ApproachMetrics{
		ETS: res.ExecTimeS, ECJ: res.EnergyJ,
		AvgTC: res.AvgTempC, PeakTC: res.PeakTempC,
		VarC2: res.TempVarC2, GradCps: res.TempGradCps,
		DP: dp,
	}
}

// Fig5Row is one application's comparison.
type Fig5Row struct {
	App  *workload.App
	EEMP ApproachMetrics
	RMP  ApproachMetrics
	TEEM ApproachMetrics
}

// Fig5Result is the full three-approach comparison at one CPU mapping.
type Fig5Result struct {
	Mapping mapping.Mapping
	Rows    []Fig5Row
}

// Fig5 runs (or returns cached) the Fig. 5 evaluation at the given CPU
// mapping; the paper's headline numbers use 2L+4B. The eight application
// rows are independent simulations and fan out across the worker pool;
// rows are assembled in catalog order, so the result is byte-identical to
// a serial run. Concurrent callers of the same mapping share one
// evaluation.
func (e *Env) Fig5(m mapping.Mapping) (*Fig5Result, error) {
	return e.Fig5Ctx(context.Background(), m)
}

// Fig5Ctx is Fig5 under a context: cancelling ctx stops scheduling new
// application rows (rows already in flight finish — each is a few
// independent simulations). A cancelled evaluation is forgotten by the
// single-flight cache (error path), so a later call recomputes it.
// Concurrent callers of the same mapping share one execution — and with
// it the executing caller's cancellation — so a caller whose own
// context is still live retries when the shared execution dies of
// somebody else's cancellation, instead of surfacing a spurious error.
func (e *Env) Fig5Ctx(ctx context.Context, m mapping.Mapping) (*Fig5Result, error) {
	type outcome struct {
		res *Fig5Result
		err error
	}
	for {
		// Join (or start) the shared execution without blocking past
		// our own cancellation: a caller that joined somebody else's
		// evaluation must still return the moment its ctx dies. The
		// goroutine left behind merely finishes waiting on the shared
		// result, which stays cached for future callers.
		ch := make(chan outcome, 1)
		go func() {
			res, err := e.fig5Do(ctx, m)
			ch <- outcome{res, err}
		}()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case o := <-ch:
			if o.err != nil && ctx.Err() == nil &&
				(errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded) || errors.Is(o.err, sim.ErrAborted)) {
				// The shared execution was cancelled by another
				// caller; the failed key is already forgotten, so
				// this attempt re-executes under our own, still-live
				// context.
				continue
			}
			return o.res, o.err
		}
	}
}

func (e *Env) fig5Do(ctx context.Context, m mapping.Mapping) (*Fig5Result, error) {
	return e.fig5.Do(m.String(), func() (*Fig5Result, error) {
		// Validate the mapping once, before fanning out (NewEEMP and
		// NewRMP reject unusable mappings).
		if _, err := baseline.NewEEMP(e.Plat, e.Net, m); err != nil {
			return nil, err
		}
		if _, err := baseline.NewRMP(e.Plat, e.Net, m); err != nil {
			return nil, err
		}
		apps := workload.Apps()
		out := &Fig5Result{Mapping: m, Rows: make([]Fig5Row, len(apps))}
		if err := par.ForEachCtx(ctx, e.Workers(), len(apps), func(i int) error {
			row, err := e.fig5Row(apps[i], m)
			if err != nil {
				return err
			}
			out.Rows[i] = row
			return nil
		}); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// fig5Row evaluates the three approaches for one application. Each call
// builds its own baseline instances — their design-point tables are
// per-application, so nothing is lost by not sharing them — and the only
// shared mutable state, the profile cache, is single-flight.
func (e *Env) fig5Row(app *workload.App, m mapping.Mapping) (Fig5Row, error) {
	eemp, err := baseline.NewEEMP(e.Plat, e.Net, m)
	if err != nil {
		return Fig5Row{}, err
	}
	rmp, err := baseline.NewRMP(e.Plat, e.Net, m)
	if err != nil {
		return Fig5Row{}, err
	}
	treq := TreqFor(app, m)

	eres, edp, err := eemp.Run(app, treq)
	if err != nil {
		return Fig5Row{}, fmt.Errorf("experiments: fig5 EEMP %s: %w", app.Name, err)
	}
	rres, rdp, err := rmp.Run(app)
	if err != nil {
		return Fig5Row{}, fmt.Errorf("experiments: fig5 RMP %s: %w", app.Name, err)
	}
	if _, err := e.profileApp(app); err != nil {
		return Fig5Row{}, err
	}
	// Worker-private manager: a snapshot clone of the shared one, so the
	// decision and the regulated run touch no shared mutable state while
	// other rows profile into the original.
	mgr := e.mgr.Clone()
	part, err := mgr.DecidePartition(app.Name, treq)
	if err != nil {
		return Fig5Row{}, err
	}
	tm := m
	tm.UseGPU = part.Num < part.Den
	tres, err := mgr.RunAt(app, tm, part)
	if err != nil {
		return Fig5Row{}, fmt.Errorf("experiments: fig5 TEEM %s: %w", app.Name, err)
	}
	return Fig5Row{
		App:  app,
		EEMP: metricsOf(eres, edp),
		RMP:  metricsOf(rres, rdp),
		TEEM: metricsOf(tres, mapping.DesignPoint{Map: tm, Part: part}),
	}, nil
}

// avg reduces a metric over the rows.
func (r *Fig5Result) avg(get func(Fig5Row) (float64, float64, float64)) (eemp, rmp, teem float64) {
	n := float64(len(r.Rows))
	if n == 0 {
		return 0, 0, 0
	}
	for _, row := range r.Rows {
		a, b, c := get(row)
		eemp += a
		rmp += b
		teem += c
	}
	return eemp / n, rmp / n, teem / n
}

// EnergySavings returns TEEM's average fractional energy saving vs EEMP
// and RMP (paper: 28.32% and 13.97%).
func (r *Fig5Result) EnergySavings() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ECJ, x.RMP.ECJ, x.TEEM.ECJ })
	return report.Improvement(e, t), report.Improvement(m, t)
}

// VarianceReductions returns TEEM's average thermal-variance reduction vs
// EEMP and RMP (paper: 76% and 45% at 2L+4B; 84% and 64% at 2L+3B).
func (r *Fig5Result) VarianceReductions() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.VarC2, x.RMP.VarC2, x.TEEM.VarC2 })
	return report.Improvement(e, t), report.Improvement(m, t)
}

// PerformanceGains returns TEEM's average execution-time improvement vs
// EEMP and RMP (paper: ~28% and ~24%).
func (r *Fig5Result) PerformanceGains() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ETS, x.RMP.ETS, x.TEEM.ETS })
	return report.Improvement(e, t), report.Improvement(m, t)
}

func (r *Fig5Result) chart(title, unit string, get func(Fig5Row) (float64, float64, float64)) string {
	c := &report.BarChart{
		Title:  title,
		Unit:   unit,
		Series: []string{"EEMP", "RMP", "TEEM"},
	}
	for _, row := range r.Rows {
		a, b, v := get(row)
		c.Groups = append(c.Groups, report.BarGroup{Label: row.App.Short, Values: []float64{a, b, v}})
	}
	return c.Render()
}

// RenderEnergy is Fig. 5(a).
func (r *Fig5Result) RenderEnergy() string {
	s := r.chart(fmt.Sprintf("Fig. 5(a) — energy consumption, mapping %s", r.Mapping), "J",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ECJ, x.RMP.ECJ, x.TEEM.ECJ })
	e, m := r.EnergySavings()
	return s + fmt.Sprintf("TEEM average energy saving: %s vs EEMP, %s vs RMP (paper: 28.32%% / 13.97%%)\n",
		report.Pct(e), report.Pct(m))
}

// RenderTemperature is Fig. 5(b).
func (r *Fig5Result) RenderTemperature() string {
	s := r.chart(fmt.Sprintf("Fig. 5(b) — average temperature, mapping %s", r.Mapping), "°C",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.AvgTC, x.RMP.AvgTC, x.TEEM.AvgTC })
	e, m := r.VarianceReductions()
	return s + fmt.Sprintf("TEEM thermal-variance reduction: %s vs EEMP, %s vs RMP (paper: 76%% / 45%% at 2L+4B)\n",
		report.Pct(e), report.Pct(m))
}

// RenderPerformance is Fig. 5(c).
func (r *Fig5Result) RenderPerformance() string {
	s := r.chart(fmt.Sprintf("Fig. 5(c) — execution time, mapping %s", r.Mapping), "s",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ETS, x.RMP.ETS, x.TEEM.ETS })
	e, m := r.PerformanceGains()
	return s + fmt.Sprintf("TEEM average performance improvement: %s vs EEMP, %s vs RMP (paper: ~28%% / ~24%%)\n",
		report.Pct(e), report.Pct(m))
}

// --- §V.D memory ------------------------------------------------------------

// MemoryResult is the §V.D storage comparison.
type MemoryResult struct {
	EEMPItems, TEEMItems int
	EEMPBytes, TEEMBytes int
	ByteSaving           float64
	ItemSaving           float64
}

// Memory computes the §V.D memory-optimisation comparison.
func (e *Env) Memory() MemoryResult {
	return MemoryResult{
		EEMPItems:  mapping.EEMPStoredItems(),
		TEEMItems:  mapping.TEEMStoredItems(),
		EEMPBytes:  mapping.EEMPStorageBytes(),
		TEEMBytes:  mapping.TEEMStorageBytes(),
		ByteSaving: mapping.MemorySavingFraction(),
		ItemSaving: mapping.ItemSavingFraction(),
	}
}

// Render returns the §V.D comparison table.
func (m MemoryResult) Render() string {
	t := &report.Table{
		Title:   "§V.D — per-application storage: table-based (EEMP) vs model-based (TEEM)",
		Headers: []string{"store", "items", "bytes"},
	}
	t.AddRow("EEMP design-point table", fmt.Sprintf("%d", m.EEMPItems), fmt.Sprintf("%d", m.EEMPBytes))
	t.AddRow("TEEM model + ETGPU", fmt.Sprintf("%d", m.TEEMItems), fmt.Sprintf("%d", m.TEEMBytes))
	return t.Render() + fmt.Sprintf("memory saving: %.1f%% bytes, %.1f%% items (paper: 98.8%%, abstract: >90%%)\n",
		100*m.ByteSaving, 100*m.ItemSaving)
}

// --- ablations ----------------------------------------------------------------

// SweepPoint is one ablation sample.
type SweepPoint struct {
	Value                   float64
	ETS, ECJ, AvgTC, PeakTC float64
	VarC2                   float64
	Transitions             int
}

// runTEEMWith runs COVARIANCE (2L+4B, CPU-bound partition 5/8 so the
// regulated cluster is the execution-time pole) under modified controller
// parameters.
func (e *Env) runTEEMWith(ctx context.Context, p core.Params) (*sim.Result, error) {
	app := workload.Covariance()
	m := mapping.Mapping{Big: 4, Little: 2, UseGPU: true}
	return sim.RunWarm(sim.Config{
		Platform: e.Plat, Net: e.Net, App: app,
		Map: m, Part: mapping.Partition{Num: 5, Den: 8},
		Governor: core.NewController(p),
		Done:     ctx.Done(),
	})
}

// sweep fans the ablation points out across the worker pool: every point
// is an independent simulation under modified controller parameters, and
// the result slice is assembled by index, matching the serial order.
// Cancelling ctx stops scheduling new points and aborts in-flight
// simulations within one engine tick.
func (e *Env) sweep(ctx context.Context, n int, modify func(i int) (value float64, p core.Params)) ([]SweepPoint, error) {
	out := make([]SweepPoint, n)
	if err := par.ForEachCtx(ctx, e.Workers(), n, func(i int) error {
		v, p := modify(i)
		res, err := e.runTEEMWith(ctx, p)
		if err != nil {
			return err
		}
		out[i] = SweepPoint{
			Value: v, ETS: res.ExecTimeS, ECJ: res.EnergyJ,
			AvgTC: res.AvgTempC, PeakTC: res.PeakTempC, VarC2: res.TempVarC2,
			Transitions: res.FreqTransitions,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ThresholdSweep ablates the software threshold (the paper motivates
// 85 °C: higher thresholds cause frequent frequency changes, lower ones
// give up performance).
func (e *Env) ThresholdSweep(thresholds []float64) ([]SweepPoint, error) {
	return e.ThresholdSweepCtx(context.Background(), thresholds)
}

// ThresholdSweepCtx is ThresholdSweep under a context (cancellable).
func (e *Env) ThresholdSweepCtx(ctx context.Context, thresholds []float64) ([]SweepPoint, error) {
	if len(thresholds) == 0 {
		return nil, errors.New("experiments: empty threshold sweep")
	}
	return e.sweep(ctx, len(thresholds), func(i int) (float64, core.Params) {
		p := e.Params
		p.ThresholdC = thresholds[i]
		return thresholds[i], p
	})
}

// DeltaSweep ablates the step-down δ (paper: 200 MHz).
func (e *Env) DeltaSweep(deltasMHz []int) ([]SweepPoint, error) {
	return e.DeltaSweepCtx(context.Background(), deltasMHz)
}

// DeltaSweepCtx is DeltaSweep under a context (cancellable).
func (e *Env) DeltaSweepCtx(ctx context.Context, deltasMHz []int) ([]SweepPoint, error) {
	if len(deltasMHz) == 0 {
		return nil, errors.New("experiments: empty delta sweep")
	}
	return e.sweep(ctx, len(deltasMHz), func(i int) (float64, core.Params) {
		p := e.Params
		p.DeltaMHz = deltasMHz[i]
		return float64(deltasMHz[i]), p
	})
}

// FloorSweep ablates the frequency floor (paper: 1400 MHz).
func (e *Env) FloorSweep(floorsMHz []int) ([]SweepPoint, error) {
	return e.FloorSweepCtx(context.Background(), floorsMHz)
}

// FloorSweepCtx is FloorSweep under a context (cancellable).
func (e *Env) FloorSweepCtx(ctx context.Context, floorsMHz []int) ([]SweepPoint, error) {
	if len(floorsMHz) == 0 {
		return nil, errors.New("experiments: empty floor sweep")
	}
	return e.sweep(ctx, len(floorsMHz), func(i int) (float64, core.Params) {
		p := e.Params
		p.FloorMHz = floorsMHz[i]
		return float64(floorsMHz[i]), p
	})
}

// RenderSweep formats an ablation table.
func RenderSweep(title, valueName string, pts []SweepPoint) string {
	t := &report.Table{
		Title:   title,
		Headers: []string{valueName, "ET (s)", "energy (J)", "avg T", "peak T", "variance", "DVFS transitions"},
	}
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%g", p.Value),
			fmt.Sprintf("%.1f", p.ETS),
			fmt.Sprintf("%.0f", p.ECJ),
			fmt.Sprintf("%.1f", p.AvgTC),
			fmt.Sprintf("%.1f", p.PeakTC),
			fmt.Sprintf("%.2f", p.VarC2),
			fmt.Sprintf("%d", p.Transitions),
		)
	}
	return t.Render()
}

// Eq12Result carries the design-space counts of Eqs. (1)–(2).
type Eq12Result struct {
	CPUMappings     int
	MaxDesignPoints int
	TotalWithGrains int
	DiverseSubset   int
	// Enumerated is the point count from actually walking the design
	// space (sharded across the worker pool) — a cross-check of the
	// closed-form TotalWithGrains.
	Enumerated int
}

// DesignSpace evaluates the paper's design-space counts on the platform.
// The exhaustive enumeration that cross-checks the Eq. (2) closed form is
// sharded across the worker pool: each worker walks a disjoint interleaved
// slice of the space (mapping.Space.EnumerateShard).
func (e *Env) DesignSpace() (Eq12Result, error) {
	sp, err := mapping.NewSpace(e.Plat)
	if err != nil {
		return Eq12Result{}, err
	}
	shards := par.Normalize(e.Workers(), sp.TotalDesignPoints())
	counts := make([]int, shards)
	if err := par.ForEach(shards, shards, func(i int) error {
		sp.EnumerateShard(i, shards, func(mapping.DesignPoint) bool {
			counts[i]++
			return true
		})
		return nil
	}); err != nil {
		return Eq12Result{}, err
	}
	enumerated := 0
	for _, c := range counts {
		enumerated += c
	}
	return Eq12Result{
		CPUMappings:     sp.CountCPUMappings(),
		MaxDesignPoints: sp.MaxDesignPoints(),
		TotalWithGrains: sp.TotalDesignPoints(),
		DiverseSubset:   len(sp.DiverseSubset()),
		Enumerated:      enumerated,
	}, nil
}

// Render returns the design-space table.
func (r Eq12Result) Render() string {
	t := &report.Table{
		Title:   "Design space (paper: Eq. 1 → 24 CPU mappings; Eq. 2 → 28 560; ×9 partitions → 257 040; profiled subset 10 368)",
		Headers: []string{"quantity", "count"},
	}
	t.AddRow("Eq. (1) CPU mappings", fmt.Sprintf("%d", r.CPUMappings))
	t.AddRow("Eq. (2) max design points", fmt.Sprintf("%d", r.MaxDesignPoints))
	t.AddRow("× 9 partition grains", fmt.Sprintf("%d", r.TotalWithGrains))
	t.AddRow("enumerated (sharded walk)", fmt.Sprintf("%d", r.Enumerated))
	t.AddRow("diverse profiled subset", fmt.Sprintf("%d", r.DiverseSubset))
	return t.Render()
}
