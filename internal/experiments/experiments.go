// Package experiments regenerates every table and figure of the TEEM
// paper's evaluation on the simulated Exynos 5422:
//
//	Fig. 1   — motivation: ondemand+TMU vs TEEM on COVARIANCE (2L+3B,
//	           partition 1024/2048): traces and summary metrics
//	Fig. 3   — matrix scatterplot of the profiling dataset
//	Table I  — full regression model M ~ AT+ET+PT+EC
//	Table II — transformed model log10(M) ~ AT+ET
//	Fig. 4   — residuals-vs-fitted of the transformed model
//	Fig. 5   — energy (a), temperature (b), execution time (c) of
//	           EEMP/RMP/TEEM across the eight Polybench apps at 2L+4B
//	§V.D     — memory-footprint comparison (128 items vs 2)
//
// plus the ablations DESIGN.md calls out (threshold, δ and floor sweeps).
// Results are cached inside an Env so chained experiments don't repeat
// expensive simulation work.
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"teem/internal/baseline"
	"teem/internal/core"
	"teem/internal/governor"
	"teem/internal/mapping"
	"teem/internal/report"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// Env is a shared, lazily evaluated experiment environment.
type Env struct {
	Plat   *soc.Platform
	Net    *thermal.Network
	Params core.Params

	mgr      *core.Manager
	profiles map[string]*core.AppModel
	fig5     map[string]*Fig5Result // keyed by mapping string
}

// NewEnv builds the default environment (Exynos 5422, paper parameters).
func NewEnv() (*Env, error) {
	plat := soc.Exynos5422()
	net := thermal.Exynos5422Network()
	params := core.DefaultParams()
	mgr, err := core.NewManager(plat, net, params)
	if err != nil {
		return nil, err
	}
	return &Env{
		Plat:     plat,
		Net:      net,
		Params:   params,
		mgr:      mgr,
		profiles: map[string]*core.AppModel{},
		fig5:     map[string]*Fig5Result{},
	}, nil
}

// Manager exposes the TEEM manager (profiled apps accumulate in it).
func (e *Env) Manager() *core.Manager { return e.mgr }

// profileApp profiles an app once and caches the model.
func (e *Env) profileApp(app *workload.App) (*core.AppModel, error) {
	if am, ok := e.profiles[app.Name]; ok {
		return am, nil
	}
	am, err := e.mgr.Profile(app)
	if err != nil {
		return nil, err
	}
	e.profiles[app.Name] = am
	return am, nil
}

// TreqFor is the evaluation's performance requirement policy: 15% slack
// over the ideal balanced split at maximum frequency. For COVARIANCE this
// lands on the paper's "partition 1024" even split through Eq. (9).
func TreqFor(app *workload.App, m mapping.Mapping) float64 {
	etCPU := app.ETCPUOnly(m.Big, m.Little, 2000, 1400)
	etGPU := app.ETGPUOnly(6, 600)
	if etCPU == 0 {
		return etGPU
	}
	return 1.15 * etCPU * etGPU / (etCPU + etGPU)
}

// --- Fig. 1 -----------------------------------------------------------------

// Fig1Result holds the motivation comparison.
type Fig1Result struct {
	// Ondemand is the "existing approach" run (Fig. 1a); TEEM the
	// proposed run (Fig. 1b).
	Ondemand, TEEM *sim.Result
}

// Fig1 reproduces the motivational case study: COVARIANCE on 2L+3B with
// partition 1024 of 2048, ondemand+TMU against the TEEM controller.
func (e *Env) Fig1() (*Fig1Result, error) {
	m := mapping.Mapping{Big: 3, Little: 2, UseGPU: true}
	part := mapping.Partition{Num: 4, Den: 8}
	app := workload.Covariance()

	od, err := sim.RunWarm(sim.Config{
		Platform: e.Plat, Net: e.Net, App: app,
		Map: m, Part: part,
		Governor: governor.NewOndemand(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 ondemand: %w", err)
	}
	te, err := sim.RunWarm(sim.Config{
		Platform: e.Plat, Net: e.Net, App: app,
		Map: m, Part: part,
		Governor: core.NewController(e.Params),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 teem: %w", err)
	}
	return &Fig1Result{Ondemand: od, TEEM: te}, nil
}

// Render returns the Fig. 1 style charts and summary.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1(a) — existing approach (ondemand + TMU)\n")
	b.WriteString(r.Ondemand.Trace.RenderTempAndFreq("A15", "A15", 72, 12))
	b.WriteString("\nFig. 1(b) — proposed TEEM\n")
	b.WriteString(r.TEEM.Trace.RenderTempAndFreq("A15", "A15", 72, 12))

	t := &report.Table{
		Title:   "Fig. 1 summary (paper: ondemand 48 s / 530 J / 93.7 °C avg / 96 °C peak; TEEM 39.6 s / 413 J / 85.8 °C avg / 90 °C peak)",
		Headers: []string{"approach", "ET (s)", "energy (J)", "avg T (°C)", "peak T (°C)", "T variance", "trips", "thermal cycles ≥3°C"},
	}
	row := func(name string, res *sim.Result) {
		big := res.Trace.NodeIndex("A15")
		t.AddRow(name,
			fmt.Sprintf("%.1f", res.ExecTimeS),
			fmt.Sprintf("%.0f", res.EnergyJ),
			fmt.Sprintf("%.1f", res.AvgTempC),
			fmt.Sprintf("%.1f", res.PeakTempC),
			fmt.Sprintf("%.2f", res.TempVarC2),
			fmt.Sprintf("%d", res.ThrottleEvents),
			fmt.Sprintf("%d", res.Trace.CycleCount(big, 3)))
	}
	row("ondemand", r.Ondemand)
	row("TEEM", r.TEEM)
	b.WriteString("\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nTEEM vs ondemand: ET %s, energy %s, avg temp %+.1f °C, peak %+.1f °C\n",
		report.Pct(-report.Improvement(r.Ondemand.ExecTimeS, r.TEEM.ExecTimeS)),
		report.Pct(-report.Improvement(r.Ondemand.EnergyJ, r.TEEM.EnergyJ)),
		r.TEEM.AvgTempC-r.Ondemand.AvgTempC,
		r.TEEM.PeakTempC-r.Ondemand.PeakTempC)
	return b.String()
}

// --- Fig. 3 / Tables I & II / Fig. 4 -----------------------------------------

// ModelResult bundles the offline-modelling artefacts for one app.
type ModelResult struct {
	App   *workload.App
	Model *core.AppModel
}

// ProfileApp runs the offline phase for the named app (default of the
// paper's modelling figures: COVARIANCE).
func (e *Env) ProfileApp(name string) (*ModelResult, error) {
	app, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	am, err := e.profileApp(app)
	if err != nil {
		return nil, err
	}
	return &ModelResult{App: app, Model: am}, nil
}

// Fig3 renders the matrix scatterplot of the profiling dataset.
func (m *ModelResult) Fig3() string {
	ds := m.Model.Dataset
	names := append([]string{ds.ResponseName}, ds.PredictorNames...)
	cols := append([][]float64{ds.Response}, ds.Predictors...)
	sm := &report.ScatterMatrix{Names: names, Cols: cols}
	return fmt.Sprintf("Fig. 3 — matrix scatterplot of response and predictor variables (%s)\n%s",
		m.App.Name, sm.Render())
}

// TableI renders the full-model R summary.
func (m *ModelResult) TableI() string {
	return fmt.Sprintf("Table I — fitting the model with all the predictor variables (%s)\n%s",
		m.App.Name, m.Model.FullModel.Summary())
}

// TableII renders the transformed-model R summary.
func (m *ModelResult) TableII() string {
	return fmt.Sprintf("Table II — the transformed model (%s, outlier row %d dropped)\n%s",
		m.App.Name, m.Model.DroppedRow, m.Model.Model.Summary())
}

// Fig4 renders the residuals-vs-fitted plot of the transformed model.
func (m *ModelResult) Fig4() string {
	return "Fig. 4 — residual plot for the transformed model\n" +
		report.ResidualPlot(m.Model.Model.Fitted, m.Model.Model.Residuals, 60, 14)
}

// --- Fig. 5 -----------------------------------------------------------------

// ApproachMetrics are the per-run evaluation metrics.
type ApproachMetrics struct {
	ETS, ECJ, AvgTC, PeakTC, VarC2, GradCps float64
	DP                                      mapping.DesignPoint
}

func metricsOf(res *sim.Result, dp mapping.DesignPoint) ApproachMetrics {
	return ApproachMetrics{
		ETS: res.ExecTimeS, ECJ: res.EnergyJ,
		AvgTC: res.AvgTempC, PeakTC: res.PeakTempC,
		VarC2: res.TempVarC2, GradCps: res.TempGradCps,
		DP: dp,
	}
}

// Fig5Row is one application's comparison.
type Fig5Row struct {
	App  *workload.App
	EEMP ApproachMetrics
	RMP  ApproachMetrics
	TEEM ApproachMetrics
}

// Fig5Result is the full three-approach comparison at one CPU mapping.
type Fig5Result struct {
	Mapping mapping.Mapping
	Rows    []Fig5Row
}

// Fig5 runs (or returns cached) the Fig. 5 evaluation at the given CPU
// mapping; the paper's headline numbers use 2L+4B.
func (e *Env) Fig5(m mapping.Mapping) (*Fig5Result, error) {
	key := m.String()
	if r, ok := e.fig5[key]; ok {
		return r, nil
	}
	eemp, err := baseline.NewEEMP(e.Plat, e.Net, m)
	if err != nil {
		return nil, err
	}
	rmp, err := baseline.NewRMP(e.Plat, e.Net, m)
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{Mapping: m}
	for _, app := range workload.Apps() {
		treq := TreqFor(app, m)

		eres, edp, err := eemp.Run(app, treq)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 EEMP %s: %w", app.Name, err)
		}
		rres, rdp, err := rmp.Run(app)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 RMP %s: %w", app.Name, err)
		}
		if _, err := e.profileApp(app); err != nil {
			return nil, err
		}
		part, err := e.mgr.DecidePartition(app.Name, treq)
		if err != nil {
			return nil, err
		}
		tm := m
		tm.UseGPU = part.Num < part.Den
		tres, err := e.mgr.RunAt(app, tm, part)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 TEEM %s: %w", app.Name, err)
		}
		out.Rows = append(out.Rows, Fig5Row{
			App:  app,
			EEMP: metricsOf(eres, edp),
			RMP:  metricsOf(rres, rdp),
			TEEM: metricsOf(tres, mapping.DesignPoint{Map: tm, Part: part}),
		})
	}
	e.fig5[key] = out
	return out, nil
}

// avg reduces a metric over the rows.
func (r *Fig5Result) avg(get func(Fig5Row) (float64, float64, float64)) (eemp, rmp, teem float64) {
	n := float64(len(r.Rows))
	if n == 0 {
		return 0, 0, 0
	}
	for _, row := range r.Rows {
		a, b, c := get(row)
		eemp += a
		rmp += b
		teem += c
	}
	return eemp / n, rmp / n, teem / n
}

// EnergySavings returns TEEM's average fractional energy saving vs EEMP
// and RMP (paper: 28.32% and 13.97%).
func (r *Fig5Result) EnergySavings() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ECJ, x.RMP.ECJ, x.TEEM.ECJ })
	return report.Improvement(e, t), report.Improvement(m, t)
}

// VarianceReductions returns TEEM's average thermal-variance reduction vs
// EEMP and RMP (paper: 76% and 45% at 2L+4B; 84% and 64% at 2L+3B).
func (r *Fig5Result) VarianceReductions() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.VarC2, x.RMP.VarC2, x.TEEM.VarC2 })
	return report.Improvement(e, t), report.Improvement(m, t)
}

// PerformanceGains returns TEEM's average execution-time improvement vs
// EEMP and RMP (paper: ~28% and ~24%).
func (r *Fig5Result) PerformanceGains() (vsEEMP, vsRMP float64) {
	e, m, t := r.avg(func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ETS, x.RMP.ETS, x.TEEM.ETS })
	return report.Improvement(e, t), report.Improvement(m, t)
}

func (r *Fig5Result) chart(title, unit string, get func(Fig5Row) (float64, float64, float64)) string {
	c := &report.BarChart{
		Title:  title,
		Unit:   unit,
		Series: []string{"EEMP", "RMP", "TEEM"},
	}
	for _, row := range r.Rows {
		a, b, v := get(row)
		c.Groups = append(c.Groups, report.BarGroup{Label: row.App.Short, Values: []float64{a, b, v}})
	}
	return c.Render()
}

// RenderEnergy is Fig. 5(a).
func (r *Fig5Result) RenderEnergy() string {
	s := r.chart(fmt.Sprintf("Fig. 5(a) — energy consumption, mapping %s", r.Mapping), "J",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ECJ, x.RMP.ECJ, x.TEEM.ECJ })
	e, m := r.EnergySavings()
	return s + fmt.Sprintf("TEEM average energy saving: %s vs EEMP, %s vs RMP (paper: 28.32%% / 13.97%%)\n",
		report.Pct(e), report.Pct(m))
}

// RenderTemperature is Fig. 5(b).
func (r *Fig5Result) RenderTemperature() string {
	s := r.chart(fmt.Sprintf("Fig. 5(b) — average temperature, mapping %s", r.Mapping), "°C",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.AvgTC, x.RMP.AvgTC, x.TEEM.AvgTC })
	e, m := r.VarianceReductions()
	return s + fmt.Sprintf("TEEM thermal-variance reduction: %s vs EEMP, %s vs RMP (paper: 76%% / 45%% at 2L+4B)\n",
		report.Pct(e), report.Pct(m))
}

// RenderPerformance is Fig. 5(c).
func (r *Fig5Result) RenderPerformance() string {
	s := r.chart(fmt.Sprintf("Fig. 5(c) — execution time, mapping %s", r.Mapping), "s",
		func(x Fig5Row) (float64, float64, float64) { return x.EEMP.ETS, x.RMP.ETS, x.TEEM.ETS })
	e, m := r.PerformanceGains()
	return s + fmt.Sprintf("TEEM average performance improvement: %s vs EEMP, %s vs RMP (paper: ~28%% / ~24%%)\n",
		report.Pct(e), report.Pct(m))
}

// --- §V.D memory ------------------------------------------------------------

// MemoryResult is the §V.D storage comparison.
type MemoryResult struct {
	EEMPItems, TEEMItems int
	EEMPBytes, TEEMBytes int
	ByteSaving           float64
	ItemSaving           float64
}

// Memory computes the §V.D memory-optimisation comparison.
func (e *Env) Memory() MemoryResult {
	return MemoryResult{
		EEMPItems:  mapping.EEMPStoredItems(),
		TEEMItems:  mapping.TEEMStoredItems(),
		EEMPBytes:  mapping.EEMPStorageBytes(),
		TEEMBytes:  mapping.TEEMStorageBytes(),
		ByteSaving: mapping.MemorySavingFraction(),
		ItemSaving: mapping.ItemSavingFraction(),
	}
}

// Render returns the §V.D comparison table.
func (m MemoryResult) Render() string {
	t := &report.Table{
		Title:   "§V.D — per-application storage: table-based (EEMP) vs model-based (TEEM)",
		Headers: []string{"store", "items", "bytes"},
	}
	t.AddRow("EEMP design-point table", fmt.Sprintf("%d", m.EEMPItems), fmt.Sprintf("%d", m.EEMPBytes))
	t.AddRow("TEEM model + ETGPU", fmt.Sprintf("%d", m.TEEMItems), fmt.Sprintf("%d", m.TEEMBytes))
	return t.Render() + fmt.Sprintf("memory saving: %.1f%% bytes, %.1f%% items (paper: 98.8%%, abstract: >90%%)\n",
		100*m.ByteSaving, 100*m.ItemSaving)
}

// --- ablations ----------------------------------------------------------------

// SweepPoint is one ablation sample.
type SweepPoint struct {
	Value                   float64
	ETS, ECJ, AvgTC, PeakTC float64
	VarC2                   float64
	Transitions             int
}

// runTEEMWith runs COVARIANCE (2L+4B, CPU-bound partition 5/8 so the
// regulated cluster is the execution-time pole) under modified controller
// parameters.
func (e *Env) runTEEMWith(p core.Params) (*sim.Result, error) {
	app := workload.Covariance()
	m := mapping.Mapping{Big: 4, Little: 2, UseGPU: true}
	return sim.RunWarm(sim.Config{
		Platform: e.Plat, Net: e.Net, App: app,
		Map: m, Part: mapping.Partition{Num: 5, Den: 8},
		Governor: core.NewController(p),
	})
}

// ThresholdSweep ablates the software threshold (the paper motivates
// 85 °C: higher thresholds cause frequent frequency changes, lower ones
// give up performance).
func (e *Env) ThresholdSweep(thresholds []float64) ([]SweepPoint, error) {
	if len(thresholds) == 0 {
		return nil, errors.New("experiments: empty threshold sweep")
	}
	var out []SweepPoint
	for _, th := range thresholds {
		p := e.Params
		p.ThresholdC = th
		res, err := e.runTEEMWith(p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Value: th, ETS: res.ExecTimeS, ECJ: res.EnergyJ,
			AvgTC: res.AvgTempC, PeakTC: res.PeakTempC, VarC2: res.TempVarC2,
			Transitions: res.FreqTransitions,
		})
	}
	return out, nil
}

// DeltaSweep ablates the step-down δ (paper: 200 MHz).
func (e *Env) DeltaSweep(deltasMHz []int) ([]SweepPoint, error) {
	if len(deltasMHz) == 0 {
		return nil, errors.New("experiments: empty delta sweep")
	}
	var out []SweepPoint
	for _, d := range deltasMHz {
		p := e.Params
		p.DeltaMHz = d
		res, err := e.runTEEMWith(p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Value: float64(d), ETS: res.ExecTimeS, ECJ: res.EnergyJ,
			AvgTC: res.AvgTempC, PeakTC: res.PeakTempC, VarC2: res.TempVarC2,
			Transitions: res.FreqTransitions,
		})
	}
	return out, nil
}

// FloorSweep ablates the frequency floor (paper: 1400 MHz).
func (e *Env) FloorSweep(floorsMHz []int) ([]SweepPoint, error) {
	if len(floorsMHz) == 0 {
		return nil, errors.New("experiments: empty floor sweep")
	}
	var out []SweepPoint
	for _, f := range floorsMHz {
		p := e.Params
		p.FloorMHz = f
		res, err := e.runTEEMWith(p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Value: float64(f), ETS: res.ExecTimeS, ECJ: res.EnergyJ,
			AvgTC: res.AvgTempC, PeakTC: res.PeakTempC, VarC2: res.TempVarC2,
			Transitions: res.FreqTransitions,
		})
	}
	return out, nil
}

// RenderSweep formats an ablation table.
func RenderSweep(title, valueName string, pts []SweepPoint) string {
	t := &report.Table{
		Title:   title,
		Headers: []string{valueName, "ET (s)", "energy (J)", "avg T", "peak T", "variance", "DVFS transitions"},
	}
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%g", p.Value),
			fmt.Sprintf("%.1f", p.ETS),
			fmt.Sprintf("%.0f", p.ECJ),
			fmt.Sprintf("%.1f", p.AvgTC),
			fmt.Sprintf("%.1f", p.PeakTC),
			fmt.Sprintf("%.2f", p.VarC2),
			fmt.Sprintf("%d", p.Transitions),
		)
	}
	return t.Render()
}

// Eq12Result carries the design-space counts of Eqs. (1)–(2).
type Eq12Result struct {
	CPUMappings     int
	MaxDesignPoints int
	TotalWithGrains int
	DiverseSubset   int
}

// DesignSpace evaluates the paper's design-space counts on the platform.
func (e *Env) DesignSpace() (Eq12Result, error) {
	sp, err := mapping.NewSpace(e.Plat)
	if err != nil {
		return Eq12Result{}, err
	}
	return Eq12Result{
		CPUMappings:     sp.CountCPUMappings(),
		MaxDesignPoints: sp.MaxDesignPoints(),
		TotalWithGrains: sp.TotalDesignPoints(),
		DiverseSubset:   len(sp.DiverseSubset()),
	}, nil
}

// Render returns the design-space table.
func (r Eq12Result) Render() string {
	t := &report.Table{
		Title:   "Design space (paper: Eq. 1 → 24 CPU mappings; Eq. 2 → 28 560; ×9 partitions → 257 040; profiled subset 10 368)",
		Headers: []string{"quantity", "count"},
	}
	t.AddRow("Eq. (1) CPU mappings", fmt.Sprintf("%d", r.CPUMappings))
	t.AddRow("Eq. (2) max design points", fmt.Sprintf("%d", r.MaxDesignPoints))
	t.AddRow("× 9 partition grains", fmt.Sprintf("%d", r.TotalWithGrains))
	t.AddRow("diverse profiled subset", fmt.Sprintf("%d", r.DiverseSubset))
	return t.Render()
}
