package experiments

import (
	"context"

	"teem/internal/platform"
	"teem/internal/scenario"
)

// ScenarioGrid runs every scenario under every named governor on the
// environment's platform, fanned out across the worker pool like the
// Fig. 5 rows (Options.Workers; 1 forces the serial path). Cells are
// assembled by index, so parallel output is byte-identical to a serial
// run. An empty governor list runs the stock registry.
func (e *Env) ScenarioGrid(scs []*scenario.Scenario, governors []string) (*scenario.GridResult, error) {
	return e.ScenarioGridCtx(context.Background(), scs, governors)
}

// ScenarioGridCtx is ScenarioGrid under a context: cancelling ctx stops
// scheduling new cells, aborts in-flight simulations within one engine
// tick, and returns the partial grid with an error wrapping ctx.Err()
// (see scenario.RunGridCtx).
func (e *Env) ScenarioGridCtx(ctx context.Context, scs []*scenario.Scenario, governors []string) (*scenario.GridResult, error) {
	if len(governors) == 0 {
		governors = scenario.GovernorNames()
	}
	rc := scenario.Config{Platform: e.Plat, Net: e.Net}
	return scenario.RunGridCtx(ctx, scs, governors, rc, e.Workers())
}

// ScenarioPresets runs the built-in scenario corpus under the stock
// governors — the dynamic-workload counterpart of the Fig. 5 sweep.
func (e *Env) ScenarioPresets() (*scenario.GridResult, error) {
	return e.ScenarioGrid(scenario.Presets(), nil)
}

// ScenarioPlatformGrid fans the scenario × governor matrix out across
// catalog platforms — the cross-platform sweep. Platform references
// resolve by catalog name or bundle-file path; an empty list sweeps the
// whole builtin catalog, an empty governor list the stock registry. The
// environment's own Plat/Net are not used: the platform axis belongs to
// the grid.
func (e *Env) ScenarioPlatformGrid(platforms []string, scs []*scenario.Scenario, governors []string) (*scenario.PlatformGridResult, error) {
	return e.ScenarioPlatformGridCtx(context.Background(), platforms, scs, governors)
}

// ScenarioPlatformGridCtx is ScenarioPlatformGrid under a context (see
// ScenarioGridCtx for the cancellation contract).
func (e *Env) ScenarioPlatformGridCtx(ctx context.Context, platforms []string, scs []*scenario.Scenario, governors []string) (*scenario.PlatformGridResult, error) {
	if len(platforms) == 0 {
		platforms = platform.Names()
	}
	if len(governors) == 0 {
		governors = scenario.GovernorNames()
	}
	return scenario.RunPlatformGridCtx(ctx, platforms, scs, governors, scenario.Config{}, e.Workers())
}

// ScenarioReplay compiles a recorded arrival log (trace-driven replay)
// and runs it under the named governors on the environment's platform —
// measured device traces through the same grid machinery as the presets.
func (e *Env) ScenarioReplay(tr *scenario.ArrivalTrace, governors []string) (*scenario.GridResult, error) {
	return e.ScenarioReplayCtx(context.Background(), tr, governors)
}

// ScenarioReplayCtx is ScenarioReplay under a context (see
// ScenarioGridCtx for the cancellation contract).
func (e *Env) ScenarioReplayCtx(ctx context.Context, tr *scenario.ArrivalTrace, governors []string) (*scenario.GridResult, error) {
	sc, err := scenario.FromTrace(tr)
	if err != nil {
		return nil, err
	}
	return e.ScenarioGridCtx(ctx, []*scenario.Scenario{sc}, governors)
}
