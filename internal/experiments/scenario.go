package experiments

import (
	"teem/internal/scenario"
)

// ScenarioGrid runs every scenario under every named governor on the
// environment's platform, fanned out across the worker pool like the
// Fig. 5 rows (Options.Workers; 1 forces the serial path). Cells are
// assembled by index, so parallel output is byte-identical to a serial
// run. An empty governor list runs the stock registry.
func (e *Env) ScenarioGrid(scs []*scenario.Scenario, governors []string) (*scenario.GridResult, error) {
	if len(governors) == 0 {
		governors = scenario.GovernorNames()
	}
	rc := scenario.Config{Platform: e.Plat, Net: e.Net}
	return scenario.RunGrid(scs, governors, rc, e.Workers())
}

// ScenarioPresets runs the built-in scenario corpus under the stock
// governors — the dynamic-workload counterpart of the Fig. 5 sweep.
func (e *Env) ScenarioPresets() (*scenario.GridResult, error) {
	return e.ScenarioGrid(scenario.Presets(), nil)
}

// ScenarioReplay compiles a recorded arrival log (trace-driven replay)
// and runs it under the named governors on the environment's platform —
// measured device traces through the same grid machinery as the presets.
func (e *Env) ScenarioReplay(tr *scenario.ArrivalTrace, governors []string) (*scenario.GridResult, error) {
	sc, err := scenario.FromTrace(tr)
	if err != nil {
		return nil, err
	}
	return e.ScenarioGrid([]*scenario.Scenario{sc}, governors)
}
