package experiments

import (
	"sync"
	"testing"

	"teem/internal/workload"
)

// Determinism: the parallel engine must produce byte-identical output to
// the serial path, whatever the worker count. Rendered strings are the
// strictest practical comparison — they embed every formatted metric.
func TestParallelOutputMatchesSerial(t *testing.T) {
	serial, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEnvWith(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name, a, b string) {
		t.Helper()
		if a != b {
			t.Errorf("%s: parallel output differs from serial", name)
		}
	}

	// Fig. 1 — the two governor runs fan out.
	f1s, err := serial.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	f1p, err := parallel.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	check("fig1", f1s.Render(), f1p.Render())

	// Fig. 5 — the eight application rows fan out.
	f5s, err := serial.Fig5(fig5Mapping)
	if err != nil {
		t.Fatal(err)
	}
	f5p, err := parallel.Fig5(fig5Mapping)
	if err != nil {
		t.Fatal(err)
	}
	check("fig5 energy", f5s.RenderEnergy(), f5p.RenderEnergy())
	check("fig5 temperature", f5s.RenderTemperature(), f5p.RenderTemperature())
	check("fig5 performance", f5s.RenderPerformance(), f5p.RenderPerformance())

	// Ablation sweeps — the points fan out.
	ths, err := serial.ThresholdSweep([]float64{80, 85, 90})
	if err != nil {
		t.Fatal(err)
	}
	thp, err := parallel.ThresholdSweep([]float64{80, 85, 90})
	if err != nil {
		t.Fatal(err)
	}
	check("threshold sweep", RenderSweep("t", "v", ths), RenderSweep("t", "v", thp))

	ds, err := serial.DeltaSweep([]int{100, 200, 400})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := parallel.DeltaSweep([]int{100, 200, 400})
	if err != nil {
		t.Fatal(err)
	}
	check("delta sweep", RenderSweep("d", "v", ds), RenderSweep("d", "v", dp))

	fs, err := serial.FloorSweep([]int{1000, 1400, 1800})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := parallel.FloorSweep([]int{1000, 1400, 1800})
	if err != nil {
		t.Fatal(err)
	}
	check("floor sweep", RenderSweep("f", "v", fs), RenderSweep("f", "v", fp))

	// Design space — the enumeration cross-check shards across workers.
	sps, err := serial.DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	spp, err := parallel.DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	if sps != spp {
		t.Errorf("design space: serial %+v vs parallel %+v", sps, spp)
	}
	check("design space render", sps.Render(), spp.Render())
}

// Single-flight: concurrent profiling of the same app runs one offline
// phase whose model every caller shares.
func TestProfileSingleFlight(t *testing.T) {
	e, err := NewEnvWith(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Covariance()
	const callers = 8
	models := make([]*ModelResult, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			models[i], errs[i] = e.ProfileApp(app.Name)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if models[i].Model != models[0].Model {
			t.Errorf("caller %d got a different model pointer — profiling ran more than once", i)
		}
	}
}

// Concurrency hammer: drive every Env entry point from concurrent
// goroutines. Run under -race (the CI race job does), this proves the
// engine has no data races; the assertions prove the shared caches
// single-flight rather than duplicate.
func TestEnvConcurrentHammer(t *testing.T) {
	e, err := NewEnvWith(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	do := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				fail(err)
			}
		}()
	}

	fig5s := make([]*Fig5Result, 4)
	for i := 0; i < 4; i++ {
		i := i
		do(func() error {
			r, err := e.Fig5(fig5Mapping)
			fig5s[i] = r
			return err
		})
	}
	for i := 0; i < 2; i++ {
		do(func() error {
			_, err := e.ProfileApp("COVARIANCE")
			return err
		})
		do(func() error {
			_, err := e.ThresholdSweep([]float64{85})
			return err
		})
		do(func() error {
			_, err := e.DesignSpace()
			return err
		})
		do(func() error {
			e.Memory()
			return nil
		})
		do(func() error {
			_, err := e.Fig1()
			return err
		})
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	for i := 1; i < len(fig5s); i++ {
		if fig5s[i] != fig5s[0] {
			t.Error("concurrent Fig5 callers should share one cached result")
		}
	}
}

func TestSetWorkers(t *testing.T) {
	e, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 0 {
		t.Errorf("default workers = %d, want 0 (one per CPU)", e.Workers())
	}
	e.SetWorkers(3)
	if e.Workers() != 3 {
		t.Errorf("workers = %d after SetWorkers(3)", e.Workers())
	}
}
