package experiments

import (
	"testing"

	"teem/internal/scenario"
)

// ScenarioGrid output must be byte-identical between the serial path and
// the worker pool — the same determinism contract as the Fig. 5 rows.
func TestScenarioGridDeterminism(t *testing.T) {
	scs := []*scenario.Scenario{scenario.Sunlight(), scenario.CoreLoss()}
	govs := []string{"ondemand", "teem"}

	serialEnv, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelEnv, err := NewEnvWith(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialEnv.ScenarioGrid(scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelEnv.ScenarioGrid(scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("scenario grid differs between -workers 1 and -workers 8:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

// A recorded arrival log replays through the environment's grid
// machinery: compiled scenario, per-governor cells, clean assertions.
func TestScenarioReplay(t *testing.T) {
	env, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.ScenarioReplay(&scenario.ArrivalTrace{
		Name: "replayed-log",
		Records: []scenario.TraceRecord{
			{App: "COVARIANCE", AtS: 0},
			{App: "MVT", AtS: 4, Priority: 2, HoldS: 3},
		},
	}, []string{"ondemand"})
	if err != nil {
		t.Fatal(err)
	}
	cell := g.Cell("replayed-log", "ondemand")
	if cell == nil || cell.Sim == nil || !cell.Sim.Completed {
		t.Fatalf("replay cell missing or incomplete: %+v", cell)
	}
	if n := g.Violations(); n != 0 {
		t.Errorf("replay grid reported %d violations:\n%s", n, g.Render())
	}
	if _, err := env.ScenarioReplay(&scenario.ArrivalTrace{Name: "empty"}, nil); err == nil {
		t.Error("empty arrival trace accepted")
	}
}

// The preset corpus must hold its assertions under every stock governor.
func TestScenarioPresetsPass(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.ScenarioPresets()
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Violations(); n != 0 {
		t.Errorf("preset grid reported %d assertion violations:\n%s", n, g.Render())
	}
}

// The cross-platform sweep obeys the same determinism contract, with the
// platform axis resolved through the catalog.
func TestScenarioPlatformGridDeterminism(t *testing.T) {
	plats := []string{"exynos5422", "kestrel-e2"}
	scs := []*scenario.Scenario{scenario.CoreLoss()}
	govs := []string{"ondemand", "teem"}

	serialEnv, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelEnv, err := NewEnvWith(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialEnv.ScenarioPlatformGrid(plats, scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelEnv.ScenarioPlatformGrid(plats, scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("platform grid differs between -workers 1 and -workers 8:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	if serial.Cell("kestrel-e2", "core-loss", "teem") == nil {
		t.Error("cube cell lookup failed")
	}
}
