package experiments

import (
	"testing"

	"teem/internal/scenario"
)

// ScenarioGrid output must be byte-identical between the serial path and
// the worker pool — the same determinism contract as the Fig. 5 rows.
func TestScenarioGridDeterminism(t *testing.T) {
	scs := []*scenario.Scenario{scenario.Sunlight(), scenario.CoreLoss()}
	govs := []string{"ondemand", "teem"}

	serialEnv, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelEnv, err := NewEnvWith(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialEnv.ScenarioGrid(scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelEnv.ScenarioGrid(scs, govs)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("scenario grid differs between -workers 1 and -workers 8:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

// The preset corpus must hold its assertions under every stock governor.
func TestScenarioPresetsPass(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	g, err := env.ScenarioPresets()
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Violations(); n != 0 {
		t.Errorf("preset grid reported %d assertion violations:\n%s", n, g.Render())
	}
}
