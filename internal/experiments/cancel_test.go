package experiments

import (
	"context"
	"errors"
	"testing"

	"teem/internal/scenario"
)

// A cancelled scenario grid must come back promptly as a partial result
// with ctx.Err() in the chain — the cancellation contract the service
// layer relies on.
func TestScenarioGridCtxCancel(t *testing.T) {
	env, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	grid, err := env.ScenarioGridCtx(ctx, []*scenario.Scenario{scenario.Sunlight()}, []string{"ondemand"})
	if err == nil {
		t.Fatal("pre-cancelled grid returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	if grid == nil {
		t.Fatal("cancelled grid returned no partial result")
	}
}

// A cancelled sweep stops early instead of simulating every point.
func TestThresholdSweepCtxCancel(t *testing.T) {
	env, err := NewEnvWith(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.ThresholdSweepCtx(ctx, []float64{80, 85, 90}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
