package experiments

import (
	"math"
	"strings"
	"testing"

	"teem/internal/mapping"
	"teem/internal/workload"
)

// The Fig. 5 evaluation is by far the most expensive test in the module
// (≈ 50 warm simulations); share one Env across tests.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce(t)
	return envShared
}

var envShared *Env

func envOnce(t *testing.T) {
	if envShared != nil {
		return
	}
	e, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	envShared = e
}

var fig5Mapping = mapping.Mapping{Big: 4, Little: 2, UseGPU: true}

func TestFig1Shapes(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	od, te := r.Ondemand, r.TEEM

	// The five Fig. 1 claims, directionally:
	if te.ExecTimeS >= od.ExecTimeS {
		t.Errorf("TEEM ET %.1f should beat ondemand %.1f", te.ExecTimeS, od.ExecTimeS)
	}
	if te.EnergyJ >= od.EnergyJ {
		t.Errorf("TEEM energy %.0f should beat ondemand %.0f", te.EnergyJ, od.EnergyJ)
	}
	if te.AvgTempC >= od.AvgTempC-3 {
		t.Errorf("TEEM avg temp %.1f should sit well below ondemand %.1f", te.AvgTempC, od.AvgTempC)
	}
	if te.PeakTempC >= od.PeakTempC-3 {
		t.Errorf("TEEM peak %.1f should sit well below ondemand %.1f", te.PeakTempC, od.PeakTempC)
	}
	if te.TempVarC2 >= od.TempVarC2 {
		t.Errorf("TEEM variance %.2f should beat ondemand %.2f", te.TempVarC2, od.TempVarC2)
	}
	// Regulation bands: TEEM near the 85 °C threshold, ondemand near
	// the 95 °C trip.
	if math.Abs(te.AvgTempC-85.8) > 3 {
		t.Errorf("TEEM avg %.1f far from paper's 85.8", te.AvgTempC)
	}
	if math.Abs(od.AvgTempC-93.7) > 4 {
		t.Errorf("ondemand avg %.1f far from paper's 93.7", od.AvgTempC)
	}
	if od.ThrottleEvents == 0 {
		t.Error("ondemand should trip the TMU")
	}
	if te.ThrottleEvents != 0 {
		t.Error("TEEM should never trip the TMU")
	}

	out := r.Render()
	for _, want := range []string{"Fig. 1(a)", "Fig. 1(b)", "ondemand", "TEEM", "Temperature A15"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestModelTablesAndFigures(t *testing.T) {
	e := sharedEnv(t)
	m, err := e.ProfileApp("COVARIANCE")
	if err != nil {
		t.Fatal(err)
	}
	// Table I: 4 predictors, 12 residual DF (17 observations).
	if m.Model.FullModel.DFModel != 4 || m.Model.FullModel.DFResidual != 12 {
		t.Errorf("Table I df = (%d,%d)", m.Model.FullModel.DFModel, m.Model.FullModel.DFResidual)
	}
	// Table II: 2 predictors, 13 residual DF (16 observations).
	if m.Model.Model.DFModel != 2 || m.Model.Model.DFResidual != 13 {
		t.Errorf("Table II df = (%d,%d)", m.Model.Model.DFModel, m.Model.Model.DFResidual)
	}
	// Renders contain the R summary structure.
	if s := m.TableI(); !strings.Contains(s, "Multiple R-squared") {
		t.Error("Table I render incomplete")
	}
	if s := m.TableII(); !strings.Contains(s, "F-statistic") {
		t.Error("Table II render incomplete")
	}
	if s := m.Fig3(); !strings.Contains(s, "scatterplot") || !strings.Contains(s, "*") {
		t.Error("Fig. 3 render incomplete")
	}
	if s := m.Fig4(); !strings.Contains(s, "Residuals vs Fitted") {
		t.Error("Fig. 4 render incomplete")
	}
	// Unknown app errors.
	if _, err := e.ProfileApp("nope"); err == nil {
		t.Error("ProfileApp should reject unknown names")
	}
}

func TestFig5Shapes(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.Fig5(fig5Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("Fig. 5 has %d rows, want 8", len(r.Rows))
	}

	// Headline averages, directionally (paper: −28.32% / −13.97%
	// energy; 76% / 45% variance; ~28% / ~24% performance).
	eE, eR := r.EnergySavings()
	if eE <= 0.05 {
		t.Errorf("TEEM vs EEMP energy saving %.1f%%, want > 5%%", 100*eE)
	}
	if eR <= 0 {
		t.Errorf("TEEM vs RMP energy saving %.1f%%, want > 0", 100*eR)
	}
	vE, vR := r.VarianceReductions()
	if vE <= 0.3 {
		t.Errorf("TEEM vs EEMP variance reduction %.1f%%, want > 30%%", 100*vE)
	}
	if vR <= 0 {
		t.Errorf("TEEM vs RMP variance reduction %.1f%%, want > 0", 100*vR)
	}
	pE, pR := r.PerformanceGains()
	if pE <= 0.03 || pR <= 0.03 {
		t.Errorf("TEEM performance gains %.1f%%/%.1f%%, want > 3%%", 100*pE, 100*pR)
	}

	// Per-app paper claims.
	byShort := map[string]Fig5Row{}
	for _, row := range r.Rows {
		byShort[row.App.Short] = row
	}
	// RMP wins energy on the GPU-only apps (TEEM overhead, paper:
	// +18.81% on 2D, +30.36% on GM).
	for _, code := range []string{"2D", "GM"} {
		row := byShort[code]
		if row.TEEM.ECJ <= row.RMP.ECJ {
			t.Errorf("%s: TEEM energy %.0f should exceed GPU-only RMP %.0f", code, row.TEEM.ECJ, row.RMP.ECJ)
		}
		if row.RMP.DP.Part.Num != 0 {
			t.Errorf("%s: RMP should be GPU-only", code)
		}
	}
	// SYRK: TEEM saves energy against RMP's split (paper: 47.28%).
	sr := byShort["SR"]
	if sr.TEEM.ECJ >= sr.RMP.ECJ {
		t.Errorf("SR: TEEM energy %.0f should beat RMP %.0f", sr.TEEM.ECJ, sr.RMP.ECJ)
	}
	// TEEM keeps peak temperature within the threshold band on every
	// app while EEMP reaches the trip on the split apps.
	for _, row := range r.Rows {
		if row.TEEM.PeakTC > 92 {
			t.Errorf("%s: TEEM peak %.1f exceeds the regulation band", row.App.Short, row.TEEM.PeakTC)
		}
	}

	// Renders.
	if s := r.RenderEnergy(); !strings.Contains(s, "Fig. 5(a)") || !strings.Contains(s, "EEMP") {
		t.Error("Fig. 5(a) render incomplete")
	}
	if s := r.RenderTemperature(); !strings.Contains(s, "Fig. 5(b)") {
		t.Error("Fig. 5(b) render incomplete")
	}
	if s := r.RenderPerformance(); !strings.Contains(s, "Fig. 5(c)") {
		t.Error("Fig. 5(c) render incomplete")
	}

	// Cache: second call returns the same pointer.
	r2, _ := e.Fig5(fig5Mapping)
	if r2 != r {
		t.Error("Fig5 should cache results")
	}
}

func TestMemoryResult(t *testing.T) {
	e := sharedEnv(t)
	m := e.Memory()
	if m.EEMPItems != 128 || m.TEEMItems != 2 {
		t.Errorf("items %d vs %d, want 128 vs 2", m.EEMPItems, m.TEEMItems)
	}
	if m.ByteSaving < 0.9 {
		t.Errorf("byte saving %.3f, want > 0.9 (abstract: >90%%)", m.ByteSaving)
	}
	if math.Abs(m.ByteSaving-0.9875) > 0.002 {
		t.Errorf("byte saving %.4f, want ≈0.9875 (paper rounds to 98.8%%)", m.ByteSaving)
	}
	if !strings.Contains(m.Render(), "98.8") {
		t.Error("memory render should cite the paper number")
	}
}

func TestDesignSpaceCounts(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUMappings != 24 || r.MaxDesignPoints != 28560 ||
		r.TotalWithGrains != 257040 || r.DiverseSubset != 10368 {
		t.Errorf("design space = %+v", r)
	}
	if !strings.Contains(r.Render(), "28560") {
		t.Error("design-space render incomplete")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	e := sharedEnv(t)
	pts, err := e.ThresholdSweep([]float64{80, 85, 93})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Higher thresholds run hotter.
	if !(pts[0].AvgTC < pts[1].AvgTC && pts[1].AvgTC < pts[2].AvgTC) {
		t.Errorf("avg temp not increasing with threshold: %.1f %.1f %.1f",
			pts[0].AvgTC, pts[1].AvgTC, pts[2].AvgTC)
	}
	// A low threshold gives up performance (the paper's motivation for
	// 85 °C).
	if pts[0].ETS <= pts[1].ETS {
		t.Errorf("80 °C threshold ET %.1f should exceed 85 °C ET %.1f", pts[0].ETS, pts[1].ETS)
	}
	if _, err := e.ThresholdSweep(nil); err == nil {
		t.Error("empty sweep should error")
	}
	if s := RenderSweep("t", "threshold", pts); !strings.Contains(s, "threshold") {
		t.Error("sweep render incomplete")
	}
}

func TestDeltaAndFloorSweeps(t *testing.T) {
	e := sharedEnv(t)
	d, err := e.DeltaSweep([]int{100, 200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 {
		t.Fatalf("delta sweep %d points", len(d))
	}
	f, err := e.FloorSweep([]int{1000, 1400, 1800})
	if err != nil {
		t.Fatal(err)
	}
	// A higher floor cannot reduce the average temperature.
	if f[2].AvgTC < f[0].AvgTC-0.5 {
		t.Errorf("floor 1800 avg %.1f vs floor 1000 avg %.1f", f[2].AvgTC, f[0].AvgTC)
	}
	if _, err := e.DeltaSweep(nil); err == nil {
		t.Error("empty delta sweep should error")
	}
	if _, err := e.FloorSweep(nil); err == nil {
		t.Error("empty floor sweep should error")
	}
}

func TestTreqForCOVARIANCEGivesEvenSplit(t *testing.T) {
	e := sharedEnv(t)
	app := workload.Covariance()
	if _, err := e.profileApp(app); err != nil {
		t.Fatal(err)
	}
	treq := TreqFor(app, fig5Mapping)
	part, err := e.Manager().DecidePartition(app.Name, treq)
	if err != nil {
		t.Fatal(err)
	}
	// The evaluation policy reproduces the paper's "partition 1024".
	if part.Num != 4 {
		t.Errorf("COVARIANCE partition = %s, want 4/8 (the paper's 1024/2048)", part)
	}
}
