package mapping

import (
	"math"
	"testing"
	"testing/quick"

	"teem/internal/soc"
)

func TestCountCPUMappingsEq1(t *testing.T) {
	// Paper Eq. (1) on the Exynos 5422: 4 + 4 + 16 = 24.
	if got := CountCPUMappings(4, 4); got != 24 {
		t.Errorf("Eq. (1) = %d, want 24", got)
	}
	if got := len(CPUMappings(4, 4)); got != 24 {
		t.Errorf("enumerated %d mappings, want 24", got)
	}
}

func TestCPUMappingsContent(t *testing.T) {
	ms := CPUMappings(2, 2)
	want := map[string]bool{
		"0L+1B": true, "0L+2B": true, "1L+0B": true, "2L+0B": true,
		"1L+1B": true, "2L+1B": true, "1L+2B": true, "2L+2B": true,
	}
	if len(ms) != 8 {
		t.Fatalf("got %d mappings, want 8", len(ms))
	}
	for _, m := range ms {
		if !want[m.String()] {
			t.Errorf("unexpected mapping %s", m)
		}
		delete(want, m.String())
	}
	if len(want) != 0 {
		t.Errorf("missing mappings: %v", want)
	}
}

func TestMappingString(t *testing.T) {
	m := Mapping{Big: 3, Little: 2, UseGPU: true}
	if got := m.String(); got != "2L+3B+GPU" {
		t.Errorf("String = %q", got)
	}
	if m.CPUCores() != 5 {
		t.Errorf("CPUCores = %d, want 5", m.CPUCores())
	}
}

func TestMappingValidate(t *testing.T) {
	if err := (Mapping{Big: 2, Little: 2}).Validate(4, 4); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	bad := []Mapping{
		{Big: 5, Little: 0, UseGPU: true},
		{Big: -1},
		{Little: 9},
		{}, // nothing selected
	}
	for i, m := range bad {
		if err := m.Validate(4, 4); err == nil {
			t.Errorf("case %d: accepted invalid mapping %+v", i, m)
		}
	}
	// GPU-only is legal.
	if err := (Mapping{UseGPU: true}).Validate(4, 4); err != nil {
		t.Errorf("GPU-only mapping rejected: %v", err)
	}
}

func TestPartitions(t *testing.T) {
	ps := Partitions()
	if len(ps) != NumPartitionGrains {
		t.Fatalf("got %d grains, want %d", len(ps), NumPartitionGrains)
	}
	if ps[0].CPUFrac() != 0 || ps[8].CPUFrac() != 1 {
		t.Error("grain endpoints wrong")
	}
	// The paper's grains: 0, 1/8, 1/4, 3/8, 1/2, 5/8, 3/4, 7/8, 1.
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("grain %d invalid: %v", i, err)
		}
		if want := float64(i) / 8; p.CPUFrac() != want {
			t.Errorf("grain %d = %g, want %g", i, p.CPUFrac(), want)
		}
		if math.Abs(p.GPUFrac()-(1-p.CPUFrac())) > 1e-15 {
			t.Errorf("grain %d: GPUFrac inconsistent", i)
		}
	}
}

func TestPartitionCPUItems(t *testing.T) {
	// The paper's motivation case: partition 1024 of 2048 is the even
	// grain.
	p := Partition{Num: 4, Den: 8}
	if got := p.CPUItems(2048); got != 1024 {
		t.Errorf("CPUItems(2048) = %d, want 1024", got)
	}
	if got := (Partition{Num: 3, Den: 8}).CPUItems(2048); got != 768 {
		t.Errorf("3/8 of 2048 = %d, want 768", got)
	}
}

func TestPartitionValidate(t *testing.T) {
	bad := []Partition{{Num: 1, Den: 0}, {Num: -1, Den: 8}, {Num: 9, Den: 8}}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid partition %v", i, p)
		}
	}
}

func TestNearestPartition(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.07, 1}, {0.5, 4}, {0.93, 7}, {0.94, 8}, {1, 8},
		{-0.5, 0}, {1.5, 8},
	}
	for _, c := range cases {
		if got := NearestPartition(c.in); got.Num != c.want {
			t.Errorf("NearestPartition(%g) = %d/8, want %d/8", c.in, got.Num, c.want)
		}
	}
}

func TestMaxDesignPointsEq2(t *testing.T) {
	// Paper Eq. (2): {(4·19)+(4·13)+(4·19·4·13)} × {1·7} = 28 560.
	if got := MaxDesignPoints(4, 19, 4, 13, 7); got != 28560 {
		t.Errorf("Eq. (2) = %d, want 28560", got)
	}
	// × 9 partitions = 257 040.
	if got := TotalDesignPoints(4, 19, 4, 13, 7); got != 257040 {
		t.Errorf("total design points = %d, want 257040", got)
	}
}

func TestSpaceOnExynos(t *testing.T) {
	s, err := NewSpace(soc.Exynos5422())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountCPUMappings(); got != 24 {
		t.Errorf("CountCPUMappings = %d, want 24", got)
	}
	if got := s.MaxDesignPoints(); got != 28560 {
		t.Errorf("MaxDesignPoints = %d, want 28560", got)
	}
	if got := s.TotalDesignPoints(); got != 257040 {
		t.Errorf("TotalDesignPoints = %d, want 257040", got)
	}
}

func TestNewSpaceRejectsPartialPlatforms(t *testing.T) {
	p := soc.Exynos5422()
	p.Clusters = p.Clusters[:2] // drop the GPU
	if _, err := NewSpace(p); err == nil {
		t.Error("NewSpace should require a GPU cluster")
	}
}

func TestEnumerateAllCountMatchesEq2(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	n := 0
	s.EnumerateAll(func(DesignPoint) bool {
		n++
		return true
	})
	if n != s.TotalDesignPoints() {
		t.Errorf("enumerated %d points, want %d", n, s.TotalDesignPoints())
	}
}

// The shards must partition the enumeration exactly: disjoint, complete,
// and equal to EnumerateAll as a set whatever the shard count.
func TestEnumerateShardPartitionsSpace(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	total := s.TotalDesignPoints()
	for _, shards := range []int{1, 2, 3, 8} {
		seen := make(map[DesignPoint]int, total)
		n := 0
		for shard := 0; shard < shards; shard++ {
			s.EnumerateShard(shard, shards, func(d DesignPoint) bool {
				seen[d]++
				n++
				return true
			})
		}
		if n != total {
			t.Errorf("%d shards enumerated %d points, want %d", shards, n, total)
		}
		for d, c := range seen {
			if c != 1 {
				t.Errorf("%d shards: point %v seen %d times", shards, d, c)
				break
			}
		}
	}
}

func TestEnumerateShardEarlyStop(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	n := 0
	s.EnumerateShard(1, 4, func(DesignPoint) bool {
		n++
		return n < 50
	})
	if n != 50 {
		t.Errorf("early stop after %d points, want 50", n)
	}
}

func TestEnumerateShardOutOfRange(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	for _, shard := range []int{-1, 4} {
		called := false
		s.EnumerateShard(shard, 4, func(DesignPoint) bool {
			called = true
			return true
		})
		if called {
			t.Errorf("shard %d of 4 should enumerate nothing", shard)
		}
	}
}

func TestEnumerateAllEarlyStop(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	n := 0
	s.EnumerateAll(func(DesignPoint) bool {
		n++
		return n < 100
	})
	if n != 100 {
		t.Errorf("early stop after %d points, want 100", n)
	}
}

func TestEnumerateAllValidPoints(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	n := 0
	s.EnumerateAll(func(d DesignPoint) bool {
		n++
		if n > 5000 {
			return false
		}
		if err := d.Map.Validate(4, 4); err != nil {
			t.Errorf("invalid mapping in enumeration: %v", err)
			return false
		}
		if err := d.Part.Validate(); err != nil {
			t.Errorf("invalid partition in enumeration: %v", err)
			return false
		}
		// GPU must be marked used exactly when some work-items go
		// to it.
		if d.Map.UseGPU != (d.Part.Num < d.Part.Den) {
			t.Errorf("UseGPU inconsistent with partition %v", d)
			return false
		}
		return true
	})
}

func TestDiverseSubsetCount(t *testing.T) {
	s, _ := NewSpace(soc.Exynos5422())
	sub := s.DiverseSubset()
	// The paper's 10 368 profiled design points.
	if len(sub) != 10368 {
		t.Errorf("diverse subset has %d points, want 10368", len(sub))
	}
	// All subset points use the GPU at max frequency.
	for _, d := range sub[:100] {
		if d.Freq.GPUMHz != 600 {
			t.Errorf("subset point GPU freq %d, want 600", d.Freq.GPUMHz)
			break
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	// §V.D: 2 items vs 128 items.
	if EEMPStoredItems() != 128 || TEEMStoredItems() != 2 {
		t.Errorf("items = %d vs %d, want 128 vs 2", EEMPStoredItems(), TEEMStoredItems())
	}
	// Byte saving ≈ 98.75 % (the paper rounds to 98.8 %).
	if got := MemorySavingFraction(); math.Abs(got-0.9875) > 0.001 {
		t.Errorf("byte saving = %.4f, want ≈0.9875", got)
	}
	// Abstract's claim: more than 90 % freed.
	if MemorySavingFraction() < 0.9 || ItemSavingFraction() < 0.9 {
		t.Error("memory saving should exceed 90%")
	}
	if got := ItemSavingFraction(); math.Abs(got-0.984375) > 1e-9 {
		t.Errorf("item saving = %g, want 126/128", got)
	}
}

func TestFreqSettingString(t *testing.T) {
	f := FreqSetting{BigMHz: 2000, LittleMHz: 1400, GPUMHz: 600}
	if got := f.String(); got != "B2000/L1400/G600" {
		t.Errorf("String = %q", got)
	}
	d := DesignPoint{Map: Mapping{Big: 3, Little: 2, UseGPU: true}, Freq: f, Part: Partition{4, 8}}
	if got := d.String(); got != "2L+3B+GPU @B2000/L1400/G600 part=4/8" {
		t.Errorf("DesignPoint.String = %q", got)
	}
}

// Property: NearestPartition is idempotent and never moves a grain.
func TestNearestPartitionProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1)
		p := NearestPartition(x)
		if p.Validate() != nil {
			return false
		}
		// Snapping a grain returns the same grain.
		q := NearestPartition(p.CPUFrac())
		if q != p {
			return false
		}
		// Snap distance is at most half a grain.
		return math.Abs(p.CPUFrac()-x) <= 1.0/16+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eq. (1) and Eq. (2) counts agree with enumeration for small
// random platforms.
func TestCountsMatchEnumerationProperty(t *testing.T) {
	f := func(nbRaw, nlRaw uint8) bool {
		nb := 1 + int(nbRaw)%4
		nl := 1 + int(nlRaw)%4
		return len(CPUMappings(nb, nl)) == CountCPUMappings(nb, nl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
