package mapping

import (
	"fmt"

	"teem/internal/soc"
)

// Space describes the enumerable design space of a platform.
type Space struct {
	nb, nl     int
	bigOPPs    []soc.OPP
	littleOPPs []soc.OPP
	gpuOPPs    []soc.OPP
}

// NewSpace builds the design space of a CPU-GPU platform. The platform
// must have big, LITTLE and GPU clusters.
func NewSpace(p *soc.Platform) (*Space, error) {
	big, little, gpu := p.Big(), p.Little(), p.GPU()
	if big == nil || little == nil || gpu == nil {
		return nil, fmt.Errorf("mapping: platform %s lacks big/LITTLE/GPU clusters", p.Name)
	}
	return &Space{
		nb: big.NumCores, nl: little.NumCores,
		bigOPPs:    big.OPPs,
		littleOPPs: little.OPPs,
		gpuOPPs:    gpu.OPPs,
	}, nil
}

// CountCPUMappings is Eq. (1) for this platform.
func (s *Space) CountCPUMappings() int { return CountCPUMappings(s.nb, s.nl) }

// MaxDesignPoints is Eq. (2) for this platform (28 560 on the Exynos 5422).
func (s *Space) MaxDesignPoints() int {
	return MaxDesignPoints(s.nb, len(s.bigOPPs), s.nl, len(s.littleOPPs), len(s.gpuOPPs))
}

// TotalDesignPoints includes the nine partitions (257 040 on the 5422).
func (s *Space) TotalDesignPoints() int {
	return s.MaxDesignPoints() * NumPartitionGrains
}

// enumerateGroups streams the (mapping, CPU frequency) groups of the
// Eq. (2) structure — big-only, LITTLE-only and combined core×frequency
// choices — in a fixed order, stopping early if fn returns false. Every
// group fans out into len(gpuOPPs) × NumPartitionGrains design points.
func (s *Space) enumerateGroups(fn func(m Mapping, f FreqSetting) bool) {
	// Big-only.
	for i := 1; i <= s.nb; i++ {
		for _, fb := range s.bigOPPs {
			if !fn(Mapping{Big: i}, FreqSetting{BigMHz: fb.FreqMHz}) {
				return
			}
		}
	}
	// LITTLE-only.
	for j := 1; j <= s.nl; j++ {
		for _, fl := range s.littleOPPs {
			if !fn(Mapping{Little: j}, FreqSetting{LittleMHz: fl.FreqMHz}) {
				return
			}
		}
	}
	// Combined.
	for i := 1; i <= s.nb; i++ {
		for _, fb := range s.bigOPPs {
			for j := 1; j <= s.nl; j++ {
				for _, fl := range s.littleOPPs {
					if !fn(Mapping{Big: i, Little: j},
						FreqSetting{BigMHz: fb.FreqMHz, LittleMHz: fl.FreqMHz}) {
						return
					}
				}
			}
		}
	}
}

// emitGroup fans one group out into its GPU-frequency × partition points.
func (s *Space) emitGroup(m Mapping, f FreqSetting, parts []Partition, fn func(DesignPoint) bool) bool {
	for _, g := range s.gpuOPPs {
		f.GPUMHz = g.FreqMHz
		for _, p := range parts {
			m.UseGPU = p.Num < p.Den // GPU used unless all work on CPU
			if !fn(DesignPoint{Map: m, Freq: f, Part: p}) {
				return false
			}
		}
	}
	return true
}

// EnumerateAll streams every design point of Eq. (2) × partitions through
// fn, stopping early if fn returns false. The structure mirrors Eq. (2):
// big-only, LITTLE-only and combined core×frequency choices, crossed with
// every GPU frequency and partition grain.
func (s *Space) EnumerateAll(fn func(DesignPoint) bool) {
	parts := Partitions()
	s.enumerateGroups(func(m Mapping, f FreqSetting) bool {
		return s.emitGroup(m, f, parts, fn)
	})
}

// EnumerateShard streams the shard-th of numShards slices of the design
// space through fn, stopping early if fn returns false. The (mapping,
// CPU frequency) groups of the Eq. (2) structure are dealt round-robin
// across the shards, and only an owned group's points are generated, so
// each shard does ~1/numShards of the enumeration work — a worker pool
// sweeps the whole space in parallel by giving each worker one shard.
// Shards are disjoint, their union is exactly EnumerateAll, and within a
// shard points arrive in the serial enumeration's relative order, which
// keeps sharded sweeps deterministic.
func (s *Space) EnumerateShard(shard, numShards int, fn func(DesignPoint) bool) {
	if numShards <= 1 {
		s.EnumerateAll(fn)
		return
	}
	if shard < 0 || shard >= numShards {
		return
	}
	parts := Partitions()
	g := 0
	s.enumerateGroups(func(m Mapping, f FreqSetting) bool {
		take := g%numShards == shard
		g++
		if !take {
			return true
		}
		return s.emitGroup(m, f, parts, fn)
	})
}

// DiverseSubsetBigMHz and DiverseSubsetLittleMHz are the frequency strides
// of the profiled subset: every 200 MHz from 600 (big) and every 200 MHz
// from 400 (LITTLE). Together with the 24 Eq. (1) mappings, the GPU at
// maximum frequency and 9 partitions this yields the paper's
// 24 × 8 × 6 × 9 = 10 368 design points.
var (
	DiverseSubsetBigMHz    = []int{600, 800, 1000, 1200, 1400, 1600, 1800, 2000}
	DiverseSubsetLittleMHz = []int{400, 600, 800, 1000, 1200, 1400}
)

// DiverseSubset materialises the profiled subset of the design space.
func (s *Space) DiverseSubset() []DesignPoint {
	gpuMax := s.gpuOPPs[len(s.gpuOPPs)-1].FreqMHz
	parts := Partitions()
	maps := CPUMappings(s.nb, s.nl)
	out := make([]DesignPoint, 0, len(maps)*len(DiverseSubsetBigMHz)*len(DiverseSubsetLittleMHz)*len(parts))
	for _, m := range maps {
		for _, fb := range DiverseSubsetBigMHz {
			for _, fl := range DiverseSubsetLittleMHz {
				for _, p := range parts {
					mm := m
					mm.UseGPU = p.Num < p.Den
					out = append(out, DesignPoint{
						Map:  mm,
						Freq: FreqSetting{BigMHz: fb, LittleMHz: fl, GPUMHz: gpuMax},
						Part: p,
					})
				}
			}
		}
	}
	return out
}
