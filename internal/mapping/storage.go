package mapping

// Storage accounting for the paper's §V.D memory-optimisation comparison.
//
// EEMP keeps, per application, a table of evaluated design points (128 on
// the Exynos 5422 per the paper) so the runtime can look configurations
// up. TEEM replaces the table with the fitted regression model (three
// float64 coefficients) plus the stored ETGPU — two items.

// DesignPointRecordBytes is the serialised size of one stored design-point
// record in an EEMP-style table: core counts and GPU flag (3 bytes),
// three 16-bit cluster frequencies (6 bytes), the partition numerator
// (1 byte), plus the two float32 metrics (predicted execution time and
// energy) the runtime selects on (8 bytes). Records are padded to 20
// bytes for alignment.
const DesignPointRecordBytes = 20

// EEMPTableEntries is the per-application design-point table size of the
// EEMP baseline on the Exynos 5422, as reported in §V.D of the paper.
const EEMPTableEntries = 128

// EEMPStoredItems returns the per-application item count of the
// table-based store.
func EEMPStoredItems() int { return EEMPTableEntries }

// EEMPStorageBytes returns the per-application byte cost of the
// table-based store.
func EEMPStorageBytes() int { return EEMPTableEntries * DesignPointRecordBytes }

// ModelCoefficients is the number of float64 coefficients of TEEM's
// per-application mapping model (intercept, AT slope, ET slope — Eq. 6).
const ModelCoefficients = 3

// TEEMStoredItems returns the per-application item count of the
// model-based store: the model and the stored ETGPU.
func TEEMStoredItems() int { return 2 }

// TEEMStorageBytes returns the per-application byte cost of the
// model-based store: three float64 coefficients plus one float64 ETGPU.
func TEEMStorageBytes() int { return ModelCoefficients*8 + 8 }

// MemorySavingFraction returns the fractional byte saving of the
// model-based store over the table-based store (the paper's 98.8 %).
func MemorySavingFraction() float64 {
	return 1 - float64(TEEMStorageBytes())/float64(EEMPStorageBytes())
}

// ItemSavingFraction returns the fractional item-count saving (2 vs 128).
func ItemSavingFraction() float64 {
	return 1 - float64(TEEMStoredItems())/float64(EEMPStoredItems())
}
