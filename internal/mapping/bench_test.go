package mapping

import (
	"testing"

	"teem/internal/soc"
)

// BenchmarkEnumerateAll walks the full 257 040-point design space.
func BenchmarkEnumerateAll(b *testing.B) {
	s, err := NewSpace(soc.Exynos5422())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.EnumerateAll(func(DesignPoint) bool { n++; return true })
		if n != 257040 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkDiverseSubset materialises the paper's 10 368-point subset.
func BenchmarkDiverseSubset(b *testing.B) {
	s, err := NewSpace(soc.Exynos5422())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(s.DiverseSubset()); got != 10368 {
			b.Fatal("wrong count")
		}
	}
}
