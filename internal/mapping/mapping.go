// Package mapping enumerates the design points of the TEEM paper: CPU core
// mappings (Eq. 1), full mapping × frequency × partition design spaces
// (Eq. 2), the nine work-item partition grains, and the diverse subset the
// paper actually profiles (10 368 points). It also accounts storage bytes
// for the §V.D memory-optimisation comparison between table-based (EEMP)
// and model-based (TEEM) stores.
package mapping

import (
	"errors"
	"fmt"
)

// Mapping selects the CPU cores used for the CPU share of an application
// (cluster-level: counts of big and LITTLE cores) and whether the GPU
// cluster is used at all.
type Mapping struct {
	// Big and Little are the used core counts per CPU cluster.
	Big, Little int
	// UseGPU reports whether any work-items go to the GPU cluster.
	UseGPU bool
}

// String renders the paper's "2L+3B" notation (with "+GPU" when used).
func (m Mapping) String() string {
	s := fmt.Sprintf("%dL+%dB", m.Little, m.Big)
	if m.UseGPU {
		s += "+GPU"
	}
	return s
}

// CPUCores returns the number of CPU cores in use.
func (m Mapping) CPUCores() int { return m.Big + m.Little }

// Validate reports an error for impossible mappings given cluster sizes.
func (m Mapping) Validate(maxBig, maxLittle int) error {
	if m.Big < 0 || m.Big > maxBig {
		return fmt.Errorf("mapping: big core count %d outside [0,%d]", m.Big, maxBig)
	}
	if m.Little < 0 || m.Little > maxLittle {
		return fmt.Errorf("mapping: LITTLE core count %d outside [0,%d]", m.Little, maxLittle)
	}
	if m.Big == 0 && m.Little == 0 && !m.UseGPU {
		return errors.New("mapping: no compute resources selected")
	}
	return nil
}

// CountCPUMappings evaluates the paper's Eq. (1):
// M_CPU = Nb + NL + Nb·NL — big-only, LITTLE-only and combined mappings.
func CountCPUMappings(nb, nl int) int { return nb + nl + nb*nl }

// CPUMappings enumerates the Eq. (1) mapping set: {iB}, {jL}, {jL+iB} for
// i in 1..Nb, j in 1..NL. UseGPU is left false; callers toggle it.
func CPUMappings(nb, nl int) []Mapping {
	out := make([]Mapping, 0, CountCPUMappings(nb, nl))
	for i := 1; i <= nb; i++ {
		out = append(out, Mapping{Big: i})
	}
	for j := 1; j <= nl; j++ {
		out = append(out, Mapping{Little: j})
	}
	for i := 1; i <= nb; i++ {
		for j := 1; j <= nl; j++ {
			out = append(out, Mapping{Big: i, Little: j})
		}
	}
	return out
}

// Partition is a work-item split: Num/Den of the NDRange runs on the CPU
// clusters and the remainder on the GPU (the paper's WG_CPU).
type Partition struct {
	// Num and Den define the CPU fraction Num/Den.
	Num, Den int
}

// CPUFrac returns the CPU work-item fraction in [0,1].
func (p Partition) CPUFrac() float64 { return float64(p.Num) / float64(p.Den) }

// GPUFrac returns 1 − CPUFrac.
func (p Partition) GPUFrac() float64 { return 1 - p.CPUFrac() }

// CPUItems returns the number of work-items (of total) on the CPU.
func (p Partition) CPUItems(total int) int {
	return p.Num * total / p.Den
}

// String renders e.g. "3/8".
func (p Partition) String() string { return fmt.Sprintf("%d/%d", p.Num, p.Den) }

// Validate reports an error for malformed partitions.
func (p Partition) Validate() error {
	if p.Den <= 0 {
		return fmt.Errorf("mapping: partition denominator %d must be positive", p.Den)
	}
	if p.Num < 0 || p.Num > p.Den {
		return fmt.Errorf("mapping: partition %d/%d outside [0,1]", p.Num, p.Den)
	}
	return nil
}

// NumPartitionGrains is the paper's partition grain count: 0, 1/8 … 1.
const NumPartitionGrains = 9

// Partitions returns the paper's nine work-item partition grains.
func Partitions() []Partition {
	out := make([]Partition, 0, NumPartitionGrains)
	for n := 0; n <= 8; n++ {
		out = append(out, Partition{Num: n, Den: 8})
	}
	return out
}

// NearestPartition snaps an arbitrary CPU fraction to the closest grain.
func NearestPartition(cpuFrac float64) Partition {
	if cpuFrac < 0 {
		cpuFrac = 0
	}
	if cpuFrac > 1 {
		cpuFrac = 1
	}
	n := int(cpuFrac*8 + 0.5)
	return Partition{Num: n, Den: 8}
}

// FreqSetting is a cluster-wise DVFS choice.
type FreqSetting struct {
	// BigMHz, LittleMHz, GPUMHz are per-cluster frequencies; a zero
	// means the cluster is unused/gated.
	BigMHz, LittleMHz, GPUMHz int
}

// String renders e.g. "B2000/L1400/G600".
func (f FreqSetting) String() string {
	return fmt.Sprintf("B%d/L%d/G%d", f.BigMHz, f.LittleMHz, f.GPUMHz)
}

// DesignPoint is one point of the paper's design space: a mapping, a
// frequency setting and a work-item partition.
type DesignPoint struct {
	Map  Mapping
	Freq FreqSetting
	Part Partition
}

// String renders a compact description.
func (d DesignPoint) String() string {
	return fmt.Sprintf("%s @%s part=%s", d.Map, d.Freq, d.Part)
}

// MaxDesignPoints evaluates the paper's Eq. (2):
//
//	MDP = {(Nb·Fb) + (NL·FL) + (Nb·Fb·NL·FL)} × {1·Fg}
//
// For the Exynos 5422 (Nb=NL=4, Fb=19, FL=13, Fg=7) this is 28 560.
func MaxDesignPoints(nb, fb, nl, fl, fg int) int {
	return (nb*fb + nl*fl + nb*fb*nl*fl) * fg
}

// TotalDesignPoints is MaxDesignPoints times the nine partition grains —
// the paper's 257 040.
func TotalDesignPoints(nb, fb, nl, fl, fg int) int {
	return MaxDesignPoints(nb, fb, nl, fl, fg) * NumPartitionGrains
}
