package sim

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/workload"
)

// --- regression: phantom utilisation on unmapped clusters --------------------

// probeGov records the utilisation a governor sees at Start — the primed
// value the engine hands a utilisation-driven policy's first decision.
type probeGov struct {
	bigU, litU, gpuU float64
}

func (p *probeGov) Name() string     { return "probe" }
func (p *probeGov) PeriodS() float64 { return 0.1 }
func (p *probeGov) Start(m Machine) error {
	p.bigU = m.ClusterUtil("A15")
	p.litU = m.ClusterUtil("A7")
	p.gpuU = m.ClusterUtil("MaliT628")
	return nil
}
func (p *probeGov) Act(Machine) error { return nil }

// A big-only mapping must never show utilisation on the LITTLE cluster —
// neither in the primed value the governor's first decision sees nor in
// any tick's ClusterUtil — or ondemand/conservative pin idle silicon at
// max frequency and inflate every baseline's energy.
func TestNoPhantomUtilOnUnmappedLittle(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{Big: 4, Little: 0, UseGPU: true}
	g := &probeGov{}
	cfg.Governor = g
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if g.litU != 0 {
		t.Errorf("governor Start saw LITTLE util %g on a big-only mapping, want 0", g.litU)
	}
	if g.bigU != 1 {
		t.Errorf("governor Start saw big util %g, want primed 1", g.bigU)
	}
	li := res.Trace.ClusterIndex("A7")
	bi := res.Trace.ClusterIndex("A15")
	sawBigBusy := false
	for _, s := range res.Trace.Samples {
		if s.Utils[li] != 0 {
			t.Fatalf("t=%gs: LITTLE util %g on a big-only mapping, want 0", s.TimeS, s.Utils[li])
		}
		if s.Utils[bi] > 0 {
			sawBigBusy = true
		}
	}
	if !sawBigBusy {
		t.Error("big cluster never showed utilisation — test lost its contrast")
	}
}

// The symmetric case: a LITTLE-only mapping must not leak busy fractions
// onto the big cluster.
func TestNoPhantomUtilOnUnmappedBig(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{Big: 0, Little: 4, UseGPU: true}
	g := &probeGov{}
	cfg.Governor = g
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if g.bigU != 0 {
		t.Errorf("governor Start saw big util %g on a LITTLE-only mapping, want 0", g.bigU)
	}
	bi := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.Utils[bi] != 0 {
			t.Fatalf("t=%gs: big util %g on a LITTLE-only mapping, want 0", s.TimeS, s.Utils[bi])
		}
	}
}

// --- regression: RunWarm must not run an engine twice ------------------------

// startCounter counts Governor.Start invocations: one per engine run.
type startCounter struct {
	starts int
}

func (s *startCounter) Name() string          { return "start-counter" }
func (s *startCounter) PeriodS() float64      { return 0.1 }
func (s *startCounter) Start(m Machine) error { s.starts++; return nil }
func (s *startCounter) Act(m Machine) error   { return nil }

// RunWarm's protocol is one discarded warm-up run plus one measured run —
// exactly two engine runs, so exactly two Governor.Start calls. The old
// code ran the warm-up engine twice (the second run completing instantly
// on exhausted work), re-invoking Start and appending a duplicate final
// sample.
func TestRunWarmRunsWarmupOnce(t *testing.T) {
	cfg := baseConfig()
	g := &startCounter{}
	cfg.Governor = g
	if _, err := RunWarm(cfg); err != nil {
		t.Fatal(err)
	}
	if g.starts != 2 {
		t.Errorf("Governor.Start called %d times during RunWarm, want 2 (warm-up + measured)", g.starts)
	}
}

// An engine refuses a second Run outright: replaying a policy on
// exhausted work and appending duplicate trace samples is never meaningful.
func TestRunTwiceRejected(t *testing.T) {
	e, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Error("second Run on one engine should error")
	}
}

// --- regression: TMU release must not override newer governor requests -------

// While throttled, a governor request below the cap replaces the stale
// pre-trip maximum as the release target: when the hardware releases, the
// cluster must stay at the governor's latest decision instead of jumping
// back to the old pre-trip frequency.
func TestThrottleReleaseKeepsGovernorRequest(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.govEvery = 0
	e.recEvery = 1 << 30

	// Force a trip: the big node starts above TripC.
	hot := make([]float64, len(cfg.Net.Nodes))
	for i := range hot {
		hot[i] = cfg.Platform.TripC + 1
	}
	if err := e.therm.SetTemps(hot); err != nil {
		t.Fatal(err)
	}
	if _, err := e.tick(0.01); err != nil {
		t.Fatal(err)
	}
	if !e.Throttled() {
		t.Fatal("engine did not trip from above TripC")
	}
	if got := e.ClusterFreqMHz("A15"); got != 900 {
		t.Fatalf("throttled big freq = %d, want the 900 MHz cap", got)
	}

	// The governor decides 600 MHz — below the cap — while throttled.
	if err := e.SetClusterFreqMHz("A15", 600); err != nil {
		t.Fatal(err)
	}
	if got := e.ClusterFreqMHz("A15"); got != 600 {
		t.Fatalf("sub-cap request while throttled pinned %d, want 600", got)
	}

	// Cool below the release point and tick: release must keep 600 MHz.
	cool := make([]float64, len(cfg.Net.Nodes))
	for i := range cool {
		cool[i] = cfg.Platform.TripReleaseC - 20
	}
	if err := e.therm.SetTemps(cool); err != nil {
		t.Fatal(err)
	}
	e.timeTicks++
	if _, err := e.tick(0.01); err != nil {
		t.Fatal(err)
	}
	if e.Throttled() {
		t.Fatal("engine did not release below TripReleaseC")
	}
	if got := e.ClusterFreqMHz("A15"); got != 600 {
		t.Errorf("release restored %d MHz, overriding the governor's 600 MHz decision", got)
	}
}

// The classic release path still works: when the governor never asked for
// less, release restores the pre-trip frequency.
func TestThrottleReleaseRestoresPreTripFreq(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.govEvery = 0
	e.recEvery = 1 << 30
	hot := make([]float64, len(cfg.Net.Nodes))
	for i := range hot {
		hot[i] = cfg.Platform.TripC + 1
	}
	if err := e.therm.SetTemps(hot); err != nil {
		t.Fatal(err)
	}
	if _, err := e.tick(0.01); err != nil {
		t.Fatal(err)
	}
	cool := make([]float64, len(cfg.Net.Nodes))
	for i := range cool {
		cool[i] = cfg.Platform.TripReleaseC - 20
	}
	if err := e.therm.SetTemps(cool); err != nil {
		t.Fatal(err)
	}
	e.timeTicks++
	if _, err := e.tick(0.01); err != nil {
		t.Fatal(err)
	}
	if got := e.ClusterFreqMHz("A15"); got != 2000 {
		t.Errorf("release restored %d MHz, want the 2000 MHz pre-trip frequency", got)
	}
}

// --- regression: self-consistent closing trace sample ------------------------

// A completed run's final sample closes the metrics window with the chip
// idle: zero utilisation AND the matching idle power. The old code
// evaluated idle power but left the last tick's busy fractions in Utils.
func TestFinalSampleIdleConsistent(t *testing.T) {
	e, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace.Samples[res.Trace.Len()-1]
	for i, u := range last.Utils {
		if u != 0 {
			t.Errorf("final sample: cluster %s util %g with idle power, want 0",
				res.Trace.ClusterNames[i], u)
		}
	}
	// Idle power must sit well below the mid-run busy samples.
	mid := res.Trace.Samples[res.Trace.Len()/2]
	if last.PowerW >= mid.PowerW {
		t.Errorf("final idle sample power %g ≥ mid-run power %g", last.PowerW, mid.PowerW)
	}
}

// An aborted run (MaxTimeS elapsed with work pending) closes with the
// still-busy state instead: utilisation and power stay the consistent
// busy pair of the last tick.
func TestFinalSampleAbortedStillBusy(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxTimeS = 1.0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("1-second budget should not complete COVARIANCE")
	}
	last := res.Trace.Samples[res.Trace.Len()-1]
	bi := res.Trace.ClusterIndex("A15")
	if last.Utils[bi] == 0 {
		t.Error("aborted run's final sample shows idle big cluster while work was pending")
	}
}

// --- scenario hooks -----------------------------------------------------------

// Enqueued apps run FIFO after the initial job, each completion recorded.
func TestEnqueueAppRunsFIFO(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnqueueApp(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}); err != nil {
		t.Fatal(err)
	}
	if e.QueuedJobs() != 1 {
		t.Fatalf("QueuedJobs = %d, want 1", e.QueuedJobs())
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("queued run did not complete")
	}
	if len(res.JobFinishes) != 2 {
		t.Fatalf("JobFinishes = %d entries, want 2", len(res.JobFinishes))
	}
	if res.JobFinishes[0].App != "COVARIANCE" || res.JobFinishes[1].App != "SYRK" {
		t.Errorf("finish order %s, %s — want COVARIANCE then SYRK",
			res.JobFinishes[0].App, res.JobFinishes[1].App)
	}
	if res.JobFinishes[0].AtS >= res.JobFinishes[1].AtS {
		t.Errorf("finish times not increasing: %g then %g",
			res.JobFinishes[0].AtS, res.JobFinishes[1].AtS)
	}
	if res.ExecTimeS != res.JobFinishes[1].AtS {
		t.Errorf("ExecTimeS %g should be the last finish %g", res.ExecTimeS, res.JobFinishes[1].AtS)
	}
}

// An idle-start engine (nil App, MinTimeS horizon) runs work that arrives
// by scheduled event and keeps simulating to the horizon.
func TestIdleStartArrivalAndHorizon(t *testing.T) {
	cfg := baseConfig()
	cfg.App = nil
	cfg.MinTimeS = 40
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(2, func(e *Engine) error {
		return e.EnqueueApp(workload.Covariance(), mapping.Partition{Num: 4, Den: 8})
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("scenario run did not complete")
	}
	if len(res.JobFinishes) != 1 {
		t.Fatalf("JobFinishes = %d, want 1", len(res.JobFinishes))
	}
	if res.JobFinishes[0].AtS < 2 {
		t.Errorf("job finished at %g, before its arrival at t=2", res.JobFinishes[0].AtS)
	}
	lastT := res.Trace.Samples[res.Trace.Len()-1].TimeS
	if lastT < cfg.MinTimeS-0.2 {
		t.Errorf("trace ends at %gs, before the %gs horizon", lastT, cfg.MinTimeS)
	}
	if res.ExecTimeS >= cfg.MinTimeS {
		t.Errorf("ExecTimeS %g should be the work completion, not the horizon", res.ExecTimeS)
	}
}

// An event scheduled on the very last tick of a horizon-clamped run must
// still fire: maxTicks and event ticks round the same way, so a scenario
// horizon beyond the 900 s default cannot strand its final event.
func TestLastTickEventFires(t *testing.T) {
	cfg := baseConfig()
	cfg.App = nil
	cfg.MinTimeS = 2.0
	cfg.MaxTimeS = 2.0 // clamped exactly to the horizon
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := e.ScheduleAt(1.99, func(*Engine) error { fired = true; return nil }); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event on the final tick never fired")
	}
	if !res.Completed {
		t.Error("run with all events delivered reported Completed=false")
	}
}

// A t=0 arrival on an idle-start engine primes utilisation exactly like a
// classic Config.App run: the governor acting on the arrival tick must see
// the pending load, not a one-period dip to zero.
func TestArrivalPrimesUtil(t *testing.T) {
	cfg := baseConfig()
	cfg.App = nil
	cfg.MinTimeS = 1
	g := &probeGov{}
	cfg.Governor = g
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var actUtil float64 = -1
	if err := e.ScheduleAt(0, func(e *Engine) error {
		return e.EnqueueApp(workload.Covariance(), mapping.Partition{Num: 4, Den: 8})
	}); err != nil {
		t.Fatal(err)
	}
	// Probe what a governor Act on tick 0 observes: events dispatch
	// before the governor step, so the arrival must already be visible.
	if err := e.ScheduleAt(0, func(e *Engine) error {
		actUtil = e.ClusterUtil("A15")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if actUtil != 1 {
		t.Errorf("tick-0 arrival shows util %g to the governor step, want primed 1", actUtil)
	}
}

// Events on the same tick fire in registration order; past times are
// rejected mid-run.
func TestEventOrderingAndPastRejection(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		if err := e.ScheduleAt(1, func(*Engine) error { order = append(order, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	var lateErr error
	if err := e.ScheduleAt(2, func(e *Engine) error {
		lateErr = e.ScheduleAt(1, func(*Engine) error { return nil })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("same-tick events fired in order %v, want [0 1 2]", order)
	}
	if lateErr == nil {
		t.Error("scheduling an event in the past mid-run should error")
	}
}

// SetPartition re-splits the remaining work; the run still completes and
// conserves the total work (execution time shifts accordingly).
func TestSetPartitionMidRun(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableHWProtect = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(5, func(e *Engine) error {
		return e.SetPartition(mapping.Partition{Num: 0, Den: 8}) // all remaining work to the GPU
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("repartitioned run did not complete")
	}
	// After t=5 the CPU has no work: its utilisation must fall to zero
	// within a tick while the GPU keeps going.
	bi := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.TimeS > 5.2 && s.Utils[bi] != 0 {
			t.Errorf("t=%gs: CPU util %g after repartitioning all work to the GPU", s.TimeS, s.Utils[bi])
			break
		}
	}
}

// SetMapping mid-run changes the compute resources; dropping to fewer big
// cores slows the CPU share down.
func TestSetMappingMidRun(t *testing.T) {
	run := func(shrink bool) float64 {
		cfg := baseConfig()
		cfg.DisableHWProtect = true
		cfg.Map = mapping.Mapping{Big: 4, Little: 0, UseGPU: true}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if shrink {
			if err := e.ScheduleAt(3, func(e *Engine) error {
				return e.SetMapping(mapping.Mapping{Big: 1, Little: 0, UseGPU: true})
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("run did not complete")
		}
		return res.ExecTimeS
	}
	full, shrunk := run(false), run(true)
	if shrunk <= full {
		t.Errorf("losing 3 big cores mid-run should slow the run: %g ≤ %g", shrunk, full)
	}
}

// SetGovernor mid-run swaps the policy: after the switch to powersave the
// big cluster must sit at its minimum frequency.
func TestSetGovernorMidRun(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableHWProtect = true
	cfg.MaxTimeS = 30
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(5, func(e *Engine) error {
		return e.SetGovernor(pinGov{mhz: 200})
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bi := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.TimeS > 5.2 && s.TimeS < res.ExecTimeS && s.FreqsMHz[bi] != 200 {
			t.Errorf("t=%gs: big freq %d after switching to the 200 MHz pin", s.TimeS, s.FreqsMHz[bi])
			break
		}
	}
	if res.ExecTimeS <= 0 {
		t.Error("run reported no execution time")
	}
}

// pinGov pins every cluster at a fixed frequency — a minimal mid-run
// switch target.
type pinGov struct{ mhz int }

func (g pinGov) Name() string     { return "pin" }
func (g pinGov) PeriodS() float64 { return 0.1 }
func (g pinGov) Start(m Machine) error {
	p := m.Platform()
	for i := range p.Clusters {
		if err := m.SetClusterFreqMHz(p.Clusters[i].Name, g.mhz); err != nil {
			return err
		}
	}
	return nil
}
func (g pinGov) Act(m Machine) error { return g.Start(m) }

// Ambient changes scheduled as events reach the thermal model under both
// integrators: a mid-run ambient step must raise the steady temperature.
func TestAmbientStepEvent(t *testing.T) {
	for _, integ := range []Integrator{IntegratorExact, IntegratorEuler} {
		cfg := baseConfig()
		cfg.App = nil
		cfg.MinTimeS = 30
		cfg.Integrator = integ
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ScheduleAt(10, func(e *Engine) error {
			e.SetAmbientC(45)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		bi := res.Trace.NodeIndex("A15")
		var before, after float64
		for _, s := range res.Trace.Samples {
			if s.TimeS <= 9.5 {
				before = s.TempsC[bi]
			}
			after = s.TempsC[bi]
		}
		// The idle chip floats a few degrees above ambient on leakage
		// and baseline power; the 17 °C ambient step must carry it up
		// by about the same delta.
		if before < 28 || before > 38 {
			t.Errorf("integrator %d: idle chip at %g °C before the step, want a few °C above 28", integ, before)
		}
		if after < before+10 {
			t.Errorf("integrator %d: chip at %g °C 20 s after the 45 °C ambient step (was %g)", integ, after, before)
		}
	}
}
