package sim

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// BenchmarkEngineSecond measures one second of co-simulation (100 ticks of
// workload + power + thermal + metering).
func BenchmarkEngineSecond(b *testing.B) {
	cfg := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		MaxTimeS: 1.0,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRun measures a complete end-to-end run of the Fig. 1
// workload at fixed frequencies: engine construction plus the full tick
// loop until the application finishes (~17 s of simulated time).
func BenchmarkSimRun(b *testing.B) {
	cfg := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("run did not complete")
		}
	}
}

// BenchmarkRunWarmCovariance measures a complete steady-regime protocol
// run of the Fig. 1 configuration.
func BenchmarkRunWarmCovariance(b *testing.B) {
	cfg := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWarm(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
