package sim

import (
	"errors"
	"testing"

	"teem/internal/soc"
	"teem/internal/thermal"
)

// TestNewRejectsMismatchedPlatformNet is the regression test for the
// silent platform/network mismatch: before CheckPlatformNet ran in New,
// an Exynos 5410 platform paired with the 5422 network was accepted and
// the SGX544 cluster simply read 0 °C from the missing sensor node for
// the whole run (SensorC returns 0 for unknown names). This test fails
// against that behaviour: New must refuse the pair with the sentinel.
func TestNewRejectsMismatchedPlatformNet(t *testing.T) {
	cfg := baseConfig()
	cfg.Platform = soc.Exynos5410()       // clusters A15, A7, SGX544
	cfg.Net = thermal.Exynos5422Network() // nodes A15, A7, MaliT628, pkg
	_, err := New(cfg)
	if !errors.Is(err, ErrPlatformNetMismatch) {
		t.Fatalf("New = %v, want ErrPlatformNetMismatch", err)
	}
}

// TestCheckPlatformNet covers the cross-validation helper directly.
func TestCheckPlatformNet(t *testing.T) {
	if err := CheckPlatformNet(soc.Exynos5422(), thermal.Exynos5422Network()); err != nil {
		t.Fatalf("matched pair rejected: %v", err)
	}
	if err := CheckPlatformNet(soc.Exynos5410(), thermal.Exynos5410Network()); err != nil {
		t.Fatalf("matched 5410 pair rejected: %v", err)
	}
	if err := CheckPlatformNet(soc.Exynos5410(), thermal.Exynos5422Network()); !errors.Is(err, ErrPlatformNetMismatch) {
		t.Fatalf("mismatched pair: %v, want ErrPlatformNetMismatch", err)
	}
	// A network without the required package node.
	n := thermal.Exynos5422Network()
	for i := range n.Nodes {
		if n.Nodes[i].Name == "pkg" {
			n.Nodes[i].Name = "substrate"
		}
	}
	if err := CheckPlatformNet(soc.Exynos5422(), n); !errors.Is(err, ErrPlatformNetMismatch) {
		t.Fatalf("missing pkg node: %v, want ErrPlatformNetMismatch", err)
	}
}
