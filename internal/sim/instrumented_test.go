package sim

import (
	"strings"
	"testing"

	"teem/internal/mapping"
	"teem/internal/obs"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// The flight recorder must be free in the hot loop: counters are plain
// increments and the per-phase wall clocks read a pre-acquired function
// pointer, so even the fully instrumented tick — Clock wired to
// obs.Nanotime — allocates nothing.
func TestInstrumentedTickZeroAllocs(t *testing.T) {
	e, err := New(Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		Clock:    obs.Nanotime,
	})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	e.govEvery = 0
	e.recEvery = 10
	for i := 0; i < 50; i++ {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}); avg != 0 {
		t.Errorf("instrumented tick allocates %.3f objects/op, want 0", avg)
	}
	if e.stats.Ticks == 0 {
		t.Error("flight recorder did not count ticks")
	}
	if e.stats.ThermalNanos <= 0 || e.stats.PowerNanos <= 0 {
		t.Errorf("phase wall clocks did not advance: thermal=%d power=%d",
			e.stats.ThermalNanos, e.stats.PowerNanos)
	}
}

// A full run must surface a self-consistent flight recorder on its
// Result: every simulated tick is either stepped or jumped, and the
// superstep bookkeeping agrees with itself.
func TestRunStatsConsistent(t *testing.T) {
	cfg := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Ticks == 0 {
		t.Fatal("no ticks counted")
	}
	if st.Supersteps > 0 && st.SuperstepTicks == 0 {
		t.Error("supersteps counted but no jumped ticks")
	}
	if st.MaxJump > st.SuperstepTicks {
		t.Errorf("max jump %d exceeds total jumped ticks %d", st.MaxJump, st.SuperstepTicks)
	}
	if st.ThermalNanos != 0 {
		t.Errorf("wall timing recorded without a Clock: %d ns", st.ThermalNanos)
	}
	if !strings.Contains(st.String(), "ticks advanced") {
		t.Errorf("render looks wrong:\n%s", st.String())
	}

	// A second identical engine reuses the cached propagator.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.PropCacheHits == 0 {
		t.Error("second engine over the same system did not hit the propagator cache")
	}
}

// BenchmarkInstrumentedTick is BenchmarkSimRun with the flight
// recorder's wall clocks enabled — the overhead comparison pair for the
// ≤2% instrumentation budget.
func BenchmarkInstrumentedTick(b *testing.B) {
	cfg := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		Clock:    obs.Nanotime,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("run did not complete")
		}
	}
}
