package sim

import (
	"math"
	"testing"
	"testing/quick"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func baseConfig() Config {
	return Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil platform", func(c *Config) { c.Platform = nil }},
		{"nil net", func(c *Config) { c.Net = nil }},
		{"nil app", func(c *Config) { c.App = nil }},
		{"bad mapping", func(c *Config) { c.Map = mapping.Mapping{Big: 9} }},
		{"bad partition", func(c *Config) { c.Part = mapping.Partition{Num: 9, Den: 8} }},
		{"cpu work no cores", func(c *Config) { c.Map = mapping.Mapping{UseGPU: true}; c.Part = mapping.Partition{Num: 4, Den: 8} }},
		{"gpu work no gpu", func(c *Config) { c.Map = mapping.Mapping{Big: 2}; c.Part = mapping.Partition{Num: 4, Den: 8} }},
		{"negative tick", func(c *Config) { c.TickS = -1 }},
		{"bad baseline frac", func(c *Config) { c.PkgBaselineFrac = 2 }},
		{"bad initial temps", func(c *Config) { c.InitialTempsC = []float64{1} }},
	}
	for _, c := range cases {
		cfg := baseConfig()
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", c.name)
		}
	}
	if _, err := New(baseConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRunCompletes(t *testing.T) {
	e, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.ExecTimeS <= 0 || res.ExecTimeS > 500 {
		t.Errorf("ExecTimeS = %g", res.ExecTimeS)
	}
	if res.EnergyJ <= 0 {
		t.Errorf("EnergyJ = %g", res.EnergyJ)
	}
	if res.AvgPowerW < 2 || res.AvgPowerW > 15 {
		t.Errorf("AvgPowerW = %g outside the board envelope", res.AvgPowerW)
	}
	if res.PeakTempC < res.AvgTempC {
		t.Error("peak temperature below average")
	}
	if res.Trace.Len() == 0 {
		t.Error("no trace recorded")
	}
}

// Energy and execution time consistency: meter energy ≈ avg power × wall
// time covered by the meter.
func TestEnergyConsistency(t *testing.T) {
	e, _ := New(baseConfig())
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	wall := res.ExecTimeS
	approx := res.AvgPowerW * wall
	if math.Abs(res.EnergyJ-approx)/approx > 0.1 {
		t.Errorf("EnergyJ %g vs avgP×t %g differ by >10%%", res.EnergyJ, approx)
	}
}

// GPU-only execution at max frequency must match the analytic ETGPUOnly.
func TestGPUOnlyMatchesAnalytic(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{UseGPU: true}
	cfg.Part = mapping.Partition{Num: 0, Den: 8}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.App.ETGPUOnly(6, 600)
	if math.Abs(res.ExecTimeS-want) > 0.05 {
		t.Errorf("GPU-only ET = %g, want %g", res.ExecTimeS, want)
	}
}

// CPU-only execution without thermal protection at max frequency matches
// the analytic ETCPUOnly.
func TestCPUOnlyMatchesAnalytic(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{Big: 4, Little: 4}
	cfg.Part = mapping.Partition{Num: 8, Den: 8}
	cfg.DisableHWProtect = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.App.ETCPUOnly(4, 4, 2000, 1400)
	if math.Abs(res.ExecTimeS-want) > 0.05 {
		t.Errorf("CPU-only ET = %g, want %g", res.ExecTimeS, want)
	}
}

// With hardware protection enabled, a hot full-tilt run must trip and the
// trip must cap the big cluster at 900 MHz.
func TestHWProtectionTrips(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{Big: 4, Little: 4, UseGPU: true}
	cfg.App = workload.Syrk() // hottest app
	warm, err := WarmStartTemps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitialTempsC = warm
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottleEvents == 0 {
		t.Error("expected at least one hardware throttle event")
	}
	if res.PeakTempC > 97 {
		t.Errorf("peak temp %g far above trip point", res.PeakTempC)
	}
	// The trace must show 900 MHz episodes.
	saw900 := false
	bigIdx := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.FreqsMHz[bigIdx] == 900 {
			saw900 = true
			break
		}
	}
	if !saw900 {
		t.Error("trace never shows the 900 MHz hardware cap")
	}
}

// Without protection the same run must exceed the trip temperature —
// proving the protection test above is meaningful.
func TestNoProtectionOverheats(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Mapping{Big: 4, Little: 4, UseGPU: true}
	cfg.App = workload.Syrk()
	cfg.DisableHWProtect = true
	warm, err := WarmStartTemps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitialTempsC = warm
	e, _ := New(cfg)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakTempC < 95 {
		t.Errorf("unprotected peak %g should exceed 95 °C", res.PeakTempC)
	}
}

// Lower frequency must not increase energy for a compute-bound app run on
// the same mapping when the time stays bounded... it trades time for
// power; here we only assert monotone execution time.
func TestFrequencyMonotoneET(t *testing.T) {
	run := func(f int) float64 {
		cfg := baseConfig()
		cfg.DisableHWProtect = true
		cfg.Freq = mapping.FreqSetting{BigMHz: f, LittleMHz: 1400, GPUMHz: 600}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTimeS
	}
	if et1000, et2000 := run(1000), run(2000); et1000 < et2000 {
		t.Errorf("ET at 1000 MHz (%g) should exceed ET at 2000 MHz (%g)", et1000, et2000)
	}
}

func TestMachineInterface(t *testing.T) {
	e, _ := New(baseConfig())
	if e.TimeS() != 0 {
		t.Error("initial time should be 0")
	}
	if e.SensorC("A15") != 28 {
		t.Errorf("initial sensor = %g, want ambient 28", e.SensorC("A15"))
	}
	if e.SensorC("nope") != 0 {
		t.Error("unknown sensor should read 0")
	}
	if e.ClusterFreqMHz("A15") != 2000 {
		t.Errorf("initial big freq = %d, want 2000 (default max)", e.ClusterFreqMHz("A15"))
	}
	if e.ClusterFreqMHz("nope") != 0 {
		t.Error("unknown cluster freq should be 0")
	}
	if err := e.SetClusterFreqMHz("A15", 1333); err != nil {
		t.Fatal(err)
	}
	if got := e.ClusterFreqMHz("A15"); got != 1300 {
		t.Errorf("freq snapped to %d, want 1300", got)
	}
	if err := e.SetClusterFreqMHz("nope", 1000); err == nil {
		t.Error("unknown cluster should error")
	}
	if e.Throttled() {
		t.Error("fresh engine should not be throttled")
	}
}

func TestWarmStartTemps(t *testing.T) {
	warm, err := WarmStartTemps(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 4 {
		t.Fatalf("got %d temps", len(warm))
	}
	// Warm state must be meaningfully above ambient and below trip.
	if warm[0] < 50 || warm[0] > 95 {
		t.Errorf("warm big temp = %g, want 50–95", warm[0])
	}
}

// MaxTimeS must bound runaway runs.
func TestMaxTime(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxTimeS = 1.0
	e, _ := New(cfg)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("1-second budget should not complete COVARIANCE")
	}
	if res.ExecTimeS > 1.05 {
		t.Errorf("aborted run reports ET %g", res.ExecTimeS)
	}
}

// Partition 0/8 and 8/8 runs must be equivalent to GPU-only and CPU-only.
func TestPartitionExtremes(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableHWProtect = true
	cfg.Map = mapping.Mapping{Big: 4, Little: 4, UseGPU: true}

	cfg.Part = mapping.Partition{Num: 0, Den: 8}
	cfg.Map.UseGPU = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := e.Run()
	if math.Abs(res.ExecTimeS-cfg.App.ETGPUOnly(6, 600)) > 0.05 {
		t.Error("0/8 partition should equal GPU-only time")
	}

	cfg.Part = mapping.Partition{Num: 8, Den: 8}
	cfg.Map.UseGPU = false
	e, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = e.Run()
	if math.Abs(res.ExecTimeS-cfg.App.ETCPUOnly(4, 4, 2000, 1400)) > 0.05 {
		t.Error("8/8 partition should equal CPU-only time")
	}
}

// Hotplugging unused cores must strictly reduce energy for a GPU-only run.
func TestHotplugSavesEnergy(t *testing.T) {
	run := func(hotplug bool) float64 {
		cfg := baseConfig()
		cfg.Map = mapping.Mapping{UseGPU: true}
		cfg.Part = mapping.Partition{Num: 0, Den: 8}
		cfg.HotplugUnused = hotplug
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.EnergyJ
	}
	on, off := run(false), run(true)
	if off >= on {
		t.Errorf("hotplug energy %g should be below idle-leak energy %g", off, on)
	}
}

// Property: with hardware protection enabled, no run ever exceeds the trip
// temperature by more than the overshoot of one tick, regardless of app,
// mapping or partition — the firmware safety invariant every governor
// relies on.
func TestHWProtectionSafetyProperty(t *testing.T) {
	apps := workload.Apps()
	f := func(appIdx, nB, nL, grain uint8) bool {
		app := apps[int(appIdx)%len(apps)]
		m := mapping.Mapping{
			Big:    1 + int(nB)%4,
			Little: int(nL) % 5,
		}
		part := mapping.Partition{Num: int(grain) % 9, Den: 8}
		m.UseGPU = part.Num < part.Den
		if part.Num == part.Den && m.CPUCores() == 0 {
			return true // infeasible, skip
		}
		cfg := baseConfig()
		cfg.App = app
		cfg.Map = m
		cfg.Part = part
		cfg.MaxTimeS = 30 // bound runtime; safety shows early
		warm, err := WarmStartTemps(cfg)
		if err != nil {
			return false
		}
		cfg.InitialTempsC = warm
		e, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := e.Run()
		if err != nil {
			return false
		}
		// One tick at full power overshoots by well under 2 °C.
		return res.PeakTempC < cfg.Platform.TripC+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The exact propagator and the Euler reference integrator must tell the
// same story at the simulation level: identical completion, near-identical
// time/energy/temperature metrics (the integrators differ only by the
// Euler discretisation error).
func TestIntegratorsAgree(t *testing.T) {
	base := Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
	run := func(integ Integrator) *Result {
		cfg := base
		cfg.Integrator = integ
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := run(IntegratorExact)
	euler := run(IntegratorEuler)
	if exact.Completed != euler.Completed {
		t.Fatalf("completion mismatch: exact %v vs euler %v", exact.Completed, euler.Completed)
	}
	if d := math.Abs(exact.ExecTimeS - euler.ExecTimeS); d > 0.05 {
		t.Errorf("ExecTimeS differs by %.3f s (exact %.3f, euler %.3f)", d, exact.ExecTimeS, euler.ExecTimeS)
	}
	if d := math.Abs(exact.AvgTempC - euler.AvgTempC); d > 0.1 {
		t.Errorf("AvgTempC differs by %.3f °C (exact %.2f, euler %.2f)", d, exact.AvgTempC, euler.AvgTempC)
	}
	if d := math.Abs(exact.PeakTempC - euler.PeakTempC); d > 0.2 {
		t.Errorf("PeakTempC differs by %.3f °C (exact %.2f, euler %.2f)", d, exact.PeakTempC, euler.PeakTempC)
	}
	if rel := math.Abs(exact.EnergyJ-euler.EnergyJ) / euler.EnergyJ; rel > 0.01 {
		t.Errorf("EnergyJ differs by %.2f%% (exact %.1f, euler %.1f)", 100*rel, exact.EnergyJ, euler.EnergyJ)
	}
}
