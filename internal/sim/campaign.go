package sim

import (
	"errors"
	"fmt"
	"reflect"

	"teem/internal/mapping"
	"teem/internal/par"
	"teem/internal/power"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// A campaign is a sequence of application runs executed back to back on
// the same chip, with the thermal state carried across job boundaries and
// optional idle gaps between them — the situation the paper's measurement
// protocol (and any real device) lives in. Later jobs start hotter, so
// thermally blind policies degrade as a campaign progresses while TEEM
// keeps regulating.

// Job is one campaign entry.
type Job struct {
	// App, Map, Part and Freq configure the run like Config does.
	App  *workload.App
	Map  mapping.Mapping
	Part mapping.Partition
	Freq mapping.FreqSetting
	// Governor drives DVFS for this job (each job gets its own
	// instance; governors are stateful).
	Governor Governor
	// HotplugUnused powers down unused cores for this job.
	HotplugUnused bool
}

// CampaignConfig carries the shared platform and pacing.
type CampaignConfig struct {
	// Platform and Net are the shared hardware (required).
	Platform *soc.Platform
	Net      *thermal.Network
	// GapS is the idle time between consecutive jobs (default 0).
	GapS float64
	// TickS, MaxTimeS and PkgBaselineFrac default like Config.
	TickS           float64
	MaxTimeS        float64
	PkgBaselineFrac float64
	// InitialTempsC presets the chip state before the first job
	// (default: ambient — a cold campaign start). For Independent
	// campaigns every job starts from this state.
	InitialTempsC []float64
	// Independent marks the jobs as thermally non-carrying: each starts
	// from InitialTempsC with no state crossing job boundaries — a
	// batch of separate experiments rather than a back-to-back device
	// session. Independent jobs are scheduled across the worker pool;
	// results keep the input order, so parallel output is identical to
	// serial output. GapS must be 0 (an idle gap is meaningless without
	// carried state), and each job needs its own Governor instance
	// (governors are stateful).
	Independent bool
	// Workers bounds the parallel scheduler for Independent campaigns
	// (0 = one per CPU, 1 = serial). Ignored for carried-state
	// campaigns, which are inherently sequential.
	Workers int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Jobs holds the per-job results in execution order.
	Jobs []*Result
	// TotalTimeS is the summed execution time (gaps excluded);
	// TotalEnergyJ the summed measured energy (gap energy excluded).
	TotalTimeS   float64
	TotalEnergyJ float64
	// PeakTempC is the campaign-wide big-cluster peak.
	PeakTempC float64
	// FinalTempsC is the chip state after the last job.
	FinalTempsC []float64
}

// RunCampaign executes the jobs: sequentially with the thermal state
// carried across job boundaries (the default), or — when cc.Independent
// is set — as thermally non-carrying jobs scheduled across a bounded
// worker pool.
func RunCampaign(cc CampaignConfig, jobs []Job) (*CampaignResult, error) {
	if cc.Platform == nil || cc.Net == nil {
		return nil, errors.New("sim: campaign needs Platform and Net")
	}
	if len(jobs) == 0 {
		return nil, errors.New("sim: campaign has no jobs")
	}
	if cc.GapS < 0 {
		return nil, errors.New("sim: negative campaign gap")
	}
	if cc.Independent {
		return runIndependent(cc, jobs)
	}
	temps := cc.InitialTempsC
	out := &CampaignResult{}
	for i, j := range jobs {
		cfg := Config{
			Platform:        cc.Platform,
			Net:             cc.Net,
			App:             j.App,
			Map:             j.Map,
			Part:            j.Part,
			Freq:            j.Freq,
			Governor:        j.Governor,
			HotplugUnused:   j.HotplugUnused,
			TickS:           cc.TickS,
			MaxTimeS:        cc.MaxTimeS,
			PkgBaselineFrac: cc.PkgBaselineFrac,
			InitialTempsC:   temps,
		}
		e, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: campaign job %d (%s): %w", i, j.App.Name, err)
		}
		res, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("sim: campaign job %d (%s): %w", i, j.App.Name, err)
		}
		out.Jobs = append(out.Jobs, res)
		out.TotalTimeS += res.ExecTimeS
		out.TotalEnergyJ += res.EnergyJ
		if res.PeakTempC > out.PeakTempC {
			out.PeakTempC = res.PeakTempC
		}
		temps = e.FinalTemps()
		// Idle gap: the chip cools with all clusters idle.
		if cc.GapS > 0 && i < len(jobs)-1 {
			temps, err = coolDown(cc, temps, cc.GapS)
			if err != nil {
				return nil, err
			}
		}
	}
	out.FinalTempsC = temps
	return out, nil
}

// runIndependent is the parallel scheduler for thermally non-carrying
// jobs: each job simulates from cc.InitialTempsC on its own engine, the
// worker pool bounds concurrency, and results are reassembled in input
// order so the aggregate (summed in job order) is byte-identical to a
// one-worker run.
func runIndependent(cc CampaignConfig, jobs []Job) (*CampaignResult, error) {
	if cc.GapS != 0 {
		return nil, errors.New("sim: independent campaign cannot have idle gaps (no carried state to cool)")
	}
	// Governors are stateful, so two parallel jobs driving the same
	// instance would be a data race. Best-effort guard: reject reuse of
	// the same pointer (or other reference-kind value — map, slice,
	// func, chan) across jobs. Plain value-typed governors with value
	// receivers are boxed immutably in the interface and safe to share;
	// a value type smuggling interior pointers cannot be detected here,
	// which is why the CampaignConfig contract still says "each job
	// needs its own Governor instance".
	sharedGov := make(map[uintptr]int, len(jobs))
	for i, j := range jobs {
		if j.Governor == nil {
			continue
		}
		v := reflect.ValueOf(j.Governor)
		switch v.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Func, reflect.Chan, reflect.UnsafePointer:
			if prev, ok := sharedGov[v.Pointer()]; ok {
				return nil, fmt.Errorf("sim: independent campaign jobs %d and %d share one governor instance; governors are stateful — give each job its own", prev, i)
			}
			sharedGov[v.Pointer()] = i
		}
	}
	results := make([]*Result, len(jobs))
	finals := make([][]float64, len(jobs))
	if err := par.ForEach(cc.Workers, len(jobs), func(i int) error {
		j := jobs[i]
		e, err := New(Config{
			Platform:        cc.Platform,
			Net:             cc.Net,
			App:             j.App,
			Map:             j.Map,
			Part:            j.Part,
			Freq:            j.Freq,
			Governor:        j.Governor,
			HotplugUnused:   j.HotplugUnused,
			TickS:           cc.TickS,
			MaxTimeS:        cc.MaxTimeS,
			PkgBaselineFrac: cc.PkgBaselineFrac,
			InitialTempsC:   cc.InitialTempsC,
		})
		if err != nil {
			return fmt.Errorf("sim: campaign job %d (%s): %w", i, j.App.Name, err)
		}
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("sim: campaign job %d (%s): %w", i, j.App.Name, err)
		}
		results[i] = res
		finals[i] = e.FinalTemps()
		return nil
	}); err != nil {
		return nil, err
	}
	out := &CampaignResult{Jobs: results}
	for _, res := range results {
		out.TotalTimeS += res.ExecTimeS
		out.TotalEnergyJ += res.EnergyJ
		if res.PeakTempC > out.PeakTempC {
			out.PeakTempC = res.PeakTempC
		}
	}
	out.FinalTempsC = finals[len(finals)-1]
	return out, nil
}

// coolDown advances the thermal state through an idle period.
func coolDown(cc CampaignConfig, temps []float64, gapS float64) ([]float64, error) {
	tm, err := thermal.NewModel(cc.Net, cc.Platform.AmbientC)
	if err != nil {
		return nil, err
	}
	if err := tm.SetTemps(temps); err != nil {
		return nil, err
	}
	pm, err := power.NewModel(cc.Platform)
	if err != nil {
		return nil, err
	}
	frac := cc.PkgBaselineFrac
	if frac == 0 {
		frac = 0.5
	}
	pkg := cc.Net.NodeIndex("pkg")
	// Idle leakage at the current temperatures, stepped at 100 ms.
	for t := 0.0; t < gapS; t += 0.1 {
		loads := power.IdleLoads(cc.Platform, tm.Temp(0))
		for i := range loads {
			node := cc.Net.NodeIndex(cc.Platform.Clusters[i].Name)
			if node >= 0 {
				loads[i].TempC = tm.Temp(node)
			}
		}
		bd, err := pm.Evaluate(loads, 0)
		if err != nil {
			return nil, err
		}
		inj := make([]float64, len(cc.Net.Nodes))
		for i := range cc.Platform.Clusters {
			node := cc.Net.NodeIndex(cc.Platform.Clusters[i].Name)
			if node >= 0 {
				inj[node] += bd.ClusterW(i)
			}
		}
		if pkg >= 0 {
			inj[pkg] += frac * bd.BaselineW
		}
		if err := tm.Step(inj, 0.1); err != nil {
			return nil, err
		}
	}
	return tm.Temps(), nil
}
