package sim

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// The steady-state simulation tick must not touch the heap: power
// evaluation, thermal stepping, metering and trace recording all reuse
// engine-owned buffers. This is the allocation-regression guard for the
// whole hot path; the sibling guards in internal/thermal pin the
// integrators on their own.
func TestTickZeroAllocs(t *testing.T) {
	e, err := New(Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	e.govEvery = 0
	e.recEvery = 10
	// Warm up a few ticks: the first peak-temperature snapshot and the
	// lazily created first trace arena block may allocate once.
	for i := 0; i < 50; i++ {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}); avg != 0 {
		t.Errorf("steady-state tick allocates %.3f objects/op, want 0", avg)
	}
}

// A scenario-driven engine — pending scheduled events, a queued arrival,
// an idle-capable horizon — must keep the steady-state tick between
// events allocation-free: event dispatch is a single integer compare on
// ticks with nothing due.
func TestTickZeroAllocsBetweenEvents(t *testing.T) {
	// An armed cancellation channel: the per-tick abort poll (a
	// non-blocking receive) must not cost an allocation either.
	done := make(chan struct{})
	defer close(done)
	e, err := New(Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		MinTimeS: 600,
		Done:     done,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A queued arrival, a suspended preemptee and far-future events: the
	// hot loop must not pay for any of them until they come due.
	if err := e.EnqueueApp(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}); err != nil {
		t.Fatal(err)
	}
	// A high-priority arrival preempts the live COVARIANCE, parking it in
	// the queue: the steady tick with a suspended job pending must stay
	// allocation-free too.
	if _, err := e.EnqueueAppPriority(workload.Gemm(), mapping.Partition{Num: 4, Den: 8}, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(500, func(e *Engine) error { e.SetAmbientC(43); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(550, func(e *Engine) error {
		return e.SetPartition(mapping.Partition{Num: 2, Den: 8})
	}); err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	e.govEvery = 0
	e.recEvery = 10
	for i := 0; i < 50; i++ {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}); avg != 0 {
		t.Errorf("tick between scenario events allocates %.3f objects/op, want 0", avg)
	}
}

// The Euler reference integrator path must stay allocation-free too.
func TestTickZeroAllocsEulerIntegrator(t *testing.T) {
	e, err := New(Config{
		Platform:   soc.Exynos5422(),
		Net:        thermal.Exynos5422Network(),
		App:        workload.Covariance(),
		Map:        mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:       mapping.Partition{Num: 4, Den: 8},
		Integrator: IntegratorEuler,
	})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	e.govEvery = 0
	e.recEvery = 10
	for i := 0; i < 50; i++ {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := e.tick(dt); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}); avg != 0 {
		t.Errorf("steady-state Euler tick allocates %.3f objects/op, want 0", avg)
	}
}
