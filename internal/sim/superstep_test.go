package sim

import (
	"math"
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// utilGov is an ondemand-shaped util-only policy: max frequency under
// load, one OPP down per idle epoch — a pure function of utilisation and
// current frequency, so it is marked UtilOnly and exercises the
// epoch-crossing certificate.
type utilGov struct{}

func (utilGov) Name() string          { return "test-util" }
func (utilGov) PeriodS() float64      { return 0.1 }
func (utilGov) UtilOnly() bool        { return true }
func (utilGov) Start(m Machine) error { return nil }
func (utilGov) Act(m Machine) error {
	for _, c := range m.Platform().Clusters {
		cur := m.ClusterFreqMHz(c.Name)
		if m.ClusterUtil(c.Name) > 0.8 {
			if err := m.SetClusterFreqMHz(c.Name, c.MaxFreqMHz()); err != nil {
				return err
			}
		} else if cur > c.OPPs[0].FreqMHz {
			if err := m.SetClusterFreqMHz(c.Name, cur-1); err != nil {
				return err
			}
		}
	}
	return nil
}

func superstepConfig(disable bool) Config {
	return Config{
		Platform:         soc.Exynos5422(),
		Net:              thermal.Exynos5422Network(),
		App:              workload.Covariance(),
		Map:              mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:             mapping.Partition{Num: 4, Den: 8},
		MinTimeS:         120, // a long idle tail after the job drains
		DisableSuperstep: disable,
	}
}

// Integrator-agreement contract (docs/integrators.md): a superstepped
// run reproduces the fixed-tick run's scheduling decisions and meter
// readings exactly, and its temperatures to floating-point rounding.
func TestSuperstepAgreesWithFixedTicks(t *testing.T) {
	eJ, err := New(superstepConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rJ, err := eJ.Run()
	if err != nil {
		t.Fatal(err)
	}
	eF, err := New(superstepConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rF, err := eF.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rJ.Completed != rF.Completed {
		t.Errorf("Completed: superstep %v vs fixed %v", rJ.Completed, rF.Completed)
	}
	if rJ.ExecTimeS != rF.ExecTimeS {
		t.Errorf("ExecTimeS: superstep %g vs fixed %g", rJ.ExecTimeS, rF.ExecTimeS)
	}
	if rJ.EnergyJ != rF.EnergyJ {
		t.Errorf("EnergyJ: superstep %.15g vs fixed %.15g", rJ.EnergyJ, rF.EnergyJ)
	}
	if rJ.AvgPowerW != rF.AvgPowerW {
		t.Errorf("AvgPowerW: superstep %.15g vs fixed %.15g", rJ.AvgPowerW, rF.AvgPowerW)
	}
	if rJ.FreqTransitions != rF.FreqTransitions {
		t.Errorf("FreqTransitions: superstep %d vs fixed %d", rJ.FreqTransitions, rF.FreqTransitions)
	}
	if rJ.ThrottleEvents != rF.ThrottleEvents {
		t.Errorf("ThrottleEvents: superstep %d vs fixed %d", rJ.ThrottleEvents, rF.ThrottleEvents)
	}
	if len(rJ.JobFinishes) != len(rF.JobFinishes) {
		t.Fatalf("JobFinishes: superstep %d vs fixed %d", len(rJ.JobFinishes), len(rF.JobFinishes))
	}
	for i := range rJ.JobFinishes {
		if rJ.JobFinishes[i] != rF.JobFinishes[i] {
			t.Errorf("JobFinishes[%d]: superstep %+v vs fixed %+v", i, rJ.JobFinishes[i], rF.JobFinishes[i])
		}
	}
	if d := math.Abs(rJ.PeakTempC - rF.PeakTempC); d > 1e-9 {
		t.Errorf("PeakTempC: superstep %.12g vs fixed %.12g (|Δ|=%.3g)", rJ.PeakTempC, rF.PeakTempC, d)
	}
	// Final model state must agree to rounding.
	tJ := eJ.therm.Temps()
	tF := eF.therm.Temps()
	for i := range tJ {
		if d := math.Abs(tJ[i] - tF[i]); d > 1e-9 {
			t.Errorf("final temp node %d: superstep %.12g vs fixed %.12g (|Δ|=%.3g)", i, tJ[i], tF[i], d)
		}
	}
	// Trace-derived thermal aggregates may coarsen inside jumped
	// intervals; the contract bounds them to 0.01 °C.
	if d := math.Abs(rJ.AvgTempC - rF.AvgTempC); d > 0.01 {
		t.Errorf("AvgTempC: superstep %.6g vs fixed %.6g (|Δ|=%.3g > 0.01)", rJ.AvgTempC, rF.AvgTempC, d)
	}
}

// Superstepped runs must refuse nothing an ordinary run accepts: a
// governor-driven run (ondemand, a marked util-only policy) still agrees
// on scheduling and energy while crossing control epochs.
func TestSuperstepAgreesUnderGovernor(t *testing.T) {
	mk := func(disable bool) (*Engine, *Result) {
		cfg := superstepConfig(disable)
		cfg.Governor = utilGov{}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return e, r
	}
	eJ, rJ := mk(false)
	eF, rF := mk(true)
	if rJ.ExecTimeS != rF.ExecTimeS || rJ.EnergyJ != rF.EnergyJ ||
		rJ.FreqTransitions != rF.FreqTransitions || rJ.ThrottleEvents != rF.ThrottleEvents {
		t.Errorf("governed run diverged: ET %g/%g energy %.15g/%.15g transitions %d/%d throttles %d/%d",
			rJ.ExecTimeS, rF.ExecTimeS, rJ.EnergyJ, rF.EnergyJ,
			rJ.FreqTransitions, rF.FreqTransitions, rJ.ThrottleEvents, rF.ThrottleEvents)
	}
	tJ, tF := eJ.therm.Temps(), eF.therm.Temps()
	for i := range tJ {
		if d := math.Abs(tJ[i] - tF[i]); d > 1e-9 {
			t.Errorf("final temp node %d: |Δ|=%.3g", i, d)
		}
	}
}

// An Euler run must never enter the superstep path (the jump map is the
// exact propagator's); the knob is simply inert there.
func TestSuperstepInertUnderEuler(t *testing.T) {
	cfg := superstepConfig(false)
	cfg.Integrator = IntegratorEuler
	cfg.MinTimeS = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.ss != nil {
		t.Error("Euler run built a superstep jump map")
	}
}

// The warm superstep path must not touch the heap: jumping an idle
// interval with a cached jump map and cached blocks is pure array
// arithmetic, like the steady-state tick it replaces.
func TestSuperstepZeroAllocs(t *testing.T) {
	e, err := New(Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		MinTimeS: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.01
	e.govEvery = 0
	e.recEvery = 10
	// Room for the samples the measured jumps will latch.
	e.meter.Reserve(8000)
	const maxTicks, minTicks = 50_000_000, 40_000_000
	// Warm up: seed the peak snapshot, build the jump map and its blocks.
	for i := 0; i < 300; i++ {
		jumped, err := e.superstep(dt, maxTicks, minTicks)
		if err != nil {
			t.Fatal(err)
		}
		if !jumped {
			if _, err := e.tick(dt); err != nil {
				t.Fatal(err)
			}
			e.timeTicks++
		}
	}
	if avg := testing.AllocsPerRun(2000, func() {
		jumped, err := e.superstep(dt, maxTicks, minTicks)
		if err != nil {
			t.Fatal(err)
		}
		if !jumped {
			if _, err := e.tick(dt); err != nil {
				t.Fatal(err)
			}
			e.timeTicks++
		}
	}); avg != 0 {
		t.Errorf("warm superstep path allocates %.3f objects/op, want 0", avg)
	}
}
