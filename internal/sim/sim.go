// Package sim co-simulates workload execution, power and temperature on an
// MPSoC platform. Each tick (default 10 ms) it advances the application's
// CPU and GPU work-item chunks at rates given by the current DVFS state,
// evaluates the power model, steps the thermal RC network, samples the
// board power meter and — at its control period — invokes the DVFS
// governor. Hardware thermal protection (the Exynos TMU behaviour: trip at
// 95 °C, cap the big cluster at 900 MHz, release below the hysteresis
// point) runs independently of software policy, exactly like the firmware
// the paper's baselines rely on.
//
// The tick loop is allocation-free at steady state: thermal stepping uses
// a precomputed exact propagator (thermal.Stepper), power evaluation
// writes into an engine-owned breakdown (power.EvaluateInto), node and
// sensor lookups are index maps built once at New, and the trace and
// meter are pre-sized for the configured run length.
package sim

import (
	"errors"
	"fmt"

	"teem/internal/mapping"
	"teem/internal/power"
	"teem/internal/powermeter"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

// Machine is the restricted hardware view a governor gets: sensors,
// current frequencies, utilisation, and frequency control — the same
// surface Linux governors see through sysfs.
type Machine interface {
	// TimeS is the current simulation time in seconds.
	TimeS() float64
	// Platform describes the hardware.
	Platform() *soc.Platform
	// SensorC reads the thermal sensor on the named node (°C). Unknown
	// nodes read as 0.
	SensorC(node string) float64
	// ClusterFreqMHz returns the current frequency of the named
	// cluster (0 for unknown or gated clusters).
	ClusterFreqMHz(cluster string) int
	// SetClusterFreqMHz requests a frequency; it is snapped to the
	// nearest supported OPP and clamped by active hardware throttling.
	SetClusterFreqMHz(cluster string, mhz int) error
	// ClusterUtil returns the cluster's busy fraction over the last
	// tick.
	ClusterUtil(cluster string) float64
	// Throttled reports whether hardware thermal protection is
	// currently capping the big cluster.
	Throttled() bool
}

// Governor is a DVFS policy invoked every PeriodS of simulated time.
type Governor interface {
	// Name identifies the policy ("ondemand", "teem", ...).
	Name() string
	// PeriodS is the control period in seconds.
	PeriodS() float64
	// Start initialises the policy at t=0 (set initial frequencies
	// here).
	Start(m Machine) error
	// Act runs one control step.
	Act(m Machine) error
}

// Integrator selects the thermal stepping scheme of a run.
type Integrator int

const (
	// IntegratorExact advances the RC network with the precomputed
	// exact discrete-time propagator (the default: unconditionally
	// stable, zero-allocation, exact for piecewise-constant power).
	IntegratorExact Integrator = iota
	// IntegratorEuler uses the substepped explicit-Euler reference
	// integrator — useful for cross-checking and regression hunting.
	IntegratorEuler
)

// Config assembles a simulation.
type Config struct {
	// Platform is the hardware description (required).
	Platform *soc.Platform
	// Net is the thermal topology; nodes must be named after the
	// clusters they carry, plus a "pkg" node (required).
	Net *thermal.Network
	// App is the workload (required).
	App *workload.App
	// Map selects the CPU cores used; Part splits work-items between
	// CPU and GPU.
	Map  mapping.Mapping
	Part mapping.Partition
	// Freq is the initial DVFS setting; zero fields default to each
	// cluster's maximum.
	Freq mapping.FreqSetting
	// Governor is the DVFS policy; nil runs at the initial frequencies.
	Governor Governor
	// HWProtect enables the firmware thermal trip behaviour (default
	// semantics: enabled unless DisableHWProtect).
	DisableHWProtect bool
	// HotplugUnused powers down unused cores (EEMP-style DPM) instead
	// of leaving them idle and leaking.
	HotplugUnused bool
	// TickS is the simulation step (default 0.01 s).
	TickS float64
	// RecordPeriodS is the trace sampling period (default 0.1 s).
	RecordPeriodS float64
	// MaxTimeS aborts runaway runs (default 900 s).
	MaxTimeS float64
	// PkgBaselineFrac is the fraction of board baseline power that
	// heats the package node (regulators near the SoC); default 0.5.
	PkgBaselineFrac float64
	// InitialTempsC presets node temperatures (default: ambient).
	InitialTempsC []float64
	// SensorQuantizeC quantises sensor reads (default 0 = exact).
	SensorQuantizeC float64
	// Integrator selects the thermal stepping scheme (default:
	// IntegratorExact).
	Integrator Integrator
}

// Result summarises a run.
type Result struct {
	// Completed is false when MaxTimeS elapsed first.
	Completed bool
	// ExecTimeS is the application execution time (Eq. 3's ET).
	ExecTimeS float64
	// EnergyJ is the meter-accumulated board energy; AvgPowerW the
	// meter average.
	EnergyJ   float64
	AvgPowerW float64
	// AvgTempC/PeakTempC are for the hottest monitored cluster node
	// (big CPU), matching the paper's reporting.
	AvgTempC  float64
	PeakTempC float64
	// TempVarC2 is the temporal variance of the big-cluster
	// temperature; TempGradCps the mean |dT/dt|.
	TempVarC2   float64
	TempGradCps float64
	// AvgBigFreqMHz is the effective big-cluster frequency.
	AvgBigFreqMHz float64
	// FreqTransitions counts DVFS changes (governor overhead metric).
	FreqTransitions int
	// ThrottleEvents counts hardware trips.
	ThrottleEvents int
	// Trace is the recorded time series.
	Trace *trace.Trace
}

// Engine executes one configured run.
type Engine struct {
	cfg     Config
	plat    *soc.Platform
	therm   *thermal.Model
	stepper *thermal.Stepper
	pow     *power.Model
	meter   *powermeter.Meter
	tr      *trace.Trace

	// cluster bookkeeping, indexed like plat.Clusters
	freqs   []int
	nodeOf  []int // thermal node per cluster
	utils   []float64
	pkgNode int
	bigIdx  int // cluster index of the big CPU
	gpuIdx  int
	litIdx  int

	// lookup caches built at New so governor reads and the tick loop
	// never scan strings or construct sensors.
	sensors    map[string]thermal.Sensor
	clusterIdx map[string]int

	// per-tick scratch state, reused so the steady-state tick performs
	// zero heap allocations. loads carries the configuration-static
	// fields (core counts, activity) from New; ticks only refresh
	// frequency, voltage, temperature and utilisation.
	loads    []power.ClusterLoad
	bd       power.Breakdown
	inj      []float64
	recTemps []float64
	govEvery int
	recEvery int

	// volts caches the rail voltage of each cluster's current
	// frequency; rateCPU/rateGPU cache the roofline work-item rates.
	// All three change only on a DVFS transition (ratesDirty).
	volts      []float64
	rateCPU    float64
	rateGPU    float64
	ratesDirty bool

	remCPU, remGPU float64 // remaining work-items
	timeTicks      int
	transitions    int
	throttleEvents int
	throttled      bool
	preThrottleMHz int
	peakBigC       float64
	peakTemps      []float64
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Platform == nil || cfg.Net == nil || cfg.App == nil {
		return nil, errors.New("sim: Platform, Net and App are required")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	big, lit, gpu := cfg.Platform.Big(), cfg.Platform.Little(), cfg.Platform.GPU()
	if big == nil || lit == nil || gpu == nil {
		return nil, errors.New("sim: platform must have big, LITTLE and GPU clusters")
	}
	if err := cfg.Map.Validate(big.NumCores, lit.NumCores); err != nil {
		return nil, err
	}
	if err := cfg.Part.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickS == 0 {
		cfg.TickS = 0.01
	}
	if cfg.TickS <= 0 {
		return nil, errors.New("sim: TickS must be positive")
	}
	if cfg.RecordPeriodS == 0 {
		cfg.RecordPeriodS = 0.1
	}
	if cfg.MaxTimeS == 0 {
		cfg.MaxTimeS = 900
	}
	if cfg.PkgBaselineFrac == 0 {
		cfg.PkgBaselineFrac = 0.5
	}
	if cfg.PkgBaselineFrac < 0 || cfg.PkgBaselineFrac > 1 {
		return nil, errors.New("sim: PkgBaselineFrac outside [0,1]")
	}

	therm, err := thermal.NewModel(cfg.Net, cfg.Platform.AmbientC)
	if err != nil {
		return nil, err
	}
	var stepper *thermal.Stepper
	if cfg.Integrator == IntegratorExact {
		if stepper, err = therm.NewStepper(cfg.TickS); err != nil {
			return nil, err
		}
	}
	pow, err := power.NewModel(cfg.Platform)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		plat:    cfg.Platform,
		therm:   therm,
		stepper: stepper,
		pow:     pow,
		meter:   powermeter.New(),
	}
	e.meter.Reserve(int(cfg.MaxTimeS) + 2)
	e.nodeOf = make([]int, len(cfg.Platform.Clusters))
	e.clusterIdx = make(map[string]int, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		name := cfg.Platform.Clusters[i].Name
		n := cfg.Net.NodeIndex(name)
		if n < 0 {
			return nil, fmt.Errorf("sim: thermal network lacks a node for cluster %s", name)
		}
		e.nodeOf[i] = n
		e.clusterIdx[name] = i
		switch cfg.Platform.Clusters[i].Kind {
		case soc.BigCPU:
			e.bigIdx = i
		case soc.LittleCPU:
			e.litIdx = i
		case soc.GPU:
			e.gpuIdx = i
		}
	}
	e.pkgNode = cfg.Net.NodeIndex("pkg")
	if e.pkgNode < 0 {
		return nil, errors.New(`sim: thermal network lacks a "pkg" node`)
	}
	e.sensors = make(map[string]thermal.Sensor, len(cfg.Net.Nodes))
	for i := range cfg.Net.Nodes {
		e.sensors[cfg.Net.Nodes[i].Name] = thermal.Sensor{Node: i, QuantizeC: cfg.SensorQuantizeC}
	}

	if cfg.InitialTempsC != nil {
		if err := therm.SetTemps(cfg.InitialTempsC); err != nil {
			return nil, err
		}
	}

	e.freqs = make([]int, len(cfg.Platform.Clusters))
	e.volts = make([]float64, len(cfg.Platform.Clusters))
	e.utils = make([]float64, len(cfg.Platform.Clusters))
	e.loads = make([]power.ClusterLoad, len(cfg.Platform.Clusters))
	e.bd = power.Breakdown{
		DynamicW: make([]float64, len(cfg.Platform.Clusters)),
		LeakageW: make([]float64, len(cfg.Platform.Clusters)),
	}
	e.inj = make([]float64, len(cfg.Net.Nodes))
	e.recTemps = make([]float64, len(cfg.Net.Nodes))
	e.ratesDirty = true
	setDefault := func(idx, req int) {
		c := &e.plat.Clusters[idx]
		if req == 0 {
			e.setFreq(idx, c.MaxFreqMHz())
		} else {
			e.setFreq(idx, c.NearestOPP(req).FreqMHz)
		}
	}
	setDefault(e.bigIdx, cfg.Freq.BigMHz)
	setDefault(e.litIdx, cfg.Freq.LittleMHz)
	setDefault(e.gpuIdx, cfg.Freq.GPUMHz)

	// Configuration-static load fields; the tick loop only refreshes
	// frequency, voltage, temperature and utilisation.
	for i := range cfg.Platform.Clusters {
		c := &cfg.Platform.Clusters[i]
		l := power.ClusterLoad{Activity: 1}
		switch i {
		case e.bigIdx:
			l.ActiveCores = cfg.Map.Big
			l.OnCores = c.NumCores
			if cfg.HotplugUnused {
				l.OnCores = cfg.Map.Big
			}
			l.Activity = cfg.App.ActivityCPU
		case e.litIdx:
			l.ActiveCores = cfg.Map.Little
			l.OnCores = c.NumCores
			if cfg.HotplugUnused {
				l.OnCores = cfg.Map.Little
			}
			l.Activity = cfg.App.ActivityCPU
		case e.gpuIdx:
			l.ActiveCores = c.NumCores
			l.OnCores = c.NumCores
			if cfg.HotplugUnused && !cfg.Map.UseGPU {
				l.ActiveCores = 0
				l.OnCores = 0
			}
			if !cfg.Map.UseGPU {
				l.ActiveCores = 0
			}
			l.Activity = cfg.App.ActivityGPU
		}
		e.loads[i] = l
	}

	nodeNames := make([]string, len(cfg.Net.Nodes))
	for i, n := range cfg.Net.Nodes {
		nodeNames[i] = n.Name
	}
	clusterNames := make([]string, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		clusterNames[i] = cfg.Platform.Clusters[i].Name
	}
	e.tr = trace.NewWithCap(nodeNames, clusterNames, int(cfg.MaxTimeS/cfg.RecordPeriodS)+2)

	total := float64(cfg.App.WorkItems)
	cpuItems := float64(cfg.Part.CPUItems(cfg.App.WorkItems))
	e.remCPU = cpuItems
	e.remGPU = total - cpuItems
	if e.remCPU > 0 && cfg.Map.CPUCores() == 0 {
		return nil, errors.New("sim: partition sends work to the CPU but the mapping uses no CPU cores")
	}
	if e.remGPU > 0 && !cfg.Map.UseGPU {
		return nil, errors.New("sim: partition sends work to the GPU but the mapping does not use it")
	}
	return e, nil
}

// setFreq is the single write path for cluster frequencies: it refreshes
// the cached rail voltage and invalidates the cached work-item rates.
func (e *Engine) setFreq(i, mhz int) {
	e.freqs[i] = mhz
	e.volts[i] = e.plat.Clusters[i].VoltageAt(mhz)
	e.ratesDirty = true
}

// rates returns the roofline work-item rates for the current frequencies,
// recomputing them only after a DVFS transition.
func (e *Engine) rates() (rateCPU, rateGPU float64) {
	if e.ratesDirty {
		m := e.cfg.Map
		e.rateCPU = e.cfg.App.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx])
		e.rateGPU = e.cfg.App.GPURate(e.plat.Clusters[e.gpuIdx].NumCores, e.freqs[e.gpuIdx])
		e.ratesDirty = false
	}
	return e.rateCPU, e.rateGPU
}

// --- Machine interface ------------------------------------------------------

// TimeS implements Machine.
func (e *Engine) TimeS() float64 { return float64(e.timeTicks) * e.cfg.TickS }

// Platform implements Machine.
func (e *Engine) Platform() *soc.Platform { return e.plat }

// SensorC implements Machine.
func (e *Engine) SensorC(node string) float64 {
	s, ok := e.sensors[node]
	if !ok {
		return 0
	}
	return s.Read(e.therm)
}

// ClusterFreqMHz implements Machine.
func (e *Engine) ClusterFreqMHz(cluster string) int {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return 0
	}
	return e.freqs[i]
}

// SetClusterFreqMHz implements Machine.
func (e *Engine) SetClusterFreqMHz(cluster string, mhz int) error {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return fmt.Errorf("sim: unknown cluster %q", cluster)
	}
	c := &e.plat.Clusters[i]
	f := c.NearestOPP(mhz).FreqMHz
	if e.throttled && i == e.bigIdx && f > e.plat.TripCapMHz {
		// Hardware protection wins; remember the request for
		// release.
		e.preThrottleMHz = f
		f = c.FloorOPP(e.plat.TripCapMHz).FreqMHz
	}
	if f != e.freqs[i] {
		e.setFreq(i, f)
		e.transitions++
	}
	return nil
}

// ClusterUtil implements Machine.
func (e *Engine) ClusterUtil(cluster string) float64 {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return 0
	}
	return e.utils[i]
}

// Throttled implements Machine.
func (e *Engine) Throttled() bool { return e.throttled }

// --- run loop ---------------------------------------------------------------

// Run executes the configured workload to completion (or MaxTimeS).
func (e *Engine) Run() (*Result, error) {
	dt := e.cfg.TickS
	// Prime utilisation with the pending load so a utilisation-driven
	// governor's first decision sees the work that is about to run
	// (avoids a one-period dip to minimum frequency at t=0).
	if e.remCPU > 0 {
		e.utils[e.bigIdx] = 1
		e.utils[e.litIdx] = 1
	}
	if e.remGPU > 0 {
		e.utils[e.gpuIdx] = 1
	}
	e.govEvery = 0
	if e.cfg.Governor != nil {
		p := e.cfg.Governor.PeriodS()
		if p <= 0 {
			return nil, fmt.Errorf("sim: governor %s has non-positive period", e.cfg.Governor.Name())
		}
		e.govEvery = int(p/dt + 0.5)
		if e.govEvery < 1 {
			e.govEvery = 1
		}
		if err := e.cfg.Governor.Start(e); err != nil {
			return nil, err
		}
	}
	e.recEvery = int(e.cfg.RecordPeriodS/dt + 0.5)
	if e.recEvery < 1 {
		e.recEvery = 1
	}
	maxTicks := int(e.cfg.MaxTimeS / dt)

	var execTime float64
	completed := false
	for ; e.timeTicks < maxTicks; e.timeTicks++ {
		finishedAt, err := e.tick(dt)
		if err != nil {
			return nil, err
		}
		if finishedAt >= 0 {
			execTime = float64(e.timeTicks)*dt + finishedAt
			completed = true
			e.timeTicks++
			break
		}
	}
	if !completed {
		execTime = float64(e.timeTicks) * dt
	}
	// Final trace sample so metrics cover the full run.
	if err := e.evalPower(0, 0, 0, 0); err == nil {
		_ = e.record(e.bd.TotalW())
	}

	bigNode := e.nodeOf[e.bigIdx]
	res := &Result{
		Completed:       completed,
		ExecTimeS:       execTime,
		EnergyJ:         e.meter.EnergyJ(),
		AvgPowerW:       e.meter.AvgPowerW(),
		AvgTempC:        e.tr.AvgTemp(bigNode),
		PeakTempC:       e.tr.PeakTemp(bigNode),
		TempVarC2:       e.tr.TempVariance(bigNode),
		TempGradCps:     e.tr.TempGradient(bigNode),
		AvgBigFreqMHz:   e.tr.AvgFreqMHz(e.bigIdx),
		FreqTransitions: e.transitions,
		ThrottleEvents:  e.throttleEvents,
		Trace:           e.tr,
	}
	return res, nil
}

// tick advances one simulation step of dt seconds: hardware protection,
// governor control, workload, power, thermal, metering and trace
// recording. It allocates nothing at steady state. A non-negative
// finishedAt is the in-tick offset at which the workload completed.
func (e *Engine) tick(dt float64) (finishedAt float64, err error) {
	// Hardware thermal protection (checked every tick, like the TMU
	// interrupt).
	if !e.cfg.DisableHWProtect {
		e.hwProtect()
	}
	// Governor control step.
	if e.govEvery > 0 && e.timeTicks%e.govEvery == 0 {
		if err := e.cfg.Governor.Act(e); err != nil {
			return -1, err
		}
	}
	// Advance workload.
	cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt := e.advanceWork(dt)
	e.utils[e.bigIdx] = cpuBusy
	e.utils[e.litIdx] = cpuBusy
	e.utils[e.gpuIdx] = gpuBusy

	// Power and thermal.
	if err := e.evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU); err != nil {
		return -1, err
	}
	if err := e.stepThermal(dt); err != nil {
		return -1, err
	}
	if t := e.therm.Temp(e.nodeOf[e.bigIdx]); t > e.peakBigC {
		e.peakBigC = t
		if e.peakTemps == nil {
			e.peakTemps = make([]float64, len(e.cfg.Net.Nodes))
		}
		e.therm.CopyTemps(e.peakTemps)
	}
	total := e.bd.TotalW()
	if err := e.meter.Observe(e.TimeS(), total); err != nil {
		return -1, err
	}
	if e.timeTicks%e.recEvery == 0 {
		if err := e.record(total); err != nil {
			return -1, err
		}
	}
	return finishedAt, nil
}

// hwProtect applies the firmware trip/release behaviour on the big cluster.
func (e *Engine) hwProtect() {
	bigNode := e.nodeOf[e.bigIdx]
	t := e.therm.Temp(bigNode)
	big := &e.plat.Clusters[e.bigIdx]
	switch {
	case !e.throttled && t >= e.plat.TripC:
		e.throttled = true
		e.throttleEvents++
		e.preThrottleMHz = e.freqs[e.bigIdx]
		capMHz := big.FloorOPP(e.plat.TripCapMHz).FreqMHz
		if e.freqs[e.bigIdx] > capMHz {
			e.setFreq(e.bigIdx, capMHz)
			e.transitions++
		}
	case e.throttled && t < e.plat.TripReleaseC:
		e.throttled = false
		if e.preThrottleMHz > e.freqs[e.bigIdx] {
			e.setFreq(e.bigIdx, e.preThrottleMHz)
			e.transitions++
		}
	}
}

// advanceWork moves the CPU and GPU chunks forward by up to dt and returns
// the busy fractions of the tick, the work-item rates in effect (for the
// memory-traffic model, avoiding a second roofline evaluation) plus, when
// everything finished inside the tick, the offset (< dt) at which the last
// chunk completed (-1 otherwise).
func (e *Engine) advanceWork(dt float64) (cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt float64) {
	finishedAt = -1
	cpuBusy = 0
	cpuDone := e.remCPU <= 0
	if !cpuDone {
		rateCPU, _ = e.rates()
		if rateCPU > 0 {
			need := e.remCPU / rateCPU
			if need >= dt {
				e.remCPU -= rateCPU * dt
				cpuBusy = 1
			} else {
				e.remCPU = 0
				cpuBusy = need / dt
			}
		}
	}
	gpuBusy = 0
	gpuDone := e.remGPU <= 0
	if !gpuDone {
		_, rateGPU = e.rates()
		if rateGPU > 0 {
			need := e.remGPU / rateGPU
			if need >= dt {
				e.remGPU -= rateGPU * dt
				gpuBusy = 1
			} else {
				e.remGPU = 0
				gpuBusy = need / dt
			}
		}
	}
	if e.remCPU <= 0 && e.remGPU <= 0 {
		// Finished within this tick: the later chunk defines the
		// offset.
		off := cpuBusy * dt
		if g := gpuBusy * dt; g > off {
			off = g
		}
		// If both were already done before this tick, off is 0.
		finishedAt = off
	}
	return cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt
}

// evalPower builds per-cluster loads for the current tick and evaluates
// the board power into the engine-owned breakdown. rateCPU/rateGPU are the
// work-item rates advanceWork ran at (consulted only when the matching
// busy fraction is non-zero).
func (e *Engine) evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU float64) error {
	for i := range e.loads {
		l := &e.loads[i]
		l.FreqMHz = e.freqs[i]
		l.VoltV = e.volts[i]
		l.TempC = e.therm.Temp(e.nodeOf[i])
		var busy float64
		switch i {
		case e.bigIdx, e.litIdx:
			busy = cpuBusy
		case e.gpuIdx:
			busy = gpuBusy
		}
		if l.ActiveCores == 0 {
			busy = 0
		}
		l.Utilization = busy
	}
	// Memory traffic follows the aggregate processing rate.
	memRate := 0.0
	if cpuBusy > 0 {
		memRate += rateCPU * cpuBusy
	}
	if gpuBusy > 0 {
		memRate += rateGPU * gpuBusy
	}
	return e.pow.EvaluateInto(&e.bd, e.loads, e.cfg.App.MemGBs(memRate))
}

// stepThermal injects the power breakdown into the RC network. The exact
// propagator covers the fixed tick; Euler handles explicitly requested
// reference runs and any off-tick step.
func (e *Engine) stepThermal(dt float64) error {
	for i := range e.inj {
		e.inj[i] = 0
	}
	for i := range e.plat.Clusters {
		e.inj[e.nodeOf[i]] += e.bd.ClusterW(i)
	}
	e.inj[e.pkgNode] += e.bd.DRAMW + e.cfg.PkgBaselineFrac*e.bd.BaselineW
	if e.stepper != nil && dt == e.stepper.Dt() {
		return e.stepper.Step(e.inj)
	}
	return e.therm.Step(e.inj, dt)
}

// record appends a trace sample; Append copies, so the engine's scratch
// buffers can be handed over directly.
func (e *Engine) record(totalW float64) error {
	e.therm.CopyTemps(e.recTemps)
	return e.tr.Append(trace.Sample{
		TimeS:    e.TimeS(),
		TempsC:   e.recTemps,
		FreqsMHz: e.freqs,
		PowerW:   totalW,
		Utils:    e.utils,
	})
}

// SteadyTemps computes the equilibrium temperatures of a hypothetical
// constant operating point — used by warm-start helpers and calibration.
func (e *Engine) SteadyTemps(cpuBusy, gpuBusy float64) ([]float64, error) {
	app := e.cfg.App
	m := e.cfg.Map
	rateCPU := app.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx])
	rateGPU := app.GPURate(e.plat.Clusters[e.gpuIdx].NumCores, e.freqs[e.gpuIdx])
	if err := e.evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU); err != nil {
		return nil, err
	}
	inj := make([]float64, len(e.cfg.Net.Nodes))
	for i := range e.plat.Clusters {
		inj[e.nodeOf[i]] += e.bd.ClusterW(i)
	}
	inj[e.pkgNode] += e.bd.DRAMW + e.cfg.PkgBaselineFrac*e.bd.BaselineW
	return e.therm.SteadyState(inj)
}

// WarmStartTemps returns a realistic pre-heated state: the steady
// temperatures of running the configured job at a mid-level big frequency
// (1400 MHz), as after back-to-back benchmark runs — the experimental
// protocol of the paper.
func WarmStartTemps(cfg Config) ([]float64, error) {
	cfg.Governor = nil
	cfg.InitialTempsC = nil
	cfg.Freq = mapping.FreqSetting{BigMHz: 1400, LittleMHz: 1400, GPUMHz: 600}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.SteadyTemps(1, 1)
}

// FinalTemps returns the node temperatures at the end of a run.
func (e *Engine) FinalTemps() []float64 { return e.therm.Temps() }

// SetAmbientC changes the ambient temperature mid-run — e.g. to model the
// device moving into direct sunlight while an online manager reacts.
func (e *Engine) SetAmbientC(t float64) { e.therm.SetAmbientC(t) }

// PeakTemps returns the node temperatures at the moment the big cluster
// was hottest during the run (nil before Run). This is the thermal
// operating regime a back-to-back benchmark campaign sits in.
func (e *Engine) PeakTemps() []float64 {
	if e.peakTemps == nil {
		return nil
	}
	return append([]float64(nil), e.peakTemps...)
}

// RunWarm reproduces the paper's measurement protocol: execute the job
// once as a discarded warm-up (starting from WarmStartTemps) so the
// package reaches its operating regime, then run again from the resulting
// temperatures and report that steady-regime run.
func RunWarm(cfg Config) (*Result, error) {
	warm, err := WarmStartTemps(cfg)
	if err != nil {
		return nil, err
	}
	cfg.InitialTempsC = warm
	e1, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := e1.Run(); err != nil {
		return nil, err
	}
	res1, err := e1.Run()
	if err != nil {
		return nil, err
	}
	// Start the measured run at the warm-up's time-averaged node
	// temperatures: the thermal regime a continuous benchmarking
	// campaign sits in (mid-sawtooth for throttling governors).
	regime := make([]float64, len(res1.Trace.NodeNames))
	for i := range regime {
		regime[i] = res1.Trace.AvgTemp(i)
	}
	cfg.InitialTempsC = regime
	e2, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e2.Run()
}
