// Package sim co-simulates workload execution, power and temperature on an
// MPSoC platform. Each tick (default 10 ms) it advances the application's
// CPU and GPU work-item chunks at rates given by the current DVFS state,
// evaluates the power model, steps the thermal RC network, samples the
// board power meter and — at its control period — invokes the DVFS
// governor. Hardware thermal protection (the Exynos TMU behaviour: trip at
// 95 °C, cap the big cluster at 900 MHz, release below the hysteresis
// point) runs independently of software policy, exactly like the firmware
// the paper's baselines rely on.
//
// The tick loop is allocation-free at steady state: thermal stepping uses
// a precomputed exact propagator (thermal.Stepper), power evaluation
// writes into an engine-owned breakdown (power.EvaluateInto), node and
// sensor lookups are index maps built once at New, and the trace and
// meter are pre-sized for the configured run length.
//
// On top of the fixed-tick loop sits an event-horizon superstep
// scheduler: when the operating point is provably steady — no due
// events, no governor epoch whose decision could change, no meter
// sampling instant, no thermal-trip or leakage-regime crossing inside
// the interval — the engine replays the whole interval in one affine
// propagator application (thermal.Superstep) instead of ticking through
// it, then falls back to fixed ticks whenever any of those guards
// cannot certify the jump. The jump is the tick loop's own arithmetic
// reassociated, so scheduling decisions and sampled energy are
// bit-identical and temperatures agree to floating-point rounding; the
// full integrator contract is docs/integrators.md. Disable with
// Config.DisableSuperstep to force tick-by-tick execution.
//
// Beyond single static runs the engine exposes the hooks the scenario
// subsystem (internal/scenario) is built on: callbacks scheduled at tick
// granularity (ScheduleAt), a priority-aware preemptive job queue on top
// of the remaining-work machinery (EnqueueApp, EnqueueAppPriority,
// CancelJob), and mid-run switches of governor, mapping, partition and
// ambient temperature (SetGovernor, SetMapping, SetPartition,
// SetAmbientC). A higher-priority arrival suspends the live job — its
// remaining CPU/GPU work-items are parked in the queue and resume intact
// once the preemptor drains — and a cancellation drops a queued or live
// job, charging only the work already done. Event dispatch costs a single
// integer compare on ticks with no due event, so the steady-state tick
// between events stays allocation-free.
package sim

import (
	"errors"
	"fmt"

	"teem/internal/mapping"
	"teem/internal/obs"
	"teem/internal/power"
	"teem/internal/powermeter"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

// Machine is the restricted hardware view a governor gets: sensors,
// current frequencies, utilisation, and frequency control — the same
// surface Linux governors see through sysfs.
type Machine interface {
	// TimeS is the current simulation time in seconds.
	TimeS() float64
	// Platform describes the hardware.
	Platform() *soc.Platform
	// SensorC reads the thermal sensor on the named node (°C). Unknown
	// nodes read as 0.
	SensorC(node string) float64
	// ClusterFreqMHz returns the current frequency of the named
	// cluster (0 for unknown or gated clusters).
	ClusterFreqMHz(cluster string) int
	// SetClusterFreqMHz requests a frequency; it is snapped to the
	// nearest supported OPP and clamped by active hardware throttling.
	SetClusterFreqMHz(cluster string, mhz int) error
	// ClusterUtil returns the cluster's busy fraction over the last
	// tick.
	ClusterUtil(cluster string) float64
	// Throttled reports whether hardware thermal protection is
	// currently capping the big cluster.
	Throttled() bool
}

// Governor is a DVFS policy invoked every PeriodS of simulated time.
type Governor interface {
	// Name identifies the policy ("ondemand", "teem", ...).
	Name() string
	// PeriodS is the control period in seconds.
	PeriodS() float64
	// Start initialises the policy at t=0 (set initial frequencies
	// here).
	Start(m Machine) error
	// Act runs one control step.
	Act(m Machine) error
}

// Integrator selects the thermal stepping scheme of a run.
type Integrator int

const (
	// IntegratorExact advances the RC network with the precomputed
	// exact discrete-time propagator (the default: unconditionally
	// stable, zero-allocation, exact for piecewise-constant power).
	IntegratorExact Integrator = iota
	// IntegratorEuler uses the substepped explicit-Euler reference
	// integrator — useful for cross-checking and regression hunting.
	IntegratorEuler
)

// Config assembles a simulation.
type Config struct {
	// Platform is the hardware description (required).
	Platform *soc.Platform
	// Net is the thermal topology; nodes must be named after the
	// clusters they carry, plus a "pkg" node (required).
	Net *thermal.Network
	// App is the workload started at t=0. It may be nil only when
	// MinTimeS is positive: the engine then starts idle and runs work
	// enqueued by scheduled events (EnqueueApp) — the scenario regime.
	App *workload.App
	// Map selects the CPU cores used; Part splits work-items between
	// CPU and GPU.
	Map  mapping.Mapping
	Part mapping.Partition
	// Freq is the initial DVFS setting; zero fields default to each
	// cluster's maximum.
	Freq mapping.FreqSetting
	// Governor is the DVFS policy; nil runs at the initial frequencies.
	Governor Governor
	// HWProtect enables the firmware thermal trip behaviour (default
	// semantics: enabled unless DisableHWProtect).
	DisableHWProtect bool
	// HotplugUnused powers down unused cores (EEMP-style DPM) instead
	// of leaving them idle and leaking.
	HotplugUnused bool
	// TickS is the simulation step (default 0.01 s).
	TickS float64
	// RecordPeriodS is the trace sampling period (default 0.1 s).
	RecordPeriodS float64
	// MaxTimeS aborts runaway runs (default 900 s).
	MaxTimeS float64
	// MinTimeS keeps the simulation running (idle if need be) until this
	// much simulated time has elapsed, even when all work has finished —
	// the horizon of a scenario run. Zero preserves the classic
	// behaviour: the run ends the moment the workload completes.
	MinTimeS float64
	// PkgBaselineFrac is the fraction of board baseline power that
	// heats the package node (regulators near the SoC); default 0.5.
	PkgBaselineFrac float64
	// InitialTempsC presets node temperatures (default: ambient).
	InitialTempsC []float64
	// SensorQuantizeC quantises sensor reads (default 0 = exact).
	SensorQuantizeC float64
	// Integrator selects the thermal stepping scheme (default:
	// IntegratorExact).
	Integrator Integrator
	// DisableSuperstep turns off the event-horizon fast path that jumps
	// provably steady intervals (idle gaps, constant busy stretches) in a
	// single exact propagator application. Supersteps are on by default
	// with the exact integrator and reproduce the fixed-tick trajectory
	// to floating-point rounding; disable them to force the classic
	// tick-by-tick loop (reference runs, debugging). Euler runs never
	// superstep. See docs/integrators.md for the legality contract.
	DisableSuperstep bool
	// Done, when non-nil, makes the run cancellable: the engine polls
	// the channel once per tick — a non-blocking receive, so the
	// steady-state tick stays allocation-free — and aborts with an
	// error wrapping ErrAborted within one tick of it closing. Wire a
	// context's Done() channel here to cancel a simulation.
	Done <-chan struct{}
	// Clock, when non-nil, opts the flight recorder into per-phase wall
	// timing: the engine reads it between the tick's phases (governor,
	// queue, power, thermal) and accumulates the deltas into
	// Result.Stats. Pass obs.Nanotime (teemscenario -stats does). The
	// default nil performs zero clock reads, keeping runs deterministic
	// and the instrumented tick free of timing overhead; the counters in
	// Result.Stats are always maintained either way.
	Clock func() int64
	// OnSample, when non-nil, is invoked synchronously for every trace
	// sample the engine records, right after it is appended — the
	// trace-subscriber hook streaming consumers build on: telemetry is
	// delivered as the run ticks instead of copied out of a finished
	// trace. The sample's slices are the trace's arena-backed storage —
	// valid for the trace's lifetime and never rewritten, but shared:
	// subscribers must not modify them. The hook runs on the simulation
	// goroutine, so a slow subscriber slows the run.
	OnSample func(s trace.Sample)
}

// JobFinish records the completion of one enqueued application.
type JobFinish struct {
	// ID is the engine-assigned job handle (EnqueueAppPriority).
	ID int
	// App is the application name; AtS the simulated completion time.
	App string
	AtS float64
}

// JobCancel records a job dropped by CancelJob before it finished.
type JobCancel struct {
	// ID is the cancelled job's handle; App its application name.
	ID  int
	App string
	// AtS is the simulated cancellation time.
	AtS float64
	// DoneFrac is the fraction of the job's work-items that had executed
	// when it was dropped (0 for a never-started queued job) — the work
	// the run was actually charged for.
	DoneFrac float64
}

// Result summarises a run.
type Result struct {
	// Completed reports that every submitted job finished and every
	// scheduled event fired (false when MaxTimeS elapsed first).
	Completed bool
	// ExecTimeS is the time workload execution last stopped: the final
	// work-item completion (Eq. 3's ET for a single-app run) or a later
	// live-job cancellation. Drained runs with no workload activity
	// report the simulated horizon; aborted runs the elapsed time.
	ExecTimeS float64
	// EnergyJ is the meter-accumulated board energy; AvgPowerW the
	// meter average.
	EnergyJ   float64
	AvgPowerW float64
	// AvgTempC/PeakTempC are for the hottest monitored cluster node
	// (big CPU), matching the paper's reporting. AvgTempC is a
	// trace-derived time-weighted mean; PeakTempC is the exact per-tick
	// maximum, independent of the trace sampling period.
	AvgTempC  float64
	PeakTempC float64
	// PeakTempsC is the exact per-tick whole-run maximum of every
	// thermal node, indexed like the network's nodes.
	PeakTempsC []float64
	// TempVarC2 is the temporal variance of the big-cluster
	// temperature; TempGradCps the mean |dT/dt|.
	TempVarC2   float64
	TempGradCps float64
	// AvgBigFreqMHz is the effective big-cluster frequency.
	AvgBigFreqMHz float64
	// FreqTransitions counts DVFS changes (governor overhead metric).
	FreqTransitions int
	// ThrottleEvents counts hardware trips.
	ThrottleEvents int
	// JobFinishes lists every completed job in completion order
	// (multi-app scenario runs; a classic single-app run has one entry).
	JobFinishes []JobFinish
	// JobCancels lists every job dropped mid-run by CancelJob, in
	// cancellation order. A run with cancellations still reports
	// Completed=true once the surviving work drains: the departed jobs
	// left the system, they did not fail it.
	JobCancels []JobCancel
	// Trace is the recorded time series.
	Trace *trace.Trace
	// Stats is the engine flight recorder: ticks vs supersteps, guard
	// rejection reasons, cache hit rates, governor/TMU activity, and —
	// when Config.Clock was supplied — per-phase wall time.
	Stats obs.RunStats
}

// Engine executes one configured run.
type Engine struct {
	cfg     Config
	plat    *soc.Platform
	therm   *thermal.Model
	stepper *thermal.Stepper
	pow     *power.Model
	meter   *powermeter.Meter
	tr      *trace.Trace

	// cluster bookkeeping, indexed like plat.Clusters
	freqs   []int
	nodeOf  []int // thermal node per cluster
	utils   []float64
	pkgNode int
	bigIdx  int // cluster index of the big CPU
	gpuIdx  int
	litIdx  int

	// lookup caches built at New so governor reads and the tick loop
	// never scan strings or construct sensors.
	sensors    map[string]thermal.Sensor
	clusterIdx map[string]int

	// per-tick scratch state, reused so the steady-state tick performs
	// zero heap allocations. loads carries the configuration-static
	// fields (core counts, activity) from New; ticks only refresh
	// frequency, voltage, temperature and utilisation.
	loads    []power.ClusterLoad
	bd       power.Breakdown
	inj      []float64
	recTemps []float64
	govEvery int
	recEvery int

	// volts caches the rail voltage of each cluster's current
	// frequency; rateCPU/rateGPU cache the roofline work-item rates.
	// All three change only on a DVFS transition (ratesDirty).
	volts      []float64
	rateCPU    float64
	rateGPU    float64
	ratesDirty bool

	// live workload state: app is the job currently executing (nil when
	// idle), curMap/curPart the in-effect mapping and partition — all
	// three switchable mid-run by scenario events. curJobID/curPrio/
	// curSeq identify the live job for cancellation and preemption.
	app      *workload.App
	curMap   mapping.Mapping
	curPart  mapping.Partition
	curJobID int
	curPrio  int
	curSeq   int

	// queue holds submitted-but-not-live jobs (fresh arrivals and
	// suspended preemptees) ordered by (priority desc, seq asc); qHead
	// indexes the next job so pops are O(1), with popped slots cleared so
	// finished *workload.App values are not pinned for the rest of the
	// run. nextJobID/nextSeq mint job handles and tiebreak ordering.
	queue     []pendingJob
	qHead     int
	nextJobID int
	nextSeq   int

	// scheduled events, sorted by tick (same-tick events keep
	// registration order); evIdx points at the next undelivered one, so
	// the per-tick dispatch check is one compare.
	events []schedEvent
	evIdx  int

	// event-horizon superstepping (superstep.go): ss is the affine jump
	// map of the current leakage-slope vector, drawn from ssPool — a
	// small recency pool keyed by slope, so alternating operating points
	// (busy ↔ idle) reuse their maps instead of rebuilding them.
	// ssOpLoads/ssOpMemGBs fingerprint the operating point whose affine
	// decomposition sits in ssInj/ssSlopeCur (valid when ssOpValid):
	// a jump attempt at the same point skips the power model entirely.
	// ssLoads is per-attempt scratch; ssOff latches the fast path off
	// (config knob, Euler runs, or an uncertifiable system). govPure
	// marks a UtilOnlyGovernor; govStable that its last epoch changed
	// nothing, with govUtils the utilisations that epoch saw — together
	// the fixed-point certificate that lets a jump cross control periods.
	ss         *thermal.Superstep
	ssPool     []*thermal.Superstep
	ssSlopeCur []float64
	ssInj      []float64
	ssLoads    []power.ClusterLoad
	ssOpLoads  []power.ClusterLoad
	ssOpMemGBs float64
	ssOpValid  bool
	// ssSkipUntil suppresses jump attempts below this tick: a probe that
	// reported a mixed trajectory direction stays mixed while the system
	// hovers near equilibrium, so re-probing every tick until the next
	// horizon boundary would pay the full guard cost for nothing.
	ssSkipUntil int
	ssOff       bool
	govPure     bool
	govStable   bool
	govUtils    []float64

	// stats is the flight recorder: plain int64 counters bumped on the
	// hot paths (never through an interface or atomic, so increments are
	// single instructions and allocate nothing). clock is the pre-acquired
	// wall-clock func from Config.Clock — nil means no timing reads.
	stats obs.RunStats
	clock func() int64

	running        bool
	jobFinishes    []JobFinish
	jobCancels     []JobCancel
	lastFinishS    float64
	lastCancelS    float64 // latest live-job cancellation (work ran until then)
	remCPU, remGPU float64 // remaining work-items
	timeTicks      int
	transitions    int
	throttleEvents int
	throttled      bool
	preThrottleMHz int
	peakBigC       float64
	peakTemps      []float64
	// peakC is the per-node running maximum over every simulated tick —
	// the exact whole-run peaks Result and the scenario assertions
	// report. Superstep jumps maintain it from their endpoints, which the
	// monotone trajectory direction makes exact (a rising jump's interior
	// is bounded by its landing state, a falling one by its start).
	peakC []float64
}

// pendingJob is one queued job: a fresh arrival awaiting its first start,
// or a preempted job suspended with its remaining work. prio orders the
// queue (higher runs first); seq tiebreaks within a priority class, so
// equal-priority jobs run FIFO and a preempted job (which keeps its
// original, smaller seq) resumes ahead of later arrivals of its class.
type pendingJob struct {
	id   int
	app  *workload.App
	part mapping.Partition
	prio int
	seq  int
	// suspended marks a preempted job: remCPU/remGPU carry its remaining
	// work-items, which resume intact instead of re-splitting part.
	suspended      bool
	remCPU, remGPU float64
}

// schedEvent is one scheduled callback.
type schedEvent struct {
	tick int
	fn   func(*Engine) error
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Platform == nil || cfg.Net == nil {
		return nil, errors.New("sim: Platform, Net and App are required")
	}
	if cfg.App == nil && cfg.MinTimeS <= 0 {
		return nil, errors.New("sim: Platform, Net and App are required (App may be nil only with MinTimeS set)")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.App != nil {
		if err := cfg.App.Validate(); err != nil {
			return nil, err
		}
	}
	big, lit, gpu := cfg.Platform.Big(), cfg.Platform.Little(), cfg.Platform.GPU()
	if big == nil || lit == nil || gpu == nil {
		return nil, errors.New("sim: platform must have big, LITTLE and GPU clusters")
	}
	if err := CheckPlatformNet(cfg.Platform, cfg.Net); err != nil {
		return nil, err
	}
	if err := cfg.Map.Validate(big.NumCores, lit.NumCores); err != nil {
		return nil, err
	}
	if cfg.App == nil && cfg.Part == (mapping.Partition{}) {
		// An idle-start scenario run has no initial work to split.
		cfg.Part = mapping.Partition{Num: 0, Den: 1}
	}
	if err := cfg.Part.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickS == 0 {
		cfg.TickS = 0.01
	}
	if cfg.TickS <= 0 {
		return nil, errors.New("sim: TickS must be positive")
	}
	if cfg.RecordPeriodS == 0 {
		cfg.RecordPeriodS = 0.1
	}
	if cfg.MinTimeS < 0 {
		return nil, errors.New("sim: MinTimeS must be non-negative")
	}
	if cfg.MaxTimeS == 0 {
		cfg.MaxTimeS = 900
	}
	if cfg.MaxTimeS < cfg.MinTimeS {
		cfg.MaxTimeS = cfg.MinTimeS
	}
	if cfg.PkgBaselineFrac == 0 {
		cfg.PkgBaselineFrac = 0.5
	}
	if cfg.PkgBaselineFrac < 0 || cfg.PkgBaselineFrac > 1 {
		return nil, errors.New("sim: PkgBaselineFrac outside [0,1]")
	}

	therm, err := thermal.NewModel(cfg.Net, cfg.Platform.AmbientC)
	if err != nil {
		return nil, err
	}
	var stepper *thermal.Stepper
	if cfg.Integrator == IntegratorExact {
		if stepper, err = therm.NewStepper(cfg.TickS); err != nil {
			return nil, err
		}
	}
	pow, err := power.NewModel(cfg.Platform)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		plat:    cfg.Platform,
		therm:   therm,
		stepper: stepper,
		pow:     pow,
		meter:   powermeter.New(),
	}
	e.clock = cfg.Clock
	if stepper != nil {
		if stepper.CacheHit() {
			e.stats.PropCacheHits++
		} else {
			e.stats.PropCacheMisses++
		}
	}
	e.meter.Reserve(int(cfg.MaxTimeS) + 2)
	e.nodeOf = make([]int, len(cfg.Platform.Clusters))
	e.clusterIdx = make(map[string]int, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		name := cfg.Platform.Clusters[i].Name
		n := cfg.Net.NodeIndex(name)
		if n < 0 {
			// Unreachable after CheckPlatformNet above; kept defensive.
			return nil, fmt.Errorf("%w: thermal network lacks a node for cluster %s", ErrPlatformNetMismatch, name)
		}
		e.nodeOf[i] = n
		e.clusterIdx[name] = i
		switch cfg.Platform.Clusters[i].Kind {
		case soc.BigCPU:
			e.bigIdx = i
		case soc.LittleCPU:
			e.litIdx = i
		case soc.GPU:
			e.gpuIdx = i
		}
	}
	e.pkgNode = cfg.Net.NodeIndex("pkg")
	if e.pkgNode < 0 {
		// Unreachable after CheckPlatformNet above; kept defensive.
		return nil, fmt.Errorf(`%w: thermal network lacks a "pkg" node`, ErrPlatformNetMismatch)
	}
	e.sensors = make(map[string]thermal.Sensor, len(cfg.Net.Nodes))
	for i := range cfg.Net.Nodes {
		e.sensors[cfg.Net.Nodes[i].Name] = thermal.Sensor{Node: i, QuantizeC: cfg.SensorQuantizeC}
	}

	if cfg.InitialTempsC != nil {
		if err := therm.SetTemps(cfg.InitialTempsC); err != nil {
			return nil, err
		}
	}

	e.app = cfg.App
	e.curMap = cfg.Map
	e.curPart = cfg.Part
	e.freqs = make([]int, len(cfg.Platform.Clusters))
	e.volts = make([]float64, len(cfg.Platform.Clusters))
	e.utils = make([]float64, len(cfg.Platform.Clusters))
	e.loads = make([]power.ClusterLoad, len(cfg.Platform.Clusters))
	e.bd = power.Breakdown{
		DynamicW: make([]float64, len(cfg.Platform.Clusters)),
		LeakageW: make([]float64, len(cfg.Platform.Clusters)),
	}
	e.inj = make([]float64, len(cfg.Net.Nodes))
	e.recTemps = make([]float64, len(cfg.Net.Nodes))
	e.peakC = make([]float64, len(cfg.Net.Nodes))
	e.ssSlopeCur = make([]float64, len(cfg.Net.Nodes))
	e.ssInj = make([]float64, len(cfg.Net.Nodes))
	e.ssLoads = make([]power.ClusterLoad, len(cfg.Platform.Clusters))
	e.ssOpLoads = make([]power.ClusterLoad, len(cfg.Platform.Clusters))
	e.govUtils = make([]float64, len(cfg.Platform.Clusters))
	e.ssOff = cfg.DisableSuperstep
	e.ratesDirty = true
	setDefault := func(idx, req int) {
		c := &e.plat.Clusters[idx]
		if req == 0 {
			e.setFreq(idx, c.MaxFreqMHz())
		} else {
			e.setFreq(idx, c.NearestOPP(req).FreqMHz)
		}
	}
	setDefault(e.bigIdx, cfg.Freq.BigMHz)
	setDefault(e.litIdx, cfg.Freq.LittleMHz)
	setDefault(e.gpuIdx, cfg.Freq.GPUMHz)

	e.rebuildLoads()

	nodeNames := make([]string, len(cfg.Net.Nodes))
	for i, n := range cfg.Net.Nodes {
		nodeNames[i] = n.Name
	}
	clusterNames := make([]string, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		clusterNames[i] = cfg.Platform.Clusters[i].Name
	}
	e.tr = trace.NewWithCap(nodeNames, clusterNames, int(cfg.MaxTimeS/cfg.RecordPeriodS)+2)

	e.nextJobID = 1
	if cfg.App != nil {
		total := float64(cfg.App.WorkItems)
		cpuItems := float64(cfg.Part.CPUItems(cfg.App.WorkItems))
		e.remCPU = cpuItems
		e.remGPU = total - cpuItems
		if e.remCPU > 0 && cfg.Map.CPUCores() == 0 {
			return nil, errors.New("sim: partition sends work to the CPU but the mapping uses no CPU cores")
		}
		if e.remGPU > 0 && !cfg.Map.UseGPU {
			return nil, errors.New("sim: partition sends work to the GPU but the mapping does not use it")
		}
		// The configured app is job 1 at the default priority.
		e.curJobID = e.nextJobID
		e.nextJobID++
		e.curSeq = e.nextSeq
		e.nextSeq++
	}
	return e, nil
}

// rebuildLoads recomputes the configuration-static load fields (core
// counts, switching activity) from the live mapping and app. The tick
// loop only refreshes frequency, voltage, temperature and utilisation;
// this runs at New and again on mid-run mapping or app switches.
func (e *Engine) rebuildLoads() {
	actCPU, actGPU := 1.0, 1.0
	if e.app != nil {
		actCPU, actGPU = e.app.ActivityCPU, e.app.ActivityGPU
	}
	for i := range e.plat.Clusters {
		c := &e.plat.Clusters[i]
		l := power.ClusterLoad{Activity: 1}
		switch i {
		case e.bigIdx:
			l.ActiveCores = e.curMap.Big
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused {
				l.OnCores = e.curMap.Big
			}
			l.Activity = actCPU
		case e.litIdx:
			l.ActiveCores = e.curMap.Little
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused {
				l.OnCores = e.curMap.Little
			}
			l.Activity = actCPU
		case e.gpuIdx:
			l.ActiveCores = c.NumCores
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused && !e.curMap.UseGPU {
				l.ActiveCores = 0
				l.OnCores = 0
			}
			if !e.curMap.UseGPU {
				l.ActiveCores = 0
			}
			l.Activity = actGPU
		}
		// Preserve the per-tick fields the load already carries.
		l.FreqMHz = e.loads[i].FreqMHz
		l.VoltV = e.loads[i].VoltV
		l.TempC = e.loads[i].TempC
		l.Utilization = e.loads[i].Utilization
		e.loads[i] = l
	}
}

// setFreq is the single write path for cluster frequencies: it refreshes
// the cached rail voltage, invalidates the cached work-item rates and
// voids the governor's superstep fixed-point certificate.
func (e *Engine) setFreq(i, mhz int) {
	e.freqs[i] = mhz
	e.volts[i] = e.plat.Clusters[i].VoltageAt(mhz)
	e.ratesDirty = true
	e.govStable = false
}

// rates returns the roofline work-item rates of the live app at the
// current frequencies, recomputing them only after a DVFS transition or a
// job/mapping switch.
func (e *Engine) rates() (rateCPU, rateGPU float64) {
	if e.ratesDirty {
		if e.app != nil {
			m := e.curMap
			e.rateCPU = e.app.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx])
			e.rateGPU = e.app.GPURate(e.plat.Clusters[e.gpuIdx].NumCores, e.freqs[e.gpuIdx])
		} else {
			e.rateCPU, e.rateGPU = 0, 0
		}
		e.ratesDirty = false
	}
	return e.rateCPU, e.rateGPU
}

// --- Machine interface ------------------------------------------------------

// TimeS implements Machine.
func (e *Engine) TimeS() float64 { return float64(e.timeTicks) * e.cfg.TickS }

// Platform implements Machine.
func (e *Engine) Platform() *soc.Platform { return e.plat }

// SensorC implements Machine.
func (e *Engine) SensorC(node string) float64 {
	s, ok := e.sensors[node]
	if !ok {
		return 0
	}
	return s.Read(e.therm)
}

// ClusterFreqMHz implements Machine.
func (e *Engine) ClusterFreqMHz(cluster string) int {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return 0
	}
	return e.freqs[i]
}

// SetClusterFreqMHz implements Machine.
func (e *Engine) SetClusterFreqMHz(cluster string, mhz int) error {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return fmt.Errorf("sim: unknown cluster %q", cluster)
	}
	c := &e.plat.Clusters[i]
	f := c.NearestOPP(mhz).FreqMHz
	if e.throttled && i == e.bigIdx {
		// While throttled the governor's latest request becomes the
		// release target, whether the hardware grants it now (at or
		// below the cap) or only after release (above it) — restoring
		// an older pre-trip frequency would override the governor's
		// newer decision.
		e.preThrottleMHz = f
		if f > e.plat.TripCapMHz {
			f = c.FloorOPP(e.plat.TripCapMHz).FreqMHz
		}
	}
	if f != e.freqs[i] {
		e.setFreq(i, f)
		e.transitions++
	}
	return nil
}

// ClusterUtil implements Machine.
func (e *Engine) ClusterUtil(cluster string) float64 {
	i, ok := e.clusterIdx[cluster]
	if !ok {
		return 0
	}
	return e.utils[i]
}

// Throttled implements Machine.
func (e *Engine) Throttled() bool { return e.throttled }

// --- scenario hooks -----------------------------------------------------------

// ScheduleAt registers fn to run at simulated time tS, snapped to the
// nearest tick. Events on the same tick fire in registration order, before
// hardware protection and the governor step of that tick. Calling this
// mid-run (from an event callback) is allowed for strictly future times.
func (e *Engine) ScheduleAt(tS float64, fn func(*Engine) error) error {
	if fn == nil {
		return errors.New("sim: ScheduleAt needs a callback")
	}
	tick := int(tS/e.cfg.TickS + 0.5)
	if tick < 0 {
		return fmt.Errorf("sim: ScheduleAt(%g) is before t=0", tS)
	}
	if e.running && tick <= e.timeTicks {
		return fmt.Errorf("sim: ScheduleAt(%g) is not in the future (t=%g)", tS, e.TimeS())
	}
	ev := schedEvent{tick: tick, fn: fn}
	// Insert into the undelivered tail, keeping tick order; the scan
	// stops at an equal tick, so same-tick events keep registration
	// order.
	pos := len(e.events)
	for pos > e.evIdx && (e.events[pos-1].tick > ev.tick) {
		pos--
	}
	e.events = append(e.events, schedEvent{})
	copy(e.events[pos+1:], e.events[pos:])
	e.events[pos] = ev
	return nil
}

// EnqueueApp submits an application at the default priority 0 — the
// classic FIFO arrival. See EnqueueAppPriority for the full contract.
func (e *Engine) EnqueueApp(app *workload.App, part mapping.Partition) error {
	_, err := e.EnqueueAppPriority(app, part, 0)
	return err
}

// EnqueueAppPriority submits an application with its work-item partition
// and a scheduling priority (higher runs first; equal priorities run FIFO
// in arrival order). The returned id is the job's handle for CancelJob
// and its tag in Result.JobFinishes/JobCancels.
//
// An idle engine starts the job immediately. An arrival with a strictly
// higher priority than the live job preempts it: the live job's remaining
// CPU/GPU work-items are suspended into the queue and resume — work
// intact — once every higher-priority job has drained. Any other arrival
// queues behind its priority class. Feasibility against the live mapping
// is checked when a job starts or resumes, since the mapping may change
// in between.
func (e *Engine) EnqueueAppPriority(app *workload.App, part mapping.Partition, priority int) (int, error) {
	if app == nil {
		return 0, errors.New("sim: EnqueueApp needs an app")
	}
	if err := app.Validate(); err != nil {
		return 0, err
	}
	if err := part.Validate(); err != nil {
		return 0, err
	}
	j := pendingJob{id: e.nextJobID, app: app, part: part, prio: priority, seq: e.nextSeq}
	e.nextJobID++
	e.nextSeq++
	if e.app == nil {
		if err := e.startJob(j); err != nil {
			return 0, err
		}
		return j.id, nil
	}
	if priority > e.curPrio {
		// Preemption: park the live job with its remaining work, then
		// start the arrival. Suspension cannot fail; the start can (an
		// infeasible partition), in which case the preemptee resumes on
		// the spot and the error surfaces to the caller.
		e.suspendLive()
		if err := e.startJob(j); err != nil {
			resumeErr := e.startJob(e.popNext())
			if resumeErr != nil {
				return 0, fmt.Errorf("sim: %w (and resuming the preempted job failed: %v)", err, resumeErr)
			}
			return 0, err
		}
		return j.id, nil
	}
	e.insertQueued(j)
	return j.id, nil
}

// QueuedJobs returns the number of submitted-but-not-live jobs (fresh
// arrivals plus suspended preemptees).
func (e *Engine) QueuedJobs() int { return len(e.queue) - e.qHead }

// insertQueued places j by (priority desc, seq asc) into the pending tail.
func (e *Engine) insertQueued(j pendingJob) {
	pos := len(e.queue)
	for pos > e.qHead {
		prev := &e.queue[pos-1]
		if prev.prio > j.prio || (prev.prio == j.prio && prev.seq < j.seq) {
			break
		}
		pos--
	}
	e.queue = append(e.queue, pendingJob{})
	copy(e.queue[pos+1:], e.queue[pos:])
	e.queue[pos] = j
}

// popNext removes and returns the highest-priority pending job. The
// vacated slot is cleared so the backing array does not pin the job's
// *workload.App for the rest of the run; a drained queue resets to offset
// zero so the backing array is reused instead of growing rightwards.
func (e *Engine) popNext() pendingJob {
	j := e.queue[e.qHead]
	e.queue[e.qHead] = pendingJob{}
	e.qHead++
	if e.qHead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qHead = 0
	}
	return j
}

// suspendLive parks the live job — remaining work, partition, identity —
// in the queue and leaves the engine idle. Its original seq keeps it
// ahead of later arrivals in its priority class when it resumes.
func (e *Engine) suspendLive() {
	e.insertQueued(pendingJob{
		id: e.curJobID, app: e.app, part: e.curPart,
		prio: e.curPrio, seq: e.curSeq,
		suspended: true, remCPU: e.remCPU, remGPU: e.remGPU,
	})
	e.app = nil
	e.remCPU, e.remGPU = 0, 0
	e.ratesDirty = true
}

// CancelJob drops a job mid-run — the departure half of an online
// workload. A queued job (fresh or suspended) is removed from the queue;
// the live job stops on the spot, its next-highest-priority successor
// starting immediately, so only the work already done is charged. The
// drop is recorded in Result.JobCancels. Cancelling a job that already
// finished (or was already cancelled) returns ErrJobNotActive; an id the
// engine never issued is an error.
func (e *Engine) CancelJob(id int) error {
	if id <= 0 || id >= e.nextJobID {
		return fmt.Errorf("sim: unknown job id %d", id)
	}
	if e.app != nil && id == e.curJobID {
		e.jobCancels = append(e.jobCancels, JobCancel{
			ID: id, App: e.app.Name, AtS: e.TimeS(), DoneFrac: e.liveDoneFrac(),
		})
		// The live job executed until this moment: its cancellation is
		// workload activity ExecTimeS must cover (a queued cancel is
		// not — the job never ran).
		if t := e.TimeS(); t > e.lastCancelS {
			e.lastCancelS = t
		}
		e.app = nil
		e.remCPU, e.remGPU = 0, 0
		e.ratesDirty = true
		e.rebuildLoads()
		if e.qHead < len(e.queue) {
			return e.startJob(e.popNext())
		}
		return nil
	}
	for k := e.qHead; k < len(e.queue); k++ {
		if e.queue[k].id != id {
			continue
		}
		j := e.queue[k]
		done := 0.0
		if j.suspended {
			done = doneFrac(j.app, j.remCPU, j.remGPU)
		}
		e.jobCancels = append(e.jobCancels, JobCancel{
			ID: id, App: j.app.Name, AtS: e.TimeS(), DoneFrac: done,
		})
		copy(e.queue[k:], e.queue[k+1:])
		e.queue[len(e.queue)-1] = pendingJob{}
		e.queue = e.queue[:len(e.queue)-1]
		if e.qHead == len(e.queue) {
			e.queue = e.queue[:0]
			e.qHead = 0
		}
		return nil
	}
	return ErrJobNotActive
}

// ErrJobNotActive reports a CancelJob target that already finished or was
// already cancelled — a no-op departure, not a configuration error.
var ErrJobNotActive = errors.New("sim: job is not active")

// ErrAborted reports a run cancelled through Config.Done. Run returns it
// (wrapped with the abort time) instead of a Result; callers distinguish
// a cancelled simulation from a failed one with errors.Is.
var ErrAborted = errors.New("sim: run aborted")

// ErrPlatformNetMismatch reports a platform paired with a thermal network
// that cannot carry it: a cluster without a same-named node, or a network
// without the "pkg" node the board-baseline heat is injected into. Before
// the sentinel existed the mismatch surfaced only as ad-hoc construction
// errors (and a sensor for a missing node would read 0 °C forever if it
// got that far), so callers could not distinguish a wrong pairing from
// other configuration mistakes. Detect it with errors.Is.
var ErrPlatformNetMismatch = errors.New("sim: platform/thermal network mismatch")

// CheckPlatformNet cross-validates that the thermal network can carry the
// platform: every cluster needs a same-named node (its sensor and heat
// injection site) and the network needs a "pkg" node (board baseline and
// DRAM heat). Violations wrap ErrPlatformNetMismatch. sim.New runs this
// check; the platform catalog runs it over every bundle it validates.
func CheckPlatformNet(p *soc.Platform, n *thermal.Network) error {
	if p == nil {
		return errors.New("sim: Config.Platform is required")
	}
	if n == nil {
		return errors.New("sim: Config.Net is required")
	}
	for i := range p.Clusters {
		name := p.Clusters[i].Name
		if n.NodeIndex(name) < 0 {
			return fmt.Errorf("%w: thermal network lacks a node for cluster %s", ErrPlatformNetMismatch, name)
		}
	}
	if n.NodeIndex("pkg") < 0 {
		return fmt.Errorf(`%w: thermal network lacks a "pkg" node`, ErrPlatformNetMismatch)
	}
	return nil
}

// liveDoneFrac is the executed fraction of the live job's work-items.
func (e *Engine) liveDoneFrac() float64 { return doneFrac(e.app, e.remCPU, e.remGPU) }

// doneFrac is the executed fraction of a job given its remaining work.
func doneFrac(app *workload.App, remCPU, remGPU float64) float64 {
	if app == nil || app.WorkItems <= 0 {
		return 0
	}
	return 1 - (remCPU+remGPU)/float64(app.WorkItems)
}

// startJob makes j the live workload: a fresh job's work-items are split
// by its partition, a suspended one resumes its remaining work intact.
func (e *Engine) startJob(j pendingJob) error {
	remCPU, remGPU := j.remCPU, j.remGPU
	if !j.suspended {
		total := float64(j.app.WorkItems)
		remCPU = float64(j.part.CPUItems(j.app.WorkItems))
		remGPU = total - remCPU
	}
	if remCPU > 0 && e.curMap.CPUCores() == 0 {
		return fmt.Errorf("sim: job %s sends work to the CPU but the mapping uses no CPU cores", j.app.Name)
	}
	if remGPU > 0 && !e.curMap.UseGPU {
		return fmt.Errorf("sim: job %s sends work to the GPU but the mapping does not use it", j.app.Name)
	}
	e.app = j.app
	e.curPart = j.part
	e.curJobID, e.curPrio, e.curSeq = j.id, j.prio, j.seq
	e.remCPU = remCPU
	e.remGPU = remGPU
	e.ratesDirty = true
	e.rebuildLoads()
	// Prime utilisation with the pending load (mapped clusters only), so
	// a utilisation-driven governor acting on the arrival tick sees the
	// work about to run instead of dipping to minimum frequency — the
	// same priming a classic Config.App run gets before Start.
	if e.remCPU > 0 {
		if e.curMap.Big > 0 {
			e.utils[e.bigIdx] = 1
		}
		if e.curMap.Little > 0 {
			e.utils[e.litIdx] = 1
		}
	}
	if e.remGPU > 0 {
		e.utils[e.gpuIdx] = 1
	}
	return nil
}

// SetGovernor switches the DVFS policy mid-run (nil disables software
// control). During a run the new policy's Start is invoked immediately, as
// if the kernel had just swapped cpufreq governors.
func (e *Engine) SetGovernor(g Governor) error {
	e.cfg.Governor = g
	e.govPure = govIsPure(g)
	e.govStable = false
	if g == nil {
		e.govEvery = 0
		return nil
	}
	p := g.PeriodS()
	if p <= 0 {
		return fmt.Errorf("sim: governor %s has non-positive period", g.Name())
	}
	e.govEvery = int(p/e.cfg.TickS + 0.5)
	if e.govEvery < 1 {
		e.govEvery = 1
	}
	if e.running {
		return g.Start(e)
	}
	return nil
}

// SetMapping switches the CPU/GPU mapping mid-run (e.g. a core is taken
// away by another tenant). The live job's remaining work must stay
// feasible on the new mapping.
func (e *Engine) SetMapping(m mapping.Mapping) error {
	big, lit := e.plat.Big(), e.plat.Little()
	if err := m.Validate(big.NumCores, lit.NumCores); err != nil {
		return err
	}
	if e.remCPU > 0 && m.CPUCores() == 0 {
		return errors.New("sim: new mapping uses no CPU cores but CPU work remains")
	}
	if e.remGPU > 0 && !m.UseGPU {
		return errors.New("sim: new mapping drops the GPU but GPU work remains")
	}
	e.curMap = m
	e.ratesDirty = true
	e.rebuildLoads()
	return nil
}

// SetPartition re-splits the live job's remaining work-items between CPU
// and GPU by the new partition (an online repartitioning decision).
func (e *Engine) SetPartition(p mapping.Partition) error {
	if err := p.Validate(); err != nil {
		return err
	}
	rem := e.remCPU + e.remGPU
	cpu := p.CPUFrac() * rem
	if cpu > 0 && e.curMap.CPUCores() == 0 {
		return errors.New("sim: partition sends work to the CPU but the mapping uses no CPU cores")
	}
	if rem-cpu > 0 && !e.curMap.UseGPU {
		return errors.New("sim: partition sends work to the GPU but the mapping does not use it")
	}
	e.curPart = p
	e.remCPU = cpu
	e.remGPU = rem - cpu
	e.ratesDirty = true
	return nil
}

// dispatchEvents fires every event due at the current tick. Kept out of
// tick so the steady-state path pays only the guarding compare.
func (e *Engine) dispatchEvents() error {
	for e.evIdx < len(e.events) && e.events[e.evIdx].tick <= e.timeTicks {
		ev := e.events[e.evIdx]
		e.evIdx++
		if err := ev.fn(e); err != nil {
			return fmt.Errorf("sim: event at t=%gs: %w", float64(ev.tick)*e.cfg.TickS, err)
		}
	}
	return nil
}

// --- run loop ---------------------------------------------------------------

// Run executes the configured workload — plus any queued arrivals and
// scheduled events — to completion (or MaxTimeS). An engine runs once;
// reusing it would replay the policy on exhausted work and duplicate trace
// samples, so a second Run is rejected.
func (e *Engine) Run() (*Result, error) {
	if e.running {
		return nil, errors.New("sim: Run called twice on one engine (build a new engine per run)")
	}
	e.running = true
	dt := e.cfg.TickS
	// Prime utilisation with the pending load so a utilisation-driven
	// governor's first decision sees the work that is about to run
	// (avoids a one-period dip to minimum frequency at t=0). Only
	// clusters the mapping actually uses look busy — an unused cluster
	// must read 0 or the governor pins idle silicon at max frequency.
	if e.remCPU > 0 {
		if e.curMap.Big > 0 {
			e.utils[e.bigIdx] = 1
		}
		if e.curMap.Little > 0 {
			e.utils[e.litIdx] = 1
		}
	}
	if e.remGPU > 0 {
		e.utils[e.gpuIdx] = 1
	}
	e.govEvery = 0
	e.govPure = govIsPure(e.cfg.Governor)
	if e.cfg.Governor != nil {
		p := e.cfg.Governor.PeriodS()
		if p <= 0 {
			return nil, fmt.Errorf("sim: governor %s has non-positive period", e.cfg.Governor.Name())
		}
		e.govEvery = int(p/dt + 0.5)
		if e.govEvery < 1 {
			e.govEvery = 1
		}
		if err := e.cfg.Governor.Start(e); err != nil {
			return nil, err
		}
	}
	e.recEvery = int(e.cfg.RecordPeriodS/dt + 0.5)
	if e.recEvery < 1 {
		e.recEvery = 1
	}
	// Round like ScheduleAt and minTicks do: truncation would let a
	// horizon-clamped MaxTimeS end the loop one tick before a final
	// scheduled event, leaving it undelivered.
	maxTicks := int(e.cfg.MaxTimeS/dt + 0.5)
	minTicks := int(e.cfg.MinTimeS/dt + 0.5)

	for e.timeTicks < maxTicks {
		// Event-horizon fast path: replay a provably steady interval in
		// one exact affine application instead of tick-by-tick. A
		// declined jump (any legality guard failed) falls through to the
		// ordinary tick below.
		if jumped, err := e.superstep(dt, maxTicks, minTicks); err != nil {
			return nil, err
		} else if jumped {
			if e.drained() && e.timeTicks >= minTicks {
				break
			}
			continue
		}
		finishedAt, err := e.tick(dt)
		if err != nil {
			return nil, err
		}
		if finishedAt >= 0 {
			// The live job completed inside this tick; the next
			// pending job (highest priority first) starts on the
			// following tick.
			e.lastFinishS = float64(e.timeTicks)*dt + finishedAt
			e.jobFinishes = append(e.jobFinishes, JobFinish{ID: e.curJobID, App: e.app.Name, AtS: e.lastFinishS})
			e.app = nil
			e.ratesDirty = true
			e.rebuildLoads()
			if e.QueuedJobs() > 0 {
				if err := e.startJob(e.popNext()); err != nil {
					return nil, err
				}
			}
		}
		e.timeTicks++
		if e.drained() && e.timeTicks >= minTicks {
			break
		}
	}
	completed := e.drained()
	// ExecTimeS is the time workload execution last stopped: the final
	// job finish, or a later live-job cancellation (the engine executed
	// — and charged energy for — that job's work until the drop).
	execTime := e.lastFinishS
	if e.lastCancelS > execTime {
		execTime = e.lastCancelS
	}
	if !completed {
		execTime = float64(e.timeTicks) * dt
	} else if execTime == 0 && len(e.jobFinishes) == 0 {
		// A drained run with no workload activity at all — fully idle
		// under MinTimeS — has no "last stop" to report; its execution
		// time is the simulated horizon, not the zero value of the
		// bookkeeping.
		execTime = float64(e.timeTicks) * dt
	}
	// Final trace sample so metrics cover the full run. A drained engine
	// closes with a self-consistent idle sample (zero utilisation AND
	// idle power); an aborted one records the last tick's still-busy
	// state, which e.utils and e.bd already hold as a consistent pair.
	if completed {
		for i := range e.utils {
			e.utils[i] = 0
		}
		if err := e.evalPower(0, 0, 0, 0); err != nil {
			return nil, err
		}
	}
	if err := e.record(e.bd.TotalW()); err != nil {
		return nil, err
	}

	bigNode := e.nodeOf[e.bigIdx]
	res := &Result{
		Completed:       completed,
		ExecTimeS:       execTime,
		EnergyJ:         e.meter.EnergyJ(),
		AvgPowerW:       e.meter.AvgPowerW(),
		AvgTempC:        e.tr.AvgTemp(bigNode),
		PeakTempC:       e.peakC[bigNode],
		PeakTempsC:      append([]float64(nil), e.peakC...),
		TempVarC2:       e.tr.TempVariance(bigNode),
		TempGradCps:     e.tr.TempGradient(bigNode),
		AvgBigFreqMHz:   e.tr.AvgFreqMHz(e.bigIdx),
		FreqTransitions: e.transitions,
		ThrottleEvents:  e.throttleEvents,
		JobFinishes:     e.jobFinishes,
		JobCancels:      e.jobCancels,
		Trace:           e.tr,
		Stats:           e.collectStats(),
	}
	return res, nil
}

// collectStats snapshots the flight recorder, folding in the jump-block
// cache counters of the pooled superstep maps (evicted maps folded their
// counts in at eviction).
func (e *Engine) collectStats() obs.RunStats {
	s := e.stats
	for _, ss := range e.ssPool {
		h, m := ss.BlockCacheStats()
		s.JumpBlockHits += h
		s.JumpBlockMisses += m
	}
	return s
}

// tick advances one simulation step of dt seconds: scheduled events,
// hardware protection, governor control, workload, power, thermal,
// metering and trace recording. It allocates nothing at steady state. A
// non-negative finishedAt is the in-tick offset at which the live job
// completed.
//
//teem:hotpath
func (e *Engine) tick(dt float64) (finishedAt float64, err error) {
	// Cancellation: one non-blocking receive per tick, so an abort is
	// observed within a single simulation step.
	if e.cfg.Done != nil {
		select {
		case <-e.cfg.Done:
			return -1, fmt.Errorf("aborted at t=%gs: %w", e.TimeS(), ErrAborted)
		default:
		}
	}
	// Scheduled scenario events: one compare when none are due.
	if e.evIdx < len(e.events) && e.events[e.evIdx].tick <= e.timeTicks {
		if err := e.dispatchEvents(); err != nil {
			return -1, err
		}
	}
	// Hardware thermal protection (checked every tick, like the TMU
	// interrupt).
	if !e.cfg.DisableHWProtect {
		e.hwProtect()
	}
	// Flight recorder: one tick executed. Per-phase timing below reads
	// the pre-acquired clock only when the caller opted in (clk != nil);
	// the default run performs zero clock reads.
	e.stats.Ticks++
	clk := e.clock
	var t0 int64
	if clk != nil {
		t0 = clk()
	}
	// Governor control step. An epoch of a util-only policy that changed
	// no frequency is a fixed point: record the utilisations it saw so
	// supersteps may cross later epochs while they (and the frequencies,
	// guarded by setFreq) stay unchanged.
	if e.govEvery > 0 && e.timeTicks%e.govEvery == 0 {
		e.stats.GovernorEpochs++
		pre := e.transitions
		copy(e.govUtils, e.utils)
		if err := e.cfg.Governor.Act(e); err != nil {
			return -1, err
		}
		e.govStable = e.govPure && e.transitions == pre
	}
	if clk != nil {
		t1 := clk()
		e.stats.GovernorNanos += t1 - t0
		t0 = t1
	}
	// Advance workload. Only clusters the live mapping uses report the
	// CPU busy fraction: governors must see idle silicon as idle, not
	// inherit the busy clusters' utilisation.
	cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt := e.advanceWork(dt)
	bigBusy, litBusy := cpuBusy, cpuBusy
	if e.curMap.Big == 0 {
		bigBusy = 0
	}
	if e.curMap.Little == 0 {
		litBusy = 0
	}
	e.utils[e.bigIdx] = bigBusy
	e.utils[e.litIdx] = litBusy
	e.utils[e.gpuIdx] = gpuBusy
	if clk != nil {
		t1 := clk()
		e.stats.QueueNanos += t1 - t0
		t0 = t1
	}

	// Power and thermal.
	if err := e.evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU); err != nil {
		return -1, err
	}
	if clk != nil {
		t1 := clk()
		e.stats.PowerNanos += t1 - t0
		t0 = t1
	}
	if err := e.stepThermal(dt); err != nil {
		return -1, err
	}
	if clk != nil {
		e.stats.ThermalNanos += clk() - t0
	}
	if t := e.therm.Temp(e.nodeOf[e.bigIdx]); t > e.peakBigC {
		e.peakBigC = t
		if e.peakTemps == nil {
			//teem:alloc-ok lazy one-time snapshot buffer; the warm-up ticks of the alloc guard absorb it
			e.peakTemps = make([]float64, len(e.cfg.Net.Nodes))
		}
		e.therm.CopyTemps(e.peakTemps)
	}
	for i := range e.peakC {
		if t := e.therm.Temp(i); t > e.peakC[i] {
			e.peakC[i] = t
		}
	}
	total := e.bd.TotalW()
	if err := e.meter.Observe(e.TimeS(), total); err != nil {
		return -1, err
	}
	if e.timeTicks%e.recEvery == 0 {
		if err := e.record(total); err != nil {
			return -1, err
		}
	}
	return finishedAt, nil
}

// hwProtect applies the firmware trip/release behaviour on the big cluster.
//
//teem:hotpath
func (e *Engine) hwProtect() {
	bigNode := e.nodeOf[e.bigIdx]
	t := e.therm.Temp(bigNode)
	big := &e.plat.Clusters[e.bigIdx]
	switch {
	case !e.throttled && t >= e.plat.TripC:
		e.throttled = true
		e.throttleEvents++
		e.stats.TMUTrips++
		e.preThrottleMHz = e.freqs[e.bigIdx]
		capMHz := big.FloorOPP(e.plat.TripCapMHz).FreqMHz
		if e.freqs[e.bigIdx] > capMHz {
			e.setFreq(e.bigIdx, capMHz)
			e.transitions++
		}
	case e.throttled && t < e.plat.TripReleaseC:
		e.throttled = false
		e.stats.TMUReleases++
		if e.preThrottleMHz > e.freqs[e.bigIdx] {
			e.setFreq(e.bigIdx, e.preThrottleMHz)
			e.transitions++
		}
	}
}

// advanceWork moves the CPU and GPU chunks forward by up to dt and returns
// the busy fractions of the tick, the work-item rates in effect (for the
// memory-traffic model, avoiding a second roofline evaluation) plus, when
// everything finished inside the tick, the offset (< dt) at which the last
// chunk completed (-1 otherwise, including on idle ticks with no live
// job, so an idle engine does not report a completion every tick).
//
//teem:hotpath
func (e *Engine) advanceWork(dt float64) (cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt float64) {
	finishedAt = -1
	hadWork := e.remCPU > 0 || e.remGPU > 0
	cpuBusy = 0
	cpuDone := e.remCPU <= 0
	if !cpuDone {
		rateCPU, _ = e.rates()
		if rateCPU > 0 {
			need := e.remCPU / rateCPU
			if need >= dt {
				e.remCPU -= rateCPU * dt
				cpuBusy = 1
			} else {
				e.remCPU = 0
				cpuBusy = need / dt
			}
		}
	}
	gpuBusy = 0
	gpuDone := e.remGPU <= 0
	if !gpuDone {
		_, rateGPU = e.rates()
		if rateGPU > 0 {
			need := e.remGPU / rateGPU
			if need >= dt {
				e.remGPU -= rateGPU * dt
				gpuBusy = 1
			} else {
				e.remGPU = 0
				gpuBusy = need / dt
			}
		}
	}
	if hadWork && e.remCPU <= 0 && e.remGPU <= 0 {
		// Finished within this tick: the later chunk defines the
		// offset.
		off := cpuBusy * dt
		if g := gpuBusy * dt; g > off {
			off = g
		}
		finishedAt = off
	}
	return cpuBusy, gpuBusy, rateCPU, rateGPU, finishedAt
}

// evalPower builds per-cluster loads for the current tick and evaluates
// the board power into the engine-owned breakdown. rateCPU/rateGPU are the
// work-item rates advanceWork ran at (consulted only when the matching
// busy fraction is non-zero).
//
//teem:hotpath
func (e *Engine) evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU float64) error {
	for i := range e.loads {
		l := &e.loads[i]
		l.FreqMHz = e.freqs[i]
		l.VoltV = e.volts[i]
		l.TempC = e.therm.Temp(e.nodeOf[i])
		var busy float64
		switch i {
		case e.bigIdx, e.litIdx:
			busy = cpuBusy
		case e.gpuIdx:
			busy = gpuBusy
		}
		if l.ActiveCores == 0 {
			busy = 0
		}
		l.Utilization = busy
	}
	// Memory traffic follows the aggregate processing rate of the live
	// app (an idle engine generates none).
	memGBs := 0.0
	if e.app != nil {
		memRate := 0.0
		if cpuBusy > 0 {
			memRate += rateCPU * cpuBusy
		}
		if gpuBusy > 0 {
			memRate += rateGPU * gpuBusy
		}
		memGBs = e.app.MemGBs(memRate)
	}
	return e.pow.EvaluateInto(&e.bd, e.loads, memGBs)
}

// stepThermal injects the power breakdown into the RC network. The exact
// propagator covers the fixed tick; Euler handles explicitly requested
// reference runs and any off-tick step.
//
//teem:hotpath
func (e *Engine) stepThermal(dt float64) error {
	for i := range e.inj {
		e.inj[i] = 0
	}
	for i := range e.plat.Clusters {
		e.inj[e.nodeOf[i]] += e.bd.ClusterW(i)
	}
	e.inj[e.pkgNode] += e.bd.DRAMW + e.cfg.PkgBaselineFrac*e.bd.BaselineW
	if e.stepper != nil && dt == e.stepper.Dt() {
		return e.stepper.Step(e.inj)
	}
	return e.therm.Step(e.inj, dt)
}

// record appends a trace sample; Append copies, so the engine's scratch
// buffers can be handed over directly.
//
//teem:hotpath
func (e *Engine) record(totalW float64) error {
	e.therm.CopyTemps(e.recTemps)
	err := e.tr.Append(trace.Sample{
		TimeS:    e.TimeS(),
		TempsC:   e.recTemps,
		FreqsMHz: e.freqs,
		PowerW:   totalW,
		Utils:    e.utils,
	})
	if err != nil {
		return err
	}
	if e.cfg.OnSample != nil {
		// Hand the subscriber the appended sample: its slices are the
		// trace's arena-backed copies, stable for the trace's lifetime,
		// so streaming needs no second copy.
		e.cfg.OnSample(e.tr.Samples[len(e.tr.Samples)-1])
	}
	return nil
}

// SteadyTemps computes the equilibrium temperatures of a hypothetical
// constant operating point — used by warm-start helpers and calibration.
func (e *Engine) SteadyTemps(cpuBusy, gpuBusy float64) ([]float64, error) {
	app := e.app
	if app == nil {
		return nil, errors.New("sim: SteadyTemps needs a live app")
	}
	m := e.curMap
	rateCPU := app.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx])
	rateGPU := app.GPURate(e.plat.Clusters[e.gpuIdx].NumCores, e.freqs[e.gpuIdx])
	if err := e.evalPower(cpuBusy, gpuBusy, rateCPU, rateGPU); err != nil {
		return nil, err
	}
	inj := make([]float64, len(e.cfg.Net.Nodes))
	for i := range e.plat.Clusters {
		inj[e.nodeOf[i]] += e.bd.ClusterW(i)
	}
	inj[e.pkgNode] += e.bd.DRAMW + e.cfg.PkgBaselineFrac*e.bd.BaselineW
	return e.therm.SteadyState(inj)
}

// WarmStartTemps returns a realistic pre-heated state: the steady
// temperatures of running the configured job at a mid-level big frequency
// (1400 MHz), as after back-to-back benchmark runs — the experimental
// protocol of the paper.
func WarmStartTemps(cfg Config) ([]float64, error) {
	cfg.Governor = nil
	cfg.InitialTempsC = nil
	cfg.Freq = mapping.FreqSetting{BigMHz: 1400, LittleMHz: 1400, GPUMHz: 600}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.SteadyTemps(1, 1)
}

// FinalTemps returns the node temperatures at the end of a run.
func (e *Engine) FinalTemps() []float64 { return e.therm.Temps() }

// SetAmbientC changes the ambient temperature mid-run — e.g. to model the
// device moving into direct sunlight while an online manager reacts.
func (e *Engine) SetAmbientC(t float64) { e.therm.SetAmbientC(t) }

// PeakTemps returns the node temperatures at the moment the big cluster
// was hottest during the run (nil before Run). This is the thermal
// operating regime a back-to-back benchmark campaign sits in.
func (e *Engine) PeakTemps() []float64 {
	if e.peakTemps == nil {
		return nil
	}
	return append([]float64(nil), e.peakTemps...)
}

// RunWarm reproduces the paper's measurement protocol: execute the job
// once as a discarded warm-up (starting from WarmStartTemps) so the
// package reaches its operating regime, then run again from the resulting
// temperatures and report that steady-regime run. The warm-up regime
// comes from a single run's trace — engines run exactly once.
func RunWarm(cfg Config) (*Result, error) {
	warm, err := WarmStartTemps(cfg)
	if err != nil {
		return nil, err
	}
	cfg.InitialTempsC = warm
	e1, err := New(cfg)
	if err != nil {
		return nil, err
	}
	res1, err := e1.Run()
	if err != nil {
		return nil, err
	}
	// Start the measured run at the warm-up's time-averaged node
	// temperatures: the thermal regime a continuous benchmarking
	// campaign sits in (mid-sawtooth for throttling governors).
	regime := make([]float64, len(res1.Trace.NodeNames))
	for i := range regime {
		regime[i] = res1.Trace.AvgTemp(i)
	}
	cfg.InitialTempsC = regime
	e2, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e2.Run()
}
