// Package sim co-simulates workload execution, power and temperature on an
// MPSoC platform. Each tick (default 10 ms) it advances the application's
// CPU and GPU work-item chunks at rates given by the current DVFS state,
// evaluates the power model, steps the thermal RC network, samples the
// board power meter and — at its control period — invokes the DVFS
// governor. Hardware thermal protection (the Exynos TMU behaviour: trip at
// 95 °C, cap the big cluster at 900 MHz, release below the hysteresis
// point) runs independently of software policy, exactly like the firmware
// the paper's baselines rely on.
package sim

import (
	"errors"
	"fmt"

	"teem/internal/mapping"
	"teem/internal/power"
	"teem/internal/powermeter"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

// Machine is the restricted hardware view a governor gets: sensors,
// current frequencies, utilisation, and frequency control — the same
// surface Linux governors see through sysfs.
type Machine interface {
	// TimeS is the current simulation time in seconds.
	TimeS() float64
	// Platform describes the hardware.
	Platform() *soc.Platform
	// SensorC reads the thermal sensor on the named node (°C). Unknown
	// nodes read as 0.
	SensorC(node string) float64
	// ClusterFreqMHz returns the current frequency of the named
	// cluster (0 for unknown or gated clusters).
	ClusterFreqMHz(cluster string) int
	// SetClusterFreqMHz requests a frequency; it is snapped to the
	// nearest supported OPP and clamped by active hardware throttling.
	SetClusterFreqMHz(cluster string, mhz int) error
	// ClusterUtil returns the cluster's busy fraction over the last
	// tick.
	ClusterUtil(cluster string) float64
	// Throttled reports whether hardware thermal protection is
	// currently capping the big cluster.
	Throttled() bool
}

// Governor is a DVFS policy invoked every PeriodS of simulated time.
type Governor interface {
	// Name identifies the policy ("ondemand", "teem", ...).
	Name() string
	// PeriodS is the control period in seconds.
	PeriodS() float64
	// Start initialises the policy at t=0 (set initial frequencies
	// here).
	Start(m Machine) error
	// Act runs one control step.
	Act(m Machine) error
}

// Config assembles a simulation.
type Config struct {
	// Platform is the hardware description (required).
	Platform *soc.Platform
	// Net is the thermal topology; nodes must be named after the
	// clusters they carry, plus a "pkg" node (required).
	Net *thermal.Network
	// App is the workload (required).
	App *workload.App
	// Map selects the CPU cores used; Part splits work-items between
	// CPU and GPU.
	Map  mapping.Mapping
	Part mapping.Partition
	// Freq is the initial DVFS setting; zero fields default to each
	// cluster's maximum.
	Freq mapping.FreqSetting
	// Governor is the DVFS policy; nil runs at the initial frequencies.
	Governor Governor
	// HWProtect enables the firmware thermal trip behaviour (default
	// semantics: enabled unless DisableHWProtect).
	DisableHWProtect bool
	// HotplugUnused powers down unused cores (EEMP-style DPM) instead
	// of leaving them idle and leaking.
	HotplugUnused bool
	// TickS is the simulation step (default 0.01 s).
	TickS float64
	// RecordPeriodS is the trace sampling period (default 0.1 s).
	RecordPeriodS float64
	// MaxTimeS aborts runaway runs (default 900 s).
	MaxTimeS float64
	// PkgBaselineFrac is the fraction of board baseline power that
	// heats the package node (regulators near the SoC); default 0.5.
	PkgBaselineFrac float64
	// InitialTempsC presets node temperatures (default: ambient).
	InitialTempsC []float64
	// SensorQuantizeC quantises sensor reads (default 0 = exact).
	SensorQuantizeC float64
}

// Result summarises a run.
type Result struct {
	// Completed is false when MaxTimeS elapsed first.
	Completed bool
	// ExecTimeS is the application execution time (Eq. 3's ET).
	ExecTimeS float64
	// EnergyJ is the meter-accumulated board energy; AvgPowerW the
	// meter average.
	EnergyJ   float64
	AvgPowerW float64
	// AvgTempC/PeakTempC are for the hottest monitored cluster node
	// (big CPU), matching the paper's reporting.
	AvgTempC  float64
	PeakTempC float64
	// TempVarC2 is the temporal variance of the big-cluster
	// temperature; TempGradCps the mean |dT/dt|.
	TempVarC2   float64
	TempGradCps float64
	// AvgBigFreqMHz is the effective big-cluster frequency.
	AvgBigFreqMHz float64
	// FreqTransitions counts DVFS changes (governor overhead metric).
	FreqTransitions int
	// ThrottleEvents counts hardware trips.
	ThrottleEvents int
	// Trace is the recorded time series.
	Trace *trace.Trace
}

// Engine executes one configured run.
type Engine struct {
	cfg   Config
	plat  *soc.Platform
	therm *thermal.Model
	pow   *power.Model
	meter *powermeter.Meter
	tr    *trace.Trace

	// cluster bookkeeping, indexed like plat.Clusters
	freqs   []int
	nodeOf  []int // thermal node per cluster
	utils   []float64
	pkgNode int
	bigIdx  int // cluster index of the big CPU
	gpuIdx  int
	litIdx  int

	remCPU, remGPU float64 // remaining work-items
	timeTicks      int
	transitions    int
	throttleEvents int
	throttled      bool
	preThrottleMHz int
	peakBigC       float64
	peakTemps      []float64
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Platform == nil || cfg.Net == nil || cfg.App == nil {
		return nil, errors.New("sim: Platform, Net and App are required")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	big, lit, gpu := cfg.Platform.Big(), cfg.Platform.Little(), cfg.Platform.GPU()
	if big == nil || lit == nil || gpu == nil {
		return nil, errors.New("sim: platform must have big, LITTLE and GPU clusters")
	}
	if err := cfg.Map.Validate(big.NumCores, lit.NumCores); err != nil {
		return nil, err
	}
	if err := cfg.Part.Validate(); err != nil {
		return nil, err
	}
	if cfg.TickS == 0 {
		cfg.TickS = 0.01
	}
	if cfg.TickS <= 0 {
		return nil, errors.New("sim: TickS must be positive")
	}
	if cfg.RecordPeriodS == 0 {
		cfg.RecordPeriodS = 0.1
	}
	if cfg.MaxTimeS == 0 {
		cfg.MaxTimeS = 900
	}
	if cfg.PkgBaselineFrac == 0 {
		cfg.PkgBaselineFrac = 0.5
	}
	if cfg.PkgBaselineFrac < 0 || cfg.PkgBaselineFrac > 1 {
		return nil, errors.New("sim: PkgBaselineFrac outside [0,1]")
	}

	therm, err := thermal.NewModel(cfg.Net, cfg.Platform.AmbientC)
	if err != nil {
		return nil, err
	}
	pow, err := power.NewModel(cfg.Platform)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:   cfg,
		plat:  cfg.Platform,
		therm: therm,
		pow:   pow,
		meter: powermeter.New(),
	}
	e.nodeOf = make([]int, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		name := cfg.Platform.Clusters[i].Name
		n := cfg.Net.NodeIndex(name)
		if n < 0 {
			return nil, fmt.Errorf("sim: thermal network lacks a node for cluster %s", name)
		}
		e.nodeOf[i] = n
		switch cfg.Platform.Clusters[i].Kind {
		case soc.BigCPU:
			e.bigIdx = i
		case soc.LittleCPU:
			e.litIdx = i
		case soc.GPU:
			e.gpuIdx = i
		}
	}
	e.pkgNode = cfg.Net.NodeIndex("pkg")
	if e.pkgNode < 0 {
		return nil, errors.New(`sim: thermal network lacks a "pkg" node`)
	}

	if cfg.InitialTempsC != nil {
		if err := therm.SetTemps(cfg.InitialTempsC); err != nil {
			return nil, err
		}
	}

	e.freqs = make([]int, len(cfg.Platform.Clusters))
	e.utils = make([]float64, len(cfg.Platform.Clusters))
	setDefault := func(idx, req int) {
		c := &e.plat.Clusters[idx]
		if req == 0 {
			e.freqs[idx] = c.MaxFreqMHz()
		} else {
			e.freqs[idx] = c.NearestOPP(req).FreqMHz
		}
	}
	setDefault(e.bigIdx, cfg.Freq.BigMHz)
	setDefault(e.litIdx, cfg.Freq.LittleMHz)
	setDefault(e.gpuIdx, cfg.Freq.GPUMHz)

	nodeNames := make([]string, len(cfg.Net.Nodes))
	for i, n := range cfg.Net.Nodes {
		nodeNames[i] = n.Name
	}
	clusterNames := make([]string, len(cfg.Platform.Clusters))
	for i := range cfg.Platform.Clusters {
		clusterNames[i] = cfg.Platform.Clusters[i].Name
	}
	e.tr = trace.New(nodeNames, clusterNames)

	total := float64(cfg.App.WorkItems)
	cpuItems := float64(cfg.Part.CPUItems(cfg.App.WorkItems))
	e.remCPU = cpuItems
	e.remGPU = total - cpuItems
	if e.remCPU > 0 && cfg.Map.CPUCores() == 0 {
		return nil, errors.New("sim: partition sends work to the CPU but the mapping uses no CPU cores")
	}
	if e.remGPU > 0 && !cfg.Map.UseGPU {
		return nil, errors.New("sim: partition sends work to the GPU but the mapping does not use it")
	}
	return e, nil
}

// --- Machine interface ------------------------------------------------------

// TimeS implements Machine.
func (e *Engine) TimeS() float64 { return float64(e.timeTicks) * e.cfg.TickS }

// Platform implements Machine.
func (e *Engine) Platform() *soc.Platform { return e.plat }

// SensorC implements Machine.
func (e *Engine) SensorC(node string) float64 {
	i := e.cfg.Net.NodeIndex(node)
	if i < 0 {
		return 0
	}
	s := thermal.Sensor{Node: i, QuantizeC: e.cfg.SensorQuantizeC}
	return s.Read(e.therm)
}

// ClusterFreqMHz implements Machine.
func (e *Engine) ClusterFreqMHz(cluster string) int {
	i := e.plat.ClusterIndex(cluster)
	if i < 0 {
		return 0
	}
	return e.freqs[i]
}

// SetClusterFreqMHz implements Machine.
func (e *Engine) SetClusterFreqMHz(cluster string, mhz int) error {
	i := e.plat.ClusterIndex(cluster)
	if i < 0 {
		return fmt.Errorf("sim: unknown cluster %q", cluster)
	}
	c := &e.plat.Clusters[i]
	f := c.NearestOPP(mhz).FreqMHz
	if e.throttled && i == e.bigIdx && f > e.plat.TripCapMHz {
		// Hardware protection wins; remember the request for
		// release.
		e.preThrottleMHz = f
		f = c.FloorOPP(e.plat.TripCapMHz).FreqMHz
	}
	if f != e.freqs[i] {
		e.freqs[i] = f
		e.transitions++
	}
	return nil
}

// ClusterUtil implements Machine.
func (e *Engine) ClusterUtil(cluster string) float64 {
	i := e.plat.ClusterIndex(cluster)
	if i < 0 {
		return 0
	}
	return e.utils[i]
}

// Throttled implements Machine.
func (e *Engine) Throttled() bool { return e.throttled }

// --- run loop ---------------------------------------------------------------

// Run executes the configured workload to completion (or MaxTimeS).
func (e *Engine) Run() (*Result, error) {
	dt := e.cfg.TickS
	// Prime utilisation with the pending load so a utilisation-driven
	// governor's first decision sees the work that is about to run
	// (avoids a one-period dip to minimum frequency at t=0).
	if e.remCPU > 0 {
		e.utils[e.bigIdx] = 1
		e.utils[e.litIdx] = 1
	}
	if e.remGPU > 0 {
		e.utils[e.gpuIdx] = 1
	}
	govEvery := 0
	if e.cfg.Governor != nil {
		p := e.cfg.Governor.PeriodS()
		if p <= 0 {
			return nil, fmt.Errorf("sim: governor %s has non-positive period", e.cfg.Governor.Name())
		}
		govEvery = int(p/dt + 0.5)
		if govEvery < 1 {
			govEvery = 1
		}
		if err := e.cfg.Governor.Start(e); err != nil {
			return nil, err
		}
	}
	recEvery := int(e.cfg.RecordPeriodS/dt + 0.5)
	if recEvery < 1 {
		recEvery = 1
	}
	maxTicks := int(e.cfg.MaxTimeS / dt)

	var execTime float64
	completed := false
	for ; e.timeTicks < maxTicks; e.timeTicks++ {
		// Hardware thermal protection (checked every tick, like the
		// TMU interrupt).
		if !e.cfg.DisableHWProtect {
			e.hwProtect()
		}
		// Governor control step.
		if govEvery > 0 && e.timeTicks%govEvery == 0 {
			if err := e.cfg.Governor.Act(e); err != nil {
				return nil, err
			}
		}
		// Advance workload.
		busyFracCPU, busyFracGPU, finishedAt := e.advanceWork(dt)
		e.utils[e.bigIdx] = busyFracCPU
		e.utils[e.litIdx] = busyFracCPU
		e.utils[e.gpuIdx] = busyFracGPU

		// Power and thermal.
		bd, err := e.evalPower(busyFracCPU, busyFracGPU)
		if err != nil {
			return nil, err
		}
		if err := e.stepThermal(bd, dt); err != nil {
			return nil, err
		}
		if t := e.therm.Temp(e.nodeOf[e.bigIdx]); t > e.peakBigC {
			e.peakBigC = t
			e.peakTemps = e.therm.Temps()
		}
		if err := e.meter.Observe(e.TimeS(), bd.TotalW()); err != nil {
			return nil, err
		}
		if e.timeTicks%recEvery == 0 {
			if err := e.record(bd); err != nil {
				return nil, err
			}
		}
		if finishedAt >= 0 {
			execTime = float64(e.timeTicks)*dt + finishedAt
			completed = true
			e.timeTicks++
			break
		}
	}
	if !completed {
		execTime = float64(e.timeTicks) * dt
	}
	// Final trace sample so metrics cover the full run.
	if bd, err := e.evalPower(0, 0); err == nil {
		_ = e.record(bd)
	}

	bigNode := e.nodeOf[e.bigIdx]
	res := &Result{
		Completed:       completed,
		ExecTimeS:       execTime,
		EnergyJ:         e.meter.EnergyJ(),
		AvgPowerW:       e.meter.AvgPowerW(),
		AvgTempC:        e.tr.AvgTemp(bigNode),
		PeakTempC:       e.tr.PeakTemp(bigNode),
		TempVarC2:       e.tr.TempVariance(bigNode),
		TempGradCps:     e.tr.TempGradient(bigNode),
		AvgBigFreqMHz:   e.tr.AvgFreqMHz(e.bigIdx),
		FreqTransitions: e.transitions,
		ThrottleEvents:  e.throttleEvents,
		Trace:           e.tr,
	}
	return res, nil
}

// hwProtect applies the firmware trip/release behaviour on the big cluster.
func (e *Engine) hwProtect() {
	bigNode := e.nodeOf[e.bigIdx]
	t := e.therm.Temp(bigNode)
	big := &e.plat.Clusters[e.bigIdx]
	switch {
	case !e.throttled && t >= e.plat.TripC:
		e.throttled = true
		e.throttleEvents++
		e.preThrottleMHz = e.freqs[e.bigIdx]
		capMHz := big.FloorOPP(e.plat.TripCapMHz).FreqMHz
		if e.freqs[e.bigIdx] > capMHz {
			e.freqs[e.bigIdx] = capMHz
			e.transitions++
		}
	case e.throttled && t < e.plat.TripReleaseC:
		e.throttled = false
		if e.preThrottleMHz > e.freqs[e.bigIdx] {
			e.freqs[e.bigIdx] = e.preThrottleMHz
			e.transitions++
		}
	}
}

// advanceWork moves the CPU and GPU chunks forward by up to dt and returns
// the busy fractions of the tick plus, when everything finished inside the
// tick, the offset (< dt) at which the last chunk completed (-1 otherwise).
func (e *Engine) advanceWork(dt float64) (cpuBusy, gpuBusy, finishedAt float64) {
	finishedAt = -1
	app := e.cfg.App
	m := e.cfg.Map

	cpuBusy = 0
	cpuDone := e.remCPU <= 0
	if !cpuDone {
		rate := app.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx])
		if rate > 0 {
			need := e.remCPU / rate
			if need >= dt {
				e.remCPU -= rate * dt
				cpuBusy = 1
			} else {
				e.remCPU = 0
				cpuBusy = need / dt
			}
		}
	}
	gpuBusy = 0
	gpuDone := e.remGPU <= 0
	if !gpuDone {
		nSh := e.plat.Clusters[e.gpuIdx].NumCores
		rate := app.GPURate(nSh, e.freqs[e.gpuIdx])
		if rate > 0 {
			need := e.remGPU / rate
			if need >= dt {
				e.remGPU -= rate * dt
				gpuBusy = 1
			} else {
				e.remGPU = 0
				gpuBusy = need / dt
			}
		}
	}
	if e.remCPU <= 0 && e.remGPU <= 0 {
		// Finished within this tick: the later chunk defines the
		// offset.
		off := cpuBusy * dt
		if g := gpuBusy * dt; g > off {
			off = g
		}
		// If both were already done before this tick, off is 0.
		finishedAt = off
	}
	return cpuBusy, gpuBusy, finishedAt
}

// evalPower builds per-cluster loads for the current tick.
func (e *Engine) evalPower(cpuBusy, gpuBusy float64) (*power.Breakdown, error) {
	app := e.cfg.App
	m := e.cfg.Map
	loads := make([]power.ClusterLoad, len(e.plat.Clusters))
	for i := range e.plat.Clusters {
		c := &e.plat.Clusters[i]
		l := power.ClusterLoad{
			FreqMHz:  e.freqs[i],
			TempC:    e.therm.Temp(e.nodeOf[i]),
			Activity: 1,
		}
		switch i {
		case e.bigIdx:
			l.ActiveCores = m.Big
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused {
				l.OnCores = m.Big
			}
			l.Utilization = cpuBusy
			l.Activity = app.ActivityCPU
		case e.litIdx:
			l.ActiveCores = m.Little
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused {
				l.OnCores = m.Little
			}
			l.Utilization = cpuBusy
			l.Activity = app.ActivityCPU
		case e.gpuIdx:
			l.ActiveCores = c.NumCores
			l.OnCores = c.NumCores
			if e.cfg.HotplugUnused && !m.UseGPU {
				l.ActiveCores = 0
				l.OnCores = 0
			}
			if !m.UseGPU {
				l.ActiveCores = 0
			}
			l.Utilization = gpuBusy
			l.Activity = app.ActivityGPU
		}
		if l.ActiveCores == 0 {
			l.Utilization = 0
		}
		loads[i] = l
	}
	// Memory traffic follows the aggregate processing rate.
	rCPU := 0.0
	if cpuBusy > 0 {
		rCPU = app.CPURate(m.Big, m.Little, e.freqs[e.bigIdx], e.freqs[e.litIdx]) * cpuBusy
	}
	rGPU := 0.0
	if gpuBusy > 0 {
		rGPU = app.GPURate(e.plat.Clusters[e.gpuIdx].NumCores, e.freqs[e.gpuIdx]) * gpuBusy
	}
	return e.pow.Evaluate(loads, app.MemGBs(rCPU+rGPU))
}

// stepThermal injects the power breakdown into the RC network.
func (e *Engine) stepThermal(bd *power.Breakdown, dt float64) error {
	inj := make([]float64, len(e.cfg.Net.Nodes))
	for i := range e.plat.Clusters {
		inj[e.nodeOf[i]] += bd.ClusterW(i)
	}
	inj[e.pkgNode] += bd.DRAMW + e.cfg.PkgBaselineFrac*bd.BaselineW
	return e.therm.Step(inj, dt)
}

// record appends a trace sample.
func (e *Engine) record(bd *power.Breakdown) error {
	return e.tr.Append(trace.Sample{
		TimeS:    e.TimeS(),
		TempsC:   e.therm.Temps(),
		FreqsMHz: append([]int(nil), e.freqs...),
		PowerW:   bd.TotalW(),
		Utils:    append([]float64(nil), e.utils...),
	})
}

// SteadyTemps computes the equilibrium temperatures of a hypothetical
// constant operating point — used by warm-start helpers and calibration.
func (e *Engine) SteadyTemps(cpuBusy, gpuBusy float64) ([]float64, error) {
	bd, err := e.evalPower(cpuBusy, gpuBusy)
	if err != nil {
		return nil, err
	}
	inj := make([]float64, len(e.cfg.Net.Nodes))
	for i := range e.plat.Clusters {
		inj[e.nodeOf[i]] += bd.ClusterW(i)
	}
	inj[e.pkgNode] += bd.DRAMW + e.cfg.PkgBaselineFrac*bd.BaselineW
	return e.therm.SteadyState(inj)
}

// WarmStartTemps returns a realistic pre-heated state: the steady
// temperatures of running the configured job at a mid-level big frequency
// (1400 MHz), as after back-to-back benchmark runs — the experimental
// protocol of the paper.
func WarmStartTemps(cfg Config) ([]float64, error) {
	cfg.Governor = nil
	cfg.InitialTempsC = nil
	cfg.Freq = mapping.FreqSetting{BigMHz: 1400, LittleMHz: 1400, GPUMHz: 600}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.SteadyTemps(1, 1)
}

// FinalTemps returns the node temperatures at the end of a run.
func (e *Engine) FinalTemps() []float64 { return e.therm.Temps() }

// SetAmbientC changes the ambient temperature mid-run — e.g. to model the
// device moving into direct sunlight while an online manager reacts.
func (e *Engine) SetAmbientC(t float64) { e.therm.SetAmbientC(t) }

// PeakTemps returns the node temperatures at the moment the big cluster
// was hottest during the run (nil before Run). This is the thermal
// operating regime a back-to-back benchmark campaign sits in.
func (e *Engine) PeakTemps() []float64 { return e.peakTemps }

// RunWarm reproduces the paper's measurement protocol: execute the job
// once as a discarded warm-up (starting from WarmStartTemps) so the
// package reaches its operating regime, then run again from the resulting
// temperatures and report that steady-regime run.
func RunWarm(cfg Config) (*Result, error) {
	warm, err := WarmStartTemps(cfg)
	if err != nil {
		return nil, err
	}
	cfg.InitialTempsC = warm
	e1, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := e1.Run(); err != nil {
		return nil, err
	}
	res1, err := e1.Run()
	if err != nil {
		return nil, err
	}
	// Start the measured run at the warm-up's time-averaged node
	// temperatures: the thermal regime a continuous benchmarking
	// campaign sits in (mid-sawtooth for throttling governors).
	regime := make([]float64, len(res1.Trace.NodeNames))
	for i := range regime {
		regime[i] = res1.Trace.AvgTemp(i)
	}
	cfg.InitialTempsC = regime
	e2, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e2.Run()
}
