package sim

import (
	"errors"
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

func cancelTestConfig() Config {
	return Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
	}
}

// Closing Done before Run starts must abort on the very first tick.
func TestRunAbortsOnClosedDone(t *testing.T) {
	done := make(chan struct{})
	close(done)
	cfg := cancelTestConfig()
	cfg.Done = done
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if res != nil {
		t.Fatalf("aborted run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want ErrAborted", err)
	}
}

// An abort raised mid-run must be observed within one tick: a scheduled
// event closes Done at t=1s and the reported abort time must be the next
// tick, not the end of the workload.
func TestRunAbortsWithinOneTick(t *testing.T) {
	done := make(chan struct{})
	cfg := cancelTestConfig()
	cfg.Done = done
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(1.0, func(e *Engine) error { close(done); return nil }); err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want ErrAborted", err)
	}
	// The event fires at tick 100 (t=1s); the poll at the top of tick
	// 101 must catch it, so the engine stops at t=1.01s (default 10 ms
	// tick) — within one tick of the cancellation.
	if got := e.TimeS(); got > 1.0+2*0.01+1e-9 {
		t.Errorf("abort observed at t=%gs, want within one tick of 1s", got)
	}
}

// A nil Done keeps the classic behaviour: the run completes.
func TestRunWithoutDoneCompletes(t *testing.T) {
	e, err := New(cancelTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("run did not complete")
	}
}

// The OnSample subscriber must see every recorded sample, in time order,
// with the same values the final trace holds — live streaming equals the
// post-hoc trace, with no whole-run copy.
func TestOnSampleMatchesTrace(t *testing.T) {
	var streamed []trace.Sample
	cfg := cancelTestConfig()
	cfg.OnSample = func(s trace.Sample) { streamed = append(streamed, s) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Trace.Samples) {
		t.Fatalf("streamed %d samples, trace has %d", len(streamed), len(res.Trace.Samples))
	}
	for i, s := range streamed {
		ts := res.Trace.Samples[i]
		if s.TimeS != ts.TimeS || s.PowerW != ts.PowerW {
			t.Fatalf("sample %d: streamed (t=%g, P=%g) != trace (t=%g, P=%g)",
				i, s.TimeS, s.PowerW, ts.TimeS, ts.PowerW)
		}
		for k := range s.TempsC {
			if s.TempsC[k] != ts.TempsC[k] {
				t.Fatalf("sample %d node %d: streamed %g != trace %g", i, k, s.TempsC[k], ts.TempsC[k])
			}
		}
		for k := range s.FreqsMHz {
			if s.FreqsMHz[k] != ts.FreqsMHz[k] {
				t.Fatalf("sample %d cluster %d: streamed %d != trace %d", i, k, s.FreqsMHz[k], ts.FreqsMHz[k])
			}
		}
	}
}

// Samples handed to the subscriber must stay valid after the run: they
// are arena-backed trace storage, not reused scratch buffers.
func TestOnSampleSlicesStayValid(t *testing.T) {
	type snap struct {
		t     float64
		temp0 float64
		s     trace.Sample
	}
	var snaps []snap
	cfg := cancelTestConfig()
	cfg.OnSample = func(s trace.Sample) {
		snaps = append(snaps, snap{t: s.TimeS, temp0: s.TempsC[0], s: s})
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, sn := range snaps {
		if sn.s.TimeS != sn.t || sn.s.TempsC[0] != sn.temp0 {
			t.Fatalf("sample %d mutated after delivery: (t=%g, T=%g) now (t=%g, T=%g)",
				i, sn.t, sn.temp0, sn.s.TimeS, sn.s.TempsC[0])
		}
	}
}
