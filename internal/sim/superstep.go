// Event-horizon superstepping: the engine's fast path across provably
// steady intervals. When nothing that could change the operating point is
// pending — no scheduled event, no governor decision that could move a
// frequency, no hardware-protection interaction, no work-chunk depletion,
// no meter sampling instant — the per-tick recurrence is a fixed affine
// map of the temperature vector, and the engine replays n ticks of it in
// one application of a precomputed (Ãⁿ, Sₙ) pair (thermal.Superstep).
// The jump reproduces the fixed-tick trajectory to floating-point
// rounding; every guard here is about proving the interval really is
// steady, with a conservative fall-through to the ordinary tick whenever
// it is not.

package sim

import (
	"fmt"

	"teem/internal/power"
	"teem/internal/thermal"
)

// UtilOnlyGovernor is an optional marker interface for Governor
// implementations whose Act is a pure function of the cluster
// utilisations and current frequencies — no sensor reads, no time, no
// internal state. For such a policy an epoch that changed nothing is a
// fixed point: as long as utilisations and frequencies stay constant,
// every further epoch is provably a no-op, so the engine may jump across
// control periods instead of replaying them. All stock Linux baselines in
// internal/governor qualify; the TEEM controller does not (it reads
// thermal sensors), so its epochs always bound a superstep. Implement
// UtilOnly to return true only if the policy honours this contract —
// a policy that reads anything else must not be marked, or supersteps
// will skip decisions it would have made.
type UtilOnlyGovernor interface {
	Governor
	// UtilOnly reports that Act depends only on ClusterUtil and
	// ClusterFreqMHz.
	UtilOnly() bool
}

// govIsPure reports whether g is marked util-only.
func govIsPure(g Governor) bool {
	u, ok := g.(UtilOnlyGovernor)
	return ok && u.UtilOnly()
}

// superstepMinSpan is the smallest jump worth planning: below this the
// affine setup costs more than the ticks it would replace.
const superstepMinSpan = 4

// ssPoolLimit bounds the per-engine recency pool of slope-keyed jump
// maps; a run alternating between a handful of operating points keeps
// them all warm.
const ssPoolLimit = 8

// drained reports that no workload activity remains: no live job, no
// queued job, no undelivered scheduled event.
func (e *Engine) drained() bool {
	return e.app == nil && e.QueuedJobs() == 0 && e.evIdx >= len(e.events)
}

// superstep attempts to jump the simulation across the steady interval
// ahead. It returns (true, nil) after advancing e.timeTicks by the jumped
// span with the model state exactly as the equivalent fixed ticks would
// have left it, and (false, nil) when any legality condition fails — the
// caller then runs an ordinary tick. The horizon is the earliest of:
//
//   - the next scheduled event (arrival, departure, ambient step, ...);
//   - the next governor epoch, unless the policy is a marked util-only
//     fixed point (UtilOnlyGovernor + an unchanged last epoch under the
//     same utilisations);
//   - the next power-meter sampling instant, which must latch a freshly
//     evaluated power value, so it always runs as a real tick;
//   - the depletion of a busy work chunk (one full tick of margin, so
//     every jumped tick is provably fully busy);
//   - the run horizon (MinTimeS when drained; the tick before MaxTimeS).
//
// Temperature-dependent interactions — the TMU trip threshold and the
// 25 °C leakage-linearity floor — are endpoint-checked, which the
// monotone trajectory direction reported by thermal.Superstep.Jump makes
// sufficient for the whole interval; a mixed-direction probe falls back
// to fixed ticks.
//
//teem:hotpath
func (e *Engine) superstep(dt float64, maxTicks, minTicks int) (bool, error) {
	if e.ssOff || e.stepper == nil {
		return false, nil
	}
	if !e.cfg.DisableHWProtect && e.throttled {
		// While throttled the release check may fire on any tick.
		e.stats.RejectTMU++
		return false, nil
	}
	if e.peakTemps == nil {
		// Let the first ordinary tick seed the peak-temperature snapshot;
		// afterwards the falling-trajectory case needs no interior peak
		// bookkeeping (the pre-jump state already bounds it).
		return false, nil
	}
	k := e.timeTicks
	if k < e.ssSkipUntil {
		// A recent probe reported a mixed trajectory direction; the system
		// is hovering near equilibrium and the probe outcome will not
		// change until the horizon that jump was bounded by.
		e.stats.RejectWork++
		return false, nil
	}
	// Keep the final tick before MaxTimeS an ordinary one so an aborted
	// run's closing trace sample carries a freshly evaluated breakdown.
	n := maxTicks - k - 1
	if e.drained() {
		if m := minTicks - k; m < n {
			n = m
		}
	}
	if e.evIdx < len(e.events) {
		if m := e.events[e.evIdx].tick - k; m < n {
			n = m
		}
	}
	if n < superstepMinSpan {
		e.stats.RejectEvent++
		return false, nil
	}
	// The meter latches the instantaneous power at its sampling instants;
	// land exactly on the next one (same tick arithmetic as TimeS) so it
	// samples a real evaluation.
	next := e.meter.NextSampleAtS()
	kc := int(next / dt)
	for float64(kc)*dt < next {
		kc++
	}
	if m := kc - k; m < n {
		n = m
	}
	if n < superstepMinSpan {
		e.stats.RejectMeter++
		return false, nil
	}
	// Steady-interval classification: a busy chunk must stay fully busy
	// for every jumped tick, with one tick of margin before depletion so
	// sequential floating-point accounting cannot cross zero early.
	var rateCPU, rateGPU, cpuBusy, gpuBusy float64
	if e.app != nil {
		rateCPU, rateGPU = e.rates()
		if e.remCPU > 0 && rateCPU > 0 {
			cpuBusy = 1
			if q := e.remCPU / (rateCPU * dt); q < float64(n)+2 {
				if m := int(q) - 1; m < n {
					n = m
				}
			}
		}
		if e.remGPU > 0 && rateGPU > 0 {
			gpuBusy = 1
			if q := e.remGPU / (rateGPU * dt); q < float64(n)+2 {
				if m := int(q) - 1; m < n {
					n = m
				}
			}
		}
	}
	bigBusy, litBusy := cpuBusy, cpuBusy
	if e.curMap.Big == 0 {
		bigBusy = 0
	}
	if e.curMap.Little == 0 {
		litBusy = 0
	}
	govClamped := false
	if e.govEvery > 0 {
		// Epochs may be crossed only when the policy is a marked pure
		// fixed point AND the utilisations the skipped epochs would see
		// equal the ones the stable epoch saw (frequency changes reset
		// govStable through setFreq).
		cross := e.govPure && e.govStable
		if cross {
			for i := range e.govUtils {
				b := e.utils[i]
				switch i {
				case e.bigIdx:
					b = bigBusy
				case e.litIdx:
					b = litBusy
				case e.gpuIdx:
					b = gpuBusy
				}
				if e.govUtils[i] != b {
					cross = false
					break
				}
			}
		}
		if !cross {
			r := k % e.govEvery
			if r == 0 {
				e.stats.RejectGovernor++
				return false, nil
			}
			if m := e.govEvery - r; m < n {
				n = m
				govClamped = true
			}
		}
	}
	if n < superstepMinSpan {
		// The span died on whichever clamp shrank it last: a governor
		// epoch boundary, or a work chunk about to deplete.
		if govClamped {
			e.stats.RejectGovernor++
		} else {
			e.stats.RejectWork++
		}
		return false, nil
	}
	bigNode := e.nodeOf[e.bigIdx]
	if !e.cfg.DisableHWProtect && e.therm.Temp(bigNode) >= e.plat.TripC {
		// The trip would fire on this tick's protection check.
		e.stats.RejectTMU++
		return false, nil
	}
	// Abort poll, once per jump — the same bound as one tick of the
	// ordinary loop.
	if e.cfg.Done != nil {
		select {
		case <-e.cfg.Done:
			return false, fmt.Errorf("aborted at t=%gs: %w", e.TimeS(), ErrAborted)
		default:
		}
	}
	// Affine power decomposition at the steady operating point: constant
	// injection per node plus a leakage slope folded into the jump map.
	// The decomposition is a pure function of the per-cluster loads and
	// the DRAM traffic, so a fingerprint match against the previous
	// attempt reuses ssInj/ssSlopeCur/ss without touching the power
	// model — the common case inside a long steady stretch.
	memGBs := 0.0
	if e.app != nil {
		memRate := 0.0
		if cpuBusy > 0 {
			memRate += rateCPU * cpuBusy
		}
		if gpuBusy > 0 {
			memRate += rateGPU * gpuBusy
		}
		memGBs = e.app.MemGBs(memRate)
	}
	for i := range e.plat.Clusters {
		l := e.loads[i]
		l.FreqMHz = e.freqs[i]
		l.VoltV = e.volts[i]
		l.TempC = 0 // ignored by the affine form; keep the fingerprint stable
		var busy float64
		switch i {
		case e.bigIdx, e.litIdx:
			busy = cpuBusy
		case e.gpuIdx:
			busy = gpuBusy
		}
		if l.ActiveCores == 0 {
			busy = 0
		}
		l.Utilization = busy
		e.ssLoads[i] = l
	}
	if !e.ssOpValid || memGBs != e.ssOpMemGBs || !equalLoads(e.ssLoads, e.ssOpLoads) {
		for i := range e.ssInj {
			e.ssInj[i] = 0
			e.ssSlopeCur[i] = 0
		}
		for i := range e.plat.Clusters {
			dyn, lkc, lks, err := e.pow.ClusterPowerAffine(i, e.ssLoads[i])
			if err != nil {
				return false, err
			}
			e.ssInj[e.nodeOf[i]] += dyn + lkc
			e.ssSlopeCur[e.nodeOf[i]] += lks
		}
		e.ssInj[e.pkgNode] += memGBs*e.plat.DRAMPowerPerGBs + e.cfg.PkgBaselineFrac*e.plat.BoardBaselineW
		// Bind the jump map for this slope vector, favouring the recency
		// pool so alternating operating points (busy ↔ idle, DVFS ladders)
		// reuse their powered propagators.
		e.ss = nil
		for _, ss := range e.ssPool {
			if equalFloats(ss.Slope(), e.ssSlopeCur) {
				e.ss = ss
				e.stats.PoolHits++
				break
			}
		}
		if e.ss == nil {
			ss, err := thermal.NewSuperstep(e.stepper, e.ssSlopeCur)
			if err != nil {
				// A system the jump map cannot certify as monotone: fall
				// back to fixed ticks for the rest of the run.
				e.ssOff = true
				return false, nil
			}
			e.stats.PoolMisses++
			if len(e.ssPool) >= ssPoolLimit {
				// Fold the evicted map's jump-block cache counters into
				// the flight recorder before it goes unreachable.
				h, m := e.ssPool[0].BlockCacheStats()
				e.stats.JumpBlockHits += h
				e.stats.JumpBlockMisses += m
				copy(e.ssPool, e.ssPool[1:])
				e.ssPool = e.ssPool[:len(e.ssPool)-1]
			}
			//teem:alloc-ok bounded propagator pool (ssPoolLimit entries), filled once per operating point
			e.ssPool = append(e.ssPool, ss)
			e.ss = ss
		}
		copy(e.ssOpLoads, e.ssLoads)
		e.ssOpMemGBs = memGBs
		e.ssOpValid = true
	}
	// The affine leakage form holds only at or above the 25 °C reference;
	// endpoint checks (start here, landing below) bound the monotone
	// interior.
	for i, s := range e.ssSlopeCur {
		if s > 0 && e.therm.Temp(i) < 25 {
			e.stats.RejectLeakage++
			return false, nil
		}
	}
	endTemps, dir, err := e.ss.Jump(n, e.ssInj)
	if err != nil {
		return false, err
	}
	if dir == 0 {
		// Mixed trajectory: endpoint guards would not bound the interior.
		// Skip further attempts across this horizon — near equilibrium the
		// probe stays mixed, and ticking is always correct.
		e.ssSkipUntil = k + n
		e.stats.RejectWork++
		return false, nil
	}
	if !e.cfg.DisableHWProtect && endTemps[bigNode] >= e.plat.TripC {
		// The trip would fire somewhere inside the interval; let fixed
		// ticks find the exact crossing.
		e.stats.RejectTMU++
		return false, nil
	}
	for i, s := range e.ssSlopeCur {
		if s > 0 && endTemps[i] < 25 {
			e.stats.RejectLeakage++
			return false, nil
		}
	}
	if err := e.ss.Commit(); err != nil {
		return false, err
	}
	// A rising interval's peak is its landing state (the interior is
	// bounded by it, componentwise); a falling one cannot beat the
	// pre-jump peak, which a real tick already folded in. This keeps the
	// exact per-node running maxima identical to a fixed-tick run.
	if t := endTemps[bigNode]; t > e.peakBigC {
		e.peakBigC = t
		e.therm.CopyTemps(e.peakTemps)
	}
	if dir > 0 {
		for i := range e.peakC {
			if endTemps[i] > e.peakC[i] {
				e.peakC[i] = endTemps[i]
			}
		}
	}
	// Deplete work with the same per-tick arithmetic advanceWork would
	// have used, so chunk-depletion times stay bit-identical.
	if cpuBusy == 1 {
		for j := 0; j < n; j++ {
			e.remCPU -= rateCPU * dt
		}
	}
	if gpuBusy == 1 {
		for j := 0; j < n; j++ {
			e.remGPU -= rateGPU * dt
		}
	}
	e.utils[e.bigIdx] = bigBusy
	e.utils[e.litIdx] = litBusy
	e.utils[e.gpuIdx] = gpuBusy
	e.timeTicks += n
	e.stats.Supersteps++
	e.stats.SuperstepTicks += int64(n)
	if int64(n) > e.stats.MaxJump {
		e.stats.MaxJump = int64(n)
	}
	return true, nil
}

// equalFloats compares two equal-length float vectors exactly.
func equalFloats(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalLoads compares two equal-length cluster-load vectors exactly.
func equalLoads(a, b []power.ClusterLoad) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
