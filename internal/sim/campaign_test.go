package sim

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func campaignConfig() CampaignConfig {
	return CampaignConfig{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
	}
}

func job(app *workload.App) Job {
	return Job{
		App:  app,
		Map:  mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part: mapping.Partition{Num: 4, Den: 8},
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{}, []Job{job(workload.Covariance())}); err == nil {
		t.Error("campaign without platform should error")
	}
	if _, err := RunCampaign(campaignConfig(), nil); err == nil {
		t.Error("empty campaign should error")
	}
	cc := campaignConfig()
	cc.GapS = -1
	if _, err := RunCampaign(cc, []Job{job(workload.Covariance())}); err == nil {
		t.Error("negative gap should error")
	}
}

// Thermal carry-over: the second identical job starts hotter and so runs
// hotter on average than the first when unmanaged.
func TestCampaignThermalCarryOver(t *testing.T) {
	jobs := []Job{job(workload.Covariance()), job(workload.Covariance())}
	res, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job results", len(res.Jobs))
	}
	if res.Jobs[1].AvgTempC <= res.Jobs[0].AvgTempC {
		t.Errorf("second job avg %.1f should exceed first %.1f (carry-over)",
			res.Jobs[1].AvgTempC, res.Jobs[0].AvgTempC)
	}
	if res.TotalTimeS <= 0 || res.TotalEnergyJ <= 0 {
		t.Error("totals not aggregated")
	}
	if res.PeakTempC < res.Jobs[0].PeakTempC || res.PeakTempC < res.Jobs[1].PeakTempC {
		t.Error("campaign peak below a job peak")
	}
	if len(res.FinalTempsC) != 4 {
		t.Errorf("final temps %v", res.FinalTempsC)
	}
}

// An idle gap between jobs cools the chip: with a long gap the second job
// starts cooler than with no gap.
func TestCampaignGapCools(t *testing.T) {
	jobs := []Job{job(workload.Covariance()), job(workload.Covariance())}

	noGap, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cc := campaignConfig()
	cc.GapS = 60
	gap, err := RunCampaign(cc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if gap.Jobs[1].AvgTempC >= noGap.Jobs[1].AvgTempC {
		t.Errorf("gap run avg %.1f should be cooler than back-to-back %.1f",
			gap.Jobs[1].AvgTempC, noGap.Jobs[1].AvgTempC)
	}
}

// A mixed campaign under TEEM control keeps every job inside the
// regulation band despite the carry-over.
func TestCampaignRegulated(t *testing.T) {
	mk := func(app *workload.App) Job {
		j := job(app)
		j.Governor = &floorGov{}
		return j
	}
	jobs := []Job{mk(workload.Covariance()), mk(workload.Syrk()), mk(workload.Mvt())}
	res, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range res.Jobs {
		if jr.ThrottleEvents != 0 {
			t.Errorf("job %d tripped the TMU under regulation", i)
		}
	}
}

// floorGov is a minimal thermally safe governor for the campaign test:
// it pins the big cluster at 1400 MHz (the TEEM floor) and everything
// else at max, without importing internal/core (import cycle).
type floorGov struct{}

func (floorGov) Name() string     { return "floor" }
func (floorGov) PeriodS() float64 { return 0.5 }
func (floorGov) Start(m Machine) error {
	if err := m.SetClusterFreqMHz("A15", 1400); err != nil {
		return err
	}
	if err := m.SetClusterFreqMHz("A7", 1400); err != nil {
		return err
	}
	return m.SetClusterFreqMHz("MaliT628", 600)
}
func (floorGov) Act(m Machine) error {
	return m.SetClusterFreqMHz("A15", 1400)
}
