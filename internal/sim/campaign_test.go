package sim

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func campaignConfig() CampaignConfig {
	return CampaignConfig{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
	}
}

func job(app *workload.App) Job {
	return Job{
		App:  app,
		Map:  mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part: mapping.Partition{Num: 4, Den: 8},
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{}, []Job{job(workload.Covariance())}); err == nil {
		t.Error("campaign without platform should error")
	}
	if _, err := RunCampaign(campaignConfig(), nil); err == nil {
		t.Error("empty campaign should error")
	}
	cc := campaignConfig()
	cc.GapS = -1
	if _, err := RunCampaign(cc, []Job{job(workload.Covariance())}); err == nil {
		t.Error("negative gap should error")
	}
}

// Thermal carry-over: the second identical job starts hotter and so runs
// hotter on average than the first when unmanaged.
func TestCampaignThermalCarryOver(t *testing.T) {
	jobs := []Job{job(workload.Covariance()), job(workload.Covariance())}
	res, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job results", len(res.Jobs))
	}
	if res.Jobs[1].AvgTempC <= res.Jobs[0].AvgTempC {
		t.Errorf("second job avg %.1f should exceed first %.1f (carry-over)",
			res.Jobs[1].AvgTempC, res.Jobs[0].AvgTempC)
	}
	if res.TotalTimeS <= 0 || res.TotalEnergyJ <= 0 {
		t.Error("totals not aggregated")
	}
	if res.PeakTempC < res.Jobs[0].PeakTempC || res.PeakTempC < res.Jobs[1].PeakTempC {
		t.Error("campaign peak below a job peak")
	}
	if len(res.FinalTempsC) != 4 {
		t.Errorf("final temps %v", res.FinalTempsC)
	}
}

// An idle gap between jobs cools the chip: with a long gap the second job
// starts cooler than with no gap.
func TestCampaignGapCools(t *testing.T) {
	jobs := []Job{job(workload.Covariance()), job(workload.Covariance())}

	noGap, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cc := campaignConfig()
	cc.GapS = 60
	gap, err := RunCampaign(cc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if gap.Jobs[1].AvgTempC >= noGap.Jobs[1].AvgTempC {
		t.Errorf("gap run avg %.1f should be cooler than back-to-back %.1f",
			gap.Jobs[1].AvgTempC, noGap.Jobs[1].AvgTempC)
	}
}

// A mixed campaign under TEEM control keeps every job inside the
// regulation band despite the carry-over.
func TestCampaignRegulated(t *testing.T) {
	mk := func(app *workload.App) Job {
		j := job(app)
		j.Governor = &floorGov{}
		return j
	}
	jobs := []Job{mk(workload.Covariance()), mk(workload.Syrk()), mk(workload.Mvt())}
	res, err := RunCampaign(campaignConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range res.Jobs {
		if jr.ThrottleEvents != 0 {
			t.Errorf("job %d tripped the TMU under regulation", i)
		}
	}
}

// Independent campaigns reject idle gaps: with no carried state there is
// nothing to cool.
func TestCampaignIndependentRejectsGap(t *testing.T) {
	cc := campaignConfig()
	cc.Independent = true
	cc.GapS = 2
	if _, err := RunCampaign(cc, []Job{job(workload.Covariance())}); err == nil {
		t.Error("independent campaign with a gap should error")
	}
}

// Sharing one stateful governor instance across parallel jobs is a data
// race; the scheduler rejects pointer-identical reuse up front. Sharing
// a value-typed (stateless) governor is fine.
func TestCampaignIndependentRejectsSharedGovernor(t *testing.T) {
	cc := campaignConfig()
	cc.Independent = true

	shared := &floorGov2{}
	j1, j2 := job(workload.Covariance()), job(workload.Syrk())
	j1.Governor, j2.Governor = shared, shared
	if _, err := RunCampaign(cc, []Job{j1, j2}); err == nil {
		t.Error("shared pointer governor across independent jobs should error")
	}

	j1.Governor, j2.Governor = &floorGov2{}, &floorGov2{}
	if _, err := RunCampaign(cc, []Job{j1, j2}); err != nil {
		t.Errorf("distinct governor instances should run: %v", err)
	}

	// Value-typed governors are boxed immutably — sharing is safe.
	val := floorGov{}
	j1.Governor, j2.Governor = val, val
	if _, err := RunCampaign(cc, []Job{j1, j2}); err != nil {
		t.Errorf("shared value-typed governor should run: %v", err)
	}
}

// floorGov2 is a pointer-receiver twin of floorGov so the shared-governor
// guard has a stateful-looking instance to reject.
type floorGov2 struct{ acts int }

func (*floorGov2) Name() string     { return "floor2" }
func (*floorGov2) PeriodS() float64 { return 0.5 }
func (g *floorGov2) Start(m Machine) error {
	return floorGov{}.Start(m)
}
func (g *floorGov2) Act(m Machine) error {
	g.acts++
	return m.SetClusterFreqMHz("A15", 1400)
}

// Every independent job starts from the same initial state, so identical
// jobs produce identical results — no carry-over.
func TestCampaignIndependentColdStarts(t *testing.T) {
	cc := campaignConfig()
	cc.Independent = true
	jobs := []Job{job(workload.Covariance()), job(workload.Covariance())}
	res, err := RunCampaign(cc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Jobs[0], res.Jobs[1]
	if a.ExecTimeS != b.ExecTimeS || a.EnergyJ != b.EnergyJ || a.AvgTempC != b.AvgTempC {
		t.Errorf("independent identical jobs differ: (%.3f s, %.1f J, %.2f °C) vs (%.3f s, %.1f J, %.2f °C)",
			a.ExecTimeS, a.EnergyJ, a.AvgTempC, b.ExecTimeS, b.EnergyJ, b.AvgTempC)
	}
	if res.TotalTimeS != a.ExecTimeS+b.ExecTimeS {
		t.Error("totals not aggregated in job order")
	}
}

// The parallel scheduler must be invisible in the results: a 4-worker
// independent campaign matches a 1-worker one exactly, job by job.
func TestCampaignIndependentParallelMatchesSerial(t *testing.T) {
	jobs := []Job{
		job(workload.Covariance()),
		job(workload.Syrk()),
		job(workload.Mvt()),
		job(workload.Covariance()),
	}
	serialCC := campaignConfig()
	serialCC.Independent = true
	serialCC.Workers = 1
	serial, err := RunCampaign(serialCC, jobs)
	if err != nil {
		t.Fatal(err)
	}
	parCC := campaignConfig()
	parCC.Independent = true
	parCC.Workers = 4
	parallel, err := RunCampaign(parCC, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Jobs) != len(parallel.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(serial.Jobs), len(parallel.Jobs))
	}
	for i := range serial.Jobs {
		s, p := serial.Jobs[i], parallel.Jobs[i]
		if s.ExecTimeS != p.ExecTimeS || s.EnergyJ != p.EnergyJ ||
			s.AvgTempC != p.AvgTempC || s.PeakTempC != p.PeakTempC ||
			s.TempVarC2 != p.TempVarC2 || s.FreqTransitions != p.FreqTransitions {
			t.Errorf("job %d differs between serial and parallel scheduling", i)
		}
	}
	if serial.TotalTimeS != parallel.TotalTimeS || serial.TotalEnergyJ != parallel.TotalEnergyJ ||
		serial.PeakTempC != parallel.PeakTempC {
		t.Error("aggregates differ between serial and parallel scheduling")
	}
	if len(serial.FinalTempsC) != len(parallel.FinalTempsC) {
		t.Fatal("final temps length differs")
	}
	for i := range serial.FinalTempsC {
		if serial.FinalTempsC[i] != parallel.FinalTempsC[i] {
			t.Error("final temps differ between serial and parallel scheduling")
			break
		}
	}
}

// floorGov is a minimal thermally safe governor for the campaign test:
// it pins the big cluster at 1400 MHz (the TEEM floor) and everything
// else at max, without importing internal/core (import cycle).
type floorGov struct{}

func (floorGov) Name() string     { return "floor" }
func (floorGov) PeriodS() float64 { return 0.5 }
func (floorGov) Start(m Machine) error {
	if err := m.SetClusterFreqMHz("A15", 1400); err != nil {
		return err
	}
	if err := m.SetClusterFreqMHz("A7", 1400); err != nil {
		return err
	}
	return m.SetClusterFreqMHz("MaliT628", 600)
}
func (floorGov) Act(m Machine) error {
	return m.SetClusterFreqMHz("A15", 1400)
}
