package sim

import (
	"errors"
	"math"
	"testing"

	"teem/internal/mapping"
	"teem/internal/workload"
)

// flatConfig is baseConfig with DVFS and hardware protection disabled:
// work-item rates stay constant, so execution times compose additively
// and the preemption conservation checks below are exact up to tick
// rounding at job handoffs.
func flatConfig() Config {
	cfg := baseConfig()
	cfg.DisableHWProtect = true
	return cfg
}

// soloExecTime runs one app to completion on the flat configuration.
func soloExecTime(t *testing.T, app *workload.App) float64 {
	t.Helper()
	cfg := flatConfig()
	cfg.App = app
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("solo %s run did not complete", app.Name)
	}
	return res.ExecTimeS
}

// A higher-priority arrival suspends the live job mid-run and the
// preempted job later resumes with exactly its remaining work: the
// preemptor finishes first, and both completion times equal the solo
// execution times composed additively (work conservation) up to tick
// rounding at the handoffs.
func TestPriorityPreemptsAndConservesWork(t *testing.T) {
	covSolo := soloExecTime(t, workload.Covariance())
	syrkSolo := soloExecTime(t, workload.Syrk())
	if covSolo < 6 {
		t.Fatalf("COVARIANCE solo run too short (%.2f s) for a t=5 preemption", covSolo)
	}

	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	var preemptID int
	if err := e.ScheduleAt(5, func(e *Engine) error {
		id, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 1)
		preemptID = id
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("preemption run did not complete")
	}
	if len(res.JobFinishes) != 2 {
		t.Fatalf("JobFinishes = %d entries, want 2", len(res.JobFinishes))
	}
	// The preemptor runs to completion first; the preempted job resumes
	// and finishes afterwards.
	if res.JobFinishes[0].App != "SYRK" || res.JobFinishes[1].App != "COVARIANCE" {
		t.Fatalf("finish order %s, %s — want SYRK (preemptor) then COVARIANCE",
			res.JobFinishes[0].App, res.JobFinishes[1].App)
	}
	if res.JobFinishes[0].ID != preemptID {
		t.Errorf("preemptor finished with id %d, want the enqueue handle %d",
			res.JobFinishes[0].ID, preemptID)
	}
	const tol = 0.05 // a few ticks of handoff rounding
	if got, want := res.JobFinishes[0].AtS, 5+syrkSolo; math.Abs(got-want) > tol {
		t.Errorf("SYRK finished at %.3f s, want arrival+solo = %.3f s (work not conserved)", got, want)
	}
	if got, want := res.JobFinishes[1].AtS, covSolo+syrkSolo; math.Abs(got-want) > tol {
		t.Errorf("COVARIANCE finished at %.3f s, want solo+solo = %.3f s — the resumed job did not keep its remaining work intact", got, want)
	}
	if len(res.JobCancels) != 0 {
		t.Errorf("preemption recorded %d cancellations, want 0", len(res.JobCancels))
	}
}

// An equal-priority arrival must NOT preempt: it queues FIFO behind the
// live job exactly like the classic queue.
func TestEqualPriorityQueuesFIFO(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(5, func(e *Engine) error {
		_, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinishes) != 2 ||
		res.JobFinishes[0].App != "COVARIANCE" || res.JobFinishes[1].App != "SYRK" {
		t.Errorf("equal-priority arrival changed the FIFO order: %+v", res.JobFinishes)
	}
}

// A preempted job resumes ahead of later arrivals of its own priority
// class (it keeps its original queue position), and higher-priority
// pending jobs run before lower ones.
func TestResumeOrderWithinPriorityClass(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	// t=5: high-priority preemptor; t=6: another default-priority job.
	if err := e.ScheduleAt(5, func(e *Engine) error {
		_, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 2)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(6, func(e *Engine) error {
		_, err := e.EnqueueAppPriority(workload.Gemm(), mapping.Partition{Num: 4, Den: 8}, 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SYRK", "COVARIANCE", "GEMM"}
	if len(res.JobFinishes) != 3 {
		t.Fatalf("JobFinishes = %d entries, want 3", len(res.JobFinishes))
	}
	for i, w := range want {
		if res.JobFinishes[i].App != w {
			t.Errorf("finish %d = %s, want %s (resume order broken)", i, res.JobFinishes[i].App, w)
		}
	}
}

// Cancelling a queued job removes it before it ever runs: zero work done,
// no finish entry, queue count updated.
func TestCancelQueuedJob(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.QueuedJobs() != 1 {
		t.Fatalf("QueuedJobs = %d, want 1", e.QueuedJobs())
	}
	if err := e.CancelJob(id); err != nil {
		t.Fatal(err)
	}
	if e.QueuedJobs() != 0 {
		t.Fatalf("QueuedJobs after cancel = %d, want 0", e.QueuedJobs())
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinishes) != 1 || res.JobFinishes[0].App != "COVARIANCE" {
		t.Errorf("JobFinishes = %+v, want only COVARIANCE", res.JobFinishes)
	}
	if len(res.JobCancels) != 1 || res.JobCancels[0].App != "SYRK" || res.JobCancels[0].DoneFrac != 0 {
		t.Errorf("JobCancels = %+v, want SYRK with DoneFrac 0", res.JobCancels)
	}
}

// Cancelling the live job mid-run stops it on the spot — charging only
// the work done — and immediately starts the next pending job.
func TestCancelLiveJobStartsSuccessor(t *testing.T) {
	syrkSolo := soloExecTime(t, workload.Syrk())

	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 0); err != nil {
		t.Fatal(err)
	}
	// Job 1 is the configured COVARIANCE; cancel it at t=5.
	if err := e.ScheduleAt(5, func(e *Engine) error { return e.CancelJob(1) }); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete after a live-job cancellation")
	}
	if len(res.JobFinishes) != 1 || res.JobFinishes[0].App != "SYRK" {
		t.Fatalf("JobFinishes = %+v, want only SYRK", res.JobFinishes)
	}
	if len(res.JobCancels) != 1 {
		t.Fatalf("JobCancels = %+v, want one COVARIANCE entry", res.JobCancels)
	}
	c := res.JobCancels[0]
	if c.App != "COVARIANCE" || c.AtS != 5 {
		t.Errorf("cancel entry %+v, want COVARIANCE at t=5", c)
	}
	if c.DoneFrac <= 0 || c.DoneFrac >= 1 {
		t.Errorf("DoneFrac = %g after 5 s of a longer run, want a partial fraction", c.DoneFrac)
	}
	// The successor starts on the cancellation tick: it finishes at
	// cancel time + its solo duration, and the whole run is charged only
	// the cancelled job's 5 s of work.
	const tol = 0.05
	if got, want := res.JobFinishes[0].AtS, 5+syrkSolo; math.Abs(got-want) > tol {
		t.Errorf("successor finished at %.3f s, want %.3f s (cancel should only charge work done)", got, want)
	}
}

// CancelJob distinguishes ids that never existed (error) from jobs that
// already finished (ErrJobNotActive — a tolerated no-op departure).
func TestCancelJobErrors(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CancelJob(99); err == nil || errors.Is(err, ErrJobNotActive) {
		t.Errorf("cancelling a never-issued id: got %v, want a hard error", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelJob(1); !errors.Is(err, ErrJobNotActive) {
		t.Errorf("cancelling a finished job: got %v, want ErrJobNotActive", err)
	}
}

// --- regression: drained-idle runs must report the simulated horizon ---------

// A fully idle run under MinTimeS completes without any job finish; its
// execution time is the horizon it simulated, not the zero value of the
// last-finish bookkeeping.
func TestExecTimeIdleHorizon(t *testing.T) {
	cfg := flatConfig()
	cfg.App = nil
	cfg.MinTimeS = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("idle run did not complete")
	}
	if math.Abs(res.ExecTimeS-cfg.MinTimeS) > 0.02 {
		t.Errorf("idle run ExecTimeS = %g, want the %g s horizon", res.ExecTimeS, cfg.MinTimeS)
	}
}

// A run whose only job departs mid-execution reports the cancellation
// time — work ran (and was charged) until then — not zero and not the
// horizon.
func TestExecTimeAllJobsCancelled(t *testing.T) {
	cfg := flatConfig()
	cfg.App = nil
	cfg.MinTimeS = 3
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var id int
	if err := e.ScheduleAt(0.5, func(e *Engine) error {
		var err error
		id, err = e.EnqueueAppPriority(workload.Covariance(), mapping.Partition{Num: 4, Den: 8}, 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(1.5, func(e *Engine) error { return e.CancelJob(id) }); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete after its only job departed")
	}
	if len(res.JobFinishes) != 0 || len(res.JobCancels) != 1 {
		t.Fatalf("finishes=%v cancels=%v, want 0 finishes and 1 cancel", res.JobFinishes, res.JobCancels)
	}
	if math.Abs(res.ExecTimeS-1.5) > 0.02 {
		t.Errorf("cancelled-job run ExecTimeS = %g, want the 1.5 s cancellation time", res.ExecTimeS)
	}
	// A queue-only run whose job DOES finish keeps reporting the finish
	// time, not the horizon (pinned so the idle fix cannot regress it).
	e2cfg := flatConfig()
	e2cfg.App = nil
	e2cfg.MinTimeS = 120
	e2, err := New(e2cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ScheduleAt(1, func(e *Engine) error {
		return e.EnqueueApp(workload.Covariance(), mapping.Partition{Num: 4, Den: 8})
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.JobFinishes) != 1 {
		t.Fatalf("queue-only run finishes = %v, want 1", res2.JobFinishes)
	}
	if res2.ExecTimeS != res2.JobFinishes[0].AtS {
		t.Errorf("queue-only run ExecTimeS = %g, want the job finish %g", res2.ExecTimeS, res2.JobFinishes[0].AtS)
	}
	if res2.ExecTimeS >= e2cfg.MinTimeS {
		t.Errorf("queue-only run ExecTimeS = %g leaked the %g s horizon", res2.ExecTimeS, e2cfg.MinTimeS)
	}
}

// A cancellation after the last job finish extends ExecTimeS: the engine
// executed (and charged energy for) the cancelled job's work past the
// final completion, so the earlier finish time would under-report the
// run.
func TestExecTimeCoversCancelAfterLastFinish(t *testing.T) {
	cfg := flatConfig()
	cfg.App = workload.Mvt() // finishes first
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var finishAt float64
	var id int
	// A second job arrives well after MVT drains and is cancelled
	// mid-execution at t=40.
	if err := e.ScheduleAt(30, func(e *Engine) error {
		var err error
		id, err = e.EnqueueAppPriority(workload.Covariance(), mapping.Partition{Num: 4, Den: 8}, 0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(40, func(e *Engine) error { return e.CancelJob(id) }); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobFinishes) != 1 || len(res.JobCancels) != 1 {
		t.Fatalf("finishes=%v cancels=%v, want 1 finish + 1 cancel", res.JobFinishes, res.JobCancels)
	}
	finishAt = res.JobFinishes[0].AtS
	if finishAt >= 30 {
		t.Fatalf("MVT finished at %g, expected before the t=30 arrival", finishAt)
	}
	if math.Abs(res.ExecTimeS-40) > 0.02 {
		t.Errorf("ExecTimeS = %g, want the 40 s cancellation time (work ran until then), not the %g s finish",
			res.ExecTimeS, finishAt)
	}
}

// --- regression: popped queue slots must not pin finished apps ---------------

// popNext clears the vacated slot and a drained queue resets its backing
// array: finished *workload.App references must not stay reachable
// through the queue for the rest of the run.
func TestQueuePopClearsSlots(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []*workload.App{workload.Syrk(), workload.Gemm(), workload.Mvt()} {
		if _, err := e.EnqueueAppPriority(app, mapping.Partition{Num: 4, Den: 8}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if e.QueuedJobs() != 3 {
		t.Fatalf("QueuedJobs = %d, want 3", e.QueuedJobs())
	}
	j := e.popNext()
	if j.app == nil || j.app.Name != "SYRK" {
		t.Fatalf("popNext returned %+v, want SYRK", j)
	}
	if e.QueuedJobs() != 2 {
		t.Fatalf("QueuedJobs after pop = %d, want 2", e.QueuedJobs())
	}
	if got := e.queue[e.qHead-1]; got.app != nil {
		t.Errorf("popped slot still references app %q — the backing array pins finished jobs", got.app.Name)
	}
	e.popNext()
	e.popNext()
	if e.QueuedJobs() != 0 {
		t.Fatalf("QueuedJobs after draining = %d, want 0", e.QueuedJobs())
	}
	if len(e.queue) != 0 || e.qHead != 0 {
		t.Errorf("drained queue not reset: len=%d head=%d, want 0/0", len(e.queue), e.qHead)
	}
	for i := 0; i < cap(e.queue) && i < 8; i++ {
		if e.queue[:cap(e.queue)][i].app != nil {
			t.Errorf("backing slot %d still references app %q after drain", i, e.queue[:cap(e.queue)][i].app.Name)
		}
	}
}

// QueuedJobs stays consistent across interleaved enqueue, preemptive
// suspension, cancellation and drain.
func TestQueuedJobsAcrossDrainAndCancel(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	idLow, err := e.EnqueueAppPriority(workload.Gemm(), mapping.Partition{Num: 4, Den: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 3); err != nil {
		t.Fatal(err)
	}
	// SYRK preempted the configured COVARIANCE: the queue now holds the
	// suspended COVARIANCE and the fresh GEMM.
	if e.QueuedJobs() != 2 {
		t.Fatalf("QueuedJobs = %d after a preemption, want 2 (suspended + queued)", e.QueuedJobs())
	}
	if e.app.Name != "SYRK" {
		t.Fatalf("live job %s, want the SYRK preemptor", e.app.Name)
	}
	if err := e.CancelJob(idLow); err != nil {
		t.Fatal(err)
	}
	if e.QueuedJobs() != 1 {
		t.Fatalf("QueuedJobs = %d after cancelling GEMM, want 1", e.QueuedJobs())
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.JobFinishes) != 2 {
		t.Fatalf("completed=%v finishes=%v, want SYRK then resumed COVARIANCE", res.Completed, res.JobFinishes)
	}
	if res.JobFinishes[0].App != "SYRK" || res.JobFinishes[1].App != "COVARIANCE" {
		t.Errorf("finish order %+v", res.JobFinishes)
	}
}

// A suspended job's remaining work is parked verbatim and survives a
// cancellation of its preemptor: resume continues from exactly where the
// preemption cut in.
func TestSuspensionPreservesRemainingWork(t *testing.T) {
	e, err := New(flatConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.govEvery = 0
	e.recEvery = 1 << 30
	for i := 0; i < 300; i++ {
		if _, err := e.tick(0.01); err != nil {
			t.Fatal(err)
		}
		e.timeTicks++
	}
	remCPU, remGPU := e.remCPU, e.remGPU
	if remCPU <= 0 || remGPU <= 0 {
		t.Fatalf("3 s in, rem = (%g, %g); expected work on both sides", remCPU, remGPU)
	}
	if _, err := e.EnqueueAppPriority(workload.Syrk(), mapping.Partition{Num: 4, Den: 8}, 1); err != nil {
		t.Fatal(err)
	}
	sus := e.queue[e.qHead]
	if !sus.suspended || sus.remCPU != remCPU || sus.remGPU != remGPU {
		t.Fatalf("suspended entry %+v, want remaining work (%g, %g) parked verbatim", sus, remCPU, remGPU)
	}
	// Cancel the preemptor: the suspended job resumes with the same rem.
	if err := e.CancelJob(e.curJobID); err != nil {
		t.Fatal(err)
	}
	if e.app == nil || e.app.Name != "COVARIANCE" {
		t.Fatal("preempted job did not resume after its preemptor was cancelled")
	}
	if e.remCPU != remCPU || e.remGPU != remGPU {
		t.Errorf("resumed rem = (%g, %g), want (%g, %g) — work lost or duplicated across suspend/resume",
			e.remCPU, e.remGPU, remCPU, remGPU)
	}
}
