package scenario

import (
	"bytes"
	"strings"
	"testing"

	"teem/internal/sim"
)

// A recorded arrival log compiles to a chronologically ordered scenario:
// arrivals carry priority/deadline, holds become departures, and the
// result passes full validation.
func TestFromTraceCompiles(t *testing.T) {
	tr := &ArrivalTrace{
		Name: "log",
		Records: []TraceRecord{
			{App: "GEMM", AtS: 8, Priority: 1, HoldS: 6},
			{App: "COVARIANCE", AtS: 0, DeadlineS: 120},
			{App: "MVT", AtS: 5, Priority: 2},
		},
	}
	s, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("compiled %d events, want 3 arrivals + 1 departure", len(s.Events))
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].AtS < s.Events[i-1].AtS {
			t.Fatalf("timeline out of order at %d: %g after %g", i, s.Events[i].AtS, s.Events[i-1].AtS)
		}
	}
	var dep *Event
	for i := range s.Events {
		if s.Events[i].Kind == KindDeparture {
			dep = &s.Events[i]
		}
	}
	if dep == nil || dep.App != "GEMM" || dep.AtS != 14 {
		t.Errorf("hold_s did not compile to a GEMM departure at t=14: %+v", dep)
	}
	arr := s.Events[0]
	if arr.App != "COVARIANCE" || arr.DeadlineS != 120 {
		t.Errorf("records not sorted by arrival time or deadline dropped: %+v", arr)
	}
}

func TestFromTraceRejectsBadLogs(t *testing.T) {
	cases := []struct {
		name string
		tr   *ArrivalTrace
	}{
		{"nil", nil},
		{"empty", &ArrivalTrace{Name: "x"}},
		{"unknown app", &ArrivalTrace{Name: "x", Records: []TraceRecord{{App: "NOPE", AtS: 0}}}},
		{"negative hold", &ArrivalTrace{Name: "x", Records: []TraceRecord{{App: "MVT", AtS: 0, HoldS: -1}}}},
		{"negative time", &ArrivalTrace{Name: "x", Records: []TraceRecord{{App: "MVT", AtS: -2}}}},
	}
	for _, c := range cases {
		if _, err := FromTrace(c.tr); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// The JSON arrival-log round trip: LoadTrace reads what Save wrote, and
// the strict decoder flags typos.
func TestArrivalTraceJSONRoundTrip(t *testing.T) {
	tr := &ArrivalTrace{
		Name: "log",
		Records: []TraceRecord{
			{App: "COVARIANCE", AtS: 0},
			{App: "MVT", AtS: 5, Priority: 2, DeadlineS: 40, HoldS: 10},
		},
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Records) != 2 || got.Records[1].HoldS != 10 {
		t.Errorf("round trip mangled the log: %+v", got)
	}
	if _, err := LoadTrace(strings.NewReader(`{"name":"x","records":[],"bogus":1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := FromTrace(got); err != nil {
		t.Errorf("round-tripped log does not compile: %v", err)
	}
}

// End to end: the replayed log runs deterministically, the held tenant
// departs (cancelling its unfinished work), the high-priority burst
// preempts, and the surviving jobs drain.
func TestReplayRunEndToEnd(t *testing.T) {
	r, err := Run(ReplaySample(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Completed {
		t.Fatal("replay did not complete")
	}
	if !r.Passed() {
		t.Fatalf("replay violated assertions: %v", r.Violations)
	}
	// GEMM held for 6 s of a much longer job: it must appear as a
	// cancellation, not a finish.
	for _, jf := range r.Sim.JobFinishes {
		if jf.App == "GEMM" {
			t.Errorf("held tenant GEMM finished at %g despite departing at t=14", jf.AtS)
		}
	}
	found := false
	for _, c := range r.Sim.JobCancels {
		if c.App == "GEMM" {
			found = true
			if c.DoneFrac <= 0 || c.DoneFrac >= 1 {
				t.Errorf("departed GEMM DoneFrac = %g, want a partial fraction", c.DoneFrac)
			}
		}
	}
	if !found {
		t.Error("held tenant GEMM was not cancelled")
	}
	// The prio-2 MVT burst preempts everything below it: it finishes
	// before the background COVARIANCE it interrupted.
	var mvtAt, covAt float64
	for _, jf := range r.Sim.JobFinishes {
		switch jf.App {
		case "MVT":
			mvtAt = jf.AtS
		case "COVARIANCE":
			covAt = jf.AtS
		}
	}
	if mvtAt == 0 || covAt == 0 || mvtAt >= covAt {
		t.Errorf("burst MVT finished at %g vs background COVARIANCE at %g — preemption not replayed", mvtAt, covAt)
	}
}

// A missed deadline is a violation; a departed job's deadline is exempt.
func TestDeadlineViolations(t *testing.T) {
	// COVARIANCE cannot finish in 1 s.
	late, err := New("late").
		ArriveJob(0, "COVARIANCE", nil, 0, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(late, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed() {
		t.Error("missed deadline not recorded as a violation")
	}
	// The same impossible deadline is exempt when the tenant departs
	// before it would have mattered.
	gone, err := New("gone").
		ArriveJob(0, "COVARIANCE", nil, 0, 1).
		ArriveDefault(0, "MVT").
		Depart(0.5, "COVARIANCE").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(gone, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Passed() {
		t.Errorf("departed job's deadline still violated: %v", r2.Violations)
	}
	// A generous deadline passes.
	fine, err := New("fine").
		ArriveJob(0, "COVARIANCE", nil, 0, 300).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(fine, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Passed() {
		t.Errorf("met deadline flagged: %v", r3.Violations)
	}
}

// A departure of an app whose job already finished is a tolerated no-op;
// a departure with no submitted job at all is flagged.
func TestDepartureEdgeCases(t *testing.T) {
	// MVT finishes long before t=200; the departure is a no-op.
	s, err := New("late-leave").
		ArriveDefault(0, "MVT").
		Depart(200, "MVT").
		Horizon(201).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("departure after natural completion flagged: %v", r.Violations)
	}
	if len(r.Sim.JobCancels) != 0 {
		t.Errorf("no-op departure cancelled something: %+v", r.Sim.JobCancels)
	}
	// Validation rejects a departure with no matching earlier arrival.
	if _, err := New("orphan").
		ArriveDefault(5, "MVT").
		Depart(2, "MVT").
		Build(); err == nil {
		t.Error("departure before any arrival of its app accepted")
	}
	if _, err := New("no-app").
		ArriveDefault(0, "MVT").
		Depart(2, "GEMM").
		Build(); err == nil {
		t.Error("departure of a never-submitted app accepted")
	}
	// Same-tick pairs follow event-list order (stable sort = dispatch
	// order): departure listed before its same-time arrival would
	// dispatch first and find nothing, so validation rejects it, while
	// arrival-then-departure on one tick is fine.
	if _, err := New("dep-first").
		Depart(5, "MVT").
		ArriveDefault(5, "MVT").
		Build(); err == nil {
		t.Error("same-tick departure listed before its arrival accepted")
	}
	if _, err := New("arr-first").
		ArriveDefault(5, "MVT").
		Depart(5, "MVT").
		Build(); err != nil {
		t.Errorf("same-tick arrival-then-departure rejected: %v", err)
	}
	// A surplus departure can never resolve: two departures of one
	// submission are an authoring error caught statically, not a
	// runtime violation on whichever departure fires second.
	if _, err := New("double-leave").
		ArriveDefault(0, "MVT").
		Depart(200, "MVT").
		Depart(201, "MVT").
		Horizon(202).
		Build(); err == nil {
		t.Error("two departures of a single submission accepted")
	}
}

// A departure targets the oldest *still-pending* submission of its app:
// when an earlier same-app job already finished, the departure must fall
// through to the later, live one instead of silently no-opping on the
// drained id.
func TestDepartureSkipsFinishedSubmission(t *testing.T) {
	s, err := New("re-entrant").
		ArriveDefault(0, "MVT").
		ArriveDefault(30, "MVT"). // second tenant of the same app
		Depart(35, "MVT").        // ...leaves 5 s in
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if len(r.Sim.JobFinishes) != 1 {
		t.Fatalf("finishes = %v, want only the first MVT", r.Sim.JobFinishes)
	}
	if r.Sim.JobFinishes[0].AtS >= 30 {
		t.Fatalf("first MVT finished at %g, expected before the second arrival (test premise broken)",
			r.Sim.JobFinishes[0].AtS)
	}
	if len(r.Sim.JobCancels) != 1 || r.Sim.JobCancels[0].AtS != 35 {
		t.Errorf("cancels = %+v — the departure no-opped on the finished first submission instead of dropping the live second one",
			r.Sim.JobCancels)
	}
}

// Regression: two same-app tenants with overlapping, non-FIFO holds must
// each cancel their own submission. The long-hold tenant arrives first;
// the short-hold tenant arrives second and leaves while both are in the
// system — its departure must drop the second submission (still queued,
// zero work done), not the older live one.
func TestReplayOverlappingHoldsCancelTheRecordedTenant(t *testing.T) {
	s, err := FromTrace(&ArrivalTrace{
		Name: "overlap",
		Records: []TraceRecord{
			{App: "GEMM", AtS: 0, HoldS: 100},
			{App: "GEMM", AtS: 10, HoldS: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("violations: %v", r.Violations)
	}
	// Tenant 1 (id 1) finishes well before its 100 s hold; tenant 2
	// (id 2) is cancelled at t=15 having never run.
	if len(r.Sim.JobFinishes) != 1 || r.Sim.JobFinishes[0].ID != 1 {
		t.Fatalf("finishes = %+v, want only the first tenant (id 1)", r.Sim.JobFinishes)
	}
	if len(r.Sim.JobCancels) != 1 {
		t.Fatalf("cancels = %+v, want exactly the short-hold tenant", r.Sim.JobCancels)
	}
	c := r.Sim.JobCancels[0]
	if c.ID != 2 || c.AtS != 15 {
		t.Errorf("cancel = %+v — the t=15 departure dropped the wrong tenant's job", c)
	}
	if c.DoneFrac != 0 {
		t.Errorf("queued second tenant cancelled with DoneFrac %g, want 0 (it never ran)", c.DoneFrac)
	}
}

// A job cancelled only *after* its deadline already passed still missed
// it: the departure exemption applies to tenants that left in time, not
// to late drops.
func TestDeadlineMissBeforeLateDeparture(t *testing.T) {
	s, err := New("late-drop").
		ArriveJob(0, "COVARIANCE", nil, 0, 1). // impossible 1 s deadline
		ArriveDefault(0, "MVT").
		Depart(5, "COVARIANCE"). // departs 4 s after the deadline passed
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed() {
		t.Error("deadline missed at t=1 hidden by the t=5 departure")
	}
}

// The preemption corpus is deterministic: byte-identical serial vs
// parallel grid output under both integrators — the acceptance gate for
// the preemptive queue.
func TestPreemptionGridDeterminismBothIntegrators(t *testing.T) {
	scs := []*Scenario{PreemptStorm(), MultiTenantChurn(), ReplaySample()}
	govs := []string{"ondemand", "teem"}
	for _, integ := range []sim.Integrator{sim.IntegratorExact, sim.IntegratorEuler} {
		rc := quickConfig()
		rc.Integrator = integ
		serial, err := RunGrid(scs, govs, rc, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunGrid(scs, govs, rc, 8)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Render() != parallel.Render() {
			t.Errorf("integrator %d: parallel preemption grid differs from serial", integ)
		}
		for si := range serial.Cells {
			for gi := range serial.Cells[si] {
				a, b := serial.Cells[si][gi], parallel.Cells[si][gi]
				if a.Sim.EnergyJ != b.Sim.EnergyJ || a.Sim.ExecTimeS != b.Sim.ExecTimeS ||
					a.Sim.PeakTempC != b.Sim.PeakTempC {
					t.Errorf("integrator %d: cell %s/%s metrics differ between serial and parallel",
						integ, a.Scenario, a.Governor)
				}
				if len(a.Sim.JobCancels) != len(b.Sim.JobCancels) {
					t.Errorf("cell %s/%s cancellation lists differ", a.Scenario, a.Governor)
				}
			}
		}
	}
}

// The nested preemption stack of the storm preset unwinds in priority
// order: SYRK (prio 3) first, then the suspended MVT (prio 2), then the
// second MVT burst (same class, FIFO behind the first), and the
// twice-suspended background COVARIANCE drains last.
func TestPreemptStormUnwindsInPriorityOrder(t *testing.T) {
	r, err := Run(PreemptStorm(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Completed || !r.Passed() {
		t.Fatalf("storm: completed=%v violations=%v", r.Sim.Completed, r.Violations)
	}
	jf := r.Sim.JobFinishes
	if len(jf) != 4 {
		t.Fatalf("JobFinishes = %d entries, want 4", len(jf))
	}
	want := []string{"SYRK", "MVT", "MVT", "COVARIANCE"}
	for i, w := range want {
		if jf[i].App != w {
			t.Fatalf("finish order %v, want %v", names(jf), want)
		}
	}
}

func names(jf []sim.JobFinish) []string {
	out := make([]string, len(jf))
	for i := range jf {
		out[i] = jf[i].App
	}
	return out
}
