package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"teem/internal/mapping"
)

// Trace-driven arrival replay: a recorded arrival log — who arrived when,
// at what priority, with what deadline, and how long the tenant stayed —
// compiles into an ordinary deterministic Scenario, so measured device
// traces run through the same engine, grids and CI gates as hand-authored
// timelines.
//
// The log JSON is one object:
//
//	{
//	  "name": "tuesday-afternoon",
//	  "map": {"Big": 4, "Little": 2, "UseGPU": true},
//	  "governor": "ondemand",
//	  "records": [
//	    {"app": "COVARIANCE", "at_s": 0},
//	    {"app": "MVT", "at_s": 6, "priority": 2, "deadline_s": 30},
//	    {"app": "GEMM", "at_s": 9, "hold_s": 8}
//	  ]
//	}
//
// A record with hold_s leaves (departs, cancelling any unfinished work)
// that many seconds after arriving; one with deadline_s must finish
// within that many seconds of arriving or the replay records a violation.

// TraceRecord is one recorded arrival.
type TraceRecord struct {
	// App is the workload-catalog application name.
	App string `json:"app"`
	// AtS is the recorded arrival time in seconds.
	AtS float64 `json:"at_s"`
	// Priority is the job's scheduling class (higher preempts lower).
	Priority int `json:"priority,omitempty"`
	// DeadlineS, when positive, bounds the job's completion to that many
	// seconds after arrival.
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// HoldS, when positive, is how long the tenant stayed: the job
	// departs (cancelling unfinished work) at AtS+HoldS.
	HoldS float64 `json:"hold_s,omitempty"`
	// Part overrides the mapping's natural work-item split.
	Part *mapping.Partition `json:"part,omitempty"`
}

// ArrivalTrace is a recorded arrival log plus the platform context it
// was captured under.
type ArrivalTrace struct {
	// Name identifies the replay scenario built from the log.
	Name string `json:"name"`
	// Map is the initial CPU/GPU mapping (default: 2L+4B+GPU).
	Map *mapping.Mapping `json:"map,omitempty"`
	// Governor is the initial DVFS policy name (grid runs override it).
	Governor string `json:"governor,omitempty"`
	// HorizonS keeps the replay alive until this time even when the
	// queue drains early (0: until the last event and job).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Records is the arrival log; it is sorted by time at compile.
	Records []TraceRecord `json:"records"`
}

// LoadTrace reads an arrival log from JSON (strict fields, no
// validation beyond decoding — FromTrace validates the compiled result).
func LoadTrace(r io.Reader) (*ArrivalTrace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr ArrivalTrace
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("scenario: decoding arrival trace: %w", err)
	}
	return &tr, nil
}

// Save writes the arrival log as indented JSON.
func (tr *ArrivalTrace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// FromTrace compiles a recorded arrival log into a deterministic,
// validated Scenario: each record becomes an arrival event (priority,
// deadline and partition carried over) and each positive hold becomes the
// matching departure. The compiled scenario requires completion of the
// surviving work, so replays slot straight into grids and the CI gate.
func FromTrace(tr *ArrivalTrace) (*Scenario, error) {
	if tr == nil {
		return nil, errors.New("scenario: nil arrival trace")
	}
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("scenario: arrival trace %q has no records", tr.Name)
	}
	m := mapping.Mapping{Big: 4, Little: 2, UseGPU: true}
	if tr.Map != nil {
		m = *tr.Map
	}
	s := &Scenario{
		Name:     tr.Name,
		Map:      m,
		Governor: tr.Governor,
		HorizonS: tr.HorizonS,
		Final:    []FinalCheck{{Completed: true}},
	}
	recs := append([]TraceRecord(nil), tr.Records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].AtS < recs[j].AtS })
	for i := range recs {
		r := &recs[i]
		if r.HoldS < 0 {
			return nil, fmt.Errorf("scenario: arrival trace %q: record %d has a negative hold", tr.Name, i)
		}
		// A held record's departure is bound to this exact submission
		// by a job tag: overlapping same-app tenants with non-FIFO
		// holds must cancel the recorded instance, not whichever
		// same-name job is oldest when the hold expires.
		job := ""
		if r.HoldS > 0 {
			job = fmt.Sprintf("t%d", i)
		}
		s.Events = append(s.Events, Event{
			AtS: r.AtS, Kind: KindArrival, App: r.App,
			Part: r.Part, Priority: r.Priority, DeadlineS: r.DeadlineS, Job: job,
		})
		if r.HoldS > 0 {
			s.Events = append(s.Events, Event{AtS: r.AtS + r.HoldS, Kind: KindDeparture, App: r.App, Job: job})
		}
	}
	// Departures were interleaved by record; restore global time order so
	// the timeline reads (and replays) chronologically.
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtS < s.Events[j].AtS })
	if err := s.Validate(nil); err != nil {
		return nil, fmt.Errorf("scenario: compiling arrival trace %q: %w", tr.Name, err)
	}
	return s, nil
}
