package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// Load reads one scenario from JSON and validates it against the stock
// governor registry. Scenarios using custom governors should be decoded
// manually and validated with Scenario.Validate(extra).
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding JSON: %w", err)
	}
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
