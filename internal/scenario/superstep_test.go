package scenario

import (
	"math"
	"testing"
)

// Corpus-wide integrator-agreement gate (docs/integrators.md): every
// preset, under both a util-only baseline and the sensor-driven TEEM
// policy, must produce the same scheduling decisions, the same meter
// energy to machine precision, and temperatures within floating-point
// rounding whether steady intervals are superstepped or ticked. The
// trace legitimately coarsens inside jumps, so trace-derived thermal
// aggregates are held to the documented 0.01 °C bound instead.
func TestSuperstepPresetCorpusAgreement(t *testing.T) {
	for _, sc := range Presets() {
		for _, gov := range []string{"ondemand", "teem"} {
			t.Run(sc.Name+"/"+gov, func(t *testing.T) {
				rJ, err := Run(sc, Config{Governor: gov})
				if err != nil {
					t.Fatal(err)
				}
				rF, err := Run(sc, Config{Governor: gov, DisableSuperstep: true})
				if err != nil {
					t.Fatal(err)
				}
				sJ, sF := rJ.Sim, rF.Sim
				if sJ.Completed != sF.Completed {
					t.Errorf("Completed: superstep %v vs fixed %v", sJ.Completed, sF.Completed)
				}
				if sJ.ExecTimeS != sF.ExecTimeS {
					t.Errorf("ExecTimeS: superstep %g vs fixed %g", sJ.ExecTimeS, sF.ExecTimeS)
				}
				// The energy-accounting regression gate: superstep jumps are
				// capped at meter sampling instants, so the sampled waveform
				// — and with it the integrated energy — is identical.
				if sJ.EnergyJ != sF.EnergyJ {
					t.Errorf("EnergyJ: superstep %.15g vs fixed %.15g", sJ.EnergyJ, sF.EnergyJ)
				}
				if sJ.AvgPowerW != sF.AvgPowerW {
					t.Errorf("AvgPowerW: superstep %.15g vs fixed %.15g", sJ.AvgPowerW, sF.AvgPowerW)
				}
				if sJ.FreqTransitions != sF.FreqTransitions {
					t.Errorf("FreqTransitions: superstep %d vs fixed %d", sJ.FreqTransitions, sF.FreqTransitions)
				}
				if sJ.ThrottleEvents != sF.ThrottleEvents {
					t.Errorf("ThrottleEvents: superstep %d vs fixed %d", sJ.ThrottleEvents, sF.ThrottleEvents)
				}
				if len(sJ.JobFinishes) != len(sF.JobFinishes) {
					t.Fatalf("JobFinishes: superstep %d vs fixed %d", len(sJ.JobFinishes), len(sF.JobFinishes))
				}
				for i := range sJ.JobFinishes {
					if sJ.JobFinishes[i] != sF.JobFinishes[i] {
						t.Errorf("JobFinishes[%d]: superstep %+v vs fixed %+v", i, sJ.JobFinishes[i], sF.JobFinishes[i])
					}
				}
				if d := math.Abs(sJ.PeakTempC - sF.PeakTempC); d > 1e-9 {
					t.Errorf("PeakTempC: |Δ|=%.3g beyond rounding", d)
				}
				if d := math.Abs(sJ.AvgTempC - sF.AvgTempC); d > 0.01 {
					t.Errorf("AvgTempC: superstep %.6g vs fixed %.6g (|Δ|=%.3g > 0.01)", sJ.AvgTempC, sF.AvgTempC, d)
				}
				if !rJ.Passed() || !rF.Passed() {
					t.Errorf("assertion outcomes differ or fail: superstep %v fixed %v", rJ.Violations, rF.Violations)
				}
			})
		}
	}
}
