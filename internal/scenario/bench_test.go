package scenario

import (
	"testing"

	"teem/internal/platform"
)

// BenchmarkScenarioRun executes the rush-hour combination scenario
// (multi-app arrivals, ambient step, governor switch) end to end — the
// scenario engine's entry in the BENCH_<date>.json perf trajectory.
func BenchmarkScenarioRun(b *testing.B) {
	sc := RushHour()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(sc, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Sim.Completed {
			b.Fatal("scenario did not complete")
		}
	}
}

// BenchmarkScenarioPreempt executes the preempt-storm preset — nested
// priority preemptions with suspend/resume through the job queue — the
// preemptive scheduler's entry in the BENCH_<date>.json perf trajectory.
func BenchmarkScenarioPreempt(b *testing.B) {
	sc := PreemptStorm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(sc, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Sim.Completed {
			b.Fatal("preempt-storm did not complete")
		}
	}
}

// BenchmarkScenarioGrid measures the scenario × governor fan-out across
// the worker pool (presets × stock governors).
func BenchmarkScenarioGrid(b *testing.B) {
	scs := Presets()
	govs := []string{"ondemand", "teem"}
	for i := 0; i < b.N; i++ {
		g, err := RunGrid(scs, govs, Config{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if g.Violations() != 0 {
			b.Fatal("preset grid violated assertions")
		}
	}
}

// BenchmarkScenarioGridPlatforms measures the full three-axis fan-out —
// platform × scenario × governor — across the worker pool: every catalog
// platform running the sunlight and core-loss presets under the ondemand
// baseline and the TEEM controller. The hardware axis's entry in the
// BENCH_<date>.json perf trajectory.
func BenchmarkScenarioGridPlatforms(b *testing.B) {
	plats := platform.Names()
	scs := []*Scenario{Sunlight(), CoreLoss()}
	govs := []string{"ondemand", "teem"}
	for i := 0; i < b.N; i++ {
		g, err := RunPlatformGrid(plats, scs, govs, Config{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if g.Violations() != 0 {
			b.Fatal("platform grid violated assertions")
		}
	}
}

// BenchmarkScenarioReplaySparse measures the event-horizon superstep
// path on its canonical workload: the sparse-replay trace, where four
// short jobs punctuate a ten-minute horizon of idle. Nearly every tick
// lies in a provably steady interval, so the engine jumps them in
// precomputed propagator applications (see docs/integrators.md). Pairs
// with BenchmarkScenarioReplaySparseFixed for the speedup ratio tracked
// in BENCH_<date>.json.
func BenchmarkScenarioReplaySparse(b *testing.B) {
	sc := SparseReplay()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(sc, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Sim.Completed {
			b.Fatal("sparse replay did not complete")
		}
	}
}

// BenchmarkScenarioReplaySparseFixed runs the same sparse-replay trace
// with supersteps disabled — the per-tick baseline the superstep path is
// measured against.
func BenchmarkScenarioReplaySparseFixed(b *testing.B) {
	sc := SparseReplay()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(sc, Config{DisableSuperstep: true})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Sim.Completed {
			b.Fatal("sparse replay did not complete")
		}
	}
}
