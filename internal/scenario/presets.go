package scenario

import "teem/internal/mapping"

// Sunlight is the paper's online-adaptation situation: COVARIANCE starts
// at t=0 and the device moves into direct sunlight at t=12 s — the
// ambient ramps 28 → 43 °C over five seconds. A fixed offline design
// point sails into hardware throttling; an online manager re-regulates.
func Sunlight() *Scenario {
	s, err := New("sunlight").
		ArriveDefault(0, "COVARIANCE").
		AmbientRamp(12, 5, 43).
		Horizon(30).
		AssertPeakBelow("A15", 97).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err) // presets are compile-time constants; unreachable
	}
	return s
}

// RushHour is the multi-app stress test: three applications arrive
// back-to-back and overlapping (GEMM lands while COVARIANCE still runs
// and queues behind it), the ambient steps up mid-run, and the platform
// policy is switched while work is in flight — the ≥3-event-kind
// combination scenario.
func RushHour() *Scenario {
	s, err := New("rush-hour").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(5, "GEMM").
		ArriveDefault(60, "SYRK").
		AmbientStep(20, 38).
		SwitchGovernor(40, "conservative").
		AssertTempBelow(19, "A15", 99).
		AssertPeakBelow("A15", 99).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// CoreLoss models a co-tenant stealing compute mid-run: the mapping
// shrinks from 4 big cores to 1 at t=10 s and the remaining work is
// repartitioned toward the GPU at t=12 s.
func CoreLoss() *Scenario {
	s, err := New("core-loss").
		Arrive(0, "COVARIANCE", mapping.Partition{Num: 4, Den: 8}).
		SwitchMapping(10, mapping.Mapping{Big: 1, Little: 2, UseGPU: true}).
		SwitchPartition(12, mapping.Partition{Num: 2, Den: 8}).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Presets returns the built-in scenario corpus in stable order.
func Presets() []*Scenario {
	return []*Scenario{Sunlight(), RushHour(), CoreLoss()}
}

// PresetByName resolves a preset ("sunlight", "rush-hour", "core-loss").
func PresetByName(name string) *Scenario {
	for _, s := range Presets() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
