package scenario

import "teem/internal/mapping"

// Sunlight is the paper's online-adaptation situation: COVARIANCE starts
// at t=0 and the device moves into direct sunlight at t=12 s — the
// ambient ramps 28 → 43 °C over five seconds. A fixed offline design
// point sails into hardware throttling; an online manager re-regulates.
func Sunlight() *Scenario {
	s, err := New("sunlight").
		ArriveDefault(0, "COVARIANCE").
		AmbientRamp(12, 5, 43).
		Horizon(30).
		AssertPeakBelow(NodeBig, 97).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err) // presets are compile-time constants; unreachable
	}
	return s
}

// RushHour is the multi-app stress test: three applications arrive
// back-to-back and overlapping (GEMM lands while COVARIANCE still runs
// and queues behind it), the ambient steps up mid-run, and the platform
// policy is switched while work is in flight — the ≥3-event-kind
// combination scenario.
func RushHour() *Scenario {
	s, err := New("rush-hour").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(5, "GEMM").
		ArriveDefault(60, "SYRK").
		AmbientStep(20, 38).
		SwitchGovernor(40, "conservative").
		AssertTempBelow(19, NodeBig, 99).
		AssertPeakBelow(NodeBig, 99).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// CoreLoss models a co-tenant stealing compute mid-run: the mapping
// shrinks from 4 big cores to 1 at t=10 s and the remaining work is
// repartitioned toward the GPU at t=12 s.
func CoreLoss() *Scenario {
	s, err := New("core-loss").
		Arrive(0, "COVARIANCE", mapping.Partition{Num: 4, Den: 8}).
		SwitchMapping(10, mapping.Mapping{Big: 1, Little: 2, UseGPU: true}).
		SwitchPartition(12, mapping.Partition{Num: 2, Den: 8}).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// PreemptStorm is the bursty-preemption stress test: a long
// default-priority COVARIANCE carries the session while short
// higher-priority jobs land on top of it — MVT (prio 2) preempts
// COVARIANCE, then SYRK (prio 3) preempts MVT while it runs (nested
// preemption), and a second MVT burst arrives after the stack unwinds.
// Every suspended job must resume with its remaining work intact and the
// whole pile must drain.
func PreemptStorm() *Scenario {
	s, err := New("preempt-storm").
		ArriveDefault(0, "COVARIANCE").
		ArrivePriority(6, "MVT", 2).
		ArrivePriority(10, "SYRK", 3).
		ArrivePriority(40, "MVT", 2).
		AssertPeakBelow(NodeBig, 99).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// MultiTenantChurn models tenants sharing one chip: a background tenant
// (COVARIANCE) is preempted by a higher-priority GEMM that departs
// mid-run (cancelling its unfinished work), a co-tenant steals two big
// cores while COVARIANCE is live again, and SYRK preempts once more
// before the cores come back — arrivals, departures, priorities and
// mapping churn in one timeline.
func MultiTenantChurn() *Scenario {
	s, err := New("tenant-churn").
		ArriveDefault(0, "COVARIANCE").
		ArrivePriority(4, "GEMM", 1).
		Depart(10, "GEMM").
		SwitchMapping(12, mapping.Mapping{Big: 2, Little: 2, UseGPU: true}).
		ArrivePriority(18, "SYRK", 1).
		SwitchMapping(30, mapping.Mapping{Big: 4, Little: 2, UseGPU: true}).
		AssertPeakBelow(NodeBig, 99).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	return s
}

// ReplaySample is the trace-driven member of the corpus: a small recorded
// arrival log — priority bursts, a top-priority tenant that leaves after
// six seconds with its job half done — compiled through FromTrace exactly
// like a measured device trace fed to `teemscenario -replay`.
func ReplaySample() *Scenario {
	s, err := FromTrace(&ArrivalTrace{
		Name: "replay-sample",
		Records: []TraceRecord{
			{App: "COVARIANCE", AtS: 0},
			{App: "MVT", AtS: 5, Priority: 2},
			{App: "GEMM", AtS: 8, Priority: 3, HoldS: 6},
			{App: "SYRK", AtS: 45},
		},
	})
	if err != nil {
		panic(err)
	}
	return s
}

// SparseReplay is the duty-cycled trace of the corpus: four short jobs
// spread over a ten-minute horizon, so the device idles for minutes
// between arrivals. It is the canonical workload for the event-horizon
// superstep path (see docs/integrators.md) — almost every tick sits in a
// provably steady interval — and the fixture behind
// BenchmarkScenarioReplaySparse.
func SparseReplay() *Scenario {
	s, err := FromTrace(&ArrivalTrace{
		Name:     "sparse-replay",
		HorizonS: 600,
		Records: []TraceRecord{
			{App: "COVARIANCE", AtS: 0},
			{App: "MVT", AtS: 120},
			{App: "GEMM", AtS: 300, Priority: 1},
			{App: "SYRK", AtS: 480},
		},
	})
	if err != nil {
		panic(err)
	}
	return s
}

// Presets returns the built-in scenario corpus in stable order.
func Presets() []*Scenario {
	return []*Scenario{
		Sunlight(), RushHour(), CoreLoss(),
		PreemptStorm(), MultiTenantChurn(), ReplaySample(),
		SparseReplay(),
	}
}

// PresetByName resolves a preset ("sunlight", "rush-hour", "core-loss",
// "preempt-storm", "tenant-churn", "replay-sample", "sparse-replay").
func PresetByName(name string) *Scenario {
	for _, s := range Presets() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
