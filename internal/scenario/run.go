package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"teem/internal/core"
	"teem/internal/governor"
	"teem/internal/par"
	"teem/internal/platform"
	"teem/internal/report"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/trace"
	"teem/internal/workload"
)

// GovernorFactory builds a fresh governor instance per run — governors are
// stateful, so grid cells never share one.
type GovernorFactory func() sim.Governor

// builtinGovernors is the stock policy registry: the Linux baselines plus
// the TEEM controller at paper parameters.
func builtinGovernors() map[string]GovernorFactory {
	return map[string]GovernorFactory{
		"ondemand":     func() sim.Governor { return governor.NewOndemand() },
		"conservative": func() sim.Governor { return governor.NewConservative() },
		"performance":  func() sim.Governor { return governor.Performance{} },
		"powersave":    func() sim.Governor { return governor.Powersave{} },
		"teem":         func() sim.Governor { return core.NewController(core.DefaultParams()) },
	}
}

// GovernorNames lists the stock registry in stable order.
func GovernorNames() []string {
	return []string{"ondemand", "conservative", "performance", "powersave", "teem"}
}

// Config parameterises scenario execution. The zero value runs on the
// default catalog platform (the Exynos 5422) with the exact integrator.
type Config struct {
	// PlatformName selects the hardware by catalog name or bundle-file
	// path (platform.Resolve). It is mutually exclusive with the explicit
	// Platform/Net pair below; when all three are empty the default
	// catalog platform runs.
	PlatformName string
	// Platform and Net override the hardware explicitly. They must be
	// set together — a half-specified pair is rejected rather than
	// silently completed with a preset that may not match.
	Platform *soc.Platform
	Net      *thermal.Network
	// Governor overrides the scenario's initial policy (grid columns).
	Governor string
	// Governors adds custom policies to the registry by name.
	Governors map[string]GovernorFactory
	// TickS and MaxTimeS default like sim.Config (MaxTimeS is raised to
	// cover the scenario horizon when needed).
	TickS    float64
	MaxTimeS float64
	// Integrator selects the thermal stepping scheme.
	Integrator sim.Integrator
	// DisableSuperstep forces the classic tick-by-tick loop instead of
	// the event-horizon fast path (see sim.Config.DisableSuperstep) —
	// mainly for reference timings and debugging; results agree to
	// floating-point rounding either way.
	DisableSuperstep bool
	// InitialTempsC presets the chip state (default: ambient).
	InitialTempsC []float64
	// OnSample, when non-nil, receives every trace sample as the engine
	// records it (the sim trace-subscriber hook) — live telemetry
	// instead of a post-hoc trace copy. In a grid run the hook fires
	// for every cell, possibly from concurrent worker goroutines.
	OnSample func(s trace.Sample)
	// OnCell, when non-nil, is invoked by RunGrid/RunGridCtx once per
	// completed cell, from the worker goroutine that ran it (calls may
	// be concurrent) — the grid progress hook.
	OnCell func(r *Result)
	// Clock, when non-nil, enables per-phase wall timing in the engine
	// flight recorder (see sim.Config.Clock; pass obs.Nanotime). Nil
	// keeps the hot loop free of clock reads.
	Clock func() int64
}

// Result is one executed scenario × governor cell.
type Result struct {
	// Scenario and Governor identify the cell; Platform names the
	// hardware it ran on (catalog name, bundle name, or SoC name for an
	// explicit Platform/Net pair).
	Scenario string
	Governor string
	Platform string
	// Sim is the underlying run result (trace included).
	Sim *sim.Result
	// Violations lists failed assertions in event order (empty = pass).
	Violations []string
}

// Passed reports whether every assertion held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// ambientRampStepS is the discretisation of ambient ramps: fine enough to
// look continuous next to thermal time constants, coarse enough that a
// ramp stays a sparse event sequence.
const ambientRampStepS = 0.1

// Run executes one scenario. The timeline is compiled to engine events
// before the run starts, so execution is fully deterministic: same
// scenario, same config, same output.
func Run(sc *Scenario, rc Config) (*Result, error) {
	return RunCtx(context.Background(), sc, rc)
}

// RunCtx is Run under a context: cancelling ctx aborts the simulation
// within one engine tick and RunCtx returns an error wrapping
// sim.ErrAborted (and ctx.Err()). The background context reproduces Run
// exactly — the cancellation poll costs one non-blocking channel receive
// per tick and no allocations.
func RunCtx(ctx context.Context, sc *Scenario, rc Config) (*Result, error) {
	if sc == nil {
		return nil, errors.New("scenario: nil scenario")
	}
	if err := sc.Validate(rc.Governors); err != nil {
		return nil, err
	}
	plat, net, platName, err := resolveHardware(rc)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	registry := builtinGovernors()
	//teem:order-insensitive map-to-map merge: the resulting registry is the same set whatever the iteration order
	for name, f := range rc.Governors {
		registry[name] = f
	}
	govName := sc.Governor
	if rc.Governor != "" {
		govName = rc.Governor
	}
	if govName == "" {
		govName = "ondemand"
	}
	mk, ok := registry[govName]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown governor %q", sc.Name, govName)
	}

	tick := rc.TickS
	if tick == 0 {
		tick = 0.01
	}
	horizon := sc.EndS() + tick
	maxTime := rc.MaxTimeS
	if maxTime == 0 {
		maxTime = 900
	}
	if maxTime < horizon {
		maxTime = horizon
	}
	cfg := sim.Config{
		Platform:         plat,
		Net:              net,
		Map:              sc.Map,
		Governor:         mk(),
		TickS:            tick,
		MaxTimeS:         maxTime,
		MinTimeS:         horizon,
		Integrator:       rc.Integrator,
		DisableSuperstep: rc.DisableSuperstep,
		InitialTempsC:    rc.InitialTempsC,
		Done:             ctx.Done(),
		OnSample:         rc.OnSample,
		Clock:            rc.Clock,
	}
	e, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	res := &Result{Scenario: sc.Name, Governor: govName, Platform: platName}
	ambient := plat.AmbientC
	// Job-handle bookkeeping for departures and deadlines. Events
	// dispatch in timeline order on the single run goroutine, so the
	// closures below share these maps without synchronisation: an
	// arrival appends the id the engine minted under its app name (and
	// under app+job when tagged), a departure pops the oldest pending
	// id of its key. Ids cancelled through one key are skipped under
	// the other (CancelJob reports them not active).
	pendingIDs := map[string][]int{}
	subKey := func(app, job string) string {
		if job == "" {
			return app
		}
		return app + "\x00" + job
	}
	type deadlineCheck struct {
		app string
		id  int
		byS float64
	}
	var deadlines []deadlineCheck
	for _, ev := range sc.sortedEvents() {
		ev := ev
		switch ev.Kind {
		case KindArrival:
			app, err := workload.ByName(ev.App)
			if err != nil {
				return nil, err
			}
			part := defaultPart(sc.Map)
			if ev.Part != nil {
				part = *ev.Part
			}
			err = e.ScheduleAt(ev.AtS, func(e *sim.Engine) error {
				id, err := e.EnqueueAppPriority(app, part, ev.Priority)
				if err != nil {
					return err
				}
				pendingIDs[app.Name] = append(pendingIDs[app.Name], id)
				if ev.Job != "" {
					k := subKey(app.Name, ev.Job)
					pendingIDs[k] = append(pendingIDs[k], id)
				}
				if ev.DeadlineS > 0 {
					deadlines = append(deadlines, deadlineCheck{app: app.Name, id: id, byS: ev.AtS + ev.DeadlineS})
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case KindDeparture:
			key := subKey(ev.App, ev.Job)
			err := e.ScheduleAt(ev.AtS, func(e *sim.Engine) error {
				ids := pendingIDs[key]
				if len(ids) == 0 {
					res.Violations = append(res.Violations,
						fmt.Sprintf("t=%gs: departure of %s with no submitted job", ev.AtS, ev.App))
					return nil
				}
				// Cancel the oldest still-pending submission under this
				// key (the exact tagged instance, or name-FIFO for
				// untagged departures): ids that already finished or
				// were cancelled through the other key are skipped, so
				// a departure is not swallowed by an earlier same-app
				// job that drained.
				for len(ids) > 0 {
					id := ids[0]
					ids = ids[1:]
					pendingIDs[key] = ids
					err := e.CancelJob(id)
					if err == nil {
						return nil
					}
					if !errors.Is(err, sim.ErrJobNotActive) {
						return err
					}
				}
				// Every submission finished before the tenant left —
				// nothing to drop.
				return nil
			})
			if err != nil {
				return nil, err
			}
		case KindAmbient:
			if err := scheduleAmbient(e, &ambient, ev); err != nil {
				return nil, err
			}
		case KindGovernor:
			mk, ok := registry[ev.Governor]
			if !ok {
				return nil, fmt.Errorf("scenario %s: unknown governor %q", sc.Name, ev.Governor)
			}
			err := e.ScheduleAt(ev.AtS, func(e *sim.Engine) error {
				return e.SetGovernor(mk())
			})
			if err != nil {
				return nil, err
			}
		case KindPartition:
			p := *ev.Part
			if err := e.ScheduleAt(ev.AtS, func(e *sim.Engine) error { return e.SetPartition(p) }); err != nil {
				return nil, err
			}
		case KindMapping:
			m := *ev.Map
			if err := e.ScheduleAt(ev.AtS, func(e *sim.Engine) error { return e.SetMapping(m) }); err != nil {
				return nil, err
			}
		case KindAssert:
			// Aliases (@big, @little, @gpu, @pkg) bind to the resolved
			// platform here, at compile time, so messages print the real
			// node name. An unknown node would read 0 °C and green-light
			// the assertion forever; flag the typo instead.
			node := resolveNode(plat, ev.Node)
			if net.NodeIndex(node) < 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("t=%gs: assertion on unknown node %q", ev.AtS, node))
				continue
			}
			err := e.ScheduleAt(ev.AtS, func(e *sim.Engine) error {
				if t := e.SensorC(node); t > ev.MaxC {
					res.Violations = append(res.Violations,
						fmt.Sprintf("t=%gs: %s at %.2f °C exceeds %.2f °C", ev.AtS, node, t, ev.MaxC))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	sr, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s under %s: %w", sc.Name, govName, err)
	}
	res.Sim = sr

	// Deadline checks: an arrival with deadline_s must have finished in
	// time. A job that departed *before its deadline* is exempt — its
	// deadline left the system with it; one cancelled after the deadline
	// had already passed still missed it.
	for _, dc := range deadlines {
		exempt := false
		for _, c := range sr.JobCancels {
			if c.ID == dc.id && c.AtS <= dc.byS {
				exempt = true
				break
			}
		}
		if exempt {
			continue
		}
		finished := false
		for _, jf := range sr.JobFinishes {
			if jf.ID != dc.id {
				continue
			}
			finished = true
			if jf.AtS > dc.byS {
				res.Violations = append(res.Violations,
					fmt.Sprintf("deadline: %s finished at %.2f s, after its %.2f s deadline", dc.app, jf.AtS, dc.byS))
			}
			break
		}
		if !finished {
			res.Violations = append(res.Violations,
				fmt.Sprintf("deadline: %s never finished (deadline %.2f s)", dc.app, dc.byS))
		}
	}

	for _, fc := range sc.Final {
		if fc.Node != "" && fc.PeakMaxC > 0 {
			node := resolveNode(plat, fc.Node)
			n := sr.Trace.NodeIndex(node)
			if n < 0 {
				res.Violations = append(res.Violations, fmt.Sprintf("final: unknown node %q", node))
				continue
			}
			// Exact per-tick peak (trace samples coarsen inside
			// superstepped intervals; see docs/integrators.md).
			peak := sr.Trace.PeakTemp(n)
			if n < len(sr.PeakTempsC) {
				peak = sr.PeakTempsC[n]
			}
			if peak > fc.PeakMaxC {
				res.Violations = append(res.Violations,
					fmt.Sprintf("final: %s peak %.2f °C exceeds %.2f °C", node, peak, fc.PeakMaxC))
			}
		}
		if fc.Completed && !sr.Completed {
			res.Violations = append(res.Violations, "final: run did not complete all submitted work")
		}
		if fc.MaxExecS > 0 && sr.ExecTimeS > fc.MaxExecS {
			res.Violations = append(res.Violations,
				fmt.Sprintf("final: execution time %.2f s exceeds %.2f s", sr.ExecTimeS, fc.MaxExecS))
		}
	}
	return res, nil
}

// resolveHardware turns a Config's platform selection into a concrete
// SoC/network pair plus the name results report under. Exactly one of
// three shapes is accepted: a catalog reference, an explicit pair, or
// nothing (→ the default catalog platform). A half-specified pair is an
// error — completing it with a preset is exactly the silent-mismatch
// trap the catalog removes.
func resolveHardware(rc Config) (*soc.Platform, *thermal.Network, string, error) {
	if rc.PlatformName != "" {
		if rc.Platform != nil || rc.Net != nil {
			return nil, nil, "", errors.New("scenario: PlatformName and an explicit Platform/Net are mutually exclusive")
		}
		b, err := platform.Resolve(rc.PlatformName)
		if err != nil {
			return nil, nil, "", err
		}
		return b.SoC, b.Net, b.Name, nil
	}
	if (rc.Platform == nil) != (rc.Net == nil) {
		return nil, nil, "", errors.New("scenario: Platform and Net must be set together (or select a catalog platform by name)")
	}
	if rc.Platform != nil {
		return rc.Platform, rc.Net, rc.Platform.Name, nil
	}
	b := platform.Default()
	return b.SoC, b.Net, b.Name, nil
}

// Node aliases resolve per platform at scenario compile time, so one
// scenario file asserts on "the big cluster" of whatever hardware the
// grid hands it.
const (
	NodeBig    = "@big"
	NodeLittle = "@little"
	NodeGPU    = "@gpu"
	NodePkg    = "@pkg"
)

// resolveNode maps the @-aliases to the platform's actual node names;
// any other name passes through verbatim.
func resolveNode(p *soc.Platform, name string) string {
	switch name {
	case NodeBig:
		if c := p.Big(); c != nil {
			return c.Name
		}
	case NodeLittle:
		if c := p.Little(); c != nil {
			return c.Name
		}
	case NodeGPU:
		if c := p.GPU(); c != nil {
			return c.Name
		}
	case NodePkg:
		return "pkg"
	}
	return name
}

// scheduleAmbient compiles a step (or a discretised linear ramp) to engine
// events. ambient tracks the compile-time ambient so chained ramps start
// from where the previous one ended.
func scheduleAmbient(e *sim.Engine, ambient *float64, ev Event) error {
	from, to := *ambient, ev.ToC
	*ambient = to
	if ev.RampS <= 0 || from == to {
		return e.ScheduleAt(ev.AtS, func(e *sim.Engine) error {
			e.SetAmbientC(to)
			return nil
		})
	}
	steps := int(ev.RampS/ambientRampStepS + 0.5)
	if steps < 1 {
		steps = 1
	}
	for k := 1; k <= steps; k++ {
		v := from + (to-from)*float64(k)/float64(steps)
		err := e.ScheduleAt(ev.AtS+ev.RampS*float64(k)/float64(steps), func(e *sim.Engine) error {
			e.SetAmbientC(v)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- grids --------------------------------------------------------------------

// GridResult is a scenario × governor result matrix in input order.
type GridResult struct {
	Scenarios []string
	Governors []string
	// Cells is indexed [scenario][governor].
	Cells [][]*Result
}

// RunGrid executes every scenario under every named governor across a
// bounded worker pool (workers: 0 = one per CPU, 1 = serial). Cells are
// assembled by index, so parallel output is byte-identical to serial
// output; every cell builds its own engine and governor instance, so the
// grid is race-free by construction.
//
// A cell whose run fails does not abort the grid: the error is captured
// as that cell's violation (Sim stays nil) so every other cell still
// runs and the grid — and the teemscenario exit-code gate built on
// Violations — reports the full picture. Only structural misuse (an
// empty or nil-bearing grid) returns an error.
func RunGrid(scs []*Scenario, governors []string, rc Config, workers int) (*GridResult, error) {
	return RunGridCtx(context.Background(), scs, governors, rc, workers)
}

// RunGridCtx is RunGrid under a context. Cancelling ctx stops the
// scheduling of new cells and aborts in-flight simulations within one
// engine tick; RunGridCtx then returns the partial grid — every cell
// completed before the cancellation, nil for the rest — together with an
// error wrapping ctx.Err(), rather than running the matrix to
// completion. rc.OnCell, when set, observes each cell as it completes.
func RunGridCtx(ctx context.Context, scs []*Scenario, governors []string, rc Config, workers int) (*GridResult, error) {
	if len(scs) == 0 {
		return nil, errors.New("scenario: empty grid (no scenarios)")
	}
	if len(governors) == 0 {
		return nil, errors.New("scenario: empty grid (no governors)")
	}
	out := &GridResult{
		Governors: append([]string(nil), governors...),
		Cells:     make([][]*Result, len(scs)),
	}
	for _, sc := range scs {
		if sc == nil {
			return nil, errors.New("scenario: nil scenario in grid")
		}
		out.Scenarios = append(out.Scenarios, sc.Name)
	}
	for i := range out.Cells {
		out.Cells[i] = make([]*Result, len(governors))
	}
	n := len(scs) * len(governors)
	err := par.ForEachCtx(ctx, workers, n, func(i int) error {
		si, gi := i/len(governors), i%len(governors)
		cell := rc
		cell.Governor = governors[gi]
		r, err := RunCtx(ctx, scs[si], cell)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, sim.ErrAborted) {
				// A cancelled cell is not a cell failure: abort the
				// fan-out instead of recording it as a violation.
				return err
			}
			r = &Result{
				Scenario:   scs[si].Name,
				Governor:   governors[gi],
				Violations: []string{fmt.Sprintf("error: %v", err)},
			}
		}
		out.Cells[si][gi] = r
		if rc.OnCell != nil {
			rc.OnCell(r)
		}
		return nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			done := 0
			for si := range out.Cells {
				for gi := range out.Cells[si] {
					if out.Cells[si][gi] != nil {
						done++
					}
				}
			}
			return out, fmt.Errorf("scenario: grid cancelled with %d of %d cells complete: %w", done, n, cerr)
		}
		return nil, err
	}
	return out, nil
}

// Render formats the grid as a metrics table: one row per scenario ×
// governor cell, plus an assertion column.
func (g *GridResult) Render() string {
	t := &report.Table{
		Title: "scenario × governor grid",
		Headers: []string{"scenario", "governor", "ET (s)", "energy (J)",
			"avg T (°C)", "peak T (°C)", "trips", "jobs", "asserts"},
	}
	for si := range g.Cells {
		for gi := range g.Cells[si] {
			r := g.Cells[si][gi]
			if r == nil {
				// A cancelled grid leaves unfinished cells nil.
				t.AddRow(g.Scenarios[si], g.Governors[gi], "-", "-", "-", "-", "-", "-", "cancelled")
				continue
			}
			status := "pass"
			if !r.Passed() {
				status = fmt.Sprintf("FAIL (%d)", len(r.Violations))
			}
			if r.Sim == nil {
				// The cell errored out before producing a result; its
				// violation carries the error below the table.
				t.AddRow(r.Scenario, r.Governor, "-", "-", "-", "-", "-", "-", status)
				continue
			}
			t.AddRow(r.Scenario, r.Governor,
				fmt.Sprintf("%.1f", r.Sim.ExecTimeS),
				fmt.Sprintf("%.0f", r.Sim.EnergyJ),
				fmt.Sprintf("%.1f", r.Sim.AvgTempC),
				fmt.Sprintf("%.1f", r.Sim.PeakTempC),
				fmt.Sprintf("%d", r.Sim.ThrottleEvents),
				fmt.Sprintf("%d", len(r.Sim.JobFinishes)),
				status)
		}
	}
	var b strings.Builder
	b.WriteString(t.Render())
	for si := range g.Cells {
		for gi := range g.Cells[si] {
			r := g.Cells[si][gi]
			if r == nil {
				continue
			}
			for _, v := range r.Violations {
				fmt.Fprintf(&b, "  %s under %s: %s\n", r.Scenario, r.Governor, v)
			}
		}
	}
	return b.String()
}

// Violations counts failed assertions across the grid (nil cells of a
// cancelled partial grid count zero).
func (g *GridResult) Violations() int {
	n := 0
	for si := range g.Cells {
		for gi := range g.Cells[si] {
			if c := g.Cells[si][gi]; c != nil {
				n += len(c.Violations)
			}
		}
	}
	return n
}

// Cell returns the result for a scenario/governor pair (nil if absent).
func (g *GridResult) Cell(scenario, gov string) *Result {
	for si, s := range g.Scenarios {
		if s != scenario {
			continue
		}
		for gi, gv := range g.Governors {
			if gv == gov {
				return g.Cells[si][gi]
			}
		}
	}
	return nil
}

// PlatformGridResult is a platform × scenario × governor result cube in
// input order — the cross-platform sweep the catalog makes possible.
type PlatformGridResult struct {
	Platforms []string
	Scenarios []string
	Governors []string
	// Cells is indexed [platform][scenario][governor].
	Cells [][][]*Result
}

// RunPlatformGrid executes every scenario under every governor on every
// named platform across one bounded worker pool (workers: 0 = one per
// CPU, 1 = serial). Platform references resolve through the catalog
// (name or bundle-file path) and every reference is resolved up front,
// so an unknown platform fails the whole grid before any cell runs.
// Cells are assembled by flat index, so parallel output is
// byte-identical to serial output, and each cell resolves its own fresh
// bundle — nothing is shared across concurrent cells.
func RunPlatformGrid(platforms []string, scs []*Scenario, governors []string, rc Config, workers int) (*PlatformGridResult, error) {
	return RunPlatformGridCtx(context.Background(), platforms, scs, governors, rc, workers)
}

// RunPlatformGridCtx is RunPlatformGrid under a context, with RunGridCtx
// cancellation semantics: the partial cube plus an error wrapping
// ctx.Err() on cancellation.
func RunPlatformGridCtx(ctx context.Context, platforms []string, scs []*Scenario, governors []string, rc Config, workers int) (*PlatformGridResult, error) {
	if len(platforms) == 0 {
		return nil, errors.New("scenario: empty grid (no platforms)")
	}
	if len(scs) == 0 {
		return nil, errors.New("scenario: empty grid (no scenarios)")
	}
	if len(governors) == 0 {
		return nil, errors.New("scenario: empty grid (no governors)")
	}
	if rc.PlatformName != "" || rc.Platform != nil || rc.Net != nil {
		return nil, errors.New("scenario: platform grid owns the platform axis; leave Config.PlatformName/Platform/Net empty")
	}
	out := &PlatformGridResult{
		Governors: append([]string(nil), governors...),
		Cells:     make([][][]*Result, len(platforms)),
	}
	for _, ref := range platforms {
		b, err := platform.Resolve(ref)
		if err != nil {
			return nil, err
		}
		out.Platforms = append(out.Platforms, b.Name)
	}
	for _, sc := range scs {
		if sc == nil {
			return nil, errors.New("scenario: nil scenario in grid")
		}
		out.Scenarios = append(out.Scenarios, sc.Name)
	}
	for pi := range out.Cells {
		out.Cells[pi] = make([][]*Result, len(scs))
		for si := range out.Cells[pi] {
			out.Cells[pi][si] = make([]*Result, len(governors))
		}
	}
	ns, ng := len(scs), len(governors)
	n := len(platforms) * ns * ng
	err := par.ForEachCtx(ctx, workers, n, func(i int) error {
		pi, si, gi := i/(ns*ng), i/ng%ns, i%ng
		cell := rc
		cell.PlatformName = platforms[pi]
		cell.Governor = governors[gi]
		r, err := RunCtx(ctx, scs[si], cell)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, sim.ErrAborted) {
				return err
			}
			r = &Result{
				Scenario:   scs[si].Name,
				Governor:   governors[gi],
				Platform:   out.Platforms[pi],
				Violations: []string{fmt.Sprintf("error: %v", err)},
			}
		}
		out.Cells[pi][si][gi] = r
		if rc.OnCell != nil {
			rc.OnCell(r)
		}
		return nil
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			done := 0
			for pi := range out.Cells {
				for si := range out.Cells[pi] {
					for gi := range out.Cells[pi][si] {
						if out.Cells[pi][si][gi] != nil {
							done++
						}
					}
				}
			}
			return out, fmt.Errorf("scenario: platform grid cancelled with %d of %d cells complete: %w", done, n, cerr)
		}
		return nil, err
	}
	return out, nil
}

// Render formats the cube as a metrics table: one row per platform ×
// scenario × governor cell, plus an assertion column.
func (g *PlatformGridResult) Render() string {
	t := &report.Table{
		Title: "platform × scenario × governor grid",
		Headers: []string{"platform", "scenario", "governor", "ET (s)", "energy (J)",
			"avg T (°C)", "peak T (°C)", "trips", "jobs", "asserts"},
	}
	for pi := range g.Cells {
		for si := range g.Cells[pi] {
			for gi := range g.Cells[pi][si] {
				r := g.Cells[pi][si][gi]
				if r == nil {
					t.AddRow(g.Platforms[pi], g.Scenarios[si], g.Governors[gi],
						"-", "-", "-", "-", "-", "-", "cancelled")
					continue
				}
				status := "pass"
				if !r.Passed() {
					status = fmt.Sprintf("FAIL (%d)", len(r.Violations))
				}
				if r.Sim == nil {
					t.AddRow(r.Platform, r.Scenario, r.Governor, "-", "-", "-", "-", "-", "-", status)
					continue
				}
				t.AddRow(r.Platform, r.Scenario, r.Governor,
					fmt.Sprintf("%.1f", r.Sim.ExecTimeS),
					fmt.Sprintf("%.0f", r.Sim.EnergyJ),
					fmt.Sprintf("%.1f", r.Sim.AvgTempC),
					fmt.Sprintf("%.1f", r.Sim.PeakTempC),
					fmt.Sprintf("%d", r.Sim.ThrottleEvents),
					fmt.Sprintf("%d", len(r.Sim.JobFinishes)),
					status)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Render())
	for pi := range g.Cells {
		for si := range g.Cells[pi] {
			for gi := range g.Cells[pi][si] {
				r := g.Cells[pi][si][gi]
				if r == nil {
					continue
				}
				for _, v := range r.Violations {
					fmt.Fprintf(&b, "  %s/%s under %s: %s\n", r.Platform, r.Scenario, r.Governor, v)
				}
			}
		}
	}
	return b.String()
}

// Violations counts failed assertions across the cube.
func (g *PlatformGridResult) Violations() int {
	n := 0
	for pi := range g.Cells {
		for si := range g.Cells[pi] {
			for gi := range g.Cells[pi][si] {
				if c := g.Cells[pi][si][gi]; c != nil {
					n += len(c.Violations)
				}
			}
		}
	}
	return n
}

// Cell returns the result for a platform/scenario/governor triple (nil
// if absent).
func (g *PlatformGridResult) Cell(plat, scenario, gov string) *Result {
	for pi, p := range g.Platforms {
		if p != plat {
			continue
		}
		for si, s := range g.Scenarios {
			if s != scenario {
				continue
			}
			for gi, gv := range g.Governors {
				if gv == gov {
					return g.Cells[pi][si][gi]
				}
			}
		}
	}
	return nil
}
