package scenario

import (
	"strings"
	"testing"

	"teem/internal/platform"
	"teem/internal/soc"
	"teem/internal/thermal"
)

// TestRunPlatformName runs a preset on a catalog platform selected by
// name and checks the result is attributed to it.
func TestRunPlatformName(t *testing.T) {
	r, err := Run(Sunlight(), Config{PlatformName: "sparrow-e1", Governor: "teem"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Platform != "sparrow-e1" {
		t.Fatalf("Result.Platform = %q", r.Platform)
	}
	if !r.Passed() {
		t.Fatalf("violations: %v", r.Violations)
	}
}

// TestRunDefaultPlatformMatchesExplicitExynos pins the catalog bridge at
// the scenario layer: the zero config (default catalog platform) and the
// explicit Exynos constructors produce identical results.
func TestRunDefaultPlatformMatchesExplicitExynos(t *testing.T) {
	a, err := Run(Sunlight(), Config{Governor: "teem"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Sunlight(), Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		Governor: "teem",
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.EnergyJ != b.Sim.EnergyJ || a.Sim.ExecTimeS != b.Sim.ExecTimeS || a.Sim.PeakTempC != b.Sim.PeakTempC {
		t.Fatalf("default catalog platform diverges from the Exynos constructors: %+v vs %+v", a.Sim, b.Sim)
	}
	if a.Platform != platform.DefaultName {
		t.Fatalf("default Result.Platform = %q", a.Platform)
	}
}

// TestRunRejectsHalfPair is the scenario-layer regression test for the
// silent-pairing bug: a config with only one of Platform/Net used to be
// completed with the Exynos preset for the other half, which on any
// non-Exynos input meant sensors silently reading 0 °C. It must be an
// error now.
func TestRunRejectsHalfPair(t *testing.T) {
	if _, err := Run(Sunlight(), Config{Platform: soc.Exynos5410()}); err == nil {
		t.Error("Run accepted Platform without Net")
	}
	if _, err := Run(Sunlight(), Config{Net: thermal.Exynos5410Network()}); err == nil {
		t.Error("Run accepted Net without Platform")
	}
	if _, err := Run(Sunlight(), Config{PlatformName: "exynos5410", Platform: soc.Exynos5410(), Net: thermal.Exynos5410Network()}); err == nil {
		t.Error("Run accepted PlatformName combined with an explicit pair")
	}
	if _, err := Run(Sunlight(), Config{PlatformName: "no-such-board"}); err == nil {
		t.Error("Run accepted an unknown platform name")
	}
}

// TestNodeAliases checks @-aliases bind to the resolved platform's real
// node names — including in violation messages.
func TestNodeAliases(t *testing.T) {
	p := soc.Exynos5422()
	for alias, want := range map[string]string{
		NodeBig:    "A15",
		NodeLittle: "A7",
		NodeGPU:    "MaliT628",
		NodePkg:    "pkg",
		"A15":      "A15", // plain names pass through
	} {
		if got := resolveNode(p, alias); got != want {
			t.Errorf("resolveNode(%q) = %q, want %q", alias, got, want)
		}
	}

	// An impossible bound on @big must report the platform's big-cluster
	// node by its real name.
	sc, err := New("alias-check").
		ArriveDefault(0, "MVT").
		AssertPeakBelow(NodeBig, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sc, Config{PlatformName: "merlin-m3", Governor: "teem"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) == 0 {
		t.Fatal("impossible @big bound did not trip")
	}
	if !strings.Contains(r.Violations[0], "X4") {
		t.Errorf("violation %q does not name merlin-m3's big cluster X4", r.Violations[0])
	}
}

// TestRunPlatformGridDeterminism pins the platform grid's core contract:
// parallel execution is byte-identical to serial execution.
func TestRunPlatformGridDeterminism(t *testing.T) {
	plats := []string{"exynos5422", "sparrow-e1"}
	scs := []*Scenario{Sunlight(), CoreLoss()}
	govs := []string{"ondemand", "teem"}
	serial, err := RunPlatformGrid(plats, scs, govs, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPlatformGrid(plats, scs, govs, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), par.Render(); s != p {
		t.Fatalf("parallel platform grid differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

func TestRunPlatformGridShape(t *testing.T) {
	g, err := RunPlatformGrid([]string{"kestrel-e2"}, []*Scenario{CoreLoss()}, []string{"teem"}, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Cell("kestrel-e2", "core-loss", "teem")
	if r == nil {
		t.Fatal("cell lookup failed")
	}
	if r.Platform != "kestrel-e2" || r.Sim == nil {
		t.Fatalf("cell = %+v", r)
	}
	if g.Violations() != 0 {
		t.Fatalf("unexpected violations: %s", g.Render())
	}
	if !strings.Contains(g.Render(), "kestrel-e2") {
		t.Error("render lacks the platform column")
	}
}

func TestRunPlatformGridValidation(t *testing.T) {
	scs := []*Scenario{CoreLoss()}
	if _, err := RunPlatformGrid(nil, scs, []string{"teem"}, Config{}, 1); err == nil {
		t.Error("empty platform list accepted")
	}
	if _, err := RunPlatformGrid([]string{"no-such-board"}, scs, []string{"teem"}, Config{}, 1); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := RunPlatformGrid([]string{"exynos5422"}, scs, []string{"teem"}, Config{PlatformName: "exynos5410"}, 1); err == nil {
		t.Error("platform grid accepted a config that also selects a platform")
	}
}
