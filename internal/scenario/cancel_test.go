package scenario

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"teem/internal/sim"
	"teem/internal/trace"
)

// A pre-cancelled context must abort the run before it simulates
// anything, surfacing sim.ErrAborted through the scenario error chain.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, Sunlight(), Config{})
	if !errors.Is(err, sim.ErrAborted) {
		t.Fatalf("got %v, want sim.ErrAborted", err)
	}
}

// Cancelling mid-run must return promptly with a partial grid: completed
// cells kept, unfinished cells nil, and the error wrapping ctx.Err().
func TestRunGridCtxCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	rc := Config{
		// Cancel as soon as the first cell completes: remaining cells
		// must not run to completion.
		OnCell: func(*Result) { once.Do(cancel) },
	}
	scs := Presets()
	govs := GovernorNames()
	grid, err := RunGridCtx(ctx, scs, govs, rc, 1)
	if err == nil {
		t.Fatal("cancelled grid returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
	if grid == nil {
		t.Fatal("cancelled grid returned no partial result")
	}
	done, missing := 0, 0
	for si := range grid.Cells {
		for gi := range grid.Cells[si] {
			if grid.Cells[si][gi] != nil {
				done++
			} else {
				missing++
			}
		}
	}
	if done == 0 {
		t.Error("partial grid lost the completed cell")
	}
	if missing == 0 {
		t.Error("every cell completed despite the cancellation after the first")
	}
	// The partial grid must render (nil cells as cancelled rows) and
	// count violations without panicking.
	if !strings.Contains(grid.Render(), "cancelled") {
		t.Error("partial grid render does not mark unfinished cells")
	}
	_ = grid.Violations()
}

// The background-context grid is the classic RunGrid, byte-identical.
func TestRunGridCtxBackgroundMatchesRunGrid(t *testing.T) {
	scs := []*Scenario{Sunlight()}
	govs := []string{"ondemand"}
	a, err := RunGrid(scs, govs, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGridCtx(context.Background(), scs, govs, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("RunGridCtx(background) differs from RunGrid")
	}
}

// OnCell must observe every completed cell exactly once.
func TestRunGridOnCellSeesEveryCell(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	rc := Config{OnCell: func(r *Result) {
		mu.Lock()
		seen[r.Scenario+"/"+r.Governor]++
		mu.Unlock()
	}}
	scs := []*Scenario{Sunlight(), CoreLoss()}
	govs := []string{"ondemand", "powersave"}
	if _, err := RunGrid(scs, govs, rc, 0); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("OnCell saw %d distinct cells, want 4: %v", len(seen), seen)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %s observed %d times", k, n)
		}
	}
}

// The streaming hook must deliver exactly the samples of the final
// trace, live.
func TestRunOnSampleMatchesResultTrace(t *testing.T) {
	var streamed []trace.Sample
	rc := Config{OnSample: func(s trace.Sample) { streamed = append(streamed, s) }}
	r, err := Run(Sunlight(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(r.Sim.Trace.Samples) {
		t.Fatalf("streamed %d samples, trace has %d", len(streamed), len(r.Sim.Trace.Samples))
	}
	for i := range streamed {
		if streamed[i].TimeS != r.Sim.Trace.Samples[i].TimeS ||
			streamed[i].PowerW != r.Sim.Trace.Samples[i].PowerW {
			t.Fatalf("sample %d differs between stream and trace", i)
		}
	}
}
