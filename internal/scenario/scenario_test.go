package scenario

import (
	"bytes"
	"strings"
	"testing"

	"teem/internal/mapping"
	"teem/internal/sim"
)

// quickConfig keeps unit-test runs short and deterministic.
func quickConfig() Config {
	return Config{}
}

func TestBuilderAndValidation(t *testing.T) {
	if _, err := New("ok").ArriveDefault(0, "COVARIANCE").Build(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name  string
		build func() (*Scenario, error)
	}{
		{"no arrivals", func() (*Scenario, error) { return New("x").AmbientStep(1, 40).Build() }},
		{"unknown app", func() (*Scenario, error) { return New("x").ArriveDefault(0, "NOPE").Build() }},
		{"unknown governor", func() (*Scenario, error) {
			return New("x").ArriveDefault(0, "COVARIANCE").Governor("nope").Build()
		}},
		{"unknown switch target", func() (*Scenario, error) {
			return New("x").ArriveDefault(0, "COVARIANCE").SwitchGovernor(5, "nope").Build()
		}},
		{"negative time", func() (*Scenario, error) { return New("x").ArriveDefault(-1, "COVARIANCE").Build() }},
		{"bad partition", func() (*Scenario, error) {
			return New("x").Arrive(0, "COVARIANCE", mapping.Partition{Num: 9, Den: 8}).Build()
		}},
		{"assert without node", func() (*Scenario, error) {
			return New("x").ArriveDefault(0, "COVARIANCE").AssertTempBelow(1, "", 95).Build()
		}},
		{"negative deadline", func() (*Scenario, error) {
			return New("x").ArriveJob(0, "COVARIANCE", nil, 0, -5).Build()
		}},
		{"departure without app", func() (*Scenario, error) {
			return New("x").ArriveDefault(0, "COVARIANCE").Depart(5, "").Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Validation diagnostics must be deterministic: with several apps each
// having surplus departures, the surplus-departure check used to report
// whichever key a map iteration yielded first, so repeated Validate calls
// on the same scenario could name different apps. The keys are now
// checked in sorted order (teemvet's determinism analyzer flags the bare
// map range).
func TestValidateSurplusDepartureDeterministic(t *testing.T) {
	b := New("surplus").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(0, "MVT").
		Depart(1, "COVARIANCE").
		Depart(1, "MVT").
		Depart(2, "COVARIANCE").
		Depart(2, "MVT")
	sc := &b.s // unvalidated: Build would reject the surplus departures
	for i := 0; i < 50; i++ {
		err := sc.Validate(nil)
		if err == nil {
			t.Fatal("surplus departures accepted")
		}
		if !strings.Contains(err.Error(), "COVARIANCE") {
			t.Fatalf("run %d: error reports %q, want the sorted-first app COVARIANCE every time", i, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := RushHour()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := s.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Error("JSON round trip is not stable")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","events":[],"bogus":1}`))
	if err == nil {
		t.Error("unknown JSON field accepted")
	}
}

func TestLoadJSONExample(t *testing.T) {
	const doc = `{
	  "name": "sunlight-json",
	  "map": {"Big": 4, "Little": 2, "UseGPU": true},
	  "governor": "ondemand",
	  "horizon_s": 30,
	  "events": [
	    {"at_s": 0, "kind": "arrival", "app": "COVARIANCE", "part": {"Num": 4, "Den": 8}},
	    {"at_s": 12, "kind": "ambient", "to_c": 43, "ramp_s": 5},
	    {"at_s": 25, "kind": "assert", "node": "A15", "max_c": 99}
	  ],
	  "final": [{"node": "A15", "peak_max_c": 99}, {"completed": true}]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("JSON example violated assertions: %v", r.Violations)
	}
}

// The rush-hour preset combines ≥3 event kinds (arrivals, ambient step,
// governor switch) and must complete with all three jobs finished, in
// arrival order, the second overlapping arrival queued behind the first.
func TestRushHourCompletesInOrder(t *testing.T) {
	r, err := Run(RushHour(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Completed {
		t.Fatal("rush-hour did not complete")
	}
	if !r.Passed() {
		t.Errorf("assertions violated: %v", r.Violations)
	}
	jf := r.Sim.JobFinishes
	if len(jf) != 3 {
		t.Fatalf("JobFinishes = %d, want 3", len(jf))
	}
	want := []string{"COVARIANCE", "GEMM", "SYRK"}
	for i, w := range want {
		if jf[i].App != w {
			t.Errorf("finish %d = %s, want %s", i, jf[i].App, w)
		}
	}
	// GEMM arrived at t=5 while COVARIANCE ran: it must finish after
	// COVARIANCE (queued, not preempting).
	if jf[1].AtS <= jf[0].AtS {
		t.Errorf("overlapping arrival finished at %g before its predecessor at %g", jf[1].AtS, jf[0].AtS)
	}
	// SYRK arrived at t=60, after the queue drained: back-to-back.
	if jf[2].AtS <= 60 {
		t.Errorf("SYRK finished at %g despite arriving at t=60", jf[2].AtS)
	}
}

// The sunlight scenario heats up after the ambient ramp: the big-cluster
// temperature at the end of the ramp must exceed the pre-ramp level.
func TestSunlightRampHeats(t *testing.T) {
	r, err := Run(Sunlight(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Sim.Trace
	bi := tr.NodeIndex("A15")
	var at10, at25 float64
	for _, s := range tr.Samples {
		if s.TimeS <= 10 {
			at10 = s.TempsC[bi]
		}
		if s.TimeS <= 25 {
			at25 = s.TempsC[bi]
		}
	}
	if at25 <= at10 {
		t.Errorf("temperature fell across the ambient ramp: %g → %g", at10, at25)
	}
}

// The core-loss preset survives a mid-run mapping shrink plus
// repartitioning and still completes.
func TestCoreLossCompletes(t *testing.T) {
	r, err := Run(CoreLoss(), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Completed || !r.Passed() {
		t.Errorf("core-loss: completed=%v violations=%v", r.Sim.Completed, r.Violations)
	}
}

// Assertions that fail are collected as violations, not run errors.
func TestAssertionViolationCollected(t *testing.T) {
	s, err := New("too-strict").
		ArriveDefault(0, "COVARIANCE").
		AssertTempBelow(10, "A15", 1). // impossible bound
		AssertPeakBelow("A15", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed() || len(r.Violations) != 2 {
		t.Errorf("want 2 violations, got %v", r.Violations)
	}
}

// An assertion on a node the thermal network doesn't have must be flagged
// as a violation, not silently pass on the 0 °C unknown-sensor reading.
func TestAssertionUnknownNodeFlagged(t *testing.T) {
	s, err := New("typo").
		ArriveDefault(0, "COVARIANCE").
		AssertTempBelow(5, "A15x", 95).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed() {
		t.Error("assertion on an unknown node passed silently")
	}
}

// A governor override reruns the same scenario under a different policy.
func TestGovernorOverride(t *testing.T) {
	rc := quickConfig()
	rc.Governor = "performance"
	r, err := Run(Sunlight(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Governor != "performance" {
		t.Errorf("cell governor = %s", r.Governor)
	}
}

// Custom governors join the registry by name.
func TestCustomGovernorRegistry(t *testing.T) {
	rc := quickConfig()
	rc.Governors = map[string]GovernorFactory{
		"pin-1000": func() sim.Governor {
			return &pin1000{}
		},
	}
	rc.Governor = "pin-1000"
	r, err := Run(Sunlight(), rc)
	if err != nil {
		t.Fatal(err)
	}
	ci := r.Sim.Trace.ClusterIndex("A15")
	mid := r.Sim.Trace.Samples[r.Sim.Trace.Len()/2]
	if mid.FreqsMHz[ci] != 1000 {
		t.Errorf("custom governor not in effect: big at %d MHz", mid.FreqsMHz[ci])
	}
}

type pin1000 struct{}

func (pin1000) Name() string     { return "pin-1000" }
func (pin1000) PeriodS() float64 { return 0.1 }
func (pin1000) Start(m sim.Machine) error {
	p := m.Platform()
	for i := range p.Clusters {
		if err := m.SetClusterFreqMHz(p.Clusters[i].Name, 1000); err != nil {
			return err
		}
	}
	return nil
}
func (pin1000) Act(m sim.Machine) error { return nil }

// The acceptance gate: the combination scenario (≥3 event kinds) runs
// deterministically under both integrators, and grid output is
// byte-identical serial vs parallel.
func TestGridDeterminismBothIntegrators(t *testing.T) {
	scs := []*Scenario{Sunlight(), RushHour()}
	govs := []string{"ondemand", "teem"}
	for _, integ := range []sim.Integrator{sim.IntegratorExact, sim.IntegratorEuler} {
		rc := quickConfig()
		rc.Integrator = integ
		serial, err := RunGrid(scs, govs, rc, 1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunGrid(scs, govs, rc, 8)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Render() != parallel.Render() {
			t.Errorf("integrator %d: parallel grid output differs from serial", integ)
		}
		for si := range serial.Cells {
			for gi := range serial.Cells[si] {
				a, b := serial.Cells[si][gi], parallel.Cells[si][gi]
				if a.Sim.EnergyJ != b.Sim.EnergyJ || a.Sim.ExecTimeS != b.Sim.ExecTimeS ||
					a.Sim.PeakTempC != b.Sim.PeakTempC {
					t.Errorf("integrator %d: cell %s/%s metrics differ between serial and parallel",
						integ, a.Scenario, a.Governor)
				}
			}
		}
	}
}

// Regression: one broken cell must not abort the whole grid. A scenario
// that validates declaratively but fails at run time (its arrival sends
// CPU work to a GPU-only mapping) is captured as a per-cell violation;
// every other cell still runs and reports, and the grid's exit-code
// signal (Violations) reflects the failure.
func TestGridSurvivesBrokenCell(t *testing.T) {
	broken := &Scenario{
		Name: "broken",
		Map:  mapping.Mapping{UseGPU: true},
		Events: []Event{
			{AtS: 0, Kind: KindArrival, App: "COVARIANCE", Part: &mapping.Partition{Num: 4, Den: 8}},
		},
	}
	if err := broken.Validate(nil); err != nil {
		t.Fatalf("the broken scenario must pass declarative validation to exercise the run-time path: %v", err)
	}
	g, err := RunGrid([]*Scenario{broken, Sunlight()}, []string{"performance"}, quickConfig(), 1)
	if err != nil {
		t.Fatalf("RunGrid aborted the whole grid on one broken cell: %v", err)
	}
	bad := g.Cell("broken", "performance")
	if bad == nil {
		t.Fatal("broken cell missing from the grid")
	}
	if bad.Passed() || len(bad.Violations) == 0 {
		t.Error("broken cell did not record its failure as a violation")
	}
	if bad.Sim != nil {
		t.Error("broken cell should carry no sim result")
	}
	ok := g.Cell("sunlight", "performance")
	if ok == nil || ok.Sim == nil || !ok.Passed() {
		t.Errorf("healthy cell did not run/report alongside the broken one: %+v", ok)
	}
	if g.Violations() == 0 {
		t.Error("grid Violations() = 0 with a broken cell — the CI gate would green-light it")
	}
	out := g.Render()
	if !strings.Contains(out, "broken") || !strings.Contains(out, "sunlight") {
		t.Errorf("Render dropped a row:\n%s", out)
	}
	// The parallel path must capture per-cell errors identically.
	gp, err := RunGrid([]*Scenario{broken, Sunlight()}, []string{"performance"}, quickConfig(), 8)
	if err != nil {
		t.Fatalf("parallel RunGrid aborted on one broken cell: %v", err)
	}
	if gp.Render() != out {
		t.Error("parallel grid render differs from serial with a broken cell")
	}
}

// Grid cells are independent: hammering the same grid concurrently from
// several goroutines must be race-free (run under -race in CI).
func TestGridRaceHammer(t *testing.T) {
	scs := []*Scenario{Sunlight()}
	govs := []string{"ondemand", "performance", "teem"}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := RunGrid(scs, govs, quickConfig(), 0)
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPresetsResolve(t *testing.T) {
	for _, s := range Presets() {
		if err := s.Validate(nil); err != nil {
			t.Errorf("preset %s invalid: %v", s.Name, err)
		}
		if PresetByName(s.Name) == nil {
			t.Errorf("preset %s not resolvable by name", s.Name)
		}
	}
	if PresetByName("nope") != nil {
		t.Error("unknown preset resolved")
	}
}
