// Package scenario is the online half of "online thermal- and
// energy-efficiency management": a declarative, deterministic event-timeline
// engine that drives a simulation through dynamic situations — application
// arrivals with priorities and deadlines (higher-priority arrivals preempt
// the live job, which later resumes with its remaining work intact),
// departures that cancel a queued or live job mid-run, ambient-temperature
// steps and ramps ("the device moves into sunlight"), and mid-run
// governor/partition/mapping switches — with per-event and end-of-run
// assertions (e.g. "peak ≤ trip").
//
// A Scenario is plain data: build one with the fluent Builder, write it as
// JSON (Save) or read it back (Load), or compile one from a recorded
// arrival log (FromTrace — trace-driven replay). Run executes a scenario
// against the sim engine's scheduling hooks; RunGrid fans a scenario ×
// governor matrix out across the bounded worker pool with
// byte-identical-to-serial output.
//
// The JSON schema is one object per scenario:
//
//	{
//	  "name": "sunlight",
//	  "map": {"Big": 4, "Little": 2, "UseGPU": true},
//	  "governor": "ondemand",
//	  "horizon_s": 60,
//	  "events": [
//	    {"at_s": 0,  "kind": "arrival", "app": "COVARIANCE", "part": {"Num": 4, "Den": 8}},
//	    {"at_s": 6,  "kind": "arrival", "app": "MVT", "priority": 2, "deadline_s": 25},
//	    {"at_s": 12, "kind": "ambient", "to_c": 43, "ramp_s": 5},
//	    {"at_s": 20, "kind": "departure", "app": "COVARIANCE"},
//	    {"at_s": 30, "kind": "governor", "governor": "powersave"},
//	    {"at_s": 40, "kind": "assert", "node": "A15", "max_c": 95}
//	  ],
//	  "final": [{"node": "A15", "peak_max_c": 96, "completed": true}]
//	}
//
// Assertion nodes may name a sensor directly ("A15") or use one of the
// platform-independent aliases "@big", "@little", "@gpu", "@pkg", which
// bind to the resolved platform's actual node names at run time — the
// form every builtin preset uses, so the same scenario asserts on "the
// big cluster" of whatever catalog platform (see internal/platform) the
// grid hands it.
package scenario

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"teem/internal/mapping"
	"teem/internal/workload"
)

// Kind tags the event types of a scenario timeline.
type Kind string

// Event kinds.
const (
	// KindArrival submits an application to the engine's job queue: it
	// starts immediately on an idle engine, preempts the live job when
	// its Priority is strictly higher, and otherwise queues behind its
	// priority class (equal priorities run FIFO — overlapping arrivals).
	KindArrival Kind = "arrival"
	// KindDeparture cancels the named application's oldest still-pending
	// submission — queued or live — charging only the work already done
	// (a tenant leaving the system). Departing a job that already
	// finished is a tolerated no-op.
	KindDeparture Kind = "departure"
	// KindAmbient steps (or, with RampS, linearly ramps) the ambient
	// temperature to ToC.
	KindAmbient Kind = "ambient"
	// KindGovernor switches the DVFS policy to the named governor.
	KindGovernor Kind = "governor"
	// KindPartition re-splits the live job's remaining work-items.
	KindPartition Kind = "partition"
	// KindMapping switches the CPU/GPU mapping.
	KindMapping Kind = "mapping"
	// KindAssert checks an instantaneous condition at the event time;
	// violations are collected, not fatal.
	KindAssert Kind = "assert"
)

// Event is one timeline entry. Only the fields of its Kind are read.
type Event struct {
	// AtS is the simulated event time in seconds (snapped to a tick).
	AtS float64 `json:"at_s"`
	// Kind selects the event type.
	Kind Kind `json:"kind"`

	// App names the arriving (KindArrival) or departing (KindDeparture)
	// application, resolved through the workload catalog (e.g.
	// "COVARIANCE").
	App string `json:"app,omitempty"`
	// Part is the work-item split of an arrival or a partition switch.
	// A nil arrival partition defaults to the scenario mapping's
	// natural split: 4/8 with CPU and GPU mapped, 8/8 CPU-only, 0/8
	// GPU-only.
	Part *mapping.Partition `json:"part,omitempty"`
	// Priority is the arrival's scheduling priority (KindArrival):
	// higher runs first and a strictly higher arrival preempts the live
	// job. The default 0 is the classic FIFO class.
	Priority int `json:"priority,omitempty"`
	// DeadlineS, when positive, requires the arriving job to finish
	// within that many seconds of its arrival; a miss is recorded as a
	// violation (KindArrival). A job that departs before its deadline
	// is exempt.
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Job optionally tags a submission so a departure can target that
	// specific arrival instead of the app's oldest still-pending one
	// (KindArrival, KindDeparture). FromTrace tags every held record,
	// so replayed logs with overlapping same-app tenants cancel exactly
	// the recorded instance.
	Job string `json:"job,omitempty"`

	// ToC is the ambient target (KindAmbient); RampS, when positive,
	// spreads the change linearly over that many seconds (discretised
	// at 100 ms) instead of stepping instantaneously.
	ToC   float64 `json:"to_c,omitempty"`
	RampS float64 `json:"ramp_s,omitempty"`

	// Governor names the policy to switch to (KindGovernor).
	Governor string `json:"governor,omitempty"`

	// Map is the new mapping (KindMapping).
	Map *mapping.Mapping `json:"map,omitempty"`

	// Node and MaxC express an instantaneous assertion (KindAssert):
	// the named sensor (or @big/@little/@gpu/@pkg alias) must read at
	// most MaxC at AtS.
	Node string  `json:"node,omitempty"`
	MaxC float64 `json:"max_c,omitempty"`
}

// FinalCheck is an end-of-run assertion evaluated on the finished result.
type FinalCheck struct {
	// Node + PeakMaxC: the node's (or @-alias's) peak temperature over
	// the whole run must stay at or below PeakMaxC.
	Node     string  `json:"node,omitempty"`
	PeakMaxC float64 `json:"peak_max_c,omitempty"`
	// Completed requires every submitted job to have finished.
	Completed bool `json:"completed,omitempty"`
	// MaxExecS bounds the execution time (0 = unchecked).
	MaxExecS float64 `json:"max_exec_s,omitempty"`
}

// Scenario is a declarative dynamic-workload description.
type Scenario struct {
	// Name identifies the scenario in grids and reports.
	Name string `json:"name"`
	// Map is the initial CPU/GPU mapping.
	Map mapping.Mapping `json:"map"`
	// Governor is the initial DVFS policy name (default "ondemand").
	// Grid runs override it per column.
	Governor string `json:"governor,omitempty"`
	// HorizonS keeps the simulation alive until this time even when all
	// work has drained (0: run ends after the last event and job).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Events is the timeline; it is sorted by time at run.
	Events []Event `json:"events"`
	// Final holds the end-of-run assertions.
	Final []FinalCheck `json:"final,omitempty"`
}

// Validate checks the scenario against the workload catalog and the
// governor registry (extra holds additional accepted governor names; the
// built-ins are always accepted).
func (s *Scenario) Validate(extra map[string]GovernorFactory) error {
	if s.Name == "" {
		return errors.New("scenario: empty name")
	}
	knownGov := func(name string) bool {
		if name == "" {
			return true
		}
		if _, ok := builtinGovernors()[name]; ok {
			return true
		}
		_, ok := extra[name]
		return ok
	}
	if !knownGov(s.Governor) {
		return fmt.Errorf("scenario %s: unknown governor %q", s.Name, s.Governor)
	}
	if s.HorizonS < 0 {
		return fmt.Errorf("scenario %s: negative horizon", s.Name)
	}
	arrivals := 0
	arrCount := map[string]int{}
	depCount := map[string]int{}
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.AtS < 0 {
			return fmt.Errorf("scenario %s: event %d at t=%g before the run starts", s.Name, i, ev.AtS)
		}
		switch ev.Kind {
		case KindArrival:
			if _, err := workload.ByName(ev.App); err != nil {
				return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
			}
			if ev.Part != nil {
				if err := ev.Part.Validate(); err != nil {
					return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
				}
			}
			if ev.DeadlineS < 0 {
				return fmt.Errorf("scenario %s: event %d: negative deadline", s.Name, i)
			}
			arrivals++
			arrCount[ev.App]++
			if ev.Job != "" {
				arrCount[ev.App+"\x00"+ev.Job]++
			}
		case KindDeparture:
			if ev.App == "" {
				return fmt.Errorf("scenario %s: event %d: departure without an app", s.Name, i)
			}
			// The matching arrival — same app, and same job tag when the
			// departure carries one — must dispatch before the
			// departure: strictly earlier in time, or on the same tick
			// but earlier in the event list (sortedEvents is stable, so
			// same-time events keep list order at run time).
			matched := false
			for j := range s.Events {
				arr := &s.Events[j]
				if arr.Kind != KindArrival || arr.App != ev.App {
					continue
				}
				if ev.Job != "" && arr.Job != ev.Job {
					continue
				}
				if arr.AtS < ev.AtS || (arr.AtS == ev.AtS && j < i) {
					matched = true
					break
				}
			}
			if !matched {
				return fmt.Errorf("scenario %s: event %d: departure of %q with no earlier arrival", s.Name, i, ev.App)
			}
			depCount[ev.App]++
			if ev.Job != "" {
				depCount[ev.App+"\x00"+ev.Job]++
			}
		case KindAmbient:
			if ev.RampS < 0 {
				return fmt.Errorf("scenario %s: event %d: negative ramp", s.Name, i)
			}
		case KindGovernor:
			if ev.Governor == "" || !knownGov(ev.Governor) {
				return fmt.Errorf("scenario %s: event %d: unknown governor %q", s.Name, i, ev.Governor)
			}
		case KindPartition:
			if ev.Part == nil {
				return fmt.Errorf("scenario %s: event %d: partition switch without a partition", s.Name, i)
			}
			if err := ev.Part.Validate(); err != nil {
				return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
			}
		case KindMapping:
			if ev.Map == nil {
				return fmt.Errorf("scenario %s: event %d: mapping switch without a mapping", s.Name, i)
			}
		case KindAssert:
			if ev.Node == "" {
				return fmt.Errorf("scenario %s: event %d: assertion without a node", s.Name, i)
			}
			if ev.MaxC <= 0 {
				return fmt.Errorf("scenario %s: event %d: assertion without a max_c bound", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %s: event %d: unknown kind %q", s.Name, i, ev.Kind)
		}
	}
	if arrivals == 0 {
		return fmt.Errorf("scenario %s: no application arrivals", s.Name)
	}
	// Each departure consumes one submission: more departures than
	// arrivals of an app (or of one tagged instance) can never all
	// resolve — catch the authoring error statically instead of
	// flagging the surplus departure as a runtime violation. Keys are
	// checked in sorted order so a scenario with several surplus
	// departures always reports the same one.
	for _, key := range slices.Sorted(maps.Keys(depCount)) {
		n := depCount[key]
		if n > arrCount[key] {
			app := key
			if k := strings.IndexByte(key, 0); k >= 0 {
				app = key[:k] + " (job " + key[k+1:] + ")"
			}
			return fmt.Errorf("scenario %s: %d departures of %s but only %d arrivals", s.Name, n, app, arrCount[key])
		}
	}
	for i, fc := range s.Final {
		if fc.Node == "" && fc.PeakMaxC > 0 {
			return fmt.Errorf("scenario %s: final check %d: peak bound without a node", s.Name, i)
		}
	}
	return nil
}

// EndS returns the time of the last timeline entry (ramp tails included).
func (s *Scenario) EndS() float64 {
	end := s.HorizonS
	for i := range s.Events {
		t := s.Events[i].AtS + s.Events[i].RampS
		if t > end {
			end = t
		}
	}
	return end
}

// sortedEvents returns the timeline ordered by (time, index) — a stable
// copy, so identical scenarios always replay identically.
func (s *Scenario) sortedEvents() []Event {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].AtS < evs[j].AtS })
	return evs
}

// defaultPart is the arrival split implied by a mapping: an even 4/8 when
// both CPU cores and the GPU are available, everything on the one side
// otherwise.
func defaultPart(m mapping.Mapping) mapping.Partition {
	switch {
	case m.CPUCores() > 0 && m.UseGPU:
		return mapping.Partition{Num: 4, Den: 8}
	case m.UseGPU:
		return mapping.Partition{Num: 0, Den: 8}
	default:
		return mapping.Partition{Num: 8, Den: 8}
	}
}

// --- builder ------------------------------------------------------------------

// Builder assembles a Scenario fluently; Build validates the result.
type Builder struct {
	s Scenario
}

// New starts a scenario with the paper's default 2L+4B+GPU mapping.
func New(name string) *Builder {
	return &Builder{s: Scenario{
		Name: name,
		Map:  mapping.Mapping{Big: 4, Little: 2, UseGPU: true},
	}}
}

// Mapping sets the initial CPU/GPU mapping.
func (b *Builder) Mapping(m mapping.Mapping) *Builder {
	b.s.Map = m
	return b
}

// Governor sets the initial DVFS policy name.
func (b *Builder) Governor(name string) *Builder {
	b.s.Governor = name
	return b
}

// Horizon keeps the run alive until tS even when all work has drained.
func (b *Builder) Horizon(tS float64) *Builder {
	b.s.HorizonS = tS
	return b
}

// Arrive submits an application at tS with the given work-item split.
func (b *Builder) Arrive(tS float64, app string, part mapping.Partition) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindArrival, App: app, Part: &part})
	return b
}

// ArriveDefault submits an application at tS with the mapping's natural
// split.
func (b *Builder) ArriveDefault(tS float64, app string) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindArrival, App: app})
	return b
}

// ArrivePriority submits an application at tS in the given priority class
// (higher preempts lower; the mapping's natural split).
func (b *Builder) ArrivePriority(tS float64, app string, priority int) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindArrival, App: app, Priority: priority})
	return b
}

// ArriveJob is the general arrival: explicit or nil (natural) partition,
// priority class, and an optional completion deadline in seconds after
// arrival (0 = none).
func (b *Builder) ArriveJob(tS float64, app string, part *mapping.Partition, priority int, deadlineS float64) *Builder {
	b.s.Events = append(b.s.Events, Event{
		AtS: tS, Kind: KindArrival, App: app,
		Part: part, Priority: priority, DeadlineS: deadlineS,
	})
	return b
}

// Depart cancels the named application's oldest pending submission at tS
// — queued or live — charging only the work already done.
func (b *Builder) Depart(tS float64, app string) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindDeparture, App: app})
	return b
}

// AmbientStep jumps the ambient temperature to toC at tS.
func (b *Builder) AmbientStep(tS, toC float64) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindAmbient, ToC: toC})
	return b
}

// AmbientRamp moves the ambient linearly to toC over durS seconds
// starting at tS.
func (b *Builder) AmbientRamp(tS, durS, toC float64) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindAmbient, ToC: toC, RampS: durS})
	return b
}

// SwitchGovernor swaps the DVFS policy at tS.
func (b *Builder) SwitchGovernor(tS float64, name string) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindGovernor, Governor: name})
	return b
}

// SwitchPartition re-splits the remaining work at tS.
func (b *Builder) SwitchPartition(tS float64, p mapping.Partition) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindPartition, Part: &p})
	return b
}

// SwitchMapping changes the CPU/GPU mapping at tS.
func (b *Builder) SwitchMapping(tS float64, m mapping.Mapping) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindMapping, Map: &m})
	return b
}

// AssertTempBelow requires the named sensor to read at most maxC at tS.
func (b *Builder) AssertTempBelow(tS float64, node string, maxC float64) *Builder {
	b.s.Events = append(b.s.Events, Event{AtS: tS, Kind: KindAssert, Node: node, MaxC: maxC})
	return b
}

// AssertPeakBelow requires the named node's whole-run peak to stay at or
// below maxC.
func (b *Builder) AssertPeakBelow(node string, maxC float64) *Builder {
	b.s.Final = append(b.s.Final, FinalCheck{Node: node, PeakMaxC: maxC})
	return b
}

// RequireCompletion requires every submitted job to finish.
func (b *Builder) RequireCompletion() *Builder {
	b.s.Final = append(b.s.Final, FinalCheck{Completed: true})
	return b
}

// RequireExecUnder bounds the total execution time.
func (b *Builder) RequireExecUnder(maxS float64) *Builder {
	b.s.Final = append(b.s.Final, FinalCheck{MaxExecS: maxS})
	return b
}

// Build validates and returns the scenario.
func (b *Builder) Build() (*Scenario, error) {
	s := b.s
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	return &s, nil
}
