package baseline

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

var fig5Mapping = mapping.Mapping{Big: 4, Little: 2, UseGPU: true} // the paper's 2L+4B

func newEEMP(t *testing.T) *EEMP {
	t.Helper()
	e, err := NewEEMP(soc.Exynos5422(), thermal.Exynos5422Network(), fig5Mapping)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newRMP(t *testing.T) *RMP {
	t.Helper()
	r, err := NewRMP(soc.Exynos5422(), thermal.Exynos5422Network(), fig5Mapping)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConstructorsValidate(t *testing.T) {
	plat := soc.Exynos5422()
	net := thermal.Exynos5422Network()
	if _, err := NewEEMP(plat, net, mapping.Mapping{UseGPU: true}); err == nil {
		t.Error("EEMP without CPU cores should be rejected")
	}
	if _, err := NewRMP(plat, net, mapping.Mapping{UseGPU: true}); err == nil {
		t.Error("RMP without CPU cores should be rejected")
	}
	if _, err := NewEEMP(plat, net, mapping.Mapping{Big: 9}); err == nil {
		t.Error("EEMP with impossible mapping should be rejected")
	}
}

// The EEMP table must contain exactly the paper's 128 stored design points
// per application.
func TestEEMPTableSize(t *testing.T) {
	e := newEEMP(t)
	tab, err := e.BuildTable(workload.Covariance())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab) != 128 {
		t.Errorf("table has %d entries, want 128", len(tab))
	}
	if e.StoredItems() != 128 {
		t.Errorf("StoredItems = %d", e.StoredItems())
	}
	if e.StorageBytes() != 128*mapping.DesignPointRecordBytes {
		t.Errorf("StorageBytes = %d", e.StorageBytes())
	}
	// Cached on second call (same slice).
	tab2, _ := e.BuildTable(workload.Covariance())
	if &tab[0] != &tab2[0] {
		t.Error("BuildTable should cache per app")
	}
}

// EEMP's DPM: the decision always executes at maximum big frequency.
func TestEEMPDecidesMaxFrequency(t *testing.T) {
	e := newEEMP(t)
	for _, app := range workload.Apps() {
		dp, err := e.Decide(app, 0)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if dp.Freq.BigMHz != 2000 {
			t.Errorf("%s: EEMP selected %d MHz, want 2000 (max V/f DPM)", app.Name, dp.Freq.BigMHz)
		}
		if dp.Map != fig5Mapping {
			t.Errorf("%s: mapping changed to %s", app.Name, dp.Map)
		}
	}
}

// A tight performance constraint must pull EEMP toward faster partitions.
func TestEEMPPerformanceConstraint(t *testing.T) {
	e := newEEMP(t)
	cv := workload.Covariance()
	relaxed, err := e.Decide(cv, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := e.BuildTable(cv)
	// Find the fastest max-frequency entry to use as the constraint.
	bestET := 1e9
	for _, pe := range tab {
		if pe.DP.Freq.BigMHz == 2000 && pe.ETS < bestET {
			bestET = pe.ETS
		}
	}
	tight, err := e.Decide(cv, bestET*1.01)
	if err != nil {
		t.Fatal(err)
	}
	_ = relaxed
	_ = tight // both valid design points; constraint feasibility is what matters
}

// EEMP has no thermal management: under a performance constraint that
// forces a balanced split on a hot app it must hit the firmware trip —
// the paper's central criticism.
func TestEEMPOverheatsAndThrottles(t *testing.T) {
	e := newEEMP(t)
	app := workload.Syrk()
	etCPU := app.ETCPUOnly(4, 2, 2000, 1400)
	etGPU := app.ETGPUOnly(6, 600)
	treq := 1.15 * etCPU * etGPU / (etCPU + etGPU)
	res, dp, err := e.Run(app, treq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("EEMP run did not complete")
	}
	if res.ThrottleEvents == 0 {
		t.Error("EEMP on SYRK should hit the hardware trip")
	}
	if res.PeakTempC < 94 {
		t.Errorf("EEMP peak %g should reach the 95 °C trip region", res.PeakTempC)
	}
	if dp.Freq.BigMHz != 2000 {
		t.Errorf("EEMP ran at %d MHz", dp.Freq.BigMHz)
	}
}

// RMP maps exactly the GPU-friendly apps (2DCONV, GEMM) GPU-only — the
// paper states these two ran GPU-only under RMP.
func TestRMPGPUOnlyChoices(t *testing.T) {
	r := newRMP(t)
	wantGPUOnly := map[string]bool{"2DCONV": true, "GEMM": true}
	for _, app := range workload.Apps() {
		dp, err := r.Decide(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		gpuOnly := dp.Part.Num == 0
		if gpuOnly != wantGPUOnly[app.Name] {
			t.Errorf("%s: RMP GPU-only = %v, want %v (partition %s)",
				app.Name, gpuOnly, wantGPUOnly[app.Name], dp.Part)
		}
		if gpuOnly && dp.Map.CPUCores() != 0 {
			t.Errorf("%s: GPU-only choice should release CPU cores, got %s", app.Name, dp.Map)
		}
	}
}

// RMP's GPU-only runs must be dramatically cooler than its split runs —
// that is its whole reliability argument.
func TestRMPGPUOnlyRunsCool(t *testing.T) {
	r := newRMP(t)
	res, dp, err := r.Run(workload.TwoDConv())
	if err != nil {
		t.Fatal(err)
	}
	if dp.Part.Num != 0 {
		t.Fatalf("expected GPU-only for 2DCONV, got %s", dp.Part)
	}
	if res.PeakTempC > 75 {
		t.Errorf("GPU-only 2DCONV peak %g should stay well below the trip", res.PeakTempC)
	}
	if res.ThrottleEvents != 0 {
		t.Error("GPU-only run should never throttle")
	}
}

// RMP split runs still overheat (no online optimisation): the paper's
// motivation for TEEM.
func TestRMPSplitStillHot(t *testing.T) {
	r := newRMP(t)
	res, dp, err := r.Run(workload.Syrk())
	if err != nil {
		t.Fatal(err)
	}
	if dp.Part.Num == 0 {
		t.Fatalf("SYRK should use a CPU-GPU split under RMP, got %s", dp.Part)
	}
	if res.PeakTempC < 94 {
		t.Errorf("RMP split SYRK peak %g should reach the trip region", res.PeakTempC)
	}
}

// GPUOnlySlack controls the GPU-only boundary: with a generous slack every
// app goes GPU-only, with none no app does.
func TestRMPSlackBoundary(t *testing.T) {
	r := newRMP(t)
	r.GPUOnlySlack = 100
	for _, app := range workload.Apps() {
		dp, err := r.Decide(app)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Part.Num != 0 {
			t.Errorf("%s: huge slack should force GPU-only", app.Name)
		}
	}
	r.GPUOnlySlack = 1.0
	for _, app := range workload.Apps() {
		dp, err := r.Decide(app)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Part.Num == 0 {
			t.Errorf("%s: unit slack should never pick GPU-only", app.Name)
		}
	}
}
