// Package baseline implements the two comparison approaches of the TEEM
// paper's evaluation:
//
//   - EEMP (Singh et al. [15]): energy-efficient run-time mapping and
//     thread partitioning. Offline it evaluates and stores a 128-entry
//     design-point table per application (8 partition grains × 16 big-
//     cluster OPPs); at runtime it picks the lowest-predicted-energy entry
//     meeting the performance constraint, executes at the selected
//     voltage/frequency and powers off unused cores. It has no thermal
//     management — the firmware TMU is its only protection, which is the
//     failure mode the paper exposes.
//
//   - RMP (Wachter et al. [9]): reliable (temperature-aware) mapping and
//     partitioning. If running entirely on the GPU costs only a modest
//     performance trade-off, the application is mapped GPU-only (the
//     cooler choice); otherwise the work-item partition with minimal
//     performance infringement is selected, temperature-breaking ties.
//     There is no online optimisation: the design point is fixed before
//     execution.
package baseline

import (
	"errors"
	"fmt"

	"teem/internal/governor"
	"teem/internal/mapping"
	"teem/internal/profile"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// EEMP is the energy-efficient mapping and partitioning baseline.
type EEMP struct {
	plat *soc.Platform
	net  *thermal.Network
	ev   *profile.Evaluator
	// Map is the CPU mapping the table is built for (the paper's
	// evaluation pins 2L+4B).
	Map mapping.Mapping

	tables map[string][]profile.PointEval
}

// NewEEMP builds the baseline for a platform and CPU mapping.
func NewEEMP(plat *soc.Platform, net *thermal.Network, m mapping.Mapping) (*EEMP, error) {
	ev, err := profile.NewEvaluator(plat, net)
	if err != nil {
		return nil, err
	}
	big, lit := plat.Big(), plat.Little()
	if err := m.Validate(big.NumCores, lit.NumCores); err != nil {
		return nil, err
	}
	if m.CPUCores() == 0 {
		return nil, errors.New("baseline: EEMP mapping needs CPU cores")
	}
	return &EEMP{plat: plat, net: net, ev: ev, Map: m, tables: map[string][]profile.PointEval{}}, nil
}

// tableFreqsMHz are the 16 big-cluster OPPs of the stored table
// (500–2000 MHz); with the 8 partition grains that keep the GPU busy this
// yields the paper's 128 stored design points per application.
func tableFreqsMHz() []int {
	fs := make([]int, 0, 16)
	for f := 500; f <= 2000; f += 100 {
		fs = append(fs, f)
	}
	return fs
}

// BuildTable evaluates and stores the 128-entry design-point table for an
// application (the offline phase of [15]).
func (e *EEMP) BuildTable(app *workload.App) ([]profile.PointEval, error) {
	if t, ok := e.tables[app.Name]; ok {
		return t, nil
	}
	var dps []mapping.DesignPoint
	for _, part := range mapping.Partitions() {
		if part.Num == part.Den {
			continue // CPU-only grain excluded: EEMP always co-runs the GPU
		}
		for _, f := range tableFreqsMHz() {
			m := e.Map
			m.UseGPU = true
			dps = append(dps, mapping.DesignPoint{
				Map:  m,
				Freq: mapping.FreqSetting{BigMHz: f, LittleMHz: 0, GPUMHz: 0},
				Part: part,
			})
		}
	}
	if len(dps) != mapping.EEMPTableEntries {
		return nil, fmt.Errorf("baseline: table has %d entries, want %d", len(dps), mapping.EEMPTableEntries)
	}
	t := e.ev.EvaluateMany(app, dps)
	if len(t) != mapping.EEMPTableEntries {
		return nil, fmt.Errorf("baseline: only %d of %d table entries were feasible", len(t), mapping.EEMPTableEntries)
	}
	e.tables[app.Name] = t
	return t, nil
}

// StorageBytes returns the per-application memory cost of the stored
// table — the §V.D comparison number.
func (e *EEMP) StorageBytes() int { return mapping.EEMPStorageBytes() }

// StoredItems returns the per-application stored item count (128).
func (e *EEMP) StoredItems() int { return mapping.EEMPStoredItems() }

// Decide selects the design point: minimum predicted energy subject to the
// performance constraint treqS (0 = unconstrained, pure energy minimum).
// Per [15]'s dynamic power management the execution always happens at the
// maximum voltage/frequency with unused cores off, so the runtime choice
// is among the table's maximum-frequency rows; the lower-frequency rows
// are part of the stored offline characterisation (§V.D counts them).
func (e *EEMP) Decide(app *workload.App, treqS float64) (mapping.DesignPoint, error) {
	t, err := e.BuildTable(app)
	if err != nil {
		return mapping.DesignPoint{}, err
	}
	maxB := e.plat.Big().MaxFreqMHz()
	var atMax []profile.PointEval
	for _, pe := range t {
		if pe.DP.Freq.BigMHz == maxB {
			atMax = append(atMax, pe)
		}
	}
	best, _, err := profile.BestByEnergy(atMax, treqS)
	if err != nil {
		return mapping.DesignPoint{}, err
	}
	return best.DP, nil
}

// Run executes the application under EEMP: the selected fixed
// voltage/frequency, unused cores hotplugged off, no thermal policy (the
// firmware TMU still trips).
func (e *EEMP) Run(app *workload.App, treqS float64) (*sim.Result, mapping.DesignPoint, error) {
	dp, err := e.Decide(app, treqS)
	if err != nil {
		return nil, mapping.DesignPoint{}, err
	}
	cfg := sim.Config{
		Platform: e.plat,
		Net:      e.net,
		App:      app,
		Map:      dp.Map,
		Part:     dp.Part,
		Freq:     dp.Freq,
		Governor: &governor.Userspace{
			BigMHz:    dp.Freq.BigMHz,
			LittleMHz: dp.Freq.LittleMHz,
			GPUMHz:    dp.Freq.GPUMHz,
		},
		HotplugUnused: true,
	}
	res, err := sim.RunWarm(cfg)
	if err != nil {
		return nil, dp, err
	}
	return res, dp, nil
}

// RMP is the reliable (temperature-aware) mapping and partitioning
// baseline.
type RMP struct {
	plat *soc.Platform
	net  *thermal.Network
	ev   *profile.Evaluator
	// Map is the CPU mapping used when a split is selected.
	Map mapping.Mapping
	// GPUOnlySlack is the tolerated GPU-only slowdown over the best
	// split (the paper's "minimal performance trade-off"); default 1.5.
	GPUOnlySlack float64
	// TempSlack bounds the split search: among grains within this
	// factor of the best predicted ET, the coolest is chosen; default
	// 1.1.
	TempSlack float64
}

// NewRMP builds the baseline for a platform and CPU mapping.
func NewRMP(plat *soc.Platform, net *thermal.Network, m mapping.Mapping) (*RMP, error) {
	ev, err := profile.NewEvaluator(plat, net)
	if err != nil {
		return nil, err
	}
	big, lit := plat.Big(), plat.Little()
	if err := m.Validate(big.NumCores, lit.NumCores); err != nil {
		return nil, err
	}
	if m.CPUCores() == 0 {
		return nil, errors.New("baseline: RMP mapping needs CPU cores")
	}
	return &RMP{plat: plat, net: net, ev: ev, Map: m, GPUOnlySlack: 1.5, TempSlack: 1.1}, nil
}

// Decide picks GPU-only when its cost is within GPUOnlySlack of the best
// split; otherwise the coolest split within TempSlack of the fastest.
func (r *RMP) Decide(app *workload.App) (mapping.DesignPoint, error) {
	if err := app.Validate(); err != nil {
		return mapping.DesignPoint{}, err
	}
	var candidates []mapping.DesignPoint
	for _, part := range mapping.Partitions() {
		m := r.Map
		m.UseGPU = part.Num < part.Den
		if !m.UseGPU && m.CPUCores() == 0 {
			continue
		}
		if part.Num == 0 {
			// GPU-only candidate uses no CPU cores at all.
			m = mapping.Mapping{UseGPU: true}
		}
		candidates = append(candidates, mapping.DesignPoint{Map: m, Part: part})
	}
	evals := r.ev.EvaluateMany(app, candidates)
	if len(evals) == 0 {
		return mapping.DesignPoint{}, errors.New("baseline: no feasible RMP candidates")
	}
	best, err := profile.BestByET(evals)
	if err != nil {
		return mapping.DesignPoint{}, err
	}
	// GPU-only test: "better temperature behaviour with minimal
	// performance trade-off".
	for _, e := range evals {
		if e.DP.Part.Num == 0 && e.ETS <= r.GPUOnlySlack*best.ETS {
			return e.DP, nil
		}
	}
	// Split: coolest grain within TempSlack of the fastest.
	chosen := best
	for _, e := range evals {
		if e.DP.Part.Num == 0 {
			continue
		}
		if e.ETS <= r.TempSlack*best.ETS && e.ATC < chosen.ATC {
			chosen = e
		}
	}
	return chosen.DP, nil
}

// Run executes the application under RMP: fixed design point at maximum
// frequencies, no online adaptation (the firmware TMU still trips).
func (r *RMP) Run(app *workload.App) (*sim.Result, mapping.DesignPoint, error) {
	dp, err := r.Decide(app)
	if err != nil {
		return nil, mapping.DesignPoint{}, err
	}
	cfg := sim.Config{
		Platform:      r.plat,
		Net:           r.net,
		App:           app,
		Map:           dp.Map,
		Part:          dp.Part,
		Governor:      governor.Performance{},
		HotplugUnused: true,
	}
	res, err := sim.RunWarm(cfg)
	if err != nil {
		return nil, dp, err
	}
	return res, dp, nil
}
