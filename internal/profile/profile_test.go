package profile

import (
	"math"
	"testing"
	"testing/quick"

	"teem/internal/mapping"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func newEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(soc.Exynos5422(), thermal.Exynos5422Network())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func dp(nB, nL, partNum, bigMHz int) mapping.DesignPoint {
	return mapping.DesignPoint{
		Map:  mapping.Mapping{Big: nB, Little: nL, UseGPU: partNum < 8},
		Freq: mapping.FreqSetting{BigMHz: bigMHz},
		Part: mapping.Partition{Num: partNum, Den: 8},
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	broken := soc.Exynos5422()
	broken.Clusters = broken.Clusters[:2]
	if _, err := NewEvaluator(broken, thermal.Exynos5422Network()); err == nil {
		t.Error("platform without GPU should be rejected")
	}
	bad := soc.Exynos5422()
	bad.Name = ""
	if _, err := NewEvaluator(bad, thermal.Exynos5422Network()); err == nil {
		t.Error("invalid platform should be rejected")
	}
}

// Analytic ET must match the workload's closed forms at the extremes.
func TestEvaluateMatchesClosedForms(t *testing.T) {
	ev := newEvaluator(t)
	cv := workload.Covariance()

	// GPU-only.
	pe, err := ev.Evaluate(cv, dp(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := cv.ETGPUOnly(6, 600); math.Abs(pe.ETS-want) > 1e-9 {
		t.Errorf("GPU-only ET = %g, want %g", pe.ETS, want)
	}

	// CPU-only 4B+4L at max frequency.
	d := dp(4, 4, 8, 2000)
	d.Map.UseGPU = false
	pe, err = ev.Evaluate(cv, d)
	if err != nil {
		t.Fatal(err)
	}
	if want := cv.ETCPUOnly(4, 4, 2000, 1400); math.Abs(pe.ETS-want) > 1e-9 {
		t.Errorf("CPU-only ET = %g, want %g", pe.ETS, want)
	}
}

// Eq. (3): the split ET is the max of the chunk times.
func TestEvaluateEq3(t *testing.T) {
	ev := newEvaluator(t)
	cv := workload.Covariance()
	pe, err := ev.Evaluate(cv, dp(4, 2, 4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	cpu := 1024 / cv.CPURate(4, 2, 2000, 1400)
	gpu := 1024 / cv.GPURate(6, 600)
	want := math.Max(cpu, gpu)
	if math.Abs(pe.ETS-want) > 1e-9 {
		t.Errorf("split ET = %g, want max(%g, %g)", pe.ETS, cpu, gpu)
	}
}

func TestEvaluateInfeasible(t *testing.T) {
	ev := newEvaluator(t)
	cv := workload.Covariance()
	// CPU work-items but no CPU cores.
	d := mapping.DesignPoint{
		Map:  mapping.Mapping{UseGPU: true},
		Part: mapping.Partition{Num: 4, Den: 8},
	}
	if _, err := ev.Evaluate(cv, d); err == nil {
		t.Error("CPU work without cores should error")
	}
	// GPU work-items but GPU unused.
	d = mapping.DesignPoint{
		Map:  mapping.Mapping{Big: 2},
		Part: mapping.Partition{Num: 4, Den: 8},
	}
	if _, err := ev.Evaluate(cv, d); err == nil {
		t.Error("GPU work without GPU should error")
	}
}

// Predicted steady temperature must increase with big-cluster frequency.
func TestEvaluateTempMonotoneInFrequency(t *testing.T) {
	ev := newEvaluator(t)
	cv := workload.Covariance()
	prev := -1.0
	for _, f := range []int{900, 1400, 1800, 2000} {
		pe, err := ev.Evaluate(cv, dp(4, 2, 4, f))
		if err != nil {
			t.Fatal(err)
		}
		if pe.ATC <= prev {
			t.Errorf("AT at %d MHz (%g) not above AT at lower frequency (%g)", f, pe.ATC, prev)
		}
		prev = pe.ATC
	}
}

// Higher frequency must not increase predicted ET, and energy must be
// positive.
func TestEvaluateBasicSanity(t *testing.T) {
	ev := newEvaluator(t)
	for _, app := range workload.Apps() {
		lo, err := ev.Evaluate(app, dp(4, 2, 4, 1000))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		hi, err := ev.Evaluate(app, dp(4, 2, 4, 2000))
		if err != nil {
			t.Fatal(err)
		}
		if hi.ETS > lo.ETS+1e-9 {
			t.Errorf("%s: ET grew with frequency", app.Name)
		}
		if lo.ECJ <= 0 || hi.ECJ <= 0 {
			t.Errorf("%s: non-positive energy", app.Name)
		}
	}
}

func TestEvaluateManySkipsInfeasible(t *testing.T) {
	ev := newEvaluator(t)
	cv := workload.Covariance()
	dps := []mapping.DesignPoint{
		dp(4, 2, 4, 2000),
		{Map: mapping.Mapping{UseGPU: true}, Part: mapping.Partition{Num: 4, Den: 8}}, // infeasible
		dp(2, 2, 2, 1400),
	}
	out := ev.EvaluateMany(cv, dps)
	if len(out) != 2 {
		t.Errorf("EvaluateMany returned %d evals, want 2", len(out))
	}
}

func TestBestSelectors(t *testing.T) {
	evals := []PointEval{
		{ETS: 30, ECJ: 300},
		{ETS: 20, ECJ: 400},
		{ETS: 40, ECJ: 200},
	}
	best, err := BestByET(evals)
	if err != nil || best.ETS != 20 {
		t.Errorf("BestByET = %+v", best)
	}
	// Energy minimum under a 35 s constraint: the 300 J point.
	got, ok, err := BestByEnergy(evals, 35)
	if err != nil || !ok || got.ECJ != 300 {
		t.Errorf("BestByEnergy(35) = %+v ok=%v", got, ok)
	}
	// Unconstrained: the 200 J point.
	got, ok, _ = BestByEnergy(evals, 0)
	if !ok || got.ECJ != 200 {
		t.Errorf("BestByEnergy(0) = %+v", got)
	}
	// Impossible constraint falls back to the fastest with ok=false.
	got, ok, _ = BestByEnergy(evals, 10)
	if ok || got.ETS != 20 {
		t.Errorf("BestByEnergy(10) = %+v ok=%v", got, ok)
	}
	if _, err := BestByET(nil); err == nil {
		t.Error("BestByET on empty input should error")
	}
	if _, _, err := BestByEnergy(nil, 0); err == nil {
		t.Error("BestByEnergy on empty input should error")
	}
}

// The analytic evaluator must agree with the transient simulator on
// execution time for thermally benign points (no throttling involved).
func TestAnalyticMatchesSimulatorWhenCool(t *testing.T) {
	ev := newEvaluator(t)
	mv := workload.Mvt()
	d := dp(2, 2, 2, 1200) // low frequency, mostly GPU: cool
	pe, err := ev.Evaluate(mv, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Simulate(mv, d, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.ETS-res.ExecTimeS) > 0.1 {
		t.Errorf("analytic ET %g vs simulated %g", pe.ETS, res.ExecTimeS)
	}
	// Analytic steady temperature within a few degrees of the simulated
	// average.
	if math.Abs(pe.ATC-res.AvgTempC) > 6 {
		t.Errorf("analytic AT %g vs simulated avg %g", pe.ATC, res.AvgTempC)
	}
}

func TestPointEvalString(t *testing.T) {
	pe := PointEval{DP: dp(2, 1, 4, 1800), ETS: 12.3, ECJ: 456, ATC: 78.9}
	s := pe.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}

// Property: for any feasible grain and frequency, analytic predictions are
// finite, positive, and within physical temperature bounds.
func TestEvaluatePhysicalBoundsProperty(t *testing.T) {
	ev := newEvaluator(t)
	apps := workload.Apps()
	f := func(appIdx, grain, fIdx uint8) bool {
		app := apps[int(appIdx)%len(apps)]
		g := int(grain) % 8 // 0..7 keeps the GPU busy
		fb := 600 + 200*(int(fIdx)%8)
		pe, err := ev.Evaluate(app, dp(4, 2, g, fb))
		if err != nil {
			return false
		}
		return pe.ETS > 0 && pe.ETS < 1000 &&
			pe.ECJ > 0 && pe.ECJ < 1e5 &&
			pe.ATC > 28 && pe.ATC < 130
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
