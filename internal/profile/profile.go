// Package profile evaluates design points for applications on a platform
// model. It offers two fidelities:
//
//   - Evaluate: fast analytic prediction (Eq. 3 execution time, power-model
//     energy at thermal steady state) used to sweep large design spaces —
//     the paper's 10 368-point diverse subset — and to fill the EEMP
//     baseline's offline tables;
//   - Simulate: full transient co-simulation through internal/sim for the
//     measurements that become regression observations.
//
// The analytic path deliberately ignores transient throttling: that is
// exactly the blind spot of offline-only approaches the paper exploits,
// so baselines built on these predictions exhibit the paper's failure
// modes when the thermal reality differs.
package profile

import (
	"errors"
	"fmt"
	"math"

	"teem/internal/mapping"
	"teem/internal/power"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// PointEval is the predicted or measured behaviour of one design point.
type PointEval struct {
	// DP is the evaluated design point.
	DP mapping.DesignPoint
	// ETS is execution time (s); ECJ energy (J); ATC and PTC the
	// average and peak big-cluster temperature (°C).
	ETS, ECJ, ATC, PTC float64
}

// Evaluator predicts design-point behaviour on a platform. It is safe for
// concurrent use: the cached thermal model is only read (SteadyState works
// on its own copies).
type Evaluator struct {
	plat *soc.Platform
	net  *thermal.Network
	pow  *power.Model
	// therm is built once; SteadyState never mutates model state, so
	// sweeping a design space does not rebuild the RC system per point.
	therm *thermal.Model
	// nodeOf caches each cluster's thermal node; pkgNode the "pkg"
	// node (-1 when absent).
	nodeOf  []int
	pkgNode int
}

// NewEvaluator builds an evaluator.
func NewEvaluator(plat *soc.Platform, net *thermal.Network) (*Evaluator, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if plat.Big() == nil || plat.Little() == nil || plat.GPU() == nil {
		return nil, errors.New("profile: platform must have big, LITTLE and GPU clusters")
	}
	pm, err := power.NewModel(plat)
	if err != nil {
		return nil, err
	}
	tm, err := thermal.NewModel(net, plat.AmbientC)
	if err != nil {
		return nil, err
	}
	nodeOf := make([]int, len(plat.Clusters))
	for i := range plat.Clusters {
		n := net.NodeIndex(plat.Clusters[i].Name)
		if n < 0 {
			return nil, fmt.Errorf("profile: thermal network lacks a node for cluster %s", plat.Clusters[i].Name)
		}
		nodeOf[i] = n
	}
	return &Evaluator{
		plat:    plat,
		net:     net,
		pow:     pm,
		therm:   tm,
		nodeOf:  nodeOf,
		pkgNode: net.NodeIndex("pkg"),
	}, nil
}

// Evaluate analytically predicts one design point: chunk times from the
// workload model (Eq. 3), steady-state temperatures from the RC network,
// and energy as predicted power × predicted time.
func (ev *Evaluator) Evaluate(app *workload.App, dp mapping.DesignPoint) (PointEval, error) {
	if err := app.Validate(); err != nil {
		return PointEval{}, err
	}
	big, lit, gpu := ev.plat.Big(), ev.plat.Little(), ev.plat.GPU()
	if err := dp.Map.Validate(big.NumCores, lit.NumCores); err != nil {
		return PointEval{}, err
	}
	if err := dp.Part.Validate(); err != nil {
		return PointEval{}, err
	}
	fb := snap(big, dp.Freq.BigMHz)
	fl := snap(lit, dp.Freq.LittleMHz)
	fg := snap(gpu, dp.Freq.GPUMHz)

	total := float64(app.WorkItems)
	cpuWI := float64(dp.Part.CPUItems(app.WorkItems))
	gpuWI := total - cpuWI
	if cpuWI > 0 && dp.Map.CPUCores() == 0 {
		return PointEval{}, errors.New("profile: CPU work-items but no CPU cores in mapping")
	}
	if gpuWI > 0 && !dp.Map.UseGPU {
		return PointEval{}, errors.New("profile: GPU work-items but GPU unused in mapping")
	}

	// Eq. (3): ET = max(CPU chunk, GPU chunk).
	var tCPU, tGPU float64
	cpuRate := app.CPURate(dp.Map.Big, dp.Map.Little, fb, fl)
	if cpuWI > 0 {
		tCPU = cpuWI / cpuRate
	}
	gpuRate := app.GPURate(gpu.NumCores, fg)
	if gpuWI > 0 {
		tGPU = gpuWI / gpuRate
	}
	et := math.Max(tCPU, tGPU)
	if et <= 0 {
		return PointEval{}, errors.New("profile: design point performs no work")
	}

	// Steady-state temperatures and power with both chunks active
	// (leakage evaluated at a two-pass fixed point).
	bd, temps, err := ev.steady(app, dp, fb, fl, fg, cpuWI > 0, gpuWI > 0)
	if err != nil {
		return PointEval{}, err
	}
	bigNode := ev.net.NodeIndex(big.Name)
	at := temps[bigNode]

	return PointEval{
		DP:  dp,
		ETS: et,
		ECJ: bd.TotalW() * et,
		ATC: at,
		// The analytic peak adds the transient overshoot margin the
		// integrator exhibits near regime change; steady state is
		// the asymptote, so PT ≈ AT here.
		PTC: at,
	}, nil
}

func snap(c *soc.Cluster, mhz int) int {
	if mhz == 0 {
		return c.MaxFreqMHz()
	}
	return c.NearestOPP(mhz).FreqMHz
}

// steady computes the fixed-point power/temperature for a fully loaded
// design point.
func (ev *Evaluator) steady(app *workload.App, dp mapping.DesignPoint, fb, fl, fg int, cpuBusy, gpuBusy bool) (*power.Breakdown, []float64, error) {
	gpu := ev.plat.GPU()
	temps := make([]float64, len(ev.net.Nodes))
	for i := range temps {
		temps[i] = 60 // reasonable operating seed
	}
	var (
		bd    *power.Breakdown
		err   error
		loads = make([]power.ClusterLoad, len(ev.plat.Clusters))
		inj   = make([]float64, len(ev.net.Nodes))
	)
	for iter := 0; iter < 4; iter++ {
		for i := range ev.plat.Clusters {
			c := &ev.plat.Clusters[i]
			l := power.ClusterLoad{FreqMHz: maxFreqFor(c, fb, fl, fg), TempC: temps[ev.nodeOf[i]], Activity: 1}
			switch c.Kind {
			case soc.BigCPU:
				l.ActiveCores = dp.Map.Big
				l.OnCores = dp.Map.Big
				l.Utilization = bool2f(cpuBusy && dp.Map.Big > 0)
				l.Activity = app.ActivityCPU
			case soc.LittleCPU:
				l.ActiveCores = dp.Map.Little
				l.OnCores = dp.Map.Little
				l.Utilization = bool2f(cpuBusy && dp.Map.Little > 0)
				l.Activity = app.ActivityCPU
			case soc.GPU:
				if dp.Map.UseGPU {
					l.ActiveCores = c.NumCores
					l.OnCores = c.NumCores
				}
				l.Utilization = bool2f(gpuBusy && dp.Map.UseGPU)
				l.Activity = app.ActivityGPU
			}
			if l.ActiveCores == 0 {
				l.Utilization = 0
			}
			loads[i] = l
		}
		rate := 0.0
		if cpuBusy {
			rate += app.CPURate(dp.Map.Big, dp.Map.Little, fb, fl)
		}
		if gpuBusy && dp.Map.UseGPU {
			rate += app.GPURate(gpu.NumCores, fg)
		}
		bd, err = ev.pow.Evaluate(loads, app.MemGBs(rate))
		if err != nil {
			return nil, nil, err
		}
		for i := range inj {
			inj[i] = 0
		}
		for i := range ev.plat.Clusters {
			inj[ev.nodeOf[i]] += bd.ClusterW(i)
		}
		if ev.pkgNode >= 0 {
			inj[ev.pkgNode] += bd.DRAMW + 0.5*bd.BaselineW
		}
		temps, err = ev.therm.SteadyState(inj)
		if err != nil {
			return nil, nil, err
		}
	}
	return bd, temps, nil
}

func maxFreqFor(c *soc.Cluster, fb, fl, fg int) int {
	switch c.Kind {
	case soc.BigCPU:
		return fb
	case soc.LittleCPU:
		return fl
	case soc.GPU:
		return fg
	default:
		return c.MaxFreqMHz()
	}
}

func bool2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// EvaluateMany sweeps a set of design points, skipping infeasible ones
// (e.g. CPU work with no CPU cores) silently, and returns the feasible
// evaluations.
func (ev *Evaluator) EvaluateMany(app *workload.App, dps []mapping.DesignPoint) []PointEval {
	out := make([]PointEval, 0, len(dps))
	for _, dp := range dps {
		pe, err := ev.Evaluate(app, dp)
		if err != nil {
			continue
		}
		out = append(out, pe)
	}
	return out
}

// Simulate runs a full transient co-simulation of a design point with an
// optional governor, using the paper's steady-regime protocol.
func (ev *Evaluator) Simulate(app *workload.App, dp mapping.DesignPoint, gov sim.Governor, hotplug bool) (*sim.Result, error) {
	cfg := sim.Config{
		Platform:      ev.plat,
		Net:           ev.net,
		App:           app,
		Map:           dp.Map,
		Part:          dp.Part,
		Freq:          dp.Freq,
		Governor:      gov,
		HotplugUnused: hotplug,
	}
	return sim.RunWarm(cfg)
}

// BestByET returns the evaluation with the lowest predicted execution
// time.
func BestByET(evals []PointEval) (PointEval, error) {
	if len(evals) == 0 {
		return PointEval{}, errors.New("profile: no evaluations")
	}
	best := evals[0]
	for _, e := range evals[1:] {
		if e.ETS < best.ETS {
			best = e
		}
	}
	return best, nil
}

// BestByEnergy returns the lowest-energy evaluation whose execution time
// does not exceed treqS (0 disables the constraint). If none qualifies the
// fastest point is returned with ok=false.
func BestByEnergy(evals []PointEval, treqS float64) (PointEval, bool, error) {
	if len(evals) == 0 {
		return PointEval{}, false, errors.New("profile: no evaluations")
	}
	var best *PointEval
	for i := range evals {
		e := &evals[i]
		if treqS > 0 && e.ETS > treqS {
			continue
		}
		if best == nil || e.ECJ < best.ECJ {
			best = e
		}
	}
	if best != nil {
		return *best, true, nil
	}
	fastest, err := BestByET(evals)
	return fastest, false, err
}

// String renders a PointEval compactly.
func (pe PointEval) String() string {
	return fmt.Sprintf("%s ET=%.1fs EC=%.0fJ AT=%.1f°C", pe.DP, pe.ETS, pe.ECJ, pe.ATC)
}
