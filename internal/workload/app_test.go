package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	apps := Apps()
	if len(apps) != 8 {
		t.Fatalf("catalog has %d apps, want 8", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if seen[a.Short] {
			t.Errorf("duplicate short code %s", a.Short)
		}
		seen[a.Short] = true
	}
}

func TestLookups(t *testing.T) {
	for _, code := range []string{"2D", "CV", "CR", "GM", "2M", "MV", "S2", "SR"} {
		if _, err := ByShort(code); err != nil {
			t.Errorf("ByShort(%s): %v", code, err)
		}
	}
	// GE is the paper's in-text alias for GEMM.
	ge, err := ByShort("GE")
	if err != nil || ge.Name != "GEMM" {
		t.Errorf("ByShort(GE) = %v, %v; want GEMM", ge, err)
	}
	if _, err := ByShort("XX"); err == nil {
		t.Error("ByShort should reject unknown code")
	}
	cv, err := ByName("COVARIANCE")
	if err != nil || cv.Short != "CV" {
		t.Errorf("ByName(COVARIANCE) = %v, %v", cv, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should reject unknown name")
	}
}

// The calibrated execution-time anchors: whole-NDRange times at maximum
// frequency must land where the catalog doc says (paper Fig. 5c band).
func TestCalibratedExecutionTimes(t *testing.T) {
	cases := []struct {
		code    string
		wantCPU float64 // 4 big @2000 + 4 LITTLE @1400
		wantGPU float64 // 6 shaders @600
	}{
		{"2D", 55, 22}, {"CV", 48, 70}, {"CR", 50, 72}, {"GM", 64, 28},
		{"2M", 45, 35}, {"MV", 38, 48}, {"S2", 55, 50}, {"SR", 35, 38},
	}
	for _, c := range cases {
		a, err := ByShort(c.code)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.ETCPUOnly(4, 4, 2000, 1400); math.Abs(got-c.wantCPU) > 0.01 {
			t.Errorf("%s: ETCPUOnly = %.2f, want %.2f", c.code, got, c.wantCPU)
		}
		if got := a.ETGPUOnly(6, 600); math.Abs(got-c.wantGPU) > 0.01 {
			t.Errorf("%s: ETGPUOnly = %.2f, want %.2f", c.code, got, c.wantGPU)
		}
	}
}

// GPU-friendliness ordering from the paper: 2DCONV and GEMM must prefer the
// GPU strongly; SYRK must be CPU-competitive.
func TestAffinityShape(t *testing.T) {
	speedup := func(code string) float64 {
		a, _ := ByShort(code)
		return a.ETCPUOnly(4, 4, 2000, 1400) / a.ETGPUOnly(6, 600)
	}
	if s := speedup("2D"); s < 2 {
		t.Errorf("2DCONV GPU speedup = %.2f, want ≥ 2", s)
	}
	if s := speedup("GM"); s < 2 {
		t.Errorf("GEMM GPU speedup = %.2f, want ≥ 2", s)
	}
	if s := speedup("SR"); s > 1.1 {
		t.Errorf("SYRK GPU speedup = %.2f, want ≤ 1.1 (CPU-competitive)", s)
	}
}

func TestRooflineFrequencyScaling(t *testing.T) {
	cv, _ := ByShort("CV")
	// Compute-dominated portion scales; memory portion doesn't.
	tMax := cv.BigSecAt(2000)
	tHalf := cv.BigSecAt(1000)
	// With m = 0.25: t(1000) = 0.75·t·2 + 0.25·t = 1.75·t(2000).
	if r := tHalf / tMax; math.Abs(r-1.75) > 1e-9 {
		t.Errorf("roofline ratio = %g, want 1.75", r)
	}
	mv, _ := ByShort("MV")
	// Memory-bound app scales much worse.
	rMV := mv.BigSecAt(1000) / mv.BigSecAt(2000)
	rCV := tHalf / tMax
	if rMV >= rCV {
		t.Errorf("MVT slowdown %g should be below CV slowdown %g (memory bound)", rMV, rCV)
	}
}

func TestRatesAdditive(t *testing.T) {
	cv, _ := ByShort("CV")
	bigOnly := cv.CPURate(4, 0, 2000, 1400)
	litOnly := cv.CPURate(0, 4, 2000, 1400)
	both := cv.CPURate(4, 4, 2000, 1400)
	if math.Abs(both-(bigOnly+litOnly)) > 1e-12 {
		t.Errorf("rates not additive: %g + %g != %g", bigOnly, litOnly, both)
	}
	if bigOnly <= litOnly {
		t.Error("big cores should outperform LITTLE cores")
	}
}

func TestZeroResourceRates(t *testing.T) {
	cv, _ := ByShort("CV")
	if r := cv.CPURate(0, 0, 2000, 1400); r != 0 {
		t.Errorf("CPURate with no cores = %g", r)
	}
	if r := cv.GPURate(0, 600); r != 0 {
		t.Errorf("GPURate with no shaders = %g", r)
	}
	if et := cv.ETCPUOnly(0, 0, 2000, 1400); et != 0 {
		t.Errorf("ETCPUOnly with no cores = %g (sentinel should be 0)", et)
	}
	if et := cv.ETGPUOnly(0, 600); et != 0 {
		t.Errorf("ETGPUOnly with no shaders = %g", et)
	}
}

func TestMemGBs(t *testing.T) {
	cv, _ := ByShort("CV")
	got := cv.MemGBs(40) // 40 WI/s × 25 MB = 1 GB/s
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("MemGBs(40) = %g, want 1.0", got)
	}
}

func TestValidateRejectsBadApps(t *testing.T) {
	mk := func(mut func(*App)) *App {
		a := Covariance()
		mut(a)
		return a
	}
	bad := []*App{
		mk(func(a *App) { a.Name = "" }),
		mk(func(a *App) { a.WorkItems = 0 }),
		mk(func(a *App) { a.BigSecPerWI = 0 }),
		mk(func(a *App) { a.RefGPUMHz = 0 }),
		mk(func(a *App) { a.MemBoundCPU = 1 }),
		mk(func(a *App) { a.MemBoundGPU = -0.1 }),
		mk(func(a *App) { a.ActivityCPU = 0 }),
		mk(func(a *App) { a.ActivityGPU = 1.5 }),
		mk(func(a *App) { a.MemBytesPerWI = -1 }),
		mk(func(a *App) { a.GPUParallelEff = 0 }),
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid app", i)
		}
	}
}

// Property: execution time decreases (weakly) with frequency and with core
// count for every catalog app.
func TestETMonotoneProperty(t *testing.T) {
	apps := Apps()
	f := func(appIdx uint8, f1, f2 uint16, n1, n2 uint8) bool {
		a := apps[int(appIdx)%len(apps)]
		fa := 200 + int(f1)%1801
		fb := 200 + int(f2)%1801
		if fa > fb {
			fa, fb = fb, fa
		}
		na := 1 + int(n1)%4
		nb := 1 + int(n2)%4
		if na > nb {
			na, nb = nb, na
		}
		etSlow := a.ETCPUOnly(na, 0, fa, 1400)
		etFast := a.ETCPUOnly(nb, 0, fb, 1400)
		return etFast <= etSlow+1e-9 && etFast > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eq. (3) of the paper — for any split, the max of chunk times is
// at least the perfectly balanced lower bound and at most the single-sided
// time.
func TestPartitionBoundsProperty(t *testing.T) {
	apps := Apps()
	f := func(appIdx uint8, fracRaw uint8) bool {
		a := apps[int(appIdx)%len(apps)]
		w := float64(fracRaw%9) / 8 // the paper's 9 partition grains
		etCPU := a.ETCPUOnly(4, 4, 2000, 1400)
		etGPU := a.ETGPUOnly(6, 600)
		// Eq. (3): ET = max(w·ETCPU, (1−w)·ETGPU).
		et := math.Max(w*etCPU, (1-w)*etGPU)
		// Balanced optimum: etCPU·etGPU/(etCPU+etGPU).
		lower := etCPU * etGPU / (etCPU + etGPU)
		upper := math.Max(etCPU, etGPU)
		return et >= lower-1e-9 && et <= upper+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
