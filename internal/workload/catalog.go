package workload

import "fmt"

// The catalog models the eight Polybench applications of the paper's
// evaluation. Per-work-item times are calibrated so that, on the Exynos
// 5422 model, whole-NDRange execution times land in the paper's 10–65 s
// band (Fig. 5c) with the documented CPU/GPU affinities:
//
//   - 2DCONV and GEMM are strongly GPU-friendly (RMP maps them GPU-only;
//     the paper reports TEEM pays an energy overhead against RMP there);
//   - COVARIANCE/CORRELATION are balanced (the motivation case runs
//     COVARIANCE at partition 1024, an even split);
//   - MVT is memory-bound (poor frequency scaling, low activity);
//   - SYRK is compute-hot on the big cluster (the paper reports TEEM's
//     largest energy win over RMP, 47.28%, on SYRK).
//
// GEMM carries both paper codes: the running text calls it GE while
// Fig. 5(a/c) labels it GM.

// Apps returns the catalog of the eight paper applications, in the order
// of Fig. 5(a).
func Apps() []*App {
	return []*App{
		TwoDConv(), Covariance(), Gemm(), TwoMM(),
		Mvt(), Syr2k(), Syrk(), Correlation(),
	}
}

// ByShort returns the app with the given short code (2D, CV, GM/GE, 2M,
// MV, S2, SR, CR), or an error.
func ByShort(code string) (*App, error) {
	if code == "GE" { // the paper uses GE in text and GM in figures
		code = "GM"
	}
	for _, a := range Apps() {
		if a.Short == code {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown app code %q", code)
}

// ByName returns the app with the given Polybench name, or an error.
func ByName(name string) (*App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown app %q", name)
}

// base fills the fields shared by the whole catalog.
func base(a App) *App {
	a.WorkItems = DefaultWorkItems
	a.RefBigMHz = 2000
	a.RefLittleMHz = 1400
	a.RefGPUMHz = 600
	return &a
}

// perWI converts a target whole-NDRange execution time into the per-WI
// time that yields it: for CPU it assumes 4 big + 4 LITTLE cores at max
// frequency with the LITTLE core slower by littleRatio; for the GPU it
// assumes 6 shader cores.
func perWI(etCPU, littleRatio, etGPU, gpuEff float64) (big, little, gpu float64) {
	// rate = 4/tB + 4/(ratio·tB) = (4 + 4/ratio)/tB
	// etCPU = WI/rate → tB = etCPU·(4 + 4/ratio)/WI.
	tB := etCPU * (4 + 4/littleRatio) / DefaultWorkItems
	tG := etGPU * 6 * gpuEff / DefaultWorkItems
	return tB, littleRatio * tB, tG
}

// TwoDConv is the 2D stencil 2DCONV ("2D"): strongly GPU-friendly.
func TwoDConv() *App {
	b, l, g := perWI(55, 3.0, 22, 0.95)
	return base(App{
		Name: "2DCONV", Short: "2D", Class: "stencil",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.15, MemBoundGPU: 0.10,
		ActivityCPU: 0.75, ActivityGPU: 0.95,
		MemBytesPerWI: 18e6, GPUParallelEff: 0.95,
	})
}

// Covariance is the data-mining kernel COVARIANCE ("CV"), the motivation
// case of the paper's Fig. 1.
func Covariance() *App {
	b, l, g := perWI(48, 3.0, 70, 0.92)
	return base(App{
		Name: "COVARIANCE", Short: "CV", Class: "data mining",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.25, MemBoundGPU: 0.20,
		ActivityCPU: 0.80, ActivityGPU: 0.90,
		MemBytesPerWI: 25e6, GPUParallelEff: 0.92,
	})
}

// Correlation is the data-mining kernel CORRELATION ("CR").
func Correlation() *App {
	b, l, g := perWI(50, 3.0, 72, 0.92)
	return base(App{
		Name: "CORRELATION", Short: "CR", Class: "data mining",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.25, MemBoundGPU: 0.20,
		ActivityCPU: 0.80, ActivityGPU: 0.90,
		MemBytesPerWI: 26e6, GPUParallelEff: 0.92,
	})
}

// Gemm is the dense matrix multiply GEMM ("GM" in the figures, "GE" in the
// text): compute-dense and strongly GPU-friendly.
func Gemm() *App {
	b, l, g := perWI(64, 2.8, 28, 0.97)
	return base(App{
		Name: "GEMM", Short: "GM", Class: "linear algebra",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.10, MemBoundGPU: 0.05,
		ActivityCPU: 0.85, ActivityGPU: 1.00,
		MemBytesPerWI: 12e6, GPUParallelEff: 0.97,
	})
}

// TwoMM is the chained matrix multiply 2MM ("2M").
func TwoMM() *App {
	b, l, g := perWI(45, 2.8, 35, 0.95)
	return base(App{
		Name: "2MM", Short: "2M", Class: "linear algebra",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.12, MemBoundGPU: 0.08,
		ActivityCPU: 0.85, ActivityGPU: 0.95,
		MemBytesPerWI: 14e6, GPUParallelEff: 0.95,
	})
}

// Mvt is the matrix-vector kernel MVT ("MV"): memory-bound.
func Mvt() *App {
	b, l, g := perWI(38, 3.2, 48, 0.90)
	return base(App{
		Name: "MVT", Short: "MV", Class: "linear algebra",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.55, MemBoundGPU: 0.45,
		ActivityCPU: 0.60, ActivityGPU: 0.70,
		MemBytesPerWI: 45e6, GPUParallelEff: 0.90,
	})
}

// Syr2k is the symmetric rank-2k update SYR2K ("S2"): heavy on both sides.
func Syr2k() *App {
	b, l, g := perWI(55, 2.9, 50, 0.93)
	return base(App{
		Name: "SYR2K", Short: "S2", Class: "linear algebra",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.18, MemBoundGPU: 0.12,
		ActivityCPU: 0.90, ActivityGPU: 0.95,
		MemBytesPerWI: 20e6, GPUParallelEff: 0.93,
	})
}

// Syrk is the symmetric rank-k update SYRK ("SR"): CPU-competitive but
// power-hot on the big cluster.
func Syrk() *App {
	b, l, g := perWI(35, 2.9, 38, 0.93)
	return base(App{
		Name: "SYRK", Short: "SR", Class: "linear algebra",
		BigSecPerWI: b, LittleSecPerWI: l, GPUSecPerWI: g,
		MemBoundCPU: 0.20, MemBoundGPU: 0.12,
		ActivityCPU: 0.95, ActivityGPU: 0.90,
		MemBytesPerWI: 16e6, GPUParallelEff: 0.93,
	})
}
