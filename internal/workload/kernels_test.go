package workload

import (
	"math"
	"testing"
	"testing/quick"
)

const kernelN = 24 // small but non-trivial problem size for tests

func allKernelNames() []string {
	return []string{"GEMM", "2MM", "MVT", "SYRK", "SYR2K", "2DCONV", "COVARIANCE", "CORRELATION"}
}

func TestNewKernelCoversCatalog(t *testing.T) {
	for _, a := range Apps() {
		k, err := NewKernel(a.Name, kernelN)
		if err != nil {
			t.Errorf("NewKernel(%s): %v", a.Name, err)
			continue
		}
		if k.Name() != a.Name {
			t.Errorf("kernel name %s != app name %s", k.Name(), a.Name)
		}
		if k.Rows() <= 0 {
			t.Errorf("%s: Rows() = %d", a.Name, k.Rows())
		}
	}
	if _, err := NewKernel("nope", kernelN); err == nil {
		t.Error("NewKernel should reject unknown names")
	}
	if _, err := NewKernel("GEMM", 1); err == nil {
		t.Error("NewKernel should reject tiny sizes")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, name := range allKernelNames() {
		k1, _ := NewKernel(name, kernelN)
		k2, _ := NewKernel(name, kernelN)
		k1.RunRows(0, k1.Rows())
		k2.RunRows(0, k2.Rows())
		if c1, c2 := k1.Checksum(), k2.Checksum(); c1 != c2 {
			t.Errorf("%s: checksums differ across identical runs: %g vs %g", name, c1, c2)
		}
	}
}

// Partition invariance: the core property the paper's thread partitioning
// relies on — any row split yields the same result.
func TestPartitionInvariance(t *testing.T) {
	for _, name := range allKernelNames() {
		ref, _ := NewKernel(name, kernelN)
		ref.RunRows(0, ref.Rows())
		want := ref.Checksum()

		for _, frac := range []float64{0, 0.25, 0.5, 0.875, 1} {
			k, _ := NewKernel(name, kernelN)
			if err := RunPartitioned(k, frac, 3); err != nil {
				t.Fatalf("%s frac %g: %v", name, frac, err)
			}
			if got := k.Checksum(); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("%s: partition %g checksum %g != reference %g", name, frac, got, want)
			}
		}
	}
}

func TestRunPartitionedValidation(t *testing.T) {
	k, _ := NewKernel("GEMM", kernelN)
	if err := RunPartitioned(k, -0.1, 2); err == nil {
		t.Error("RunPartitioned should reject negative fraction")
	}
	if err := RunPartitioned(k, 0.5, 0); err == nil {
		t.Error("RunPartitioned should reject zero workers")
	}
}

func TestTwoMMPhases(t *testing.T) {
	k := NewTwoMMKernel(kernelN)
	ph := k.Phases()
	if len(ph) != 2 || ph[0] != kernelN || ph[1] != 2*kernelN {
		t.Errorf("Phases = %v, want [%d %d]", ph, kernelN, 2*kernelN)
	}
	// Running phase 2 before phase 1 must give a different (wrong)
	// answer than the ordered run, proving the dependency is real and
	// RunPartitioned's phase handling matters.
	ordered := NewTwoMMKernel(kernelN)
	ordered.RunRows(0, 2*kernelN)
	wrong := NewTwoMMKernel(kernelN)
	wrong.RunRows(kernelN, 2*kernelN) // E from zero D
	wrong.RunRows(0, kernelN)
	if ordered.Checksum() == wrong.Checksum() {
		t.Error("phase order should matter for 2MM")
	}
}

// GEMM with identity B must return alpha·A + beta·C.
func TestGemmAgainstIdentity(t *testing.T) {
	k := NewGemmKernel(8)
	// Overwrite B with the identity.
	for i := range k.b {
		for j := range k.b[i] {
			if i == j {
				k.b[i][j] = 1
			} else {
				k.b[i][j] = 0
			}
		}
	}
	aCopy := make([][]float64, 8)
	cCopy := make([][]float64, 8)
	for i := range aCopy {
		aCopy[i] = append([]float64(nil), k.a[i]...)
		cCopy[i] = append([]float64(nil), k.c[i]...)
	}
	k.RunRows(0, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := k.alpha*aCopy[i][j] + k.beta*cCopy[i][j]
			if math.Abs(k.c[i][j]-want) > 1e-12 {
				t.Fatalf("GEMM identity check failed at (%d,%d): %g vs %g", i, j, k.c[i][j], want)
			}
		}
	}
}

// The covariance matrix must be symmetric and have non-negative diagonal.
func TestCovarianceProperties(t *testing.T) {
	k := NewCovarianceKernel(16)
	k.RunRows(0, 16)
	for i := 0; i < 16; i++ {
		if k.cov[i][i] < 0 {
			t.Errorf("cov[%d][%d] = %g < 0", i, i, k.cov[i][i])
		}
		for j := 0; j < i; j++ {
			if math.Abs(k.cov[i][j]-k.cov[j][i]) > 1e-12 {
				t.Errorf("cov not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// The correlation matrix must have unit diagonal and entries in [-1, 1].
func TestCorrelationProperties(t *testing.T) {
	k := NewCorrelationKernel(16)
	k.RunRows(0, 16)
	for i := 0; i < 16; i++ {
		if math.Abs(k.corr[i][i]-1) > 1e-9 {
			t.Errorf("corr[%d][%d] = %g, want 1", i, i, k.corr[i][i])
		}
		for j := 0; j < 16; j++ {
			if k.corr[i][j] < -1-1e-9 || k.corr[i][j] > 1+1e-9 {
				t.Errorf("corr[%d][%d] = %g outside [-1,1]", i, j, k.corr[i][j])
			}
		}
	}
}

// SYRK output must be symmetric when beta·C starts symmetric.
func TestSyrkSymmetry(t *testing.T) {
	k := NewSyrkKernel(12)
	// Symmetrise C first.
	for i := 0; i < 12; i++ {
		for j := 0; j < i; j++ {
			k.c[j][i] = k.c[i][j]
		}
	}
	k.RunRows(0, 12)
	for i := 0; i < 12; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(k.c[i][j]-k.c[j][i]) > 1e-12 {
				t.Errorf("SYRK result not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// MVT with zero y vectors must leave x unchanged.
func TestMvtZeroInput(t *testing.T) {
	k := NewMvtKernel(10)
	for i := range k.y1 {
		k.y1[i], k.y2[i] = 0, 0
	}
	x1Before := append([]float64(nil), k.x1...)
	k.RunRows(0, 10)
	for i := range x1Before {
		if k.x1[i] != x1Before[i] {
			t.Errorf("MVT with zero y changed x1[%d]", i)
		}
	}
}

// Conv2D borders must remain zero (the Polybench kernel skips them).
func TestConv2DBorders(t *testing.T) {
	k := NewConv2DKernel(10)
	k.RunRows(0, 10)
	for j := 0; j < 10; j++ {
		if k.out[0][j] != 0 || k.out[9][j] != 0 {
			t.Error("Conv2D border rows should stay zero")
		}
	}
	for i := 0; i < 10; i++ {
		if k.out[i][0] != 0 || k.out[i][9] != 0 {
			t.Error("Conv2D border cols should stay zero")
		}
	}
}

// Property: for any random split point, running [0,s) then [s,n) matches
// the all-at-once run for every kernel.
func TestSplitPointProperty(t *testing.T) {
	names := allKernelNames()
	f := func(nameIdx, splitRaw uint8) bool {
		name := names[int(nameIdx)%len(names)]
		ref, _ := NewKernel(name, kernelN)
		ref.RunRows(0, ref.Rows())

		k, _ := NewKernel(name, kernelN)
		// Respect phases: split within each phase.
		bounds := []int{k.Rows()}
		if p, ok := k.(Phased); ok {
			bounds = p.Phases()
		}
		lo := 0
		for _, hi := range bounds {
			s := lo + int(splitRaw)%(hi-lo+1)
			k.RunRows(lo, s)
			k.RunRows(s, hi)
			lo = hi
		}
		return k.Checksum() == ref.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
