package workload

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Kernel is a real, runnable port of a Polybench kernel whose outer loop
// can be partitioned by rows — the same property the paper's OpenCL
// work-item partitioning exploits. Any row range may be computed in any
// order or concurrently; results are identical (partition invariance).
type Kernel interface {
	// Name returns the Polybench kernel name.
	Name() string
	// Rows returns the size of the partitionable outer dimension.
	Rows() int
	// RunRows computes output rows [lo, hi).
	RunRows(lo, hi int)
	// Checksum returns a deterministic digest of the output for
	// validation across partitionings.
	Checksum() float64
}

// lcg is a small deterministic generator for reproducible kernel inputs.
type lcg struct{ state uint64 }

func (l *lcg) next() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	// Map the top bits to [0, 1).
	return float64(l.state>>11) / float64(1<<53)
}

func fillMatrix(n, m int, seed uint64) [][]float64 {
	g := &lcg{state: seed}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = g.next()*2 - 1
		}
	}
	return a
}

func checksumMatrix(a [][]float64) float64 {
	s := 0.0
	for i, row := range a {
		w := 1 + float64(i%7)
		for j, v := range row {
			s += v * w * (1 + float64(j%5)/10)
		}
	}
	return s
}

// --- GEMM: C = alpha·A·B + beta·C ----------------------------------------

// GemmKernel is the Polybench GEMM kernel.
type GemmKernel struct {
	n           int
	alpha, beta float64
	a, b, c     [][]float64
}

// NewGemmKernel builds an n×n GEMM instance with deterministic inputs.
func NewGemmKernel(n int) *GemmKernel {
	return &GemmKernel{
		n: n, alpha: 1.5, beta: 1.2,
		a: fillMatrix(n, n, 1),
		b: fillMatrix(n, n, 2),
		c: fillMatrix(n, n, 3),
	}
}

// Name implements Kernel.
func (k *GemmKernel) Name() string { return "GEMM" }

// Rows implements Kernel.
func (k *GemmKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *GemmKernel) RunRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < k.n; j++ {
			s := 0.0
			for p := 0; p < k.n; p++ {
				s += k.a[i][p] * k.b[p][j]
			}
			k.c[i][j] = k.alpha*s + k.beta*k.c[i][j]
		}
	}
}

// Checksum implements Kernel.
func (k *GemmKernel) Checksum() float64 { return checksumMatrix(k.c) }

// --- 2MM: D = A·B, E = D·C ------------------------------------------------

// TwoMMKernel is the Polybench 2MM kernel (two chained multiplies). The
// partitionable dimension covers both multiplies: rows [0,n) compute D,
// rows [n,2n) compute E, so callers must run all of [0,n) before [n,2n).
// RunAll and Partitioner handle the phase split automatically via Phases.
type TwoMMKernel struct {
	n       int
	a, b, c [][]float64
	d, e    [][]float64
}

// NewTwoMMKernel builds an n×n 2MM instance.
func NewTwoMMKernel(n int) *TwoMMKernel {
	return &TwoMMKernel{
		n: n,
		a: fillMatrix(n, n, 4),
		b: fillMatrix(n, n, 5),
		c: fillMatrix(n, n, 6),
		d: makeZero(n, n),
		e: makeZero(n, n),
	}
}

func makeZero(n, m int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, m)
	}
	return a
}

// Name implements Kernel.
func (k *TwoMMKernel) Name() string { return "2MM" }

// Rows implements Kernel.
func (k *TwoMMKernel) Rows() int { return 2 * k.n }

// Phases returns the row boundaries between dependent phases: rows within
// a phase are independent, phases must run in order.
func (k *TwoMMKernel) Phases() []int { return []int{k.n, 2 * k.n} }

// RunRows implements Kernel.
func (k *TwoMMKernel) RunRows(lo, hi int) {
	for r := lo; r < hi; r++ {
		if r < k.n {
			i := r
			for j := 0; j < k.n; j++ {
				s := 0.0
				for p := 0; p < k.n; p++ {
					s += k.a[i][p] * k.b[p][j]
				}
				k.d[i][j] = s
			}
		} else {
			i := r - k.n
			for j := 0; j < k.n; j++ {
				s := 0.0
				for p := 0; p < k.n; p++ {
					s += k.d[i][p] * k.c[p][j]
				}
				k.e[i][j] = s
			}
		}
	}
}

// Checksum implements Kernel.
func (k *TwoMMKernel) Checksum() float64 { return checksumMatrix(k.e) }

// --- MVT ------------------------------------------------------------------

// MvtKernel is the Polybench MVT kernel: x1 += A·y1, x2 += Aᵀ·y2.
type MvtKernel struct {
	n              int
	a              [][]float64
	x1, x2, y1, y2 []float64
}

// NewMvtKernel builds an n-size MVT instance.
func NewMvtKernel(n int) *MvtKernel {
	g := &lcg{state: 7}
	vec := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = g.next()
		}
		return v
	}
	return &MvtKernel{n: n, a: fillMatrix(n, n, 8), x1: vec(), x2: vec(), y1: vec(), y2: vec()}
}

// Name implements Kernel.
func (k *MvtKernel) Name() string { return "MVT" }

// Rows implements Kernel.
func (k *MvtKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *MvtKernel) RunRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		s1, s2 := 0.0, 0.0
		for j := 0; j < k.n; j++ {
			s1 += k.a[i][j] * k.y1[j]
			s2 += k.a[j][i] * k.y2[j]
		}
		k.x1[i] += s1
		k.x2[i] += s2
	}
}

// Checksum implements Kernel.
func (k *MvtKernel) Checksum() float64 {
	s := 0.0
	for i := range k.x1 {
		s += k.x1[i]*1.7 + k.x2[i]*0.3
	}
	return s
}

// --- SYRK: C = alpha·A·Aᵀ + beta·C -----------------------------------------

// SyrkKernel is the Polybench SYRK kernel.
type SyrkKernel struct {
	n           int
	alpha, beta float64
	a, c        [][]float64
}

// NewSyrkKernel builds an n×n SYRK instance.
func NewSyrkKernel(n int) *SyrkKernel {
	return &SyrkKernel{n: n, alpha: 1.1, beta: 0.9, a: fillMatrix(n, n, 9), c: fillMatrix(n, n, 10)}
}

// Name implements Kernel.
func (k *SyrkKernel) Name() string { return "SYRK" }

// Rows implements Kernel.
func (k *SyrkKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *SyrkKernel) RunRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < k.n; j++ {
			s := 0.0
			for p := 0; p < k.n; p++ {
				s += k.a[i][p] * k.a[j][p]
			}
			k.c[i][j] = k.alpha*s + k.beta*k.c[i][j]
		}
	}
}

// Checksum implements Kernel.
func (k *SyrkKernel) Checksum() float64 { return checksumMatrix(k.c) }

// --- SYR2K: C = alpha·(A·Bᵀ + B·Aᵀ) + beta·C -------------------------------

// Syr2kKernel is the Polybench SYR2K kernel.
type Syr2kKernel struct {
	n           int
	alpha, beta float64
	a, b, c     [][]float64
}

// NewSyr2kKernel builds an n×n SYR2K instance.
func NewSyr2kKernel(n int) *Syr2kKernel {
	return &Syr2kKernel{
		n: n, alpha: 0.8, beta: 1.3,
		a: fillMatrix(n, n, 11), b: fillMatrix(n, n, 12), c: fillMatrix(n, n, 13),
	}
}

// Name implements Kernel.
func (k *Syr2kKernel) Name() string { return "SYR2K" }

// Rows implements Kernel.
func (k *Syr2kKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *Syr2kKernel) RunRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < k.n; j++ {
			s := 0.0
			for p := 0; p < k.n; p++ {
				s += k.a[i][p]*k.b[j][p] + k.b[i][p]*k.a[j][p]
			}
			k.c[i][j] = k.alpha*s + k.beta*k.c[i][j]
		}
	}
}

// Checksum implements Kernel.
func (k *Syr2kKernel) Checksum() float64 { return checksumMatrix(k.c) }

// --- 2D convolution ---------------------------------------------------------

// Conv2DKernel is the Polybench 2DCONV kernel: a 3×3 stencil.
type Conv2DKernel struct {
	n       int
	in, out [][]float64
}

// NewConv2DKernel builds an n×n 2D convolution instance.
func NewConv2DKernel(n int) *Conv2DKernel {
	return &Conv2DKernel{n: n, in: fillMatrix(n, n, 14), out: makeZero(n, n)}
}

// Name implements Kernel.
func (k *Conv2DKernel) Name() string { return "2DCONV" }

// Rows implements Kernel.
func (k *Conv2DKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *Conv2DKernel) RunRows(lo, hi int) {
	// Stencil coefficients from the Polybench reference.
	const (
		c11, c12, c13 = 0.2, -0.3, 0.4
		c21, c22, c23 = -0.5, 0.6, -0.7
		c31, c32, c33 = 0.8, -0.9, 0.1
	)
	for i := lo; i < hi; i++ {
		if i == 0 || i == k.n-1 {
			continue
		}
		for j := 1; j < k.n-1; j++ {
			k.out[i][j] = c11*k.in[i-1][j-1] + c12*k.in[i-1][j] + c13*k.in[i-1][j+1] +
				c21*k.in[i][j-1] + c22*k.in[i][j] + c23*k.in[i][j+1] +
				c31*k.in[i+1][j-1] + c32*k.in[i+1][j] + c33*k.in[i+1][j+1]
		}
	}
}

// Checksum implements Kernel.
func (k *Conv2DKernel) Checksum() float64 { return checksumMatrix(k.out) }

// --- COVARIANCE -------------------------------------------------------------

// CovarianceKernel is the Polybench COVARIANCE kernel. The column means are
// precomputed at construction (a cheap O(n²) setup), leaving the O(n³)
// symmetric matrix rows independent and partitionable.
type CovarianceKernel struct {
	n    int
	data [][]float64 // mean-centred at construction
	cov  [][]float64
}

// NewCovarianceKernel builds an n×n COVARIANCE instance.
func NewCovarianceKernel(n int) *CovarianceKernel {
	k := &CovarianceKernel{n: n, data: fillMatrix(n, n, 15), cov: makeZero(n, n)}
	for j := 0; j < n; j++ {
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += k.data[i][j]
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			k.data[i][j] -= mean
		}
	}
	return k
}

// Name implements Kernel.
func (k *CovarianceKernel) Name() string { return "COVARIANCE" }

// Rows implements Kernel.
func (k *CovarianceKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *CovarianceKernel) RunRows(lo, hi int) {
	for j1 := lo; j1 < hi; j1++ {
		for j2 := 0; j2 < k.n; j2++ {
			s := 0.0
			for i := 0; i < k.n; i++ {
				s += k.data[i][j1] * k.data[i][j2]
			}
			k.cov[j1][j2] = s / float64(k.n-1)
		}
	}
}

// Checksum implements Kernel.
func (k *CovarianceKernel) Checksum() float64 { return checksumMatrix(k.cov) }

// --- CORRELATION ------------------------------------------------------------

// CorrelationKernel is the Polybench CORRELATION kernel; like COVARIANCE
// the normalisation is precomputed so rows partition cleanly.
type CorrelationKernel struct {
	n    int
	data [][]float64 // standardised at construction
	corr [][]float64
}

// NewCorrelationKernel builds an n×n CORRELATION instance.
func NewCorrelationKernel(n int) *CorrelationKernel {
	k := &CorrelationKernel{n: n, data: fillMatrix(n, n, 16), corr: makeZero(n, n)}
	for j := 0; j < n; j++ {
		mean, ss := 0.0, 0.0
		for i := 0; i < n; i++ {
			mean += k.data[i][j]
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			d := k.data[i][j] - mean
			ss += d * d
		}
		std := ss
		if std == 0 {
			std = 1
		}
		for i := 0; i < n; i++ {
			k.data[i][j] = (k.data[i][j] - mean) / sqrtOr1(std)
		}
	}
	return k
}

func sqrtOr1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}

// Name implements Kernel.
func (k *CorrelationKernel) Name() string { return "CORRELATION" }

// Rows implements Kernel.
func (k *CorrelationKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *CorrelationKernel) RunRows(lo, hi int) {
	for j1 := lo; j1 < hi; j1++ {
		for j2 := 0; j2 < k.n; j2++ {
			s := 0.0
			for i := 0; i < k.n; i++ {
				s += k.data[i][j1] * k.data[i][j2]
			}
			k.corr[j1][j2] = s
		}
	}
}

// Checksum implements Kernel.
func (k *CorrelationKernel) Checksum() float64 { return checksumMatrix(k.corr) }

// NewKernel builds the real kernel matching an App (by Polybench name)
// with problem size n.
func NewKernel(appName string, n int) (Kernel, error) {
	if n < 3 {
		return nil, errors.New("workload: kernel size must be at least 3")
	}
	switch appName {
	case "GEMM":
		return NewGemmKernel(n), nil
	case "2MM":
		return NewTwoMMKernel(n), nil
	case "MVT":
		return NewMvtKernel(n), nil
	case "SYRK":
		return NewSyrkKernel(n), nil
	case "SYR2K":
		return NewSyr2kKernel(n), nil
	case "2DCONV":
		return NewConv2DKernel(n), nil
	case "COVARIANCE":
		return NewCovarianceKernel(n), nil
	case "CORRELATION":
		return NewCorrelationKernel(n), nil
	case "ATAX":
		return NewAtaxKernel(n), nil
	case "BICG":
		return NewBicgKernel(n), nil
	case "GESUMMV":
		return NewGesummvKernel(n), nil
	case "3MM":
		return NewThreeMMKernel(n), nil
	default:
		return nil, fmt.Errorf("workload: no kernel for app %q", appName)
	}
}

// Phased is implemented by kernels whose row space splits into ordered
// phases (e.g. 2MM). Rows within one phase are independent.
type Phased interface {
	// Phases returns ascending end-row boundaries; the last equals
	// Rows().
	Phases() []int
}

// RunPartitioned executes a kernel with the first cpuRows of each phase on
// nCPU concurrent workers (the "CPU") and the remainder on one throughput
// worker (the "GPU"), mimicking the paper's OpenCL work-item partitioning.
// cpuFrac in [0,1] is the CPU share of each phase.
func RunPartitioned(k Kernel, cpuFrac float64, nCPU int) error {
	if cpuFrac < 0 || cpuFrac > 1 {
		return fmt.Errorf("workload: cpuFrac %g outside [0,1]", cpuFrac)
	}
	if nCPU < 1 {
		return errors.New("workload: need at least one CPU worker")
	}
	bounds := []int{k.Rows()}
	if p, ok := k.(Phased); ok {
		bounds = p.Phases()
	}
	lo := 0
	for _, hi := range bounds {
		runPhase(k, lo, hi, cpuFrac, nCPU)
		lo = hi
	}
	return nil
}

func runPhase(k Kernel, lo, hi int, cpuFrac float64, nCPU int) {
	n := hi - lo
	split := lo + int(cpuFrac*float64(n)+0.5)
	var wg sync.WaitGroup
	// CPU share: strided across nCPU workers.
	chunk := (split - lo + nCPU - 1) / nCPU
	for w := 0; w < nCPU && chunk > 0; w++ {
		a := lo + w*chunk
		b := a + chunk
		if b > split {
			b = split
		}
		if a >= b {
			break
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			k.RunRows(a, b)
		}(a, b)
	}
	// GPU share: one throughput worker.
	if split < hi {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k.RunRows(split, hi)
		}()
	}
	wg.Wait()
}
