package workload

import "testing"

// BenchmarkGemmKernel measures the real GEMM port at a modest size.
func BenchmarkGemmKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewGemmKernel(96)
		k.RunRows(0, k.Rows())
	}
}

// BenchmarkRunPartitioned measures the concurrent CPU+GPU partitioned
// execution path.
func BenchmarkRunPartitioned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewGemmKernel(96)
		if err := RunPartitioned(k, 0.5, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticRates measures the roofline model evaluation used every
// simulation tick.
func BenchmarkAnalyticRates(b *testing.B) {
	cv := Covariance()
	for i := 0; i < b.N; i++ {
		_ = cv.CPURate(4, 4, 1800, 1200)
		_ = cv.GPURate(6, 543)
	}
}
