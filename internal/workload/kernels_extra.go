package workload

// Additional Polybench kernels beyond the paper's evaluation set: ATAX,
// BICG, GESUMMV and 3MM. They are not part of the eight-app catalog but
// extend the load-generation library with the same row-partitionable
// contract, and 3MM exercises a three-phase dependency chain (one more
// than 2MM).

// --- ATAX: y = Aᵀ·(A·x) -------------------------------------------------------

// AtaxKernel is the Polybench ATAX kernel. Phase 1 computes tmp = A·x,
// phase 2 accumulates y = Aᵀ·tmp with per-row partial sums (each row r of
// phase 2 owns the contribution of tmp[r], accumulated into a private
// buffer merged at checksum time to keep rows independent).
type AtaxKernel struct {
	n   int
	a   [][]float64
	x   []float64
	tmp []float64
	// yPart[r] is row r's contribution vector; summing over r gives y.
	yPart [][]float64
}

// NewAtaxKernel builds an n×n ATAX instance.
func NewAtaxKernel(n int) *AtaxKernel {
	g := &lcg{state: 17}
	x := make([]float64, n)
	for i := range x {
		x[i] = g.next()
	}
	return &AtaxKernel{
		n: n, a: fillMatrix(n, n, 18), x: x,
		tmp:   make([]float64, n),
		yPart: makeZero(n, n),
	}
}

// Name implements Kernel.
func (k *AtaxKernel) Name() string { return "ATAX" }

// Rows implements Kernel.
func (k *AtaxKernel) Rows() int { return 2 * k.n }

// Phases implements Phased: tmp must be complete before y accumulation.
func (k *AtaxKernel) Phases() []int { return []int{k.n, 2 * k.n} }

// RunRows implements Kernel.
func (k *AtaxKernel) RunRows(lo, hi int) {
	for r := lo; r < hi; r++ {
		if r < k.n {
			s := 0.0
			for j := 0; j < k.n; j++ {
				s += k.a[r][j] * k.x[j]
			}
			k.tmp[r] = s
		} else {
			i := r - k.n
			for j := 0; j < k.n; j++ {
				k.yPart[i][j] = k.a[i][j] * k.tmp[i]
			}
		}
	}
}

// Checksum implements Kernel.
func (k *AtaxKernel) Checksum() float64 {
	s := 0.0
	for j := 0; j < k.n; j++ {
		col := 0.0
		for i := 0; i < k.n; i++ {
			col += k.yPart[i][j]
		}
		s += col * (1 + float64(j%5)/10)
	}
	return s
}

// --- BICG: s = Aᵀ·r, q = A·p ----------------------------------------------------

// BicgKernel is the Polybench BICG kernel; the two products are
// independent, so all 2n rows form a single phase.
type BicgKernel struct {
	n    int
	a    [][]float64
	p, r []float64
	q    []float64
	// sPart[i] holds row i's contribution to s (merged at checksum).
	sPart [][]float64
}

// NewBicgKernel builds an n×n BICG instance.
func NewBicgKernel(n int) *BicgKernel {
	g := &lcg{state: 19}
	vec := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = g.next()*2 - 1
		}
		return v
	}
	return &BicgKernel{
		n: n, a: fillMatrix(n, n, 20),
		p: vec(), r: vec(),
		q:     make([]float64, n),
		sPart: makeZero(n, n),
	}
}

// Name implements Kernel.
func (k *BicgKernel) Name() string { return "BICG" }

// Rows implements Kernel.
func (k *BicgKernel) Rows() int { return 2 * k.n }

// RunRows implements Kernel.
func (k *BicgKernel) RunRows(lo, hi int) {
	for r := lo; r < hi; r++ {
		if r < k.n {
			s := 0.0
			for j := 0; j < k.n; j++ {
				s += k.a[r][j] * k.p[j]
			}
			k.q[r] = s
		} else {
			i := r - k.n
			for j := 0; j < k.n; j++ {
				k.sPart[i][j] = k.r[i] * k.a[i][j]
			}
		}
	}
}

// Checksum implements Kernel.
func (k *BicgKernel) Checksum() float64 {
	s := 0.0
	for i := 0; i < k.n; i++ {
		s += k.q[i] * 1.3
	}
	for j := 0; j < k.n; j++ {
		col := 0.0
		for i := 0; i < k.n; i++ {
			col += k.sPart[i][j]
		}
		s += col * 0.7
	}
	return s
}

// --- GESUMMV: y = alpha·A·x + beta·B·x -------------------------------------------

// GesummvKernel is the Polybench GESUMMV kernel (single phase, fully
// row-parallel).
type GesummvKernel struct {
	n           int
	alpha, beta float64
	a, b        [][]float64
	x, y        []float64
}

// NewGesummvKernel builds an n×n GESUMMV instance.
func NewGesummvKernel(n int) *GesummvKernel {
	g := &lcg{state: 21}
	x := make([]float64, n)
	for i := range x {
		x[i] = g.next()
	}
	return &GesummvKernel{
		n: n, alpha: 1.2, beta: 0.8,
		a: fillMatrix(n, n, 22), b: fillMatrix(n, n, 23),
		x: x, y: make([]float64, n),
	}
}

// Name implements Kernel.
func (k *GesummvKernel) Name() string { return "GESUMMV" }

// Rows implements Kernel.
func (k *GesummvKernel) Rows() int { return k.n }

// RunRows implements Kernel.
func (k *GesummvKernel) RunRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		sa, sb := 0.0, 0.0
		for j := 0; j < k.n; j++ {
			sa += k.a[i][j] * k.x[j]
			sb += k.b[i][j] * k.x[j]
		}
		k.y[i] = k.alpha*sa + k.beta*sb
	}
}

// Checksum implements Kernel.
func (k *GesummvKernel) Checksum() float64 {
	s := 0.0
	for i, v := range k.y {
		s += v * (1 + float64(i%7))
	}
	return s
}

// --- 3MM: E = A·B, F = C·D, G = E·F -----------------------------------------------

// ThreeMMKernel is the Polybench 3MM kernel: three chained multiplies in
// three phases (E and F could overlap but Polybench orders them; keeping
// three phases exercises deeper dependency chains than 2MM).
type ThreeMMKernel struct {
	n          int
	a, b, c, d [][]float64
	e, f, g    [][]float64
}

// NewThreeMMKernel builds an n×n 3MM instance.
func NewThreeMMKernel(n int) *ThreeMMKernel {
	return &ThreeMMKernel{
		n: n,
		a: fillMatrix(n, n, 24), b: fillMatrix(n, n, 25),
		c: fillMatrix(n, n, 26), d: fillMatrix(n, n, 27),
		e: makeZero(n, n), f: makeZero(n, n), g: makeZero(n, n),
	}
}

// Name implements Kernel.
func (k *ThreeMMKernel) Name() string { return "3MM" }

// Rows implements Kernel.
func (k *ThreeMMKernel) Rows() int { return 3 * k.n }

// Phases implements Phased.
func (k *ThreeMMKernel) Phases() []int { return []int{k.n, 2 * k.n, 3 * k.n} }

// RunRows implements Kernel.
func (k *ThreeMMKernel) RunRows(lo, hi int) {
	for r := lo; r < hi; r++ {
		switch {
		case r < k.n:
			i := r
			for j := 0; j < k.n; j++ {
				s := 0.0
				for p := 0; p < k.n; p++ {
					s += k.a[i][p] * k.b[p][j]
				}
				k.e[i][j] = s
			}
		case r < 2*k.n:
			i := r - k.n
			for j := 0; j < k.n; j++ {
				s := 0.0
				for p := 0; p < k.n; p++ {
					s += k.c[i][p] * k.d[p][j]
				}
				k.f[i][j] = s
			}
		default:
			i := r - 2*k.n
			for j := 0; j < k.n; j++ {
				s := 0.0
				for p := 0; p < k.n; p++ {
					s += k.e[i][p] * k.f[p][j]
				}
				k.g[i][j] = s
			}
		}
	}
}

// Checksum implements Kernel.
func (k *ThreeMMKernel) Checksum() float64 { return checksumMatrix(k.g) }

// ExtraKernelNames lists the kernels available beyond the paper's
// eight-app catalog.
func ExtraKernelNames() []string { return []string{"ATAX", "BICG", "GESUMMV", "3MM"} }
