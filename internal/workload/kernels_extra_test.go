package workload

import (
	"math"
	"testing"
)

func TestExtraKernelsConstruct(t *testing.T) {
	for _, name := range ExtraKernelNames() {
		k, err := NewKernel(name, kernelN)
		if err != nil {
			t.Fatalf("NewKernel(%s): %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("name %q != %q", k.Name(), name)
		}
		if k.Rows() <= 0 {
			t.Errorf("%s: Rows = %d", name, k.Rows())
		}
	}
}

func TestExtraKernelsPartitionInvariance(t *testing.T) {
	for _, name := range ExtraKernelNames() {
		ref, _ := NewKernel(name, kernelN)
		ref.RunRows(0, ref.Rows())
		want := ref.Checksum()
		for _, frac := range []float64{0, 0.3, 0.5, 1} {
			k, _ := NewKernel(name, kernelN)
			if err := RunPartitioned(k, frac, 3); err != nil {
				t.Fatalf("%s frac %g: %v", name, frac, err)
			}
			if got := k.Checksum(); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("%s: partition %g checksum %g != %g", name, frac, got, want)
			}
		}
	}
}

func TestThreeMMPhases(t *testing.T) {
	k := NewThreeMMKernel(kernelN)
	ph := k.Phases()
	if len(ph) != 3 || ph[2] != 3*kernelN {
		t.Errorf("Phases = %v", ph)
	}
	// Running the final multiply before its inputs gives a different
	// (wrong) result — the phase dependency is real.
	ordered := NewThreeMMKernel(kernelN)
	ordered.RunRows(0, 3*kernelN)
	wrong := NewThreeMMKernel(kernelN)
	wrong.RunRows(2*kernelN, 3*kernelN)
	wrong.RunRows(0, 2*kernelN)
	if ordered.Checksum() == wrong.Checksum() {
		t.Error("3MM phase order should matter")
	}
}

func TestAtaxPhases(t *testing.T) {
	k := NewAtaxKernel(kernelN)
	if ph := k.Phases(); len(ph) != 2 || ph[1] != 2*kernelN {
		t.Errorf("Phases = %v", ph)
	}
	// ATAX with x = 0 gives y = 0.
	z := NewAtaxKernel(8)
	for i := range z.x {
		z.x[i] = 0
	}
	z.RunRows(0, z.Rows())
	if z.Checksum() != 0 {
		t.Errorf("ATAX with zero x: checksum %g, want 0", z.Checksum())
	}
}

// GESUMMV with B = 0 reduces to alpha·A·x.
func TestGesummvReduction(t *testing.T) {
	k := NewGesummvKernel(8)
	for i := range k.b {
		for j := range k.b[i] {
			k.b[i][j] = 0
		}
	}
	k.RunRows(0, 8)
	for i := 0; i < 8; i++ {
		want := 0.0
		for j := 0; j < 8; j++ {
			want += k.a[i][j] * k.x[j]
		}
		want *= k.alpha
		if math.Abs(k.y[i]-want) > 1e-12 {
			t.Fatalf("GESUMMV reduction failed at %d: %g vs %g", i, k.y[i], want)
		}
	}
}

// BICG's q side must equal a plain matrix-vector product.
func TestBicgQSide(t *testing.T) {
	k := NewBicgKernel(8)
	k.RunRows(0, k.Rows())
	for i := 0; i < 8; i++ {
		want := 0.0
		for j := 0; j < 8; j++ {
			want += k.a[i][j] * k.p[j]
		}
		if math.Abs(k.q[i]-want) > 1e-12 {
			t.Fatalf("BICG q[%d] = %g, want %g", i, k.q[i], want)
		}
	}
}
