// Package workload models the execution behaviour of the OpenCL Polybench
// applications used by the TEEM paper (2DCONV, COVARIANCE, CORRELATION,
// GEMM, 2MM, MVT, SYR2K, SYRK) on CPU-GPU MPSoCs, and additionally ships
// real Go ports of the kernels (kernels.go) used as load generators and
// correctness oracles in the examples.
//
// The analytic model is a roofline-lite law per work-item and cluster type:
//
//	t(f) = (1−m)·t_ref·(f_ref/f) + m·t_ref
//
// where t_ref is the per-work-item time at the reference (maximum)
// frequency and m is the memory-bound fraction that does not scale with
// clock frequency. Work-items here are macro work-items: each stands for a
// slab of the real NDRange (the paper partitions 2048 of them, so
// "partition 1024" means an even CPU/GPU split).
package workload

import (
	"errors"
	"fmt"
)

// DefaultWorkItems is the NDRange size the paper's partition grains refer
// to (partition 1024 = even split of 2048).
const DefaultWorkItems = 2048

// App describes one application's execution characteristics.
type App struct {
	// Name is the Polybench name, e.g. "COVARIANCE".
	Name string
	// Short is the two-letter code used in the paper's figures.
	Short string
	// Class is the benchmark domain (data mining, linear algebra,
	// stencil, ...).
	Class string
	// WorkItems is the total macro work-item count.
	WorkItems int

	// BigSecPerWI is the per-work-item execution time on one big core
	// at RefBigMHz.
	BigSecPerWI float64
	// LittleSecPerWI is the per-work-item time on one LITTLE core at
	// RefLittleMHz.
	LittleSecPerWI float64
	// GPUSecPerWI is the per-work-item time on one GPU shader core at
	// RefGPUMHz.
	GPUSecPerWI float64

	// RefBigMHz, RefLittleMHz, RefGPUMHz anchor the roofline law.
	RefBigMHz, RefLittleMHz, RefGPUMHz int

	// MemBoundCPU and MemBoundGPU are the memory-bound fractions m in
	// [0,1) for CPU and GPU execution.
	MemBoundCPU, MemBoundGPU float64

	// ActivityCPU and ActivityGPU are switching-activity factors in
	// (0,1] for the power model.
	ActivityCPU, ActivityGPU float64

	// MemBytesPerWI is the DRAM traffic one work-item generates.
	MemBytesPerWI float64

	// GPUParallelEff in (0,1] derates multi-shader scaling.
	GPUParallelEff float64
}

// Validate reports an error if the app description is inconsistent.
func (a *App) Validate() error {
	if a.Name == "" {
		return errors.New("workload: app has empty name")
	}
	if a.WorkItems <= 0 {
		return fmt.Errorf("workload: %s: WorkItems must be positive", a.Name)
	}
	if a.BigSecPerWI <= 0 || a.LittleSecPerWI <= 0 || a.GPUSecPerWI <= 0 {
		return fmt.Errorf("workload: %s: per-WI times must be positive", a.Name)
	}
	if a.RefBigMHz <= 0 || a.RefLittleMHz <= 0 || a.RefGPUMHz <= 0 {
		return fmt.Errorf("workload: %s: reference frequencies must be positive", a.Name)
	}
	if a.MemBoundCPU < 0 || a.MemBoundCPU >= 1 || a.MemBoundGPU < 0 || a.MemBoundGPU >= 1 {
		return fmt.Errorf("workload: %s: memory-bound fractions must be in [0,1)", a.Name)
	}
	if a.ActivityCPU <= 0 || a.ActivityCPU > 1 || a.ActivityGPU <= 0 || a.ActivityGPU > 1 {
		return fmt.Errorf("workload: %s: activity factors must be in (0,1]", a.Name)
	}
	if a.MemBytesPerWI < 0 {
		return fmt.Errorf("workload: %s: negative memory traffic", a.Name)
	}
	if a.GPUParallelEff <= 0 || a.GPUParallelEff > 1 {
		return fmt.Errorf("workload: %s: GPUParallelEff must be in (0,1]", a.Name)
	}
	return nil
}

// roofline evaluates t(f) for one work-item.
func roofline(tRef float64, m float64, refMHz, fMHz int) float64 {
	if fMHz <= 0 {
		return 0
	}
	return (1-m)*tRef*float64(refMHz)/float64(fMHz) + m*tRef
}

// BigSecAt returns the per-WI time on one big core at fMHz.
func (a *App) BigSecAt(fMHz int) float64 {
	return roofline(a.BigSecPerWI, a.MemBoundCPU, a.RefBigMHz, fMHz)
}

// LittleSecAt returns the per-WI time on one LITTLE core at fMHz.
func (a *App) LittleSecAt(fMHz int) float64 {
	return roofline(a.LittleSecPerWI, a.MemBoundCPU, a.RefLittleMHz, fMHz)
}

// GPUSecAt returns the per-WI time on one shader core at fMHz.
func (a *App) GPUSecAt(fMHz int) float64 {
	return roofline(a.GPUSecPerWI, a.MemBoundGPU, a.RefGPUMHz, fMHz)
}

// CPURate returns the aggregate CPU work-item throughput (WI/s) of nBig big
// cores at fBig MHz plus nLittle LITTLE cores at fLittle MHz. OpenCL
// work-group scheduling keeps all cores fed, so rates add.
func (a *App) CPURate(nBig, nLittle, fBigMHz, fLittleMHz int) float64 {
	r := 0.0
	if nBig > 0 && fBigMHz > 0 {
		r += float64(nBig) / a.BigSecAt(fBigMHz)
	}
	if nLittle > 0 && fLittleMHz > 0 {
		r += float64(nLittle) / a.LittleSecAt(fLittleMHz)
	}
	return r
}

// GPURate returns the GPU work-item throughput (WI/s) with nShaders shader
// cores at fMHz.
func (a *App) GPURate(nShaders, fMHz int) float64 {
	if nShaders <= 0 || fMHz <= 0 {
		return 0
	}
	return a.GPUParallelEff * float64(nShaders) / a.GPUSecAt(fMHz)
}

// ETCPUOnly returns the execution time of the whole NDRange on the CPU
// clusters alone (Eq. 3 with WGCPU = 1).
func (a *App) ETCPUOnly(nBig, nLittle, fBigMHz, fLittleMHz int) float64 {
	r := a.CPURate(nBig, nLittle, fBigMHz, fLittleMHz)
	if r == 0 {
		return 0
	}
	return float64(a.WorkItems) / r
}

// ETGPUOnly returns the execution time of the whole NDRange on the GPU
// alone — the paper's stored ETGPU (Eq. 8 with WGCPU = 0).
func (a *App) ETGPUOnly(nShaders, fMHz int) float64 {
	r := a.GPURate(nShaders, fMHz)
	if r == 0 {
		return 0
	}
	return float64(a.WorkItems) / r
}

// MemGBs returns the DRAM traffic in GB/s generated when work-items are
// processed at the given aggregate rate (WI/s).
func (a *App) MemGBs(rateWIs float64) float64 {
	return rateWIs * a.MemBytesPerWI / 1e9
}
