// Package report renders evaluation artefacts in the visual shapes of the
// TEEM paper: grouped bar charts (Fig. 5), scatterplot matrices (Fig. 3),
// residual plots (Fig. 4) and aligned tables, all as plain text suitable
// for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// BarGroup is one labelled group of bars (e.g. one application with one
// bar per approach).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart renders grouped horizontal bars, one row per (group, series):
// the text analogue of the paper's Fig. 5 grouped bar charts.
type BarChart struct {
	Title  string
	Unit   string
	Series []string // e.g. EEMP, RMP, TEEM
	Groups []BarGroup
	// Width is the maximum bar length in characters (default 40).
	Width int
}

// Render returns the chart.
func (c *BarChart) Render() string {
	w := c.Width
	if w <= 0 {
		w = 40
	}
	maxV := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	nameW := 0
	for _, s := range c.Series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, g := range c.Groups {
		fmt.Fprintf(&b, "%s\n", g.Label)
		for i, v := range g.Values {
			series := ""
			if i < len(c.Series) {
				series = c.Series[i]
			}
			n := int(v / maxV * float64(w))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.1f %s\n", nameW, series, strings.Repeat("#", n), v, c.Unit)
		}
	}
	return b.String()
}

// ScatterMatrix renders a matrix scatterplot of named variables — the text
// analogue of the paper's Fig. 3. Diagonal cells carry the variable name;
// off-diagonal cells plot the variable pair.
type ScatterMatrix struct {
	Names []string
	Cols  [][]float64
	// CellW and CellH are the per-cell plot size (defaults 18×7).
	CellW, CellH int
}

// Render returns the matrix.
func (s *ScatterMatrix) Render() string {
	n := len(s.Names)
	if n == 0 || len(s.Cols) != n {
		return "(empty scatter matrix)\n"
	}
	cw, ch := s.CellW, s.CellH
	if cw <= 0 {
		cw = 18
	}
	if ch <= 0 {
		ch = 7
	}
	cell := func(xi, yi int) []string {
		if xi == yi {
			rows := make([]string, ch)
			for r := range rows {
				rows[r] = strings.Repeat(" ", cw)
			}
			name := s.Names[xi]
			if len(name) > cw {
				name = name[:cw]
			}
			pad := (cw - len(name)) / 2
			rows[ch/2] = strings.Repeat(" ", pad) + name + strings.Repeat(" ", cw-pad-len(name))
			return rows
		}
		return scatterCell(s.Cols[xi], s.Cols[yi], cw, ch)
	}
	var b strings.Builder
	hline := "+" + strings.Repeat(strings.Repeat("-", cw)+"+", n)
	for row := 0; row < n; row++ {
		b.WriteString(hline)
		b.WriteString("\n")
		lines := make([][]string, n)
		for col := 0; col < n; col++ {
			lines[col] = cell(col, row)
		}
		for r := 0; r < ch; r++ {
			b.WriteString("|")
			for col := 0; col < n; col++ {
				b.WriteString(lines[col][r])
				b.WriteString("|")
			}
			b.WriteString("\n")
		}
	}
	b.WriteString(hline)
	b.WriteString("\n")
	return b.String()
}

func scatterCell(xs, ys []float64, w, h int) []string {
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	if len(xs) == len(ys) && len(xs) > 0 {
		xMin, xMax := minMax(xs)
		yMin, yMax := minMax(ys)
		if xMax == xMin {
			xMax = xMin + 1
		}
		if yMax == yMin {
			yMax = yMin + 1
		}
		for i := range xs {
			c := int(float64(w-1) * (xs[i] - xMin) / (xMax - xMin))
			r := h - 1 - int(float64(h-1)*(ys[i]-yMin)/(yMax-yMin)+0.5)
			if c >= 0 && c < w && r >= 0 && r < h {
				grid[r][c] = '*'
			}
		}
	}
	out := make([]string, h)
	for r := range grid {
		out[r] = string(grid[r])
	}
	return out
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// ResidualPlot renders residuals against fitted values — the paper's
// Fig. 4.
func ResidualPlot(fitted, residuals []float64, width, height int) string {
	if len(fitted) != len(residuals) || len(fitted) == 0 {
		return "(empty residual plot)\n"
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 14
	}
	var b strings.Builder
	b.WriteString("Residuals vs Fitted\n")
	rows := scatterCell(fitted, residuals, width, height)
	// Mark the zero line.
	_, rMaxAbs := minMax(absAll(residuals))
	_ = rMaxAbs
	rMin, rMax := minMax(residuals)
	zeroRow := -1
	if rMin < 0 && rMax > 0 {
		zeroRow = height - 1 - int(float64(height-1)*(0-rMin)/(rMax-rMin)+0.5)
	}
	for r, row := range rows {
		marker := " "
		if r == zeroRow {
			marker = "0"
		}
		fmt.Fprintf(&b, "%s |%s|\n", marker, row)
	}
	fmt.Fprintf(&b, "   %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   fitted: %.3g .. %.3g, residuals: %.3g .. %.3g\n",
		fitted[0], fitted[len(fitted)-1], rMin, rMax)
	return b.String()
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// Pct formats a fractional change as a signed percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%+.2f%%", 100*frac) }

// Improvement returns the fractional reduction of got versus base
// (positive = got is lower/better).
func Improvement(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - got) / base
}
